#include "qmap/net/event_loop.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

#include "qmap/net/net_util.h"

namespace qmap {

namespace {
using SteadyClock = std::chrono::steady_clock;

enum class CloseKind { kFlushed, kError, kTimeout };
}  // namespace

EventLoop::EventLoop(EventLoopOptions options) : options_(options) {}

EventLoop::~EventLoop() { Stop(); }

Status EventLoop::Start(TcpListener* listener, ConnHandler* handler) {
  if (running_.load(std::memory_order_acquire) || thread_.joinable()) {
    return Status::InvalidArgument("event loop: already started");
  }
  if (listener == nullptr || !listener->listening() || handler == nullptr) {
    return Status::InvalidArgument("event loop: need a listening socket");
  }
  IgnoreSigpipe();
  if (pipe(wake_fd_) != 0) {
    return Status::Internal("event loop: failed to create self-pipe");
  }
  SetNonBlockingFd(wake_fd_[0]);
  SetNonBlockingFd(wake_fd_[1]);

  listener_ = listener;
  handler_ = handler;
  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { Run(); });
  return Status::Ok();
}

void EventLoop::Stop() {
  stop_.store(true, std::memory_order_release);
  Wake();
  if (thread_.joinable()) thread_.join();
  running_.store(false, std::memory_order_release);
  for (int* fd : {&wake_fd_[0], &wake_fd_[1]}) {
    if (*fd >= 0) {
      close(*fd);
      *fd = -1;
    }
  }
  std::lock_guard<std::mutex> lock(tasks_mu_);
  tasks_.clear();
}

void EventLoop::Post(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(tasks_mu_);
    if (stop_.load(std::memory_order_acquire)) return;
    tasks_.push_back(std::move(task));
  }
  Wake();
}

void EventLoop::Wake() {
  if (wake_fd_[1] >= 0) {
    char byte = 'x';
    // Best-effort wake; the poll tick bounds the wait even if the pipe is
    // full.
    [[maybe_unused]] ssize_t n = write(wake_fd_[1], &byte, 1);
  }
}

Conn* EventLoop::FindConn(uint64_t id) {
  for (const std::unique_ptr<Conn>& conn : conns_) {
    if (conn->id() == id) return conn.get();
  }
  return nullptr;
}

EventLoopStats EventLoop::stats() const {
  EventLoopStats out;
  out.accepted = accepted_.load(std::memory_order_relaxed);
  out.rejected = rejected_.load(std::memory_order_relaxed);
  out.timeouts = timeouts_.load(std::memory_order_relaxed);
  out.flushed_closes = flushed_closes_.load(std::memory_order_relaxed);
  out.error_closes = error_closes_.load(std::memory_order_relaxed);
  out.bytes_read = bytes_read_.load(std::memory_order_relaxed);
  out.bytes_written = bytes_written_.load(std::memory_order_relaxed);
  return out;
}

void EventLoop::CloseConn(size_t index, bool flushed) {
  Conn& conn = *conns_[index];
  handler_->OnClose(conn);
  close(conn.fd_);
  if (flushed) {
    flushed_closes_.fetch_add(1, std::memory_order_relaxed);
  } else {
    error_closes_.fetch_add(1, std::memory_order_relaxed);
  }
  conns_.erase(conns_.begin() + static_cast<ptrdiff_t>(index));
}

void EventLoop::Run() {
  while (!stop_.load(std::memory_order_acquire)) {
    std::vector<pollfd> fds;
    fds.push_back({wake_fd_[0], POLLIN, 0});
    bool room =
        conns_.size() < static_cast<size_t>(options_.max_connections < 0
                                                ? 0
                                                : options_.max_connections);
    // When full (or draining), stop polling the listener: the kernel queues
    // (then we accept-and-close below once there is room or on the next
    // tick). During a drain the backlog simply never gets served.
    bool take = room && accepting_.load(std::memory_order_acquire);
    fds.push_back({listener_->fd(), static_cast<short>(take ? POLLIN : 0), 0});
    for (const std::unique_ptr<Conn>& conn : conns_) {
      short events = 0;
      if (!conn->close_after_flush_ && !conn->reads_paused_) events |= POLLIN;
      if (conn->out_pending() > 0) events |= POLLOUT;
      fds.push_back({conn->fd_, events, 0});
    }

    int rc = poll(fds.data(), fds.size(), options_.poll_interval_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;  // unrecoverable poll failure; shut the loop down
    }
    if (stop_.load(std::memory_order_acquire)) break;

    if ((fds[0].revents & POLLIN) != 0) {
      char buf[64];
      while (read(wake_fd_[0], buf, sizeof(buf)) > 0) {
      }
    }

    // Completions posted by worker threads run before the I/O pass, so a
    // response Write()d here is flushed on this very tick.
    std::vector<std::function<void()>> tasks;
    {
      std::lock_guard<std::mutex> lock(tasks_mu_);
      tasks.swap(tasks_);
    }
    for (std::function<void()>& task : tasks) task();

    // Only the connections that were present at poll() time have pollfd
    // entries; anything accepted below waits for the next tick.
    const size_t num_polled = conns_.size();

    // Accept as many as there is room for; close the rest immediately so a
    // misbehaving client can't starve the loop.
    if ((fds[1].revents & POLLIN) != 0) {
      while (true) {
        int fd = listener_->Accept();
        if (fd < 0) break;
        if (conns_.size() >= static_cast<size_t>(options_.max_connections) ||
            !SetNonBlockingFd(fd)) {
          rejected_.fetch_add(1, std::memory_order_relaxed);
          close(fd);
          continue;
        }
        accepted_.fetch_add(1, std::memory_order_relaxed);
        auto conn = std::make_unique<Conn>();
        conn->fd_ = fd;
        conn->id_ = next_conn_id_++;
        conns_.push_back(std::move(conn));
        handler_->OnAccept(*conns_.back());
        if (conns_.back()->aborted_) {
          CloseConn(conns_.size() - 1, /*flushed=*/false);
        }
      }
    }

    const auto now = SteadyClock::now();
    for (size_t i = num_polled; i-- > 0;) {
      Conn& conn = *conns_[i];
      // fds layout: [wake, listener, conns[0] ...].
      const pollfd& pfd = fds[i + 2];
      if (conn.aborted_) {
        CloseConn(i, /*flushed=*/false);
        continue;
      }
      // A half-dead socket with a response still queued gets its flush
      // attempt below (the send failure path settles it); anything else
      // erroring out closes here.
      if ((pfd.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0 &&
          conn.out_pending() == 0 && !conn.close_after_flush_) {
        CloseConn(i, /*flushed=*/false);
        continue;
      }
      if (conn.has_deadline_ && now >= conn.deadline_) {
        timeouts_.fetch_add(1, std::memory_order_relaxed);
        CloseConn(i, /*flushed=*/false);
        continue;
      }
      if (!conn.close_after_flush_ && !conn.reads_paused_ &&
          (pfd.revents & POLLIN) != 0) {
        char buf[4096];
        bool peer_gone = false;
        size_t appended = 0;
        while (true) {
          ssize_t n = read(conn.fd_, buf, sizeof(buf));
          if (n > 0) {
            conn.in_.append(buf, static_cast<size_t>(n));
            appended += static_cast<size_t>(n);
            continue;
          }
          if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
          if (n < 0 && errno == EINTR) continue;
          peer_gone = true;  // EOF or hard error mid-request
          break;
        }
        bytes_read_.fetch_add(appended, std::memory_order_relaxed);
        if (peer_gone) {
          CloseConn(i, /*flushed=*/false);
          continue;
        }
        if (appended > 0) {
          handler_->OnData(conn);
          if (conn.aborted_) {
            CloseConn(i, /*flushed=*/false);
            continue;
          }
        }
      }
      if (conn.out_pending() > 0 || conn.close_after_flush_) {
        while (conn.out_offset_ < conn.out_.size()) {
          ssize_t n = send(conn.fd_, conn.out_.data() + conn.out_offset_,
                           conn.out_.size() - conn.out_offset_, MSG_NOSIGNAL);
          if (n > 0) {
            conn.out_offset_ += static_cast<size_t>(n);
            bytes_written_.fetch_add(static_cast<uint64_t>(n),
                                     std::memory_order_relaxed);
            continue;
          }
          if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
          if (n < 0 && errno == EINTR) continue;
          conn.out_offset_ = conn.out_.size();  // peer gone; give up
          break;
        }
        if (conn.out_offset_ >= conn.out_.size()) {
          if (conn.close_after_flush_) {
            CloseConn(i, /*flushed=*/true);
            continue;
          }
          conn.out_.clear();
          conn.out_offset_ = 0;
        }
      }
    }
  }

  for (size_t i = conns_.size(); i-- > 0;) {
    handler_->OnClose(*conns_[i]);
    close(conns_[i]->fd_);
  }
  conns_.clear();
}

}  // namespace qmap
