#ifndef QMAP_NET_NET_UTIL_H_
#define QMAP_NET_NET_UTIL_H_

namespace qmap {

/// Puts `fd` into O_NONBLOCK mode. Returns false on fcntl failure.
bool SetNonBlockingFd(int fd);

/// Ignores SIGPIPE process-wide (idempotent, thread-safe). A peer that
/// disconnects mid-response must surface as an EPIPE error on send(), not a
/// process-killing signal. Every qmap component that writes to sockets —
/// the event loop, the wire client — calls this on setup; sends additionally
/// pass MSG_NOSIGNAL so even a component that forgot is safe on Linux.
void IgnoreSigpipe();

}  // namespace qmap

#endif  // QMAP_NET_NET_UTIL_H_
