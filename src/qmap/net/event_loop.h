#ifndef QMAP_NET_EVENT_LOOP_H_
#define QMAP_NET_EVENT_LOOP_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "qmap/common/status.h"
#include "qmap/net/tcp_listener.h"

namespace qmap {

class EventLoop;

/// One accepted connection, owned by its EventLoop. Handlers receive a Conn&
/// during OnAccept/OnData/OnClose and may also look one up by id() via
/// EventLoop::FindConn from a Post()ed task; both only on the loop thread.
/// Pointers must not be retained across loop ticks — keep the id instead.
class Conn {
 public:
  int fd() const { return fd_; }
  /// Loop-unique id, never reused within one EventLoop run. The stable name
  /// for completions posted from worker threads.
  uint64_t id() const { return id_; }

  /// Bytes read so far and not yet consumed. Handlers parse from here and
  /// erase what they consumed (or leave partial frames for the next tick).
  std::string& in() { return in_; }

  /// Queues bytes for writing. The loop flushes opportunistically every tick
  /// while output is pending (and polls for POLLOUT), preserving ordering.
  void Write(std::string_view data) { out_.append(data); }

  size_t out_pending() const { return out_.size() - out_offset_; }

  /// After the pending output drains, close the connection. Reads stop
  /// immediately. The admin server sets this on every response
  /// ("Connection: close"); the wire server only on fatal protocol errors.
  void CloseAfterFlush() { close_after_flush_ = true; }

  /// Close now, discarding any pending output.
  void Abort() { aborted_ = true; }

  /// Backpressure: stop polling for readable data until ResumeReads. Bytes
  /// already in in() stay there; the kernel socket buffer (and then the
  /// peer's TCP window) absorbs the rest.
  void PauseReads() { reads_paused_ = true; }
  void ResumeReads() { reads_paused_ = false; }
  bool reads_paused() const { return reads_paused_; }

  /// Arms (or re-arms) the idle deadline: the loop drops the connection —
  /// counting a timeout — if it is still open `ms` from now.
  void SetDeadlineMs(int ms) {
    deadline_ = std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
    has_deadline_ = true;
  }
  void ClearDeadline() { has_deadline_ = false; }

  /// Scratch slot for the handler (e.g. per-connection quota state). The
  /// loop never touches it beyond destruction on close.
  void set_user_data(std::shared_ptr<void> data) { user_data_ = std::move(data); }
  const std::shared_ptr<void>& user_data() const { return user_data_; }

 private:
  friend class EventLoop;

  int fd_ = -1;
  uint64_t id_ = 0;
  std::string in_;
  std::string out_;
  size_t out_offset_ = 0;
  bool close_after_flush_ = false;
  bool aborted_ = false;
  bool reads_paused_ = false;
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_;
  std::shared_ptr<void> user_data_;
};

/// Callbacks a server layers on top of the loop. All run on the loop thread.
class ConnHandler {
 public:
  virtual ~ConnHandler() = default;
  /// A connection was accepted (already non-blocking, already counted).
  /// Typical work: arm the I/O deadline, attach quota state.
  virtual void OnAccept(Conn& conn) = 0;
  /// New bytes were appended to conn.in(). Consume complete requests/frames;
  /// partial input may be left in place.
  virtual void OnData(Conn& conn) = 0;
  /// The connection is about to close (any path: flushed, error, timeout,
  /// abort, loop shutdown). Drop per-connection state keyed by conn.id().
  virtual void OnClose(Conn& conn) = 0;
};

struct EventLoopOptions {
  /// Concurrent connection bound. At the bound the listener is not polled,
  /// so excess connections wait in the kernel backlog; when a slot frees up
  /// the backlog is drained in one burst and connections past the bound are
  /// accepted and immediately closed (counted in stats().rejected).
  int max_connections = 64;
  /// poll() tick used to re-check the stop flag, posted tasks, and deadlines.
  int poll_interval_ms = 50;
};

/// Counters describing loop activity since Start().
struct EventLoopStats {
  uint64_t accepted = 0;        // connections accepted and registered
  uint64_t rejected = 0;        // closed immediately: at max_connections
  uint64_t timeouts = 0;        // connections dropped at their deadline
  uint64_t flushed_closes = 0;  // CloseAfterFlush connections whose output
                                // drained (or whose peer vanished mid-write)
  uint64_t error_closes = 0;    // EOF / socket error / abort closes
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
};

/// The non-blocking poll() event loop extracted from the admin HTTP server,
/// now shared by every network server in the process. One background thread
/// multiplexes a TcpListener plus at most max_connections sockets: a
/// self-pipe wakes the loop for Stop()/Post(), per-connection deadlines
/// bound slow clients, and writes are flushed opportunistically every tick.
///
/// Threading: OnAccept/OnData/OnClose and FindConn run on the loop thread
/// only. Worker threads hand results back with Post(), which wakes the loop
/// and runs the task on the loop thread before the next I/O pass. Stop()
/// joins the thread, so it is safe to destroy the handler afterwards.
class EventLoop {
 public:
  explicit EventLoop(EventLoopOptions options = {});
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Spawns the loop thread serving `listener` (already listening) through
  /// `handler`. Neither is owned; both must outlive the loop. Fails if
  /// already running or the self-pipe can't be created.
  Status Start(TcpListener* listener, ConnHandler* handler);

  /// Stops the loop thread, closing all connections (OnClose runs for each).
  /// Idempotent; also run by the destructor. Does not close the listener.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Runs `task` on the loop thread before the next I/O pass. Thread-safe;
  /// the canonical way for worker threads to deliver completions. Tasks
  /// posted after Stop() are discarded.
  void Post(std::function<void()> task);

  /// Wakes the loop out of poll() without queueing work.
  void Wake();

  /// Gate for graceful drain: with accepting(false) the listener is left in
  /// the poll set with no events requested, so new connections queue in the
  /// kernel backlog and are not served. Thread-safe.
  void SetAccepting(bool accepting) {
    accepting_.store(accepting, std::memory_order_release);
    Wake();
  }
  bool accepting() const { return accepting_.load(std::memory_order_acquire); }

  /// Number of live connections; loop thread or post-Stop only.
  size_t num_connections() const { return conns_.size(); }

  /// Looks a connection up by id. Loop thread only (i.e. from handler
  /// callbacks or Post()ed tasks); returns nullptr if it already closed.
  Conn* FindConn(uint64_t id);

  EventLoopStats stats() const;

  const EventLoopOptions& options() const { return options_; }

 private:
  void Run();
  void CloseConn(size_t index, bool flushed);

  const EventLoopOptions options_;
  TcpListener* listener_ = nullptr;
  ConnHandler* handler_ = nullptr;

  int wake_fd_[2] = {-1, -1};  // self-pipe: [0] polled, [1] written by Wake()
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::atomic<bool> accepting_{true};

  std::mutex tasks_mu_;
  std::vector<std::function<void()>> tasks_;

  std::vector<std::unique_ptr<Conn>> conns_;
  uint64_t next_conn_id_ = 1;

  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> timeouts_{0};
  std::atomic<uint64_t> flushed_closes_{0};
  std::atomic<uint64_t> error_closes_{0};
  std::atomic<uint64_t> bytes_read_{0};
  std::atomic<uint64_t> bytes_written_{0};
};

}  // namespace qmap

#endif  // QMAP_NET_EVENT_LOOP_H_
