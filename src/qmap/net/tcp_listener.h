#ifndef QMAP_NET_TCP_LISTENER_H_
#define QMAP_NET_TCP_LISTENER_H_

#include <cstdint>
#include <string>

#include "qmap/common/status.h"

namespace qmap {

/// A bound, non-blocking IPv4 listening socket — the accept half of the
/// qmap/net layer. Extracted from the admin HTTP server so every server in
/// the process (admin plane, wire-protocol service plane) shares one
/// bind/listen/accept implementation and one set of error messages.
///
/// Not thread-safe: Listen/Close belong to the owning server's setup and
/// teardown; Accept belongs to the event-loop thread.
class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener();
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Binds and listens on `bind_address:port` (port 0 picks an ephemeral
  /// port; read it back via port()). The socket is SO_REUSEADDR and
  /// non-blocking. Error statuses: InvalidArgument for an unparsable
  /// address, Unavailable for a bind failure (port in use, permissions),
  /// Internal for anything else.
  Status Listen(const std::string& bind_address, uint16_t port,
                int backlog = 16);

  /// Accepts one pending connection; returns its fd, or -1 when none is
  /// pending (EAGAIN) or the accept failed. The returned fd is *blocking*;
  /// callers that want non-blocking I/O set it themselves (EventLoop does).
  int Accept();

  /// Closes the listening socket. Idempotent; also run by the destructor.
  void Close();

  bool listening() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  /// The bound TCP port (resolved after Listen, also for port 0). 0 before.
  uint16_t port() const { return port_; }

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

}  // namespace qmap

#endif  // QMAP_NET_TCP_LISTENER_H_
