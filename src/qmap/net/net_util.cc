#include "qmap/net/net_util.h"

#include <csignal>
#include <fcntl.h>
#include <mutex>

namespace qmap {

bool SetNonBlockingFd(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

void IgnoreSigpipe() {
  static std::once_flag once;
  std::call_once(once, [] { std::signal(SIGPIPE, SIG_IGN); });
}

}  // namespace qmap
