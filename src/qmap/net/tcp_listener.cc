#include "qmap/net/tcp_listener.h"

#include "qmap/net/net_util.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace qmap {

TcpListener::~TcpListener() { Close(); }

Status TcpListener::Listen(const std::string& bind_address, uint16_t port,
                           int backlog) {
  if (fd_ >= 0) return Status::InvalidArgument("net listener: already bound");
  fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return Status::Internal(std::string("net listener: socket: ") +
                            std::strerror(errno));
  }
  int one = 1;
  setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, bind_address.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::InvalidArgument("net listener: bad bind address '" +
                                   bind_address + "'");
  }
  if (bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status status = Status::Unavailable(
        std::string("net listener: bind ") + bind_address + ":" +
        std::to_string(port) + ": " + std::strerror(errno));
    Close();
    return status;
  }
  if (listen(fd_, backlog) != 0) {
    Status status = Status::Internal(std::string("net listener: listen: ") +
                                     std::strerror(errno));
    Close();
    return status;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  }
  if (!SetNonBlockingFd(fd_)) {
    Close();
    return Status::Internal("net listener: failed to set O_NONBLOCK");
  }
  return Status::Ok();
}

int TcpListener::Accept() {
  if (fd_ < 0) return -1;
  return accept(fd_, nullptr, nullptr);
}

void TcpListener::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
  port_ = 0;
}

}  // namespace qmap
