#ifndef QMAP_RELALG_CONVERSION_H_
#define QMAP_RELALG_CONVERSION_H_

#include <functional>
#include <string>
#include <vector>

#include "qmap/common/status.h"
#include "qmap/relalg/ops.h"

namespace qmap {

/// A data-conversion function modeled as a conceptual relation (Section 2's
/// X): reads `inputs` attribute paths from a tuple and extends the tuple
/// with `outputs`.  E.g. NameLnFn(author, ln, fn) reads "pub.paper.au" and
/// writes "pub.ln" and "pub.fn".
struct ConversionFn {
  std::string name;
  std::vector<std::string> inputs;   // attribute paths read
  std::vector<std::string> outputs;  // attribute paths written
  std::function<Result<std::vector<Value>>(const std::vector<Value>&)> fn;
};

/// Applies `conversion` to every tuple of `input`; tuples missing an input
/// attribute pass through unchanged (the conversion is inapplicable there).
Result<TupleSet> ApplyConversion(const TupleSet& input, const ConversionFn& conversion);

/// Builds the common rename conversion: output := input, e.g. exposing the
/// source attribute "fac.aubib.bib" as the view attribute "fac.bib".
ConversionFn RenameConversion(const std::string& input_path,
                              const std::string& output_path);

/// NameLnFn as a conversion (Section 2): splits an "Ln, Fn" author string
/// into last/first name attributes.
ConversionFn NameSplitConversion(const std::string& author_path,
                                 const std::string& ln_path,
                                 const std::string& fn_path);

}  // namespace qmap

#endif  // QMAP_RELALG_CONVERSION_H_
