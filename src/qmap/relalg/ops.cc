#include "qmap/relalg/ops.h"

#include <set>

namespace qmap {

TupleSet Select(const TupleSet& input, const Query& query,
                const ConstraintSemantics* semantics) {
  TupleSet out;
  for (const Tuple& tuple : input) {
    if (EvalQuery(query, tuple, semantics)) out.push_back(tuple);
  }
  return out;
}

Tuple MergeTuples(const Tuple& a, const Tuple& b) {
  Tuple out = a;
  for (const auto& [key, value] : b.values()) out.Set(key, value);
  return out;
}

TupleSet Cross(const TupleSet& a, const TupleSet& b) {
  TupleSet out;
  out.reserve(a.size() * b.size());
  for (const Tuple& ta : a) {
    for (const Tuple& tb : b) out.push_back(MergeTuples(ta, tb));
  }
  return out;
}

TupleSet Union(const TupleSet& a, const TupleSet& b) {
  TupleSet out;
  std::set<std::string> seen;
  for (const TupleSet* set : {&a, &b}) {
    for (const Tuple& tuple : *set) {
      if (seen.insert(tuple.ToString()).second) out.push_back(tuple);
    }
  }
  return out;
}

bool SameTupleSet(const TupleSet& a, const TupleSet& b) {
  std::set<std::string> sa;
  std::set<std::string> sb;
  for (const Tuple& tuple : a) sa.insert(tuple.ToString());
  for (const Tuple& tuple : b) sb.insert(tuple.ToString());
  return sa == sb;
}

}  // namespace qmap
