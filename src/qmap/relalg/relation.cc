#include "qmap/relalg/relation.h"

namespace qmap {

Status Relation::AddRow(std::vector<Value> row) {
  if (row.size() != attrs_.size()) {
    return Status::InvalidArgument(
        "relation " + name_ + ": row arity " + std::to_string(row.size()) +
        " does not match schema arity " + std::to_string(attrs_.size()));
  }
  rows_.push_back(std::move(row));
  return Status::Ok();
}

Tuple Relation::RowAsTuple(size_t index, const std::string& qualifier) const {
  Tuple tuple;
  const std::vector<Value>& row = rows_[index];
  for (size_t i = 0; i < attrs_.size(); ++i) {
    std::string key = qualifier.empty() ? attrs_[i] : qualifier + "." + attrs_[i];
    tuple.Set(key, row[i]);
  }
  return tuple;
}

std::vector<Tuple> Relation::AsTuples(const std::string& qualifier) const {
  std::vector<Tuple> out;
  out.reserve(rows_.size());
  for (size_t i = 0; i < rows_.size(); ++i) out.push_back(RowAsTuple(i, qualifier));
  return out;
}

}  // namespace qmap
