#ifndef QMAP_RELALG_OPS_H_
#define QMAP_RELALG_OPS_H_

#include <vector>

#include "qmap/expr/eval.h"

namespace qmap {

/// Tuple-set operators over the in-memory engine. All operators are
/// value-semantic; tuple sets are plain vectors (duplicates permitted unless
/// noted, as in SQL multiset semantics).
using TupleSet = std::vector<Tuple>;

/// σ: the tuples of `input` satisfying `query` (under optional custom
/// semantics).
TupleSet Select(const TupleSet& input, const Query& query,
                const ConstraintSemantics* semantics = nullptr);

/// Merges the attribute maps of two tuples (right-hand side wins on
/// conflicting keys; callers use disjoint key spaces).
Tuple MergeTuples(const Tuple& a, const Tuple& b);

/// ×: pairwise merge of the two sets.
TupleSet Cross(const TupleSet& a, const TupleSet& b);

/// ∪ with duplicate elimination (by canonical tuple rendering).
TupleSet Union(const TupleSet& a, const TupleSet& b);

/// Set equality under duplicate elimination and arbitrary order.
bool SameTupleSet(const TupleSet& a, const TupleSet& b);

}  // namespace qmap

#endif  // QMAP_RELALG_OPS_H_
