#include "qmap/relalg/conversion.h"

#include "qmap/text/names.h"

namespace qmap {

Result<TupleSet> ApplyConversion(const TupleSet& input,
                                 const ConversionFn& conversion) {
  TupleSet out;
  out.reserve(input.size());
  for (const Tuple& tuple : input) {
    std::vector<Value> args;
    args.reserve(conversion.inputs.size());
    bool applicable = true;
    for (const std::string& path : conversion.inputs) {
      auto it = tuple.values().find(path);
      if (it == tuple.values().end()) {
        applicable = false;
        break;
      }
      args.push_back(it->second);
    }
    if (!applicable) {
      out.push_back(tuple);
      continue;
    }
    Result<std::vector<Value>> produced = conversion.fn(args);
    if (!produced.ok()) return produced.status();
    if (produced->size() != conversion.outputs.size()) {
      return Status::Internal("conversion " + conversion.name + " produced " +
                              std::to_string(produced->size()) + " values for " +
                              std::to_string(conversion.outputs.size()) + " outputs");
    }
    Tuple extended = tuple;
    for (size_t i = 0; i < conversion.outputs.size(); ++i) {
      extended.Set(conversion.outputs[i], (*produced)[i]);
    }
    out.push_back(std::move(extended));
  }
  return out;
}

ConversionFn RenameConversion(const std::string& input_path,
                              const std::string& output_path) {
  ConversionFn c;
  c.name = "rename(" + input_path + " -> " + output_path + ")";
  c.inputs = {input_path};
  c.outputs = {output_path};
  c.fn = [](const std::vector<Value>& args) -> Result<std::vector<Value>> {
    return std::vector<Value>{args[0]};
  };
  return c;
}

ConversionFn NameSplitConversion(const std::string& author_path,
                                 const std::string& ln_path,
                                 const std::string& fn_path) {
  ConversionFn c;
  c.name = "NameLnFn(" + author_path + ")";
  c.inputs = {author_path};
  c.outputs = {ln_path, fn_path};
  c.fn = [](const std::vector<Value>& args) -> Result<std::vector<Value>> {
    if (args[0].kind() != ValueKind::kString) {
      return Status::InvalidArgument("NameLnFn input must be a string");
    }
    auto [ln, fn] = NameLnFn(args[0].AsString());
    return std::vector<Value>{Value::Str(ln), Value::Str(fn)};
  };
  return c;
}

}  // namespace qmap
