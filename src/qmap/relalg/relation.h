#ifndef QMAP_RELALG_RELATION_H_
#define QMAP_RELALG_RELATION_H_

#include <string>
#include <vector>

#include "qmap/common/status.h"
#include "qmap/expr/eval.h"

namespace qmap {

/// A tiny in-memory relation: a named schema plus value rows.  This is the
/// execution substrate standing in for the paper's live sources — enough to
/// run the mediation pipeline of Eq. 1-2 and validate translations
/// empirically (see DESIGN.md §2).
class Relation {
 public:
  Relation() = default;
  Relation(std::string name, std::vector<std::string> attrs)
      : name_(std::move(name)), attrs_(std::move(attrs)) {}

  const std::string& name() const { return name_; }
  const std::vector<std::string>& attrs() const { return attrs_; }
  size_t NumRows() const { return rows_.size(); }
  const std::vector<std::vector<Value>>& rows() const { return rows_; }

  /// Appends a row; fails when the arity does not match the schema.
  Status AddRow(std::vector<Value> row);

  /// Renders row `index` as a Tuple whose keys are `qualifier`.attr (or the
  /// bare attr names when `qualifier` is empty).  The qualifier names the
  /// view-relation instance, e.g. "fac.aubib" (Section 4.2).
  Tuple RowAsTuple(size_t index, const std::string& qualifier) const;

  /// All rows as qualified tuples.
  std::vector<Tuple> AsTuples(const std::string& qualifier) const;

 private:
  std::string name_;
  std::vector<std::string> attrs_;
  std::vector<std::vector<Value>> rows_;
};

}  // namespace qmap

#endif  // QMAP_RELALG_RELATION_H_
