#include "qmap/store/translation_store.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <utility>
#include <vector>

#include "qmap/obs/metrics.h"
#include "qmap/wire/codec.h"

namespace qmap {
namespace {

// ---------------------------------------------------------------------------
// Payload layout. The value encoding (translation and status bodies, the
// str/u32/u64 primitives) is the shared wire codec (qmap/wire/codec.h) —
// the store adds only the record framing around it, so a record payload is
// self-describing enough to rebuild the index on recovery (the key rides
// inside) and to restore a Translation byte-identical to the cold-run
// original.
//
//   payload     := type(u8) key body
//   key         := source(u64) rule_set(u64) query(u64)        -- all LE
//   body(pos)   := translation body (codec.h)
//   body(neg)   := status body (codec.h)
// ---------------------------------------------------------------------------

constexpr uint8_t kPositiveRecord = 1;
constexpr uint8_t kNegativeRecord = 2;

void EncodeKey(std::string* out, const TranslationCacheKey& key) {
  PutU64(out, key.source);
  PutU64(out, key.rule_set);
  PutU64(out, key.query);
}

std::string EncodePositive(const TranslationCacheKey& key,
                           const Translation& value) {
  std::string out;
  PutU8(&out, kPositiveRecord);
  EncodeKey(&out, key);
  EncodeTranslationBody(&out, value);
  return out;
}

std::string EncodeNegative(const TranslationCacheKey& key,
                           const Status& failure) {
  std::string out;
  PutU8(&out, kNegativeRecord);
  EncodeKey(&out, key);
  EncodeStatusBody(&out, failure);
  return out;
}

/// Decodes just the record prelude (type + key), used by the recovery scan
/// and compaction, which index records without materializing Translations.
bool DecodePrelude(std::string_view payload, uint8_t* type,
                   TranslationCacheKey* key) {
  PayloadReader r(payload);
  return r.ReadU8(type) &&
         (*type == kPositiveRecord || *type == kNegativeRecord) &&
         r.ReadU64(&key->source) && r.ReadU64(&key->rule_set) &&
         r.ReadU64(&key->query);
}

/// Full decode into the Get()/ReplayInto() result shape.
Result<Result<Translation>> DecodeBody(std::string_view payload) {
  PayloadReader r(payload);
  uint8_t type = 0;
  TranslationCacheKey key;
  if (!r.ReadU8(&type) || !r.ReadU64(&key.source) ||
      !r.ReadU64(&key.rule_set) || !r.ReadU64(&key.query)) {
    return Status::Internal("store record: truncated prelude");
  }
  if (type == kNegativeRecord) {
    Status failure;
    if (!DecodeStatusBody(r, &failure) || !r.AtEnd()) {
      return Status::Internal("store record: malformed negative body");
    }
    return Result<Translation>(std::move(failure));
  }
  if (type != kPositiveRecord) {
    return Status::Internal("store record: unknown record type");
  }
  Result<Translation> value = DecodeTranslationBody(r);
  if (!value.ok()) return value.status();
  if (!r.AtEnd()) {
    return Status::Internal("store record: trailing bytes in positive body");
  }
  return Result<Translation>(std::move(value).value());
}

std::string CompactingPath(const std::string& path) {
  return path + ".compacting";
}

}  // namespace

Result<std::unique_ptr<TranslationStore>> TranslationStore::Open(
    StoreOptions options) {
  if (options.path.empty()) {
    return Status::InvalidArgument("StoreOptions.path must be non-empty");
  }
  const auto t0 = std::chrono::steady_clock::now();

  // A .compacting file is a compaction that never reached its rename — the
  // real log is still complete, so the temp is garbage. Discard it.
  ::unlink(CompactingPath(options.path).c_str());

  auto log = RecordLog::Open(options.path);
  if (!log.ok()) return log.status();

  std::unique_ptr<TranslationStore> store(
      new TranslationStore(std::move(options)));
  store->log_ = std::move(log).value();

  auto scan = store->log_->ScanAndRepair(
      RecordLog::kHeaderBytes,
      [&store](uint64_t offset, std::string_view payload) {
        uint8_t type = 0;
        TranslationCacheKey key;
        if (!DecodePrelude(payload, &type, &key)) {
          // Checksum-valid but undecodable: a foreign or future-format
          // record. Count it and leave it as dead weight for compaction.
          ++store->stats_.dropped_records;
          return;
        }
        store->IndexRecordLocked(key, type == kNegativeRecord, offset,
                                 RecordLog::kFrameOverhead + payload.size());
        ++store->stats_.recovered_records;
      });
  if (!scan.ok()) return scan.status();
  store->stats_.truncated_bytes = scan->truncated_bytes;
  store->stats_.recovery_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());

  if (store->options_.background_compaction) {
    store->compactor_ = std::thread([raw = store.get()] { raw->CompactorLoop(); });
  }
  return store;
}

TranslationStore::~TranslationStore() {
  if (compactor_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(bg_mu_);
      bg_stop_ = true;
    }
    bg_cv_.notify_all();
    compactor_.join();
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (log_ != nullptr) log_->Sync().ok();
}

void TranslationStore::AttachMetrics(MetricsRegistry* registry) {
  attached_registry_ = registry;
  if (registry == nullptr) {
    hits_counter_ = nullptr;
    negative_hits_counter_ = nullptr;
    misses_counter_ = nullptr;
    puts_counter_ = nullptr;
    negative_puts_counter_ = nullptr;
    replay_counter_ = nullptr;
    compactions_counter_ = nullptr;
    compaction_bytes_counter_ = nullptr;
    evicted_counter_ = nullptr;
    evicted_bytes_counter_ = nullptr;
    return;
  }
  hits_counter_ = &registry->counter("qmap_store_hits_total");
  negative_hits_counter_ =
      &registry->counter("qmap_store_negative_hits_total");
  misses_counter_ = &registry->counter("qmap_store_misses_total");
  puts_counter_ = &registry->counter("qmap_store_puts_total");
  negative_puts_counter_ =
      &registry->counter("qmap_store_negative_puts_total");
  replay_counter_ = &registry->counter("qmap_store_replayed_total");
  compactions_counter_ = &registry->counter("qmap_store_compactions_total");
  compaction_bytes_counter_ =
      &registry->counter("qmap_store_compaction_bytes_reclaimed_total");
  evicted_counter_ = &registry->counter("qmap_store_evicted_records_total");
  evicted_bytes_counter_ =
      &registry->counter("qmap_store_evicted_bytes_total");
  // Recovery happened inside Open(), before any registry existed to observe
  // it; backfill so a scrape right after boot sees the boot.
  std::lock_guard<std::mutex> lock(mu_);
  registry->counter("qmap_store_recovered_records_total")
      .Inc(stats_.recovered_records);
  registry->counter("qmap_store_truncated_bytes_total")
      .Inc(stats_.truncated_bytes);
  registry->histogram("qmap_store_recovery_ns").Record(stats_.recovery_ns);
}

void TranslationStore::DetachMetricsIf(MetricsRegistry* registry) {
  if (registry != nullptr && attached_registry_ == registry) {
    AttachMetrics(nullptr);
  }
}

std::optional<Result<Translation>> TranslationStore::Get(
    const TranslationCacheKey& key) {
  std::string payload;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it == index_.end()) {
      ++stats_.misses;
      if (misses_counter_ != nullptr) misses_counter_->Inc();
      return std::nullopt;
    }
    auto read = log_->ReadAt(it->second.offset);
    if (!read.ok()) {
      // Latent on-disk corruption under a checksum that passed at recovery
      // time; treat as a miss so the caller re-translates and overwrites.
      ++stats_.misses;
      if (misses_counter_ != nullptr) misses_counter_->Inc();
      return std::nullopt;
    }
    if (it->second.negative) {
      ++stats_.negative_hits;
      if (negative_hits_counter_ != nullptr) negative_hits_counter_->Inc();
    } else {
      ++stats_.hits;
      if (hits_counter_ != nullptr) hits_counter_->Inc();
    }
    // A hit is a promotion into the RAM tier: refresh the record's place in
    // the eviction order so hot entries survive a max_live_bytes compaction.
    it->second.seq = ++next_seq_;
    payload = std::move(read).value();
  }
  // Parse outside the lock: decoding re-builds Query trees, which is the
  // expensive part.
  auto decoded = DecodeBody(payload);
  if (!decoded.ok()) return std::nullopt;
  return std::move(decoded).value();
}

Status TranslationStore::Put(const TranslationCacheKey& key,
                             const Translation& value) {
  const std::string payload = EncodePositive(key, value);
  Status s;
  {
    std::lock_guard<std::mutex> lock(mu_);
    s = AppendLocked(key, /*negative=*/false, payload);
  }
  MaybeCompactInline();
  return s;
}

Status TranslationStore::PutNegative(const TranslationCacheKey& key,
                                     const Status& failure) {
  if (failure.ok()) {
    return Status::InvalidArgument("PutNegative requires a failure status");
  }
  const std::string payload = EncodeNegative(key, failure);
  Status s;
  {
    std::lock_guard<std::mutex> lock(mu_);
    s = AppendLocked(key, /*negative=*/true, payload);
  }
  MaybeCompactInline();
  return s;
}

size_t TranslationStore::ReplayInto(
    TranslationCache& cache,
    const std::function<bool(const TranslationCacheKey&)>& filter) {
  // Snapshot the live positive locations, then decode/insert off-lock.
  // Oldest offsets first so the newest entries end up most recent in the
  // LRU — a capacity-limited cache keeps the freshest work.
  std::vector<std::pair<uint64_t, TranslationCacheKey>> live;
  {
    std::lock_guard<std::mutex> lock(mu_);
    live.reserve(index_.size());
    for (const auto& [key, loc] : index_) {
      if (loc.negative) continue;
      if (filter && !filter(key)) continue;
      live.emplace_back(loc.offset, key);
    }
  }
  std::sort(live.begin(), live.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  size_t replayed = 0;
  for (const auto& [offset, key] : live) {
    std::string payload;
    {
      std::lock_guard<std::mutex> lock(mu_);
      // Compaction may have moved the record since the snapshot; re-resolve.
      auto it = index_.find(key);
      if (it == index_.end() || it->second.negative) continue;
      auto read = log_->ReadAt(it->second.offset);
      if (!read.ok()) continue;
      payload = std::move(read).value();
    }
    auto decoded = DecodeBody(payload);
    if (!decoded.ok() || !decoded->ok()) continue;
    cache.Put(key, std::move(*decoded).value());
    ++replayed;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.replayed_records += replayed;
  }
  if (replay_counter_ != nullptr) replay_counter_->Inc(replayed);
  return replayed;
}

Status TranslationStore::CompactNow() {
  // One compaction at a time; Put/Get stay serviceable throughout because
  // the streaming phase below only holds mu_ in short critical sections.
  std::lock_guard<std::mutex> compact_lock(compact_mu_);

  const std::string tmp_path = CompactingPath(options_.path);
  ::unlink(tmp_path.c_str());
  auto tmp = RecordLog::Open(tmp_path);
  if (!tmp.ok()) return tmp.status();
  std::unique_ptr<RecordLog> out = std::move(tmp).value();

  // Phase 1: snapshot the live set (key -> source offset), oldest first so
  // relative record order — and thus replay order — survives compaction.
  struct LiveEntry {
    uint64_t offset = 0;
    TranslationCacheKey key;
    uint64_t seq = 0;
    uint32_t frame_bytes = 0;
    bool evict = false;
  };
  std::vector<LiveEntry> live;
  uint64_t snapshot_end = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    live.reserve(index_.size());
    for (const auto& [key, loc] : index_) {
      live.push_back({loc.offset, key, loc.seq, loc.frame_bytes, false});
    }
    snapshot_end = log_->end_offset();
  }
  std::sort(live.begin(), live.end(),
            [](const LiveEntry& a, const LiveEntry& b) {
              return a.offset < b.offset;
            });

  // Eviction plan: with a byte budget, mark least-recently-promoted entries
  // until the survivors fit. A marked record that gets re-written before
  // phase 2 reaches it escapes via the supersede/catch-up path below — the
  // new write is a fresh promotion.
  uint64_t evicted_records = 0;
  uint64_t evicted_bytes = 0;
  if (options_.max_live_bytes > 0) {
    uint64_t live_bytes = 0;
    for (const LiveEntry& entry : live) live_bytes += entry.frame_bytes;
    if (live_bytes > options_.max_live_bytes) {
      std::vector<LiveEntry*> by_seq;
      by_seq.reserve(live.size());
      for (LiveEntry& entry : live) by_seq.push_back(&entry);
      std::sort(by_seq.begin(), by_seq.end(),
                [](const LiveEntry* a, const LiveEntry* b) {
                  return a->seq < b->seq;
                });
      for (LiveEntry* entry : by_seq) {
        if (live_bytes <= options_.max_live_bytes) break;
        entry->evict = true;
        live_bytes -= entry->frame_bytes;
      }
    }
  }

  // Phase 2: stream snapshot records into the temp log. Committed bytes are
  // immutable, so ReadAt needs mu_ only to re-resolve the location (the
  // record may have been superseded since the snapshot — skip it then; the
  // catch-up scan in phase 3 picks up the newer version). Records planned
  // for eviction are simply not copied; their seqs carry over for the rest.
  Index new_index;
  for (const LiveEntry& entry : live) {
    std::string payload;
    bool negative = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = index_.find(entry.key);
      if (it == index_.end() || it->second.offset != entry.offset) continue;
      if (entry.evict) {
        ++evicted_records;
        evicted_bytes += entry.frame_bytes;
        continue;
      }
      auto read = log_->ReadAt(it->second.offset);
      if (!read.ok()) continue;  // lost to latent corruption; drop it
      payload = std::move(read).value();
      negative = it->second.negative;
    }
    auto appended = out->Append(payload);
    if (!appended.ok()) return appended.status();
    new_index[entry.key] =
        Location{*appended,
                 static_cast<uint32_t>(RecordLog::kFrameOverhead + payload.size()),
                 negative, entry.seq};
  }

  // Phase 3: under the lock, copy over whatever was appended after the
  // snapshot, fsync, rename over the old log, and swap the index. Rename is
  // atomic, so a crash anywhere before it leaves the original intact (a
  // leftover .compacting is discarded at next Open).
  std::lock_guard<std::mutex> lock(mu_);
  Status tail_error = Status::Ok();
  auto tail = log_->ScanAndRepair(
      snapshot_end, [&](uint64_t, std::string_view payload) {
        if (!tail_error.ok()) return;
        uint8_t type = 0;
        TranslationCacheKey key;
        if (!DecodePrelude(payload, &type, &key)) return;
        auto appended = out->Append(payload);
        if (!appended.ok()) {
          tail_error = appended.status();
          return;
        }
        new_index.insert_or_assign(
            key, Location{*appended,
                          static_cast<uint32_t>(RecordLog::kFrameOverhead +
                                                payload.size()),
                          type == kNegativeRecord, ++next_seq_});
      });
  if (!tail.ok()) return tail.status();
  if (!tail_error.ok()) return tail_error;

  Status sync = out->Sync();
  if (!sync.ok()) return sync;
  if (::rename(tmp_path.c_str(), options_.path.c_str()) != 0) {
    return Status::Internal("rename " + tmp_path + " -> " + options_.path +
                            " failed");
  }
  const uint64_t old_bytes = log_->end_offset();
  const uint64_t new_bytes = out->end_offset();
  // The old RecordLog's fd now points at the unlinked inode; dropping it
  // releases the disk space.
  log_ = std::move(out);
  index_ = std::move(new_index);
  dead_bytes_ = 0;
  ++stats_.compactions;
  const uint64_t reclaimed = old_bytes > new_bytes ? old_bytes - new_bytes : 0;
  stats_.compaction_bytes_reclaimed += reclaimed;
  stats_.evicted_records += evicted_records;
  stats_.evicted_bytes += evicted_bytes;
  if (compactions_counter_ != nullptr) compactions_counter_->Inc();
  if (compaction_bytes_counter_ != nullptr) {
    compaction_bytes_counter_->Inc(reclaimed);
  }
  if (evicted_counter_ != nullptr) evicted_counter_->Inc(evicted_records);
  if (evicted_bytes_counter_ != nullptr) {
    evicted_bytes_counter_->Inc(evicted_bytes);
  }
  return Status::Ok();
}

void TranslationStore::WaitForIdleCompaction() {
  std::unique_lock<std::mutex> lock(bg_mu_);
  bg_cv_.wait(lock, [this] { return !bg_kick_ && !bg_busy_; });
}

StoreStats TranslationStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  StoreStats out = stats_;
  out.live_records = index_.size();
  out.log_bytes = log_ != nullptr ? log_->end_offset() : 0;
  out.dead_bytes = dead_bytes_;
  return out;
}

size_t TranslationStore::num_entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return index_.size();
}

void TranslationStore::IndexRecordLocked(const TranslationCacheKey& key,
                                         bool negative, uint64_t offset,
                                         uint64_t frame_bytes) {
  const Location loc{offset, static_cast<uint32_t>(frame_bytes), negative,
                     ++next_seq_};
  auto it = index_.find(key);
  if (it != index_.end()) {
    // Last record wins; the superseded version is dead weight in the log.
    dead_bytes_ += it->second.frame_bytes;
    it->second = loc;
  } else {
    index_.emplace(key, loc);
  }
}

Status TranslationStore::AppendLocked(const TranslationCacheKey& key,
                                      bool negative,
                                      const std::string& payload) {
  auto appended = log_->Append(payload);
  if (!appended.ok()) return appended.status();
  const uint64_t frame_bytes = RecordLog::kFrameOverhead + payload.size();
  auto it = index_.find(key);
  const bool existed = it != index_.end();
  if (existed) dead_bytes_ += it->second.frame_bytes;
  index_[key] = Location{*appended, static_cast<uint32_t>(frame_bytes), negative,
                         ++next_seq_};
  if (negative) {
    ++stats_.negative_puts;
    if (negative_puts_counter_ != nullptr) negative_puts_counter_->Inc();
  } else if (existed) {
    ++stats_.updates;
  } else {
    ++stats_.puts;
    if (puts_counter_ != nullptr) puts_counter_->Inc();
  }
  if (options_.sync_each_put) {
    Status s = log_->Sync();
    if (!s.ok()) return s;
  }
  if (options_.background_compaction && WantsCompactionLocked()) {
    KickCompaction();
  }
  return Status::Ok();
}

void TranslationStore::MaybeCompactInline() {
  if (options_.background_compaction) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!WantsCompactionLocked()) return;
  }
  CompactNow().ok();  // best-effort, same as the background path
}

bool TranslationStore::WantsCompactionLocked() const {
  if (log_ == nullptr) return false;
  const uint64_t total = log_->end_offset();
  // An over-budget live set triggers compaction (which evicts) regardless of
  // the waste ratio or the min-bytes gate: the budget is a hard ceiling, not
  // a hygiene heuristic. Record bytes only — the fixed log header never
  // compacts away, so counting it could wedge a tiny budget into a
  // compact-forever loop.
  if (options_.max_live_bytes > 0) {
    const uint64_t records =
        total > RecordLog::kHeaderBytes ? total - RecordLog::kHeaderBytes : 0;
    const uint64_t live = records > dead_bytes_ ? records - dead_bytes_ : 0;
    if (live > options_.max_live_bytes) return true;
  }
  if (total < options_.compaction_min_bytes) return false;
  return static_cast<double>(dead_bytes_) >
         options_.compaction_waste * static_cast<double>(total);
}

void TranslationStore::KickCompaction() {
  {
    std::lock_guard<std::mutex> lock(bg_mu_);
    if (bg_stop_) return;
    bg_kick_ = true;
  }
  bg_cv_.notify_all();
}

void TranslationStore::CompactorLoop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(bg_mu_);
      bg_cv_.wait(lock, [this] { return bg_kick_ || bg_stop_; });
      if (bg_stop_) return;
      bg_kick_ = false;
      bg_busy_ = true;
    }
    CompactNow().ok();  // best-effort: a failed compaction leaves the log as-is
    {
      std::lock_guard<std::mutex> lock(bg_mu_);
      bg_busy_ = false;
    }
    bg_cv_.notify_all();
  }
}

}  // namespace qmap
