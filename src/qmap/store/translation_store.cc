#include "qmap/store/translation_store.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <utility>
#include <vector>

#include "qmap/expr/parser.h"
#include "qmap/expr/printer.h"
#include "qmap/obs/metrics.h"

namespace qmap {
namespace {

// ---------------------------------------------------------------------------
// Payload codec. A record payload is self-describing enough to rebuild the
// index on recovery (the key rides inside) and to restore a Translation
// byte-identical to the cold-run original (queries round-trip through
// ToParseableText/ParseQuery; coverage through its fingerprint entries).
//
//   payload     := type(u8) key body
//   key         := source(u64) rule_set(u64) query(u64)        -- all LE
//   body(pos)   := str(mapped) str(filter) u32 n  n * (u64 fp, u8 exact)
//   body(neg)   := u32 status_code  str(message)
//   str         := u32 length | bytes
// ---------------------------------------------------------------------------

constexpr uint8_t kPositiveRecord = 1;
constexpr uint8_t kNegativeRecord = 2;

void PutU8(std::string* out, uint8_t v) { out->push_back(static_cast<char>(v)); }

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutStr(std::string* out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

// Bounds-checked little-endian reader over a record payload.
class PayloadReader {
 public:
  explicit PayloadReader(std::string_view data) : data_(data) {}

  bool ReadU8(uint8_t* out) {
    if (pos_ + 1 > data_.size()) return false;
    *out = static_cast<uint8_t>(data_[pos_++]);
    return true;
  }
  bool ReadU32(uint32_t* out) {
    if (pos_ + 4 > data_.size()) return false;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    *out = v;
    return true;
  }
  bool ReadU64(uint64_t* out) {
    if (pos_ + 8 > data_.size()) return false;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    *out = v;
    return true;
  }
  bool ReadStr(std::string_view* out) {
    uint32_t len = 0;
    if (!ReadU32(&len) || pos_ + len > data_.size()) return false;
    *out = data_.substr(pos_, len);
    pos_ += len;
    return true;
  }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

void EncodeKey(std::string* out, const TranslationCacheKey& key) {
  PutU64(out, key.source);
  PutU64(out, key.rule_set);
  PutU64(out, key.query);
}

std::string EncodePositive(const TranslationCacheKey& key,
                           const Translation& value) {
  std::string out;
  PutU8(&out, kPositiveRecord);
  EncodeKey(&out, key);
  PutStr(&out, ToParseableText(value.mapped));
  PutStr(&out, ToParseableText(value.filter));
  const auto entries = value.coverage.Entries();
  PutU32(&out, static_cast<uint32_t>(entries.size()));
  for (const auto& [fp, exact] : entries) {
    PutU64(&out, fp);
    PutU8(&out, exact ? 1 : 0);
  }
  return out;
}

std::string EncodeNegative(const TranslationCacheKey& key,
                           const Status& failure) {
  std::string out;
  PutU8(&out, kNegativeRecord);
  EncodeKey(&out, key);
  PutU32(&out, static_cast<uint32_t>(failure.code()));
  PutStr(&out, failure.message());
  return out;
}

/// Decodes just the record prelude (type + key), used by the recovery scan
/// and compaction, which index records without materializing Translations.
bool DecodePrelude(std::string_view payload, uint8_t* type,
                   TranslationCacheKey* key) {
  PayloadReader r(payload);
  return r.ReadU8(type) &&
         (*type == kPositiveRecord || *type == kNegativeRecord) &&
         r.ReadU64(&key->source) && r.ReadU64(&key->rule_set) &&
         r.ReadU64(&key->query);
}

/// Full decode into the Get()/ReplayInto() result shape.
Result<Result<Translation>> DecodeBody(std::string_view payload) {
  PayloadReader r(payload);
  uint8_t type = 0;
  TranslationCacheKey key;
  if (!r.ReadU8(&type) || !r.ReadU64(&key.source) ||
      !r.ReadU64(&key.rule_set) || !r.ReadU64(&key.query)) {
    return Status::Internal("store record: truncated prelude");
  }
  if (type == kNegativeRecord) {
    uint32_t code = 0;
    std::string_view message;
    if (!r.ReadU32(&code) || !r.ReadStr(&message) || !r.AtEnd() ||
        code > static_cast<uint32_t>(StatusCode::kCancelled)) {
      return Status::Internal("store record: malformed negative body");
    }
    return Result<Translation>(
        Status(static_cast<StatusCode>(code), std::string(message)));
  }
  if (type != kPositiveRecord) {
    return Status::Internal("store record: unknown record type");
  }
  std::string_view mapped_text;
  std::string_view filter_text;
  uint32_t n = 0;
  if (!r.ReadStr(&mapped_text) || !r.ReadStr(&filter_text) || !r.ReadU32(&n)) {
    return Status::Internal("store record: malformed positive body");
  }
  Translation value;
  Result<Query> mapped = ParseQuery(mapped_text);
  if (!mapped.ok()) return mapped.status();
  Result<Query> filter = ParseQuery(filter_text);
  if (!filter.ok()) return filter.status();
  value.mapped = std::move(mapped).value();
  value.filter = std::move(filter).value();
  for (uint32_t i = 0; i < n; ++i) {
    uint64_t fp = 0;
    uint8_t exact = 0;
    if (!r.ReadU64(&fp) || !r.ReadU8(&exact)) {
      return Status::Internal("store record: malformed coverage entry");
    }
    value.coverage.RestoreEntry(fp, exact != 0);
  }
  if (!r.AtEnd()) {
    return Status::Internal("store record: trailing bytes in positive body");
  }
  return Result<Translation>(std::move(value));
}

std::string CompactingPath(const std::string& path) {
  return path + ".compacting";
}

}  // namespace

Result<std::unique_ptr<TranslationStore>> TranslationStore::Open(
    StoreOptions options) {
  if (options.path.empty()) {
    return Status::InvalidArgument("StoreOptions.path must be non-empty");
  }
  const auto t0 = std::chrono::steady_clock::now();

  // A .compacting file is a compaction that never reached its rename — the
  // real log is still complete, so the temp is garbage. Discard it.
  ::unlink(CompactingPath(options.path).c_str());

  auto log = RecordLog::Open(options.path);
  if (!log.ok()) return log.status();

  std::unique_ptr<TranslationStore> store(
      new TranslationStore(std::move(options)));
  store->log_ = std::move(log).value();

  auto scan = store->log_->ScanAndRepair(
      RecordLog::kHeaderBytes,
      [&store](uint64_t offset, std::string_view payload) {
        uint8_t type = 0;
        TranslationCacheKey key;
        if (!DecodePrelude(payload, &type, &key)) {
          // Checksum-valid but undecodable: a foreign or future-format
          // record. Count it and leave it as dead weight for compaction.
          ++store->stats_.dropped_records;
          return;
        }
        store->IndexRecordLocked(key, type == kNegativeRecord, offset,
                                 RecordLog::kFrameOverhead + payload.size());
        ++store->stats_.recovered_records;
      });
  if (!scan.ok()) return scan.status();
  store->stats_.truncated_bytes = scan->truncated_bytes;
  store->stats_.recovery_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());

  if (store->options_.background_compaction) {
    store->compactor_ = std::thread([raw = store.get()] { raw->CompactorLoop(); });
  }
  return store;
}

TranslationStore::~TranslationStore() {
  if (compactor_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(bg_mu_);
      bg_stop_ = true;
    }
    bg_cv_.notify_all();
    compactor_.join();
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (log_ != nullptr) log_->Sync().ok();
}

void TranslationStore::AttachMetrics(MetricsRegistry* registry) {
  attached_registry_ = registry;
  if (registry == nullptr) {
    hits_counter_ = nullptr;
    negative_hits_counter_ = nullptr;
    misses_counter_ = nullptr;
    puts_counter_ = nullptr;
    negative_puts_counter_ = nullptr;
    replay_counter_ = nullptr;
    compactions_counter_ = nullptr;
    compaction_bytes_counter_ = nullptr;
    return;
  }
  hits_counter_ = &registry->counter("qmap_store_hits_total");
  negative_hits_counter_ =
      &registry->counter("qmap_store_negative_hits_total");
  misses_counter_ = &registry->counter("qmap_store_misses_total");
  puts_counter_ = &registry->counter("qmap_store_puts_total");
  negative_puts_counter_ =
      &registry->counter("qmap_store_negative_puts_total");
  replay_counter_ = &registry->counter("qmap_store_replayed_total");
  compactions_counter_ = &registry->counter("qmap_store_compactions_total");
  compaction_bytes_counter_ =
      &registry->counter("qmap_store_compaction_bytes_reclaimed_total");
  // Recovery happened inside Open(), before any registry existed to observe
  // it; backfill so a scrape right after boot sees the boot.
  std::lock_guard<std::mutex> lock(mu_);
  registry->counter("qmap_store_recovered_records_total")
      .Inc(stats_.recovered_records);
  registry->counter("qmap_store_truncated_bytes_total")
      .Inc(stats_.truncated_bytes);
  registry->histogram("qmap_store_recovery_ns").Record(stats_.recovery_ns);
}

void TranslationStore::DetachMetricsIf(MetricsRegistry* registry) {
  if (registry != nullptr && attached_registry_ == registry) {
    AttachMetrics(nullptr);
  }
}

std::optional<Result<Translation>> TranslationStore::Get(
    const TranslationCacheKey& key) {
  std::string payload;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it == index_.end()) {
      ++stats_.misses;
      if (misses_counter_ != nullptr) misses_counter_->Inc();
      return std::nullopt;
    }
    auto read = log_->ReadAt(it->second.offset);
    if (!read.ok()) {
      // Latent on-disk corruption under a checksum that passed at recovery
      // time; treat as a miss so the caller re-translates and overwrites.
      ++stats_.misses;
      if (misses_counter_ != nullptr) misses_counter_->Inc();
      return std::nullopt;
    }
    if (it->second.negative) {
      ++stats_.negative_hits;
      if (negative_hits_counter_ != nullptr) negative_hits_counter_->Inc();
    } else {
      ++stats_.hits;
      if (hits_counter_ != nullptr) hits_counter_->Inc();
    }
    payload = std::move(read).value();
  }
  // Parse outside the lock: decoding re-builds Query trees, which is the
  // expensive part.
  auto decoded = DecodeBody(payload);
  if (!decoded.ok()) return std::nullopt;
  return std::move(decoded).value();
}

Status TranslationStore::Put(const TranslationCacheKey& key,
                             const Translation& value) {
  const std::string payload = EncodePositive(key, value);
  Status s;
  {
    std::lock_guard<std::mutex> lock(mu_);
    s = AppendLocked(key, /*negative=*/false, payload);
  }
  MaybeCompactInline();
  return s;
}

Status TranslationStore::PutNegative(const TranslationCacheKey& key,
                                     const Status& failure) {
  if (failure.ok()) {
    return Status::InvalidArgument("PutNegative requires a failure status");
  }
  const std::string payload = EncodeNegative(key, failure);
  Status s;
  {
    std::lock_guard<std::mutex> lock(mu_);
    s = AppendLocked(key, /*negative=*/true, payload);
  }
  MaybeCompactInline();
  return s;
}

size_t TranslationStore::ReplayInto(
    TranslationCache& cache,
    const std::function<bool(const TranslationCacheKey&)>& filter) {
  // Snapshot the live positive locations, then decode/insert off-lock.
  // Oldest offsets first so the newest entries end up most recent in the
  // LRU — a capacity-limited cache keeps the freshest work.
  std::vector<std::pair<uint64_t, TranslationCacheKey>> live;
  {
    std::lock_guard<std::mutex> lock(mu_);
    live.reserve(index_.size());
    for (const auto& [key, loc] : index_) {
      if (loc.negative) continue;
      if (filter && !filter(key)) continue;
      live.emplace_back(loc.offset, key);
    }
  }
  std::sort(live.begin(), live.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  size_t replayed = 0;
  for (const auto& [offset, key] : live) {
    std::string payload;
    {
      std::lock_guard<std::mutex> lock(mu_);
      // Compaction may have moved the record since the snapshot; re-resolve.
      auto it = index_.find(key);
      if (it == index_.end() || it->second.negative) continue;
      auto read = log_->ReadAt(it->second.offset);
      if (!read.ok()) continue;
      payload = std::move(read).value();
    }
    auto decoded = DecodeBody(payload);
    if (!decoded.ok() || !decoded->ok()) continue;
    cache.Put(key, std::move(*decoded).value());
    ++replayed;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.replayed_records += replayed;
  }
  if (replay_counter_ != nullptr) replay_counter_->Inc(replayed);
  return replayed;
}

Status TranslationStore::CompactNow() {
  // One compaction at a time; Put/Get stay serviceable throughout because
  // the streaming phase below only holds mu_ in short critical sections.
  std::lock_guard<std::mutex> compact_lock(compact_mu_);

  const std::string tmp_path = CompactingPath(options_.path);
  ::unlink(tmp_path.c_str());
  auto tmp = RecordLog::Open(tmp_path);
  if (!tmp.ok()) return tmp.status();
  std::unique_ptr<RecordLog> out = std::move(tmp).value();

  // Phase 1: snapshot the live set (key -> source offset), oldest first so
  // relative record order — and thus replay order — survives compaction.
  std::vector<std::pair<uint64_t, TranslationCacheKey>> live;
  uint64_t snapshot_end = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    live.reserve(index_.size());
    for (const auto& [key, loc] : index_) live.emplace_back(loc.offset, key);
    snapshot_end = log_->end_offset();
  }
  std::sort(live.begin(), live.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  // Phase 2: stream snapshot records into the temp log. Committed bytes are
  // immutable, so ReadAt needs mu_ only to re-resolve the location (the
  // record may have been superseded since the snapshot — skip it then; the
  // catch-up scan in phase 3 picks up the newer version).
  Index new_index;
  for (const auto& [snap_offset, key] : live) {
    std::string payload;
    bool negative = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = index_.find(key);
      if (it == index_.end() || it->second.offset != snap_offset) continue;
      auto read = log_->ReadAt(it->second.offset);
      if (!read.ok()) continue;  // lost to latent corruption; drop it
      payload = std::move(read).value();
      negative = it->second.negative;
    }
    auto appended = out->Append(payload);
    if (!appended.ok()) return appended.status();
    new_index[key] =
        Location{*appended,
                 static_cast<uint32_t>(RecordLog::kFrameOverhead + payload.size()),
                 negative};
  }

  // Phase 3: under the lock, copy over whatever was appended after the
  // snapshot, fsync, rename over the old log, and swap the index. Rename is
  // atomic, so a crash anywhere before it leaves the original intact (a
  // leftover .compacting is discarded at next Open).
  std::lock_guard<std::mutex> lock(mu_);
  Status tail_error = Status::Ok();
  auto tail = log_->ScanAndRepair(
      snapshot_end, [&](uint64_t, std::string_view payload) {
        if (!tail_error.ok()) return;
        uint8_t type = 0;
        TranslationCacheKey key;
        if (!DecodePrelude(payload, &type, &key)) return;
        auto appended = out->Append(payload);
        if (!appended.ok()) {
          tail_error = appended.status();
          return;
        }
        new_index.insert_or_assign(
            key, Location{*appended,
                          static_cast<uint32_t>(RecordLog::kFrameOverhead +
                                                payload.size()),
                          type == kNegativeRecord});
      });
  if (!tail.ok()) return tail.status();
  if (!tail_error.ok()) return tail_error;

  Status sync = out->Sync();
  if (!sync.ok()) return sync;
  if (::rename(tmp_path.c_str(), options_.path.c_str()) != 0) {
    return Status::Internal("rename " + tmp_path + " -> " + options_.path +
                            " failed");
  }
  const uint64_t old_bytes = log_->end_offset();
  const uint64_t new_bytes = out->end_offset();
  // The old RecordLog's fd now points at the unlinked inode; dropping it
  // releases the disk space.
  log_ = std::move(out);
  index_ = std::move(new_index);
  dead_bytes_ = 0;
  ++stats_.compactions;
  const uint64_t reclaimed = old_bytes > new_bytes ? old_bytes - new_bytes : 0;
  stats_.compaction_bytes_reclaimed += reclaimed;
  if (compactions_counter_ != nullptr) compactions_counter_->Inc();
  if (compaction_bytes_counter_ != nullptr) {
    compaction_bytes_counter_->Inc(reclaimed);
  }
  return Status::Ok();
}

void TranslationStore::WaitForIdleCompaction() {
  std::unique_lock<std::mutex> lock(bg_mu_);
  bg_cv_.wait(lock, [this] { return !bg_kick_ && !bg_busy_; });
}

StoreStats TranslationStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  StoreStats out = stats_;
  out.live_records = index_.size();
  out.log_bytes = log_ != nullptr ? log_->end_offset() : 0;
  out.dead_bytes = dead_bytes_;
  return out;
}

size_t TranslationStore::num_entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return index_.size();
}

void TranslationStore::IndexRecordLocked(const TranslationCacheKey& key,
                                         bool negative, uint64_t offset,
                                         uint64_t frame_bytes) {
  auto it = index_.find(key);
  if (it != index_.end()) {
    // Last record wins; the superseded version is dead weight in the log.
    dead_bytes_ += it->second.frame_bytes;
    it->second = Location{offset, static_cast<uint32_t>(frame_bytes), negative};
  } else {
    index_.emplace(key,
                   Location{offset, static_cast<uint32_t>(frame_bytes), negative});
  }
}

Status TranslationStore::AppendLocked(const TranslationCacheKey& key,
                                      bool negative,
                                      const std::string& payload) {
  auto appended = log_->Append(payload);
  if (!appended.ok()) return appended.status();
  const uint64_t frame_bytes = RecordLog::kFrameOverhead + payload.size();
  auto it = index_.find(key);
  const bool existed = it != index_.end();
  if (existed) dead_bytes_ += it->second.frame_bytes;
  index_[key] = Location{*appended, static_cast<uint32_t>(frame_bytes), negative};
  if (negative) {
    ++stats_.negative_puts;
    if (negative_puts_counter_ != nullptr) negative_puts_counter_->Inc();
  } else if (existed) {
    ++stats_.updates;
  } else {
    ++stats_.puts;
    if (puts_counter_ != nullptr) puts_counter_->Inc();
  }
  if (options_.sync_each_put) {
    Status s = log_->Sync();
    if (!s.ok()) return s;
  }
  if (options_.background_compaction && WantsCompactionLocked()) {
    KickCompaction();
  }
  return Status::Ok();
}

void TranslationStore::MaybeCompactInline() {
  if (options_.background_compaction) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!WantsCompactionLocked()) return;
  }
  CompactNow().ok();  // best-effort, same as the background path
}

bool TranslationStore::WantsCompactionLocked() const {
  if (log_ == nullptr) return false;
  const uint64_t total = log_->end_offset();
  if (total < options_.compaction_min_bytes) return false;
  return static_cast<double>(dead_bytes_) >
         options_.compaction_waste * static_cast<double>(total);
}

void TranslationStore::KickCompaction() {
  {
    std::lock_guard<std::mutex> lock(bg_mu_);
    if (bg_stop_) return;
    bg_kick_ = true;
  }
  bg_cv_.notify_all();
}

void TranslationStore::CompactorLoop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(bg_mu_);
      bg_cv_.wait(lock, [this] { return bg_kick_ || bg_stop_; });
      if (bg_stop_) return;
      bg_kick_ = false;
      bg_busy_ = true;
    }
    CompactNow().ok();  // best-effort: a failed compaction leaves the log as-is
    {
      std::lock_guard<std::mutex> lock(bg_mu_);
      bg_busy_ = false;
    }
    bg_cv_.notify_all();
  }
}

}  // namespace qmap
