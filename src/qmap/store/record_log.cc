#include "qmap/store/record_log.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <vector>

#include "qmap/common/fnv.h"

namespace qmap {
namespace {

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

uint32_t GetU32(const unsigned char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
  return v;
}

uint64_t GetU64(const unsigned char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return v;
}

Status ErrnoStatus(const std::string& what, const std::string& path) {
  return Status::Internal(what + " " + path + ": " + std::strerror(errno));
}

// Loops a positional read until `len` bytes arrived, EOF, or error.
ssize_t PReadFull(int fd, void* buf, size_t len, uint64_t offset) {
  size_t done = 0;
  while (done < len) {
    ssize_t n = ::pread(fd, static_cast<char*>(buf) + done, len - done,
                        static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (n == 0) break;  // EOF
    done += static_cast<size_t>(n);
  }
  return static_cast<ssize_t>(done);
}

Status PWriteFull(int fd, const void* buf, size_t len, uint64_t offset,
                  const std::string& path) {
  size_t done = 0;
  while (done < len) {
    ssize_t n = ::pwrite(fd, static_cast<const char*>(buf) + done, len - done,
                         static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("write", path);
    }
    done += static_cast<size_t>(n);
  }
  return Status::Ok();
}

}  // namespace

Result<std::unique_ptr<RecordLog>> RecordLog::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) return ErrnoStatus("open", path);

  off_t size = ::lseek(fd, 0, SEEK_END);
  if (size < 0) {
    Status s = ErrnoStatus("lseek", path);
    ::close(fd);
    return s;
  }

  std::string header;
  header.append(kMagic, sizeof(kMagic));
  PutU32(&header, kFormatVersion);

  if (static_cast<uint64_t>(size) < kHeaderBytes) {
    // New file, or a crash beat the header write: (re)initialize in place.
    if (::ftruncate(fd, 0) != 0) {
      Status s = ErrnoStatus("ftruncate", path);
      ::close(fd);
      return s;
    }
    Status s = PWriteFull(fd, header.data(), header.size(), 0, path);
    if (!s.ok()) {
      ::close(fd);
      return s;
    }
    size = static_cast<off_t>(kHeaderBytes);
  } else {
    char found[kHeaderBytes];
    if (PReadFull(fd, found, kHeaderBytes, 0) !=
            static_cast<ssize_t>(kHeaderBytes) ||
        std::memcmp(found, header.data(), kHeaderBytes) != 0) {
      ::close(fd);
      return Status::InvalidArgument(
          path + " is not a qmap store log (bad magic or format version); "
                 "refusing to overwrite it");
    }
  }
  return std::unique_ptr<RecordLog>(
      new RecordLog(path, fd, static_cast<uint64_t>(size)));
}

RecordLog::~RecordLog() {
  if (fd_ >= 0) ::close(fd_);
}

Result<RecordLog::ScanResult> RecordLog::ScanAndRepair(
    uint64_t from,
    const std::function<void(uint64_t, std::string_view)>& fn) {
  ScanResult out;
  uint64_t offset = from;
  std::vector<char> buf;
  while (offset < end_offset_) {
    const uint64_t remaining = end_offset_ - offset;
    unsigned char frame_header[kFrameOverhead];
    bool intact = false;
    uint32_t len = 0;
    if (remaining >= kFrameOverhead) {
      if (PReadFull(fd_, frame_header, kFrameOverhead, offset) !=
          static_cast<ssize_t>(kFrameOverhead)) {
        return ErrnoStatus("read", path_);
      }
      len = GetU32(frame_header);
      if (len <= kMaxPayloadBytes && remaining - kFrameOverhead >= len) {
        buf.resize(len);
        if (len > 0 && PReadFull(fd_, buf.data(), len, offset + kFrameOverhead) !=
                           static_cast<ssize_t>(len)) {
          return ErrnoStatus("read", path_);
        }
        const uint64_t checksum = GetU64(frame_header + 4);
        intact = Fnv64Hash(std::string_view(buf.data(), len)) == checksum;
      }
    }
    if (!intact) {
      // Torn tail: cut the file back to the last intact record. Everything
      // before `offset` re-verified clean, so the repair loses only the
      // record(s) a crash interrupted.
      out.truncated_bytes = end_offset_ - offset;
      if (::ftruncate(fd_, static_cast<off_t>(offset)) != 0) {
        return ErrnoStatus("ftruncate", path_);
      }
      end_offset_ = offset;
      return out;
    }
    if (fn) fn(offset, std::string_view(buf.data(), len));
    ++out.records;
    offset += kFrameOverhead + len;
  }
  return out;
}

Result<uint64_t> RecordLog::Append(std::string_view payload) {
  if (payload.size() > kMaxPayloadBytes) {
    return Status::InvalidArgument("record payload exceeds kMaxPayloadBytes");
  }
  std::string frame;
  frame.reserve(kFrameOverhead + payload.size());
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  PutU64(&frame, Fnv64Hash(payload));
  frame.append(payload);
  const uint64_t offset = end_offset_;
  Status s = PWriteFull(fd_, frame.data(), frame.size(), offset, path_);
  if (!s.ok()) return s;
  end_offset_ += frame.size();
  return offset;
}

Result<std::string> RecordLog::ReadAt(uint64_t offset) const {
  unsigned char frame_header[kFrameOverhead];
  if (offset + kFrameOverhead > end_offset_ ||
      PReadFull(fd_, frame_header, kFrameOverhead, offset) !=
          static_cast<ssize_t>(kFrameOverhead)) {
    return Status::Internal(path_ + ": record header read failed at offset " +
                            std::to_string(offset));
  }
  const uint32_t len = GetU32(frame_header);
  const uint64_t checksum = GetU64(frame_header + 4);
  if (len > kMaxPayloadBytes || offset + kFrameOverhead + len > end_offset_) {
    return Status::Internal(path_ + ": implausible record length at offset " +
                            std::to_string(offset));
  }
  std::string payload(len, '\0');
  if (len > 0 && PReadFull(fd_, payload.data(), len, offset + kFrameOverhead) !=
                     static_cast<ssize_t>(len)) {
    return Status::Internal(path_ + ": record payload read failed at offset " +
                            std::to_string(offset));
  }
  if (Fnv64Hash(payload) != checksum) {
    return Status::Internal(path_ + ": record checksum mismatch at offset " +
                            std::to_string(offset));
  }
  return payload;
}

Status RecordLog::Sync() {
  if (::fsync(fd_) != 0) return ErrnoStatus("fsync", path_);
  return Status::Ok();
}

}  // namespace qmap
