#ifndef QMAP_STORE_TRANSLATION_STORE_H_
#define QMAP_STORE_TRANSLATION_STORE_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>

#include "qmap/service/translation_cache.h"
#include "qmap/store/record_log.h"

namespace qmap {

class Counter;
class MetricsRegistry;

/// Configuration for the persistent tier (see TranslationStore).
struct StoreOptions {
  /// Path of the record log. At the service level an empty path disables
  /// the disk tier entirely.
  std::string path;
  /// Warm-up replay: when the owning TranslationService boots, live store
  /// entries for its registered sources are replayed into the RAM cache so
  /// a restart comes back warm instead of translating through a cold-start
  /// storm (ROADMAP item 2).
  bool replay_on_boot = true;
  /// Persist permanent per-source failures (invalid/unsupported/not-found/
  /// parse errors) as negative records, so a query that cannot translate
  /// for a source is answered from the index instead of re-running the
  /// matcher just to fail again. Transient resilience-category failures
  /// (unavailable, deadline, cancelled) are never persisted.
  bool cache_negatives = true;
  /// fsync after every Put. Off by default: the log is torn-tail safe
  /// either way (a crash loses at most the unsynced suffix, never corrupts
  /// the prefix), so most deployments prefer throughput and rely on the
  /// compaction/close syncs.
  bool sync_each_put = false;
  /// Compaction trigger: rewrite the log once it exceeds `min_bytes` AND
  /// more than `waste` of it is dead (superseded record versions).
  size_t compaction_min_bytes = 4u << 20;
  double compaction_waste = 0.5;
  /// Run triggered compactions on the store's background thread. Off =
  /// compact inline in the Put that crossed the threshold (deterministic,
  /// used by tests).
  bool background_compaction = true;
  /// Disk budget for *live* records (0 = unbounded). When the live set
  /// outgrows it, the next compaction evicts least-recently-promoted
  /// entries — oldest promotion first, where a promotion is the Put that
  /// wrote the record or a Get hit that lifted it into the RAM cache —
  /// until the survivors fit. The store is a cache of recomputable
  /// translations, so eviction costs only a future re-translation.
  size_t max_live_bytes = 0;
};

/// Monotonic counters over the store's lifetime (mirrored into
/// qmap_store_* metrics when attached; see docs/OBSERVABILITY.md).
struct StoreStats {
  uint64_t hits = 0;            // Get answered with a stored translation
  uint64_t negative_hits = 0;   // Get answered with a stored failure
  uint64_t misses = 0;          // Get found nothing
  uint64_t puts = 0;            // new keys persisted
  uint64_t updates = 0;         // existing keys superseded
  uint64_t negative_puts = 0;   // failure records persisted
  uint64_t replayed_records = 0;   // entries replayed into a RAM cache
  uint64_t recovered_records = 0;  // intact records indexed at Open
  uint64_t dropped_records = 0;    // checksum-valid but undecodable records
  uint64_t truncated_bytes = 0;    // torn-tail bytes cut off at Open
  uint64_t recovery_ns = 0;        // wall time of the Open scan
  uint64_t compactions = 0;
  uint64_t compaction_bytes_reclaimed = 0;
  uint64_t evicted_records = 0;  // live records dropped by the byte budget
  uint64_t evicted_bytes = 0;
  // Point-in-time gauges.
  uint64_t live_records = 0;
  uint64_t log_bytes = 0;
  uint64_t dead_bytes = 0;
};

/// The persistent tier under the sharded LRU TranslationCache: an
/// append-only checksummed record log (qmap/store/record_log.h) plus an
/// in-memory index from TranslationCacheKey to log location, with
/// background compaction — the tree→dump→merge pattern of DESIGN.md §10.
///
/// Records are keyed by the same 192-bit {context, rule-set, query}
/// fingerprint key as the RAM tier, so versioned invalidation is
/// structural: entries written under an old rule set are unreachable the
/// moment the spec or capability fingerprint changes, and compaction
/// eventually reclaims them. Positive records carry the full Translation
/// (mapped query, residue filter, exact coverage) in the parseable text
/// round-trip encoding, so a replayed translation is byte-identical to the
/// one a cold run would produce; negative records carry a permanent
/// failure Status.
///
/// Thread safety: all public methods are safe to call concurrently; the
/// index and log writes are serialized by one mutex (the disk tier sits
/// behind the RAM tier, which absorbs the hot-path traffic), while
/// compaction streams the committed log prefix outside the lock.
class TranslationStore {
 public:
  /// Opens (creating if absent) the store, recovering its index from the
  /// log: torn tails are truncated, superseded versions counted as dead
  /// bytes, and the scan time recorded as recovery_ns. A leftover
  /// mid-compaction temp file from a crashed process is discarded.
  static Result<std::unique_ptr<TranslationStore>> Open(StoreOptions options);

  /// Joins the compaction thread and syncs the log.
  ~TranslationStore();
  TranslationStore(const TranslationStore&) = delete;
  TranslationStore& operator=(const TranslationStore&) = delete;

  /// Mirrors store activity into `registry` as qmap_store_* counters and
  /// the qmap_store_recovery_ns histogram (recovery values are backfilled
  /// at attach, since recovery ran before any registry could be attached).
  /// Same lifetime discipline as TranslationCache::AttachMetrics: attach is
  /// setup-phase only, and an owner destroying the registry first severs
  /// the bridge with DetachMetricsIf.
  void AttachMetrics(MetricsRegistry* registry);
  void DetachMetricsIf(MetricsRegistry* registry);

  /// Looks `key` up in the persistent tier. nullopt = miss; a value holds
  /// either the stored Translation or the stored negative-result Status.
  std::optional<Result<Translation>> Get(const TranslationCacheKey& key);

  /// Persists a completed translation (insert or supersede). The caller
  /// enforces the degraded-never-persisted invariant — a stored entry must
  /// be the exact mapping, never a widened one (docs/ROBUSTNESS.md).
  Status Put(const TranslationCacheKey& key, const Translation& value);

  /// Persists a permanent failure for `key`.
  Status PutNegative(const TranslationCacheKey& key, const Status& failure);

  /// Replays live positive records into `cache` (most recently written
  /// last, so they end up most recent in the LRU). `filter`, when set,
  /// selects which keys to replay — the service passes a predicate that
  /// keeps only entries belonging to its registered sources under their
  /// current rule-set fingerprints. Returns the number replayed.
  size_t ReplayInto(
      TranslationCache& cache,
      const std::function<bool(const TranslationCacheKey&)>& filter = nullptr);

  /// Rewrites the log down to its live records (latest version per key,
  /// negatives included) and swaps it in atomically via rename. Runs
  /// automatically when the waste threshold trips; exposed for tests and
  /// operational tooling.
  Status CompactNow();

  /// Blocks until a pending background compaction kick (if any) finished.
  void WaitForIdleCompaction();

  StoreStats stats() const;
  size_t num_entries() const;
  const StoreOptions& options() const { return options_; }

 private:
  struct Location {
    uint64_t offset = 0;
    uint32_t frame_bytes = 0;
    bool negative = false;
    /// Promotion clock for the eviction policy: bumped when the record is
    /// written and when a Get hit promotes it into the RAM tier, so
    /// compaction under a max_live_bytes budget drops the entries whose
    /// promotion is oldest. Recovery assigns seqs in log order (oldest
    /// record = oldest promotion), which is exactly the write order.
    uint64_t seq = 0;
  };
  using Index =
      std::unordered_map<TranslationCacheKey, Location, TranslationCacheKeyHash>;

  explicit TranslationStore(StoreOptions options)
      : options_(std::move(options)) {}

  /// Indexes one decoded-key record during recovery/catch-up scans.
  void IndexRecordLocked(const TranslationCacheKey& key, bool negative,
                         uint64_t offset, uint64_t frame_bytes);
  Status AppendLocked(const TranslationCacheKey& key, bool negative,
                      const std::string& payload);
  bool WantsCompactionLocked() const;
  void MaybeCompactInline();
  void KickCompaction();
  void CompactorLoop();

  const StoreOptions options_;

  mutable std::mutex mu_;
  std::unique_ptr<RecordLog> log_;  // guarded by mu_
  Index index_;                     // guarded by mu_
  uint64_t dead_bytes_ = 0;         // guarded by mu_
  uint64_t next_seq_ = 0;           // guarded by mu_ (promotion clock)
  StoreStats stats_;                // guarded by mu_ (gauges filled on read)

  // One compaction at a time; ordered strictly before mu_.
  std::mutex compact_mu_;

  // Background compaction thread state.
  std::mutex bg_mu_;
  std::condition_variable bg_cv_;
  bool bg_kick_ = false;
  bool bg_busy_ = false;
  bool bg_stop_ = false;
  std::thread compactor_;

  // Metric bridges (see AttachMetrics); null when detached.
  MetricsRegistry* attached_registry_ = nullptr;
  Counter* hits_counter_ = nullptr;
  Counter* negative_hits_counter_ = nullptr;
  Counter* misses_counter_ = nullptr;
  Counter* puts_counter_ = nullptr;
  Counter* negative_puts_counter_ = nullptr;
  Counter* replay_counter_ = nullptr;
  Counter* compactions_counter_ = nullptr;
  Counter* compaction_bytes_counter_ = nullptr;
  Counter* evicted_counter_ = nullptr;
  Counter* evicted_bytes_counter_ = nullptr;
};

}  // namespace qmap

#endif  // QMAP_STORE_TRANSLATION_STORE_H_
