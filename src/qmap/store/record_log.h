#ifndef QMAP_STORE_RECORD_LOG_H_
#define QMAP_STORE_RECORD_LOG_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "qmap/common/status.h"

namespace qmap {

/// A crash-safe append-only record file — the disk primitive under the
/// persistent translation store (DESIGN.md §10), following the
/// tree→dump→merge idiom of production search-engine stores: the RAM tier
/// absorbs writes, this log is the dump target, and compaction merges it
/// back down to its live records.
///
/// On-disk layout:
///
///   header:  "QMST" magic (4 bytes) | u32 LE format version (currently 1)
///   record:  u32 LE payload length | u64 LE FNV-1a of payload | payload
///
/// Appends are a single positional write of one fully-assembled frame, so a
/// crash can only ever leave a *suffix* of the file torn: either a partial
/// frame (short length/checksum/payload) or a frame whose checksum does not
/// match. ScanAndRepair() detects the first such frame and truncates the
/// file back to the last intact record — the recovery contract the store's
/// kill-mid-append tests pin.
///
/// Thread safety: Append/ScanAndRepair/TruncateTo are exclusive-writer
/// operations (the owning store serializes them under its mutex). ReadAt is
/// a positional pread and is safe concurrently with appends for any record
/// that was already committed when the read started — committed bytes are
/// immutable, which is also what lets compaction stream the live prefix
/// without blocking writers.
class RecordLog {
 public:
  static constexpr char kMagic[4] = {'Q', 'M', 'S', 'T'};
  static constexpr uint32_t kFormatVersion = 1;
  static constexpr uint64_t kHeaderBytes = 8;
  static constexpr uint64_t kFrameOverhead = 12;  // u32 length + u64 checksum
  /// Upper bound on a single payload; anything larger in a length prefix is
  /// treated as corruption (a translation record is a few hundred bytes).
  static constexpr uint32_t kMaxPayloadBytes = 64u << 20;

  /// Opens (creating if absent) the log at `path`. A file shorter than the
  /// header is re-initialized in place (a crash between create and header
  /// write); an existing file with a foreign magic or version is refused —
  /// never silently clobbered.
  static Result<std::unique_ptr<RecordLog>> Open(const std::string& path);

  ~RecordLog();
  RecordLog(const RecordLog&) = delete;
  RecordLog& operator=(const RecordLog&) = delete;

  struct ScanResult {
    uint64_t records = 0;          // intact records visited
    uint64_t truncated_bytes = 0;  // torn/corrupt tail bytes cut off
  };

  /// Walks every record from the head, calling fn(offset, payload) for each
  /// intact one. At the first torn or corrupt frame the file is truncated
  /// back to the end of the last intact record and the scan stops. With a
  /// null fn this is a pure verify-and-repair pass. `from` must be a record
  /// boundary (kHeaderBytes or an offset previously returned by Append).
  Result<ScanResult> ScanAndRepair(
      uint64_t from,
      const std::function<void(uint64_t offset, std::string_view payload)>& fn);

  /// Appends one record; returns the offset its frame starts at.
  Result<uint64_t> Append(std::string_view payload);

  /// Reads back the payload of the record whose frame starts at `offset`,
  /// re-verifying its checksum (latent on-disk corruption surfaces here as
  /// an Internal error rather than as garbage data).
  Result<std::string> ReadAt(uint64_t offset) const;

  /// Flushes appended records to stable storage (fsync).
  Status Sync();

  /// One past the last committed byte (== current file size).
  uint64_t end_offset() const { return end_offset_; }

  const std::string& path() const { return path_; }

 private:
  RecordLog(std::string path, int fd, uint64_t end_offset)
      : path_(std::move(path)), fd_(fd), end_offset_(end_offset) {}

  std::string path_;
  int fd_ = -1;
  uint64_t end_offset_ = 0;
};

}  // namespace qmap

#endif  // QMAP_STORE_RECORD_LOG_H_
