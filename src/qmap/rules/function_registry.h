#ifndef QMAP_RULES_FUNCTION_REGISTRY_H_
#define QMAP_RULES_FUNCTION_REGISTRY_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "qmap/common/status.h"
#include "qmap/rules/term.h"

namespace qmap {

/// The externally supplied functions a mapping specification refers to
/// (Section 4.1): *conditions* restrict rule matchings (`SimpleMapping(A1)`,
/// `Value(N)`), *transforms* convert value formats and attribute names
/// (`RewriteTextPat`, `LnFnToName`, `MakeDate`).  "The functions (as well as
/// the conditions in the head) are supplied externally, and in principle can
/// be written in any programming language" — here they are C++ callables
/// registered by name.
class FunctionRegistry {
 public:
  using Condition = std::function<bool(const std::vector<Term>&)>;
  using Transform = std::function<Result<Term>(const std::vector<Term>&)>;

  FunctionRegistry() = default;

  void RegisterCondition(const std::string& name, Condition fn);
  void RegisterTransform(const std::string& name, Transform fn);

  /// nullptr when unknown.
  const Condition* FindCondition(const std::string& name) const;
  const Transform* FindTransform(const std::string& name) const;

  /// Copies every condition/transform of `other` into this registry,
  /// keeping the existing entry on a name collision. Used by the offline
  /// composer to build a registry a composed spec's rules (which mix
  /// hop-1 and hop-2 function references) can resolve against.
  void MergeFrom(const FunctionRegistry& other);

  /// A registry pre-loaded with the domain-independent built-ins:
  ///
  /// Conditions: `Value(T)` (term is a constant — restricts a pattern to
  /// selection constraints, Section 4.2), `Attribute(T)` (term is an
  /// attribute — restricts to join constraints), `Integer(T)`, `String(T)`.
  ///
  /// Transforms: `RewriteTextPat(P)` (relaxes `near` to `and`; reference
  /// [20]), `LnFnToName(L, F)`, `NameOfLn(L)`, `MakeDate(Y, M)`,
  /// `MakeYearDate(Y)`, `MakeRange(A, B)`, `MakePoint(X, Y)`, `Identity(T)`.
  static FunctionRegistry WithBuiltins();

 private:
  std::map<std::string, Condition> conditions_;
  std::map<std::string, Transform> transforms_;
};

}  // namespace qmap

#endif  // QMAP_RULES_FUNCTION_REGISTRY_H_
