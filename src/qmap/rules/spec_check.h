#ifndef QMAP_RULES_SPEC_CHECK_H_
#define QMAP_RULES_SPEC_CHECK_H_

#include <functional>
#include <string>
#include <vector>

#include "qmap/expr/eval.h"
#include "qmap/rules/spec.h"

namespace qmap {

/// Tools for *empirically* auditing a mapping specification against the
/// soundness/completeness contract of Definitions 3-4.  True soundness is a
/// semantic property judged by the human expert; these checks catch the
/// common authoring mistakes mechanically, over a caller-supplied workload
/// and data universe.

/// One detected violation.
struct SpecViolation {
  std::string rule;       // offending rule name (empty for coverage gaps)
  std::string matching;   // the matched constraints, rendered
  std::string detail;     // what went wrong, with a witness tuple

  std::string ToString() const;
};

/// Checks the *subsumption* half of rule soundness over data: for every
/// matching of every rule in `conjunction`, and every source tuple t in
/// `source_universe`, if t satisfies the matched constraints then
/// `convert(t)` must satisfy the rule's emission.  For rules not marked
/// `inexact`, the converse is also required (the emission must not be a
/// strict relaxation).
///
/// `convert` maps a source-vocabulary tuple to the target vocabulary (the
/// data-conversion direction); `semantics` optionally customizes target
/// constraint evaluation.
std::vector<SpecViolation> CheckRuleSoundness(
    const MappingSpec& spec, const std::vector<Constraint>& conjunction,
    const std::vector<Tuple>& source_universe,
    const std::function<Tuple(const Tuple&)>& convert,
    const ConstraintSemantics* semantics = nullptr);

/// Reports which of `constraints` (taken individually) match no rule at all
/// — they will silently translate to True and fall to the residue filter.
/// A non-empty report is not an error (Definition 4 allows trivial
/// mappings), but it is exactly what a spec author wants to see.
std::vector<Constraint> UncoveredConstraints(
    const MappingSpec& spec, const std::vector<Constraint>& constraints);

}  // namespace qmap

#endif  // QMAP_RULES_SPEC_CHECK_H_
