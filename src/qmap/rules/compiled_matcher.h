#ifndef QMAP_RULES_COMPILED_MATCHER_H_
#define QMAP_RULES_COMPILED_MATCHER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "qmap/rules/matcher.h"
#include "qmap/rules/rule_program.h"

namespace qmap {

/// A bound term by reference. Everything the compiled matcher can bind
/// already lives somewhere stable for the duration of a run — the
/// conjunction's constraints (whole attrs, rhs values, attr names), the
/// plan's pools, or the scratch's view-ref pool — or is a plain integer, so
/// a binding is a 16-byte store. No Value/Attr (i.e. no std::string) is
/// constructed until a matching is materialized or a condition rule needs
/// real Bindings.
struct TermRef {
  enum class Kind : uint8_t { kAttr, kValue, kInt, kStr };

  Kind kind;
  union {
    const Attr* attr;        // kAttr
    const Value* value;      // kValue
    int64_t i;               // kInt — stands for Value::Int(i)
    const std::string* str;  // kStr — stands for Value::Str(*str)
  };

  static TermRef OfAttr(const Attr& a) {
    TermRef r;
    r.kind = Kind::kAttr;
    r.attr = &a;
    return r;
  }
  static TermRef OfValue(const Value& v) {
    TermRef r;
    r.kind = Kind::kValue;
    r.value = &v;
    return r;
  }
  static TermRef OfInt(int64_t v) {
    TermRef r;
    r.kind = Kind::kInt;
    r.i = v;
    return r;
  }
  static TermRef OfStr(const std::string& s) {
    TermRef r;
    r.kind = Kind::kStr;
    r.str = &s;
    return r;
  }
};

/// Materializes the owning Term a ref stands for (copies — off the match
/// hot path, used only for condition rules and final Matching output).
Term MaterializeTermRef(const TermRef& ref);

/// Equivalent to TermEquals(MaterializeTermRef(a), MaterializeTermRef(b))
/// without constructing either Term; preserves numeric cross-kind equality
/// (Int(3) == Real(3.0)) by comparing through double exactly as
/// Value::Equals does.
bool TermRefEquals(const TermRef& a, const TermRef& b);

/// Flat variable environment for the compiled matcher: an undo-log *and*
/// store in one. Slots are (plan var id, TermRef) pairs in bind order;
/// lookups are linear scans (environments hold a handful of variables),
/// Mark / RollbackTo are size / resize. Unlike Bindings (a std::map keyed
/// by variable name) a bind allocates nothing and copies no strings.
///
/// BindOrCheck semantics mirror Bindings::BindOrCheck exactly: first bind
/// wins, a re-bind succeeds iff TermEquals holds on the materialized terms.
class BindingArena {
 public:
  struct Slot {
    int32_t var;
    TermRef ref;
  };

  size_t Mark() const { return slots_.size(); }
  void RollbackTo(size_t mark) { slots_.resize(mark); }
  void Clear() { slots_.clear(); }
  const std::vector<Slot>& slots() const { return slots_; }

  const TermRef* Find(int32_t var) const {
    for (const Slot& s : slots_) {
      if (s.var == var) return &s.ref;
    }
    return nullptr;
  }

  /// Unchecked bind — the caller has already established var is unbound.
  void Bind(int32_t var, const TermRef& ref) {
    slots_.push_back(Slot{var, ref});
  }

  bool BindOrCheck(int32_t var, const TermRef& ref) {
    if (const TermRef* bound = Find(var)) return TermRefEquals(*bound, ref);
    slots_.push_back(Slot{var, ref});
    return true;
  }

 private:
  std::vector<Slot> slots_;
};

/// One deduplicated matching in flat form: spans into the scratch's
/// out_indices / out_bindings pools plus a per-rule chain link (grouped,
/// in-discovery-order emission without any per-rule containers).
struct FlatMatching {
  int32_t rule = 0;
  int32_t idx_begin = 0;
  int32_t idx_count = 0;
  int32_t bind_begin = 0;
  int32_t bind_count = 0;
  int32_t next = -1;
};

/// All mutable state of one compiled-matcher run. Every container keeps its
/// capacity across runs, so a reused scratch (MatchSpecCompiled holds one
/// per thread) makes the steady-state match loop allocation-free — the
/// property bench_matching pins via allocs_per_iter.
class CompiledMatchScratch {
 public:
  /// Sizes/clears every buffer for a (plan, conjunction) pair and builds
  /// the per-conjunction candidate buckets (counting sort; each bucket lists
  /// constraint indices ascending, preserving the naive trial order).
  void Prepare(const CompiledRulePlan& plan,
               const std::vector<Constraint>& constraints);

  // Candidate buckets, per plan slot.
  std::vector<int32_t> bucket_begin;
  std::vector<int32_t> bucket_size;
  std::vector<int32_t> candidates;

  // DFS state.
  std::vector<uint8_t> used_mask;
  std::vector<int32_t> used;
  BindingArena bindings;

  /// Stable backing store for view-ref strings ("fac", "fac[2]") bound
  /// during the current run; TermRefs point at pool entries. PeekViewRef
  /// hands out the entry at the cursor for in-place formatting; the caller
  /// commits it only when the bind actually sticks. The cursor rewinds only
  /// in Prepare (never mid-run, so committed refs stay valid across DFS
  /// backtracking) and entries are reused in place across runs, making
  /// steady-state view-ref binds allocation-free.
  std::string* PeekViewRef() {
    if (viewref_used_ == viewref_pool_.size()) {
      viewref_pool_.push_back(std::make_unique<std::string>());
    }
    return viewref_pool_[viewref_used_].get();
  }
  void CommitViewRef() { ++viewref_used_; }

  // Accumulated results (flat; spans index into the pools).
  std::vector<FlatMatching> matchings;
  std::vector<int32_t> out_indices;
  std::vector<BindingArena::Slot> out_bindings;
  std::vector<int32_t> rule_head;  // first matching of each rule, -1 if none
  std::vector<int32_t> rule_tail;
  std::vector<int32_t> sorted;  // per-accept index sort scratch

 private:
  std::vector<int32_t> fill_cursor_;
  std::vector<int32_t> lit_slot_;  // per-constraint literal slot cache
  std::vector<std::unique_ptr<std::string>> viewref_pool_;
  size_t viewref_used_ = 0;
};

/// Runs the compiled engine for one conjunction into `scratch` without
/// materializing Matching objects; results are scratch->matchings (per-rule
/// chains from scratch->rule_head). Returns the number of deduplicated
/// matchings. `plan` must be (equivalent to) spec.compiled_plan(). The
/// recorded bindings are TermRefs into `constraints`, `plan` and the
/// scratch's own pools: read them before the next Prepare on this scratch
/// and while both referents are alive.
size_t RunCompiled(const CompiledRulePlan& plan, const MappingSpec& spec,
                   const std::vector<Constraint>& constraints,
                   CompiledMatchScratch* scratch,
                   MatchCounters* counters = nullptr);

/// The compiled counterpart of MatchSpec/MatchSpecNaive: byte-identical
/// matchings in byte-identical order (grouped per rule, rule order;
/// per-rule discovery order), materialized from a thread-local scratch.
std::vector<Matching> MatchSpecCompiled(const MappingSpec& spec,
                                        const std::vector<Constraint>& constraints,
                                        MatchCounters* counters = nullptr);

}  // namespace qmap

#endif  // QMAP_RULES_COMPILED_MATCHER_H_
