#ifndef QMAP_RULES_TERM_H_
#define QMAP_RULES_TERM_H_

#include <map>
#include <string>
#include <variant>

#include "qmap/expr/attr.h"
#include "qmap/value/value.h"

namespace qmap {

/// A bound term: what a rule variable can hold and what user-provided
/// conversion functions consume and produce.  Values cover constants (and
/// strings/ints used for attribute-name components and view indexes); Attrs
/// cover whole attribute references bound by attribute variables.
using Term = std::variant<Value, Attr>;

bool TermIsValue(const Term& t);
bool TermIsAttr(const Term& t);
const Value& TermValue(const Term& t);
const Attr& TermAttr(const Term& t);

/// Canonical rendering for diagnostics and matching bookkeeping.
std::string TermToString(const Term& t);

bool TermEquals(const Term& a, const Term& b);

/// Variable environment accumulated while matching a rule head and consumed
/// when firing the rule's tail (Section 4.1).
class Bindings {
 public:
  /// Binds `var` to `term`; if already bound, succeeds iff the terms agree.
  bool BindOrCheck(const std::string& var, const Term& term);

  const Term* Find(const std::string& var) const;

  /// Deterministic rendering (sorted by variable) used to deduplicate
  /// matchings.
  std::string ToString() const;

 private:
  std::map<std::string, Term> vars_;
};

}  // namespace qmap

#endif  // QMAP_RULES_TERM_H_
