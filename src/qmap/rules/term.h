#ifndef QMAP_RULES_TERM_H_
#define QMAP_RULES_TERM_H_

#include <cstddef>
#include <map>
#include <string>
#include <variant>
#include <vector>

#include "qmap/expr/attr.h"
#include "qmap/value/value.h"

namespace qmap {

/// A bound term: what a rule variable can hold and what user-provided
/// conversion functions consume and produce.  Values cover constants (and
/// strings/ints used for attribute-name components and view indexes); Attrs
/// cover whole attribute references bound by attribute variables.
using Term = std::variant<Value, Attr>;

bool TermIsValue(const Term& t);
bool TermIsAttr(const Term& t);
const Value& TermValue(const Term& t);
const Attr& TermAttr(const Term& t);

/// Canonical rendering for diagnostics and matching bookkeeping.
std::string TermToString(const Term& t);

bool TermEquals(const Term& a, const Term& b);

/// Variable environment accumulated while matching a rule head and consumed
/// when firing the rule's tail (Section 4.1).
///
/// Supports an undo log so backtracking matchers can reuse one Bindings
/// object across pattern attempts (Mark/RollbackTo) instead of copying the
/// whole environment per trial. Copies transfer the variable environment
/// only — undo marks are local to the object they were taken on.
class Bindings {
 public:
  Bindings() = default;
  Bindings(const Bindings& other) : vars_(other.vars_) {}
  Bindings& operator=(const Bindings& other) {
    if (this != &other) {
      vars_ = other.vars_;
      log_.clear();
    }
    return *this;
  }
  Bindings(Bindings&&) = default;
  Bindings& operator=(Bindings&&) = default;

  /// Binds `var` to `term`; if already bound, succeeds iff the terms agree.
  bool BindOrCheck(const std::string& var, const Term& term);

  const Term* Find(const std::string& var) const;

  /// Undo-log checkpoint: RollbackTo(Mark()) removes every binding added in
  /// between — including partial bindings left behind by a failed
  /// ConstraintPattern::Match, which is exactly the cleanup a backtracking
  /// matcher needs between attempts.
  size_t Mark() const { return log_.size(); }
  void RollbackTo(size_t mark);

  /// The environment, sorted by variable name.
  const std::map<std::string, Term>& vars() const { return vars_; }
  size_t size() const { return vars_.size(); }

  /// Structural equality: same variables bound to TermEquals-equal terms.
  bool SameAs(const Bindings& other) const;

  /// Hash consistent with SameAs (used to deduplicate matchings without
  /// rendering them to strings).
  size_t Hash() const;

  /// Deterministic rendering (sorted by variable).
  std::string ToString() const;

 private:
  std::map<std::string, Term> vars_;
  std::vector<std::string> log_;  // insertion order of variables added
};

}  // namespace qmap

#endif  // QMAP_RULES_TERM_H_
