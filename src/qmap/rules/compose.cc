#include "qmap/rules/compose.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <set>
#include <utility>

#include "qmap/common/fnv.h"

namespace qmap {
namespace {

// ---------------------------------------------------------------------------
// Variable renaming: each hop-1 rule *instance* participating in a cover is
// renamed apart with an "H<k>_" prefix (uppercase-preserving, so renamed
// names stay variables under the leading-uppercase convention); hop-2 let
// variables get a "T_" prefix. The two namespaces cannot collide with each
// other or with other instances.
// ---------------------------------------------------------------------------

using RenameMap = std::map<std::string, std::string>;

void CollectAttrVars(const AttrExpr& a, std::set<std::string>* vars) {
  if (!a.whole_var.empty()) vars->insert(a.whole_var);
  if (!a.view_var.empty()) vars->insert(a.view_var);
  if (!a.index_var.empty()) vars->insert(a.index_var);
  if (!a.name_var.empty()) vars->insert(a.name_var);
}

void CollectOperandVars(const OperandExpr& o, std::set<std::string>* vars) {
  switch (o.kind) {
    case OperandExpr::Kind::kVar:
      vars->insert(o.var);
      break;
    case OperandExpr::Kind::kAttr:
      CollectAttrVars(o.attr, vars);
      break;
    case OperandExpr::Kind::kValueLiteral:
      break;
  }
}

void CollectArgVars(const ArgExpr& a, std::set<std::string>* vars) {
  switch (a.kind) {
    case ArgExpr::Kind::kVar:
      vars->insert(a.var);
      break;
    case ArgExpr::Kind::kAttr:
      CollectAttrVars(a.attr, vars);
      break;
    case ArgExpr::Kind::kValueLiteral:
      break;
  }
}

void CollectEmissionVars(const EmissionTemplate& e, std::set<std::string>* vars) {
  if (e.kind == EmissionTemplate::Kind::kLeaf) {
    CollectAttrVars(e.leaf.lhs, vars);
    CollectOperandVars(e.leaf.rhs, vars);
    return;
  }
  for (const EmissionTemplate& child : e.children) CollectEmissionVars(child, vars);
}

std::set<std::string> CollectRuleVars(const Rule& rule) {
  std::set<std::string> vars;
  for (const ConstraintPattern& p : rule.head) {
    CollectAttrVars(p.lhs, &vars);
    CollectOperandVars(p.rhs, &vars);
  }
  for (const FunctionCall& c : rule.conditions) {
    for (const ArgExpr& a : c.args) CollectArgVars(a, &vars);
  }
  for (const Assignment& let : rule.lets) {
    vars.insert(let.var);
    for (const ArgExpr& a : let.call.args) CollectArgVars(a, &vars);
  }
  CollectEmissionVars(rule.emission, &vars);
  return vars;
}

std::string Renamed(const RenameMap& map, const std::string& var) {
  auto it = map.find(var);
  return it == map.end() ? var : it->second;
}

AttrExpr RenameAttr(const AttrExpr& a, const RenameMap& map) {
  AttrExpr out = a;
  if (!out.whole_var.empty()) out.whole_var = Renamed(map, out.whole_var);
  if (!out.view_var.empty()) out.view_var = Renamed(map, out.view_var);
  if (!out.index_var.empty()) out.index_var = Renamed(map, out.index_var);
  if (!out.name_var.empty()) out.name_var = Renamed(map, out.name_var);
  return out;
}

OperandExpr RenameOperand(const OperandExpr& o, const RenameMap& map) {
  OperandExpr out = o;
  if (out.kind == OperandExpr::Kind::kVar) {
    out.var = Renamed(map, out.var);
  } else if (out.kind == OperandExpr::Kind::kAttr) {
    out.attr = RenameAttr(out.attr, map);
  }
  return out;
}

ArgExpr RenameArg(const ArgExpr& a, const RenameMap& map) {
  ArgExpr out = a;
  if (out.kind == ArgExpr::Kind::kVar) {
    out.var = Renamed(map, out.var);
  } else if (out.kind == ArgExpr::Kind::kAttr) {
    out.attr = RenameAttr(out.attr, map);
  }
  return out;
}

FunctionCall RenameCall(const FunctionCall& c, const RenameMap& map) {
  FunctionCall out;
  out.function = c.function;
  out.args.reserve(c.args.size());
  for (const ArgExpr& a : c.args) out.args.push_back(RenameArg(a, map));
  return out;
}

EmissionTemplate RenameEmission(const EmissionTemplate& e, const RenameMap& map) {
  EmissionTemplate out;
  out.kind = e.kind;
  if (e.kind == EmissionTemplate::Kind::kLeaf) {
    out.leaf.lhs = RenameAttr(e.leaf.lhs, map);
    out.leaf.op = e.leaf.op;
    out.leaf.rhs = RenameOperand(e.leaf.rhs, map);
    return out;
  }
  out.children.reserve(e.children.size());
  for (const EmissionTemplate& child : e.children) {
    out.children.push_back(RenameEmission(child, map));
  }
  return out;
}

Rule RenameRule(const Rule& rule, const std::string& prefix) {
  RenameMap map;
  for (const std::string& var : CollectRuleVars(rule)) map[var] = prefix + var;
  Rule out;
  out.name = rule.name;
  out.exact = rule.exact;
  out.head.reserve(rule.head.size());
  for (const ConstraintPattern& p : rule.head) {
    ConstraintPattern q;
    q.lhs = RenameAttr(p.lhs, map);
    q.op = p.op;
    q.rhs = RenameOperand(p.rhs, map);
    out.head.push_back(std::move(q));
  }
  out.conditions.reserve(rule.conditions.size());
  for (const FunctionCall& c : rule.conditions) out.conditions.push_back(RenameCall(c, map));
  out.lets.reserve(rule.lets.size());
  for (const Assignment& let : rule.lets) {
    Assignment a;
    a.var = Renamed(map, let.var);
    a.call = RenameCall(let.call, map);
    out.lets.push_back(std::move(a));
  }
  out.emission = RenameEmission(rule.emission, map);
  return out;
}

// ---------------------------------------------------------------------------
// Hop-1 emission leaves. Composition works on the constraint templates a
// hop-1 rule emits: a kLeaf emission offers one slot, a flat kAnd of leaves
// offers one slot per child. Disjunctive or nested emissions are not
// composed (their leaves cannot co-occur unconditionally); such rules are
// reported as an approximation.
// ---------------------------------------------------------------------------

bool FlattenEmissionLeaves(const EmissionTemplate& e,
                           std::vector<ConstraintPattern>* out) {
  switch (e.kind) {
    case EmissionTemplate::Kind::kTrue:
      return true;  // offers no slots, composes trivially
    case EmissionTemplate::Kind::kLeaf:
      out->push_back(e.leaf);
      return true;
    case EmissionTemplate::Kind::kAnd:
      for (const EmissionTemplate& child : e.children) {
        if (child.kind != EmissionTemplate::Kind::kLeaf) return false;
        out->push_back(child.leaf);
      }
      return true;
    case EmissionTemplate::Kind::kOr:
      return false;
  }
  return false;
}

// An emission-side attribute template is compose-time concrete when it has
// no variables and no unindexed view literal (whose instance would come from
// the hop-1 head's implicit index binding at fire time).
bool AttrTemplateIsConcrete(const AttrExpr& a) {
  return !a.is_whole_var() && a.view_var.empty() && a.index_var.empty() &&
         a.name_var.empty() && !a.name_literal.empty() &&
         (a.view_literal.empty() || a.index_literal.has_value());
}

Attr ConcreteAttrOf(const AttrExpr& a) {
  if (!a.view_literal.empty()) {
    return Attr::OfInstance(a.view_literal, *a.index_literal, a.name_literal);
  }
  return Attr::Simple(a.name_literal);
}

// Renders a concrete Attr back as a literal template.
AttrExpr LiteralAttrTemplate(const Attr& a) {
  AttrExpr t;
  if (!a.view.empty()) {
    t.view_literal = a.view;
    t.index_literal = a.instance;
  }
  t.name_literal = a.name;
  return t;
}

// Mirrors the (file-local) view-ref encoding of pattern.cc: a view variable
// binds "fac" or "fac[2]".
void ParseViewRef(const std::string& ref, std::string* view, int* instance) {
  size_t bracket = ref.find('[');
  if (bracket == std::string::npos) {
    *view = ref;
    *instance = 0;
    return;
  }
  *view = ref.substr(0, bracket);
  *instance = std::atoi(ref.substr(bracket + 1).c_str());
}

bool TemplateReferencesAny(const AttrExpr& a, const std::set<std::string>& vars) {
  std::set<std::string> referenced;
  CollectAttrVars(a, &referenced);
  for (const std::string& v : referenced) {
    if (vars.count(v) != 0) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// The substitution σ: hop-2 variable → what it denotes in composed terms.
// Concrete denotations (values, attributes) live in a real Bindings (so
// AttrExpr::Match does the matching, including implicit index variables);
// symbolic denotations — a renamed hop-1 variable or attribute template —
// live here.
// ---------------------------------------------------------------------------

struct SymBinding {
  enum class Kind { kVar, kAttrTemplate };
  std::string hop2_var;
  Kind kind = Kind::kVar;
  std::string var;          // kVar: renamed hop-1 variable
  bool var_is_let = false;  // kVar: the hop-1 variable is `let`-derived
  AttrExpr attr_template;   // kAttrTemplate (renamed hop-1 template)
  bool template_has_let = false;
};

class SymMap {
 public:
  // Tri-state bind: 1 = ok, 0 = genuine mismatch, -1 = conservative
  // (equivalent runtime denotation cannot be proven or expressed).
  int BindVar(const std::string& hop2_var, const std::string& hop1_var,
              bool is_let, const Bindings& concrete) {
    if (concrete.Find(hop2_var) != nullptr) return -1;
    for (const SymBinding& b : entries_) {
      if (b.hop2_var != hop2_var) continue;
      if (b.kind == SymBinding::Kind::kVar && b.var == hop1_var) return 1;
      return -1;  // same hop-2 var, different denotation: needs a runtime check
    }
    SymBinding b;
    b.hop2_var = hop2_var;
    b.kind = SymBinding::Kind::kVar;
    b.var = hop1_var;
    b.var_is_let = is_let;
    entries_.push_back(std::move(b));
    return 1;
  }

  int BindTemplate(const std::string& hop2_var, const AttrExpr& tmpl,
                   bool has_let, const Bindings& concrete) {
    if (concrete.Find(hop2_var) != nullptr) return -1;
    for (const SymBinding& b : entries_) {
      if (b.hop2_var != hop2_var) continue;
      if (b.kind == SymBinding::Kind::kAttrTemplate &&
          b.attr_template.ToString() == tmpl.ToString()) {
        return 1;
      }
      return -1;
    }
    SymBinding b;
    b.hop2_var = hop2_var;
    b.kind = SymBinding::Kind::kAttrTemplate;
    b.attr_template = tmpl;
    b.template_has_let = has_let;
    entries_.push_back(std::move(b));
    return 1;
  }

  const SymBinding* Find(const std::string& hop2_var) const {
    for (const SymBinding& b : entries_) {
      if (b.hop2_var == hop2_var) return &b;
    }
    return nullptr;
  }

  // True when some symbolically bound variable also acquired a concrete
  // binding (via a later pattern) — expressing that equality needs a runtime
  // check the composed rule cannot make.
  bool ConflictsWith(const Bindings& concrete) const {
    for (const SymBinding& b : entries_) {
      if (concrete.Find(b.hop2_var) != nullptr) return true;
    }
    return false;
  }

  size_t Checkpoint() const { return entries_.size(); }
  void Rollback(size_t checkpoint) { entries_.resize(checkpoint); }

 private:
  std::vector<SymBinding> entries_;
};

// ---------------------------------------------------------------------------
// Pattern-vs-template unification. Tri-state like SymMap::BindVar.
// ---------------------------------------------------------------------------

int UnifyLhs(const AttrExpr& pattern, const AttrExpr& tmpl,
             const std::set<std::string>& let_vars, Bindings* concrete,
             SymMap* sym) {
  if (AttrTemplateIsConcrete(tmpl)) {
    return pattern.Match(ConcreteAttrOf(tmpl), concrete) ? 1 : 0;
  }
  if (tmpl.is_whole_var()) {
    if (pattern.is_whole_var()) {
      return sym->BindVar(pattern.whole_var, tmpl.whole_var,
                          let_vars.count(tmpl.whole_var) != 0, *concrete);
    }
    // The hop-1 variable could hold an attribute this structured pattern
    // matches; the composed rule cannot re-check that at fire time.
    return -1;
  }
  // Non-concrete structured template (variable components or an unindexed
  // view literal whose instance is bound at fire time).
  if (pattern.is_whole_var()) {
    return sym->BindTemplate(pattern.whole_var, tmpl,
                             TemplateReferencesAny(tmpl, let_vars), *concrete);
  }
  // Structured-vs-structured: rule out genuine mismatches cheaply, treat
  // the rest as conservative.
  if (!pattern.name_literal.empty() && !tmpl.name_literal.empty() &&
      pattern.name_literal != tmpl.name_literal) {
    return 0;
  }
  if (!pattern.view_literal.empty() && !tmpl.view_literal.empty() &&
      pattern.view_literal != tmpl.view_literal) {
    return 0;
  }
  return -1;
}

int UnifyRhs(const OperandExpr& pattern, const OperandExpr& tmpl,
             const std::set<std::string>& let_vars, Bindings* concrete,
             SymMap* sym) {
  switch (tmpl.kind) {
    case OperandExpr::Kind::kValueLiteral:
      return pattern.Match(Operand(tmpl.value_literal), concrete) ? 1 : 0;
    case OperandExpr::Kind::kAttr:
      if (AttrTemplateIsConcrete(tmpl.attr)) {
        return pattern.Match(Operand(ConcreteAttrOf(tmpl.attr)), concrete) ? 1 : 0;
      }
      if (pattern.kind == OperandExpr::Kind::kVar) {
        return sym->BindTemplate(pattern.var, tmpl.attr,
                                 TemplateReferencesAny(tmpl.attr, let_vars),
                                 *concrete);
      }
      if (pattern.kind == OperandExpr::Kind::kValueLiteral) return 0;
      return -1;  // attr-pattern vs symbolic attr template
    case OperandExpr::Kind::kVar: {
      bool is_let = let_vars.count(tmpl.var) != 0;
      if (pattern.kind == OperandExpr::Kind::kVar) {
        return sym->BindVar(pattern.var, tmpl.var, is_let, *concrete);
      }
      // A literal (or attr) pattern against a hop-1 variable: the runtime
      // value could coincide, but there is no Eq condition to residually
      // check it with — conservative.
      return -1;
    }
  }
  return 0;
}

int UnifyPattern(const ConstraintPattern& pattern, const ConstraintPattern& tmpl,
                 const std::set<std::string>& let_vars, Bindings* concrete,
                 SymMap* sym) {
  if (pattern.op != tmpl.op) return 0;
  int lhs = UnifyLhs(pattern.lhs, tmpl.lhs, let_vars, concrete, sym);
  if (lhs != 1) return lhs;
  return UnifyRhs(pattern.rhs, tmpl.rhs, let_vars, concrete, sym);
}

// ---------------------------------------------------------------------------
// Syntactic may-overlap tests (used for the divergence analyses, never for
// matching): conservative "could these two templates describe a common
// concrete constraint?".
// ---------------------------------------------------------------------------

bool AttrsMayOverlap(const AttrExpr& a, const AttrExpr& b) {
  if (a.is_whole_var() || b.is_whole_var()) return true;
  if (!a.name_literal.empty() && !b.name_literal.empty() &&
      a.name_literal != b.name_literal) {
    return false;
  }
  if (!a.view_literal.empty() && !b.view_literal.empty() &&
      a.view_literal != b.view_literal) {
    return false;
  }
  if (a.index_literal.has_value() && b.index_literal.has_value() &&
      *a.index_literal != *b.index_literal) {
    return false;
  }
  return true;
}

bool OperandsMayOverlap(const OperandExpr& a, const OperandExpr& b) {
  if (a.kind == OperandExpr::Kind::kVar || b.kind == OperandExpr::Kind::kVar) {
    return true;
  }
  if (a.kind != b.kind) return false;  // a value never equals an attr ref
  if (a.kind == OperandExpr::Kind::kValueLiteral) {
    return a.value_literal.Equals(b.value_literal);
  }
  return AttrsMayOverlap(a.attr, b.attr);
}

bool PatternsMayOverlap(const ConstraintPattern& a, const ConstraintPattern& b) {
  return a.op == b.op && AttrsMayOverlap(a.lhs, b.lhs) &&
         OperandsMayOverlap(a.rhs, b.rhs);
}

bool AnyPatternsMayOverlap(const std::vector<ConstraintPattern>& a,
                           const std::vector<ConstraintPattern>& b) {
  for (const ConstraintPattern& p : a) {
    for (const ConstraintPattern& q : b) {
      if (PatternsMayOverlap(p, q)) return true;
    }
  }
  return false;
}

// True when every pattern of `small` may-overlaps a *distinct* pattern of
// `big` (an injective embedding) — the conservative precondition for "a
// matching of `small` could be a sub-matching of one of `big`" and thus be
// suppressed by SCM's sub-matching suppression.
bool InjectivelyEmbeddable(const std::vector<ConstraintPattern>& small,
                           const std::vector<ConstraintPattern>& big,
                           size_t index, std::vector<bool>* used) {
  if (index == small.size()) return true;
  for (size_t i = 0; i < big.size(); ++i) {
    if ((*used)[i]) continue;
    if (!PatternsMayOverlap(small[index], big[i])) continue;
    (*used)[i] = true;
    if (InjectivelyEmbeddable(small, big, index + 1, used)) return true;
    (*used)[i] = false;
  }
  return false;
}

bool CouldBeSuppressedBy(const Rule& small, const Rule& big) {
  if (small.head.size() >= big.head.size()) return false;
  std::vector<bool> used(big.head.size(), false);
  return InjectivelyEmbeddable(small.head, big.head, 0, &used);
}

// ---------------------------------------------------------------------------
// The cover enumerator: one run per hop-2 rule.
// ---------------------------------------------------------------------------

// A hop-1 rule instance active in the cover under construction.
struct Instance {
  size_t rule_index;  // into the composable hop-1 rule list
  Rule renamed;
  std::vector<ConstraintPattern> leaves;  // renamed emission leaves
  std::vector<bool> used;
  std::set<std::string> let_vars;  // renamed let-variable names
};

struct RewrittenArg {
  int status = 1;  // 1 ok, -1 conservative (0 unused)
  ArgExpr arg;
  bool concrete = false;        // literal value or fully literal attr
  bool references_let = false;  // denotation depends on a hop-1 `let` result
};

struct RewrittenAttr {
  int status = 1;
  AttrExpr attr;
  bool concrete = false;
  bool references_let = false;
};

class Enumerator {
 public:
  Enumerator(const MappingSpec& hop1, const MappingSpec& hop2,
             const ComposeOptions& options, ComposeStats* stats)
      : hop1_(hop1), hop2_(hop2), options_(options), stats_(stats) {}

  // Splits hop-1 rules into composable ones (flattenable emissions) and
  // reports the rest as approximations.
  void Prepare() {
    const std::vector<Rule>& rules = hop1_.rules();
    for (size_t i = 0; i < rules.size(); ++i) {
      std::vector<ConstraintPattern> leaves;
      if (FlattenEmissionLeaves(rules[i].emission, &leaves)) {
        composable_.push_back(i);
        raw_leaves_.push_back(std::move(leaves));
      } else {
        MarkApproximate("hop-1 rule " + rules[i].name +
                        " has a disjunctive/nested emission; its outputs are "
                        "not composed");
      }
    }
  }

  // Enumerates covers for one hop-2 rule, appending composed rules to *out.
  Status Run(const Rule& hop2_rule, std::vector<Rule>* out) {
    h2_ = &hop2_rule;
    out_ = out;
    instances_.clear();
    concrete_ = Bindings();
    sym_ = SymMap();
    covers_for_rule_ = 0;
    cap_note_emitted_ = false;
    h2_let_vars_.clear();
    for (const Assignment& let : hop2_rule.lets) h2_let_vars_.insert(let.var);
    error_ = Status::Ok();
    Assign(0);
    return error_;
  }

  const std::vector<size_t>& composable() const { return composable_; }

  // Hop-1 rules (by index into hop1_.rules()) that fed at least one emitted
  // composed rule.
  const std::set<size_t>& covered_hop1_rules() const { return covered_; }

 private:
  void MarkApproximate(const std::string& note) {
    if (!notes_seen_.insert(note).second) return;
    ++stats_->approximate_marks;
    stats_->notes.push_back(note);
  }

  void Assign(size_t j) {
    if (!error_.ok()) return;
    if (covers_for_rule_ >= options_.max_covers_per_rule) {
      if (!cap_note_emitted_) {
        cap_note_emitted_ = true;
        MarkApproximate("rule " + h2_->name +
                        ": cover enumeration stopped at max_covers_per_rule");
      }
      return;
    }
    if (j == h2_->head.size()) {
      EmitCover();
      return;
    }
    const ConstraintPattern& pattern = h2_->head[j];
    // Reuse an existing instance's unused emission slot...
    for (size_t i = 0; i < instances_.size(); ++i) {
      for (size_t l = 0; l < instances_[i].leaves.size(); ++l) {
        if (instances_[i].used[l]) continue;
        TryChoice(i, l, pattern, j);
      }
    }
    // ...or open a fresh instance of any composable hop-1 rule.
    for (size_t r = 0; r < composable_.size(); ++r) {
      PushInstance(r);
      size_t i = instances_.size() - 1;
      for (size_t l = 0; l < instances_[i].leaves.size(); ++l) {
        TryChoice(i, l, pattern, j);
      }
      instances_.pop_back();
    }
  }

  void TryChoice(size_t instance, size_t leaf, const ConstraintPattern& pattern,
                 size_t j) {
    if (!error_.ok()) return;
    const Instance& inst = instances_[instance];
    size_t cmark = concrete_.Mark();
    size_t smark = sym_.Checkpoint();
    int r = UnifyPattern(pattern, inst.leaves[leaf], inst.let_vars, &concrete_,
                         &sym_);
    if (r == 1 && sym_.ConflictsWith(concrete_)) r = -1;
    if (r == 1) {
      // Index instances_ afresh around the recursion: Assign() pushes and
      // pops instances, which can reallocate the vector (the size — and so
      // the index — is restored on return, but references are not).
      instances_[instance].used[leaf] = true;
      Assign(j + 1);
      instances_[instance].used[leaf] = false;
    } else if (r == -1) {
      ++stats_->skipped_covers;
      MarkApproximate("rule " + h2_->name + ": pattern " + pattern.ToString() +
                      " unifies only conservatively with emission " +
                      inst.leaves[leaf].ToString() + " of hop-1 rule " +
                      inst.renamed.name);
    }
    concrete_.RollbackTo(cmark);
    sym_.Rollback(smark);
  }

  void PushInstance(size_t composable_index) {
    const Rule& rule = hop1_.rules()[composable_[composable_index]];
    std::string prefix = "H" + std::to_string(instances_.size()) + "_";
    Instance inst;
    inst.rule_index = composable_index;
    inst.renamed = RenameRule(rule, prefix);
    FlattenEmissionLeaves(inst.renamed.emission, &inst.leaves);
    inst.used.assign(inst.leaves.size(), false);
    for (const Assignment& let : inst.renamed.lets) inst.let_vars.insert(let.var);
    instances_.push_back(std::move(inst));
  }

  // ------------------------------------------------------------------
  // Rewriting the hop-2 tail through σ.
  // ------------------------------------------------------------------

  RewrittenAttr RewriteAttrTemplate(const AttrExpr& t) const {
    RewrittenAttr out;
    if (t.is_whole_var()) {
      const std::string& w = t.whole_var;
      if (h2_let_vars_.count(w) != 0) {
        out.attr.whole_var = "T_" + w;
        return out;
      }
      if (const Term* term = concrete_.Find(w)) {
        if (TermIsAttr(*term)) {
          out.attr = LiteralAttrTemplate(TermAttr(*term));
          out.concrete = true;
          return out;
        }
        if (TermIsValue(*term) && TermValue(*term).kind() == ValueKind::kString) {
          out.attr.name_literal = TermValue(*term).AsString();
          out.concrete = true;
          return out;
        }
        out.status = -1;
        return out;
      }
      if (const SymBinding* b = sym_.Find(w)) {
        if (b->kind == SymBinding::Kind::kVar) {
          out.attr.whole_var = b->var;
          out.references_let = b->var_is_let;
        } else {
          out.attr = b->attr_template;
          out.references_let = b->template_has_let;
        }
        return out;
      }
      out.status = -1;
      return out;
    }
    out.attr = t;
    auto substitute_component = [&](std::string* var,
                                    auto&& on_concrete) -> bool {
      if (var->empty()) return true;
      if (const Term* term = concrete_.Find(*var)) {
        if (!on_concrete(*term)) {
          out.status = -1;
          return false;
        }
        var->clear();
        return true;
      }
      if (const SymBinding* b = sym_.Find(*var)) {
        if (b->kind != SymBinding::Kind::kVar) {
          out.status = -1;
          return false;
        }
        *var = b->var;
        if (b->var_is_let) out.references_let = true;
        return true;
      }
      out.status = -1;  // unbound component variable
      return false;
    };
    if (!substitute_component(&out.attr.view_var, [&](const Term& term) {
          if (!TermIsValue(term) || TermValue(term).kind() != ValueKind::kString) {
            return false;
          }
          std::string view;
          int instance = 0;
          ParseViewRef(TermValue(term).AsString(), &view, &instance);
          out.attr.view_literal = view;
          if (instance != 0) {
            if (!out.attr.index_var.empty() || out.attr.index_literal.has_value()) {
              return false;
            }
            out.attr.index_literal = instance;
          }
          return true;
        })) {
      return out;
    }
    if (!substitute_component(&out.attr.index_var, [&](const Term& term) {
          if (!TermIsValue(term) || TermValue(term).kind() != ValueKind::kInt) {
            return false;
          }
          out.attr.index_literal = static_cast<int>(TermValue(term).AsInt());
          return true;
        })) {
      return out;
    }
    if (!substitute_component(&out.attr.name_var, [&](const Term& term) {
          if (!TermIsValue(term) || TermValue(term).kind() != ValueKind::kString) {
            return false;
          }
          out.attr.name_literal = TermValue(term).AsString();
          return true;
        })) {
      return out;
    }
    // An unindexed view literal whose instance the hop-2 head captured
    // implicitly: pin the matched instance (the composed head no longer
    // binds hop-2's implicit index variable).
    if (!out.attr.view_literal.empty() && !out.attr.index_literal.has_value() &&
        out.attr.index_var.empty()) {
      const Term* term = concrete_.Find(ImplicitIndexVarName(out.attr.view_literal));
      if (term != nullptr && TermIsValue(*term) &&
          TermValue(*term).kind() == ValueKind::kInt) {
        out.attr.index_literal = static_cast<int>(TermValue(*term).AsInt());
      }
    }
    out.concrete = AttrTemplateIsConcrete(out.attr);
    return out;
  }

  RewrittenArg RewriteArg(const ArgExpr& a) const {
    RewrittenArg out;
    switch (a.kind) {
      case ArgExpr::Kind::kValueLiteral:
        out.arg = a;
        out.concrete = true;
        return out;
      case ArgExpr::Kind::kVar: {
        const std::string& w = a.var;
        if (h2_let_vars_.count(w) != 0) {
          out.arg.kind = ArgExpr::Kind::kVar;
          out.arg.var = "T_" + w;
          return out;
        }
        if (const Term* term = concrete_.Find(w)) {
          if (TermIsValue(*term)) {
            out.arg.kind = ArgExpr::Kind::kValueLiteral;
            out.arg.value_literal = TermValue(*term);
          } else {
            out.arg.kind = ArgExpr::Kind::kAttr;
            out.arg.attr = LiteralAttrTemplate(TermAttr(*term));
          }
          out.concrete = true;
          return out;
        }
        if (const SymBinding* b = sym_.Find(w)) {
          if (b->kind == SymBinding::Kind::kVar) {
            out.arg.kind = ArgExpr::Kind::kVar;
            out.arg.var = b->var;
            out.references_let = b->var_is_let;
          } else {
            out.arg.kind = ArgExpr::Kind::kAttr;
            out.arg.attr = b->attr_template;
            out.references_let = b->template_has_let;
          }
          return out;
        }
        out.status = -1;
        return out;
      }
      case ArgExpr::Kind::kAttr: {
        RewrittenAttr attr = RewriteAttrTemplate(a.attr);
        out.status = attr.status;
        out.references_let = attr.references_let;
        out.concrete = attr.concrete;
        out.arg.kind = ArgExpr::Kind::kAttr;
        out.arg.attr = std::move(attr.attr);
        return out;
      }
    }
    out.status = -1;
    return out;
  }

  // Rewrites the hop-2 operand template through σ.
  int RewriteOperand(const OperandExpr& o, OperandExpr* out) const {
    switch (o.kind) {
      case OperandExpr::Kind::kValueLiteral:
        *out = o;
        return 1;
      case OperandExpr::Kind::kVar: {
        const std::string& w = o.var;
        if (h2_let_vars_.count(w) != 0) {
          out->kind = OperandExpr::Kind::kVar;
          out->var = "T_" + w;
          return 1;
        }
        if (const Term* term = concrete_.Find(w)) {
          if (TermIsValue(*term)) {
            out->kind = OperandExpr::Kind::kValueLiteral;
            out->value_literal = TermValue(*term);
          } else {
            out->kind = OperandExpr::Kind::kAttr;
            out->attr = LiteralAttrTemplate(TermAttr(*term));
          }
          return 1;
        }
        if (const SymBinding* b = sym_.Find(w)) {
          if (b->kind == SymBinding::Kind::kVar) {
            out->kind = OperandExpr::Kind::kVar;
            out->var = b->var;
          } else {
            out->kind = OperandExpr::Kind::kAttr;
            out->attr = b->attr_template;
          }
          return 1;
        }
        return -1;
      }
      case OperandExpr::Kind::kAttr: {
        RewrittenAttr attr = RewriteAttrTemplate(o.attr);
        if (attr.status != 1) return attr.status;
        out->kind = OperandExpr::Kind::kAttr;
        out->attr = std::move(attr.attr);
        return 1;
      }
    }
    return -1;
  }

  int RewriteEmission(const EmissionTemplate& e, EmissionTemplate* out) const {
    out->kind = e.kind;
    if (e.kind == EmissionTemplate::Kind::kTrue) return 1;
    if (e.kind == EmissionTemplate::Kind::kLeaf) {
      RewrittenAttr lhs = RewriteAttrTemplate(e.leaf.lhs);
      if (lhs.status != 1) return lhs.status;
      out->leaf.lhs = std::move(lhs.attr);
      out->leaf.op = e.leaf.op;
      return RewriteOperand(e.leaf.rhs, &out->leaf.rhs);
    }
    out->children.clear();
    out->children.reserve(e.children.size());
    for (const EmissionTemplate& child : e.children) {
      EmissionTemplate rewritten;
      int r = RewriteEmission(child, &rewritten);
      if (r != 1) return r;
      out->children.push_back(std::move(rewritten));
    }
    return 1;
  }

  // Attempts to resolve a rewritten, fully concrete argument to a Term.
  static Result<Term> ResolveConcreteArg(const ArgExpr& arg) {
    Bindings empty;
    return arg.Resolve(empty);
  }

  void EmitCover() {
    // 1. Rewrite + constant-fold the hop-2 conditions.
    std::vector<FunctionCall> conditions;
    for (const FunctionCall& cond : h2_->conditions) {
      FunctionCall rewritten;
      rewritten.function = cond.function;
      bool all_concrete = true;
      for (const ArgExpr& a : cond.args) {
        RewrittenArg r = RewriteArg(a);
        if (r.status != 1) {
          ++stats_->skipped_covers;
          MarkApproximate("rule " + h2_->name + ": condition " +
                          cond.ToString() + " is not rewritable through σ");
          return;
        }
        if (r.references_let) {
          // The condition would need a hop-1 `let` result, but conditions
          // evaluate before lets run — the cover cannot be expressed.
          ++stats_->skipped_covers;
          MarkApproximate("rule " + h2_->name + ": condition " +
                          cond.ToString() +
                          " depends on a hop-1 let-derived value");
          return;
        }
        if (!r.concrete) all_concrete = false;
        rewritten.args.push_back(std::move(r.arg));
      }
      if (all_concrete) {
        const FunctionRegistry::Condition* fn =
            hop2_.registry().FindCondition(cond.function);
        if (fn == nullptr) {
          ++stats_->skipped_covers;
          MarkApproximate("rule " + h2_->name + ": unknown condition " +
                          cond.function);
          return;
        }
        std::vector<Term> args;
        bool resolved = true;
        for (const ArgExpr& a : rewritten.args) {
          Result<Term> term = ResolveConcreteArg(a);
          if (!term.ok()) {
            resolved = false;
            break;
          }
          args.push_back(*std::move(term));
        }
        if (resolved) {
          if (!(*fn)(args)) {
            // Provably false for every query this cover could serve: the
            // hop-2 rule would never fire sequentially either. Exact skip.
            ++stats_->skipped_covers;
            return;
          }
          ++stats_->folded_conditions;
          continue;  // provably true — drop it
        }
        // Fall through: keep the condition for fire-time evaluation.
      }
      conditions.push_back(std::move(rewritten));
    }

    // 2. Rewrite the hop-2 lets (hop-1 lets have already run by then, so
    // let-derived references are fine here — this is where conversion
    // chains fuse).
    std::vector<Assignment> lets;
    for (const Assignment& let : h2_->lets) {
      Assignment rewritten;
      rewritten.var = "T_" + let.var;
      rewritten.call.function = let.call.function;
      for (const ArgExpr& a : let.call.args) {
        RewrittenArg r = RewriteArg(a);
        if (r.status != 1) {
          ++stats_->skipped_covers;
          MarkApproximate("rule " + h2_->name + ": let " + let.var +
                          " is not rewritable through σ");
          return;
        }
        rewritten.call.args.push_back(std::move(r.arg));
      }
      lets.push_back(std::move(rewritten));
    }

    // 3. Rewrite the emission.
    EmissionTemplate emission;
    if (RewriteEmission(h2_->emission, &emission) != 1) {
      ++stats_->skipped_covers;
      MarkApproximate("rule " + h2_->name +
                      ": emission is not rewritable through σ");
      return;
    }

    // 4. Divergence analyses for this cover.
    for (size_t i = 0; i < instances_.size(); ++i) {
      for (size_t k = i + 1; k < instances_.size(); ++k) {
        if (AnyPatternsMayOverlap(instances_[i].renamed.head,
                                  instances_[k].renamed.head)) {
          // Two instances could match a common constraint; the composed
          // head requires distinct constraints while sequential matching
          // does not.
          MarkApproximate("rules " + instances_[i].renamed.name + " and " +
                          instances_[k].renamed.name +
                          " may overlap on a shared constraint when composed "
                          "through " + h2_->name);
        }
      }
    }
    std::vector<ConstraintPattern> used_leaves;
    for (const Instance& inst : instances_) {
      for (size_t l = 0; l < inst.leaves.size(); ++l) {
        if (inst.used[l]) used_leaves.push_back(inst.leaves[l]);
      }
    }
    for (size_t i = 0; i < used_leaves.size(); ++i) {
      for (size_t k = i + 1; k < used_leaves.size(); ++k) {
        if (PatternsMayOverlap(used_leaves[i], used_leaves[k])) {
          // Two emitted constraints could collapse to one by ∧-idempotence
          // in the intermediate query, letting one constraint satisfy two
          // hop-2 head patterns sequentially.
          MarkApproximate(
              "two hop-1 emissions may collapse to one constraint under " +
              h2_->name);
        }
      }
    }

    // 5. Assemble the composed rule.
    Rule composed;
    composed.name = h2_->name;
    composed.exact = h2_->exact;
    for (const Instance& inst : instances_) {
      composed.name += "*" + inst.renamed.name;
      composed.exact = composed.exact && inst.renamed.exact;
      for (const ConstraintPattern& p : inst.renamed.head) {
        composed.head.push_back(p);
      }
      for (const FunctionCall& c : inst.renamed.conditions) {
        composed.conditions.push_back(c);
      }
      for (const Assignment& let : inst.renamed.lets) {
        composed.lets.push_back(let);
      }
    }
    for (FunctionCall& c : conditions) composed.conditions.push_back(std::move(c));
    for (Assignment& let : lets) composed.lets.push_back(std::move(let));
    composed.emission = std::move(emission);

    ++stats_->covers_found;
    ++covers_for_rule_;
    for (const Instance& inst : instances_) covered_.insert(composable_[inst.rule_index]);
    out_->push_back(std::move(composed));
    if (static_cast<int>(out_->size()) > options_.max_composed_rules) {
      error_ = Status::Unsupported(
          "composition of " + hop1_.target_name() + " and " +
          hop2_.target_name() + " exceeds max_composed_rules");
    }
  }

  const MappingSpec& hop1_;
  const MappingSpec& hop2_;
  const ComposeOptions& options_;
  ComposeStats* stats_;

  std::vector<size_t> composable_;  // indices into hop1_.rules()
  std::vector<std::vector<ConstraintPattern>> raw_leaves_;
  std::set<size_t> covered_;
  std::set<std::string> notes_seen_;

  const Rule* h2_ = nullptr;
  std::vector<Rule>* out_ = nullptr;
  std::vector<Instance> instances_;
  Bindings concrete_;
  SymMap sym_;
  std::set<std::string> h2_let_vars_;
  int covers_for_rule_ = 0;
  bool cap_note_emitted_ = false;
  Status error_;
};

std::string RuleBodyKey(const Rule& rule) {
  Rule copy = rule;
  copy.name.clear();
  return copy.ToString();
}

void CollectRequiredCaps(const EmissionTemplate& e, SourceCapabilities* caps) {
  if (e.kind == EmissionTemplate::Kind::kLeaf) {
    const AttrExpr& lhs = e.leaf.lhs;
    if (!lhs.is_whole_var() && !lhs.name_literal.empty()) {
      caps->Allow(lhs.name_literal, e.leaf.op);
    }
    return;
  }
  for (const EmissionTemplate& child : e.children) {
    CollectRequiredCaps(child, caps);
  }
}

}  // namespace

Result<ComposedSpec> ComposeSpecs(const MappingSpec& hop1,
                                  const MappingSpec& hop2,
                                  const ComposeOptions& options, Trace* trace,
                                  uint64_t parent_span) {
  Span span(trace, "compose.hop", parent_span);
  span.AddAttr("hop1", hop1.target_name());
  span.AddAttr("hop2", hop2.target_name());

  Status valid = hop1.Validate();
  if (!valid.ok()) {
    return Status::InvalidArgument("hop-1 spec invalid: " + valid.message());
  }
  valid = hop2.Validate();
  if (!valid.ok()) {
    return Status::InvalidArgument("hop-2 spec invalid: " + valid.message());
  }

  ComposeStats stats;
  stats.hop1_rules = static_cast<int>(hop1.rules().size());
  stats.hop2_rules = static_cast<int>(hop2.rules().size());

  Enumerator enumerator(hop1, hop2, options, &stats);
  enumerator.Prepare();

  std::vector<Rule> composed_rules;
  for (const Rule& hop2_rule : hop2.rules()) {
    Status s = enumerator.Run(hop2_rule, &composed_rules);
    if (!s.ok()) return s;
  }

  // Lost-suppression analysis: hop-1 rule R whose matchings could be
  // sub-matchings of a wider rule R' (and thus suppressed by SCM inside
  // hop 1) resurrects in the composed spec if R is composed but R' is not —
  // the suppressing wider matching no longer exists at the composed level.
  const std::set<size_t>& covered = enumerator.covered_hop1_rules();
  for (size_t i : enumerator.composable()) {
    if (covered.count(i) == 0) continue;
    for (size_t k : enumerator.composable()) {
      if (k == i || covered.count(k) != 0) continue;
      if (CouldBeSuppressedBy(hop1.rules()[i], hop1.rules()[k])) {
        ++stats.approximate_marks;
        stats.notes.push_back(
            "composed rule from " + hop1.rules()[i].name +
            " may resurrect emissions that " + hop1.rules()[k].name +
            " suppresses in sequential translation");
      }
    }
  }

  // Deduplicate by rule body (symmetric covers produce identical bodies up
  // to the generated name; the runtime matcher re-derives every binding
  // order from one rule).
  std::vector<Rule> unique_rules;
  std::set<std::string> bodies;
  std::set<std::string> names;
  for (Rule& rule : composed_rules) {
    if (!bodies.insert(RuleBodyKey(rule)).second) continue;
    std::string base = rule.name;
    int suffix = 2;
    while (!names.insert(rule.name).second) {
      rule.name = base + "#" + std::to_string(suffix++);
    }
    unique_rules.push_back(std::move(rule));
  }
  stats.composed_rules = static_cast<int>(unique_rules.size());

  auto merged = std::make_shared<FunctionRegistry>(hop1.registry());
  merged->MergeFrom(hop2.registry());
  MappingSpec spec(hop2.target_name(), std::move(merged));
  for (Rule& rule : unique_rules) spec.AddRule(std::move(rule));

  // Seed the composed fingerprint from both parents: re-registering either
  // parent rotates the composed spec's rule_set cache key even when the
  // composed rule text is unchanged.
  Fnv64 seed;
  seed.AddU64(hop1.fingerprint()).AddU64(hop2.fingerprint());
  spec.set_fingerprint_seed(seed.value());

  Status composed_valid = spec.Validate();
  if (!composed_valid.ok()) {
    return Status::Internal("composed spec failed validation (composer bug): " +
                            composed_valid.message());
  }

  span.AddAttr("composed_rules", std::to_string(stats.composed_rules));
  span.AddAttr("skipped_covers", std::to_string(stats.skipped_covers));
  span.AddAttr("approximate_marks", std::to_string(stats.approximate_marks));

  ComposedSpec result;
  result.spec = std::move(spec);
  result.stats = std::move(stats);
  result.exact = result.stats.approximate_marks == 0;
  return result;
}

SourceCapabilities RequiredCapabilities(const MappingSpec& spec) {
  SourceCapabilities caps;
  for (const Rule& rule : spec.rules()) {
    CollectRequiredCaps(rule.emission, &caps);
  }
  return caps;
}

}  // namespace qmap
