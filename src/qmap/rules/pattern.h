#ifndef QMAP_RULES_PATTERN_H_
#define QMAP_RULES_PATTERN_H_

#include <optional>
#include <string>

#include "qmap/common/status.h"
#include "qmap/expr/constraint.h"
#include "qmap/rules/term.h"

namespace qmap {

/// An attribute expression appearing in a rule — usable both as a *pattern*
/// (matched against a constraint's attribute, binding variables) and as a
/// *template* (resolved against bindings when firing a rule's tail).
///
/// Variables follow the paper's convention: capitalized symbols are
/// variables.  Supported shapes (Section 4.1-4.2):
///   * `A1`            — whole-attribute variable, binds the entire Attr
///   * `ln`            — literal bare attribute
///   * `fac.bib`       — literal view + literal name; as a pattern this
///                       matches *any* instance of the view ("fac.bib is an
///                       abbreviation for fac[i].bib")
///   * `fac.A1`        — literal view, name variable (binds a string)
///   * `V1.ln`         — view variable (binds the view name + instance),
///                       literal name
///   * `fac[i].A`      — literal view, index variable (binds an int),
///                       name variable
struct AttrExpr {
  std::string whole_var;  // when non-empty, the other fields are unused

  std::string view_literal;
  std::string view_var;
  std::optional<int> index_literal;
  std::string index_var;
  std::string name_literal;
  std::string name_var;

  bool is_whole_var() const { return !whole_var.empty(); }
  bool has_view() const {
    return !view_literal.empty() || !view_var.empty();
  }

  /// Pattern use: matches `attr`, extending `bindings`. Returns false (and
  /// possibly leaves partial bindings — callers match on scratch copies) on
  /// mismatch.
  bool Match(const Attr& attr, Bindings* bindings) const;

  /// Template use: produces a concrete Attr from `bindings`; unbound
  /// variables are an error.
  Result<Attr> Resolve(const Bindings& bindings) const;

  std::string ToString() const;
};

/// Right-hand-side expression of a rule constraint pattern/template: a plain
/// variable (binds the whole operand, constant or attribute), a literal
/// value, or an attribute expression.
struct OperandExpr {
  enum class Kind { kVar, kValueLiteral, kAttr };

  Kind kind = Kind::kVar;
  std::string var;       // kVar
  Value value_literal;   // kValueLiteral
  AttrExpr attr;         // kAttr

  bool Match(const Operand& operand, Bindings* bindings) const;
  Result<Operand> Resolve(const Bindings& bindings) const;
  std::string ToString() const;
};

/// One constraint pattern in a rule head (or constraint template in an
/// emission), e.g. `[ti contains P1]` or `[V1.ln = V2.ln]`.
struct ConstraintPattern {
  AttrExpr lhs;
  Op op = Op::kEq;
  OperandExpr rhs;

  bool Match(const Constraint& constraint, Bindings* bindings) const;
  Result<Constraint> Resolve(const Bindings& bindings) const;
  std::string ToString() const;
};

/// True if `name` is a variable identifier under the paper's convention
/// (leading uppercase letter).
bool IsVariableName(std::string_view name);

/// The hidden binding carrying the instance matched by an *unindexed* view
/// literal ("fac.bib is an abbreviation for fac[i].bib", Section 4.2). '$'
/// cannot appear in DSL identifiers, so the name cannot collide with user
/// variables. Exposed so the compiled matcher (qmap/rules/rule_program.*)
/// produces byte-identical bindings to AttrExpr::Match.
std::string ImplicitIndexVarName(const std::string& view);

}  // namespace qmap

#endif  // QMAP_RULES_PATTERN_H_
