#include "qmap/rules/term.h"

namespace qmap {

bool TermIsValue(const Term& t) { return std::holds_alternative<Value>(t); }

bool TermIsAttr(const Term& t) { return std::holds_alternative<Attr>(t); }

const Value& TermValue(const Term& t) { return std::get<Value>(t); }

const Attr& TermAttr(const Term& t) { return std::get<Attr>(t); }

std::string TermToString(const Term& t) {
  if (TermIsValue(t)) return TermValue(t).ToString();
  return TermAttr(t).ToString();
}

bool TermEquals(const Term& a, const Term& b) {
  if (TermIsValue(a) && TermIsValue(b)) return TermValue(a).Equals(TermValue(b));
  if (TermIsAttr(a) && TermIsAttr(b)) return TermAttr(a) == TermAttr(b);
  return false;
}

bool Bindings::BindOrCheck(const std::string& var, const Term& term) {
  auto it = vars_.find(var);
  if (it == vars_.end()) {
    vars_.emplace(var, term);
    log_.push_back(var);
    return true;
  }
  return TermEquals(it->second, term);
}

const Term* Bindings::Find(const std::string& var) const {
  auto it = vars_.find(var);
  if (it == vars_.end()) return nullptr;
  return &it->second;
}

void Bindings::RollbackTo(size_t mark) {
  while (log_.size() > mark) {
    vars_.erase(log_.back());
    log_.pop_back();
  }
}

bool Bindings::SameAs(const Bindings& other) const {
  if (vars_.size() != other.vars_.size()) return false;
  auto it = vars_.begin();
  auto jt = other.vars_.begin();
  for (; it != vars_.end(); ++it, ++jt) {
    if (it->first != jt->first || !TermEquals(it->second, jt->second)) {
      return false;
    }
  }
  return true;
}

size_t Bindings::Hash() const {
  // vars_ iterates in sorted order, so the fold is deterministic. Terms hash
  // via CanonicalHash — the FNV of their canonical rendering, computed
  // without materializing the string (same equality relation TermToString
  // gave, minus the allocations).
  size_t h = 0xcbf29ce484222325ull;
  for (const auto& [var, term] : vars_) {
    h ^= std::hash<std::string>{}(var) + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    const uint64_t term_hash = TermIsValue(term)
                                   ? TermValue(term).CanonicalHash()
                                   : TermAttr(term).CanonicalHash();
    h ^= static_cast<size_t>(term_hash) + 0x9e3779b97f4a7c15ull + (h << 6) +
         (h >> 2);
  }
  return h;
}

std::string Bindings::ToString() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [var, term] : vars_) {
    if (!first) out += ", ";
    first = false;
    out += var + "=" + TermToString(term);
  }
  return out + "}";
}

}  // namespace qmap
