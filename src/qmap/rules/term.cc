#include "qmap/rules/term.h"

namespace qmap {

bool TermIsValue(const Term& t) { return std::holds_alternative<Value>(t); }

bool TermIsAttr(const Term& t) { return std::holds_alternative<Attr>(t); }

const Value& TermValue(const Term& t) { return std::get<Value>(t); }

const Attr& TermAttr(const Term& t) { return std::get<Attr>(t); }

std::string TermToString(const Term& t) {
  if (TermIsValue(t)) return TermValue(t).ToString();
  return TermAttr(t).ToString();
}

bool TermEquals(const Term& a, const Term& b) {
  if (TermIsValue(a) && TermIsValue(b)) return TermValue(a).Equals(TermValue(b));
  if (TermIsAttr(a) && TermIsAttr(b)) return TermAttr(a) == TermAttr(b);
  return false;
}

bool Bindings::BindOrCheck(const std::string& var, const Term& term) {
  auto it = vars_.find(var);
  if (it == vars_.end()) {
    vars_.emplace(var, term);
    return true;
  }
  return TermEquals(it->second, term);
}

const Term* Bindings::Find(const std::string& var) const {
  auto it = vars_.find(var);
  if (it == vars_.end()) return nullptr;
  return &it->second;
}

std::string Bindings::ToString() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [var, term] : vars_) {
    if (!first) out += ", ";
    first = false;
    out += var + "=" + TermToString(term);
  }
  return out + "}";
}

}  // namespace qmap
