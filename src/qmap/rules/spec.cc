#include "qmap/rules/spec.h"

#include <set>

#include "qmap/common/fnv.h"
#include "qmap/rules/rule_index.h"
#include "qmap/rules/rule_program.h"

namespace qmap {
namespace {

// Collects the variables a constraint pattern can bind.
void CollectPatternVars(const ConstraintPattern& pattern, std::set<std::string>* vars) {
  const AttrExpr& a = pattern.lhs;
  if (!a.whole_var.empty()) vars->insert(a.whole_var);
  if (!a.view_var.empty()) vars->insert(a.view_var);
  if (!a.index_var.empty()) vars->insert(a.index_var);
  if (!a.name_var.empty()) vars->insert(a.name_var);
  switch (pattern.rhs.kind) {
    case OperandExpr::Kind::kVar:
      vars->insert(pattern.rhs.var);
      break;
    case OperandExpr::Kind::kAttr: {
      const AttrExpr& r = pattern.rhs.attr;
      if (!r.whole_var.empty()) vars->insert(r.whole_var);
      if (!r.view_var.empty()) vars->insert(r.view_var);
      if (!r.index_var.empty()) vars->insert(r.index_var);
      if (!r.name_var.empty()) vars->insert(r.name_var);
      break;
    }
    case OperandExpr::Kind::kValueLiteral:
      break;
  }
}

Status CheckArgsBound(const std::string& rule_name, const FunctionCall& call,
                      const std::set<std::string>& bound) {
  for (const ArgExpr& arg : call.args) {
    std::set<std::string> referenced;
    if (arg.kind == ArgExpr::Kind::kVar) {
      referenced.insert(arg.var);
    } else if (arg.kind == ArgExpr::Kind::kAttr) {
      const AttrExpr& a = arg.attr;
      if (!a.whole_var.empty()) referenced.insert(a.whole_var);
      if (!a.view_var.empty()) referenced.insert(a.view_var);
      if (!a.index_var.empty()) referenced.insert(a.index_var);
      if (!a.name_var.empty()) referenced.insert(a.name_var);
    }
    for (const std::string& var : referenced) {
      if (bound.find(var) == bound.end()) {
        return Status::InvalidArgument("rule " + rule_name + ": variable " + var +
                                       " used in " + call.function +
                                       "() before being bound");
      }
    }
  }
  return Status::Ok();
}

Status CheckEmissionBound(const std::string& rule_name, const EmissionTemplate& t,
                          const std::set<std::string>& bound) {
  if (t.kind == EmissionTemplate::Kind::kLeaf) {
    std::set<std::string> vars;
    CollectPatternVars(t.leaf, &vars);
    for (const std::string& var : vars) {
      if (bound.find(var) == bound.end()) {
        return Status::InvalidArgument("rule " + rule_name + ": emission variable " +
                                       var + " is never bound");
      }
    }
    return Status::Ok();
  }
  for (const EmissionTemplate& child : t.children) {
    Status s = CheckEmissionBound(rule_name, child, bound);
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

}  // namespace

MappingSpec::MappingSpec(const MappingSpec& other)
    : target_name_(other.target_name_),
      registry_(other.registry_),
      rules_(other.rules_) {
  rule_index_.Set(other.rule_index_.Peek());
  compiled_plan_.Set(other.compiled_plan_.Peek());
  std::lock_guard<std::mutex> lock(other.fingerprint_mu_);
  fingerprint_ = other.fingerprint_;
  fingerprint_valid_ = other.fingerprint_valid_;
  fingerprint_seed_ = other.fingerprint_seed_;
}

MappingSpec& MappingSpec::operator=(const MappingSpec& other) {
  if (this == &other) return *this;
  target_name_ = other.target_name_;
  registry_ = other.registry_;
  rules_ = other.rules_;
  rule_index_.Set(other.rule_index_.Peek());
  compiled_plan_.Set(other.compiled_plan_.Peek());
  uint64_t fingerprint = 0;
  bool fingerprint_valid = false;
  uint64_t fingerprint_seed = 0;
  {
    std::lock_guard<std::mutex> lock(other.fingerprint_mu_);
    fingerprint = other.fingerprint_;
    fingerprint_valid = other.fingerprint_valid_;
    fingerprint_seed = other.fingerprint_seed_;
  }
  std::lock_guard<std::mutex> lock(fingerprint_mu_);
  fingerprint_ = fingerprint;
  fingerprint_valid_ = fingerprint_valid;
  fingerprint_seed_ = fingerprint_seed;
  return *this;
}

MappingSpec::MappingSpec(MappingSpec&& other) noexcept
    : target_name_(std::move(other.target_name_)),
      registry_(std::move(other.registry_)),
      rules_(std::move(other.rules_)) {
  rule_index_.Set(other.rule_index_.Peek());
  compiled_plan_.Set(other.compiled_plan_.Peek());
  std::lock_guard<std::mutex> lock(other.fingerprint_mu_);
  fingerprint_ = other.fingerprint_;
  fingerprint_valid_ = other.fingerprint_valid_;
  fingerprint_seed_ = other.fingerprint_seed_;
}

MappingSpec& MappingSpec::operator=(MappingSpec&& other) noexcept {
  if (this == &other) return *this;
  target_name_ = std::move(other.target_name_);
  registry_ = std::move(other.registry_);
  rules_ = std::move(other.rules_);
  rule_index_.Set(other.rule_index_.Peek());
  compiled_plan_.Set(other.compiled_plan_.Peek());
  uint64_t fingerprint = 0;
  bool fingerprint_valid = false;
  uint64_t fingerprint_seed = 0;
  {
    std::lock_guard<std::mutex> lock(other.fingerprint_mu_);
    fingerprint = other.fingerprint_;
    fingerprint_valid = other.fingerprint_valid_;
    fingerprint_seed = other.fingerprint_seed_;
  }
  std::lock_guard<std::mutex> lock(fingerprint_mu_);
  fingerprint_ = fingerprint;
  fingerprint_valid_ = fingerprint_valid;
  fingerprint_seed_ = fingerprint_seed;
  return *this;
}

uint64_t MappingSpec::fingerprint() const {
  std::lock_guard<std::mutex> lock(fingerprint_mu_);
  if (!fingerprint_valid_) {
    // Field-separated so "ab" + "c" and "a" + "bc" cannot collide; rule
    // renderings are canonical (the same text the spec parser accepts).
    Fnv64 fp;
    if (fingerprint_seed_ != 0) fp.AddU64(fingerprint_seed_);
    fp.Add(target_name_).AddByte('\x1f');
    for (const Rule& rule : rules_) fp.Add(rule.ToString()).AddByte('\x1f');
    fingerprint_ = fp.value();
    fingerprint_valid_ = true;
  }
  return fingerprint_;
}

std::shared_ptr<const RuleIndex> MappingSpec::rule_index() const {
  return rule_index_.GetOrBuild(
      [this] { return std::make_shared<const RuleIndex>(rules_); });
}

std::shared_ptr<const CompiledRulePlan> MappingSpec::compiled_plan() const {
  return compiled_plan_.GetOrBuild([this] { return CompileRulePlan(rules_); });
}

const Rule* MappingSpec::FindRule(const std::string& name) const {
  for (const Rule& rule : rules_) {
    if (rule.name == name) return &rule;
  }
  return nullptr;
}

Status MappingSpec::Validate() const {
  for (const Rule& rule : rules_) {
    if (rule.head.empty()) {
      return Status::InvalidArgument("rule " + rule.name + " has an empty head");
    }
    std::set<std::string> bound;
    for (const ConstraintPattern& pattern : rule.head) {
      CollectPatternVars(pattern, &bound);
    }
    for (const FunctionCall& condition : rule.conditions) {
      if (registry_->FindCondition(condition.function) == nullptr) {
        return Status::NotFound("rule " + rule.name + " references unknown condition " +
                                condition.function);
      }
      Status s = CheckArgsBound(rule.name, condition, bound);
      if (!s.ok()) return s;
    }
    for (const Assignment& let : rule.lets) {
      if (registry_->FindTransform(let.call.function) == nullptr) {
        return Status::NotFound("rule " + rule.name + " references unknown transform " +
                                let.call.function);
      }
      Status s = CheckArgsBound(rule.name, let.call, bound);
      if (!s.ok()) return s;
      bound.insert(let.var);
    }
    Status s = CheckEmissionBound(rule.name, rule.emission, bound);
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

std::string MappingSpec::ToString() const {
  std::string out;
  for (const Rule& rule : rules_) {
    out += rule.ToString();
    out += "\n";
  }
  return out;
}

}  // namespace qmap
