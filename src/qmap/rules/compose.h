#ifndef QMAP_RULES_COMPOSE_H_
#define QMAP_RULES_COMPOSE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "qmap/common/status.h"
#include "qmap/mediator/capabilities.h"
#include "qmap/obs/trace.h"
#include "qmap/rules/spec.h"

namespace qmap {

/// Knobs for the offline composer. The defaults are far above anything a
/// realistic rule set produces; the caps exist so adversarial inputs fail
/// loudly instead of exploding combinatorially.
struct ComposeOptions {
  // Max composed rules derived from a single hop-2 rule. Exceeding it stops
  // enumeration for that rule and marks the composition approximate
  // (coverage of the remaining covers is lost, never soundness).
  int max_covers_per_rule = 256;
  // Hard ceiling on total composed rules; exceeding it is an error.
  int max_composed_rules = 8192;
};

/// Counters describing one composition run; exported by the service as
/// qmap_compose_* metrics and echoed on compose.hop trace spans.
struct ComposeStats {
  int hop1_rules = 0;
  int hop2_rules = 0;
  int composed_rules = 0;     // after dedup
  int covers_found = 0;       // before dedup
  int skipped_covers = 0;     // abandoned cover branches (see notes)
  int folded_conditions = 0;  // hop-2 conditions evaluated at compose time
  // Number of divergence risks detected: places where translating through
  // the composed spec may differ from sequential two-hop translation (both
  // stay sound — S(Q) ⊇ Q — but minimality/completeness may differ).
  // Zero marks means the composition is proven evaluation-equivalent on the
  // fragment the analyses cover; the property harness pins this.
  int approximate_marks = 0;
  std::vector<std::string> notes;  // human-readable reasons for the marks
};

/// Result of composing two mapping specs.
struct ComposedSpec {
  MappingSpec spec;
  ComposeStats stats;
  // True iff approximate_marks == 0: composed translation is
  // evaluation-equivalent to sequential hop-1-then-hop-2 translation.
  bool exact = true;
};

/// Composes two mapping specs offline: `hop1` maps the mediator vocabulary
/// to an intermediate vocabulary, `hop2` maps that intermediate vocabulary
/// to the source vocabulary. The result maps mediator → source directly, so
/// a mediator-of-mediators chain S2∘S1(Q) collapses to one translation.
///
/// Method (rule-level symbolic composition, after arXiv 0910.3372): for each
/// hop-2 rule, enumerate the ways its head patterns can be covered by
/// emission leaves of (renamed-apart instances of) hop-1 rules, unifying
/// pattern against template into a substitution σ. Each cover yields one
/// composed rule: head = the participating hop-1 instance heads, conditions
/// = hop-1 conditions plus the hop-2 conditions rewritten through σ
/// (constant-folded when fully concrete), lets = hop-1 lets then hop-2 lets
/// under σ (conversion-function chains fuse here: a hop-1 `let` feeding a
/// hop-2 `let` becomes two sequenced lets of one rule), emission = the
/// hop-2 emission under σ. The composed rule is `exact` only when every
/// participant is.
///
/// The composed spec's registry merges both parents' registries, its target
/// name is `hop2.target_name()`, and its fingerprint is seeded from both
/// parent fingerprints (MappingSpec::set_fingerprint_seed) so the 192-bit
/// translation-store key and the compiled-matcher plan cache invalidate
/// whenever either parent's rule set changes.
///
/// Unification is conservative: covers it cannot express exactly (a literal
/// that would need a runtime equality check, a hop-2 condition over a
/// hop-1 `let`-derived value, conflicting bindings for one variable) are
/// skipped and counted; structural situations where composed and sequential
/// translation can diverge (overlapping hop-1 instances, lost sub-matching
/// suppression, disjunctive hop-1 emissions) are detected and counted as
/// approximate_marks. See DESIGN.md §12 for the soundness argument.
///
/// When `trace` is non-null a `compose.hop` span (child of `parent_span`)
/// records the run with per-hop attributes.
///
/// Errors: malformed parents (Validate failure), the global composed-rule
/// cap, or a composed spec that fails Validate (a composer bug, surfaced
/// loudly rather than silently mistranslating).
Result<ComposedSpec> ComposeSpecs(const MappingSpec& hop1,
                                  const MappingSpec& hop2,
                                  const ComposeOptions& options = {},
                                  Trace* trace = nullptr,
                                  uint64_t parent_span = 0);

/// Derives the capability set a spec's emissions require of their target:
/// Allow(name, op) for every emission leaf whose attribute name is literal.
/// Leaves with variable attribute names cannot be enumerated statically and
/// are skipped — callers with such specs should declare capabilities
/// explicitly.
SourceCapabilities RequiredCapabilities(const MappingSpec& spec);

}  // namespace qmap

#endif  // QMAP_RULES_COMPOSE_H_
