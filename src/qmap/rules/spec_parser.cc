#include "qmap/rules/spec_parser.h"

#include "qmap/common/lexer.h"
#include "qmap/expr/parser.h"

namespace qmap {
namespace {

// Parses an attribute expression: IDENT [ "[" (INT|IDENT) "]" ] ("." IDENT)*.
Result<AttrExpr> ParseAttrExpr(TokenCursor& cursor) {
  Result<std::string> head = cursor.ExpectIdent();
  if (!head.ok()) return head.status();

  AttrExpr expr;
  bool has_index = false;
  std::optional<int> index_literal;
  std::string index_var;
  if (cursor.Peek().kind == TokenKind::kPunct && cursor.Peek().text == "[") {
    cursor.Next();
    const Token& t = cursor.Peek();
    if (t.kind == TokenKind::kNumber && t.is_integer) {
      index_literal = static_cast<int>(cursor.Next().number);
    } else if (t.kind == TokenKind::kIdent) {
      index_var = cursor.Next().text;
    } else {
      return Status::ParseError("expected view index at offset " +
                                std::to_string(t.offset));
    }
    Status s = cursor.ExpectPunct("]");
    if (!s.ok()) return s;
    has_index = true;
  }

  std::vector<std::string> rest;
  while (cursor.TryConsumePunct(".")) {
    Result<std::string> part = cursor.ExpectIdent();
    if (!part.ok()) return part.status();
    rest.push_back(*part);
  }

  if (rest.empty()) {
    if (has_index) {
      return Status::ParseError("view index requires a qualified attribute ('" +
                                *head + "[..]' lacks an attribute name)");
    }
    if (IsVariableName(*head)) {
      expr.whole_var = *head;
    } else {
      expr.name_literal = *head;
    }
    return expr;
  }

  if (IsVariableName(*head)) {
    expr.view_var = *head;
  } else {
    expr.view_literal = *head;
  }
  expr.index_literal = index_literal;
  expr.index_var = index_var;

  // The trailing component may be a variable; interior components must be
  // literals (expanded relation paths like `aubib.bib`).
  std::string trailing = rest.back();
  rest.pop_back();
  for (const std::string& part : rest) {
    if (IsVariableName(part)) {
      return Status::ParseError("variable '" + part +
                                "' not allowed as an interior attribute component");
    }
  }
  if (IsVariableName(trailing) && rest.empty()) {
    expr.name_var = trailing;
  } else if (IsVariableName(trailing)) {
    return Status::ParseError("variable '" + trailing +
                              "' not allowed after a multi-part path");
  } else {
    rest.push_back(trailing);
    std::string name = rest[0];
    for (size_t i = 1; i < rest.size(); ++i) name += "." + rest[i];
    expr.name_literal = std::move(name);
  }
  return expr;
}

bool NextIsValueLiteral(const TokenCursor& cursor) {
  const Token& t = cursor.Peek();
  if (t.kind == TokenKind::kString || t.kind == TokenKind::kNumber) return true;
  return t.kind == TokenKind::kIdent &&
         (t.text == "date" || t.text == "range" || t.text == "point") &&
         cursor.Peek(1).kind == TokenKind::kPunct && cursor.Peek(1).text == "(";
}

Result<OperandExpr> ParseOperandExpr(TokenCursor& cursor) {
  OperandExpr expr;
  if (NextIsValueLiteral(cursor)) {
    Result<Value> value = ParseValueAt(cursor);
    if (!value.ok()) return value.status();
    expr.kind = OperandExpr::Kind::kValueLiteral;
    expr.value_literal = *std::move(value);
    return expr;
  }
  Result<AttrExpr> attr = ParseAttrExpr(cursor);
  if (!attr.ok()) return attr.status();
  if (attr->is_whole_var()) {
    expr.kind = OperandExpr::Kind::kVar;
    expr.var = attr->whole_var;
  } else {
    expr.kind = OperandExpr::Kind::kAttr;
    expr.attr = *std::move(attr);
  }
  return expr;
}

Result<ConstraintPattern> ParseConstraintPattern(TokenCursor& cursor) {
  Status s = cursor.ExpectPunct("[");
  if (!s.ok()) return s;
  ConstraintPattern pattern;
  Result<AttrExpr> lhs = ParseAttrExpr(cursor);
  if (!lhs.ok()) return lhs.status();
  pattern.lhs = *std::move(lhs);
  Result<Op> op = ParseOpAt(cursor);
  if (!op.ok()) return op.status();
  pattern.op = *op;
  Result<OperandExpr> rhs = ParseOperandExpr(cursor);
  if (!rhs.ok()) return rhs.status();
  pattern.rhs = *std::move(rhs);
  s = cursor.ExpectPunct("]");
  if (!s.ok()) return s;
  return pattern;
}

Result<ArgExpr> ParseArgExpr(TokenCursor& cursor) {
  ArgExpr arg;
  if (NextIsValueLiteral(cursor)) {
    Result<Value> value = ParseValueAt(cursor);
    if (!value.ok()) return value.status();
    arg.kind = ArgExpr::Kind::kValueLiteral;
    arg.value_literal = *std::move(value);
    return arg;
  }
  Result<AttrExpr> attr = ParseAttrExpr(cursor);
  if (!attr.ok()) return attr.status();
  if (attr->is_whole_var()) {
    arg.kind = ArgExpr::Kind::kVar;
    arg.var = attr->whole_var;
  } else {
    arg.kind = ArgExpr::Kind::kAttr;
    arg.attr = *std::move(attr);
  }
  return arg;
}

Result<FunctionCall> ParseCall(TokenCursor& cursor) {
  Result<std::string> name = cursor.ExpectIdent();
  if (!name.ok()) return name.status();
  FunctionCall call;
  call.function = *name;
  Status s = cursor.ExpectPunct("(");
  if (!s.ok()) return s;
  if (!cursor.TryConsumePunct(")")) {
    while (true) {
      Result<ArgExpr> arg = ParseArgExpr(cursor);
      if (!arg.ok()) return arg.status();
      call.args.push_back(*std::move(arg));
      if (!cursor.TryConsumePunct(",")) break;
    }
    s = cursor.ExpectPunct(")");
    if (!s.ok()) return s;
  }
  return call;
}

Result<EmissionTemplate> ParseEmitOr(TokenCursor& cursor);

Result<EmissionTemplate> ParseEmitPrimary(TokenCursor& cursor) {
  if (cursor.TryConsumePunct("(")) {
    Result<EmissionTemplate> inner = ParseEmitOr(cursor);
    if (!inner.ok()) return inner;
    Status s = cursor.ExpectPunct(")");
    if (!s.ok()) return s;
    return inner;
  }
  Result<ConstraintPattern> leaf = ParseConstraintPattern(cursor);
  if (!leaf.ok()) return leaf.status();
  EmissionTemplate t;
  t.kind = EmissionTemplate::Kind::kLeaf;
  t.leaf = *std::move(leaf);
  return t;
}

Result<EmissionTemplate> ParseEmitAnd(TokenCursor& cursor) {
  Result<EmissionTemplate> first = ParseEmitPrimary(cursor);
  if (!first.ok()) return first;
  std::vector<EmissionTemplate> parts = {*std::move(first)};
  while (cursor.TryConsumePunct("&") || cursor.TryConsumeIdent("and")) {
    Result<EmissionTemplate> next = ParseEmitPrimary(cursor);
    if (!next.ok()) return next;
    parts.push_back(*std::move(next));
  }
  if (parts.size() == 1) return parts[0];
  EmissionTemplate t;
  t.kind = EmissionTemplate::Kind::kAnd;
  t.children = std::move(parts);
  return t;
}

Result<EmissionTemplate> ParseEmitOr(TokenCursor& cursor) {
  Result<EmissionTemplate> first = ParseEmitAnd(cursor);
  if (!first.ok()) return first;
  std::vector<EmissionTemplate> parts = {*std::move(first)};
  while (cursor.TryConsumePunct("|") || cursor.TryConsumeIdent("or")) {
    Result<EmissionTemplate> next = ParseEmitAnd(cursor);
    if (!next.ok()) return next;
    parts.push_back(*std::move(next));
  }
  if (parts.size() == 1) return parts[0];
  EmissionTemplate t;
  t.kind = EmissionTemplate::Kind::kOr;
  t.children = std::move(parts);
  return t;
}

Result<Rule> ParseRule(TokenCursor& cursor) {
  Status s = Status::Ok();
  Result<std::string> name = cursor.ExpectIdent();
  if (!name.ok()) return name.status();
  Rule rule;
  rule.name = *name;
  if (cursor.TryConsumeIdent("inexact")) rule.exact = false;
  s = cursor.ExpectPunct(":");
  if (!s.ok()) return s;

  while (true) {
    Result<ConstraintPattern> pattern = ParseConstraintPattern(cursor);
    if (!pattern.ok()) return pattern.status();
    rule.head.push_back(*std::move(pattern));
    if (!cursor.TryConsumePunct(";")) break;
  }

  if (cursor.TryConsumeIdent("where")) {
    while (true) {
      Result<FunctionCall> condition = ParseCall(cursor);
      if (!condition.ok()) return condition.status();
      rule.conditions.push_back(*std::move(condition));
      if (!cursor.TryConsumePunct(",")) break;
    }
  }

  s = cursor.ExpectPunct("=>");
  if (!s.ok()) return s;

  while (cursor.TryConsumeIdent("let")) {
    Assignment let;
    Result<std::string> var = cursor.ExpectIdent();
    if (!var.ok()) return var.status();
    let.var = *var;
    s = cursor.ExpectPunct("=");
    if (!s.ok()) return s;
    Result<FunctionCall> call = ParseCall(cursor);
    if (!call.ok()) return call.status();
    let.call = *std::move(call);
    rule.lets.push_back(std::move(let));
    s = cursor.ExpectPunct(";");
    if (!s.ok()) return s;
  }

  if (!cursor.TryConsumeIdent("emit")) {
    return Status::ParseError("rule " + rule.name + ": expected 'emit' but found '" +
                              cursor.Peek().text + "'");
  }
  if (cursor.TryConsumeIdent("true")) {
    rule.emission.kind = EmissionTemplate::Kind::kTrue;
  } else {
    Result<EmissionTemplate> emission = ParseEmitOr(cursor);
    if (!emission.ok()) return emission.status();
    rule.emission = *std::move(emission);
  }
  s = cursor.ExpectPunct(";");
  if (!s.ok()) return s;
  return rule;
}

}  // namespace

Result<MappingSpec> ParseMappingSpec(
    std::string_view text, std::string target_name,
    std::shared_ptr<const FunctionRegistry> registry) {
  Result<std::vector<Token>> tokens = Lexer::Tokenize(text);
  if (!tokens.ok()) return tokens.status();
  TokenCursor cursor(*std::move(tokens));
  MappingSpec spec(std::move(target_name), std::move(registry));
  while (!cursor.AtEnd()) {
    if (!cursor.TryConsumeIdent("rule")) {
      return Status::ParseError("expected 'rule' but found '" + cursor.Peek().text +
                                "' at offset " + std::to_string(cursor.Peek().offset));
    }
    Result<Rule> rule = ParseRule(cursor);
    if (!rule.ok()) return rule.status();
    spec.AddRule(*std::move(rule));
  }
  Status s = spec.Validate();
  if (!s.ok()) return s;
  return spec;
}

}  // namespace qmap
