#ifndef QMAP_RULES_CONTAINMENT_H_
#define QMAP_RULES_CONTAINMENT_H_

#include <string>
#include <vector>

#include "qmap/rules/spec.h"

namespace qmap {

/// Result of the conservative containment test. There is deliberately no
/// "does not contain" verdict: the check is *sound but incomplete* (in the
/// sense of arXiv 1312.5912, where mapping containment is undecidable in
/// general and even restricted fragments are expensive), so every answer it
/// cannot prove collapses to kUnknown. Callers must treat kUnknown exactly
/// like "not contained" — i.e. never prune on it.
enum class ContainmentVerdict {
  kContains,  // proven: every query A translates, B translates the same way
  kUnknown,   // could not prove containment — do NOT prune
};

const char* ContainmentVerdictName(ContainmentVerdict verdict);

/// Conservative syntactic containment check: returns kContains only when
/// every rule of `b` is structurally isomorphic — up to a bijective variable
/// renaming and head-pattern reordering — to some rule of `a`. Under that
/// condition any matching a translator finds against `b`'s rules exists
/// against `a`'s rules with the same emission, so a's translation of any
/// query subsumes b's (A offers at least the mappings B offers).
///
/// What intentionally does NOT count as containment here:
///   * operator widening (`=` head pattern vs `<=` head pattern) — semantic
///     containment may hold but proving it needs theory reasoning;
///   * wildcard/variable-literal overlap (`[A = V]` vs `[ln = V]`) — the
///     variable pattern matches a superset of constraints but may emit
///     structurally different queries;
///   * condition-set weakening (fewer conditions on the a-side rule).
/// All of these return kUnknown; tests/containment_test.cc pins them.
///
/// Function names are treated as globally meaningful (the same convention
/// the translation-cache rule_set fingerprint uses: rule *text* identifies
/// behaviour), so two specs built from separately constructed but
/// identically named registries compare fine.
ContainmentVerdict Contains(const MappingSpec& a, const MappingSpec& b);

/// One pruned source in a containment analysis.
struct PrunedSource {
  std::string name;         // the source whose mapping is subsumed
  std::string subsumed_by;  // the surviving source that proves it
};

/// Result of analysing a set of named specs for redundancy.
struct ContainmentAnalysis {
  std::vector<PrunedSource> pruned;
  // Number of pairwise Contains() calls performed (metrics feed).
  uint64_t checks = 0;
};

/// Finds sources whose mapping is provably contained in another source's
/// mapping. Deterministic: candidates are scanned in the order given (the
/// service passes its sorted catalog), equivalence classes keep the
/// first-listed member, and strict containment keeps the maximal spec.
/// `names[i]` labels `specs[i]`; both vectors must be the same length.
ContainmentAnalysis AnalyzeContainment(
    const std::vector<std::string>& names,
    const std::vector<const MappingSpec*>& specs);

}  // namespace qmap

#endif  // QMAP_RULES_CONTAINMENT_H_
