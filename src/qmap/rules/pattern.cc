#include "qmap/rules/pattern.h"

#include <cctype>
#include <cstdlib>

namespace qmap {
namespace {

// Encodes a view reference (name + instance) as the string a view variable
// binds to, e.g. "fac" or "fac[2]".
std::string ViewRefString(const std::string& view, int instance) {
  if (instance == 0) return view;
  return view + "[" + std::to_string(instance) + "]";
}

// All unindexed references to the same view within one rule share the
// instance (via ImplicitIndexVarName), and emissions resolve to it.
std::string ImplicitIndexVar(const std::string& view) {
  return ImplicitIndexVarName(view);
}

// Decodes ViewRefString back into (view, instance).
void ParseViewRef(const std::string& ref, std::string* view, int* instance) {
  size_t bracket = ref.find('[');
  if (bracket == std::string::npos) {
    *view = ref;
    *instance = 0;
    return;
  }
  *view = ref.substr(0, bracket);
  *instance = std::atoi(ref.substr(bracket + 1).c_str());
}

}  // namespace

bool IsVariableName(std::string_view name) {
  return !name.empty() && std::isupper(static_cast<unsigned char>(name[0]));
}

std::string ImplicitIndexVarName(const std::string& view) {
  return "$idx$" + view;
}

bool AttrExpr::Match(const Attr& attr, Bindings* bindings) const {
  if (is_whole_var()) {
    return bindings->BindOrCheck(whole_var, Term(attr));
  }
  if (!has_view()) {
    // A bare pattern matches the attribute name in any (or no) view.
    if (!name_literal.empty()) {
      if (attr.name != name_literal) return false;
    } else if (!name_var.empty()) {
      if (!bindings->BindOrCheck(name_var, Term(Value::Str(attr.name)))) return false;
    }
    return true;
  }
  if (!view_literal.empty()) {
    if (attr.view != view_literal) return false;
  } else if (!view_var.empty()) {
    if (!bindings->BindOrCheck(
            view_var, Term(Value::Str(ViewRefString(attr.view, attr.instance))))) {
      return false;
    }
  }
  if (index_literal.has_value()) {
    if (attr.instance != *index_literal) return false;
  } else if (!index_var.empty()) {
    if (!bindings->BindOrCheck(index_var,
                               Term(Value::Int(attr.instance)))) {
      return false;
    }
  } else if (!view_literal.empty()) {
    // No index pattern: any instance matches (fac.bib ~ fac[i].bib), but the
    // matched instance is recorded so emissions can reproduce it.
    if (!bindings->BindOrCheck(ImplicitIndexVar(view_literal),
                               Term(Value::Int(attr.instance)))) {
      return false;
    }
  }
  if (!name_literal.empty()) {
    if (attr.name != name_literal) return false;
  } else if (!name_var.empty()) {
    if (!bindings->BindOrCheck(name_var, Term(Value::Str(attr.name)))) return false;
  }
  return true;
}

Result<Attr> AttrExpr::Resolve(const Bindings& bindings) const {
  if (is_whole_var()) {
    const Term* term = bindings.Find(whole_var);
    if (term == nullptr) {
      return Status::InvalidArgument("unbound attribute variable: " + whole_var);
    }
    if (TermIsAttr(*term)) return TermAttr(*term);
    // A string-valued binding denotes a bare attribute name.
    if (TermIsValue(*term) && TermValue(*term).kind() == ValueKind::kString) {
      return Attr::Simple(TermValue(*term).AsString());
    }
    return Status::InvalidArgument("variable " + whole_var +
                                   " is not bound to an attribute");
  }
  Attr attr;
  if (!view_literal.empty()) {
    attr.view = view_literal;
  } else if (!view_var.empty()) {
    const Term* term = bindings.Find(view_var);
    if (term == nullptr || !TermIsValue(*term) ||
        TermValue(*term).kind() != ValueKind::kString) {
      return Status::InvalidArgument("unbound view variable: " + view_var);
    }
    ParseViewRef(TermValue(*term).AsString(), &attr.view, &attr.instance);
  }
  if (index_literal.has_value()) {
    attr.instance = *index_literal;
  } else if (!index_var.empty()) {
    const Term* term = bindings.Find(index_var);
    if (term == nullptr || !TermIsValue(*term) ||
        TermValue(*term).kind() != ValueKind::kInt) {
      return Status::InvalidArgument("unbound index variable: " + index_var);
    }
    attr.instance = static_cast<int>(TermValue(*term).AsInt());
  } else if (!view_literal.empty()) {
    // Unindexed view literal: reproduce the instance the head matched.
    const Term* term = bindings.Find(ImplicitIndexVar(view_literal));
    if (term != nullptr && TermIsValue(*term) &&
        TermValue(*term).kind() == ValueKind::kInt) {
      attr.instance = static_cast<int>(TermValue(*term).AsInt());
    }
  }
  if (!name_literal.empty()) {
    attr.name = name_literal;
  } else if (!name_var.empty()) {
    const Term* term = bindings.Find(name_var);
    if (term == nullptr || !TermIsValue(*term) ||
        TermValue(*term).kind() != ValueKind::kString) {
      return Status::InvalidArgument("unbound name variable: " + name_var);
    }
    attr.name = TermValue(*term).AsString();
  } else {
    return Status::InvalidArgument("attribute expression has no name part");
  }
  return attr;
}

std::string AttrExpr::ToString() const {
  if (is_whole_var()) return whole_var;
  std::string out;
  if (!view_literal.empty()) {
    out += view_literal;
  } else if (!view_var.empty()) {
    out += view_var;
  }
  if (index_literal.has_value()) {
    out += "[" + std::to_string(*index_literal) + "]";
  } else if (!index_var.empty()) {
    out += "[" + index_var + "]";
  }
  if (!out.empty()) out += ".";
  out += !name_literal.empty() ? name_literal : name_var;
  return out;
}

bool OperandExpr::Match(const Operand& operand, Bindings* bindings) const {
  switch (kind) {
    case Kind::kVar: {
      Term term = std::holds_alternative<Value>(operand)
                      ? Term(std::get<Value>(operand))
                      : Term(std::get<Attr>(operand));
      return bindings->BindOrCheck(var, term);
    }
    case Kind::kValueLiteral:
      return std::holds_alternative<Value>(operand) &&
             std::get<Value>(operand).Equals(value_literal);
    case Kind::kAttr:
      return std::holds_alternative<Attr>(operand) &&
             attr.Match(std::get<Attr>(operand), bindings);
  }
  return false;
}

Result<Operand> OperandExpr::Resolve(const Bindings& bindings) const {
  switch (kind) {
    case Kind::kVar: {
      const Term* term = bindings.Find(var);
      if (term == nullptr) {
        return Status::InvalidArgument("unbound operand variable: " + var);
      }
      if (TermIsValue(*term)) return Operand(TermValue(*term));
      return Operand(TermAttr(*term));
    }
    case Kind::kValueLiteral:
      return Operand(value_literal);
    case Kind::kAttr: {
      Result<Attr> resolved = attr.Resolve(bindings);
      if (!resolved.ok()) return resolved.status();
      return Operand(*std::move(resolved));
    }
  }
  return Status::Internal("unreachable operand kind");
}

std::string OperandExpr::ToString() const {
  switch (kind) {
    case Kind::kVar:
      return var;
    case Kind::kValueLiteral:
      return value_literal.ToString();
    case Kind::kAttr:
      return attr.ToString();
  }
  return "?";
}

bool ConstraintPattern::Match(const Constraint& constraint, Bindings* bindings) const {
  if (constraint.op != op) return false;
  if (!lhs.Match(constraint.lhs, bindings)) return false;
  return rhs.Match(constraint.rhs, bindings);
}

Result<Constraint> ConstraintPattern::Resolve(const Bindings& bindings) const {
  Result<Attr> attr = lhs.Resolve(bindings);
  if (!attr.ok()) return attr.status();
  Result<Operand> operand = rhs.Resolve(bindings);
  if (!operand.ok()) return operand.status();
  Constraint c;
  c.lhs = *std::move(attr);
  c.op = op;
  c.rhs = *std::move(operand);
  return c;
}

std::string ConstraintPattern::ToString() const {
  return "[" + lhs.ToString() + " " + std::string(OpName(op)) + " " +
         rhs.ToString() + "]";
}

}  // namespace qmap
