#include "qmap/rules/containment.h"

#include <cstdint>
#include <map>
#include <utility>

namespace qmap {
namespace {

// Bijective variable renaming φ: b-variable → a-variable, built up during
// the structural match with checkpoint/rollback (the head permutation and
// condition multiset searches backtrack).
class VarMap {
 public:
  // Binds b_var ↦ a_var; fails if either side is already mapped to a
  // different partner (φ must stay injective both ways).
  bool Bind(const std::string& b_var, const std::string& a_var) {
    for (const auto& [b, a] : pairs_) {
      if (b == b_var) return a == a_var;
      if (a == a_var) return false;
    }
    pairs_.emplace_back(b_var, a_var);
    return true;
  }

  size_t Checkpoint() const { return pairs_.size(); }
  void Rollback(size_t checkpoint) { pairs_.resize(checkpoint); }

 private:
  std::vector<std::pair<std::string, std::string>> pairs_;
};

// Backtracking-step budget per rule pair. The search space is factorial in
// head size in the worst case; real rule heads are tiny, so a generous cap
// only ever fires on adversarial input — and firing just means kUnknown,
// which is always a sound answer.
constexpr uint64_t kMaxSteps = 1u << 16;

struct MatchContext {
  VarMap vars;
  uint64_t steps = 0;
  bool Budget() { return ++steps <= kMaxSteps; }
};

bool MatchAttrExpr(const AttrExpr& a, const AttrExpr& b, MatchContext* ctx) {
  if (a.is_whole_var() != b.is_whole_var()) return false;
  if (a.is_whole_var()) return ctx->vars.Bind(b.whole_var, a.whole_var);
  if (a.view_literal != b.view_literal) return false;
  if (a.view_var.empty() != b.view_var.empty()) return false;
  if (!a.view_var.empty() && !ctx->vars.Bind(b.view_var, a.view_var)) return false;
  if (a.index_literal != b.index_literal) return false;
  if (a.index_var.empty() != b.index_var.empty()) return false;
  if (!a.index_var.empty() && !ctx->vars.Bind(b.index_var, a.index_var)) return false;
  if (a.name_literal != b.name_literal) return false;
  if (a.name_var.empty() != b.name_var.empty()) return false;
  if (!a.name_var.empty() && !ctx->vars.Bind(b.name_var, a.name_var)) return false;
  return true;
}

bool MatchOperandExpr(const OperandExpr& a, const OperandExpr& b, MatchContext* ctx) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case OperandExpr::Kind::kVar:
      return ctx->vars.Bind(b.var, a.var);
    case OperandExpr::Kind::kValueLiteral:
      return a.value_literal.ToString() == b.value_literal.ToString();
    case OperandExpr::Kind::kAttr:
      return MatchAttrExpr(a.attr, b.attr, ctx);
  }
  return false;
}

// Exact op equality — deliberately no widening (`=` pattern vs `<=` pattern
// stays kUnknown even though the `<=` head matches a superset).
bool MatchPattern(const ConstraintPattern& a, const ConstraintPattern& b,
                  MatchContext* ctx) {
  if (a.op != b.op) return false;
  if (!MatchAttrExpr(a.lhs, b.lhs, ctx)) return false;
  return MatchOperandExpr(a.rhs, b.rhs, ctx);
}

bool MatchArgExpr(const ArgExpr& a, const ArgExpr& b, MatchContext* ctx) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case ArgExpr::Kind::kVar:
      return ctx->vars.Bind(b.var, a.var);
    case ArgExpr::Kind::kValueLiteral:
      return a.value_literal.ToString() == b.value_literal.ToString();
    case ArgExpr::Kind::kAttr:
      return MatchAttrExpr(a.attr, b.attr, ctx);
  }
  return false;
}

bool MatchCall(const FunctionCall& a, const FunctionCall& b, MatchContext* ctx) {
  if (a.function != b.function) return false;
  if (a.args.size() != b.args.size()) return false;
  for (size_t i = 0; i < a.args.size(); ++i) {
    if (!MatchArgExpr(a.args[i], b.args[i], ctx)) return false;
  }
  return true;
}

bool MatchEmission(const EmissionTemplate& a, const EmissionTemplate& b,
                   MatchContext* ctx) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case EmissionTemplate::Kind::kTrue:
      return true;
    case EmissionTemplate::Kind::kLeaf:
      return MatchPattern(a.leaf, b.leaf, ctx);
    case EmissionTemplate::Kind::kAnd:
    case EmissionTemplate::Kind::kOr: {
      // Children compared in order: emission order is part of a rule's
      // canonical rendering, and reordered emissions produce different
      // (if logically equivalent) query trees. Conservative.
      if (a.children.size() != b.children.size()) return false;
      for (size_t i = 0; i < a.children.size(); ++i) {
        if (!MatchEmission(a.children[i], b.children[i], ctx)) return false;
      }
      return true;
    }
  }
  return false;
}

// Matches b's conditions against a's as a multiset (condition order does not
// affect rule semantics), backtracking through the assignment.
bool MatchConditions(const std::vector<FunctionCall>& a,
                     const std::vector<FunctionCall>& b, size_t b_index,
                     std::vector<bool>* used, MatchContext* ctx) {
  if (b_index == b.size()) return true;
  for (size_t i = 0; i < a.size(); ++i) {
    if ((*used)[i]) continue;
    if (!ctx->Budget()) return false;
    size_t checkpoint = ctx->vars.Checkpoint();
    if (MatchCall(a[i], b[b_index], ctx)) {
      (*used)[i] = true;
      if (MatchConditions(a, b, b_index + 1, used, ctx)) return true;
      (*used)[i] = false;
    }
    ctx->vars.Rollback(checkpoint);
  }
  return false;
}

bool MatchTail(const Rule& a, const Rule& b, MatchContext* ctx) {
  if (a.conditions.size() != b.conditions.size()) return false;
  std::vector<bool> used(a.conditions.size(), false);
  size_t checkpoint = ctx->vars.Checkpoint();
  if (!MatchConditions(a.conditions, b.conditions, 0, &used, ctx)) {
    ctx->vars.Rollback(checkpoint);
    return false;
  }
  // Lets run in order and later lets may reference earlier let variables, so
  // they are compared positionally.
  if (a.lets.size() != b.lets.size()) return false;
  for (size_t i = 0; i < a.lets.size(); ++i) {
    if (!ctx->vars.Bind(b.lets[i].var, a.lets[i].var)) return false;
    if (!MatchCall(a.lets[i].call, b.lets[i].call, ctx)) return false;
  }
  return MatchEmission(a.emission, b.emission, ctx);
}

// Backtracks over a permutation assigning each b head pattern a distinct a
// head pattern.
bool MatchHeads(const Rule& a, const Rule& b, size_t b_index,
                std::vector<bool>* used, MatchContext* ctx) {
  if (b_index == b.head.size()) return MatchTail(a, b, ctx);
  for (size_t i = 0; i < a.head.size(); ++i) {
    if ((*used)[i]) continue;
    if (!ctx->Budget()) return false;
    size_t checkpoint = ctx->vars.Checkpoint();
    if (MatchPattern(a.head[i], b.head[b_index], ctx)) {
      (*used)[i] = true;
      if (MatchHeads(a, b, b_index + 1, used, ctx)) return true;
      (*used)[i] = false;
    }
    ctx->vars.Rollback(checkpoint);
  }
  return false;
}

// True when `b` is structurally isomorphic to `a` up to bijective variable
// renaming and head-pattern reordering. Rule names do not participate.
bool RulesIsomorphic(const Rule& a, const Rule& b) {
  if (a.exact != b.exact) return false;
  if (a.head.size() != b.head.size()) return false;
  MatchContext ctx;
  std::vector<bool> used(a.head.size(), false);
  return MatchHeads(a, b, 0, &used, &ctx);
}

}  // namespace

const char* ContainmentVerdictName(ContainmentVerdict verdict) {
  switch (verdict) {
    case ContainmentVerdict::kContains:
      return "contains";
    case ContainmentVerdict::kUnknown:
      return "unknown";
  }
  return "unknown";
}

ContainmentVerdict Contains(const MappingSpec& a, const MappingSpec& b) {
  for (const Rule& rule_b : b.rules()) {
    bool found = false;
    for (const Rule& rule_a : a.rules()) {
      if (RulesIsomorphic(rule_a, rule_b)) {
        found = true;
        break;
      }
    }
    if (!found) return ContainmentVerdict::kUnknown;
  }
  return ContainmentVerdict::kContains;
}

ContainmentAnalysis AnalyzeContainment(
    const std::vector<std::string>& names,
    const std::vector<const MappingSpec*>& specs) {
  ContainmentAnalysis analysis;
  const size_t n = names.size();
  // Memoized pairwise verdicts (Contains over the same pair is pure).
  std::map<std::pair<size_t, size_t>, ContainmentVerdict> memo;
  auto contains = [&](size_t x, size_t y) {
    auto it = memo.find({x, y});
    if (it != memo.end()) return it->second;
    ++analysis.checks;
    ContainmentVerdict v = Contains(*specs[x], *specs[y]);
    memo.emplace(std::make_pair(x, y), v);
    return v;
  };
  std::vector<bool> pruned(n, false);
  for (size_t x = 0; x < n; ++x) {
    for (size_t y = 0; y < n; ++y) {
      if (y == x || pruned[y]) continue;
      if (contains(y, x) != ContainmentVerdict::kContains) continue;
      // Y's mapping subsumes X's. Prune X unless the two are equivalent and
      // Y comes later — then X is the class's canonical keeper.
      bool keep_x = y > x && contains(x, y) == ContainmentVerdict::kContains;
      if (keep_x) continue;
      pruned[x] = true;
      analysis.pruned.push_back({names[x], names[y]});
      break;
    }
  }
  return analysis;
}

}  // namespace qmap
