#include "qmap/rules/rule_program.h"

#include <atomic>
#include <chrono>
#include <utility>

#include "qmap/rules/rule_index.h"

namespace qmap {
namespace {

std::atomic<uint64_t> g_plans_built{0};
std::atomic<uint64_t> g_compile_ns{0};
std::atomic<uint64_t> g_plan_nodes{0};

// Length-prefixed field append: injective no matter what bytes `s` holds
// (programmatically built rules are not limited to DSL identifiers).
void AppendField(const std::string& s, std::string* key) {
  key->append(std::to_string(s.size()));
  key->push_back(':');
  key->append(s);
}

// Trie node under construction; child edges are (pattern id, tmp index)
// pairs in first-rule-reaches-it order, which keeps compilation (and thus
// the flattened arena) deterministic for a given rule list.
struct TmpNode {
  std::vector<std::pair<int32_t, int32_t>> children;
  std::vector<PlanAccept> accepts;
};

class Compiler {
 public:
  explicit Compiler(const std::vector<Rule>& rules) : rules_(rules) {
    plan_ = std::make_shared<CompiledRulePlan>();
  }

  std::shared_ptr<const CompiledRulePlan> Run() {
    plan_->num_rules_ = static_cast<int32_t>(rules_.size());
    // Pass 1: fix the literal-slot table so WildcardSlot() is final before
    // any pattern program records its bucket. Keys are the name strings
    // themselves (KeyForPattern's bucket key is exactly lhs.name_literal),
    // kept plan-local so runtime lookups never touch the global name table.
    for (const Rule& rule : rules_) {
      for (const ConstraintPattern& p : rule.head) {
        if (KeyForPattern(p).is_wildcard()) continue;
        auto [it, inserted] = plan_->name_ids_.try_emplace(
            p.lhs.name_literal,
            static_cast<int32_t>(plan_->name_ids_.size()));
        if (inserted) {
          plan_->name_slots_.resize(plan_->name_slots_.size() + kNumOps, -1);
        }
        int32_t& slot =
            plan_->name_slots_[static_cast<size_t>(it->second) * kNumOps +
                               static_cast<size_t>(p.op)];
        if (slot < 0) slot = plan_->num_literal_slots_++;
      }
    }
    // Pass 2: grow the trie, interning structurally identical head patterns
    // into one compiled program (that sharing is what merges prefixes).
    tmp_.emplace_back();
    for (size_t r = 0; r < rules_.size(); ++r) {
      const Rule& rule = rules_[r];
      int32_t cur = 0;
      path_pats_.clear();
      for (const ConstraintPattern& p : rule.head) {
        const int32_t pid = InternPattern(p);
        path_pats_.push_back(pid);
        cur = ChildFor(cur, pid);
      }
      tmp_[static_cast<size_t>(cur)].accepts.push_back(PlanAccept{
          static_cast<int32_t>(r), !rule.conditions.empty(), PathDedupFree()});
      if (rule.head.size() > plan_->max_head_) plan_->max_head_ = rule.head.size();
    }
    // Pass 3: flatten into the contiguous arenas (children of a node form
    // one block; accepts of a node form one block).
    plan_->nodes.reserve(tmp_.size());
    plan_->child_buckets.reserve(tmp_.size());
    plan_->nodes.emplace_back();
    plan_->child_buckets.push_back(-1);
    Flatten(0, 0);
    return plan_;
  }

 private:
  // A duplicate matching requires the same constraint set to be enumerable
  // along the path twice, i.e. some constraint assignable to two different
  // head slots. Every constraint lands in exactly one literal bucket, so a
  // path of all-literal, pairwise-distinct buckets (or a single slot) forces
  // a unique assignment — accepts there can skip the runtime dedup walk.
  bool PathDedupFree() const {
    if (path_pats_.size() <= 1) return true;
    for (size_t i = 0; i < path_pats_.size(); ++i) {
      const PlanPattern& a =
          plan_->patterns[static_cast<size_t>(path_pats_[i])];
      if (!a.literal_bucket) return false;
      for (size_t j = 0; j < i; ++j) {
        if (plan_->patterns[static_cast<size_t>(path_pats_[j])].bucket ==
            a.bucket) {
          return false;
        }
      }
    }
    return true;
  }

  int32_t ChildFor(int32_t node, int32_t pattern_id) {
    TmpNode& tn = tmp_[static_cast<size_t>(node)];
    for (const auto& [pid, child] : tn.children) {
      if (pid == pattern_id) return child;
    }
    int32_t child = static_cast<int32_t>(tmp_.size());
    tn.children.emplace_back(pattern_id, child);
    tmp_.emplace_back();
    return child;
  }

  // Structural identity key of a head pattern. Two patterns with the same
  // key compile to the same program against the same bucket, so merging
  // them is behavior-preserving; the encoding is injective (length-prefixed
  // strings, value literals by exact-representation pool id).
  std::string PatternIdKey(const ConstraintPattern& p) {
    std::string key;
    key.append(std::to_string(static_cast<int>(p.op)));
    key.push_back('|');
    AppendAttrKey(p.lhs, &key);
    key.push_back('|');
    switch (p.rhs.kind) {
      case OperandExpr::Kind::kVar:
        key.push_back('V');
        AppendField(p.rhs.var, &key);
        break;
      case OperandExpr::Kind::kValueLiteral:
        key.push_back('L');
        key.append(std::to_string(InternValue(p.rhs.value_literal)));
        break;
      case OperandExpr::Kind::kAttr:
        key.push_back('A');
        AppendAttrKey(p.rhs.attr, &key);
        break;
    }
    return key;
  }

  void AppendAttrKey(const AttrExpr& a, std::string* key) {
    AppendField(a.whole_var, key);
    AppendField(a.view_literal, key);
    AppendField(a.view_var, key);
    key->append(a.index_literal.has_value() ? std::to_string(*a.index_literal)
                                            : "~");
    key->push_back(';');
    AppendField(a.index_var, key);
    AppendField(a.name_literal, key);
    AppendField(a.name_var, key);
  }

  int32_t InternPattern(const ConstraintPattern& p) {
    std::string key = PatternIdKey(p);
    auto it = pattern_ids_.find(key);
    if (it != pattern_ids_.end()) return it->second;
    int32_t id = static_cast<int32_t>(plan_->patterns.size());
    pattern_ids_.emplace(std::move(key), id);
    plan_->patterns.push_back(CompilePattern(p));
    return id;
  }

  PlanPattern CompilePattern(const ConstraintPattern& p) {
    PatternKey key = KeyForPattern(p);
    PlanPattern pat;
    pat.literal_bucket = !key.is_wildcard();
    pat.bucket = pat.literal_bucket
                     ? plan_->LiteralSlot(key.op, p.lhs.name_literal)
                     : plan_->WildcardSlot(key.op);
    pat.first_instr = static_cast<int32_t>(plan_->instrs.size());
    // The bucket guarantees constraint.op == p.op; a literal bucket
    // additionally guarantees attr.name == lhs.name_literal.
    EmitAttr(p.lhs, /*on_rhs=*/false, /*name_guaranteed=*/pat.literal_bucket);
    EmitRhs(p.rhs);
    pat.num_instrs =
        static_cast<int32_t>(plan_->instrs.size()) - pat.first_instr;
    return pat;
  }

  // Mirrors AttrExpr::Match instruction for instruction (same check order,
  // same binding order) so the compiled runtime produces identical binding
  // environments; checks the bucket already proves are elided.
  void EmitAttr(const AttrExpr& a, bool on_rhs, bool name_guaranteed) {
    using K = PatternInstr::Kind;
    if (a.is_whole_var()) {
      Emit(K::kBindWholeAttr, on_rhs, InternVar(a.whole_var));
      return;
    }
    if (!a.has_view()) {
      if (!a.name_literal.empty()) {
        if (!name_guaranteed) Emit(K::kCheckName, on_rhs, InternString(a.name_literal));
      } else if (!a.name_var.empty()) {
        Emit(K::kBindName, on_rhs, InternVar(a.name_var));
      }
      return;
    }
    if (!a.view_literal.empty()) {
      Emit(K::kCheckView, on_rhs, InternString(a.view_literal));
    } else if (!a.view_var.empty()) {
      Emit(K::kBindViewRef, on_rhs, InternVar(a.view_var));
    }
    if (a.index_literal.has_value()) {
      Emit(K::kCheckIndex, on_rhs, *a.index_literal);
    } else if (!a.index_var.empty()) {
      Emit(K::kBindIndex, on_rhs, InternVar(a.index_var));
    } else if (!a.view_literal.empty()) {
      // Unindexed view literal: record the matched instance in the hidden
      // per-view variable, exactly as AttrExpr::Match does.
      Emit(K::kBindIndex, on_rhs, InternVar(ImplicitIndexVarName(a.view_literal)));
    }
    if (!a.name_literal.empty()) {
      if (!name_guaranteed) Emit(K::kCheckName, on_rhs, InternString(a.name_literal));
    } else if (!a.name_var.empty()) {
      Emit(K::kBindName, on_rhs, InternVar(a.name_var));
    }
  }

  void EmitRhs(const OperandExpr& r) {
    using K = PatternInstr::Kind;
    switch (r.kind) {
      case OperandExpr::Kind::kVar:
        Emit(K::kBindRhsTerm, /*on_rhs=*/true, InternVar(r.var));
        break;
      case OperandExpr::Kind::kValueLiteral:
        Emit(K::kCheckRhsValue, /*on_rhs=*/true, InternValue(r.value_literal));
        break;
      case OperandExpr::Kind::kAttr:
        Emit(K::kRhsIsAttr, /*on_rhs=*/true, 0);
        EmitAttr(r.attr, /*on_rhs=*/true, /*name_guaranteed=*/false);
        break;
    }
  }

  void Emit(PatternInstr::Kind kind, bool on_rhs, int32_t arg) {
    plan_->instrs.push_back(PatternInstr{kind, on_rhs, arg});
  }

  int32_t InternVar(const std::string& name) {
    auto [it, inserted] =
        var_ids_.try_emplace(name, static_cast<int32_t>(plan_->vars.size()));
    if (inserted) plan_->vars.push_back(name);
    return it->second;
  }

  int32_t InternString(const std::string& s) {
    auto [it, inserted] = string_ids_.try_emplace(
        s, static_cast<int32_t>(plan_->strings.size()));
    if (inserted) plan_->strings.push_back(s);
    return it->second;
  }

  // Pooled by exact representation (IdenticalTo), so two value literals are
  // merged only when bit-for-bit interchangeable; the pool id doubles as the
  // literal's injective identity in PatternIdKey.
  int32_t InternValue(const Value& v) {
    for (size_t i = 0; i < plan_->values.size(); ++i) {
      if (plan_->values[i].IdenticalTo(v)) return static_cast<int32_t>(i);
    }
    plan_->values.push_back(v);
    return static_cast<int32_t>(plan_->values.size() - 1);
  }

  void Flatten(int32_t tmp_idx, int32_t final_idx) {
    const TmpNode& tn = tmp_[static_cast<size_t>(tmp_idx)];
    const int32_t first_child = static_cast<int32_t>(plan_->nodes.size());
    {
      PlanNode& node = plan_->nodes[static_cast<size_t>(final_idx)];
      node.first_child = first_child;
      node.num_children = static_cast<int32_t>(tn.children.size());
      node.first_accept = static_cast<int32_t>(plan_->accepts.size());
      node.num_accepts = static_cast<int32_t>(tn.accepts.size());
    }
    for (const PlanAccept& a : tn.accepts) plan_->accepts.push_back(a);
    for (const auto& [pid, child_tmp] : tn.children) {
      PlanNode child;
      child.pattern = pid;
      plan_->nodes.push_back(child);
      plan_->child_buckets.push_back(
          plan_->patterns[static_cast<size_t>(pid)].bucket);
    }
    for (size_t i = 0; i < tn.children.size(); ++i) {
      Flatten(tn.children[i].second, first_child + static_cast<int32_t>(i));
    }
  }

  const std::vector<Rule>& rules_;
  std::shared_ptr<CompiledRulePlan> plan_;
  std::vector<TmpNode> tmp_;
  std::vector<int32_t> path_pats_;  // pattern ids of the rule being walked
  std::unordered_map<std::string, int32_t> pattern_ids_;
  std::unordered_map<std::string, int32_t> var_ids_;
  std::unordered_map<std::string, int32_t> string_ids_;
};

}  // namespace

CompiledPlanBuildStats CompiledPlanGlobalStats() {
  CompiledPlanBuildStats stats;
  stats.plans_built = g_plans_built.load(std::memory_order_relaxed);
  stats.compile_ns = g_compile_ns.load(std::memory_order_relaxed);
  stats.plan_nodes = g_plan_nodes.load(std::memory_order_relaxed);
  return stats;
}

std::shared_ptr<const CompiledRulePlan> CompileRulePlan(
    const std::vector<Rule>& rules) {
  const auto t0 = std::chrono::steady_clock::now();
  std::shared_ptr<const CompiledRulePlan> plan = Compiler(rules).Run();
  const auto t1 = std::chrono::steady_clock::now();
  g_plans_built.fetch_add(1, std::memory_order_relaxed);
  g_compile_ns.fetch_add(
      static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
              .count()),
      std::memory_order_relaxed);
  g_plan_nodes.fetch_add(plan->num_nodes(), std::memory_order_relaxed);
  return plan;
}

}  // namespace qmap
