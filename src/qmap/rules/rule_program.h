#ifndef QMAP_RULES_RULE_PROGRAM_H_
#define QMAP_RULES_RULE_PROGRAM_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "qmap/expr/constraint.h"
#include "qmap/rules/rule.h"

namespace qmap {

/// Offline-compiled form of a rule set: a discrimination DAG over interned
/// (attribute, op) ids, plus per-pattern micro-instruction programs.
///
/// Shape (see docs/ALGORITHMS.md "The compiled matching automaton"):
///
///   * Every structurally distinct head pattern in the rule set is compiled
///     once into a PlanPattern: the candidate-bucket slot its constraints
///     come from, and a short micro-op program (PatternInstr) that performs
///     only the checks the bucket does not already guarantee plus the
///     variable bindings.
///   * Rule heads become root-to-accept paths in a trie of PlanNodes whose
///     edges are pattern ids; rules sharing a head-pattern prefix share the
///     prefix nodes, so a shared (attr, op) test runs once per conjunction
///     no matter how many rules start with it.
///   * Nodes, children, instructions and accepts live in flat arenas with
///     index-based edges — one contiguous allocation each, no pointers, so
///     traversal is cache-friendly and the plan is trivially shareable
///     (and relocatable) across threads and MappingSpec copies.
///
/// A plan holds no pointers into the MappingSpec it was compiled from; it
/// refers to rules by index, so it stays valid across spec copies/moves as
/// long as the rule list itself is unchanged (MappingSpec invalidates its
/// cached plan on AddRule, exactly like the RuleIndex).
///
/// Immutable after construction — safe to share across threads.

/// One micro-instruction of a compiled constraint pattern. The candidate
/// bucket already guarantees the constraint's operator and (for literal
/// buckets) its attribute name, so programs carry only the residual checks
/// and the bindings. `on_rhs` retargets attribute micro-ops at the
/// constraint's right-hand-side attribute (join patterns), where nothing is
/// bucket-guaranteed.
struct PatternInstr {
  enum class Kind : uint8_t {
    kBindWholeAttr,  // bind vars[arg] to the whole target Attr
    kCheckView,      // target.view == strings[arg]
    kBindViewRef,    // bind vars[arg] to Str("view" or "view[i]") of target
    kCheckIndex,     // target.instance == arg
    kBindIndex,      // bind vars[arg] to Int(target.instance)
    kCheckName,      // target.name == strings[arg] (rhs only; lhs names are
                     //   guaranteed by the literal bucket)
    kBindName,       // bind vars[arg] to Str(target.name)
    kRhsIsAttr,      // constraint.rhs holds an Attr (join constraint)
    kCheckRhsValue,  // constraint.rhs holds a Value that Equals(values[arg])
    kBindRhsTerm,    // bind vars[arg] to the whole rhs operand (Value|Attr)
  };

  Kind kind;
  bool on_rhs = false;
  int32_t arg = -1;  // var id / string-pool id / value-pool id / literal int
};

/// One compiled head pattern: its candidate-bucket slot and its program.
struct PlanPattern {
  int32_t bucket = 0;       // slot in the per-conjunction bucket table
  int32_t first_instr = 0;  // instrs[first_instr .. +num_instrs)
  int32_t num_instrs = 0;
  bool literal_bucket = false;  // (op, attr-name) bucket vs per-op wildcard
};

/// One node of the discrimination trie. `pattern` is the edge test that
/// leads *into* this node (-1 for the root); children occupy a contiguous
/// block of the node arena, accepts a contiguous block of the accept arena.
struct PlanNode {
  int32_t pattern = -1;
  int32_t first_child = 0;
  int32_t num_children = 0;
  int32_t first_accept = 0;
  int32_t num_accepts = 0;
};

/// A rule whose whole head has been matched when traversal reaches the
/// owning node. Conditions (and the rule's tail) still live on the Rule
/// itself; the runtime resolves `rule` against the spec it matches for.
///
/// `dedup_free` records a compile-time proof that no duplicate matching can
/// reach this accept: when the path's candidate buckets are pairwise
/// disjoint (all literal with distinct ids — a constraint lands in exactly
/// one literal bucket — or a single-pattern head), a given constraint set
/// has exactly one assignment of constraints to head slots, so the DFS
/// enumerates it at most once and the runtime skips the dedup chain walk.
struct PlanAccept {
  int32_t rule = 0;
  bool has_conditions = false;
  bool dedup_free = false;
};

/// Process-wide compile-cost telemetry, aggregated over every plan built
/// (all specs, all threads). Bridged into the service metrics registry as
/// qmap_match_compile_ns / qmap_match_plan_nodes (docs/OBSERVABILITY.md).
struct CompiledPlanBuildStats {
  uint64_t plans_built = 0;
  uint64_t compile_ns = 0;   // total wall time spent in CompileRulePlan
  uint64_t plan_nodes = 0;   // total DAG nodes across built plans
};
CompiledPlanBuildStats CompiledPlanGlobalStats();

class CompiledRulePlan {
 public:
  /// Candidate-bucket slot for a literal (op, attr-name) pair, or -1 when no
  /// pattern in the plan tests that pair. The lookup is plan-local and
  /// lock-free — one transparent string-hash probe, then a flat
  /// [name][op] row — so the per-constraint Prepare loop never takes the
  /// global AttrNameTable's shared_mutex.
  int32_t LiteralSlot(Op op, std::string_view name) const {
    auto it = name_ids_.find(name);
    if (it == name_ids_.end()) return -1;
    return name_slots_[static_cast<size_t>(it->second) * kNumOps +
                       static_cast<size_t>(op)];
  }
  /// Slot of the all-constraints-with-this-op wildcard bucket.
  int32_t WildcardSlot(Op op) const {
    return num_literal_slots_ + static_cast<int32_t>(op);
  }
  int32_t num_slots() const { return num_literal_slots_ + kNumOps; }

  int32_t num_rules() const { return num_rules_; }
  size_t max_head_patterns() const { return max_head_; }
  size_t num_nodes() const { return nodes.size(); }

  // Flat arenas, read directly by the runtime's traversal loops
  // (qmap/rules/compiled_matcher.cc). nodes[0] is the root.
  // child_buckets[i] caches patterns[nodes[i].pattern].bucket (-1 for the
  // root) so the child scan can skip empty-bucket subtrees from one flat
  // int32 load instead of chasing node -> pattern -> bucket.
  std::vector<PlanNode> nodes;
  std::vector<int32_t> child_buckets;
  std::vector<PlanPattern> patterns;
  std::vector<PatternInstr> instrs;
  std::vector<PlanAccept> accepts;
  std::vector<std::string> vars;     // binding slot id -> variable name
  std::vector<std::string> strings;  // view/name literal pool
  std::vector<Value> values;         // constant operand pool (pre-resolved)

  // FNV-1a: attribute names are a few bytes, where this beats the library
  // hash's fixed setup cost — LiteralSlot probes run once per constraint
  // per match call.
  struct StringHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      uint64_t h = 14695981039346656037ull;
      for (const char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ull;
      }
      return static_cast<size_t>(h);
    }
  };

  // Populated by CompileRulePlan only; trailing underscores mark them as
  // internals readers should reach through the accessors above.
  // name_ids_ maps each attr name some literal pattern tests to a dense
  // local id; name_slots_[id * kNumOps + op] is that pair's bucket slot
  // (-1 when no pattern tests that exact pair).
  std::unordered_map<std::string, int32_t, StringHash, std::equal_to<>>
      name_ids_;
  std::vector<int32_t> name_slots_;
  int32_t num_literal_slots_ = 0;
  int32_t num_rules_ = 0;
  size_t max_head_ = 0;
};

/// Compiles `rules` into a plan. Deterministic: the same rule list always
/// produces the same arenas. Cost is recorded in CompiledPlanGlobalStats().
std::shared_ptr<const CompiledRulePlan> CompileRulePlan(
    const std::vector<Rule>& rules);

}  // namespace qmap

#endif  // QMAP_RULES_RULE_PROGRAM_H_
