#include "qmap/rules/compiled_matcher.h"

#include <algorithm>
#include <memory>

#include "qmap/rules/spec.h"

namespace qmap {
namespace {

// Mirrors ViewRefString in pattern.cc ("fac" or "fac[2]") but appends into a
// reused buffer; any drift from the interpreter's format would break the
// byte-identical-output invariant tests/compiled_matcher_test.cc enforces.
void AssignViewRef(const std::string& view, int instance, std::string* buf) {
  buf->assign(view);
  if (instance != 0) {
    buf->push_back('[');
    buf->append(std::to_string(instance));
    buf->push_back(']');
  }
}

struct RunCtx {
  const CompiledRulePlan* plan = nullptr;
  const std::vector<Rule>* rules = nullptr;
  const FunctionRegistry* registry = nullptr;
  const std::vector<Constraint>* constraints = nullptr;
  CompiledMatchScratch* scratch = nullptr;
  MatchCounters* counters = nullptr;
  size_t found = 0;
};

// Executes one compiled pattern program against one constraint, extending
// the binding arena (the caller rolls back on failure). Instruction
// semantics replicate ConstraintPattern::Match minus the checks the
// candidate bucket already guarantees (operator; attr name for literal
// buckets).
bool ExecPattern(RunCtx& ctx, const PlanPattern& pat, const Constraint& c) {
  const CompiledRulePlan& plan = *ctx.plan;
  BindingArena& arena = ctx.scratch->bindings;
  const Attr* rhs_attr = nullptr;  // set by kRhsIsAttr
  const int32_t end = pat.first_instr + pat.num_instrs;
  for (int32_t ip = pat.first_instr; ip < end; ++ip) {
    const PatternInstr& instr = plan.instrs[static_cast<size_t>(ip)];
    const Attr* target = instr.on_rhs ? rhs_attr : &c.lhs;
    using K = PatternInstr::Kind;
    switch (instr.kind) {
      case K::kBindWholeAttr:
        if (!arena.BindOrCheck(instr.arg, TermRef::OfAttr(*target))) {
          return false;
        }
        break;
      case K::kCheckView:
        if (target->view != plan.strings[static_cast<size_t>(instr.arg)]) {
          return false;
        }
        break;
      case K::kBindViewRef: {
        // Format into the pool's next entry in place; consume the entry only
        // if the bind sticks (a mere re-bind check leaves it for reuse).
        std::string* buf = ctx.scratch->PeekViewRef();
        AssignViewRef(target->view, target->instance, buf);
        if (const TermRef* bound = arena.Find(instr.arg)) {
          if (!TermRefEquals(*bound, TermRef::OfStr(*buf))) return false;
        } else {
          arena.Bind(instr.arg, TermRef::OfStr(*buf));
          ctx.scratch->CommitViewRef();
        }
        break;
      }
      case K::kCheckIndex:
        if (target->instance != instr.arg) return false;
        break;
      case K::kBindIndex:
        if (!arena.BindOrCheck(instr.arg, TermRef::OfInt(target->instance))) {
          return false;
        }
        break;
      case K::kCheckName:
        if (target->name != plan.strings[static_cast<size_t>(instr.arg)]) {
          return false;
        }
        break;
      case K::kBindName:
        if (!arena.BindOrCheck(instr.arg, TermRef::OfStr(target->name))) {
          return false;
        }
        break;
      case K::kRhsIsAttr:
        if (!std::holds_alternative<Attr>(c.rhs)) return false;
        rhs_attr = &std::get<Attr>(c.rhs);
        break;
      case K::kCheckRhsValue:
        if (!std::holds_alternative<Value>(c.rhs) ||
            !std::get<Value>(c.rhs).Equals(
                plan.values[static_cast<size_t>(instr.arg)])) {
          return false;
        }
        break;
      case K::kBindRhsTerm: {
        const bool ok =
            std::holds_alternative<Value>(c.rhs)
                ? arena.BindOrCheck(instr.arg,
                                    TermRef::OfValue(std::get<Value>(c.rhs)))
                : arena.BindOrCheck(instr.arg,
                                    TermRef::OfAttr(std::get<Attr>(c.rhs)));
        if (!ok) return false;
        break;
      }
    }
  }
  return true;
}

// Structural equality of the accept candidate (sorted indices + current
// arena) against an already-recorded flat matching of the same rule — the
// same (constraint set, bindings) relation MatchingDedup uses. One rule has
// one trie path, so two matchings of a rule bind variables in the same
// order and the aligned compare is the whole story; the order-insensitive
// fallback keeps the relation equal to map-equality even if that ever
// stopped holding.
bool SameMatching(const RunCtx& ctx, const FlatMatching& m) {
  const CompiledMatchScratch& s = *ctx.scratch;
  if (m.idx_count != static_cast<int32_t>(s.sorted.size())) return false;
  for (int32_t i = 0; i < m.idx_count; ++i) {
    if (s.out_indices[static_cast<size_t>(m.idx_begin + i)] !=
        s.sorted[static_cast<size_t>(i)]) {
      return false;
    }
  }
  const std::vector<BindingArena::Slot>& cur = s.bindings.slots();
  if (m.bind_count != static_cast<int32_t>(cur.size())) return false;
  bool aligned = true;
  for (int32_t i = 0; i < m.bind_count; ++i) {
    const BindingArena::Slot& a = s.out_bindings[static_cast<size_t>(m.bind_begin + i)];
    const BindingArena::Slot& b = cur[static_cast<size_t>(i)];
    if (a.var != b.var) {
      aligned = false;
      break;
    }
    if (!TermRefEquals(a.ref, b.ref)) return false;
  }
  if (aligned) return true;
  for (int32_t i = 0; i < m.bind_count; ++i) {
    const BindingArena::Slot& a = s.out_bindings[static_cast<size_t>(m.bind_begin + i)];
    bool found = false;
    for (const BindingArena::Slot& b : cur) {
      if (b.var == a.var) {
        if (!TermRefEquals(a.ref, b.ref)) return false;
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

void Accept(RunCtx& ctx, const PlanAccept& accept) {
  CompiledMatchScratch& s = *ctx.scratch;
  const Rule& rule = (*ctx.rules)[static_cast<size_t>(accept.rule)];
  if (accept.has_conditions) {
    // Condition rules drop to the interpreter's Bindings (user condition
    // functions consume the map form); the common no-condition rule never
    // touches a std::map.
    Bindings map_bindings;
    for (const BindingArena::Slot& slot : s.bindings.slots()) {
      map_bindings.BindOrCheck(ctx.plan->vars[static_cast<size_t>(slot.var)],
                               MaterializeTermRef(slot.ref));
    }
    if (!rule.ConditionsHold(map_bindings, *ctx.registry)) return;
  }
  // Insertion sort into the scratch buffer: heads hold a handful of
  // constraints, where this beats a std::sort call outright.
  s.sorted.resize(s.used.size());
  for (size_t i = 0; i < s.used.size(); ++i) {
    const int32_t v = s.used[i];
    size_t j = i;
    for (; j > 0 && s.sorted[j - 1] > v; --j) s.sorted[j] = s.sorted[j - 1];
    s.sorted[j] = v;
  }
  if (!accept.dedup_free) {
    for (int32_t mi = s.rule_head[static_cast<size_t>(accept.rule)]; mi != -1;
         mi = s.matchings[static_cast<size_t>(mi)].next) {
      if (SameMatching(ctx, s.matchings[static_cast<size_t>(mi)])) return;
    }
  }
  FlatMatching m;
  m.rule = accept.rule;
  m.idx_begin = static_cast<int32_t>(s.out_indices.size());
  m.idx_count = static_cast<int32_t>(s.sorted.size());
  s.out_indices.insert(s.out_indices.end(), s.sorted.begin(), s.sorted.end());
  m.bind_begin = static_cast<int32_t>(s.out_bindings.size());
  m.bind_count = static_cast<int32_t>(s.bindings.slots().size());
  s.out_bindings.insert(s.out_bindings.end(), s.bindings.slots().begin(),
                        s.bindings.slots().end());
  const int32_t idx = static_cast<int32_t>(s.matchings.size());
  s.matchings.push_back(m);
  int32_t& tail = s.rule_tail[static_cast<size_t>(accept.rule)];
  if (tail == -1) {
    s.rule_head[static_cast<size_t>(accept.rule)] = idx;
  } else {
    s.matchings[static_cast<size_t>(tail)].next = idx;
  }
  tail = idx;
  ++ctx.found;
  if (ctx.counters != nullptr) ++ctx.counters->matchings_found;
}

// DFS over the discrimination DAG. Each child edge enumerates only its
// pattern's candidate bucket (ascending constraint order — the naive trial
// order), sharing the binding arena via mark/rollback; an empty bucket
// prunes the whole subtree, i.e. every rule whose head extends the prefix.
void RunNode(RunCtx& ctx, int32_t node_idx) {
  const CompiledRulePlan& plan = *ctx.plan;
  CompiledMatchScratch& s = *ctx.scratch;
  const PlanNode& node = plan.nodes[static_cast<size_t>(node_idx)];
  for (int32_t a = node.first_accept; a < node.first_accept + node.num_accepts;
       ++a) {
    Accept(ctx, plan.accepts[static_cast<size_t>(a)]);
  }
  const size_t n = ctx.constraints->size();
  const size_t avail = n - s.used.size();  // constant across the child scan
  uint64_t skipped = 0;
  const int32_t child_end = node.first_child + node.num_children;
  for (int32_t ci = node.first_child; ci < child_end; ++ci) {
    // One flat load decides the skip — empty-bucket children (the common
    // case at a wide root) never touch their PlanNode/PlanPattern.
    const int32_t bucket = plan.child_buckets[static_cast<size_t>(ci)];
    const int32_t count = s.bucket_size[static_cast<size_t>(bucket)];
    if (count == 0) {
      ++skipped;
      continue;
    }
    const PlanNode& child = plan.nodes[static_cast<size_t>(ci)];
    const PlanPattern& pat = plan.patterns[static_cast<size_t>(child.pattern)];
    if (ctx.counters != nullptr && pat.literal_bucket) ++ctx.counters->index_hits;
    const int32_t begin = s.bucket_begin[static_cast<size_t>(bucket)];
    // Leaf children fire their accepts inline — no recursion, and no
    // used_mask toggle since nothing deeper consults it.
    const bool leaf = child.num_children == 0;
    uint64_t tried = 0;
    for (int32_t k = 0; k < count; ++k) {
      const int32_t i = s.candidates[static_cast<size_t>(begin + k)];
      if (s.used_mask[static_cast<size_t>(i)] != 0) continue;
      ++tried;
      if (ctx.counters != nullptr) ++ctx.counters->pattern_attempts;
      const size_t mark = s.bindings.Mark();
      if (!ExecPattern(ctx, pat, (*ctx.constraints)[static_cast<size_t>(i)])) {
        s.bindings.RollbackTo(mark);
        continue;
      }
      s.used.push_back(i);
      if (leaf) {
        const int32_t accept_end = child.first_accept + child.num_accepts;
        for (int32_t a = child.first_accept; a < accept_end; ++a) {
          Accept(ctx, plan.accepts[static_cast<size_t>(a)]);
        }
      } else {
        s.used_mask[static_cast<size_t>(i)] = 1;
        RunNode(ctx, ci);
        s.used_mask[static_cast<size_t>(i)] = 0;
      }
      s.used.pop_back();
      s.bindings.RollbackTo(mark);
    }
    if (ctx.counters != nullptr) {
      ctx.counters->pattern_attempts_saved += avail - tried;
    }
  }
  if (ctx.counters != nullptr && skipped != 0) {
    // Lower-bound credit for pruned subtrees: the naive matcher would have
    // swept every unused constraint at each skipped slot (and recursed).
    ctx.counters->pattern_attempts_saved += skipped * avail;
  }
}

}  // namespace

Term MaterializeTermRef(const TermRef& ref) {
  switch (ref.kind) {
    case TermRef::Kind::kAttr:
      return Term(*ref.attr);
    case TermRef::Kind::kValue:
      return Term(*ref.value);
    case TermRef::Kind::kInt:
      return Term(Value::Int(ref.i));
    case TermRef::Kind::kStr:
      return Term(Value::Str(*ref.str));
  }
  return Term();
}

bool TermRefEquals(const TermRef& a, const TermRef& b) {
  using K = TermRef::Kind;
  if (a.kind == K::kAttr || b.kind == K::kAttr) {
    return a.kind == K::kAttr && b.kind == K::kAttr && *a.attr == *b.attr;
  }
  // Both sides are value-like; mirror Value::Equals exactly — numerics
  // compare through double (cross-kind), strings bytewise, kinds never mix.
  switch (a.kind) {
    case K::kValue:
      switch (b.kind) {
        case K::kValue:
          return a.value->Equals(*b.value);
        case K::kInt:
          return a.value->is_numeric() &&
                 a.value->AsDouble() == static_cast<double>(b.i);
        default:  // kStr
          return a.value->kind() == ValueKind::kString &&
                 a.value->AsString() == *b.str;
      }
    case K::kInt:
      switch (b.kind) {
        case K::kValue:
          return b.value->is_numeric() &&
                 static_cast<double>(a.i) == b.value->AsDouble();
        case K::kInt:
          return static_cast<double>(a.i) == static_cast<double>(b.i);
        default:  // kStr — Int never equals String
          return false;
      }
    default:  // kStr
      switch (b.kind) {
        case K::kValue:
          return b.value->kind() == ValueKind::kString &&
                 b.value->AsString() == *a.str;
        case K::kInt:
          return false;
        default:  // kStr
          return *a.str == *b.str;
      }
  }
}

void CompiledMatchScratch::Prepare(const CompiledRulePlan& plan,
                                   const std::vector<Constraint>& constraints) {
  const size_t n = constraints.size();
  const size_t slots = static_cast<size_t>(plan.num_slots());
  bucket_size.assign(slots, 0);
  bucket_begin.assign(slots, 0);
  fill_cursor_.assign(slots, 0);
  used_mask.assign(n, 0);
  used.clear();
  used.reserve(plan.max_head_patterns());
  bindings.Clear();
  matchings.clear();
  out_indices.clear();
  out_bindings.clear();
  rule_head.assign(static_cast<size_t>(plan.num_rules()), -1);
  rule_tail.assign(static_cast<size_t>(plan.num_rules()), -1);
  viewref_used_ = 0;

  // Counting sort into per-slot buckets: each constraint lands in its op's
  // wildcard bucket and (when some pattern tests its (op, name)) one literal
  // bucket, resolved once per constraint through the plan-local slot table
  // and cached for the fill pass.
  lit_slot_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const Constraint& c = constraints[i];
    ++bucket_size[static_cast<size_t>(plan.WildcardSlot(c.op))];
    const int32_t slot = plan.LiteralSlot(c.op, c.lhs.name);
    lit_slot_[i] = slot;
    if (slot >= 0) ++bucket_size[static_cast<size_t>(slot)];
  }
  int32_t total = 0;
  for (size_t sidx = 0; sidx < slots; ++sidx) {
    bucket_begin[sidx] = total;
    fill_cursor_[sidx] = total;
    total += bucket_size[sidx];
  }
  candidates.resize(static_cast<size_t>(total));
  for (size_t i = 0; i < n; ++i) {
    const Constraint& c = constraints[i];
    candidates[static_cast<size_t>(
        fill_cursor_[static_cast<size_t>(plan.WildcardSlot(c.op))]++)] =
        static_cast<int32_t>(i);
    const int32_t slot = lit_slot_[i];
    if (slot >= 0) {
      candidates[static_cast<size_t>(fill_cursor_[static_cast<size_t>(slot)]++)] =
          static_cast<int32_t>(i);
    }
  }
}

size_t RunCompiled(const CompiledRulePlan& plan, const MappingSpec& spec,
                   const std::vector<Constraint>& constraints,
                   CompiledMatchScratch* scratch, MatchCounters* counters) {
  scratch->Prepare(plan, constraints);
  RunCtx ctx;
  ctx.plan = &plan;
  ctx.rules = &spec.rules();
  ctx.registry = &spec.registry();
  ctx.constraints = &constraints;
  ctx.scratch = scratch;
  ctx.counters = counters;
  if (!plan.nodes.empty()) RunNode(ctx, 0);
  if (counters != nullptr) ++counters->compiled_hits;
  return ctx.found;
}

std::vector<Matching> MatchSpecCompiled(const MappingSpec& spec,
                                        const std::vector<Constraint>& constraints,
                                        MatchCounters* counters) {
  std::shared_ptr<const CompiledRulePlan> plan = spec.compiled_plan();
  thread_local CompiledMatchScratch scratch;
  const size_t found =
      RunCompiled(*plan, spec, constraints, &scratch, counters);

  // Materialize grouped per rule in rule order (each chain preserves
  // discovery order) — the exact shape MatchSpecNaive emits.
  std::vector<Matching> out;
  out.reserve(found);
  const std::vector<Rule>& rules = spec.rules();
  for (int32_t r = 0; r < plan->num_rules(); ++r) {
    for (int32_t mi = scratch.rule_head[static_cast<size_t>(r)]; mi != -1;
         mi = scratch.matchings[static_cast<size_t>(mi)].next) {
      const FlatMatching& fm = scratch.matchings[static_cast<size_t>(mi)];
      Matching m;
      m.constraint_indices.assign(
          scratch.out_indices.begin() + fm.idx_begin,
          scratch.out_indices.begin() + fm.idx_begin + fm.idx_count);
      for (int32_t b = 0; b < fm.bind_count; ++b) {
        const BindingArena::Slot& slot =
            scratch.out_bindings[static_cast<size_t>(fm.bind_begin + b)];
        m.bindings.BindOrCheck(plan->vars[static_cast<size_t>(slot.var)],
                               MaterializeTermRef(slot.ref));
      }
      const Rule& rule = rules[static_cast<size_t>(r)];
      m.rule = &rule;
      m.rule_name = rule.name;
      m.rule_exact = rule.exact;
      out.push_back(std::move(m));
    }
  }
  return out;
}

}  // namespace qmap
