#ifndef QMAP_RULES_SPEC_H_
#define QMAP_RULES_SPEC_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "qmap/common/lazy_shared.h"
#include "qmap/rules/rule.h"

namespace qmap {

class RuleIndex;
class CompiledRulePlan;

/// A mapping specification K: the set of mapping rules for one target
/// context, together with the function registry its rules refer to
/// (Section 4.1, Figures 3 and 5).
///
/// Soundness and completeness (Definitions 3-4) are properties of the
/// *domain knowledge* the rules encode and cannot be checked syntactically;
/// Validate() checks the mechanical well-formedness instead (all referenced
/// functions exist, emission variables are bound by the head or by lets).
///
/// Thread safety: a MappingSpec is treated as immutable once translation
/// begins. Const access (rules(), registry(), FindRule()) from many threads
/// is safe — the TranslationService fans per-source translations out across
/// a thread pool under this contract — but AddRule() must not race with any
/// concurrent reader.
class MappingSpec {
 public:
  MappingSpec() : registry_(std::make_shared<FunctionRegistry>()) {}
  MappingSpec(std::string target_name, std::shared_ptr<const FunctionRegistry> registry)
      : target_name_(std::move(target_name)), registry_(std::move(registry)) {}

  // The cached derived artifacts (rule index, compiled plan, fingerprint)
  // ride along on copy/move — none holds pointers into the rule list — but
  // their synchronization state cannot, so all four operations are spelled
  // out in spec.cc.
  MappingSpec(const MappingSpec& other);
  MappingSpec& operator=(const MappingSpec& other);
  MappingSpec(MappingSpec&& other) noexcept;
  MappingSpec& operator=(MappingSpec&& other) noexcept;

  const std::string& target_name() const { return target_name_; }
  const FunctionRegistry& registry() const { return *registry_; }
  const std::vector<Rule>& rules() const { return rules_; }

  void AddRule(Rule rule) {
    rules_.push_back(std::move(rule));
    rule_index_.Invalidate();
    compiled_plan_.Invalidate();
    std::lock_guard<std::mutex> lock(fingerprint_mu_);
    fingerprint_valid_ = false;
  }

  /// The rule-set fingerprint: FNV-1a over the target name and every rule's
  /// canonical rendering, in rule order. Computed once when the spec is
  /// complete (first call after the last AddRule) and cached; any AddRule
  /// invalidates it, so two specs differing in any rule — added, removed,
  /// reordered, or edited — fingerprint differently. This is the version
  /// half of the translation-cache key (TranslationCacheKey::rule_set):
  /// cached translations, RAM and persistent alike, are only reachable
  /// under the exact rule set that produced them (DESIGN.md §10). Safe to
  /// call from many threads under the immutable-once-translating contract.
  uint64_t fingerprint() const;

  /// The per-spec head-pattern index (see qmap/rules/rule_index.h), built
  /// lazily on first use and cached until AddRule() invalidates it.
  /// Published via LazyShared (double-checked atomic shared_ptr): readers
  /// race-free from any thread at any time, the build runs at most once per
  /// published value, and the returned index stays valid independent of
  /// this spec.
  std::shared_ptr<const RuleIndex> rule_index() const;

  /// The spec's compiled matching automaton (see qmap/rules/rule_program.h),
  /// built lazily on first use under the same LazyShared publication
  /// discipline as rule_index(). Replacing the rule set swaps plans with one
  /// atomic pointer store — in-flight matches keep their plan alive through
  /// the shared_ptr.
  std::shared_ptr<const CompiledRulePlan> compiled_plan() const;

  /// Extra entropy mixed into fingerprint() when nonzero. The offline
  /// composer (qmap/rules/compose.h) stamps a composed spec with a seed
  /// derived from both parent fingerprints, so the composed rule_set half of
  /// the 192-bit translation-cache key rotates whenever *either* parent's
  /// rule set changes — even if the composed rule text happens to come out
  /// identical. Must be set before translation begins (same contract as
  /// AddRule).
  void set_fingerprint_seed(uint64_t seed) {
    std::lock_guard<std::mutex> lock(fingerprint_mu_);
    fingerprint_seed_ = seed;
    fingerprint_valid_ = false;
  }
  uint64_t fingerprint_seed() const {
    std::lock_guard<std::mutex> lock(fingerprint_mu_);
    return fingerprint_seed_;
  }

  /// Finds a rule by name; nullptr when absent.
  const Rule* FindRule(const std::string& name) const;

  /// Mechanical well-formedness checks (see class comment).
  Status Validate() const;

  /// Multi-line rendering of all rules.
  std::string ToString() const;

 private:
  std::string target_name_;
  std::shared_ptr<const FunctionRegistry> registry_;
  std::vector<Rule> rules_;
  mutable LazyShared<RuleIndex> rule_index_;
  mutable LazyShared<CompiledRulePlan> compiled_plan_;
  // Cached rule-set fingerprint (not a shared_ptr, so it keeps its own lock).
  mutable std::mutex fingerprint_mu_;
  mutable uint64_t fingerprint_ = 0;
  mutable bool fingerprint_valid_ = false;
  uint64_t fingerprint_seed_ = 0;  // guarded by fingerprint_mu_
};

}  // namespace qmap

#endif  // QMAP_RULES_SPEC_H_
