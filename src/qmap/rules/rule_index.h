#ifndef QMAP_RULES_RULE_INDEX_H_
#define QMAP_RULES_RULE_INDEX_H_

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "qmap/expr/constraint.h"
#include "qmap/rules/rule.h"

namespace qmap {

/// The index signature of one head pattern: the constraint operator (always
/// literal in a pattern) plus the interned attribute name when the pattern
/// names one literally. A pattern whose attribute part is a variable (whole
/// attribute, name variable, or bare) falls into the wildcard bucket: it can
/// match any constraint with the right operator.
struct PatternKey {
  static constexpr int32_t kWildcardName = -1;

  Op op = Op::kEq;
  int32_t name_id = kWildcardName;  // AttrNameTable id, or kWildcardName

  bool is_wildcard() const { return name_id == kWildcardName; }
};

/// Computes `pattern`'s index signature, interning its attribute-name
/// literal (if any) in AttrNameTable::Global().
PatternKey KeyForPattern(const ConstraintPattern& pattern);

/// Per-spec acceleration structure: the precomputed PatternKey of every head
/// pattern of every rule, in rule order. Holds no pointers into the rules,
/// so it stays valid across copies/moves of the owning MappingSpec as long
/// as the rule list itself is unchanged (MappingSpec invalidates it on
/// AddRule). Immutable after construction — safe to share across threads.
class RuleIndex {
 public:
  explicit RuleIndex(const std::vector<Rule>& rules);

  /// keys()[r][p] is the signature of rule r's p-th head pattern.
  const std::vector<std::vector<PatternKey>>& keys() const { return keys_; }

 private:
  std::vector<std::vector<PatternKey>> keys_;
};

/// Per-conjunction inverted index: buckets the constraints of one input
/// conjunction by (op, attribute-name id), plus an all-constraints bucket
/// per op for wildcard patterns. Built in one O(N) pass at the top of
/// MatchSpec; bucket lists preserve ascending constraint order, so the
/// indexed matcher enumerates candidates in exactly the order the naive
/// matcher would have accepted them (byte-identical output).
class ConjunctionIndex {
 public:
  explicit ConjunctionIndex(const std::vector<Constraint>& constraints);

  /// Candidate constraint indices for `key`, ascending. For a literal key
  /// this is the (op, name) bucket; for a wildcard key, every constraint
  /// with the operator.
  const std::vector<int>& Candidates(const PatternKey& key) const;

 private:
  static uint64_t BucketKey(Op op, int32_t name_id) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(op)) << 32) |
           static_cast<uint32_t>(name_id);
  }

  std::array<std::vector<int>, kNumOps> by_op_;
  std::unordered_map<uint64_t, std::vector<int>> by_op_name_;
};

}  // namespace qmap

#endif  // QMAP_RULES_RULE_INDEX_H_
