#include "qmap/rules/rule_index.h"

namespace qmap {

PatternKey KeyForPattern(const ConstraintPattern& pattern) {
  PatternKey key;
  key.op = pattern.op;
  const AttrExpr& lhs = pattern.lhs;
  if (!lhs.is_whole_var() && !lhs.name_literal.empty()) {
    // AttrExpr::Match requires attr.name == name_literal whether or not the
    // pattern is view-qualified, so the name literal is always a sound
    // bucket key; view/index parts are re-checked by Match itself.
    key.name_id = AttrNameTable::Global().Intern(lhs.name_literal);
  }
  return key;
}

RuleIndex::RuleIndex(const std::vector<Rule>& rules) {
  keys_.reserve(rules.size());
  for (const Rule& rule : rules) {
    std::vector<PatternKey> rule_keys;
    rule_keys.reserve(rule.head.size());
    for (const ConstraintPattern& pattern : rule.head) {
      rule_keys.push_back(KeyForPattern(pattern));
    }
    keys_.push_back(std::move(rule_keys));
  }
}

ConjunctionIndex::ConjunctionIndex(const std::vector<Constraint>& constraints) {
  AttrNameTable& names = AttrNameTable::Global();
  for (int i = 0; i < static_cast<int>(constraints.size()); ++i) {
    const Constraint& c = constraints[static_cast<size_t>(i)];
    const int op = static_cast<int>(c.op);
    by_op_[static_cast<size_t>(op)].push_back(i);
    by_op_name_[BucketKey(c.op, names.Intern(c.lhs.name))].push_back(i);
  }
}

const std::vector<int>& ConjunctionIndex::Candidates(const PatternKey& key) const {
  if (key.is_wildcard()) return by_op_[static_cast<size_t>(key.op)];
  static const std::vector<int>* empty = new std::vector<int>();
  auto it = by_op_name_.find(BucketKey(key.op, key.name_id));
  return it == by_op_name_.end() ? *empty : it->second;
}

}  // namespace qmap
