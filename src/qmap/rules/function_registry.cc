#include "qmap/rules/function_registry.h"

#include "qmap/text/dates.h"
#include "qmap/text/names.h"
#include "qmap/text/text_pattern.h"

namespace qmap {
namespace {

Status ArityError(const std::string& name, size_t want, size_t got) {
  return Status::InvalidArgument(name + " expects " + std::to_string(want) +
                                 " argument(s), got " + std::to_string(got));
}

Result<std::string> StringArg(const std::string& fn, const std::vector<Term>& args,
                              size_t index) {
  if (index >= args.size() || !TermIsValue(args[index]) ||
      TermValue(args[index]).kind() != ValueKind::kString) {
    return Status::InvalidArgument(fn + ": argument " + std::to_string(index) +
                                   " must be a string");
  }
  return TermValue(args[index]).AsString();
}

Result<int64_t> IntArg(const std::string& fn, const std::vector<Term>& args,
                       size_t index) {
  if (index >= args.size() || !TermIsValue(args[index]) ||
      !TermValue(args[index]).is_numeric()) {
    return Status::InvalidArgument(fn + ": argument " + std::to_string(index) +
                                   " must be numeric");
  }
  return static_cast<int64_t>(TermValue(args[index]).AsDouble());
}

Result<double> NumArg(const std::string& fn, const std::vector<Term>& args,
                      size_t index) {
  if (index >= args.size() || !TermIsValue(args[index]) ||
      !TermValue(args[index]).is_numeric()) {
    return Status::InvalidArgument(fn + ": argument " + std::to_string(index) +
                                   " must be numeric");
  }
  return TermValue(args[index]).AsDouble();
}

}  // namespace

void FunctionRegistry::RegisterCondition(const std::string& name, Condition fn) {
  conditions_[name] = std::move(fn);
}

void FunctionRegistry::RegisterTransform(const std::string& name, Transform fn) {
  transforms_[name] = std::move(fn);
}

const FunctionRegistry::Condition* FunctionRegistry::FindCondition(
    const std::string& name) const {
  auto it = conditions_.find(name);
  return it == conditions_.end() ? nullptr : &it->second;
}

const FunctionRegistry::Transform* FunctionRegistry::FindTransform(
    const std::string& name) const {
  auto it = transforms_.find(name);
  return it == transforms_.end() ? nullptr : &it->second;
}

void FunctionRegistry::MergeFrom(const FunctionRegistry& other) {
  for (const auto& [name, fn] : other.conditions_) conditions_.emplace(name, fn);
  for (const auto& [name, fn] : other.transforms_) transforms_.emplace(name, fn);
}

FunctionRegistry FunctionRegistry::WithBuiltins() {
  FunctionRegistry r;

  r.RegisterCondition("Value", [](const std::vector<Term>& args) {
    return args.size() == 1 && TermIsValue(args[0]);
  });
  r.RegisterCondition("Attribute", [](const std::vector<Term>& args) {
    return args.size() == 1 && TermIsAttr(args[0]);
  });
  r.RegisterCondition("Integer", [](const std::vector<Term>& args) {
    return args.size() == 1 && TermIsValue(args[0]) &&
           TermValue(args[0]).kind() == ValueKind::kInt;
  });
  r.RegisterCondition("String", [](const std::vector<Term>& args) {
    return args.size() == 1 && TermIsValue(args[0]) &&
           TermValue(args[0]).kind() == ValueKind::kString;
  });

  r.RegisterTransform("Identity", [](const std::vector<Term>& args) -> Result<Term> {
    if (args.size() != 1) return ArityError("Identity", 1, args.size());
    return args[0];
  });
  r.RegisterTransform(
      "RewriteTextPat", [](const std::vector<Term>& args) -> Result<Term> {
        if (args.size() != 1) return ArityError("RewriteTextPat", 1, args.size());
        Result<std::string> text = StringArg("RewriteTextPat", args, 0);
        if (!text.ok()) return text.status();
        Result<TextPattern> pattern = TextPattern::Parse(*text);
        if (!pattern.ok()) return pattern.status();
        return Term(Value::Str(pattern->RelaxNear().ToString()));
      });
  r.RegisterTransform(
      "LnFnToName", [](const std::vector<Term>& args) -> Result<Term> {
        if (args.size() != 2) return ArityError("LnFnToName", 2, args.size());
        Result<std::string> ln = StringArg("LnFnToName", args, 0);
        if (!ln.ok()) return ln.status();
        Result<std::string> fn = StringArg("LnFnToName", args, 1);
        if (!fn.ok()) return fn.status();
        return Term(Value::Str(LnFnToName(*ln, *fn)));
      });
  r.RegisterTransform("NameOfLn", [](const std::vector<Term>& args) -> Result<Term> {
    if (args.size() != 1) return ArityError("NameOfLn", 1, args.size());
    Result<std::string> ln = StringArg("NameOfLn", args, 0);
    if (!ln.ok()) return ln.status();
    return Term(Value::Str(*ln));
  });
  r.RegisterTransform("MakeDate", [](const std::vector<Term>& args) -> Result<Term> {
    if (args.size() != 2) return ArityError("MakeDate", 2, args.size());
    Result<int64_t> year = IntArg("MakeDate", args, 0);
    if (!year.ok()) return year.status();
    Result<int64_t> month = IntArg("MakeDate", args, 1);
    if (!month.ok()) return month.status();
    Result<Date> d = MakeDate(*year, *month);
    if (!d.ok()) return d.status();
    return Term(Value::OfDate(*d));
  });
  r.RegisterTransform(
      "MakeYearDate", [](const std::vector<Term>& args) -> Result<Term> {
        if (args.size() != 1) return ArityError("MakeYearDate", 1, args.size());
        Result<int64_t> year = IntArg("MakeYearDate", args, 0);
        if (!year.ok()) return year.status();
        return Term(Value::OfDate(MakeYearDate(*year)));
      });
  r.RegisterTransform("MakeRange", [](const std::vector<Term>& args) -> Result<Term> {
    if (args.size() != 2) return ArityError("MakeRange", 2, args.size());
    Result<double> lo = NumArg("MakeRange", args, 0);
    if (!lo.ok()) return lo.status();
    Result<double> hi = NumArg("MakeRange", args, 1);
    if (!hi.ok()) return hi.status();
    return Term(Value::OfRange(Range{*lo, *hi}));
  });
  r.RegisterTransform("MakePoint", [](const std::vector<Term>& args) -> Result<Term> {
    if (args.size() != 2) return ArityError("MakePoint", 2, args.size());
    Result<double> x = NumArg("MakePoint", args, 0);
    if (!x.ok()) return x.status();
    Result<double> y = NumArg("MakePoint", args, 1);
    if (!y.ok()) return y.status();
    return Term(Value::OfPoint(Point{*x, *y}));
  });

  return r;
}

}  // namespace qmap
