#include "qmap/rules/matcher.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <unordered_map>

#include "qmap/rules/compiled_matcher.h"
#include "qmap/rules/rule_index.h"

namespace qmap {
namespace {

MatchEngine& EngineFlag() {
  static MatchEngine engine = MatchEngineFromEnv();
  return engine;
}

uint64_t HashIndices(const std::vector<int>& indices) {
  uint64_t h = 1469598103934665603ull;
  for (int i : indices) {
    h ^= static_cast<uint64_t>(static_cast<uint32_t>(i));
    h *= 1099511628211ull;
  }
  return h;
}

// Deduplicates one rule's matchings by (sorted constraint indices, bindings)
// without rendering either to a string: candidates hash to a bucket and are
// compared structurally against the matchings already emitted. The matcher
// used to build a Matching::ToString() key per found matching and dedup
// through a std::set<std::string>; this keeps the same first-wins semantics
// with integer/term comparisons only.
class MatchingDedup {
 public:
  explicit MatchingDedup(const std::vector<Matching>* out) : out_(out) {}

  /// True when (indices, bindings) is new; records it as owning the next
  /// slot of *out_ (the caller must then push exactly one matching).
  bool Insert(const std::vector<int>& indices, const Bindings& bindings) {
    const uint64_t h = HashIndices(indices) ^ bindings.Hash();
    std::vector<size_t>& slot = seen_[h];
    for (size_t idx : slot) {
      const Matching& m = (*out_)[idx];
      if (m.constraint_indices == indices && m.bindings.SameAs(bindings)) {
        return false;
      }
    }
    slot.push_back(out_->size());
    return true;
  }

 private:
  const std::vector<Matching>* out_;
  std::unordered_map<uint64_t, std::vector<size_t>> seen_;
};

Matching MakeMatching(const Rule& rule, std::vector<int> sorted_indices,
                      const Bindings& bindings) {
  Matching m;
  m.constraint_indices = std::move(sorted_indices);
  m.bindings = bindings;
  m.rule = &rule;
  m.rule_name = rule.name;
  m.rule_exact = rule.exact;
  return m;
}

// Recursively assigns constraints to head patterns. `used` holds the
// constraint indices already taken by earlier patterns; a matching uses
// pairwise-distinct constraints. This is the naive reference path: every
// pattern position tries every remaining constraint, on a scratch copy of
// the bindings per attempt.
void MatchHead(const Rule& rule, const std::vector<Constraint>& constraints,
               const FunctionRegistry& registry, size_t pattern_index,
               std::vector<int>* used, const Bindings& bindings,
               MatchCounters* counters, MatchingDedup* dedup,
               std::vector<Matching>* out) {
  if (pattern_index == rule.head.size()) {
    if (!rule.ConditionsHold(bindings, registry)) return;
    std::vector<int> sorted = *used;
    std::sort(sorted.begin(), sorted.end());
    if (!dedup->Insert(sorted, bindings)) return;
    if (counters != nullptr) ++counters->matchings_found;
    out->push_back(MakeMatching(rule, std::move(sorted), bindings));
    return;
  }
  const ConstraintPattern& pattern = rule.head[pattern_index];
  for (int i = 0; i < static_cast<int>(constraints.size()); ++i) {
    if (std::find(used->begin(), used->end(), i) != used->end()) continue;
    if (counters != nullptr) ++counters->pattern_attempts;
    Bindings extended = bindings;
    if (!pattern.Match(constraints[i], &extended)) continue;
    used->push_back(i);
    MatchHead(rule, constraints, registry, pattern_index + 1, used, extended,
              counters, dedup, out);
    used->pop_back();
  }
}

// The indexed recursion: pattern slots enumerate only their (attribute, op)
// bucket, and all attempts share one Bindings object via the undo log.
// Buckets preserve ascending constraint order, so the successful assignments
// are visited in exactly the naive path's order — the two paths emit
// byte-identical matching lists.
struct IndexedCtx {
  const Rule* rule = nullptr;
  const std::vector<PatternKey>* keys = nullptr;
  const std::vector<Constraint>* constraints = nullptr;
  const FunctionRegistry* registry = nullptr;
  const ConjunctionIndex* cindex = nullptr;
  MatchCounters* counters = nullptr;
  MatchingDedup* dedup = nullptr;
  std::vector<Matching>* out = nullptr;
  std::vector<int> used;
  std::vector<char> used_mask;
  Bindings bindings;
};

void MatchHeadIndexed(IndexedCtx& ctx, size_t pattern_index) {
  if (pattern_index == ctx.rule->head.size()) {
    if (!ctx.rule->ConditionsHold(ctx.bindings, *ctx.registry)) return;
    std::vector<int> sorted = ctx.used;
    std::sort(sorted.begin(), sorted.end());
    if (!ctx.dedup->Insert(sorted, ctx.bindings)) return;
    if (ctx.counters != nullptr) ++ctx.counters->matchings_found;
    ctx.out->push_back(MakeMatching(*ctx.rule, std::move(sorted), ctx.bindings));
    return;
  }
  const ConstraintPattern& pattern = ctx.rule->head[pattern_index];
  const PatternKey& key = (*ctx.keys)[pattern_index];
  const std::vector<int>& candidates = ctx.cindex->Candidates(key);
  if (ctx.counters != nullptr && !key.is_wildcard()) ++ctx.counters->index_hits;
  uint64_t tried = 0;
  for (int i : candidates) {
    if (ctx.used_mask[static_cast<size_t>(i)] != 0) continue;
    ++tried;
    if (ctx.counters != nullptr) ++ctx.counters->pattern_attempts;
    const size_t mark = ctx.bindings.Mark();
    if (!pattern.Match((*ctx.constraints)[static_cast<size_t>(i)],
                       &ctx.bindings)) {
      ctx.bindings.RollbackTo(mark);
      continue;
    }
    ctx.used.push_back(i);
    ctx.used_mask[static_cast<size_t>(i)] = 1;
    MatchHeadIndexed(ctx, pattern_index + 1);
    ctx.used.pop_back();
    ctx.used_mask[static_cast<size_t>(i)] = 0;
    ctx.bindings.RollbackTo(mark);
  }
  if (ctx.counters != nullptr) {
    ctx.counters->pattern_attempts_saved +=
        (ctx.constraints->size() - ctx.used.size()) - tried;
  }
}

}  // namespace

const char* MatchEngineName(MatchEngine engine) {
  switch (engine) {
    case MatchEngine::kNaive:
      return "naive";
    case MatchEngine::kIndexed:
      return "indexed";
    case MatchEngine::kCompiled:
      return "compiled";
  }
  return "unknown";
}

MatchEngine MatchEngineFromEnv() {
  if (const char* v = std::getenv("QMAP_MATCH_ENGINE")) {
    if (std::strcmp(v, "naive") == 0) return MatchEngine::kNaive;
    if (std::strcmp(v, "indexed") == 0) return MatchEngine::kIndexed;
    if (std::strcmp(v, "compiled") == 0) return MatchEngine::kCompiled;
    // Unrecognized values (including "") fall through to the default rather
    // than silently picking a slow path.
    return MatchEngine::kCompiled;
  }
  if (std::getenv("QMAP_DISABLE_MATCH_INDEX") != nullptr) {
    return MatchEngine::kNaive;
  }
  return MatchEngine::kCompiled;
}

MatchEngine CurrentMatchEngine() { return EngineFlag(); }

void SetMatchEngine(MatchEngine engine) { EngineFlag() = engine; }

void SetMatchIndexEnabled(bool enabled) {
  SetMatchEngine(enabled ? MatchEngine::kIndexed : MatchEngine::kNaive);
}

bool MatchIndexEnabled() { return CurrentMatchEngine() != MatchEngine::kNaive; }

bool Matching::IsStrictSubsetOf(const Matching& other) const {
  if (constraint_indices.size() >= other.constraint_indices.size()) return false;
  return std::includes(other.constraint_indices.begin(),
                       other.constraint_indices.end(), constraint_indices.begin(),
                       constraint_indices.end());
}

std::string Matching::ToString() const {
  std::string out = !rule_name.empty() ? rule_name : "?";
  out += "{";
  for (size_t i = 0; i < constraint_indices.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(constraint_indices[i]);
  }
  out += "}";
  out += bindings.ToString();
  return out;
}

std::vector<Matching> MatchRule(const Rule& rule,
                                const std::vector<Constraint>& constraints,
                                const FunctionRegistry& registry,
                                MatchCounters* counters) {
  std::vector<Matching> out;
  MatchingDedup dedup(&out);
  std::vector<int> used;
  used.reserve(rule.head.size());
  Bindings empty;
  MatchHead(rule, constraints, registry, 0, &used, empty, counters, &dedup, &out);
  return out;
}

std::vector<Matching> MatchSpecNaive(const MappingSpec& spec,
                                     const std::vector<Constraint>& constraints,
                                     MatchCounters* counters) {
  std::vector<Matching> out;
  out.reserve(spec.rules().size());
  for (const Rule& rule : spec.rules()) {
    MatchingDedup dedup(&out);
    std::vector<int> used;
    used.reserve(rule.head.size());
    Bindings empty;
    MatchHead(rule, constraints, spec.registry(), 0, &used, empty, counters,
              &dedup, &out);
  }
  return out;
}

std::vector<Matching> MatchSpec(const MappingSpec& spec,
                                const std::vector<Constraint>& constraints,
                                MatchCounters* counters) {
  switch (CurrentMatchEngine()) {
    case MatchEngine::kNaive:
      return MatchSpecNaive(spec, constraints, counters);
    case MatchEngine::kCompiled:
      return MatchSpecCompiled(spec, constraints, counters);
    case MatchEngine::kIndexed:
      break;
  }
  return MatchSpecIndexed(spec, constraints, counters);
}

std::vector<Matching> MatchSpecIndexed(const MappingSpec& spec,
                                       const std::vector<Constraint>& constraints,
                                       MatchCounters* counters) {
  std::shared_ptr<const RuleIndex> index = spec.rule_index();
  ConjunctionIndex cindex(constraints);
  std::vector<Matching> out;
  out.reserve(spec.rules().size());
  const std::vector<Rule>& rules = spec.rules();
  for (size_t r = 0; r < rules.size(); ++r) {
    const std::vector<PatternKey>& keys = index->keys()[r];
    // Rule-level pruning: if any pattern's bucket is empty, the rule cannot
    // match at all — skip it without touching a single constraint.
    bool feasible = true;
    for (const PatternKey& key : keys) {
      if (cindex.Candidates(key).empty()) {
        feasible = false;
        break;
      }
    }
    if (!feasible) {
      if (counters != nullptr) {
        counters->pattern_attempts_saved += constraints.size();
      }
      continue;
    }
    IndexedCtx ctx;
    ctx.rule = &rules[r];
    ctx.keys = &keys;
    ctx.constraints = &constraints;
    ctx.registry = &spec.registry();
    ctx.cindex = &cindex;
    ctx.counters = counters;
    MatchingDedup dedup(&out);
    ctx.dedup = &dedup;
    ctx.out = &out;
    ctx.used.reserve(keys.size());
    ctx.used_mask.assign(constraints.size(), 0);
    MatchHeadIndexed(ctx, 0);
  }
  return out;
}

}  // namespace qmap
