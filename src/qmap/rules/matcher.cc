#include "qmap/rules/matcher.h"

#include <algorithm>
#include <set>

namespace qmap {
namespace {

// Recursively assigns constraints to head patterns. `used` holds the
// constraint indices already taken by earlier patterns; a matching uses
// pairwise-distinct constraints.
void MatchHead(const Rule& rule, const std::vector<Constraint>& constraints,
               const FunctionRegistry& registry, size_t pattern_index,
               std::vector<int>* used, const Bindings& bindings,
               MatchCounters* counters, std::set<std::string>* seen,
               std::vector<Matching>* out) {
  if (pattern_index == rule.head.size()) {
    if (!rule.ConditionsHold(bindings, registry)) return;
    Matching m;
    m.constraint_indices = *used;
    std::sort(m.constraint_indices.begin(), m.constraint_indices.end());
    m.bindings = bindings;
    m.rule = &rule;
    m.rule_name = rule.name;
    m.rule_exact = rule.exact;
    std::string key = m.ToString();
    if (seen->insert(std::move(key)).second) {
      if (counters != nullptr) ++counters->matchings_found;
      out->push_back(std::move(m));
    }
    return;
  }
  const ConstraintPattern& pattern = rule.head[pattern_index];
  for (int i = 0; i < static_cast<int>(constraints.size()); ++i) {
    if (std::find(used->begin(), used->end(), i) != used->end()) continue;
    if (counters != nullptr) ++counters->pattern_attempts;
    Bindings extended = bindings;
    if (!pattern.Match(constraints[i], &extended)) continue;
    used->push_back(i);
    MatchHead(rule, constraints, registry, pattern_index + 1, used, extended,
              counters, seen, out);
    used->pop_back();
  }
}

}  // namespace

bool Matching::IsStrictSubsetOf(const Matching& other) const {
  if (constraint_indices.size() >= other.constraint_indices.size()) return false;
  return std::includes(other.constraint_indices.begin(),
                       other.constraint_indices.end(), constraint_indices.begin(),
                       constraint_indices.end());
}

std::string Matching::ToString() const {
  std::string out = !rule_name.empty() ? rule_name : "?";
  out += "{";
  for (size_t i = 0; i < constraint_indices.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(constraint_indices[i]);
  }
  out += "}";
  out += bindings.ToString();
  return out;
}

std::vector<Matching> MatchRule(const Rule& rule,
                                const std::vector<Constraint>& constraints,
                                const FunctionRegistry& registry,
                                MatchCounters* counters) {
  std::vector<Matching> out;
  std::vector<int> used;
  std::set<std::string> seen;
  Bindings empty;
  MatchHead(rule, constraints, registry, 0, &used, empty, counters, &seen, &out);
  return out;
}

std::vector<Matching> MatchSpec(const MappingSpec& spec,
                                const std::vector<Constraint>& constraints,
                                MatchCounters* counters) {
  std::vector<Matching> out;
  for (const Rule& rule : spec.rules()) {
    std::vector<Matching> matched =
        MatchRule(rule, constraints, spec.registry(), counters);
    out.insert(out.end(), std::make_move_iterator(matched.begin()),
               std::make_move_iterator(matched.end()));
  }
  return out;
}

}  // namespace qmap
