#include "qmap/rules/spec_check.h"

#include "qmap/rules/matcher.h"

namespace qmap {

std::string SpecViolation::ToString() const {
  std::string out = rule.empty() ? "(coverage)" : rule;
  out += " " + matching + ": " + detail;
  return out;
}

std::vector<SpecViolation> CheckRuleSoundness(
    const MappingSpec& spec, const std::vector<Constraint>& conjunction,
    const std::vector<Tuple>& source_universe,
    const std::function<Tuple(const Tuple&)>& convert,
    const ConstraintSemantics* semantics) {
  std::vector<SpecViolation> violations;
  std::vector<Matching> matchings = MatchSpec(spec, conjunction);
  for (const Matching& m : matchings) {
    Result<Query> emission = m.rule->Fire(m.bindings, spec.registry());
    if (!emission.ok()) {
      violations.push_back(
          {m.rule_name, m.ToString(), "emission failed: " + emission.status().ToString()});
      continue;
    }
    // ∧(m) as a query over the source vocabulary.
    std::vector<Query> leaves;
    std::string rendered;
    for (int index : m.constraint_indices) {
      const Constraint& c = conjunction[static_cast<size_t>(index)];
      leaves.push_back(Query::Leaf(c));
      rendered += c.ToString();
    }
    Query matched = Query::And(std::move(leaves));
    for (const Tuple& t : source_universe) {
      bool source_holds = EvalQuery(matched, t);
      bool target_holds = EvalQuery(*emission, convert(t), semantics);
      if (source_holds && !target_holds) {
        violations.push_back({m.rule_name, rendered,
                              "emission does not subsume the matching on tuple " +
                                  t.ToString()});
        break;
      }
      if (m.rule_exact && target_holds && !source_holds) {
        violations.push_back(
            {m.rule_name, rendered,
             "rule is marked exact but its emission admits extra tuple " +
                 t.ToString() + " (mark it `inexact`?)"});
        break;
      }
    }
  }
  return violations;
}

std::vector<Constraint> UncoveredConstraints(
    const MappingSpec& spec, const std::vector<Constraint>& constraints) {
  std::vector<Constraint> uncovered;
  for (const Constraint& c : constraints) {
    std::vector<Matching> matchings = MatchSpec(spec, {c});
    if (matchings.empty()) uncovered.push_back(c);
  }
  return uncovered;
}

}  // namespace qmap
