#ifndef QMAP_RULES_MATCHER_H_
#define QMAP_RULES_MATCHER_H_

#include <cstdint>
#include <vector>

#include "qmap/rules/spec.h"

namespace qmap {

/// A matching of a rule in a simple conjunction (Section 4.1): the subset of
/// constraints (as sorted indices into the input conjunction) that together
/// satisfy the rule's head, plus the variable bindings established.
struct Matching {
  std::vector<int> constraint_indices;  // sorted ascending, no duplicates
  Bindings bindings;
  /// The matched rule. Points into the MappingSpec the matching was produced
  /// from: valid only while that spec is alive.
  const Rule* rule = nullptr;
  /// Self-contained copies for inspection after the spec is gone.
  std::string rule_name;
  bool rule_exact = true;

  /// True if this matching's constraint set is a strict subset of `other`'s
  /// (the sub-matching test of Algorithm SCM step 2).
  bool IsStrictSubsetOf(const Matching& other) const;

  std::string ToString() const;
};

/// Counters exposed to benchmarks (the N·P·R cost term of Section 4.4).
struct MatchCounters {
  uint64_t pattern_attempts = 0;  // pattern-vs-constraint match trials
  uint64_t matchings_found = 0;
  /// Pattern-slot lookups answered from a literal (attribute, op) bucket of
  /// the conjunction index (wildcard-bucket lookups are not counted). In the
  /// compiled engine a shared prefix edge counts once per conjunction, not
  /// once per rule sharing it.
  uint64_t index_hits = 0;
  /// Pattern trials the index avoided relative to the naive matcher: at each
  /// visited pattern slot, the naive path would have tried every not-yet-used
  /// constraint; the indexed path tries only the slot's bucket. Rules skipped
  /// outright (some pattern's bucket is empty) count one naive slot-0 sweep —
  /// a lower bound on the recursion the naive matcher would have done.
  uint64_t pattern_attempts_saved = 0;
  /// Conjunctions answered by the compiled discrimination-DAG engine.
  uint64_t compiled_hits = 0;
};

/// The three implementations of MatchSpec, selectable at runtime. All emit
/// byte-identical matchings in byte-identical order; they differ only in
/// cost (tests/matcher_equiv_test.cc, tests/compiled_matcher_test.cc).
enum class MatchEngine {
  kNaive,     // every rule tries every constraint at every pattern slot
  kIndexed,   // per-conjunction (attribute, op) buckets per rule (PR 3)
  kCompiled,  // the spec's compiled discrimination DAG (rule_program.h)
};

/// Canonical lowercase name: "naive" / "indexed" / "compiled".
const char* MatchEngineName(MatchEngine engine);

/// The single decode of the engine environment toggles — every consumer
/// (matcher dispatch, benches, service status pages) goes through this:
///   QMAP_MATCH_ENGINE=naive|indexed|compiled  picks a path explicitly;
///   QMAP_DISABLE_MATCH_INDEX (any value)      deprecated alias for =naive;
///   neither                                   kCompiled.
/// Pure: reads the environment on every call (the process-wide engine is
/// initialized from it once, at first use).
MatchEngine MatchEngineFromEnv();

/// The engine MatchSpec currently dispatches to (initialized from
/// MatchEngineFromEnv at first use) / programmatic override of it. The
/// setter is for tests and A/B benchmark runs; it is not thread-safe
/// against concurrent MatchSpec calls.
MatchEngine CurrentMatchEngine();
void SetMatchEngine(MatchEngine engine);

/// Finds M(Q̂, R): all matchings of `rule` in the conjunction `constraints`.
/// Matchings are deduplicated by (constraint set, bindings).
std::vector<Matching> MatchRule(const Rule& rule,
                                const std::vector<Constraint>& constraints,
                                const FunctionRegistry& registry,
                                MatchCounters* counters = nullptr);

/// Finds M(Q̂, K) = ∪_R M(Q̂, R) over all rules of `spec`.
///
/// Dispatches to CurrentMatchEngine(): by default the compiled
/// discrimination DAG (spec.compiled_plan(); see qmap/rules/rule_program.h),
/// with the PR 3 indexed interpreter and the naive reference selectable via
/// QMAP_MATCH_ENGINE / SetMatchEngine. All three produce byte-identical
/// matchings in byte-identical order, verified by
/// tests/matcher_equiv_test.cc and tests/compiled_matcher_test.cc.
std::vector<Matching> MatchSpec(const MappingSpec& spec,
                                const std::vector<Constraint>& constraints,
                                MatchCounters* counters = nullptr);

/// The naive reference path: every rule tries every constraint at every
/// pattern position. Kept callable directly for A/B benchmarks and the
/// matcher equivalence suite.
std::vector<Matching> MatchSpecNaive(const MappingSpec& spec,
                                     const std::vector<Constraint>& constraints,
                                     MatchCounters* counters = nullptr);

/// The PR 3 indexed interpreter, callable directly (A/B benchmarks and the
/// equivalence suites) regardless of the process-wide engine: constraints
/// are bucketed by (attribute, op) once per call and each head pattern
/// enumerates only its bucket, with an undo-log on one shared Bindings.
std::vector<Matching> MatchSpecIndexed(const MappingSpec& spec,
                                       const std::vector<Constraint>& constraints,
                                       MatchCounters* counters = nullptr);

/// Deprecated pre-PR 8 toggle, kept for callers that predate MatchEngine:
/// SetMatchIndexEnabled(false) selects kNaive, (true) selects kIndexed, and
/// MatchIndexEnabled() reports engine != kNaive. New code should use
/// SetMatchEngine / CurrentMatchEngine.
void SetMatchIndexEnabled(bool enabled);
bool MatchIndexEnabled();

}  // namespace qmap

#endif  // QMAP_RULES_MATCHER_H_
