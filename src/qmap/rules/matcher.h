#ifndef QMAP_RULES_MATCHER_H_
#define QMAP_RULES_MATCHER_H_

#include <cstdint>
#include <vector>

#include "qmap/rules/spec.h"

namespace qmap {

/// A matching of a rule in a simple conjunction (Section 4.1): the subset of
/// constraints (as sorted indices into the input conjunction) that together
/// satisfy the rule's head, plus the variable bindings established.
struct Matching {
  std::vector<int> constraint_indices;  // sorted ascending, no duplicates
  Bindings bindings;
  /// The matched rule. Points into the MappingSpec the matching was produced
  /// from: valid only while that spec is alive.
  const Rule* rule = nullptr;
  /// Self-contained copies for inspection after the spec is gone.
  std::string rule_name;
  bool rule_exact = true;

  /// True if this matching's constraint set is a strict subset of `other`'s
  /// (the sub-matching test of Algorithm SCM step 2).
  bool IsStrictSubsetOf(const Matching& other) const;

  std::string ToString() const;
};

/// Counters exposed to benchmarks (the N·P·R cost term of Section 4.4).
struct MatchCounters {
  uint64_t pattern_attempts = 0;  // pattern-vs-constraint match trials
  uint64_t matchings_found = 0;
  /// Pattern-slot lookups answered from a literal (attribute, op) bucket of
  /// the conjunction index (wildcard-bucket lookups are not counted).
  uint64_t index_hits = 0;
  /// Pattern trials the index avoided relative to the naive matcher: at each
  /// visited pattern slot, the naive path would have tried every not-yet-used
  /// constraint; the indexed path tries only the slot's bucket. Rules skipped
  /// outright (some pattern's bucket is empty) count one naive slot-0 sweep —
  /// a lower bound on the recursion the naive matcher would have done.
  uint64_t pattern_attempts_saved = 0;
};

/// Finds M(Q̂, R): all matchings of `rule` in the conjunction `constraints`.
/// Matchings are deduplicated by (constraint set, bindings).
std::vector<Matching> MatchRule(const Rule& rule,
                                const std::vector<Constraint>& constraints,
                                const FunctionRegistry& registry,
                                MatchCounters* counters = nullptr);

/// Finds M(Q̂, K) = ∪_R M(Q̂, R) over all rules of `spec`.
///
/// By default this runs the index-accelerated matcher: constraints are
/// bucketed by (attribute, op) once per call, and each head pattern
/// enumerates only its bucket (see qmap/rules/rule_index.h), with an undo-log
/// on the shared Bindings instead of a copy per attempt. The output is
/// byte-identical to MatchSpecNaive — same matchings, same order — verified
/// by tests/matcher_equiv_test.cc. Set the QMAP_DISABLE_MATCH_INDEX
/// environment variable (any value, checked once at first use) or call
/// SetMatchIndexEnabled(false) to fall back to the naive path.
std::vector<Matching> MatchSpec(const MappingSpec& spec,
                                const std::vector<Constraint>& constraints,
                                MatchCounters* counters = nullptr);

/// The naive reference path: every rule tries every constraint at every
/// pattern position. Kept callable directly for A/B benchmarks and the
/// matcher equivalence suite.
std::vector<Matching> MatchSpecNaive(const MappingSpec& spec,
                                     const std::vector<Constraint>& constraints,
                                     MatchCounters* counters = nullptr);

/// Programmatic override of the QMAP_DISABLE_MATCH_INDEX toggle (tests and
/// A/B benchmark runs). Not thread-safe against concurrent MatchSpec calls.
void SetMatchIndexEnabled(bool enabled);
bool MatchIndexEnabled();

}  // namespace qmap

#endif  // QMAP_RULES_MATCHER_H_
