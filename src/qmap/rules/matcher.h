#ifndef QMAP_RULES_MATCHER_H_
#define QMAP_RULES_MATCHER_H_

#include <cstdint>
#include <vector>

#include "qmap/rules/spec.h"

namespace qmap {

/// A matching of a rule in a simple conjunction (Section 4.1): the subset of
/// constraints (as sorted indices into the input conjunction) that together
/// satisfy the rule's head, plus the variable bindings established.
struct Matching {
  std::vector<int> constraint_indices;  // sorted ascending, no duplicates
  Bindings bindings;
  /// The matched rule. Points into the MappingSpec the matching was produced
  /// from: valid only while that spec is alive.
  const Rule* rule = nullptr;
  /// Self-contained copies for inspection after the spec is gone.
  std::string rule_name;
  bool rule_exact = true;

  /// True if this matching's constraint set is a strict subset of `other`'s
  /// (the sub-matching test of Algorithm SCM step 2).
  bool IsStrictSubsetOf(const Matching& other) const;

  std::string ToString() const;
};

/// Counters exposed to benchmarks (the N·P·R cost term of Section 4.4).
struct MatchCounters {
  uint64_t pattern_attempts = 0;  // pattern-vs-constraint match trials
  uint64_t matchings_found = 0;
};

/// Finds M(Q̂, R): all matchings of `rule` in the conjunction `constraints`.
/// Matchings are deduplicated by (constraint set, bindings).
std::vector<Matching> MatchRule(const Rule& rule,
                                const std::vector<Constraint>& constraints,
                                const FunctionRegistry& registry,
                                MatchCounters* counters = nullptr);

/// Finds M(Q̂, K) = ∪_R M(Q̂, R) over all rules of `spec`.
std::vector<Matching> MatchSpec(const MappingSpec& spec,
                                const std::vector<Constraint>& constraints,
                                MatchCounters* counters = nullptr);

}  // namespace qmap

#endif  // QMAP_RULES_MATCHER_H_
