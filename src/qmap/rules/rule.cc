#include "qmap/rules/rule.h"

namespace qmap {

Result<Term> ArgExpr::Resolve(const Bindings& bindings) const {
  switch (kind) {
    case Kind::kVar: {
      const Term* term = bindings.Find(var);
      if (term == nullptr) {
        return Status::InvalidArgument("unbound argument variable: " + var);
      }
      return *term;
    }
    case Kind::kValueLiteral:
      return Term(value_literal);
    case Kind::kAttr: {
      Result<Attr> attr_result = attr.Resolve(bindings);
      if (!attr_result.ok()) return attr_result.status();
      return Term(*std::move(attr_result));
    }
  }
  return Status::Internal("unreachable arg kind");
}

std::string ArgExpr::ToString() const {
  switch (kind) {
    case Kind::kVar:
      return var;
    case Kind::kValueLiteral:
      return value_literal.ToString();
    case Kind::kAttr:
      return attr.ToString();
  }
  return "?";
}

std::string FunctionCall::ToString() const {
  std::string out = function + "(";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out += ", ";
    out += args[i].ToString();
  }
  return out + ")";
}

Result<Query> EmissionTemplate::Instantiate(const Bindings& bindings) const {
  switch (kind) {
    case Kind::kTrue:
      return Query::True();
    case Kind::kLeaf: {
      Result<Constraint> c = leaf.Resolve(bindings);
      if (!c.ok()) return c.status();
      return Query::Leaf(*std::move(c));
    }
    case Kind::kAnd:
    case Kind::kOr: {
      std::vector<Query> parts;
      parts.reserve(children.size());
      for (const EmissionTemplate& child : children) {
        Result<Query> part = child.Instantiate(bindings);
        if (!part.ok()) return part;
        parts.push_back(*std::move(part));
      }
      return kind == Kind::kAnd ? Query::And(std::move(parts))
                                : Query::Or(std::move(parts));
    }
  }
  return Status::Internal("unreachable emission kind");
}

std::string EmissionTemplate::ToString() const {
  switch (kind) {
    case Kind::kTrue:
      return "true";
    case Kind::kLeaf:
      return leaf.ToString();
    case Kind::kAnd:
    case Kind::kOr: {
      const char* sep = kind == Kind::kAnd ? " & " : " | ";
      std::string out;
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += sep;
        bool parens = children[i].kind == Kind::kAnd || children[i].kind == Kind::kOr;
        if (parens) out += "(";
        out += children[i].ToString();
        if (parens) out += ")";
      }
      return out;
    }
  }
  return "?";
}

bool Rule::ConditionsHold(const Bindings& bindings,
                          const FunctionRegistry& registry) const {
  for (const FunctionCall& condition : conditions) {
    const FunctionRegistry::Condition* fn = registry.FindCondition(condition.function);
    if (fn == nullptr) return false;
    std::vector<Term> args;
    args.reserve(condition.args.size());
    for (const ArgExpr& arg : condition.args) {
      Result<Term> term = arg.Resolve(bindings);
      if (!term.ok()) return false;
      args.push_back(*std::move(term));
    }
    if (!(*fn)(args)) return false;
  }
  return true;
}

Result<Query> Rule::Fire(const Bindings& bindings,
                         const FunctionRegistry& registry) const {
  Bindings env = bindings;
  for (const Assignment& let : lets) {
    const FunctionRegistry::Transform* fn = registry.FindTransform(let.call.function);
    if (fn == nullptr) {
      return Status::NotFound("rule " + name + " references unknown transform " +
                              let.call.function);
    }
    std::vector<Term> args;
    args.reserve(let.call.args.size());
    for (const ArgExpr& arg : let.call.args) {
      Result<Term> term = arg.Resolve(env);
      if (!term.ok()) return term.status();
      args.push_back(*std::move(term));
    }
    Result<Term> out = (*fn)(args);
    if (!out.ok()) return out.status();
    if (!env.BindOrCheck(let.var, *out)) {
      return Status::InvalidArgument("rule " + name + ": let rebinds " + let.var +
                                     " to a different term");
    }
  }
  return emission.Instantiate(env);
}

std::string Rule::ToString() const {
  std::string out = "rule " + name;
  if (!exact) out += " inexact";
  out += ": ";
  for (size_t i = 0; i < head.size(); ++i) {
    if (i > 0) out += "; ";
    out += head[i].ToString();
  }
  if (!conditions.empty()) {
    out += " where ";
    for (size_t i = 0; i < conditions.size(); ++i) {
      if (i > 0) out += ", ";
      out += conditions[i].ToString();
    }
  }
  out += " => ";
  for (const Assignment& let : lets) {
    out += "let " + let.var + " = " + let.call.ToString() + "; ";
  }
  out += "emit " + emission.ToString() + ";";
  return out;
}

}  // namespace qmap
