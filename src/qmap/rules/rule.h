#ifndef QMAP_RULES_RULE_H_
#define QMAP_RULES_RULE_H_

#include <memory>
#include <string>
#include <vector>

#include "qmap/expr/query.h"
#include "qmap/rules/function_registry.h"
#include "qmap/rules/pattern.h"

namespace qmap {

/// An argument of a condition or transform call: a variable reference, a
/// value literal, or an attribute expression resolved against the bindings.
struct ArgExpr {
  enum class Kind { kVar, kValueLiteral, kAttr };

  Kind kind = Kind::kVar;
  std::string var;
  Value value_literal;
  AttrExpr attr;

  Result<Term> Resolve(const Bindings& bindings) const;
  std::string ToString() const;
};

/// A call `Name(arg, ...)` appearing as a rule condition or a `let` RHS.
struct FunctionCall {
  std::string function;
  std::vector<ArgExpr> args;

  std::string ToString() const;
};

/// A `let Var = Fn(args);` step of a rule tail.
struct Assignment {
  std::string var;
  FunctionCall call;
};

/// Emission template: a small ∧/∨ tree of constraint templates, or True.
/// Instantiated against the matching's bindings to produce the target query.
struct EmissionTemplate {
  enum class Kind { kTrue, kLeaf, kAnd, kOr };

  Kind kind = Kind::kTrue;
  ConstraintPattern leaf;                            // kLeaf
  std::vector<EmissionTemplate> children;            // kAnd/kOr

  Result<Query> Instantiate(const Bindings& bindings) const;
  std::string ToString() const;
};

/// A mapping rule (Section 4.1): the head is a list of constraint patterns
/// plus condition calls; the tail is a list of transform assignments and an
/// emission.  A sound rule's matchings are indecomposable constraint groups
/// and its emission is their minimal subsuming mapping (Definition 3).
struct Rule {
  std::string name;
  std::vector<ConstraintPattern> head;
  std::vector<FunctionCall> conditions;
  std::vector<Assignment> lets;
  EmissionTemplate emission;

  /// When false, the emission is a strict relaxation of the matched
  /// constraints (e.g. `near` relaxed to `∧`, or a dropped name component);
  /// the translator then keeps the matched constraints in the residue filter
  /// F of Eq. 2-3.  Declared in the DSL with the `inexact` keyword.
  bool exact = true;

  /// Evaluates the rule's tail for a complete set of head bindings: runs the
  /// `let` transforms, then instantiates the emission.
  Result<Query> Fire(const Bindings& bindings, const FunctionRegistry& registry) const;

  /// Checks all condition calls against `bindings`. Unknown functions are
  /// treated as failed conditions (specs should be validated up front via
  /// MappingSpec::Validate).
  bool ConditionsHold(const Bindings& bindings, const FunctionRegistry& registry) const;

  std::string ToString() const;
};

}  // namespace qmap

#endif  // QMAP_RULES_RULE_H_
