#ifndef QMAP_RULES_SPEC_PARSER_H_
#define QMAP_RULES_SPEC_PARSER_H_

#include <memory>
#include <string_view>

#include "qmap/rules/spec.h"

namespace qmap {

/// Parses a mapping specification written in the rule DSL, which transcribes
/// the paper's rule notation (Figures 3 and 5).  Example — rules R4, R6 and
/// R8 of K_Amazon:
///
///   rule R4 inexact: [ti contains P1]
///     => let P2 = RewriteTextPat(P1); emit [ti-word contains P2];
///
///   rule R6: [pyear = Y]; [pmonth = M]
///     => let D = MakeDate(Y, M); emit [pdate during D];
///
///   rule R8: [kwd contains P]
///     => emit [ti-word contains P] | [subject-word contains P];
///
/// Join-constraint rules use attribute operands and view/index variables
/// (Figure 5):
///
///   rule R5: [V1.ln = V2.ln]; [V1.fn = V2.fn]
///     => let A1 = AuthorAttr(V1); let A2 = AuthorAttr(V2); emit [A1 = A2];
///   rule R8: [fac[I].A = fac[J].A] where LnOrFn(A)
///     => emit [fac[I].prof.A = fac[J].prof.A];
///
/// Conventions:
///   * capitalized identifiers are variables (paper's convention); an index
///     in brackets is a literal when numeric and a variable otherwise;
///   * `where` lists condition calls; `let` runs transform calls;
///   * `emit true;` declares the (non-)mapping explicitly — used when a rule
///     exists only to document that a constraint group is supported nowhere;
///   * `inexact` after the rule name marks relaxation rules whose emission
///     strictly subsumes the matched constraints (kept in the filter F);
///   * `#` and `//` start comments.
///
/// The returned spec shares `registry`; Validate() is run before returning.
Result<MappingSpec> ParseMappingSpec(
    std::string_view text, std::string target_name,
    std::shared_ptr<const FunctionRegistry> registry);

}  // namespace qmap

#endif  // QMAP_RULES_SPEC_PARSER_H_
