#ifndef QMAP_COMMON_VERSION_H_
#define QMAP_COMMON_VERSION_H_

namespace qmap {

/// The library version, surfaced by the qmap_build_info metric and the admin
/// server so a scrape can identify which binary it is talking to. Bumped
/// when the observable surface changes (new endpoints, new metric families).
inline constexpr char kQmapVersion[] = "0.7.0";

}  // namespace qmap

#endif  // QMAP_COMMON_VERSION_H_
