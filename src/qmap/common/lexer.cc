#include "qmap/common/lexer.h"

#include <cctype>
#include <cstdlib>

namespace qmap {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-';
}

}  // namespace

Result<std::vector<Token>> Lexer::Tokenize(std::string_view input) {
  std::vector<Token> out;
  size_t i = 0;
  while (i < input.size()) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments: '#' or '//' to end of line.
    if (c == '#' || (c == '/' && i + 1 < input.size() && input[i + 1] == '/')) {
      while (i < input.size() && input[i] != '\n') ++i;
      continue;
    }
    Token token;
    token.offset = i;
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < input.size() && IsIdentChar(input[i])) ++i;
      token.kind = TokenKind::kIdent;
      token.text = std::string(input.substr(start, i - start));
      out.push_back(std::move(token));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i + 1 < input.size() &&
         std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      size_t start = i;
      if (c == '-') ++i;
      bool fractional = false;
      while (i < input.size() &&
             (std::isdigit(static_cast<unsigned char>(input[i])) || input[i] == '.')) {
        if (input[i] == '.') {
          // ".." or ".x" where x isn't a digit terminates the number.
          if (i + 1 >= input.size() ||
              !std::isdigit(static_cast<unsigned char>(input[i + 1]))) {
            break;
          }
          fractional = true;
        }
        ++i;
      }
      token.kind = TokenKind::kNumber;
      token.text = std::string(input.substr(start, i - start));
      token.number = std::strtod(token.text.c_str(), nullptr);
      token.is_integer = !fractional;
      out.push_back(std::move(token));
      continue;
    }
    if (c == '"') {
      ++i;
      std::string literal;
      while (i < input.size() && input[i] != '"') {
        if (input[i] == '\\' && i + 1 < input.size()) ++i;
        literal.push_back(input[i]);
        ++i;
      }
      if (i >= input.size()) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(token.offset));
      }
      ++i;  // closing quote
      token.kind = TokenKind::kString;
      token.text = std::move(literal);
      out.push_back(std::move(token));
      continue;
    }
    // Punctuation; check two-character puncts first.
    static constexpr std::string_view kTwoCharPuncts[] = {"<=", ">=", "=>",
                                                          "!=", "::"};
    std::string_view rest = input.substr(i);
    bool matched = false;
    for (std::string_view p : kTwoCharPuncts) {
      if (rest.substr(0, p.size()) == p) {
        token.kind = TokenKind::kPunct;
        token.text = std::string(p);
        i += p.size();
        matched = true;
        break;
      }
    }
    if (!matched) {
      static constexpr std::string_view kOneCharPuncts = "[](){}.,;:=<>|&@*";
      if (kOneCharPuncts.find(c) == std::string_view::npos) {
        return Status::ParseError(std::string("unexpected character '") + c +
                                  "' at offset " + std::to_string(i));
      }
      token.kind = TokenKind::kPunct;
      token.text = std::string(1, c);
      ++i;
    }
    out.push_back(std::move(token));
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.offset = input.size();
  out.push_back(std::move(end));
  return out;
}

const Token& TokenCursor::Peek(int lookahead) const {
  size_t idx = pos_ + static_cast<size_t>(lookahead);
  if (idx >= tokens_.size()) return end_token_;
  return tokens_[idx];
}

Token TokenCursor::Next() {
  Token t = Peek();
  if (pos_ < tokens_.size()) ++pos_;
  return t;
}

bool TokenCursor::TryConsumePunct(std::string_view text) {
  if (Peek().kind == TokenKind::kPunct && Peek().text == text) {
    Next();
    return true;
  }
  return false;
}

bool TokenCursor::TryConsumeIdent(std::string_view name) {
  if (Peek().kind == TokenKind::kIdent && Peek().text == name) {
    Next();
    return true;
  }
  return false;
}

Status TokenCursor::ExpectPunct(std::string_view text) {
  if (!TryConsumePunct(text)) {
    return Status::ParseError("expected '" + std::string(text) + "' but found '" +
                              Peek().text + "' at offset " +
                              std::to_string(Peek().offset));
  }
  return Status::Ok();
}

Result<std::string> TokenCursor::ExpectIdent() {
  if (Peek().kind != TokenKind::kIdent) {
    return Status::ParseError("expected identifier but found '" + Peek().text +
                              "' at offset " + std::to_string(Peek().offset));
  }
  return Next().text;
}

}  // namespace qmap
