#ifndef QMAP_COMMON_STRINGS_H_
#define QMAP_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace qmap {

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits `s` on the single character `sep`; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// ASCII lower-casing (the library deals only with ASCII vocabularies).
std::string ToLower(std::string_view s);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

/// True if `s` starts with `prefix` (ASCII case-insensitive).
bool StartsWithIgnoreCase(std::string_view s, std::string_view prefix);

/// Tokenizes `s` into lower-cased alphanumeric words (IR-style tokens).
std::vector<std::string> TokenizeWords(std::string_view s);

}  // namespace qmap

#endif  // QMAP_COMMON_STRINGS_H_
