#include "qmap/common/strings.h"

#include <cctype>

namespace qmap {

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string ToLower(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() && std::isspace(static_cast<unsigned char>(s[begin]))) ++begin;
  size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) --end;
  return s.substr(begin, end - begin);
}

bool StartsWithIgnoreCase(std::string_view s, std::string_view prefix) {
  if (s.size() < prefix.size()) return false;
  for (size_t i = 0; i < prefix.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(s[i])) !=
        std::tolower(static_cast<unsigned char>(prefix[i]))) {
      return false;
    }
  }
  return true;
}

std::vector<std::string> TokenizeWords(std::string_view s) {
  std::vector<std::string> words;
  std::string current;
  for (char c : s) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      current.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else if (!current.empty()) {
      words.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) words.push_back(std::move(current));
  return words;
}

}  // namespace qmap
