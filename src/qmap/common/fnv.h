#ifndef QMAP_COMMON_FNV_H_
#define QMAP_COMMON_FNV_H_

#include <cstdint>
#include <string_view>

namespace qmap {

/// Incremental FNV-1a 64-bit hasher — the fingerprint primitive of the
/// interned query IR (see DESIGN.md §9).  All canonical hashes in the
/// library (Value/Attr::CanonicalHash, Constraint/Query fingerprints, memo
/// and cache keys) are built from this one stream so that equal inputs hash
/// equal across layers, processes, and the intern on/off toggle.
class Fnv64 {
 public:
  static constexpr uint64_t kOffsetBasis = 1469598103934665603ull;
  static constexpr uint64_t kPrime = 1099511628211ull;

  Fnv64& AddByte(unsigned char c) {
    h_ ^= c;
    h_ *= kPrime;
    return *this;
  }

  Fnv64& Add(std::string_view s) {
    for (unsigned char c : s) AddByte(c);
    return *this;
  }

  /// Folds a finished 64-bit hash (or any integer tag) into the stream as
  /// eight little-endian bytes.  Used to combine sub-fingerprints (e.g. a
  /// query node mixes its children's fingerprints) without re-hashing the
  /// text they summarize.
  Fnv64& AddU64(uint64_t v) {
    for (int i = 0; i < 8; ++i) AddByte(static_cast<unsigned char>(v >> (8 * i)));
    return *this;
  }

  uint64_t value() const { return h_; }

 private:
  uint64_t h_ = kOffsetBasis;
};

/// One-shot FNV-1a 64 of a byte string.
inline uint64_t Fnv64Hash(std::string_view s) { return Fnv64().Add(s).value(); }

}  // namespace qmap

#endif  // QMAP_COMMON_FNV_H_
