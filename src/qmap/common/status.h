#ifndef QMAP_COMMON_STATUS_H_
#define QMAP_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace qmap {

/// Error categories used across the library. The library does not use C++
/// exceptions; fallible operations return Status or Result<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kUnsupported,
  kParseError,
  kInternal,
  // Resilience-category codes (qmap/service/resilience.h): transient
  // per-source conditions a federated caller may retry or degrade around,
  // as opposed to the permanent errors above.
  kUnavailable,       // source down / circuit breaker open; retryable
  kDeadlineExceeded,  // per-source or per-request budget exhausted
  kCancelled,         // request cancelled (explicitly or by a parent budget)
};

/// Lightweight status object, modeled after the Status idiom used by
/// production database libraries (RocksDB, Arrow).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "ParseError: unexpected token".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Result<T> carries either a value or an error Status (a minimal StatusOr).
template <typename T>
class Result {
 public:
  // Intentionally implicit so functions can `return value;` / `return status;`.
  Result(T value) : value_(std::move(value)) {}          // NOLINT
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace qmap

#endif  // QMAP_COMMON_STATUS_H_
