#include "qmap/common/status.h"

namespace qmap {
namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string out = CodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace qmap
