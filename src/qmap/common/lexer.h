#ifndef QMAP_COMMON_LEXER_H_
#define QMAP_COMMON_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "qmap/common/status.h"

namespace qmap {

enum class TokenKind { kIdent, kNumber, kString, kPunct, kEnd };

/// A lexical token. For kNumber, `number` holds the parsed value and
/// `is_integer` tells whether the literal had no fractional part.
struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;  // identifier name, punct spelling, or raw literal
  double number = 0;
  bool is_integer = false;
  size_t offset = 0;  // byte offset in the input, for error messages
};

/// Shared hand-written lexer for the query language and the rule DSL.
///
/// Identifiers are [A-Za-z_][A-Za-z0-9_-]* (hyphens allowed because the
/// paper's attribute names include `ti-word` and `id-no`). Strings are
/// double-quoted with backslash escapes. Multi-character puncts recognized:
/// `<=`, `>=`, `=>`, `!=`, `::`.
class Lexer {
 public:
  /// Tokenizes all of `input`. Fails on unterminated strings or bytes that
  /// are not part of any token.
  static Result<std::vector<Token>> Tokenize(std::string_view input);
};

/// Cursor over a token stream with the usual Peek/Consume helpers.
class TokenCursor {
 public:
  explicit TokenCursor(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  const Token& Peek(int lookahead = 0) const;
  Token Next();
  bool AtEnd() const { return Peek().kind == TokenKind::kEnd; }

  /// Consumes the next token if it is the punct `text`.
  bool TryConsumePunct(std::string_view text);
  /// Consumes the next token if it is the identifier `name` (case-sensitive).
  bool TryConsumeIdent(std::string_view name);
  /// Fails unless the next token is the punct `text`.
  Status ExpectPunct(std::string_view text);
  /// Fails unless the next token is an identifier; returns its name.
  Result<std::string> ExpectIdent();

 private:
  std::vector<Token> tokens_;
  size_t pos_ = 0;
  Token end_token_;
};

}  // namespace qmap

#endif  // QMAP_COMMON_LEXER_H_
