#ifndef QMAP_COMMON_LAZY_SHARED_H_
#define QMAP_COMMON_LAZY_SHARED_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <utility>

namespace qmap {

/// Double-checked, atomically published lazy shared value.
///
/// The publication discipline both of MappingSpec's derived artifacts (the
/// RuleIndex and the CompiledRulePlan) share: readers take the fast path — a
/// single acquire load of the shared_ptr, no lock — and only the first
/// builder (or a reader racing the first builder) takes the mutex. The value
/// is stored via release so a reader that observes the pointer observes the
/// fully built object. GetOrBuild never runs `build` twice for one published
/// value: losers of the build race re-check under the lock and adopt the
/// winner's result.
///
/// Invalidate() clears the published value; a later GetOrBuild rebuilds.
/// Invalidate must not race GetOrBuild on semantics the caller cares about
/// (MappingSpec already forbids AddRule racing readers), but the helper
/// itself is data-race-free either way.
template <typename T>
class LazyShared {
 public:
  LazyShared() = default;
  LazyShared(const LazyShared&) = delete;
  LazyShared& operator=(const LazyShared&) = delete;

  /// The published value, building and publishing it first if absent.
  /// `build` must return std::shared_ptr<const T>.
  template <typename Build>
  std::shared_ptr<const T> GetOrBuild(Build&& build) const {
    if (std::shared_ptr<const T> v = value_.load(std::memory_order_acquire)) {
      return v;
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (std::shared_ptr<const T> v = value_.load(std::memory_order_acquire)) {
      return v;
    }
    std::shared_ptr<const T> built = build();
    value_.store(built, std::memory_order_release);
    return built;
  }

  /// The published value without building: nullptr when absent.
  std::shared_ptr<const T> Peek() const {
    return value_.load(std::memory_order_acquire);
  }

  /// Drops the published value (next GetOrBuild rebuilds).
  void Invalidate() { value_.store(nullptr, std::memory_order_release); }

  /// Adopts an already built value (copy/move of the owning object).
  void Set(std::shared_ptr<const T> v) {
    value_.store(std::move(v), std::memory_order_release);
  }

 private:
  mutable std::mutex mu_;
  mutable std::atomic<std::shared_ptr<const T>> value_{nullptr};
};

}  // namespace qmap

#endif  // QMAP_COMMON_LAZY_SHARED_H_
