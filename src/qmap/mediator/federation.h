#ifndef QMAP_MEDIATOR_FEDERATION_H_
#define QMAP_MEDIATOR_FEDERATION_H_

#include <functional>
#include <string>
#include <vector>

#include "qmap/core/translator.h"
#include "qmap/relalg/ops.h"

namespace qmap {

/// A *union* integration (Section 2: "a view can be a union of SPJ
/// components; we can process each component separately and union the
/// results"): several sources each hold part of one logical collection in
/// their own vocabulary — the two-bookstore scenario of Example 1.
///
/// Each member declares how to translate queries (its mapping spec), how a
/// mediator tuple converts into its vocabulary (the data-conversion
/// direction, used to evaluate the pushed query against member data), and
/// optional target-side constraint semantics.
class FederatedCatalog {
 public:
  struct Member {
    std::string name;
    Translator translator;
    /// Converts a mediator tuple to the member's vocabulary.
    std::function<Tuple(const Tuple&)> convert;
    /// Optional member-specific constraint semantics (e.g. Amazon author
    /// matching); may be nullptr.
    const ConstraintSemantics* semantics = nullptr;
    /// The member's data, stored in *mediator* vocabulary (the substrate
    /// stands in for a live source holding the converted form).
    TupleSet data;
  };

  void AddMember(Member member) { members_.push_back(std::move(member)); }
  const std::vector<Member>& members() const { return members_; }

  /// Per-member result detail from one federated query.
  struct MemberResult {
    std::string name;
    Query pushed;        // S_i(Q)
    Query filter;        // F_i
    size_t raw_hits = 0; // tuples the member returned before filtering
    TupleSet tuples;     // after the filter
  };
  struct FederatedResult {
    std::vector<MemberResult> per_member;
    TupleSet combined;  // union of the filtered member results
  };

  /// Translates Q for every member, queries each (push S_i(Q) against the
  /// member's converted data, filter with F_i), and unions the results.
  Result<FederatedResult> Query(const qmap::Query& query) const;

  /// Ground truth: Q evaluated directly over the union of all member data
  /// in mediator vocabulary.  Query().combined must equal this (Eq. 3).
  TupleSet QueryDirect(const qmap::Query& query) const;

 private:
  std::vector<Member> members_;
};

}  // namespace qmap

#endif  // QMAP_MEDIATOR_FEDERATION_H_
