#ifndef QMAP_MEDIATOR_FEDERATION_H_
#define QMAP_MEDIATOR_FEDERATION_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "qmap/core/translator.h"
#include "qmap/relalg/ops.h"
#include "qmap/service/resilience.h"
#include "qmap/service/source_transport.h"

namespace qmap {

/// A *union* integration (Section 2: "a view can be a union of SPJ
/// components; we can process each component separately and union the
/// results"): several sources each hold part of one logical collection in
/// their own vocabulary — the two-bookstore scenario of Example 1.
///
/// Each member declares how to translate queries (its mapping spec), how a
/// mediator tuple converts into its vocabulary (the data-conversion
/// direction, used to evaluate the pushed query against member data), and
/// optional target-side constraint semantics.
class FederatedCatalog {
 public:
  struct Member {
    std::string name;
    Translator translator;
    /// Where this member's translation runs. Left null (the common case),
    /// AddMember wraps `translator` into an InProcessTransport; set
    /// explicitly (e.g. a RemoteTransport) to translate on a shard worker —
    /// `translator` is then ignored by Query().
    std::shared_ptr<SourceTransport> transport;
    /// Converts a mediator tuple to the member's vocabulary.
    std::function<Tuple(const Tuple&)> convert;
    /// Optional member-specific constraint semantics (e.g. Amazon author
    /// matching); may be nullptr.
    const ConstraintSemantics* semantics = nullptr;
    /// The member's data, stored in *mediator* vocabulary (the substrate
    /// stands in for a live source holding the converted form).
    TupleSet data;
  };

  void AddMember(Member member) {
    if (member.transport == nullptr) {
      member.transport = std::make_shared<InProcessTransport>(member.translator);
    }
    members_.push_back(std::move(member));
  }
  const std::vector<Member>& members() const { return members_; }

  /// Per-member result detail from one federated query.
  struct MemberResult {
    std::string name;
    Query pushed;        // S_i(Q)
    Query filter;        // F_i
    size_t raw_hits = 0; // tuples the member returned before filtering
    TupleSet tuples;     // after the filter
  };
  struct FederatedResult {
    std::vector<MemberResult> per_member;
    TupleSet combined;  // union of the filtered member results
    /// Members dropped (their tuples are missing from `combined`) or
    /// answering degraded (their tuples are complete: the widened pushed
    /// query over-fetches and F_i filters the excess). Union integration
    /// degrades gracefully: every surviving member's contribution is exact.
    PartialResult partial;
  };

  /// Translates Q for every member, queries each (push S_i(Q) against the
  /// member's converted data, filter with F_i), and unions the results.
  ///
  /// With resilience enabled (SetResilience), each member's translate runs
  /// under retry/breaker/deadline guards, and per-tuple data conversion is
  /// fault-injectable under the key "<member>.convert"; failing members are
  /// dropped into `partial` instead of failing the query.
  Result<FederatedResult> Query(const qmap::Query& query) const;

  /// Enables graceful degradation for Query (see ResilienceOptions). Null
  /// clock/injector/metrics mean system clock / no faults / no metrics;
  /// non-null pointers must outlive the catalog.
  void SetResilience(const ResilienceOptions& options,
                     ResilienceClock* clock = nullptr,
                     FaultInjector* injector = nullptr,
                     MetricsRegistry* metrics = nullptr);
  ResilienceManager* resilience() const { return resilience_.get(); }

  /// Ground truth: Q evaluated directly over the union of all member data
  /// in mediator vocabulary.  Query().combined must equal this (Eq. 3).
  TupleSet QueryDirect(const qmap::Query& query) const;

 private:
  std::vector<Member> members_;
  std::shared_ptr<ResilienceManager> resilience_;
};

}  // namespace qmap

#endif  // QMAP_MEDIATOR_FEDERATION_H_
