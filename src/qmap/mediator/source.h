#ifndef QMAP_MEDIATOR_SOURCE_H_
#define QMAP_MEDIATOR_SOURCE_H_

#include <map>
#include <string>
#include <vector>

#include "qmap/mediator/capabilities.h"
#include "qmap/relalg/relation.h"
#include "qmap/rules/spec.h"

namespace qmap {

/// Everything the mediator knows about one underlying source T_i:
/// its mapping specification K_i (vocabulary translation), its declared
/// capabilities, its relations (data for the execution substrate), and the
/// bindings from view-qualified relation instances to relations —
/// e.g. source T1 contributes "fac.aubib" -> aubib and "pub.paper" -> paper
/// (Example 3 / Section 4.2's qualified relation naming).
class SourceContext {
 public:
  SourceContext() = default;
  SourceContext(std::string name, MappingSpec spec)
      : name_(std::move(name)), spec_(std::move(spec)) {}

  const std::string& name() const { return name_; }
  const MappingSpec& spec() const { return spec_; }
  SourceCapabilities& capabilities() { return capabilities_; }
  const SourceCapabilities& capabilities() const { return capabilities_; }

  void AddRelation(Relation relation) {
    relations_[relation.name()] = std::move(relation);
  }
  const std::map<std::string, Relation>& relations() const { return relations_; }

  /// Binds the qualified instance `qualifier` (e.g. "fac.aubib") to the
  /// source relation `relation_name`.
  Status Bind(const std::string& qualifier, const std::string& relation_name);
  const std::vector<std::pair<std::string, std::string>>& bindings() const {
    return bindings_;
  }

  /// R_i of Eq. 1: the cross product of all bound relation instances, with
  /// qualified attribute names.
  Result<std::vector<Tuple>> CrossOfBoundRelations() const;

 private:
  std::string name_;
  MappingSpec spec_;
  SourceCapabilities capabilities_;
  std::map<std::string, Relation> relations_;
  std::vector<std::pair<std::string, std::string>> bindings_;
};

}  // namespace qmap

#endif  // QMAP_MEDIATOR_SOURCE_H_
