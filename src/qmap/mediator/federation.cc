#include "qmap/mediator/federation.h"

namespace qmap {

Result<FederatedCatalog::FederatedResult> FederatedCatalog::Query(
    const qmap::Query& query) const {
  FederatedResult out;
  for (const Member& member : members_) {
    Result<Translation> translation = member.translator.Translate(query);
    if (!translation.ok()) return translation.status();
    MemberResult result;
    result.name = member.name;
    result.pushed = translation->mapped;
    result.filter = translation->filter;
    TupleSet hits;
    for (const Tuple& tuple : member.data) {
      if (EvalQuery(translation->mapped, member.convert(tuple), member.semantics)) {
        hits.push_back(tuple);
      }
    }
    result.raw_hits = hits.size();
    result.tuples = Select(hits, translation->filter);
    out.combined = Union(out.combined, result.tuples);
    out.per_member.push_back(std::move(result));
  }
  return out;
}

TupleSet FederatedCatalog::QueryDirect(const qmap::Query& query) const {
  TupleSet all;
  for (const Member& member : members_) {
    all = Union(all, member.data);
  }
  return Select(all, query);
}

}  // namespace qmap
