#include "qmap/mediator/federation.h"

#include <algorithm>

namespace qmap {

void FederatedCatalog::SetResilience(const ResilienceOptions& options,
                                     ResilienceClock* clock,
                                     FaultInjector* injector,
                                     MetricsRegistry* metrics) {
  resilience_ =
      std::make_shared<ResilienceManager>(options, clock, injector, metrics);
}

Result<FederatedCatalog::FederatedResult> FederatedCatalog::Query(
    const qmap::Query& query) const {
  FederatedResult out;
  CancelToken token;
  const CancelToken* cancel = nullptr;
  if (resilience_ != nullptr &&
      resilience_->options().request_deadline_us > 0) {
    token.budget = DeadlineBudget{}.Narrowed(
        resilience_->clock()->NowUs(),
        resilience_->options().request_deadline_us);
    cancel = &token;
  }
  for (const Member& member : members_) {
    ResilienceManager::CallReport report;
    const auto attempt = [&] {
      return member.transport->Translate(query, /*trace=*/nullptr,
                                         /*parent_span=*/0, /*memo=*/nullptr,
                                         cancel);
    };
    Result<Translation> translation =
        resilience_ != nullptr
            ? resilience_->GuardedTranslate(member.name, query, cancel, attempt,
                                            &report)
            : attempt();
    Status member_status = translation.status();
    // The data-conversion direction is a source call too: a fault scripted
    // under "<member>.convert" drops the member even though its translation
    // succeeded (e.g. a conversion service being down).
    if (member_status.ok() && resilience_ != nullptr &&
        resilience_->injector() != nullptr) {
      Fault fault = resilience_->injector()->Next(member.name + ".convert");
      if (fault.kind == FaultKind::kFail) {
        member_status = fault.status.ok()
                            ? Status::Unavailable("injected conversion fault")
                            : fault.status;
      }
    }
    if (!member_status.ok()) {
      if (resilience_ != nullptr && resilience_->options().allow_partial &&
          IsSourceDropFailure(member_status.code())) {
        out.partial.failed.push_back(
            {member.name, member_status, report.attempts});
        continue;
      }
      return member_status;
    }
    if (report.degraded) out.partial.degraded.push_back(member.name);
    MemberResult result;
    result.name = member.name;
    result.pushed = translation->mapped;
    result.filter = translation->filter;
    TupleSet hits;
    for (const Tuple& tuple : member.data) {
      if (EvalQuery(translation->mapped, member.convert(tuple), member.semantics)) {
        hits.push_back(tuple);
      }
    }
    result.raw_hits = hits.size();
    result.tuples = Select(hits, translation->filter);
    out.combined = Union(out.combined, result.tuples);
    out.per_member.push_back(std::move(result));
  }
  if (resilience_ != nullptr && !out.partial.failed.empty()) {
    const size_t survivors = members_.size() - out.partial.failed.size();
    if (survivors < std::max<size_t>(1, resilience_->options().min_sources)) {
      return Status::Unavailable(
          "only " + std::to_string(survivors) + " of " +
          std::to_string(members_.size()) +
          " members available: " + out.partial.ToString());
    }
    resilience_->RecordPartialResult(out.partial.failed.size());
  }
  return out;
}

TupleSet FederatedCatalog::QueryDirect(const qmap::Query& query) const {
  TupleSet all;
  for (const Member& member : members_) {
    all = Union(all, member.data);
  }
  return Select(all, query);
}

}  // namespace qmap
