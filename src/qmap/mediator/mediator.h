#ifndef QMAP_MEDIATOR_MEDIATOR_H_
#define QMAP_MEDIATOR_MEDIATOR_H_

#include <map>
#include <string>
#include <vector>

#include "qmap/core/translator.h"
#include "qmap/mediator/source.h"
#include "qmap/relalg/conversion.h"

namespace qmap {

/// The mediator's answer to "translate Q for everyone" (Eq. 3):
/// Q = F ∧ S_1(Q) ∧ ... ∧ S_n(Q).
struct MediatorTranslation {
  /// S_i(Q), keyed by source name.
  std::map<std::string, Translation> per_source;
  /// The residue filter F: the original constraints not fully realized at
  /// any source (plus cross-source view constraints, which no single source
  /// can evaluate).
  Query filter;
  /// Cost counters merged across all per-source translations (plus the
  /// service layer's cache/parallelism counters when produced by a
  /// TranslationService). Observability only: not part of the translation's
  /// semantic payload.
  TranslationStats stats;
};

/// A mediation pipeline over heterogeneous sources (Section 2): view
/// expansion has already rewritten the user query into the constraint query
/// Q over qualified source relations and view attributes; this class owns
/// the per-source constraint mapping and the execution of Eq. 2.
///
/// Execution data flow (Eq. 2):
///   per source:   σ_{S_i(Q)}(R_i)        — push the mapped query down
///   across:       × of the source results
///   conversions:  apply the conceptual relations X (format conversions,
///                 renames from source paths to view attributes)
///   mediator:     σ_F — the residue filter removes the false positives the
///                 relaxed mappings admitted (Figure 1)
class Mediator {
 public:
  explicit Mediator(TranslatorOptions options = {}) : options_(options) {}

  void AddSource(SourceContext source);
  const SourceContext* FindSource(const std::string& name) const;
  const std::vector<SourceContext>& sources() const { return sources_; }

  /// Registers a conversion function (applied in order, after crossing).
  void AddConversion(ConversionFn conversion);

  /// Declares constraints that are part of the *view definitions* (e.g. the
  /// cross-source join tying aubib.name to prof's ln/fn in Example 3).
  /// They are conjoined to every translated query and — being cross-source —
  /// evaluate at the mediator, through the filter.
  void SetViewConstraints(Query constraints);
  const Query& view_constraints() const { return view_constraints_; }

  /// Optional custom constraint semantics used when executing queries.
  void SetSemantics(const ConstraintSemantics* semantics) { semantics_ = semantics; }

  /// Translates `query` for every source and builds the combined filter:
  /// a constraint is dropped from F only if some source realizes it exactly.
  /// With a trace attached, records a "mediator.translate" span under
  /// `parent_span` with one "source.translate" child per source (attr
  /// "source" = name, stats = that source's counters) plus a "filter" span.
  Result<MediatorTranslation> Translate(const Query& query,
                                        Trace* trace = nullptr,
                                        uint64_t parent_span = 0) const;

  /// Runs the full pipeline of Eq. 2 and returns the result tuples (in the
  /// converted, view-attribute vocabulary).
  Result<TupleSet> Execute(const Query& query) const;

  /// Runs the execution half of Eq. 2 against a previously computed
  /// translation (e.g. one cached by a TranslationService): per-source
  /// push-down selects, cross, conversions, then the residue filter.
  /// `translation` must cover every current source — if a source was added
  /// after the translation was computed, returns NotFound (it never throws).
  Result<TupleSet> ExecuteTranslated(const MediatorTranslation& translation) const;

  /// Ground truth via Eq. 1: cross everything unfiltered, convert, then
  /// select with the original query.  Execute() must agree with this —
  /// the empirical form of the correctness property Eq. 3.
  Result<TupleSet> ExecuteDirect(const Query& query) const;

 private:
  Result<TupleSet> ConvertedCross(const MediatorTranslation* translation) const;

  TranslatorOptions options_;
  std::vector<SourceContext> sources_;
  std::vector<ConversionFn> conversions_;
  Query view_constraints_ = Query::True();
  const ConstraintSemantics* semantics_ = nullptr;
};

}  // namespace qmap

#endif  // QMAP_MEDIATOR_MEDIATOR_H_
