#ifndef QMAP_MEDIATOR_MEDIATOR_H_
#define QMAP_MEDIATOR_MEDIATOR_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "qmap/core/translator.h"
#include "qmap/mediator/source.h"
#include "qmap/rules/containment.h"
#include "qmap/relalg/conversion.h"
#include "qmap/service/resilience.h"
#include "qmap/service/source_transport.h"

namespace qmap {

/// The mediator's answer to "translate Q for everyone" (Eq. 3):
/// Q = F ∧ S_1(Q) ∧ ... ∧ S_n(Q).
struct MediatorTranslation {
  /// S_i(Q), keyed by source name. Sources listed in `partial.failed` are
  /// absent; sources in `partial.degraded` are present with a widened
  /// (still subsuming) translation.
  std::map<std::string, Translation> per_source;
  /// The residue filter F: the original constraints not fully realized at
  /// any source (plus cross-source view constraints, which no single source
  /// can evaluate). Built from the *successful* sources' coverage only, so
  /// a constraint that was exactly realized only at a failed or degraded
  /// source moves back into F — that recomputation is what keeps partial
  /// and degraded answers sound (Definition 1's subsumption guarantee).
  Query filter;
  /// Which sources were dropped or answered degraded (empty/complete unless
  /// resilience is enabled — see qmap/service/resilience.h).
  PartialResult partial;
  /// Cost counters merged across all per-source translations (plus the
  /// service layer's cache/parallelism counters when produced by a
  /// TranslationService). Observability only: not part of the translation's
  /// semantic payload.
  TranslationStats stats;
};

/// A mediation pipeline over heterogeneous sources (Section 2): view
/// expansion has already rewritten the user query into the constraint query
/// Q over qualified source relations and view attributes; this class owns
/// the per-source constraint mapping and the execution of Eq. 2.
///
/// Execution data flow (Eq. 2):
///   per source:   σ_{S_i(Q)}(R_i)        — push the mapped query down
///   across:       × of the source results
///   conversions:  apply the conceptual relations X (format conversions,
///                 renames from source paths to view attributes)
///   mediator:     σ_F — the residue filter removes the false positives the
///                 relaxed mappings admitted (Figure 1)
class Mediator {
 public:
  explicit Mediator(TranslatorOptions options = {}) : options_(options) {}

  void AddSource(SourceContext source);
  const SourceContext* FindSource(const std::string& name) const;
  const std::vector<SourceContext>& sources() const { return sources_; }

  /// Routes the named source's constraint mapping through `transport`
  /// (e.g. a RemoteTransport to a shard worker) instead of translating
  /// in-process from its spec. The source must still be AddSource'd — its
  /// spec/capabilities stay the vocabulary of record for execution; only
  /// where the *translation* runs changes. Pass nullptr to restore the
  /// in-process default.
  void SetSourceTransport(const std::string& name,
                          std::shared_ptr<SourceTransport> transport);

  /// Registers a conversion function (applied in order, after crossing).
  void AddConversion(ConversionFn conversion);

  /// Declares constraints that are part of the *view definitions* (e.g. the
  /// cross-source join tying aubib.name to prof's ln/fn in Example 3).
  /// They are conjoined to every translated query and — being cross-source —
  /// evaluate at the mediator, through the filter.
  void SetViewConstraints(Query constraints);
  const Query& view_constraints() const { return view_constraints_; }

  /// Optional custom constraint semantics used when executing queries.
  void SetSemantics(const ConstraintSemantics* semantics) { semantics_ = semantics; }

  /// Enables graceful degradation for Translate: per-source retry/backoff,
  /// circuit breaking, deadline budgets, and (with options.allow_partial)
  /// partial translations that drop failed sources into
  /// MediatorTranslation::partial instead of failing the call. `clock`,
  /// `injector` and `metrics` may be null (system clock, no fault injection,
  /// no metrics); non-null pointers must outlive the mediator.
  void SetResilience(const ResilienceOptions& options,
                     ResilienceClock* clock = nullptr,
                     FaultInjector* injector = nullptr,
                     MetricsRegistry* metrics = nullptr);
  ResilienceManager* resilience() const { return resilience_.get(); }

  /// Advisory containment analysis over the registered sources: which
  /// sources' mappings are provably contained in another's (see
  /// qmap/rules/containment.h). The mediator itself never prunes — its
  /// integration is a *join* (Eq. 2 crosses every source), so removing a
  /// source changes the result. The analysis tells operators which sources
  /// are mapping-redundant; actual fan-out pruning lives in
  /// TranslationService::PruneContainedSources, whose union/replica caching
  /// semantics make it sound.
  ContainmentAnalysis AnalyzeSourceContainment() const;

  /// Translates `query` for every source and builds the combined filter:
  /// a constraint is dropped from F only if some source realizes it exactly.
  /// With a trace attached, records a "mediator.translate" span under
  /// `parent_span` with one "source.translate" child per source (attr
  /// "source" = name, stats = that source's counters) plus a "filter" span.
  Result<MediatorTranslation> Translate(const Query& query,
                                        Trace* trace = nullptr,
                                        uint64_t parent_span = 0) const;

  /// Runs the full pipeline of Eq. 2 and returns the result tuples (in the
  /// converted, view-attribute vocabulary).
  Result<TupleSet> Execute(const Query& query) const;

  /// Runs the execution half of Eq. 2 against a previously computed
  /// translation (e.g. one cached by a TranslationService): per-source
  /// push-down selects, cross, conversions, then the residue filter.
  /// `translation` must cover every current source — if a source was added
  /// after the translation was computed, returns NotFound (it never throws).
  /// A partial translation (translation.partial incomplete) is rejected
  /// with Unavailable: the mediator's integration is a *join* (Eq. 2
  /// crosses every source), so a missing source cannot be compensated —
  /// only union integrations (FederatedCatalog) can serve partial answers.
  Result<TupleSet> ExecuteTranslated(const MediatorTranslation& translation) const;

  /// Ground truth via Eq. 1: cross everything unfiltered, convert, then
  /// select with the original query.  Execute() must agree with this —
  /// the empirical form of the correctness property Eq. 3.
  Result<TupleSet> ExecuteDirect(const Query& query) const;

 private:
  Result<TupleSet> ConvertedCross(const MediatorTranslation* translation) const;

  TranslatorOptions options_;
  std::vector<SourceContext> sources_;
  /// Per-source transport overrides (see SetSourceTransport); sources not
  /// listed translate in-process from their spec.
  std::map<std::string, std::shared_ptr<SourceTransport>> transports_;
  std::vector<ConversionFn> conversions_;
  Query view_constraints_ = Query::True();
  const ConstraintSemantics* semantics_ = nullptr;
  // Shared (not unique) so Mediator stays copyable; copies share breaker
  // state, which is the desired behavior for one logical federation.
  std::shared_ptr<ResilienceManager> resilience_;
};

}  // namespace qmap

#endif  // QMAP_MEDIATOR_MEDIATOR_H_
