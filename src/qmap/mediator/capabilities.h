#ifndef QMAP_MEDIATOR_CAPABILITIES_H_
#define QMAP_MEDIATOR_CAPABILITIES_H_

#include <set>
#include <string>
#include <utility>

#include "qmap/expr/query.h"

namespace qmap {

/// The (attribute, operator) pairs a source supports in its native query
/// interface — the "capability difference" of Section 2.  Used to check
/// that a translated query is expressible at its target (requirement 1 of
/// Definition 1): a correct mapping specification only emits supported
/// constraints, so this is a validation/debugging aid for spec authors.
class SourceCapabilities {
 public:
  SourceCapabilities() = default;

  /// Declares that constraints `[<attr-name> <op> ...]` are supported.
  /// `attr_name` is the unqualified attribute name in the source vocabulary
  /// (e.g. "author", "ti-word", "aubib.bib").
  void Allow(const std::string& attr_name, Op op);

  /// True if the single constraint is supported.
  bool Supports(const Constraint& constraint) const;

  /// True if every leaf constraint of `query` is supported (True is always
  /// expressible).
  bool IsExpressible(const Query& query) const;

  /// The unsupported constraints of `query`, for diagnostics.
  std::vector<Constraint> UnsupportedIn(const Query& query) const;

  /// Canonical FNV-1a fingerprint of the declared capability set (the
  /// (attr, op) pairs in their sorted set order, field-separated). Two
  /// capability sets fingerprint equal iff they allow exactly the same
  /// pairs. Mixed into TranslationCacheKey::rule_set alongside
  /// MappingSpec::fingerprint(), so changing what a source can express
  /// invalidates its cached translations just like changing its rules.
  uint64_t Fingerprint() const;

 private:
  std::set<std::pair<std::string, Op>> allowed_;
};

}  // namespace qmap

#endif  // QMAP_MEDIATOR_CAPABILITIES_H_
