#include "qmap/mediator/mediator.h"

#include "qmap/obs/trace.h"
#include "qmap/relalg/ops.h"

namespace qmap {

void Mediator::AddSource(SourceContext source) {
  sources_.push_back(std::move(source));
}

ContainmentAnalysis Mediator::AnalyzeSourceContainment() const {
  std::vector<std::string> names;
  std::vector<const MappingSpec*> specs;
  names.reserve(sources_.size());
  specs.reserve(sources_.size());
  for (const SourceContext& source : sources_) {
    names.push_back(source.name());
    specs.push_back(&source.spec());
  }
  return AnalyzeContainment(names, specs);
}

const SourceContext* Mediator::FindSource(const std::string& name) const {
  for (const SourceContext& source : sources_) {
    if (source.name() == name) return &source;
  }
  return nullptr;
}

void Mediator::SetSourceTransport(const std::string& name,
                                  std::shared_ptr<SourceTransport> transport) {
  if (transport == nullptr) {
    transports_.erase(name);
  } else {
    transports_[name] = std::move(transport);
  }
}

void Mediator::AddConversion(ConversionFn conversion) {
  conversions_.push_back(std::move(conversion));
}

void Mediator::SetViewConstraints(Query constraints) {
  view_constraints_ = std::move(constraints);
}

void Mediator::SetResilience(const ResilienceOptions& options,
                             ResilienceClock* clock, FaultInjector* injector,
                             MetricsRegistry* metrics) {
  resilience_ =
      std::make_shared<ResilienceManager>(options, clock, injector, metrics);
}

Result<MediatorTranslation> Mediator::Translate(const Query& query, Trace* trace,
                                                uint64_t parent_span) const {
  Span root(trace, "mediator.translate", parent_span);
  Query full = query & view_constraints_;
  MediatorTranslation out;
  std::vector<const ExactCoverage*> coverages;
  CancelToken token;
  const CancelToken* cancel = nullptr;
  if (resilience_ != nullptr &&
      resilience_->options().request_deadline_us > 0) {
    token.budget = DeadlineBudget{}.Narrowed(
        resilience_->clock()->NowUs(),
        resilience_->options().request_deadline_us);
    cancel = &token;
  }
  for (const SourceContext& source : sources_) {
    Span source_span(trace, "source.translate", root.id());
    if (source_span.enabled()) source_span.AddAttr("source", source.name());
    auto transport_it = transports_.find(source.name());
    std::shared_ptr<SourceTransport> transport =
        transport_it != transports_.end()
            ? transport_it->second
            : std::make_shared<InProcessTransport>(
                  Translator(source.spec(), options_));
    ResilienceManager::CallReport report;
    const auto attempt = [&] {
      return transport->Translate(full, trace, source_span.id(),
                                  /*memo=*/nullptr, cancel);
    };
    Result<Translation> translation =
        resilience_ != nullptr
            ? resilience_->GuardedTranslate(source.name(), full, cancel,
                                            attempt, &report, trace,
                                            source_span.id())
            : attempt();
    out.stats.retries += report.retries;
    out.stats.deadline_hits += report.deadline_hit ? 1 : 0;
    out.stats.breaker_rejections += report.breaker_rejected ? 1 : 0;
    if (!translation.ok()) {
      // With partial tolerance on, a transiently failing source is dropped
      // into the PartialResult instead of failing the whole translation;
      // its exact coverage never reaches `coverages`, so F keeps every
      // constraint only that source would have realized.
      if (resilience_ != nullptr && resilience_->options().allow_partial &&
          IsSourceDropFailure(translation.status().code())) {
        out.partial.failed.push_back(
            {source.name(), translation.status(), report.attempts});
        out.stats.failed_sources += 1;
        continue;
      }
      return translation.status();
    }
    if (report.degraded) {
      out.partial.degraded.push_back(source.name());
      out.stats.degraded_sources += 1;
    }
    source_span.SetStats(translation->stats);
    out.stats.MergeFrom(translation->stats);
    auto [slot, inserted] =
        out.per_source.emplace(source.name(), *std::move(translation));
    if (inserted) coverages.push_back(&slot->second.coverage);
  }
  if (resilience_ != nullptr && !out.partial.failed.empty()) {
    const size_t survivors = sources_.size() - out.partial.failed.size();
    if (survivors < std::max<size_t>(1, resilience_->options().min_sources)) {
      return Status::Unavailable(
          "only " + std::to_string(survivors) + " of " +
          std::to_string(sources_.size()) +
          " sources available: " + out.partial.ToString());
    }
    resilience_->RecordPartialResult(out.partial.failed.size());
    if (root.enabled()) root.AddAttr("partial", out.partial.ToString());
  }
  // A constraint stays in F unless some source covered it exactly; a
  // disjunction stays unless one single source covers all its leaves.
  {
    Span filter_span(trace, "filter", root.id());
    out.filter = MergedResidueFilter(full, coverages);
  }
  root.SetStats(out.stats);
  return out;
}

Result<TupleSet> Mediator::ConvertedCross(const MediatorTranslation* translation) const {
  TupleSet combined = {Tuple()};
  for (const SourceContext& source : sources_) {
    Result<TupleSet> tuples = source.CrossOfBoundRelations();
    if (!tuples.ok()) return tuples.status();
    TupleSet source_tuples = *std::move(tuples);
    if (translation != nullptr) {
      auto it = translation->per_source.find(source.name());
      if (it == translation->per_source.end()) {
        return Status::NotFound("no translation for source '" + source.name() +
                                "' (source added after Translate?)");
      }
      source_tuples = Select(source_tuples, it->second.mapped, semantics_);
    }
    combined = Cross(combined, source_tuples);
  }
  TupleSet converted = std::move(combined);
  for (const ConversionFn& conversion : conversions_) {
    Result<TupleSet> applied = ApplyConversion(converted, conversion);
    if (!applied.ok()) return applied.status();
    converted = *std::move(applied);
  }
  return converted;
}

Result<TupleSet> Mediator::Execute(const Query& query) const {
  Result<MediatorTranslation> translation = Translate(query);
  if (!translation.ok()) return translation.status();
  return ExecuteTranslated(*translation);
}

Result<TupleSet> Mediator::ExecuteTranslated(
    const MediatorTranslation& translation) const {
  if (!translation.partial.complete()) {
    // Eq. 2 crosses *every* source: with one missing there is no sound
    // answer for a join integration (unlike FederatedCatalog's union).
    return Status::Unavailable(
        "partial translation cannot be executed by the join pipeline (" +
        translation.partial.ToString() + ")");
  }
  Result<TupleSet> converted = ConvertedCross(&translation);
  if (!converted.ok()) return converted;
  return Select(*converted, translation.filter, semantics_);
}

Result<TupleSet> Mediator::ExecuteDirect(const Query& query) const {
  Result<TupleSet> converted = ConvertedCross(nullptr);
  if (!converted.ok()) return converted;
  Query full = query & view_constraints_;
  return Select(*converted, full, semantics_);
}

}  // namespace qmap
