#include "qmap/mediator/mediator.h"

#include "qmap/obs/trace.h"
#include "qmap/relalg/ops.h"

namespace qmap {

void Mediator::AddSource(SourceContext source) {
  sources_.push_back(std::move(source));
}

const SourceContext* Mediator::FindSource(const std::string& name) const {
  for (const SourceContext& source : sources_) {
    if (source.name() == name) return &source;
  }
  return nullptr;
}

void Mediator::AddConversion(ConversionFn conversion) {
  conversions_.push_back(std::move(conversion));
}

void Mediator::SetViewConstraints(Query constraints) {
  view_constraints_ = std::move(constraints);
}

Result<MediatorTranslation> Mediator::Translate(const Query& query, Trace* trace,
                                                uint64_t parent_span) const {
  Span root(trace, "mediator.translate", parent_span);
  Query full = query & view_constraints_;
  MediatorTranslation out;
  ExactCoverage merged;
  for (const SourceContext& source : sources_) {
    Span source_span(trace, "source.translate", root.id());
    if (source_span.enabled()) source_span.AddAttr("source", source.name());
    Translator translator(source.spec(), options_);
    Result<Translation> translation =
        translator.Translate(full, trace, source_span.id());
    if (!translation.ok()) return translation.status();
    source_span.SetStats(translation->stats);
    merged.MergeAnySource(translation->coverage);
    out.stats.MergeFrom(translation->stats);
    out.per_source.emplace(source.name(), *std::move(translation));
  }
  // A constraint stays in F unless *some* source covered it exactly.
  {
    Span filter_span(trace, "filter", root.id());
    out.filter = ResidueFilter(full, merged);
  }
  root.SetStats(out.stats);
  return out;
}

Result<TupleSet> Mediator::ConvertedCross(const MediatorTranslation* translation) const {
  TupleSet combined = {Tuple()};
  for (const SourceContext& source : sources_) {
    Result<TupleSet> tuples = source.CrossOfBoundRelations();
    if (!tuples.ok()) return tuples.status();
    TupleSet source_tuples = *std::move(tuples);
    if (translation != nullptr) {
      auto it = translation->per_source.find(source.name());
      if (it == translation->per_source.end()) {
        return Status::NotFound("no translation for source '" + source.name() +
                                "' (source added after Translate?)");
      }
      source_tuples = Select(source_tuples, it->second.mapped, semantics_);
    }
    combined = Cross(combined, source_tuples);
  }
  TupleSet converted = std::move(combined);
  for (const ConversionFn& conversion : conversions_) {
    Result<TupleSet> applied = ApplyConversion(converted, conversion);
    if (!applied.ok()) return applied.status();
    converted = *std::move(applied);
  }
  return converted;
}

Result<TupleSet> Mediator::Execute(const Query& query) const {
  Result<MediatorTranslation> translation = Translate(query);
  if (!translation.ok()) return translation.status();
  return ExecuteTranslated(*translation);
}

Result<TupleSet> Mediator::ExecuteTranslated(
    const MediatorTranslation& translation) const {
  Result<TupleSet> converted = ConvertedCross(&translation);
  if (!converted.ok()) return converted;
  return Select(*converted, translation.filter, semantics_);
}

Result<TupleSet> Mediator::ExecuteDirect(const Query& query) const {
  Result<TupleSet> converted = ConvertedCross(nullptr);
  if (!converted.ok()) return converted;
  Query full = query & view_constraints_;
  return Select(*converted, full, semantics_);
}

}  // namespace qmap
