#include "qmap/mediator/source.h"

#include "qmap/relalg/ops.h"

namespace qmap {

Status SourceContext::Bind(const std::string& qualifier,
                           const std::string& relation_name) {
  if (relations_.find(relation_name) == relations_.end()) {
    return Status::NotFound("source " + name_ + " has no relation " + relation_name);
  }
  bindings_.emplace_back(qualifier, relation_name);
  return Status::Ok();
}

Result<std::vector<Tuple>> SourceContext::CrossOfBoundRelations() const {
  if (bindings_.empty()) {
    return Status::InvalidArgument("source " + name_ + " has no bound relations");
  }
  TupleSet result = {Tuple()};
  for (const auto& [qualifier, relation_name] : bindings_) {
    auto it = relations_.find(relation_name);
    if (it == relations_.end()) {
      return Status::NotFound("source " + name_ + " has no relation " + relation_name);
    }
    result = Cross(result, it->second.AsTuples(qualifier));
  }
  return result;
}

}  // namespace qmap
