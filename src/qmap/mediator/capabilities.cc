#include "qmap/mediator/capabilities.h"

#include "qmap/common/fnv.h"

namespace qmap {

void SourceCapabilities::Allow(const std::string& attr_name, Op op) {
  allowed_.insert({attr_name, op});
}

bool SourceCapabilities::Supports(const Constraint& constraint) const {
  return allowed_.find({constraint.lhs.name, constraint.op}) != allowed_.end();
}

bool SourceCapabilities::IsExpressible(const Query& query) const {
  return UnsupportedIn(query).empty();
}

std::vector<Constraint> SourceCapabilities::UnsupportedIn(const Query& query) const {
  std::vector<Constraint> out;
  for (const Constraint& c : query.AllConstraints()) {
    if (!Supports(c)) out.push_back(c);
  }
  return out;
}

uint64_t SourceCapabilities::Fingerprint() const {
  // std::set iteration is sorted, so the stream is canonical: insertion
  // order never changes the fingerprint, only membership does.
  Fnv64 fp;
  for (const auto& [attr, op] : allowed_) {
    fp.Add(attr).AddByte('\x1f').AddU64(static_cast<uint64_t>(op)).AddByte('\x1e');
  }
  return fp.value();
}

}  // namespace qmap
