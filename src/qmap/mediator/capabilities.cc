#include "qmap/mediator/capabilities.h"

namespace qmap {

void SourceCapabilities::Allow(const std::string& attr_name, Op op) {
  allowed_.insert({attr_name, op});
}

bool SourceCapabilities::Supports(const Constraint& constraint) const {
  return allowed_.find({constraint.lhs.name, constraint.op}) != allowed_.end();
}

bool SourceCapabilities::IsExpressible(const Query& query) const {
  return UnsupportedIn(query).empty();
}

std::vector<Constraint> SourceCapabilities::UnsupportedIn(const Query& query) const {
  std::vector<Constraint> out;
  for (const Constraint& c : query.AllConstraints()) {
    if (!Supports(c)) out.push_back(c);
  }
  return out;
}

}  // namespace qmap
