#include "qmap/core/match_memo.h"

#include "qmap/common/fnv.h"

namespace qmap {

uint64_t MatchMemo::KeyOf(const std::vector<Constraint>& conjunction) {
  // Folding per-constraint fingerprints in order keeps the key
  // order-sensitive (AddU64 is not commutative across the FNV stream).
  Fnv64 h;
  for (const Constraint& c : conjunction) h.AddU64(c.Fingerprint());
  return h.value();
}

std::vector<Matching> MatchMemo::Match(const std::vector<Constraint>& conjunction,
                                       TranslationStats* stats) {
  const uint64_t key = KeyOf(conjunction);
  {
    std::unique_lock<std::mutex> lock(mu_, std::defer_lock);
    if (thread_safe_) lock.lock();
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      if (stats != nullptr) ++stats->memo_hits;
      return it->second;  // copy out under the lock
    }
  }
  // Miss: match outside the lock (the expensive part), then insert. Two
  // threads may race on the same key; both compute identical results, and
  // try_emplace keeps whichever lands first.
  if (stats != nullptr) ++stats->memo_misses;
  std::vector<Matching> matchings =
      MatchSpec(*spec_, conjunction, stats != nullptr ? &stats->match : nullptr);
  {
    std::unique_lock<std::mutex> lock(mu_, std::defer_lock);
    if (thread_safe_) lock.lock();
    cache_.try_emplace(key, matchings);
  }
  return matchings;
}

size_t MatchMemo::size() const {
  std::unique_lock<std::mutex> lock(mu_, std::defer_lock);
  if (thread_safe_) lock.lock();
  return cache_.size();
}

}  // namespace qmap
