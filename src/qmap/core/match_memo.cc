#include "qmap/core/match_memo.h"

namespace qmap {

std::string MatchMemo::KeyOf(const std::vector<Constraint>& conjunction) {
  std::string key;
  for (const Constraint& c : conjunction) {
    key += c.ToString();
    key += '\x1f';  // unit separator: cannot appear in a rendered constraint
  }
  return key;
}

std::vector<Matching> MatchMemo::Match(const std::vector<Constraint>& conjunction,
                                       TranslationStats* stats) {
  std::string key = KeyOf(conjunction);
  {
    std::unique_lock<std::mutex> lock(mu_, std::defer_lock);
    if (thread_safe_) lock.lock();
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      if (stats != nullptr) ++stats->memo_hits;
      return it->second;  // copy out under the lock
    }
  }
  // Miss: match outside the lock (the expensive part), then insert. Two
  // threads may race on the same key; both compute identical results, and
  // try_emplace keeps whichever lands first.
  if (stats != nullptr) ++stats->memo_misses;
  std::vector<Matching> matchings =
      MatchSpec(*spec_, conjunction, stats != nullptr ? &stats->match : nullptr);
  {
    std::unique_lock<std::mutex> lock(mu_, std::defer_lock);
    if (thread_safe_) lock.lock();
    cache_.try_emplace(std::move(key), matchings);
  }
  return matchings;
}

size_t MatchMemo::size() const {
  std::unique_lock<std::mutex> lock(mu_, std::defer_lock);
  if (thread_safe_) lock.lock();
  return cache_.size();
}

}  // namespace qmap
