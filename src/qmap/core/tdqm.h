#ifndef QMAP_CORE_TDQM_H_
#define QMAP_CORE_TDQM_H_

#include "qmap/core/scm.h"

namespace qmap {

struct TdqmOptions {
  /// Section 7.1.3's optimization: compute the potential matchings
  /// M_p = M(C(Q), K) once at the root (as Procedure EDNF does anyway) and
  /// reuse them for every safety check *and* every SCM base case, instead
  /// of re-matching rules per node.  Semantically identical; benchmarked by
  /// bench_translation's reuse-ablation series.
  bool reuse_potential_matchings = true;

  /// Observability (qmap/obs): when `trace` is attached, the traversal
  /// records a "tdqm" span under `parent_span` with nested node.* / psafe /
  /// scm / disjunctivize spans — the taxonomy of docs/OBSERVABILITY.md.
  /// Null trace = the no-op path (no clock reads).  Not owned.
  Trace* trace = nullptr;
  uint64_t parent_span = 0;

  /// Per-translation match memo (qmap/core/match_memo.h), shared by the
  /// traversal's SCM base cases and every EdnfComputer it builds. Not owned;
  /// may be null (no memoization).
  MatchMemo* memo = nullptr;
};

/// Algorithm TDQM (Figure 8): maps an arbitrary ∧/∨ query by top-down
/// traversal, rewriting query structure *locally and only when necessary*:
///
///   Case 1 — ∨ node: disjuncts are always separable; recurse and ∨ the
///            results.
///   Case 2 — ∧ node with non-leaf children: Algorithm PSafe partitions the
///            conjuncts into safe minimal blocks (Theorem 6); each block is
///            Disjunctivized one level and recursed into.
///   Case 3 — simple conjunction: Algorithm SCM (the base case).
///
/// With a sound and complete specification the output is the minimal
/// subsuming mapping (Theorem 2), equal in meaning to Algorithm DNF's but
/// typically far more compact (Section 8: up to 2^n× smaller).
Result<Query> Tdqm(const Query& query, const MappingSpec& spec,
                   TranslationStats* stats = nullptr,
                   ExactCoverage* coverage = nullptr,
                   const TdqmOptions& options = {});

}  // namespace qmap

#endif  // QMAP_CORE_TDQM_H_
