#ifndef QMAP_CORE_EXPLAIN_H_
#define QMAP_CORE_EXPLAIN_H_

#include <string>

#include "qmap/rules/spec.h"

namespace qmap {

/// Produces a human-readable trace of how Algorithm TDQM maps `query` under
/// `spec`: the traversal cases taken, the PSafe partitions with their
/// cross-matchings, the local Disjunctivize rewrites, and each SCM call's
/// applied matchings and emissions.  Intended for rule authors debugging a
/// mapping specification.
///
/// Example output for Example 2's query:
///
///   ∧-node: ([ln = "Clancy"] ∨ [ln = "Klancy"]) ∧ [fn = "Tom"]
///     PSafe partition: {{C1,C2}} (2 cross-matching instance(s))
///     block {C1,C2}: Disjunctivize -> 2 disjunct(s)
///       ∨-node: ...
///         SCM: [ln = "Clancy"] ∧ [fn = "Tom"]
///           R2{...} -> [author = "Clancy, Tom"]
///         ...
///   => [author = "Clancy, Tom"] ∨ [author = "Klancy, Tom"]
Result<std::string> ExplainTdqm(const Query& query, const MappingSpec& spec);

}  // namespace qmap

#endif  // QMAP_CORE_EXPLAIN_H_
