#include "qmap/core/explain.h"

#include "qmap/core/tdqm.h"
#include "qmap/obs/trace.h"

namespace qmap {
namespace {

// ExplainTdqm no longer walks the query itself: it runs the *real* Algorithm
// TDQM with a detail-mode trace attached and renders the narrative from the
// recorded spans. The traversal cases, PSafe partitions, Disjunctivize
// rewrites and applied SCM matchings all come from the same hook points the
// production tracer uses, so the explanation cannot disagree with what the
// algorithm actually did.

std::string Indent(int depth) { return std::string(static_cast<size_t>(depth) * 2, ' '); }

const std::string* FindAttr(const SpanRecord& span, std::string_view key) {
  for (const auto& [attr_key, value] : span.attrs) {
    if (attr_key == key) return &value;
  }
  return nullptr;
}

std::string AttrOr(const SpanRecord& span, std::string_view key,
                   const char* fallback) {
  const std::string* value = FindAttr(span, key);
  return value != nullptr ? *value : std::string(fallback);
}

struct SpanTree {
  const std::vector<SpanRecord>& spans;
  // children[i]: indices of the spans whose parent is span i+1 (span ids are
  // 1-based), in creation order — pre-order for a single-threaded traversal.
  std::vector<std::vector<size_t>> children;

  explicit SpanTree(const std::vector<SpanRecord>& all) : spans(all) {
    children.resize(all.size());
    for (size_t i = 0; i < all.size(); ++i) {
      uint64_t parent = all[i].parent;
      if (parent >= 1 && parent <= all.size()) {
        children[static_cast<size_t>(parent - 1)].push_back(i);
      }
    }
  }
};

bool IsTraversalNode(const SpanRecord& span) {
  return span.name.rfind("node.", 0) == 0;
}

// Mirrors the rendering the old hand-maintained walk produced, keyed off the
// span taxonomy (docs/OBSERVABILITY.md).
void RenderNode(const SpanTree& tree, size_t index, int depth, std::string* out) {
  const SpanRecord& span = tree.spans[index];
  if (span.name == "node.true") {
    *out += Indent(depth) + "true -> true\n";
    return;
  }
  if (span.name == "node.scm") {
    *out += Indent(depth) + "SCM: " + AttrOr(span, "query", "?") + "\n";
    bool any_match = false;
    for (size_t child : tree.children[index]) {
      if (tree.spans[child].name != "scm") continue;
      for (const auto& [key, value] : tree.spans[child].attrs) {
        if (key != "match") continue;
        *out += Indent(depth + 1) + value + "\n";
        any_match = true;
      }
    }
    if (!any_match) {
      *out += Indent(depth + 1) + "(no rule matches: maps to true)\n";
    }
    return;
  }
  if (span.name == "node.or") {
    *out += Indent(depth) + "∨-node (" + AttrOr(span, "disjuncts", "?") +
            " disjuncts; disjuncts are always separable)\n";
    for (size_t child : tree.children[index]) {
      if (IsTraversalNode(tree.spans[child])) {
        RenderNode(tree, child, depth + 1, out);
      }
    }
    return;
  }
  if (span.name == "node.and") {
    *out += Indent(depth) + "∧-node: " + AttrOr(span, "query", "?") + "\n";
    for (size_t child : tree.children[index]) {
      const SpanRecord& child_span = tree.spans[child];
      if (child_span.name == "psafe") {
        *out += Indent(depth + 1) + "PSafe partition: " +
                AttrOr(child_span, "partition", "?") + " (" +
                AttrOr(child_span, "cross", "0") +
                " cross-matching instance(s))\n";
      } else if (child_span.name == "disjunctivize") {
        const std::string* label = FindAttr(child_span, "label");
        if (label != nullptr) {
          *out += Indent(depth + 1) + "block " + *label + ": Disjunctivize -> " +
                  AttrOr(child_span, "disjuncts", "?") + " disjunct(s)\n";
        }
      } else if (IsTraversalNode(child_span)) {
        RenderNode(tree, child, depth + 2, out);
      }
      // Other children (ednf.match, match) are timing-only spans with no
      // narrative line.
    }
    return;
  }
}

}  // namespace

Result<std::string> ExplainTdqm(const Query& query, const MappingSpec& spec) {
  Trace trace("explain", /*capture_detail=*/true);
  TdqmOptions options;
  options.trace = &trace;
  Result<Query> mapped = Tdqm(query, spec, nullptr, nullptr, options);
  if (!mapped.ok()) return mapped.status();

  std::vector<SpanRecord> spans = trace.spans();
  SpanTree tree(spans);
  std::string out = "Q = " + query.ToString() + "\n";
  for (size_t i = 0; i < spans.size(); ++i) {
    if (spans[i].name != "tdqm") continue;
    for (size_t child : tree.children[i]) {
      if (IsTraversalNode(spans[child])) RenderNode(tree, child, 0, &out);
    }
  }
  out += "=> S(Q) = " + mapped->ToString() + "\n";
  return out;
}

}  // namespace qmap
