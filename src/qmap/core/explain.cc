#include "qmap/core/explain.h"

#include "qmap/core/psafe.h"
#include "qmap/core/scm.h"
#include "qmap/expr/dnf.h"

namespace qmap {
namespace {

std::string Indent(int depth) { return std::string(static_cast<size_t>(depth) * 2, ' '); }

// Mirrors the traversal of Algorithm TDQM (Figure 8), appending a narrative
// to `out` and returning the mapping of the subquery.
Result<Query> Walk(const Query& query, const MappingSpec& spec, int depth,
                   std::string* out) {
  if (query.IsSimpleConjunction()) {
    if (query.is_true()) {
      *out += Indent(depth) + "true -> true\n";
      return Query::True();
    }
    *out += Indent(depth) + "SCM: " + query.ToString() + "\n";
    Result<ScmResult> result = Scm(query.AsSimpleConjunction(), spec);
    if (!result.ok()) return result.status();
    for (const Matching& m : result->applied) {
      Result<Query> emission = m.rule->Fire(m.bindings, spec.registry());
      if (!emission.ok()) return emission.status();
      *out += Indent(depth + 1) + m.rule_name + (m.rule_exact ? "" : " (inexact)") +
              " matched {";
      std::vector<Constraint> conjunction = query.AsSimpleConjunction();
      for (size_t i = 0; i < m.constraint_indices.size(); ++i) {
        if (i > 0) *out += ", ";
        *out += conjunction[static_cast<size_t>(m.constraint_indices[i])].ToString();
      }
      *out += "} -> " + emission->ToString() + "\n";
    }
    if (result->applied.empty()) {
      *out += Indent(depth + 1) + "(no rule matches: maps to true)\n";
    }
    return result->mapped;
  }

  if (query.kind() == NodeKind::kOr) {
    *out += Indent(depth) + "∨-node (" + std::to_string(query.children().size()) +
            " disjuncts; disjuncts are always separable)\n";
    std::vector<Query> mapped;
    for (const Query& disjunct : query.children()) {
      Result<Query> part = Walk(disjunct, spec, depth + 1, out);
      if (!part.ok()) return part;
      mapped.push_back(*std::move(part));
    }
    return Query::Or(std::move(mapped));
  }

  // ∧-node with non-leaf children.
  *out += Indent(depth) + "∧-node: " + query.ToString() + "\n";
  EdnfComputer ednf(spec, query);
  PSafePartition partition = PSafe(query.children(), ednf);
  *out += Indent(depth + 1) + "PSafe partition: " + partition.ToString() + " (" +
          std::to_string(partition.cross_matching_instances) +
          " cross-matching instance(s))\n";
  std::vector<Query> mapped_blocks;
  for (const std::vector<int>& block : partition.blocks) {
    std::vector<Query> members;
    for (int index : block) {
      members.push_back(query.children()[static_cast<size_t>(index)]);
    }
    Query rewritten = Disjunctivize(members);
    if (members.size() > 1) {
      std::string label = "{";
      for (size_t i = 0; i < block.size(); ++i) {
        if (i > 0) label += ",";
        label += "C" + std::to_string(block[i] + 1);
      }
      label += "}";
      size_t disjuncts = rewritten.kind() == NodeKind::kOr
                             ? rewritten.children().size()
                             : 1;
      *out += Indent(depth + 1) + "block " + label + ": Disjunctivize -> " +
              std::to_string(disjuncts) + " disjunct(s)\n";
    }
    Result<Query> part = Walk(rewritten, spec, depth + 2, out);
    if (!part.ok()) return part;
    mapped_blocks.push_back(*std::move(part));
  }
  return Query::And(std::move(mapped_blocks));
}

}  // namespace

Result<std::string> ExplainTdqm(const Query& query, const MappingSpec& spec) {
  std::string out;
  out += "Q = " + query.ToString() + "\n";
  Result<Query> mapped = Walk(query, spec, 0, &out);
  if (!mapped.ok()) return mapped.status();
  out += "=> S(Q) = " + mapped->ToString() + "\n";
  return out;
}

}  // namespace qmap
