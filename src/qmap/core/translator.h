#ifndef QMAP_CORE_TRANSLATOR_H_
#define QMAP_CORE_TRANSLATOR_H_

#include <string>

#include "qmap/core/dnf_mapper.h"
#include "qmap/core/filter.h"
#include "qmap/core/naive_mapper.h"
#include "qmap/core/tdqm.h"

namespace qmap {

/// Which mapping algorithm the translator runs.
enum class MappingAlgorithm {
  kTdqm,   // Algorithm TDQM (Figure 8) — the paper's contribution
  kDnf,    // Algorithm DNF (Figure 6) — the correct-but-expensive baseline
  kNaive,  // per-constraint translation — the dependency-ignorant baseline
           // other systems use (Section 3); correct but non-minimal
};

struct TranslatorOptions {
  MappingAlgorithm algorithm = MappingAlgorithm::kTdqm;
  /// TDQM only: reuse the root potential matchings M_p for all safety
  /// checks and SCM base cases (Section 7.1.3). Off = recompute per node.
  bool reuse_potential_matchings = true;
  /// Post-process the mapped query and the filter with SimplifyQuery
  /// (absorption laws — the cheap part of the term minimization §8 points
  /// to).  Logically neutral; can only shrink the outputs.
  bool simplify_output = false;
  /// Memoize rule matching across the sub-conjunctions of each Translate
  /// call (qmap/core/match_memo.h). When the caller passes its own memo to
  /// Translate, that memo is used regardless of this flag; when it passes
  /// none, this flag controls whether a per-call memo is created.
  bool use_match_memo = true;
};

/// A completed translation for one target context.
struct Translation {
  /// S(Q): the minimal subsuming mapping in the target vocabulary.
  Query mapped;
  /// The residue filter for this translation alone (Eq. 2-3): conjoined with
  /// `mapped`, it reconstructs the original query's selectivity.  True when
  /// the translation is exact.
  Query filter;
  /// Per-constraint exact coverage (for mediators merging several sources).
  ExactCoverage coverage;
  /// Cost counters.
  TranslationStats stats;
};

/// Facade tying the mapping algorithms together: one Translator per target
/// context (mapping specification).
class Translator {
 public:
  /// An empty translator (no rules: everything maps to True). Useful as a
  /// default-constructed placeholder.
  Translator() = default;

  explicit Translator(MappingSpec spec, TranslatorOptions options = {})
      : spec_(std::move(spec)), options_(options) {}

  const MappingSpec& spec() const { return spec_; }

  /// Translates `query` into the target vocabulary, producing the mapped
  /// query, the residue filter, and cost counters. With a trace attached,
  /// records a "translate" span under `parent_span` whose children cover the
  /// algorithm run (tdqm/dnf/naive, with the tdqm traversal fully nested)
  /// and the residue-filter construction; the span carries the final
  /// TranslationStats. A null trace is the no-op path.
  ///
  /// `memo`, if non-null, must be built for this translator's spec() and
  /// supplies (and accumulates) memoized matchings across calls — the
  /// TranslationService passes a per-request memo here so repeated
  /// sub-conjunctions across a batch match once per source. When null and
  /// options.use_match_memo is set, each call gets a fresh private memo.
  Result<Translation> Translate(const Query& query, Trace* trace = nullptr,
                                uint64_t parent_span = 0,
                                MatchMemo* memo = nullptr) const;

  /// Parses `query_text` with ParseQuery (a "parse" span when traced) and
  /// translates it.
  Result<Translation> TranslateText(const std::string& query_text,
                                    Trace* trace = nullptr,
                                    uint64_t parent_span = 0,
                                    MatchMemo* memo = nullptr) const;

 private:
  MappingSpec spec_;
  TranslatorOptions options_{};
};

}  // namespace qmap

#endif  // QMAP_CORE_TRANSLATOR_H_
