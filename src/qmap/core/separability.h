#ifndef QMAP_CORE_SEPARABILITY_H_
#define QMAP_CORE_SEPARABILITY_H_

#include <vector>

#include "qmap/core/ednf.h"
#include "qmap/expr/eval.h"

namespace qmap {

/// Outcome of the cheap (sufficient) safety test.
struct SafetyResult {
  bool safe = false;
  /// The cross-matchings δ that make the conjunction unsafe (empty iff safe).
  std::vector<ConstraintSet> cross_matchings;
};

/// Definition 5: a base-case conjunction Q̂ = Ĉ₁···Ĉₙ of simple conjunctions
/// (given as constraint sets over `ednf`'s table) is *safe* iff
/// M(Q̂,K) − ∪ᵢM(Ĉᵢ,K) = ∅.  Safety implies separability (Corollary 1); the
/// converse can fail when a cross-matching is redundant (Example 8).
SafetyResult CheckBaseCaseSafety(const std::vector<ConstraintSet>& conjuncts,
                                 const EdnfComputer& ednf);

/// Definition 6: a general conjunction Q̂ = Č₁···Čₙ of arbitrary queries is
/// safe iff every disjunct of Disjunctivize(Q̂) is safe.  Tested via the
/// conjuncts' EDNF (equivalent to full DNF for this purpose, Lemma 3).
SafetyResult CheckGeneralSafety(const std::vector<Query>& conjuncts,
                                const EdnfComputer& ednf);

/// Theorem 3 — the *precise* separability condition for base-case
/// conjunctions, decided empirically over a tuple universe: Q̂ is separable
/// iff every cross-matching m ∈ δ satisfies S(Ĉ₁)···S(Ĉₙ) ⊆ S(∧m).
///
/// The subsumption tests are evaluated over `universe` (with optional
/// context `semantics`); they are exact when the universe is exhaustive for
/// the data domain (e.g. the coordinate grid of Example 8) and a sound
/// approximation otherwise.  The mappings S(·) are computed with Algorithm
/// SCM under `spec`.
Result<bool> IsSeparableBaseCase(const std::vector<std::vector<Constraint>>& conjuncts,
                                 const MappingSpec& spec,
                                 const std::vector<Tuple>& universe,
                                 const ConstraintSemantics* semantics = nullptr,
                                 TranslationStats* stats = nullptr);

/// Theorem 4 — the precise separability condition for general conjunctions:
/// Q̂ = Č₁···Čₙ is separable iff for every disjunct D̂ⱼ of Disjunctivize(Q̂),
///   [S(I₁k₁)···S(Iₙkₙ)] ∖ S(D̂ⱼ)  ⊆  ∨_{j'≠j} S(D̂ⱼ').
/// Decided empirically over `universe`; mappings computed with Algorithm
/// DNF (correct for arbitrary queries).
Result<bool> IsSeparableGeneralCase(const std::vector<Query>& conjuncts,
                                    const MappingSpec& spec,
                                    const std::vector<Tuple>& universe,
                                    const ConstraintSemantics* semantics = nullptr,
                                    TranslationStats* stats = nullptr);

/// Empirical subsumption check: true iff every tuple of `universe` that
/// satisfies `narrower` also satisfies `broader` (Figure 1's relationship,
/// with `broader` playing S(Q)).
bool SubsumesOnUniverse(const Query& broader, const Query& narrower,
                        const std::vector<Tuple>& universe,
                        const ConstraintSemantics* semantics = nullptr);

}  // namespace qmap

#endif  // QMAP_CORE_SEPARABILITY_H_
