#ifndef QMAP_CORE_EDNF_H_
#define QMAP_CORE_EDNF_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "qmap/core/stats.h"
#include "qmap/rules/matcher.h"

namespace qmap {

class Trace;
class MatchMemo;

/// A set of constraints identified by their ids in a ConstraintTable, kept
/// sorted ascending.  The empty set plays the role of the paper's ε
/// ("don't care") placeholder: conjoining with ε changes nothing (x·ε = x),
/// which the set-union representation gives for free.
using ConstraintSet = std::vector<int>;

/// True if every element of `sub` is in `super` (both sorted).
bool SetContains(const ConstraintSet& super, const ConstraintSet& sub);
/// True if `a` and `b` share an element (both sorted).
bool SetsIntersect(const ConstraintSet& a, const ConstraintSet& b);
/// Sorted union.
ConstraintSet SetUnion(const ConstraintSet& a, const ConstraintSet& b);

/// Cross product of per-child EDNF disjunct lists (Figure 10, line 12):
/// every way of choosing one disjunct per child, each choice unioned into a
/// single constraint set. An *empty* child disjunct list denotes an
/// unsatisfiable child, so the whole product is empty — callers must handle
/// the empty case rather than index into children (the unguarded cross
/// product used to read out of bounds there). Zero children yield {ε}, the
/// identity of conjunction.
std::vector<ConstraintSet> CrossEdnfDisjuncts(
    const std::vector<std::vector<ConstraintSet>>& parts);

/// Numbers the distinct constraints of a query — C(Q) with ids.
class ConstraintTable {
 public:
  explicit ConstraintTable(const Query& root);

  /// Id of `c`, or -1 when `c` does not occur in the root query.
  int IdOf(const Constraint& c) const;
  const std::vector<Constraint>& constraints() const { return constraints_; }
  std::vector<Constraint> Materialize(const ConstraintSet& set) const;

 private:
  std::vector<Constraint> constraints_;
  // Fingerprint-keyed index; the bucket (nearly always one id) is verified
  // against constraints_ by printed form, so collisions cannot mis-number.
  std::unordered_map<uint64_t, std::vector<int>> index_;
};

/// Procedure EDNF (Figure 10): computes the *essential DNF* annotations used
/// by the safety checks and Algorithm PSafe.
///
/// The potential matchings M_p = M(C(Q), K) are computed once over all the
/// constraints of the root query, regardless of their positions (the exact
/// matchings of any subconjunction X are then {m ∈ M_p : m ⊆ X}, because
/// rule matching depends only on the constraints in the matching itself).
///
/// Ednf(q) returns De(q) as a disjunct list of constraint sets, with useless
/// terms nullified to ε (the empty set) per the nullifying rules of
/// Figure 10 step 2 and duplicates merged (x ∨ x = x).  When a query has no
/// constraint dependencies at all, every annotation collapses to a single ε
/// and the safety check costs nothing (Section 8).
class EdnfComputer {
 public:
  /// `trace`/`parent_span`, when given, record the potential-matchings
  /// computation as an "ednf.match" span (see docs/OBSERVABILITY.md).
  /// `memo`, if non-null and built for `spec`, answers the potential
  /// matchings M_p from the per-translation match memo — two EdnfComputers
  /// over the same root (e.g. TDQM then PSafe) then match only once.
  EdnfComputer(const MappingSpec& spec, const Query& root,
               TranslationStats* stats = nullptr, Trace* trace = nullptr,
               uint64_t parent_span = 0, MatchMemo* memo = nullptr);

  const ConstraintTable& table() const { return table_; }

  /// Deduplicated constraint sets of the potential matchings, including
  /// singletons.
  const std::vector<ConstraintSet>& potential_matchings() const {
    return potential_matchings_;
  }

  /// The full potential matchings M_p = M(C(Q), K), bindings included, with
  /// constraint indices referring to table() order.  Section 7.1.3: "we can
  /// reuse the potential matchings M_p computed in Procedure EDNF in the
  /// actual mapping process" — see ScmFromMatchings / TdqmOptions.
  const std::vector<Matching>& all_matchings() const { return all_matchings_; }

  /// Exact matchings of the subconjunction `constraints`: the potential
  /// matchings wholly contained in it.
  std::vector<ConstraintSet> MatchingsWithin(const ConstraintSet& constraints) const;

  /// The full matchings applicable to `conjunction` (every constraint of
  /// which must be in the table), with indices re-based to `conjunction`'s
  /// positions.  Returns nullopt if some constraint is unknown to the table
  /// (callers then fall back to fresh matching).
  std::optional<std::vector<Matching>> MatchingsFor(
      const std::vector<Constraint>& conjunction) const;

  /// De(q) — see class comment.  `q` must be a subquery of the root (its
  /// constraints must appear in the table).
  std::vector<ConstraintSet> Ednf(const Query& q) const;

 private:
  std::vector<ConstraintSet> Simplify(std::vector<ConstraintSet> disjuncts) const;

  ConstraintTable table_;
  std::vector<ConstraintSet> potential_matchings_;
  std::vector<Matching> all_matchings_;
  TranslationStats* stats_;
};

}  // namespace qmap

#endif  // QMAP_CORE_EDNF_H_
