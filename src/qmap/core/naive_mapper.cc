#include "qmap/core/naive_mapper.h"

namespace qmap {

Result<Query> NaiveMap(const Query& query, const MappingSpec& spec,
                       TranslationStats* stats, ExactCoverage* coverage) {
  switch (query.kind()) {
    case NodeKind::kTrue:
      return Query::True();
    case NodeKind::kLeaf: {
      Result<ScmResult> result =
          Scm({query.constraint()}, spec, stats, coverage);
      if (!result.ok()) return result.status();
      return result->mapped;
    }
    case NodeKind::kAnd:
    case NodeKind::kOr: {
      std::vector<Query> mapped;
      mapped.reserve(query.children().size());
      for (const Query& child : query.children()) {
        Result<Query> part = NaiveMap(child, spec, stats, coverage);
        if (!part.ok()) return part;
        mapped.push_back(*std::move(part));
      }
      return query.kind() == NodeKind::kAnd ? Query::And(std::move(mapped))
                                            : Query::Or(std::move(mapped));
    }
  }
  return Status::Internal("unreachable node kind");
}

}  // namespace qmap
