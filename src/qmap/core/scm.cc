#include "qmap/core/scm.h"

#include "qmap/core/match_memo.h"
#include "qmap/obs/trace.h"

namespace qmap {

std::vector<Matching> SuppressSubmatchings(std::vector<Matching> matchings,
                                           TranslationStats* stats) {
  std::vector<bool> subsumed(matchings.size(), false);
  for (size_t j = 0; j < matchings.size(); ++j) {
    for (size_t i = 0; i < matchings.size(); ++i) {
      if (i == j) continue;
      if (matchings[j].IsStrictSubsetOf(matchings[i])) {
        subsumed[j] = true;
        break;
      }
    }
  }
  std::vector<Matching> kept;
  for (size_t j = 0; j < matchings.size(); ++j) {
    if (subsumed[j]) {
      if (stats != nullptr) ++stats->submatchings_removed;
    } else {
      kept.push_back(std::move(matchings[j]));
    }
  }
  return kept;
}

Result<ScmResult> Scm(const std::vector<Constraint>& conjunction,
                      const MappingSpec& spec, TranslationStats* stats,
                      ExactCoverage* coverage, Trace* trace,
                      uint64_t parent_span, MatchMemo* memo) {
  // (1) all matchings of any rule in K.
  std::vector<Matching> matchings;
  {
    Span span(trace, "match", parent_span);
    if (memo != nullptr && memo->spec() == &spec) {
      const uint64_t misses_before = stats != nullptr ? stats->memo_misses : 0;
      matchings = memo->Match(conjunction, stats);
      if (span.detail() && stats != nullptr) {
        span.AddAttr("memo",
                     stats->memo_misses == misses_before ? "hit" : "miss");
      }
    } else {
      matchings = MatchSpec(spec, conjunction,
                            stats != nullptr ? &stats->match : nullptr);
    }
  }
  return ScmFromMatchings(conjunction, std::move(matchings), spec, stats,
                          coverage, trace, parent_span);
}

Result<ScmResult> ScmFromMatchings(const std::vector<Constraint>& conjunction,
                                   std::vector<Matching> matchings,
                                   const MappingSpec& spec,
                                   TranslationStats* stats,
                                   ExactCoverage* coverage, Trace* trace,
                                   uint64_t parent_span) {
  if (stats != nullptr) ++stats->scm_calls;
  Span span(trace, "scm", parent_span);

  // (2) sub-matching suppression.
  matchings = SuppressSubmatchings(std::move(matchings), stats);

  // (3) conjunction of the emissions.
  std::vector<Query> emissions;
  emissions.reserve(matchings.size());
  std::vector<bool> exactly_covered(conjunction.size(), false);
  for (const Matching& m : matchings) {
    Result<Query> emission = m.rule->Fire(m.bindings, spec.registry());
    if (!emission.ok()) return emission.status();
    if (span.detail()) {
      std::string line = m.rule_name + (m.rule_exact ? "" : " (inexact)") +
                         " matched {";
      for (size_t i = 0; i < m.constraint_indices.size(); ++i) {
        if (i > 0) line += ", ";
        line +=
            conjunction[static_cast<size_t>(m.constraint_indices[i])].ToString();
      }
      line += "} -> " + emission->ToString();
      span.AddAttr("match", std::move(line));
    }
    emissions.push_back(*std::move(emission));
    if (m.rule_exact) {
      for (int index : m.constraint_indices) exactly_covered[index] = true;
    }
  }
  if (stats != nullptr) stats->matchings_applied += matchings.size();

  if (coverage != nullptr) {
    for (size_t i = 0; i < conjunction.size(); ++i) {
      coverage->Record(conjunction[i], exactly_covered[i]);
    }
  }

  ScmResult result;
  result.mapped = Query::And(std::move(emissions));
  result.applied = std::move(matchings);
  return result;
}

Result<Query> ScmMap(const std::vector<Constraint>& conjunction,
                     const MappingSpec& spec, TranslationStats* stats) {
  Result<ScmResult> result = Scm(conjunction, spec, stats);
  if (!result.ok()) return result.status();
  return result->mapped;
}

}  // namespace qmap
