#ifndef QMAP_CORE_STATS_H_
#define QMAP_CORE_STATS_H_

#include <cstdint>
#include <string>

#include "qmap/rules/matcher.h"

namespace qmap {

/// Counters accumulated during one translation. These expose the cost terms
/// the paper analyzes: the N·P·R rule-matching work and M² sub-matching
/// suppression of Section 4.4, and the number of disjuncts examined by the
/// safety machinery (the 2^{ne} vs 2^{nk} comparison of Section 8).
struct TranslationStats {
  MatchCounters match;

  uint64_t scm_calls = 0;
  uint64_t submatchings_removed = 0;
  uint64_t matchings_applied = 0;

  uint64_t dnf_disjuncts = 0;           // Algorithm DNF: disjuncts mapped
  uint64_t disjunctivize_calls = 0;     // local structure rewrites performed
  uint64_t psafe_calls = 0;
  uint64_t ednf_disjuncts_checked = 0;  // safety-check terms examined
  uint64_t cross_matchings = 0;
  uint64_t candidate_blocks = 0;

  void MergeFrom(const TranslationStats& other);
  std::string ToString() const;
};

}  // namespace qmap

#endif  // QMAP_CORE_STATS_H_
