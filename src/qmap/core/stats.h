#ifndef QMAP_CORE_STATS_H_
#define QMAP_CORE_STATS_H_

#include <cstdint>
#include <string>

#include "qmap/rules/matcher.h"

namespace qmap {

/// Counters accumulated during one translation. These expose the cost terms
/// the paper analyzes: the N·P·R rule-matching work and M² sub-matching
/// suppression of Section 4.4, and the number of disjuncts examined by the
/// safety machinery (the 2^{ne} vs 2^{nk} comparison of Section 8).
struct TranslationStats {
  MatchCounters match;

  uint64_t scm_calls = 0;
  uint64_t submatchings_removed = 0;
  uint64_t matchings_applied = 0;

  uint64_t dnf_disjuncts = 0;           // Algorithm DNF: disjuncts mapped
  uint64_t disjunctivize_calls = 0;     // local structure rewrites performed
  uint64_t psafe_calls = 0;
  uint64_t ednf_disjuncts_checked = 0;  // safety-check terms examined
  uint64_t cross_matchings = 0;
  uint64_t candidate_blocks = 0;

  // Service-layer counters (qmap/service): per-source translations answered
  // from / missed by the shared translation cache, evictions observed while
  // answering, and per-source tasks fanned out to the thread pool. All zero
  // for a bare Translator/Mediator run.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_evictions = 0;
  uint64_t parallel_tasks = 0;

  void MergeFrom(const TranslationStats& other);
  std::string ToString() const;
};

}  // namespace qmap

#endif  // QMAP_CORE_STATS_H_
