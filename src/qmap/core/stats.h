#ifndef QMAP_CORE_STATS_H_
#define QMAP_CORE_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "qmap/rules/matcher.h"

namespace qmap {

/// The single source of truth for the counters of TranslationStats.
/// X(name, expr): `name` is the external identifier (ToString keys, trace
/// JSON keys, metric suffixes); `expr` is the member access path within a
/// TranslationStats object. MergeFrom, ToString, ForEachField and FieldNames
/// all expand from this table, so a counter added here is automatically
/// merged, printed, serialized, and covered by the completeness test in
/// tests/stats_test.cc — it cannot silently drift out of any of them.
#define QMAP_TRANSLATION_STATS_FIELDS(X)            \
  X(pattern_attempts, match.pattern_attempts)       \
  X(matchings_found, match.matchings_found)         \
  X(index_hits, match.index_hits)                   \
  X(pattern_attempts_saved, match.pattern_attempts_saved) \
  X(compiled_hits, match.compiled_hits)             \
  X(memo_hits, memo_hits)                           \
  X(memo_misses, memo_misses)                       \
  X(scm_calls, scm_calls)                           \
  X(submatchings_removed, submatchings_removed)     \
  X(matchings_applied, matchings_applied)           \
  X(dnf_disjuncts, dnf_disjuncts)                   \
  X(disjunctivize_calls, disjunctivize_calls)       \
  X(psafe_calls, psafe_calls)                       \
  X(ednf_disjuncts_checked, ednf_disjuncts_checked) \
  X(cross_matchings, cross_matchings)               \
  X(candidate_blocks, candidate_blocks)             \
  X(cache_hits, cache_hits)                         \
  X(cache_misses, cache_misses)                     \
  X(store_hits, store_hits)                         \
  X(cache_evictions, cache_evictions)               \
  X(parallel_tasks, parallel_tasks)                 \
  X(retries, retries)                               \
  X(deadline_hits, deadline_hits)                   \
  X(breaker_rejections, breaker_rejections)         \
  X(degraded_sources, degraded_sources)             \
  X(failed_sources, failed_sources)                 \
  X(translate_ns, translate_ns)                     \
  X(queue_wait_ns, queue_wait_ns)

/// Counters accumulated during one translation. These expose the cost terms
/// the paper analyzes: the N·P·R rule-matching work and M² sub-matching
/// suppression of Section 4.4, and the number of disjuncts examined by the
/// safety machinery (the 2^{ne} vs 2^{nk} comparison of Section 8).
struct TranslationStats {
  MatchCounters match;

  // Per-translation match memo (qmap/core/match_memo.h): conjunctions whose
  // matchings were answered from / inserted into the memo. Zero when no memo
  // is in scope.
  uint64_t memo_hits = 0;
  uint64_t memo_misses = 0;

  uint64_t scm_calls = 0;
  uint64_t submatchings_removed = 0;
  uint64_t matchings_applied = 0;

  uint64_t dnf_disjuncts = 0;           // Algorithm DNF: disjuncts mapped
  uint64_t disjunctivize_calls = 0;     // local structure rewrites performed
  uint64_t psafe_calls = 0;
  uint64_t ednf_disjuncts_checked = 0;  // safety-check terms examined
  uint64_t cross_matchings = 0;
  uint64_t candidate_blocks = 0;

  // Service-layer counters (qmap/service): per-source translations answered
  // from / missed by the shared translation cache, answered from the
  // persistent store tier (qmap/store) after a RAM miss, evictions observed
  // while answering, and per-source tasks fanned out to the thread pool. All
  // zero for a bare Translator/Mediator run.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t store_hits = 0;
  uint64_t cache_evictions = 0;
  uint64_t parallel_tasks = 0;

  // Resilience counters (qmap/service/resilience.h): retry attempts beyond
  // the first, per-source deadline expiries, circuit-breaker fast
  // rejections, and sources that answered degraded / were dropped into a
  // PartialResult. All zero when resilience is off.
  uint64_t retries = 0;
  uint64_t deadline_hits = 0;
  uint64_t breaker_rejections = 0;
  uint64_t degraded_sources = 0;
  uint64_t failed_sources = 0;

  // Timing (observability): wall time spent inside Translator::Translate,
  // and — when a TranslationService runs the per-source work on its pool
  // with tracing active — time the task waited in the pool queue. Merged by
  // summation, so a MediatorTranslation's stats carry the *total* per-source
  // translation time, which can exceed wall time under parallelism.
  uint64_t translate_ns = 0;
  uint64_t queue_wait_ns = 0;

  void MergeFrom(const TranslationStats& other);
  std::string ToString() const;

  /// Calls fn(name, value) for every counter in the field table, in table
  /// order. Used by the trace serializer and the metrics bridge.
  template <typename Fn>
  void ForEachField(Fn&& fn) const {
#define QMAP_STATS_VISIT(name, expr) fn(#name, expr);
    QMAP_TRANSLATION_STATS_FIELDS(QMAP_STATS_VISIT)
#undef QMAP_STATS_VISIT
  }

  /// Mutable variant: fn(name, uint64_t&).
  template <typename Fn>
  void ForEachFieldMutable(Fn&& fn) {
#define QMAP_STATS_VISIT(name, expr) fn(#name, expr);
    QMAP_TRANSLATION_STATS_FIELDS(QMAP_STATS_VISIT)
#undef QMAP_STATS_VISIT
  }

  /// Every counter name in the field table, in table order.
  static std::vector<const char*> FieldNames();
};

}  // namespace qmap

#endif  // QMAP_CORE_STATS_H_
