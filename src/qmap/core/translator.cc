#include "qmap/core/translator.h"

#include <chrono>
#include <memory>

#include "qmap/core/match_memo.h"
#include "qmap/expr/parser.h"
#include "qmap/expr/simplify.h"
#include "qmap/obs/trace.h"

namespace qmap {

Result<Translation> Translator::Translate(const Query& query, Trace* trace,
                                          uint64_t parent_span,
                                          MatchMemo* memo) const {
  const auto start = std::chrono::steady_clock::now();
  Span span(trace, "translate", parent_span);
  std::unique_ptr<MatchMemo> local_memo;
  if (memo == nullptr && options_.use_match_memo) {
    local_memo = std::make_unique<MatchMemo>(&spec_);
    memo = local_memo.get();
  }
  Translation out;
  Result<Query> mapped = Query::True();
  switch (options_.algorithm) {
    case MappingAlgorithm::kTdqm: {
      TdqmOptions tdqm_options;
      tdqm_options.reuse_potential_matchings = options_.reuse_potential_matchings;
      tdqm_options.trace = trace;
      tdqm_options.parent_span = span.id();
      tdqm_options.memo = memo;
      mapped = Tdqm(query, spec_, &out.stats, &out.coverage, tdqm_options);
      break;
    }
    case MappingAlgorithm::kDnf: {
      Span algorithm(trace, "dnf", span.id());
      mapped = DnfMap(query, spec_, &out.stats, &out.coverage, memo);
      break;
    }
    case MappingAlgorithm::kNaive: {
      Span algorithm(trace, "naive", span.id());
      mapped = NaiveMap(query, spec_, &out.stats, &out.coverage);
      break;
    }
  }
  if (!mapped.ok()) return mapped.status();
  out.mapped = *std::move(mapped);
  {
    Span filter_span(trace, "filter", span.id());
    out.filter = ResidueFilter(query, out.coverage);
  }
  if (options_.simplify_output) {
    Span simplify_span(trace, "simplify", span.id());
    out.mapped = SimplifyQuery(out.mapped);
    out.filter = SimplifyQuery(out.filter);
  }
  out.stats.translate_ns += static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  span.SetStats(out.stats);
  return out;
}

Result<Translation> Translator::TranslateText(const std::string& query_text,
                                              Trace* trace,
                                              uint64_t parent_span,
                                              MatchMemo* memo) const {
  Result<Query> query = [&] {
    Span span(trace, "parse", parent_span);
    return ParseQuery(query_text);
  }();
  if (!query.ok()) return query.status();
  return Translate(*query, trace, parent_span, memo);
}

}  // namespace qmap
