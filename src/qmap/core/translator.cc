#include "qmap/core/translator.h"

#include <chrono>

#include "qmap/expr/parser.h"
#include "qmap/expr/simplify.h"
#include "qmap/obs/trace.h"

namespace qmap {

Result<Translation> Translator::Translate(const Query& query, Trace* trace,
                                          uint64_t parent_span) const {
  const auto start = std::chrono::steady_clock::now();
  Span span(trace, "translate", parent_span);
  Translation out;
  Result<Query> mapped = Query::True();
  switch (options_.algorithm) {
    case MappingAlgorithm::kTdqm: {
      TdqmOptions tdqm_options;
      tdqm_options.reuse_potential_matchings = options_.reuse_potential_matchings;
      tdqm_options.trace = trace;
      tdqm_options.parent_span = span.id();
      mapped = Tdqm(query, spec_, &out.stats, &out.coverage, tdqm_options);
      break;
    }
    case MappingAlgorithm::kDnf: {
      Span algorithm(trace, "dnf", span.id());
      mapped = DnfMap(query, spec_, &out.stats, &out.coverage);
      break;
    }
    case MappingAlgorithm::kNaive: {
      Span algorithm(trace, "naive", span.id());
      mapped = NaiveMap(query, spec_, &out.stats, &out.coverage);
      break;
    }
  }
  if (!mapped.ok()) return mapped.status();
  out.mapped = *std::move(mapped);
  {
    Span filter_span(trace, "filter", span.id());
    out.filter = ResidueFilter(query, out.coverage);
  }
  if (options_.simplify_output) {
    Span simplify_span(trace, "simplify", span.id());
    out.mapped = SimplifyQuery(out.mapped);
    out.filter = SimplifyQuery(out.filter);
  }
  out.stats.translate_ns += static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  span.SetStats(out.stats);
  return out;
}

Result<Translation> Translator::TranslateText(const std::string& query_text,
                                              Trace* trace,
                                              uint64_t parent_span) const {
  Result<Query> query = [&] {
    Span span(trace, "parse", parent_span);
    return ParseQuery(query_text);
  }();
  if (!query.ok()) return query.status();
  return Translate(*query, trace, parent_span);
}

}  // namespace qmap
