#include "qmap/core/translator.h"

#include "qmap/expr/parser.h"
#include "qmap/expr/simplify.h"

namespace qmap {

Result<Translation> Translator::Translate(const Query& query) const {
  Translation out;
  Result<Query> mapped = Query::True();
  switch (options_.algorithm) {
    case MappingAlgorithm::kTdqm: {
      TdqmOptions tdqm_options;
      tdqm_options.reuse_potential_matchings = options_.reuse_potential_matchings;
      mapped = Tdqm(query, spec_, &out.stats, &out.coverage, tdqm_options);
      break;
    }
    case MappingAlgorithm::kDnf:
      mapped = DnfMap(query, spec_, &out.stats, &out.coverage);
      break;
    case MappingAlgorithm::kNaive:
      mapped = NaiveMap(query, spec_, &out.stats, &out.coverage);
      break;
  }
  if (!mapped.ok()) return mapped.status();
  out.mapped = *std::move(mapped);
  out.filter = ResidueFilter(query, out.coverage);
  if (options_.simplify_output) {
    out.mapped = SimplifyQuery(out.mapped);
    out.filter = SimplifyQuery(out.filter);
  }
  return out;
}

Result<Translation> Translator::TranslateText(const std::string& query_text) const {
  Result<Query> query = ParseQuery(query_text);
  if (!query.ok()) return query.status();
  return Translate(*query);
}

}  // namespace qmap
