#include "qmap/core/filter.h"

#include <algorithm>

namespace qmap {
namespace {

bool AllLeavesExact(const Query& q, const ExactCoverage& coverage) {
  switch (q.kind()) {
    case NodeKind::kTrue:
      return true;
    case NodeKind::kLeaf:
      return coverage.IsExact(q.constraint());
    case NodeKind::kAnd:
    case NodeKind::kOr: {
      for (const Query& child : q.children()) {
        if (!AllLeavesExact(child, coverage)) return false;
      }
      return true;
    }
  }
  return false;
}

}  // namespace

void ExactCoverage::Record(const Constraint& c, bool exact) {
  auto [it, inserted] = by_constraint_.emplace(c.Fingerprint(), exact);
  if (!inserted) it->second = it->second && exact;
}

bool ExactCoverage::IsExact(const Constraint& c) const {
  auto it = by_constraint_.find(c.Fingerprint());
  return it != by_constraint_.end() && it->second;
}

std::vector<std::pair<uint64_t, bool>> ExactCoverage::Entries() const {
  std::vector<std::pair<uint64_t, bool>> out(by_constraint_.begin(),
                                             by_constraint_.end());
  std::sort(out.begin(), out.end());
  return out;
}

void ExactCoverage::RestoreEntry(uint64_t constraint_fingerprint, bool exact) {
  auto [it, inserted] = by_constraint_.emplace(constraint_fingerprint, exact);
  if (!inserted) it->second = it->second && exact;
}

void ExactCoverage::MergeAnySource(const ExactCoverage& other) {
  for (const auto& [key, exact] : other.by_constraint_) {
    auto it = by_constraint_.find(key);
    if (it == by_constraint_.end()) {
      by_constraint_.emplace(key, exact);
    } else {
      it->second = it->second || exact;
    }
  }
}

Query ResidueFilter(const Query& original, const ExactCoverage& coverage) {
  switch (original.kind()) {
    case NodeKind::kTrue:
      return Query::True();
    case NodeKind::kLeaf:
      return coverage.IsExact(original.constraint()) ? Query::True() : original;
    case NodeKind::kAnd: {
      std::vector<Query> parts;
      parts.reserve(original.children().size());
      for (const Query& child : original.children()) {
        parts.push_back(ResidueFilter(child, coverage));
      }
      return Query::And(std::move(parts));
    }
    case NodeKind::kOr:
      return AllLeavesExact(original, coverage) ? Query::True() : original;
  }
  return original;
}

Query MergedResidueFilter(const Query& original,
                          const std::vector<const ExactCoverage*>& coverages) {
  switch (original.kind()) {
    case NodeKind::kTrue:
      return Query::True();
    case NodeKind::kLeaf: {
      for (const ExactCoverage* coverage : coverages) {
        if (coverage->IsExact(original.constraint())) return Query::True();
      }
      return original;
    }
    case NodeKind::kAnd: {
      std::vector<Query> parts;
      parts.reserve(original.children().size());
      for (const Query& child : original.children()) {
        parts.push_back(MergedResidueFilter(child, coverages));
      }
      return Query::And(std::move(parts));
    }
    case NodeKind::kOr: {
      // A single source must witness the whole disjunction: mixing leaves
      // covered by different sources is unsound (see filter.h).
      for (const ExactCoverage* coverage : coverages) {
        if (AllLeavesExact(original, *coverage)) return Query::True();
      }
      return original;
    }
  }
  return original;
}

}  // namespace qmap
