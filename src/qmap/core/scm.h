#ifndef QMAP_CORE_SCM_H_
#define QMAP_CORE_SCM_H_

#include <vector>

#include "qmap/core/filter.h"
#include "qmap/core/stats.h"
#include "qmap/rules/matcher.h"

namespace qmap {

class Trace;
class MatchMemo;

/// Output of Algorithm SCM.
struct ScmResult {
  /// S(Q̂): the conjunction of the emissions of the surviving matchings.
  Query mapped;
  /// The matchings that fired (after sub-matching suppression).
  std::vector<Matching> applied;
};

/// Algorithm SCM (Figure 4): maps a simple conjunction of constraints.
///
///   (1) find M(Q̂, K), all matchings of any rule in K;
///   (2) remove sub-matchings (a matching strictly contained in another is
///       redundant by Lemma 1);
///   (3) output the conjunction of the emissions of the remaining matchings.
///
/// Constraints matched by no rule contribute True (they are unsupported at
/// the target and fall to the residue filter).  With a sound and complete
/// specification the output is the minimal subsuming mapping (Theorem 1).
///
/// `coverage`, if non-null, records per-constraint exact coverage for
/// residue-filter construction (see ExactCoverage).
///
/// With a trace attached, step 1 records as a "match" span and steps 2-3 as
/// an "scm" span (both children of `parent_span`); in detail mode the "scm"
/// span carries one "match" attribute per applied rule — the lines
/// ExplainTdqm renders.
///
/// `memo`, if non-null and built for this `spec`, answers step 1 from the
/// per-translation match memo (qmap/core/match_memo.h); the "match" span
/// then carries a "memo" attribute ("hit" or "miss"). A memo built for a
/// different spec is ignored.
Result<ScmResult> Scm(const std::vector<Constraint>& conjunction,
                      const MappingSpec& spec, TranslationStats* stats = nullptr,
                      ExactCoverage* coverage = nullptr, Trace* trace = nullptr,
                      uint64_t parent_span = 0, MatchMemo* memo = nullptr);

/// Convenience wrapper returning just the mapped query.
Result<Query> ScmMap(const std::vector<Constraint>& conjunction,
                     const MappingSpec& spec, TranslationStats* stats = nullptr);

/// Steps 2-3 of Algorithm SCM from precomputed matchings (indices into
/// `conjunction`): suppresses sub-matchings and conjoins the emissions.
/// Used by the M_p-reuse optimization of Section 7.1.3 — the potential
/// matchings computed once by Procedure EDNF stand in for step 1.
Result<ScmResult> ScmFromMatchings(const std::vector<Constraint>& conjunction,
                                   std::vector<Matching> matchings,
                                   const MappingSpec& spec,
                                   TranslationStats* stats = nullptr,
                                   ExactCoverage* coverage = nullptr,
                                   Trace* trace = nullptr,
                                   uint64_t parent_span = 0);

/// Step 2 of Algorithm SCM in isolation (exposed for tests and for the
/// suppression-ablation benchmark): removes every matching whose constraint
/// set is a strict subset of another matching's.
std::vector<Matching> SuppressSubmatchings(std::vector<Matching> matchings,
                                           TranslationStats* stats = nullptr);

}  // namespace qmap

#endif  // QMAP_CORE_SCM_H_
