#ifndef QMAP_CORE_MATCH_MEMO_H_
#define QMAP_CORE_MATCH_MEMO_H_

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "qmap/core/stats.h"
#include "qmap/rules/matcher.h"

namespace qmap {

/// Memoizes MatchSpec results for one MappingSpec across the sub-conjunctions
/// of a translation (Section 7.1.3 generalized): TDQM's Disjunctivize, the
/// EDNF safety scan, and PSafe all re-derive matchings for overlapping
/// constraint subsets of the same query; with a memo in scope each distinct
/// subset is matched once.
///
/// The cache key is a 64-bit fingerprint folding each constraint's
/// Constraint::Fingerprint() in input order — no strings are rendered to
/// probe. Order is part of the key on purpose: matchings carry indices into
/// the conjunction, so two permutations of the same constraint set are
/// distinct entries. Fingerprints are trusted without verification (the
/// collision policy of DESIGN.md §9): a ~2^-64 collision would return the
/// matchings of a different conjunction.
///
/// Matching::rule points into the spec the memo was built for, so a memo
/// must not outlive its spec, and Match() refuses (falls through to a direct
/// MatchSpec) if handed a different spec's conjunction via MatchFor.
///
/// Thread safety: pass thread_safe=true to guard the table with a mutex —
/// required when one memo is shared across a TranslationService request
/// whose per-source translations run on the pool. A single-threaded
/// translation can skip the lock.
class MatchMemo {
 public:
  explicit MatchMemo(const MappingSpec* spec, bool thread_safe = false)
      : spec_(spec), thread_safe_(thread_safe) {}

  MatchMemo(const MatchMemo&) = delete;
  MatchMemo& operator=(const MatchMemo&) = delete;

  const MappingSpec* spec() const { return spec_; }

  /// M(Q̂, K) for `conjunction` against the memo's spec, from cache when the
  /// same conjunction (same constraints, same order) was matched before.
  /// Returns a copy — callers mutate matchings (move bindings, re-sort), so
  /// the cached master stays pristine. Bumps stats->memo_hits/memo_misses;
  /// the underlying match counters accrue only on misses (that is the point).
  std::vector<Matching> Match(const std::vector<Constraint>& conjunction,
                              TranslationStats* stats);

  size_t size() const;

  /// The order-sensitive conjunction fingerprint used as the memo key;
  /// exposed for the key-scheme A/B benchmarks (bench_matching).
  static uint64_t KeyOf(const std::vector<Constraint>& conjunction);

 private:
  const MappingSpec* spec_;
  const bool thread_safe_;
  mutable std::mutex mu_;  // held only when thread_safe_
  std::unordered_map<uint64_t, std::vector<Matching>> cache_;
};

}  // namespace qmap

#endif  // QMAP_CORE_MATCH_MEMO_H_
