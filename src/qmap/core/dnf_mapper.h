#ifndef QMAP_CORE_DNF_MAPPER_H_
#define QMAP_CORE_DNF_MAPPER_H_

#include "qmap/core/scm.h"
#include "qmap/expr/dnf.h"

namespace qmap {

/// Algorithm DNF (Figure 6) — the baseline mapper for complex queries:
///
///   (1) convert Q into DNF (disjuncts are always separable, so the mapping
///       distributes over ∨);
///   (2) map each disjunct with Algorithm SCM;
///   (3) return the disjunction of the mapped disjuncts.
///
/// Guarantees the minimal subsuming mapping, but the conversion is global
/// and blind: exponential blow-up regardless of whether any constraint
/// dependencies exist (Sections 5 and 8). Algorithm TDQM is the efficient
/// alternative.
///
/// `memo`, if given, memoizes per-disjunct matching — DNF disjuncts of one
/// query overlap heavily, so the memo pays off fastest here.
Result<Query> DnfMap(const Query& query, const MappingSpec& spec,
                     TranslationStats* stats = nullptr,
                     ExactCoverage* coverage = nullptr,
                     MatchMemo* memo = nullptr);

}  // namespace qmap

#endif  // QMAP_CORE_DNF_MAPPER_H_
