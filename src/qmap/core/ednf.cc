#include "qmap/core/ednf.h"

#include <algorithm>
#include <set>

#include "qmap/core/match_memo.h"
#include "qmap/obs/trace.h"

namespace qmap {

bool SetContains(const ConstraintSet& super, const ConstraintSet& sub) {
  return std::includes(super.begin(), super.end(), sub.begin(), sub.end());
}

bool SetsIntersect(const ConstraintSet& a, const ConstraintSet& b) {
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      return true;
    }
  }
  return false;
}

ConstraintSet SetUnion(const ConstraintSet& a, const ConstraintSet& b) {
  ConstraintSet out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
  return out;
}

std::vector<ConstraintSet> CrossEdnfDisjuncts(
    const std::vector<std::vector<ConstraintSet>>& parts) {
  for (const std::vector<ConstraintSet>& part : parts) {
    if (part.empty()) return {};  // unsatisfiable child: empty product
  }
  std::vector<ConstraintSet> d;
  std::vector<size_t> idx(parts.size(), 0);
  while (true) {
    ConstraintSet combined;
    for (size_t i = 0; i < parts.size(); ++i) {
      combined = SetUnion(combined, parts[i][idx[i]]);
    }
    d.push_back(std::move(combined));
    size_t i = 0;
    while (i < idx.size()) {
      if (++idx[i] < parts[i].size()) break;
      idx[i] = 0;
      ++i;
    }
    if (i == idx.size()) break;
  }
  return d;
}

ConstraintTable::ConstraintTable(const Query& root) {
  // AllConstraints already deduplicates, so each constraint gets a fresh id;
  // the fingerprint index only needs appending.
  for (const Constraint& c : root.AllConstraints()) {
    index_[c.Fingerprint()].push_back(static_cast<int>(constraints_.size()));
    constraints_.push_back(c);
  }
}

int ConstraintTable::IdOf(const Constraint& c) const {
  auto it = index_.find(c.Fingerprint());
  if (it == index_.end()) return -1;
  for (int id : it->second) {
    if (SamePrintedForm(constraints_[static_cast<size_t>(id)], c)) return id;
  }
  return -1;
}

std::vector<Constraint> ConstraintTable::Materialize(const ConstraintSet& set) const {
  std::vector<Constraint> out;
  out.reserve(set.size());
  for (int id : set) out.push_back(constraints_[static_cast<size_t>(id)]);
  return out;
}

EdnfComputer::EdnfComputer(const MappingSpec& spec, const Query& root,
                           TranslationStats* stats, Trace* trace,
                           uint64_t parent_span, MatchMemo* memo)
    : table_(root), stats_(stats) {
  Span span(trace, "ednf.match", parent_span);
  if (memo != nullptr && memo->spec() == &spec) {
    const uint64_t misses_before = stats != nullptr ? stats->memo_misses : 0;
    all_matchings_ = memo->Match(table_.constraints(), stats);
    if (span.detail() && stats != nullptr) {
      span.AddAttr("memo", stats->memo_misses == misses_before ? "hit" : "miss");
    }
  } else {
    all_matchings_ = MatchSpec(spec, table_.constraints(),
                               stats != nullptr ? &stats->match : nullptr);
  }
  std::set<ConstraintSet> unique;
  for (const Matching& m : all_matchings_) unique.insert(m.constraint_indices);
  potential_matchings_.assign(unique.begin(), unique.end());
}

std::optional<std::vector<Matching>> EdnfComputer::MatchingsFor(
    const std::vector<Constraint>& conjunction) const {
  std::map<int, int> table_id_to_position;
  for (size_t i = 0; i < conjunction.size(); ++i) {
    int id = table_.IdOf(conjunction[i]);
    if (id < 0) return std::nullopt;
    table_id_to_position[id] = static_cast<int>(i);
  }
  std::vector<Matching> out;
  for (const Matching& m : all_matchings_) {
    std::vector<int> rebased;
    rebased.reserve(m.constraint_indices.size());
    bool applicable = true;
    for (int id : m.constraint_indices) {
      auto it = table_id_to_position.find(id);
      if (it == table_id_to_position.end()) {
        applicable = false;
        break;
      }
      rebased.push_back(it->second);
    }
    if (!applicable) continue;
    std::sort(rebased.begin(), rebased.end());
    Matching local = m;
    local.constraint_indices = std::move(rebased);
    out.push_back(std::move(local));
  }
  return out;
}

std::vector<ConstraintSet> EdnfComputer::MatchingsWithin(
    const ConstraintSet& constraints) const {
  std::vector<ConstraintSet> out;
  for (const ConstraintSet& m : potential_matchings_) {
    if (SetContains(constraints, m)) out.push_back(m);
  }
  return out;
}

std::vector<ConstraintSet> EdnfComputer::Simplify(
    std::vector<ConstraintSet> disjuncts) const {
  // Nullifying rules (Figure 10, lines 17-22), run to a fixpoint: a disjunct
  // D̂ becomes ε when every relevant potential matching m (m ∩ C(D̂) ≠ ∅) is
  // (a) wholly contained in D̂ and (b) either a single constraint or
  // "escapable" — some other disjunct D̂' has m ∩ C(D̂') = ∅, so the
  // cross-matching would be surfaced through D̂' anyway.
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t j = 0; j < disjuncts.size(); ++j) {
      if (disjuncts[j].empty()) continue;  // already ε
      if (stats_ != nullptr) ++stats_->ednf_disjuncts_checked;
      bool nullable = true;
      for (const ConstraintSet& m : potential_matchings_) {
        if (!SetsIntersect(m, disjuncts[j])) continue;  // irrelevant
        if (!SetContains(disjuncts[j], m)) {
          nullable = false;  // m could cross into another conjunct
          break;
        }
        if (m.size() == 1) continue;
        bool escapable = false;
        for (size_t k = 0; k < disjuncts.size(); ++k) {
          if (k == j) continue;
          if (!SetsIntersect(m, disjuncts[k])) {
            escapable = true;
            break;
          }
        }
        if (!escapable) {
          nullable = false;
          break;
        }
      }
      if (nullable) {
        disjuncts[j].clear();
        changed = true;
      }
    }
  }
  // Simplifying rules (x ∨ x = x; merge ε's). First occurrences win.
  std::vector<ConstraintSet> unique;
  for (ConstraintSet& d : disjuncts) {
    if (std::find(unique.begin(), unique.end(), d) == unique.end()) {
      unique.push_back(std::move(d));
    }
  }
  return unique;
}

std::vector<ConstraintSet> EdnfComputer::Ednf(const Query& q) const {
  switch (q.kind()) {
    case NodeKind::kTrue:
      return {{}};
    case NodeKind::kLeaf: {
      int id = table_.IdOf(q.constraint());
      std::vector<ConstraintSet> d = {{id}};
      return Simplify(std::move(d));
    }
    case NodeKind::kOr: {
      std::vector<ConstraintSet> d;
      for (const Query& child : q.children()) {
        std::vector<ConstraintSet> sub = Ednf(child);
        d.insert(d.end(), std::make_move_iterator(sub.begin()),
                 std::make_move_iterator(sub.end()));
      }
      return Simplify(std::move(d));
    }
    case NodeKind::kAnd: {
      std::vector<std::vector<ConstraintSet>> parts;
      parts.reserve(q.children().size());
      for (const Query& child : q.children()) parts.push_back(Ednf(child));
      // Disjunctivize over the children's EDNF (Figure 10, line 12). The
      // guarded cross product returns the empty list when any child's EDNF
      // is empty (an ∨ node with no satisfiable disjuncts) instead of
      // indexing out of bounds into it.
      return Simplify(CrossEdnfDisjuncts(parts));
    }
  }
  return {{}};
}

}  // namespace qmap
