#ifndef QMAP_CORE_FILTER_H_
#define QMAP_CORE_FILTER_H_

#include <cstdint>
#include <unordered_map>

#include "qmap/expr/query.h"

namespace qmap {

/// Tracks which original constraints were translated *exactly* (by a rule
/// not marked `inexact`), across every mapping context (SCM invocation) in
/// which they appeared.  A constraint is exactly covered only if every
/// context covered it exactly; a constraint that ever mapped to True or was
/// only covered by a relaxation rule stays in the residue filter.
///
/// When merging coverage across *sources* (Eq. 3: Q = F ∧ S_1(Q) ∧ ... ∧
/// S_n(Q)), use MergeAnySource: a constraint fully realized at any one
/// source need not be re-checked by the mediator (Example 3: [dept = cs] is
/// handled entirely by source T2).
class ExactCoverage {
 public:
  /// AND-accumulates coverage of `c` within one translation.
  void Record(const Constraint& c, bool exact);

  /// True if `c` was recorded at least once and always exactly.
  bool IsExact(const Constraint& c) const;

  /// OR-merge across sources: `c` becomes exact if exact in either input.
  void MergeAnySource(const ExactCoverage& other);

 private:
  // Keyed by constraint fingerprint (printed-form identity without the
  // rendering); value: true = exact so far, false = inexact somewhere.
  // Fingerprints are trusted outright here — a ~2^-64 collision could only
  // merge the coverage bits of two unrelated constraints.
  std::unordered_map<uint64_t, bool> by_constraint_;
};

/// Computes the residue filter F for `original` (Eq. 2-3), given per-
/// constraint exact coverage of the translation(s).
///
/// Construction (sound given sound rules; see DESIGN.md §6):
///   f(True)         = True
///   f(leaf)         = True if the leaf is exactly covered, else the leaf
///   f(∧ children)   = ∧ f(child)                 — justified by Lemma 1:
///                     S(Q) ⊆ S(C_i) for every conjunct, so per-conjunct
///                     residues compose
///   f(∨ node)       = True if *all* leaves below are exactly covered,
///                     else the ∨ node unchanged     — disjunctions cannot
///                     be filtered piecemeal
///
/// The paper's Example 3 is reproduced: F = c (the `near` constraint), all
/// other constraints being exactly realized at some source.
Query ResidueFilter(const Query& original, const ExactCoverage& coverage);

}  // namespace qmap

#endif  // QMAP_CORE_FILTER_H_
