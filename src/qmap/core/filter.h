#ifndef QMAP_CORE_FILTER_H_
#define QMAP_CORE_FILTER_H_

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "qmap/expr/query.h"

namespace qmap {

/// Tracks which original constraints were translated *exactly* (by a rule
/// not marked `inexact`), across every mapping context (SCM invocation) in
/// which they appeared.  A constraint is exactly covered only if every
/// context covered it exactly; a constraint that ever mapped to True or was
/// only covered by a relaxation rule stays in the residue filter.
///
/// When merging coverage across *sources* (Eq. 3: Q = F ∧ S_1(Q) ∧ ... ∧
/// S_n(Q)), a constraint in a conjunctive position that is fully realized
/// at any one source need not be re-checked by the mediator (Example 3:
/// [dept = cs] is handled entirely by source T2). For disjunctions the
/// per-constraint OR-merge is NOT sound — use MergedResidueFilter, which
/// demands a single witnessing source per ∨-node.
class ExactCoverage {
 public:
  /// AND-accumulates coverage of `c` within one translation.
  void Record(const Constraint& c, bool exact);

  /// True if `c` was recorded at least once and always exactly.
  bool IsExact(const Constraint& c) const;

  /// OR-merge across sources: `c` becomes exact if exact in either input.
  /// Only sound for constraints in conjunctive positions (see
  /// MergedResidueFilter for why); kept for leaf-level aggregation.
  void MergeAnySource(const ExactCoverage& other);

  /// The raw (constraint-fingerprint, exact) entries, sorted by fingerprint
  /// for a canonical order. Serialization hook for the persistent store
  /// (qmap/store): fingerprints are already the identity this class keys
  /// on, so coverage round-trips without the constraints themselves.
  std::vector<std::pair<uint64_t, bool>> Entries() const;

  /// Re-adds one serialized entry, AND-accumulating like Record() so a
  /// replayed record merges exactly as the original sequence did.
  void RestoreEntry(uint64_t constraint_fingerprint, bool exact);

 private:
  // Keyed by constraint fingerprint (printed-form identity without the
  // rendering); value: true = exact so far, false = inexact somewhere.
  // Fingerprints are trusted outright here — a ~2^-64 collision could only
  // merge the coverage bits of two unrelated constraints.
  std::unordered_map<uint64_t, bool> by_constraint_;
};

/// Computes the residue filter F for `original` (Eq. 2-3), given per-
/// constraint exact coverage of the translation(s).
///
/// Construction (sound given sound rules; see DESIGN.md §6):
///   f(True)         = True
///   f(leaf)         = True if the leaf is exactly covered, else the leaf
///   f(∧ children)   = ∧ f(child)                 — justified by Lemma 1:
///                     S(Q) ⊆ S(C_i) for every conjunct, so per-conjunct
///                     residues compose
///   f(∨ node)       = True if *all* leaves below are exactly covered,
///                     else the ∨ node unchanged     — disjunctions cannot
///                     be filtered piecemeal
///
/// The paper's Example 3 is reproduced: F = c (the `near` constraint), all
/// other constraints being exactly realized at some source.
Query ResidueFilter(const Query& original, const ExactCoverage& coverage);

/// The cross-source residue filter for the Eq. 3 composition
/// F ∧ S_1(Q) ∧ ... ∧ S_n(Q), given each surviving source's own coverage.
///
/// Dropping a node from F must be justified by a SINGLE source:
///   leaf    — some source translated it exactly in every context, so that
///             source's S_i(Q) enforces it (the leaf sits conjunctively in
///             every crossed conjunct of S_i(Q));
///   ∨ node  — some ONE source covers *all* leaves below exactly, so that
///             source's per-source identity F_i ∧ S_i(Q) ≡ Q enforces the
///             whole disjunction.
/// OR-merging coverage per-constraint first (MergeAnySource) and asking
/// AllLeavesExact of the blob is unsound for ∨ nodes: with a3 exact only at
/// S3 and a4 exact only at S2, each source widened a *different* disjunct,
/// and the conjunction of the widened translations can accept tuples the
/// disjunction rejects. Found by the randomized subsumption harness
/// (tests/subsumption_property_test.cc).
Query MergedResidueFilter(const Query& original,
                          const std::vector<const ExactCoverage*>& coverages);

}  // namespace qmap

#endif  // QMAP_CORE_FILTER_H_
