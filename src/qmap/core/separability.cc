#include "qmap/core/separability.h"

#include <algorithm>

#include "qmap/core/dnf_mapper.h"
#include "qmap/core/scm.h"
#include "qmap/expr/dnf.h"

namespace qmap {
namespace {

// Cross-matchings of one base-case disjunct: potential matchings contained
// in the union but in no single part.
void CollectCrossMatchings(const std::vector<ConstraintSet>& parts,
                           const EdnfComputer& ednf,
                           std::vector<ConstraintSet>* out) {
  ConstraintSet all;
  for (const ConstraintSet& part : parts) all = SetUnion(all, part);
  for (const ConstraintSet& m : ednf.potential_matchings()) {
    if (m.size() < 2) continue;
    if (!SetContains(all, m)) continue;
    bool within_one = false;
    for (const ConstraintSet& part : parts) {
      if (SetContains(part, m)) {
        within_one = true;
        break;
      }
    }
    if (!within_one && std::find(out->begin(), out->end(), m) == out->end()) {
      out->push_back(m);
    }
  }
}

}  // namespace

SafetyResult CheckBaseCaseSafety(const std::vector<ConstraintSet>& conjuncts,
                                 const EdnfComputer& ednf) {
  SafetyResult result;
  CollectCrossMatchings(conjuncts, ednf, &result.cross_matchings);
  result.safe = result.cross_matchings.empty();
  return result;
}

SafetyResult CheckGeneralSafety(const std::vector<Query>& conjuncts,
                                const EdnfComputer& ednf) {
  SafetyResult result;
  std::vector<std::vector<ConstraintSet>> de;
  de.reserve(conjuncts.size());
  for (const Query& conjunct : conjuncts) de.push_back(ednf.Ednf(conjunct));

  const size_t n = conjuncts.size();
  std::vector<size_t> idx(n, 0);
  while (true) {
    std::vector<ConstraintSet> parts(n);
    for (size_t i = 0; i < n; ++i) parts[i] = de[i][idx[i]];
    CollectCrossMatchings(parts, ednf, &result.cross_matchings);
    size_t i = 0;
    while (i < n) {
      if (++idx[i] < de[i].size()) break;
      idx[i] = 0;
      ++i;
    }
    if (i == n) break;
  }
  result.safe = result.cross_matchings.empty();
  return result;
}

bool SubsumesOnUniverse(const Query& broader, const Query& narrower,
                        const std::vector<Tuple>& universe,
                        const ConstraintSemantics* semantics) {
  for (const Tuple& tuple : universe) {
    if (EvalQuery(narrower, tuple, semantics) &&
        !EvalQuery(broader, tuple, semantics)) {
      return false;
    }
  }
  return true;
}

Result<bool> IsSeparableBaseCase(const std::vector<std::vector<Constraint>>& conjuncts,
                                 const MappingSpec& spec,
                                 const std::vector<Tuple>& universe,
                                 const ConstraintSemantics* semantics,
                                 TranslationStats* stats) {
  // Build Q̂ = Ĉ₁···Ĉₙ as a query to obtain the constraint table and M_p.
  std::vector<Query> parts;
  for (const std::vector<Constraint>& conjunct : conjuncts) {
    std::vector<Query> leaves;
    for (const Constraint& c : conjunct) leaves.push_back(Query::Leaf(c));
    parts.push_back(Query::And(std::move(leaves)));
  }
  Query whole = Query::And(parts);
  EdnfComputer ednf(spec, whole, stats);

  std::vector<ConstraintSet> sets;
  for (const std::vector<Constraint>& conjunct : conjuncts) {
    ConstraintSet set;
    for (const Constraint& c : conjunct) set.push_back(ednf.table().IdOf(c));
    std::sort(set.begin(), set.end());
    sets.push_back(std::move(set));
  }
  SafetyResult safety = CheckBaseCaseSafety(sets, ednf);
  if (safety.safe) return true;  // safety is sufficient (Corollary 1)

  // Theorem 3: every cross-matching must be redundant, i.e.
  // S(Ĉ₁)···S(Ĉₙ) ⊆ S(∧m).
  std::vector<Query> mapped_conjuncts;
  for (const std::vector<Constraint>& conjunct : conjuncts) {
    Result<Query> mapped = ScmMap(conjunct, spec, stats);
    if (!mapped.ok()) return mapped.status();
    mapped_conjuncts.push_back(*std::move(mapped));
  }
  Query product = Query::And(mapped_conjuncts);
  for (const ConstraintSet& m : safety.cross_matchings) {
    Result<Query> mapped_m = ScmMap(ednf.table().Materialize(m), spec, stats);
    if (!mapped_m.ok()) return mapped_m.status();
    if (!SubsumesOnUniverse(*mapped_m, product, universe, semantics)) {
      return false;  // essential cross-matching: inseparable
    }
  }
  return true;
}

Result<bool> IsSeparableGeneralCase(const std::vector<Query>& conjuncts,
                                    const MappingSpec& spec,
                                    const std::vector<Tuple>& universe,
                                    const ConstraintSemantics* semantics,
                                    TranslationStats* stats) {
  // Disjunctivize Q̂ one level: disjuncts D̂ⱼ = I₁k₁ ∧ ... ∧ Iₙkₙ.
  std::vector<std::vector<Query>> ingredient_lists;
  for (const Query& conjunct : conjuncts) {
    if (conjunct.kind() == NodeKind::kOr) {
      ingredient_lists.push_back(conjunct.children());
    } else {
      ingredient_lists.push_back({conjunct});
    }
  }
  struct Disjunct {
    std::vector<Query> ingredients;
    Query query;        // D̂ⱼ
    Query mapped;       // S(D̂ⱼ)
    Query z;            // Zⱼ = S(I₁k₁)···S(Iₙkₙ)
  };
  std::vector<Disjunct> disjuncts;
  std::vector<size_t> idx(ingredient_lists.size(), 0);
  while (true) {
    Disjunct d;
    for (size_t i = 0; i < ingredient_lists.size(); ++i) {
      d.ingredients.push_back(ingredient_lists[i][idx[i]]);
    }
    d.query = Query::And(d.ingredients);
    Result<Query> mapped = DnfMap(d.query, spec, stats);
    if (!mapped.ok()) return mapped.status();
    d.mapped = *std::move(mapped);
    std::vector<Query> z_parts;
    for (const Query& ingredient : d.ingredients) {
      Result<Query> mapped_ingredient = DnfMap(ingredient, spec, stats);
      if (!mapped_ingredient.ok()) return mapped_ingredient.status();
      z_parts.push_back(*std::move(mapped_ingredient));
    }
    d.z = Query::And(std::move(z_parts));
    disjuncts.push_back(std::move(d));
    size_t i = 0;
    while (i < idx.size()) {
      if (++idx[i] < ingredient_lists[i].size()) break;
      idx[i] = 0;
      ++i;
    }
    if (i == idx.size()) break;
  }

  // Eq. 8 for each disjunct, evaluated tuple-wise:
  //   Zⱼ(t) ∧ ¬S(D̂ⱼ)(t)  ⇒  ∃j'≠j: S(D̂ⱼ')(t).
  for (size_t j = 0; j < disjuncts.size(); ++j) {
    for (const Tuple& tuple : universe) {
      if (!EvalQuery(disjuncts[j].z, tuple, semantics)) continue;
      if (EvalQuery(disjuncts[j].mapped, tuple, semantics)) continue;
      bool absorbed = false;
      for (size_t k = 0; k < disjuncts.size(); ++k) {
        if (k == j) continue;
        if (EvalQuery(disjuncts[k].mapped, tuple, semantics)) {
          absorbed = true;
          break;
        }
      }
      if (!absorbed) return false;
    }
  }
  return true;
}

}  // namespace qmap
