#include "qmap/core/dnf_mapper.h"

namespace qmap {

Result<Query> DnfMap(const Query& query, const MappingSpec& spec,
                     TranslationStats* stats, ExactCoverage* coverage,
                     MatchMemo* memo) {
  // (1) global DNF conversion.
  std::vector<std::vector<Constraint>> disjuncts = DnfDisjuncts(query);
  if (stats != nullptr) stats->dnf_disjuncts += disjuncts.size();

  // (2) Algorithm SCM on every disjunct; (3) disjunction of the results.
  std::vector<Query> mapped;
  mapped.reserve(disjuncts.size());
  for (const std::vector<Constraint>& disjunct : disjuncts) {
    Result<ScmResult> result =
        Scm(disjunct, spec, stats, coverage, /*trace=*/nullptr,
            /*parent_span=*/0, memo);
    if (!result.ok()) return result.status();
    mapped.push_back(std::move(result->mapped));
  }
  return Query::Or(std::move(mapped));
}

}  // namespace qmap
