#ifndef QMAP_CORE_NAIVE_MAPPER_H_
#define QMAP_CORE_NAIVE_MAPPER_H_

#include "qmap/core/scm.h"

namespace qmap {

/// The dependency-ignorant baseline the paper argues against (Sections 1
/// and 3: "other systems implicitly assume one-to-one mapping of
/// constraints, which leads to suboptimal solutions"): distribute S(·) over
/// both ∧ and ∨ all the way to the leaves, translating every constraint
/// independently with Algorithm SCM.
///
/// The output still *subsumes* the original query (each leaf mapping does,
/// and ∧/∨ preserve subsumption), so it is a correct but generally
/// *non-minimal* translation: Example 2's Q_a instead of Q_b.  Exposed as a
/// baseline for the selectivity-quality benchmarks and tests.
Result<Query> NaiveMap(const Query& query, const MappingSpec& spec,
                       TranslationStats* stats = nullptr,
                       ExactCoverage* coverage = nullptr);

}  // namespace qmap

#endif  // QMAP_CORE_NAIVE_MAPPER_H_
