#ifndef QMAP_CORE_PSAFE_H_
#define QMAP_CORE_PSAFE_H_

#include <vector>

#include "qmap/core/ednf.h"

namespace qmap {

/// Result of Algorithm PSafe: a partition of the conjuncts into blocks.
struct PSafePartition {
  /// Disjoint blocks of conjunct indices (into the input conjunct list),
  /// covering every conjunct. Singleton blocks are separable; multi-conjunct
  /// blocks must be rewritten (Disjunctivized) before further mapping.
  std::vector<std::vector<int>> blocks;

  /// Number of cross-matching instances found (0 ⇒ the conjunction is safe
  /// and fully separable).
  int cross_matching_instances = 0;

  std::string ToString() const;
};

/// Algorithm PSafe (Figure 11): partitions the conjunction ∧(conjuncts)
/// into *safe* blocks — S(Q̂) = S(∧B₁)···S(∧Bₘ) (Theorem 6) — that are also
/// minimal before the final merge of overlapping blocks.
///
///   (1) For each disjunct of D(Q̂) (built from the conjuncts' EDNF), find
///       the cross-matchings and, for each, the candidate blocks that
///       minimally cover it.
///   (2) Choose an irredundant set of candidate blocks covering all the
///       cross-matchings; merge overlapping chosen blocks; give every
///       remaining conjunct its own singleton block.
///
/// `ednf` must have been built for (a query containing) the conjunction, so
/// that every conjunct's constraints are in its table.
///
/// With a trace attached, the whole partitioning records as a "psafe" span
/// under `parent_span`, with the per-conjunct EDNF annotation work (the
/// safety-check cost term) as a nested "ednf.safety" span; in detail mode
/// the span carries the partition rendering and cross-matching count.
PSafePartition PSafe(const std::vector<Query>& conjuncts, const EdnfComputer& ednf,
                     TranslationStats* stats = nullptr, Trace* trace = nullptr,
                     uint64_t parent_span = 0);

/// Cap on the subset enumeration inside MinimalCovers: beyond this many
/// relevant sets the single all-relevant cover is returned instead — a sound
/// over-approximation (larger blocks are always safe, Theorem 6; the
/// partition merely loses minimality).
inline constexpr size_t kMaxMinimalCoverSets = 20;

/// All minimal covers of `target` using the sets of `parts` whose indices
/// are in `relevant` (each part sorted ascending, as ConstraintSets are):
/// every subset S of `relevant` such that ∪_{i∈S} parts[i] ⊇ target and no
/// proper subset of S still covers. Each cover is appended to `out` as a
/// sorted index vector; covers are emitted smallest-first (by set count).
///
/// Exposed from Algorithm PSafe step 1 for the pinned-cover regression tests
/// (Figure 11's candidate blocks are exactly these covers).
void MinimalCovers(const ConstraintSet& target,
                   const std::vector<ConstraintSet>& parts,
                   const std::vector<int>& relevant,
                   std::vector<std::vector<int>>* out);

}  // namespace qmap

#endif  // QMAP_CORE_PSAFE_H_
