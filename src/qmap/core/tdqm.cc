#include "qmap/core/tdqm.h"

#include <memory>

#include "qmap/core/match_memo.h"
#include "qmap/core/psafe.h"
#include "qmap/expr/dnf.h"
#include "qmap/obs/trace.h"

namespace qmap {
namespace {

struct TdqmContext {
  const MappingSpec& spec;
  TranslationStats* stats;
  ExactCoverage* coverage;
  /// Root-level EDNF machinery, shared across the traversal when the reuse
  /// optimization is on; nullptr otherwise.
  const EdnfComputer* shared_ednf;
  /// Per-query trace, or nullptr for the uninstrumented path.
  Trace* trace;
  /// Per-translation match memo, or nullptr.
  MatchMemo* memo;
};

Result<Query> Walk(const Query& query, TdqmContext& ctx, uint64_t parent_span) {
  // Case 3: simple conjunctions (including leaves and True) go to SCM.
  if (query.IsSimpleConjunction()) {
    if (query.is_true()) {
      Span node(ctx.trace, "node.true", parent_span);
      return Query::True();
    }
    Span node(ctx.trace, "node.scm", parent_span);
    if (node.detail()) node.AddAttr("query", query.ToString());
    std::vector<Constraint> conjunction = query.AsSimpleConjunction();
    if (ctx.shared_ednf != nullptr) {
      std::optional<std::vector<Matching>> matchings =
          ctx.shared_ednf->MatchingsFor(conjunction);
      if (matchings.has_value()) {
        Result<ScmResult> result =
            ScmFromMatchings(conjunction, *std::move(matchings), ctx.spec,
                             ctx.stats, ctx.coverage, ctx.trace, node.id());
        if (!result.ok()) return result.status();
        return result->mapped;
      }
      // Constraint outside the root table (cannot happen for rewrites of the
      // original query); fall through to fresh matching.
    }
    Result<ScmResult> result = Scm(conjunction, ctx.spec, ctx.stats,
                                   ctx.coverage, ctx.trace, node.id(), ctx.memo);
    if (!result.ok()) return result.status();
    return result->mapped;
  }

  // Case 1: ∨ node — disjuncts are always separable.
  if (query.kind() == NodeKind::kOr) {
    Span node(ctx.trace, "node.or", parent_span);
    if (node.detail()) {
      node.AddAttr("disjuncts", std::to_string(query.children().size()));
    }
    std::vector<Query> mapped;
    mapped.reserve(query.children().size());
    for (const Query& disjunct : query.children()) {
      Result<Query> part = Walk(disjunct, ctx, node.id());
      if (!part.ok()) return part;
      mapped.push_back(*std::move(part));
    }
    return Query::Or(std::move(mapped));
  }

  // Case 2: ∧ node with at least one non-leaf child.
  Span node(ctx.trace, "node.and", parent_span);
  if (node.detail()) node.AddAttr("query", query.ToString());
  std::unique_ptr<EdnfComputer> local;
  const EdnfComputer* ednf = ctx.shared_ednf;
  if (ednf == nullptr) {
    local = std::make_unique<EdnfComputer>(ctx.spec, query, ctx.stats, ctx.trace,
                                           node.id(), ctx.memo);
    ednf = local.get();
  }
  PSafePartition partition =
      PSafe(query.children(), *ednf, ctx.stats, ctx.trace, node.id());
  std::vector<Query> mapped_blocks;
  mapped_blocks.reserve(partition.blocks.size());
  for (const std::vector<int>& block : partition.blocks) {
    std::vector<Query> members;
    members.reserve(block.size());
    for (int index : block) {
      members.push_back(query.children()[static_cast<size_t>(index)]);
    }
    Query rewritten = [&] {
      if (members.size() <= 1) return Disjunctivize(members);
      Span rewrite(ctx.trace, "disjunctivize", node.id());
      Query out = Disjunctivize(members);
      if (ctx.stats != nullptr) ++ctx.stats->disjunctivize_calls;
      if (rewrite.detail()) {
        std::string label = "{";
        for (size_t i = 0; i < block.size(); ++i) {
          if (i > 0) label += ",";
          label += "C" + std::to_string(block[i] + 1);
        }
        label += "}";
        size_t disjuncts =
            out.kind() == NodeKind::kOr ? out.children().size() : 1;
        rewrite.AddAttr("label", std::move(label));
        rewrite.AddAttr("disjuncts", std::to_string(disjuncts));
      }
      return out;
    }();
    Result<Query> part = Walk(rewritten, ctx, node.id());
    if (!part.ok()) return part;
    mapped_blocks.push_back(*std::move(part));
  }
  return Query::And(std::move(mapped_blocks));
}

}  // namespace

Result<Query> Tdqm(const Query& query, const MappingSpec& spec,
                   TranslationStats* stats, ExactCoverage* coverage,
                   const TdqmOptions& options) {
  TdqmContext ctx{spec, stats, coverage, nullptr, options.trace, options.memo};
  Span root(options.trace, "tdqm", options.parent_span);
  std::unique_ptr<EdnfComputer> shared;
  if (options.reuse_potential_matchings) {
    shared = std::make_unique<EdnfComputer>(spec, query, stats, options.trace,
                                            root.id(), options.memo);
    ctx.shared_ednf = shared.get();
  }
  return Walk(query, ctx, root.id());
}

}  // namespace qmap
