#include "qmap/core/tdqm.h"

#include <memory>

#include "qmap/core/psafe.h"
#include "qmap/expr/dnf.h"

namespace qmap {
namespace {

struct TdqmContext {
  const MappingSpec& spec;
  TranslationStats* stats;
  ExactCoverage* coverage;
  /// Root-level EDNF machinery, shared across the traversal when the reuse
  /// optimization is on; nullptr otherwise.
  const EdnfComputer* shared_ednf;
};

Result<Query> Walk(const Query& query, TdqmContext& ctx) {
  // Case 3: simple conjunctions (including leaves and True) go to SCM.
  if (query.IsSimpleConjunction()) {
    if (query.is_true()) return Query::True();
    std::vector<Constraint> conjunction = query.AsSimpleConjunction();
    if (ctx.shared_ednf != nullptr) {
      std::optional<std::vector<Matching>> matchings =
          ctx.shared_ednf->MatchingsFor(conjunction);
      if (matchings.has_value()) {
        Result<ScmResult> result = ScmFromMatchings(
            conjunction, *std::move(matchings), ctx.spec, ctx.stats, ctx.coverage);
        if (!result.ok()) return result.status();
        return result->mapped;
      }
      // Constraint outside the root table (cannot happen for rewrites of the
      // original query); fall through to fresh matching.
    }
    Result<ScmResult> result = Scm(conjunction, ctx.spec, ctx.stats, ctx.coverage);
    if (!result.ok()) return result.status();
    return result->mapped;
  }

  // Case 1: ∨ node — disjuncts are always separable.
  if (query.kind() == NodeKind::kOr) {
    std::vector<Query> mapped;
    mapped.reserve(query.children().size());
    for (const Query& disjunct : query.children()) {
      Result<Query> part = Walk(disjunct, ctx);
      if (!part.ok()) return part;
      mapped.push_back(*std::move(part));
    }
    return Query::Or(std::move(mapped));
  }

  // Case 2: ∧ node with at least one non-leaf child.
  std::unique_ptr<EdnfComputer> local;
  const EdnfComputer* ednf = ctx.shared_ednf;
  if (ednf == nullptr) {
    local = std::make_unique<EdnfComputer>(ctx.spec, query, ctx.stats);
    ednf = local.get();
  }
  PSafePartition partition = PSafe(query.children(), *ednf, ctx.stats);
  std::vector<Query> mapped_blocks;
  mapped_blocks.reserve(partition.blocks.size());
  for (const std::vector<int>& block : partition.blocks) {
    std::vector<Query> members;
    members.reserve(block.size());
    for (int index : block) {
      members.push_back(query.children()[static_cast<size_t>(index)]);
    }
    Query rewritten = Disjunctivize(members);
    if (ctx.stats != nullptr && members.size() > 1) ++ctx.stats->disjunctivize_calls;
    Result<Query> part = Walk(rewritten, ctx);
    if (!part.ok()) return part;
    mapped_blocks.push_back(*std::move(part));
  }
  return Query::And(std::move(mapped_blocks));
}

}  // namespace

Result<Query> Tdqm(const Query& query, const MappingSpec& spec,
                   TranslationStats* stats, ExactCoverage* coverage,
                   const TdqmOptions& options) {
  TdqmContext ctx{spec, stats, coverage, nullptr};
  std::unique_ptr<EdnfComputer> shared;
  if (options.reuse_potential_matchings) {
    shared = std::make_unique<EdnfComputer>(spec, query, stats);
    ctx.shared_ednf = shared.get();
  }
  return Walk(query, ctx);
}

}  // namespace qmap
