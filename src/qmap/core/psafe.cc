#include "qmap/core/psafe.h"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <functional>
#include <map>
#include <set>

#include "qmap/obs/trace.h"

namespace qmap {

void MinimalCovers(const ConstraintSet& target,
                   const std::vector<ConstraintSet>& parts,
                   const std::vector<int>& relevant,
                   std::vector<std::vector<int>>* out) {
  const size_t n = relevant.size();
  if (n == 0) return;
  // Beyond the cap, `1 << n` would overflow the mask and the enumeration is
  // hopeless anyway; fall back to the single all-relevant cover (already
  // sorted ascending by construction).
  if (n > kMaxMinimalCoverSets) {
    out->push_back(relevant);
    return;
  }

  // Coverage as bitsets over the *target's* elements: bit e of coverage[i]
  // says parts[relevant[i]] contains target[e]. Unions and the covers-check
  // then cost a word-op per 64 target elements instead of a merge of sorted
  // int vectors per subset.
  const size_t t = target.size();
  const size_t words = (t + 63) / 64;
  std::vector<uint64_t> full(words, 0);
  for (size_t e = 0; e < t; ++e) full[e >> 6] |= uint64_t{1} << (e & 63);
  std::vector<std::vector<uint64_t>> coverage(n,
                                              std::vector<uint64_t>(words, 0));
  for (size_t i = 0; i < n; ++i) {
    const ConstraintSet& part = parts[static_cast<size_t>(relevant[i])];
    for (size_t e = 0; e < t; ++e) {
      if (std::binary_search(part.begin(), part.end(), target[e])) {
        coverage[i][e >> 6] |= uint64_t{1} << (e & 63);
      }
    }
  }

  // Enumerate subsets in increasing popcount order (Gosper's hack within
  // each popcount class). Minimality then needs no second scan: when a mask
  // covers the target, every proper subset has a smaller popcount and was
  // already visited — so the mask is minimal iff it is not a superset of a
  // cover already found (distinct equal-popcount masks are never subsets of
  // one another, so same-class covers cannot disqualify each other).
  std::vector<uint32_t> found;  // masks of the minimal covers
  std::vector<uint64_t> acc(words);
  const uint32_t limit = uint32_t{1} << n;  // n <= 20: no overflow
  for (size_t k = 1; k <= n; ++k) {
    uint32_t mask = (uint32_t{1} << k) - 1;
    while (mask < limit) {
      bool superset_of_cover = false;
      for (uint32_t f : found) {
        if ((mask & f) == f) {
          superset_of_cover = true;
          break;
        }
      }
      if (!superset_of_cover) {
        std::fill(acc.begin(), acc.end(), 0);
        for (uint32_t bits = mask; bits != 0; bits &= bits - 1) {
          const std::vector<uint64_t>& c =
              coverage[static_cast<size_t>(std::countr_zero(bits))];
          for (size_t w = 0; w < words; ++w) acc[w] |= c[w];
        }
        bool covers = true;
        for (size_t w = 0; w < words; ++w) {
          if ((acc[w] & full[w]) != full[w]) {
            covers = false;
            break;
          }
        }
        if (covers) {
          found.push_back(mask);
          std::vector<int> cover;
          cover.reserve(k);
          for (uint32_t bits = mask; bits != 0; bits &= bits - 1) {
            cover.push_back(relevant[static_cast<size_t>(std::countr_zero(bits))]);
          }
          out->push_back(std::move(cover));
        }
      }
      // Gosper's hack: the next mask with the same popcount, ascending. The
      // step after the class's largest in-range mask lands at or above
      // `limit`, ending the while.
      const uint32_t c = mask & (~mask + 1);
      const uint32_t r = mask + c;
      mask = (((r ^ mask) >> 2) / c) | r;
    }
  }
}

std::string PSafePartition::ToString() const {
  std::string out = "{";
  for (size_t b = 0; b < blocks.size(); ++b) {
    if (b > 0) out += ", ";
    out += "{";
    for (size_t i = 0; i < blocks[b].size(); ++i) {
      if (i > 0) out += ",";
      out += "C" + std::to_string(blocks[b][i] + 1);
    }
    out += "}";
  }
  return out + "}";
}

PSafePartition PSafe(const std::vector<Query>& conjuncts, const EdnfComputer& ednf,
                     TranslationStats* stats, Trace* trace,
                     uint64_t parent_span) {
  if (stats != nullptr) ++stats->psafe_calls;
  Span span(trace, "psafe", parent_span);
  const size_t n = conjuncts.size();

  // EDNF of each conjunct: De(Či) = Î_i1 ∨ ... ∨ Î_im_i.
  std::vector<std::vector<ConstraintSet>> de;
  de.reserve(n);
  {
    Span ednf_span(trace, "ednf.safety", span.id());
    for (const Query& conjunct : conjuncts) de.push_back(ednf.Ednf(conjunct));
  }

  // Step (1): walk the disjuncts of D(Q̂) = cross product of the De's; find
  // cross-matchings and candidate blocks.
  struct MatchingInstance {
    int id;
    std::vector<std::vector<int>> candidate_blocks;  // conjunct-index sets
  };
  std::vector<MatchingInstance> instances;
  // Candidate block -> ids of the matching instances it (minimally) covers.
  std::map<std::vector<int>, std::set<int>> block_covers;

  // An empty De(Či) means the conjunct has no satisfiable disjunct: the
  // cross product D(Q̂) is empty and there is nothing to walk (indexing
  // de[i][idx[i]] below would otherwise read out of bounds).
  bool product_is_empty = false;
  for (const std::vector<ConstraintSet>& disjuncts : de) {
    if (disjuncts.empty()) {
      product_is_empty = true;
      break;
    }
  }

  std::vector<size_t> idx(n, 0);
  int next_instance_id = 0;
  while (!product_is_empty) {
    if (stats != nullptr) ++stats->ednf_disjuncts_checked;
    // Ingredient sets of this disjunct.
    std::vector<ConstraintSet> parts(n);
    ConstraintSet all;
    for (size_t i = 0; i < n; ++i) {
      parts[i] = de[i][idx[i]];
      all = SetUnion(all, parts[i]);
    }
    // Cross-matchings: potential matchings within the disjunct that are not
    // contained in any single ingredient.
    for (const ConstraintSet& m : ednf.potential_matchings()) {
      if (m.size() < 2) continue;
      if (!SetContains(all, m)) continue;
      bool within_one = false;
      for (size_t i = 0; i < n; ++i) {
        if (SetContains(parts[i], m)) {
          within_one = true;
          break;
        }
      }
      if (within_one) continue;
      if (stats != nullptr) ++stats->cross_matchings;
      MatchingInstance instance;
      instance.id = next_instance_id++;
      std::vector<int> relevant;
      for (size_t i = 0; i < n; ++i) {
        if (SetsIntersect(parts[i], m)) relevant.push_back(static_cast<int>(i));
      }
      MinimalCovers(m, parts, relevant, &instance.candidate_blocks);
      for (const std::vector<int>& block : instance.candidate_blocks) {
        block_covers[block].insert(instance.id);
      }
      instances.push_back(std::move(instance));
    }
    size_t i = 0;
    while (i < n) {
      if (++idx[i] < de[i].size()) break;
      idx[i] = 0;
      ++i;
    }
    if (i == n) break;
  }
  if (stats != nullptr) stats->candidate_blocks += block_covers.size();

  PSafePartition result;
  result.cross_matching_instances = next_instance_id;

  // Step (2): choose an irredundant subset of candidate blocks covering all
  // matching instances (greedy set cover followed by redundancy pruning —
  // the pruning guarantees every chosen block exclusively covers some
  // matching, which is what the minimality proof of Lemma 2 requires).
  std::vector<std::pair<std::vector<int>, std::set<int>>> candidates(
      block_covers.begin(), block_covers.end());
  std::set<int> uncovered;
  for (const MatchingInstance& instance : instances) uncovered.insert(instance.id);
  std::vector<size_t> chosen;
  while (!uncovered.empty()) {
    size_t best = candidates.size();
    size_t best_gain = 0;
    for (size_t c = 0; c < candidates.size(); ++c) {
      size_t gain = 0;
      for (int id : candidates[c].second) gain += uncovered.count(id);
      if (gain > best_gain ||
          (gain == best_gain && gain > 0 && best < candidates.size() &&
           candidates[c].first.size() < candidates[best].first.size())) {
        best_gain = gain;
        best = c;
      }
    }
    if (best == candidates.size() || best_gain == 0) break;  // defensive
    chosen.push_back(best);
    for (int id : candidates[best].second) uncovered.erase(id);
  }
  // Redundancy pruning: drop any chosen block whose matchings are all
  // covered by the other chosen blocks.
  bool pruned = true;
  while (pruned) {
    pruned = false;
    for (size_t k = 0; k < chosen.size(); ++k) {
      std::set<int> others;
      for (size_t j = 0; j < chosen.size(); ++j) {
        if (j == k) continue;
        others.insert(candidates[chosen[j]].second.begin(),
                      candidates[chosen[j]].second.end());
      }
      bool redundant = true;
      for (int id : candidates[chosen[k]].second) {
        if (others.find(id) == others.end()) {
          redundant = false;
          break;
        }
      }
      if (redundant) {
        chosen.erase(chosen.begin() + static_cast<long>(k));
        pruned = true;
        break;
      }
    }
  }

  // Merge overlapping chosen blocks via union-find over conjunct indices.
  std::vector<int> parent(n);
  for (size_t i = 0; i < n; ++i) parent[i] = static_cast<int>(i);
  std::function<int(int)> find = [&](int x) {
    while (parent[static_cast<size_t>(x)] != x) {
      parent[static_cast<size_t>(x)] =
          parent[static_cast<size_t>(parent[static_cast<size_t>(x)])];
      x = parent[static_cast<size_t>(x)];
    }
    return x;
  };
  for (size_t k : chosen) {
    const std::vector<int>& block = candidates[k].first;
    for (size_t i = 1; i < block.size(); ++i) {
      parent[static_cast<size_t>(find(block[i]))] = find(block[0]);
    }
  }
  std::map<int, std::vector<int>> groups;
  std::set<int> in_some_block;
  for (size_t k : chosen) {
    for (int i : candidates[k].first) in_some_block.insert(i);
  }
  for (int i : in_some_block) groups[find(i)].push_back(i);
  for (auto& [root, members] : groups) {
    std::sort(members.begin(), members.end());
    result.blocks.push_back(members);
  }
  // Singleton blocks for conjuncts not in any chosen block.
  for (size_t i = 0; i < n; ++i) {
    if (in_some_block.find(static_cast<int>(i)) == in_some_block.end()) {
      result.blocks.push_back({static_cast<int>(i)});
    }
  }
  // Deterministic order: by smallest conjunct index.
  std::sort(result.blocks.begin(), result.blocks.end());
  if (span.detail()) {
    span.AddAttr("partition", result.ToString());
    span.AddAttr("cross", std::to_string(result.cross_matching_instances));
  }
  return result;
}

}  // namespace qmap
