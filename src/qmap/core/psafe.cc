#include "qmap/core/psafe.h"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <set>

#include "qmap/obs/trace.h"

namespace qmap {
namespace {

// Subset enumeration below is exponential in the number of relevant sets
// and — worse — `1 << n` is undefined once n reaches the mask width.
// Beyond this cap, fall back to the single all-relevant cover: a sound
// over-approximation (larger blocks are always safe, Theorem 6; the
// partition merely loses minimality). 2^20 subset probes is already far
// beyond anything the greedy set cover downstream can use interactively.
constexpr size_t kMaxMinimalCoverSets = 20;

// Enumerates all minimal covers of `target` using the sets in `parts`
// restricted to indices in `relevant`; each cover is a sorted index vector.
// A cover is minimal if no proper subset of it still covers `target`.
void MinimalCovers(const ConstraintSet& target,
                   const std::vector<ConstraintSet>& parts,
                   const std::vector<int>& relevant,
                   std::vector<std::vector<int>>* out) {
  size_t n = relevant.size();
  if (n > kMaxMinimalCoverSets) {
    out->push_back(relevant);  // already sorted ascending by construction
    return;
  }
  // Relevant sets are those intersecting the target, so n is small (≤ |m|
  // in practice); enumerate subsets by increasing popcount.
  std::vector<uint64_t> candidates;
  const uint64_t limit = uint64_t{1} << n;
  for (uint64_t mask = 1; mask < limit; ++mask) {
    ConstraintSet covered;
    for (size_t i = 0; i < n; ++i) {
      if ((mask >> i) & 1) {
        covered = SetUnion(covered, parts[static_cast<size_t>(relevant[i])]);
      }
    }
    if (SetContains(covered, target)) candidates.push_back(mask);
  }
  for (uint64_t mask : candidates) {
    bool minimal = true;
    for (uint64_t other : candidates) {
      if (other != mask && (other & mask) == other) {
        minimal = false;
        break;
      }
    }
    if (minimal) {
      std::vector<int> cover;
      for (size_t i = 0; i < n; ++i) {
        if ((mask >> i) & 1) cover.push_back(relevant[i]);
      }
      out->push_back(std::move(cover));
    }
  }
}

}  // namespace

std::string PSafePartition::ToString() const {
  std::string out = "{";
  for (size_t b = 0; b < blocks.size(); ++b) {
    if (b > 0) out += ", ";
    out += "{";
    for (size_t i = 0; i < blocks[b].size(); ++i) {
      if (i > 0) out += ",";
      out += "C" + std::to_string(blocks[b][i] + 1);
    }
    out += "}";
  }
  return out + "}";
}

PSafePartition PSafe(const std::vector<Query>& conjuncts, const EdnfComputer& ednf,
                     TranslationStats* stats, Trace* trace,
                     uint64_t parent_span) {
  if (stats != nullptr) ++stats->psafe_calls;
  Span span(trace, "psafe", parent_span);
  const size_t n = conjuncts.size();

  // EDNF of each conjunct: De(Či) = Î_i1 ∨ ... ∨ Î_im_i.
  std::vector<std::vector<ConstraintSet>> de;
  de.reserve(n);
  {
    Span ednf_span(trace, "ednf.safety", span.id());
    for (const Query& conjunct : conjuncts) de.push_back(ednf.Ednf(conjunct));
  }

  // Step (1): walk the disjuncts of D(Q̂) = cross product of the De's; find
  // cross-matchings and candidate blocks.
  struct MatchingInstance {
    int id;
    std::vector<std::vector<int>> candidate_blocks;  // conjunct-index sets
  };
  std::vector<MatchingInstance> instances;
  // Candidate block -> ids of the matching instances it (minimally) covers.
  std::map<std::vector<int>, std::set<int>> block_covers;

  // An empty De(Či) means the conjunct has no satisfiable disjunct: the
  // cross product D(Q̂) is empty and there is nothing to walk (indexing
  // de[i][idx[i]] below would otherwise read out of bounds).
  bool product_is_empty = false;
  for (const std::vector<ConstraintSet>& disjuncts : de) {
    if (disjuncts.empty()) {
      product_is_empty = true;
      break;
    }
  }

  std::vector<size_t> idx(n, 0);
  int next_instance_id = 0;
  while (!product_is_empty) {
    if (stats != nullptr) ++stats->ednf_disjuncts_checked;
    // Ingredient sets of this disjunct.
    std::vector<ConstraintSet> parts(n);
    ConstraintSet all;
    for (size_t i = 0; i < n; ++i) {
      parts[i] = de[i][idx[i]];
      all = SetUnion(all, parts[i]);
    }
    // Cross-matchings: potential matchings within the disjunct that are not
    // contained in any single ingredient.
    for (const ConstraintSet& m : ednf.potential_matchings()) {
      if (m.size() < 2) continue;
      if (!SetContains(all, m)) continue;
      bool within_one = false;
      for (size_t i = 0; i < n; ++i) {
        if (SetContains(parts[i], m)) {
          within_one = true;
          break;
        }
      }
      if (within_one) continue;
      if (stats != nullptr) ++stats->cross_matchings;
      MatchingInstance instance;
      instance.id = next_instance_id++;
      std::vector<int> relevant;
      for (size_t i = 0; i < n; ++i) {
        if (SetsIntersect(parts[i], m)) relevant.push_back(static_cast<int>(i));
      }
      MinimalCovers(m, parts, relevant, &instance.candidate_blocks);
      for (const std::vector<int>& block : instance.candidate_blocks) {
        block_covers[block].insert(instance.id);
      }
      instances.push_back(std::move(instance));
    }
    size_t i = 0;
    while (i < n) {
      if (++idx[i] < de[i].size()) break;
      idx[i] = 0;
      ++i;
    }
    if (i == n) break;
  }
  if (stats != nullptr) stats->candidate_blocks += block_covers.size();

  PSafePartition result;
  result.cross_matching_instances = next_instance_id;

  // Step (2): choose an irredundant subset of candidate blocks covering all
  // matching instances (greedy set cover followed by redundancy pruning —
  // the pruning guarantees every chosen block exclusively covers some
  // matching, which is what the minimality proof of Lemma 2 requires).
  std::vector<std::pair<std::vector<int>, std::set<int>>> candidates(
      block_covers.begin(), block_covers.end());
  std::set<int> uncovered;
  for (const MatchingInstance& instance : instances) uncovered.insert(instance.id);
  std::vector<size_t> chosen;
  while (!uncovered.empty()) {
    size_t best = candidates.size();
    size_t best_gain = 0;
    for (size_t c = 0; c < candidates.size(); ++c) {
      size_t gain = 0;
      for (int id : candidates[c].second) gain += uncovered.count(id);
      if (gain > best_gain ||
          (gain == best_gain && gain > 0 && best < candidates.size() &&
           candidates[c].first.size() < candidates[best].first.size())) {
        best_gain = gain;
        best = c;
      }
    }
    if (best == candidates.size() || best_gain == 0) break;  // defensive
    chosen.push_back(best);
    for (int id : candidates[best].second) uncovered.erase(id);
  }
  // Redundancy pruning: drop any chosen block whose matchings are all
  // covered by the other chosen blocks.
  bool pruned = true;
  while (pruned) {
    pruned = false;
    for (size_t k = 0; k < chosen.size(); ++k) {
      std::set<int> others;
      for (size_t j = 0; j < chosen.size(); ++j) {
        if (j == k) continue;
        others.insert(candidates[chosen[j]].second.begin(),
                      candidates[chosen[j]].second.end());
      }
      bool redundant = true;
      for (int id : candidates[chosen[k]].second) {
        if (others.find(id) == others.end()) {
          redundant = false;
          break;
        }
      }
      if (redundant) {
        chosen.erase(chosen.begin() + static_cast<long>(k));
        pruned = true;
        break;
      }
    }
  }

  // Merge overlapping chosen blocks via union-find over conjunct indices.
  std::vector<int> parent(n);
  for (size_t i = 0; i < n; ++i) parent[i] = static_cast<int>(i);
  std::function<int(int)> find = [&](int x) {
    while (parent[static_cast<size_t>(x)] != x) {
      parent[static_cast<size_t>(x)] =
          parent[static_cast<size_t>(parent[static_cast<size_t>(x)])];
      x = parent[static_cast<size_t>(x)];
    }
    return x;
  };
  for (size_t k : chosen) {
    const std::vector<int>& block = candidates[k].first;
    for (size_t i = 1; i < block.size(); ++i) {
      parent[static_cast<size_t>(find(block[i]))] = find(block[0]);
    }
  }
  std::map<int, std::vector<int>> groups;
  std::set<int> in_some_block;
  for (size_t k : chosen) {
    for (int i : candidates[k].first) in_some_block.insert(i);
  }
  for (int i : in_some_block) groups[find(i)].push_back(i);
  for (auto& [root, members] : groups) {
    std::sort(members.begin(), members.end());
    result.blocks.push_back(members);
  }
  // Singleton blocks for conjuncts not in any chosen block.
  for (size_t i = 0; i < n; ++i) {
    if (in_some_block.find(static_cast<int>(i)) == in_some_block.end()) {
      result.blocks.push_back({static_cast<int>(i)});
    }
  }
  // Deterministic order: by smallest conjunct index.
  std::sort(result.blocks.begin(), result.blocks.end());
  if (span.detail()) {
    span.AddAttr("partition", result.ToString());
    span.AddAttr("cross", std::to_string(result.cross_matching_instances));
  }
  return result;
}

}  // namespace qmap
