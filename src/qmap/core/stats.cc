#include "qmap/core/stats.h"

namespace qmap {

void TranslationStats::MergeFrom(const TranslationStats& other) {
  match.pattern_attempts += other.match.pattern_attempts;
  match.matchings_found += other.match.matchings_found;
  scm_calls += other.scm_calls;
  submatchings_removed += other.submatchings_removed;
  matchings_applied += other.matchings_applied;
  dnf_disjuncts += other.dnf_disjuncts;
  disjunctivize_calls += other.disjunctivize_calls;
  psafe_calls += other.psafe_calls;
  ednf_disjuncts_checked += other.ednf_disjuncts_checked;
  cross_matchings += other.cross_matchings;
  candidate_blocks += other.candidate_blocks;
  cache_hits += other.cache_hits;
  cache_misses += other.cache_misses;
  cache_evictions += other.cache_evictions;
  parallel_tasks += other.parallel_tasks;
}

std::string TranslationStats::ToString() const {
  std::string out;
  out += "pattern_attempts=" + std::to_string(match.pattern_attempts);
  out += " matchings_found=" + std::to_string(match.matchings_found);
  out += " scm_calls=" + std::to_string(scm_calls);
  out += " submatchings_removed=" + std::to_string(submatchings_removed);
  out += " matchings_applied=" + std::to_string(matchings_applied);
  out += " dnf_disjuncts=" + std::to_string(dnf_disjuncts);
  out += " disjunctivize_calls=" + std::to_string(disjunctivize_calls);
  out += " psafe_calls=" + std::to_string(psafe_calls);
  out += " ednf_disjuncts_checked=" + std::to_string(ednf_disjuncts_checked);
  out += " cross_matchings=" + std::to_string(cross_matchings);
  out += " candidate_blocks=" + std::to_string(candidate_blocks);
  out += " cache_hits=" + std::to_string(cache_hits);
  out += " cache_misses=" + std::to_string(cache_misses);
  out += " cache_evictions=" + std::to_string(cache_evictions);
  out += " parallel_tasks=" + std::to_string(parallel_tasks);
  return out;
}

}  // namespace qmap
