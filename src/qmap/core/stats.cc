#include "qmap/core/stats.h"

namespace qmap {

void TranslationStats::MergeFrom(const TranslationStats& other) {
#define QMAP_STATS_MERGE(name, expr) expr += other.expr;
  QMAP_TRANSLATION_STATS_FIELDS(QMAP_STATS_MERGE)
#undef QMAP_STATS_MERGE
}

std::string TranslationStats::ToString() const {
  std::string out;
#define QMAP_STATS_PRINT(name, expr)        \
  if (!out.empty()) out += ' ';             \
  out += #name "=" + std::to_string(expr);
  QMAP_TRANSLATION_STATS_FIELDS(QMAP_STATS_PRINT)
#undef QMAP_STATS_PRINT
  return out;
}

std::vector<const char*> TranslationStats::FieldNames() {
  std::vector<const char*> names;
#define QMAP_STATS_NAME(name, expr) names.push_back(#name);
  QMAP_TRANSLATION_STATS_FIELDS(QMAP_STATS_NAME)
#undef QMAP_STATS_NAME
  return names;
}

}  // namespace qmap
