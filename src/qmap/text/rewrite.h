#ifndef QMAP_TEXT_REWRITE_H_
#define QMAP_TEXT_REWRITE_H_

#include "qmap/common/status.h"
#include "qmap/rules/function_registry.h"
#include "qmap/text/text_pattern.h"

namespace qmap {

/// The text-operator capabilities of a target IR engine — the substrate for
/// the general predicate-rewriting procedure the paper delegates to
/// reference [20]: "relax an unsupported constraint into a closest
/// supported version".
struct TextCapabilities {
  bool supports_near = true;
  /// Largest proximity window the target's `near` accepts; a query `near/K`
  /// with K <= max_near_window keeps its proximity, a larger K (or a bare
  /// `near` if default_window exceeds the max) must relax to `and`.
  int max_near_window = 1 << 20;
  /// Window the target applies to a bare `near` (and that this library's
  /// evaluator defaults to).
  int default_window = 3;
  bool supports_and = true;
  bool supports_or = true;
};

/// Rewrites `pattern` into the closest pattern expressible under `caps`,
/// moving *upward* in the subsumption lattice only (the result matches a
/// superset of the documents the original matches):
///
///   near/K  ->  near/K' (K' = smallest supported window >= K)
///           ->  and     (when `near` is unsupported or no window fits)
///   and     ->  or      (when `and` is unsupported but `or` is)
///   or      ->  (error) when `or` is unsupported — a disjunction cannot be
///               relaxed further inside a *single* constraint; the mapping
///               rule must instead emit multiple constraints.
///
/// Also returns an error for and-relaxation when neither `and` nor `or` is
/// supported (single-keyword-only engines), for the same reason.
Result<TextPattern> RelaxText(const TextPattern& pattern,
                              const TextCapabilities& caps);

/// A registry transform implementing RelaxText for a fixed target: takes a
/// string-valued text pattern, returns the rewritten pattern string.
/// Register it per context, e.g.
///   registry->RegisterTransform("RewriteForEngine",
///                               MakeTextRewriteTransform(caps));
FunctionRegistry::Transform MakeTextRewriteTransform(TextCapabilities caps);

/// True if `pattern` is directly expressible under `caps` (no rewriting
/// needed) — lets rule authors mark translations exact when possible.
bool TextExpressible(const TextPattern& pattern, const TextCapabilities& caps);

}  // namespace qmap

#endif  // QMAP_TEXT_REWRITE_H_
