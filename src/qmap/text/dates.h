#ifndef QMAP_TEXT_DATES_H_
#define QMAP_TEXT_DATES_H_

#include "qmap/common/status.h"
#include "qmap/value/value.h"

namespace qmap {

/// Builds a month-granularity date from year/month constants (rule R6's
/// MakeDate: pyear = 1997, pmonth = 5 -> May/97).
Result<Date> MakeDate(int64_t year, int64_t month);

/// Builds a year-granularity date (rule R7: pyear = 1997 -> 97).
Date MakeYearDate(int64_t year);

/// True if `specific` falls *during* the (possibly partial) period `period`:
/// e.g. 12/May/97 during May/97, and May/97 during 97.  A more specific
/// period never contains a less specific one.
bool DateDuring(const Date& specific, const Date& period);

}  // namespace qmap

#endif  // QMAP_TEXT_DATES_H_
