#include "qmap/text/units.h"

namespace qmap {

double InchesToCentimeters(double inches) { return inches * 2.54; }

double CentimetersToInches(double centimeters) { return centimeters / 2.54; }

double DollarsToCents(double dollars) { return dollars * 100.0; }

}  // namespace qmap
