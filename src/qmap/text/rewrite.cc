#include "qmap/text/rewrite.h"

namespace qmap {
namespace {

int EffectiveWindow(const TextPattern& p, const TextCapabilities& caps) {
  return p.window().has_value() ? *p.window() : caps.default_window;
}

}  // namespace

bool TextExpressible(const TextPattern& pattern, const TextCapabilities& caps) {
  switch (pattern.op()) {
    case TextOp::kWord:
      return true;
    case TextOp::kNear:
      if (!caps.supports_near) return false;
      if (EffectiveWindow(pattern, caps) > caps.max_near_window) return false;
      break;
    case TextOp::kAnd:
      if (!caps.supports_and) return false;
      break;
    case TextOp::kOr:
      if (!caps.supports_or) return false;
      break;
  }
  for (const TextPattern& child : pattern.children()) {
    if (!TextExpressible(child, caps)) return false;
  }
  return true;
}

Result<TextPattern> RelaxText(const TextPattern& pattern,
                              const TextCapabilities& caps) {
  if (pattern.op() == TextOp::kWord) return pattern;

  // Relax children first (a nested near may force its parent to stay as-is
  // while the child relaxes independently).
  std::vector<TextPattern> children;
  children.reserve(pattern.children().size());
  for (const TextPattern& child : pattern.children()) {
    Result<TextPattern> relaxed = RelaxText(child, caps);
    if (!relaxed.ok()) return relaxed;
    children.push_back(*std::move(relaxed));
  }

  // Decide this node's connective, moving up the subsumption lattice
  // near ⊑ and ⊑ or until supported.
  TextOp op = pattern.op();
  std::optional<int> window = pattern.window();
  if (op == TextOp::kNear) {
    bool near_ok = caps.supports_near &&
                   EffectiveWindow(pattern, caps) <= caps.max_near_window;
    if (near_ok) {
      // Keep proximity; drop an explicit window equal to the target default
      // (canonical form).
      if (window.has_value() && *window == caps.default_window) window.reset();
    } else {
      op = TextOp::kAnd;
      window.reset();
    }
  }
  if (op == TextOp::kAnd && !caps.supports_and) {
    if (!caps.supports_or) {
      return Status::Unsupported(
          "target supports neither and nor or; pattern '" + pattern.ToString() +
          "' must be split into multiple constraints by the mapping rule");
    }
    op = TextOp::kOr;
  }
  if (op == TextOp::kOr && !caps.supports_or) {
    return Status::Unsupported("target does not support or: '" +
                               pattern.ToString() + "'");
  }

  // Rebuild through the friend access; flatten children whose connective
  // (and window, for near) now equals the parent's — relaxation can turn
  // near-under-and into and-under-and.
  std::vector<TextPattern> flat;
  for (TextPattern& child : children) {
    if (child.op_ == op && (op != TextOp::kNear || child.window_ == window)) {
      for (TextPattern& grandchild : child.children_) {
        flat.push_back(std::move(grandchild));
      }
    } else {
      flat.push_back(std::move(child));
    }
  }
  TextPattern out = pattern;
  out.op_ = op;
  out.window_ = window;
  out.children_ = std::move(flat);
  return out;
}

FunctionRegistry::Transform MakeTextRewriteTransform(TextCapabilities caps) {
  return [caps](const std::vector<Term>& args) -> Result<Term> {
    if (args.size() != 1 || !TermIsValue(args[0]) ||
        TermValue(args[0]).kind() != ValueKind::kString) {
      return Status::InvalidArgument("text rewrite expects one string pattern");
    }
    Result<TextPattern> pattern = TextPattern::Parse(TermValue(args[0]).AsString());
    if (!pattern.ok()) return pattern.status();
    Result<TextPattern> relaxed = RelaxText(*pattern, caps);
    if (!relaxed.ok()) return relaxed.status();
    return Term(Value::Str(relaxed->ToString()));
  };
}

}  // namespace qmap
