#include "qmap/text/text_pattern.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

#include "qmap/common/strings.h"

namespace qmap {
namespace {

// Returns the sorted token positions of `word` within `tokens`.
std::vector<int> Positions(const std::vector<std::string>& tokens,
                           const std::string& word) {
  std::vector<int> out;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i] == word) out.push_back(static_cast<int>(i));
  }
  return out;
}

// Collects the positions at which a subpattern is "anchored" for proximity
// checks. For a word it is the word's occurrences; for a composite pattern it
// is the union of its leaves' occurrences (a simple but standard treatment).
void AnchorPositions(const TextPattern& p, const std::vector<std::string>& tokens,
                     std::vector<int>* out) {
  if (p.op() == TextOp::kWord) {
    for (int pos : Positions(tokens, ToLower(p.word()))) out->push_back(pos);
    return;
  }
  for (const TextPattern& child : p.children()) AnchorPositions(child, tokens, out);
}

bool MatchesTokens(const TextPattern& p, const std::vector<std::string>& tokens,
                   int near_window) {
  // An explicit per-node window overrides the evaluation default.
  if (p.op() == TextOp::kNear && p.window().has_value()) {
    near_window = *p.window();
  }
  switch (p.op()) {
    case TextOp::kWord:
      return !Positions(tokens, ToLower(p.word())).empty();
    case TextOp::kAnd:
      return std::all_of(p.children().begin(), p.children().end(),
                         [&](const TextPattern& c) {
                           return MatchesTokens(c, tokens, near_window);
                         });
    case TextOp::kOr:
      return std::any_of(p.children().begin(), p.children().end(),
                         [&](const TextPattern& c) {
                           return MatchesTokens(c, tokens, near_window);
                         });
    case TextOp::kNear: {
      // Every child must match, and there must exist one anchor position per
      // child such that max - min <= near_window.
      std::vector<std::vector<int>> anchors;
      for (const TextPattern& child : p.children()) {
        if (!MatchesTokens(child, tokens, near_window)) return false;
        std::vector<int> pos;
        AnchorPositions(child, tokens, &pos);
        if (pos.empty()) return false;
        std::sort(pos.begin(), pos.end());
        anchors.push_back(std::move(pos));
      }
      // Children counts are tiny (2-3); a simple recursive product search.
      std::vector<int> chosen(anchors.size(), 0);
      // Iterate over the cartesian product of anchor choices.
      while (true) {
        int lo = anchors[0][chosen[0]];
        int hi = lo;
        for (size_t i = 1; i < anchors.size(); ++i) {
          lo = std::min(lo, anchors[i][chosen[i]]);
          hi = std::max(hi, anchors[i][chosen[i]]);
        }
        if (hi - lo <= near_window) return true;
        size_t i = 0;
        while (i < chosen.size()) {
          if (++chosen[i] < static_cast<int>(anchors[i].size())) break;
          chosen[i] = 0;
          ++i;
        }
        if (i == chosen.size()) return false;
      }
    }
  }
  return false;
}

const char* OpName(TextOp op) {
  switch (op) {
    case TextOp::kNear:
      return "near";
    case TextOp::kAnd:
      return "and";
    case TextOp::kOr:
      return "or";
    case TextOp::kWord:
      break;
  }
  return "?";
}

}  // namespace

TextPattern TextPattern::Word(std::string word) {
  TextPattern p;
  p.op_ = TextOp::kWord;
  p.word_ = std::move(word);
  return p;
}

Result<TextPattern> TextPattern::Parse(std::string_view text) {
  // Grammar: word ( "(" connective ")" word )*
  // Words are maximal runs not containing '('.
  std::vector<TextPattern> operands;
  struct Connective {
    TextOp op;
    std::optional<int> window;
  };
  std::vector<Connective> ops;
  size_t i = 0;
  while (i < text.size()) {
    // Skip leading whitespace before an operand.
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    if (i < text.size() && text[i] == '[') {
      // Bracketed subpattern: "[a(and)b](or)c".
      int depth = 0;
      size_t close = i;
      for (; close < text.size(); ++close) {
        if (text[close] == '[') ++depth;
        if (text[close] == ']' && --depth == 0) break;
      }
      if (close >= text.size()) {
        return Status::ParseError("unbalanced '[' in text pattern");
      }
      Result<TextPattern> inner = Parse(text.substr(i + 1, close - i - 1));
      if (!inner.ok()) return inner;
      operands.push_back(*std::move(inner));
      i = close + 1;
      while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
      if (i >= text.size()) break;
      if (text[i] != '(') {
        return Status::ParseError("expected connective after ']' in '" +
                                  std::string(text) + "'");
      }
      size_t conn_close = text.find(')', i);
      if (conn_close == std::string_view::npos) {
        return Status::ParseError("unbalanced '(' in text pattern");
      }
      // Fall through to connective handling below with open = i.
      size_t open = i;
      std::string op_name =
          ToLower(StripWhitespace(text.substr(open + 1, conn_close - open - 1)));
      Connective connective;
      if (op_name == "near") {
        connective.op = TextOp::kNear;
      } else if (op_name.rfind("near/", 0) == 0) {
        connective.op = TextOp::kNear;
        char* end = nullptr;
        long window = std::strtol(op_name.c_str() + 5, &end, 10);
        if (end == nullptr || *end != '\0' || window < 0) {
          return Status::ParseError("malformed near window: '" + op_name + "'");
        }
        connective.window = static_cast<int>(window);
      } else if (op_name == "and" || op_name == "^") {
        connective.op = TextOp::kAnd;
      } else if (op_name == "or" || op_name == "v") {
        connective.op = TextOp::kOr;
      } else {
        return Status::ParseError("unknown text connective: '" + op_name + "'");
      }
      ops.push_back(connective);
      i = conn_close + 1;
      continue;
    }
    size_t open = text.find('(', i);
    size_t bracket = text.find('[', i);
    size_t stop = std::min(open, bracket);
    std::string_view word_part =
        StripWhitespace(text.substr(i, stop == std::string_view::npos
                                           ? std::string_view::npos
                                           : stop - i));
    if (word_part.empty()) {
      return Status::ParseError("empty word in text pattern: '" +
                                std::string(text) + "'");
    }
    if (bracket != std::string_view::npos && bracket < open) {
      return Status::ParseError("unexpected '[' after word in '" +
                                std::string(text) + "'");
    }
    operands.push_back(Word(std::string(word_part)));
    if (open == std::string_view::npos) break;
    size_t close = text.find(')', open);
    if (close == std::string_view::npos) {
      return Status::ParseError("unbalanced '(' in text pattern");
    }
    std::string op_name = ToLower(StripWhitespace(text.substr(open + 1, close - open - 1)));
    Connective connective;
    if (op_name == "near") {
      connective.op = TextOp::kNear;
    } else if (op_name.rfind("near/", 0) == 0) {
      connective.op = TextOp::kNear;
      char* end = nullptr;
      long window = std::strtol(op_name.c_str() + 5, &end, 10);
      if (end == nullptr || *end != '\0' || window < 0) {
        return Status::ParseError("malformed near window: '" + op_name + "'");
      }
      connective.window = static_cast<int>(window);
    } else if (op_name == "and" || op_name == "^") {
      connective.op = TextOp::kAnd;
    } else if (op_name == "or" || op_name == "v") {
      connective.op = TextOp::kOr;
    } else {
      return Status::ParseError("unknown text connective: '" + op_name + "'");
    }
    ops.push_back(connective);
    i = close + 1;
  }
  if (operands.empty()) return Status::ParseError("empty text pattern");
  if (operands.size() != ops.size() + 1) {
    return Status::ParseError("trailing connective in text pattern");
  }
  // Left-associative fold; merge runs of the same connective (and, for
  // near, the same window) into n-ary nodes.
  TextPattern acc = operands[0];
  for (size_t k = 0; k < ops.size(); ++k) {
    if (acc.op_ == ops[k].op && (ops[k].op != TextOp::kNear || acc.window_ == ops[k].window)) {
      acc.children_.push_back(operands[k + 1]);
    } else {
      TextPattern combined;
      combined.op_ = ops[k].op;
      combined.window_ = ops[k].window;
      combined.children_ = {acc, operands[k + 1]};
      acc = std::move(combined);
    }
  }
  return acc;
}

bool TextPattern::Matches(std::string_view document, int near_window) const {
  return MatchesTokens(*this, TokenizeWords(document), near_window);
}

TextPattern TextPattern::RelaxNear() const {
  if (op_ == TextOp::kWord) return *this;
  TextPattern out;
  out.op_ = op_ == TextOp::kNear ? TextOp::kAnd : op_;
  for (const TextPattern& child : children_) out.children_.push_back(child.RelaxNear());
  return out;
}

bool TextPattern::UsesNear() const {
  if (op_ == TextOp::kNear) return true;
  return std::any_of(children_.begin(), children_.end(),
                     [](const TextPattern& c) { return c.UsesNear(); });
}

std::vector<std::string> TextPattern::Words() const {
  if (op_ == TextOp::kWord) return {word_};
  std::vector<std::string> out;
  for (const TextPattern& child : children_) {
    std::vector<std::string> words = child.Words();
    out.insert(out.end(), words.begin(), words.end());
  }
  return out;
}

std::string TextPattern::ToString() const {
  if (op_ == TextOp::kWord) return word_;
  std::string name = OpName(op_);
  if (op_ == TextOp::kNear && window_.has_value()) {
    name += "/" + std::to_string(*window_);
  }
  std::string sep = "(" + name + ")";
  std::string out;
  for (size_t i = 0; i < children_.size(); ++i) {
    if (i > 0) out += sep;
    const TextPattern& child = children_[i];
    if (child.op_ == TextOp::kWord) {
      out += child.word_;
    } else {
      out += "[" + child.ToString() + "]";  // nested groups are rare
    }
  }
  return out;
}

bool operator==(const TextPattern& a, const TextPattern& b) {
  return a.op_ == b.op_ && a.word_ == b.word_ && a.window_ == b.window_ &&
         a.children_ == b.children_;
}

}  // namespace qmap
