#ifndef QMAP_TEXT_TEXT_PATTERN_H_
#define QMAP_TEXT_TEXT_PATTERN_H_

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "qmap/common/status.h"

namespace qmap {

/// Connectives of the IR text-pattern language used by `contains` operands,
/// e.g. "java(near)jdk" or "data(and)mining". `near` is a proximity
/// predicate; `and`/`or` are plain Boolean keyword predicates.
enum class TextOp { kWord, kNear, kAnd, kOr };

/// Parse tree of a text pattern. Connectives are n-ary; leaves are words.
///
/// This is the substrate for the predicate-rewriting step the paper delegates
/// to reference [20]: unsupported proximity operators are *relaxed* to the
/// closest supported Boolean form (`near` -> `and`), which preserves
/// subsumption (every string matching the `near` form matches the `and`
/// form, Example 3).
class TextPattern {
 public:
  /// Parses patterns like "java", "java(near)jdk", "a(and)b(and)c".
  /// Mixed connectives associate left: "a(near)b(and)c" = (a near b) and c.
  /// A proximity window may be given explicitly: "java(near/5)jdk" requires
  /// the words within 5 positions; bare "(near)" uses the evaluation
  /// default.
  static Result<TextPattern> Parse(std::string_view text);

  /// Single-word pattern.
  static TextPattern Word(std::string word);

  TextOp op() const { return op_; }
  const std::string& word() const { return word_; }
  const std::vector<TextPattern>& children() const { return children_; }
  /// Explicit proximity window of a kNear node, if one was given.
  const std::optional<int>& window() const { return window_; }

  /// True if `document` satisfies the pattern. Words are matched on
  /// lower-cased alphanumeric tokens; `near` requires the children's word
  /// occurrences to fall within `near_window` positions of one another.
  bool Matches(std::string_view document, int near_window = 3) const;

  /// Relaxes every `near` connective to `and`. The result subsumes *this.
  TextPattern RelaxNear() const;

  /// True if any `near` connective occurs in the pattern.
  bool UsesNear() const;

  /// All leaf words, left to right.
  std::vector<std::string> Words() const;

  /// Canonical rendering, e.g. "java(near)jdk", "data(and)mining".
  std::string ToString() const;

  friend bool operator==(const TextPattern& a, const TextPattern& b);

 private:
  TextPattern() = default;

  TextOp op_ = TextOp::kWord;
  std::string word_;                   // valid when op_ == kWord
  std::vector<TextPattern> children_;  // valid otherwise
  std::optional<int> window_;          // explicit window of a kNear node

  friend Result<TextPattern> RelaxText(const TextPattern& pattern,
                                       const struct TextCapabilities& caps);
};

}  // namespace qmap

#endif  // QMAP_TEXT_TEXT_PATTERN_H_
