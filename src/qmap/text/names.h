#ifndef QMAP_TEXT_NAMES_H_
#define QMAP_TEXT_NAMES_H_

#include <string>
#include <string_view>
#include <utility>

namespace qmap {

/// Human-name format conversions used by the bookstore mapping rules
/// (Examples 1-2 and Figure 3).  Amazon's `author` attribute stores
/// "LastName, FirstName" (or "LastName" alone when the first name is not
/// known).

/// Composes the Amazon author format: ("Clancy", "Tom") -> "Clancy, Tom".
std::string LnFnToName(std::string_view ln, std::string_view fn);

/// Decomposes an author name: "Clancy, Tom" -> {"Clancy", "Tom"};
/// "Clancy" -> {"Clancy", ""}.  This is the conversion function NameLnFn of
/// Section 2 (the conceptual relation used in view definitions).
std::pair<std::string, std::string> NameLnFn(std::string_view name);

}  // namespace qmap

#endif  // QMAP_TEXT_NAMES_H_
