#include "qmap/text/dates.h"

namespace qmap {

Result<Date> MakeDate(int64_t year, int64_t month) {
  if (month < 1 || month > 12) {
    return Status::InvalidArgument("month out of range: " + std::to_string(month));
  }
  Date d;
  d.year = static_cast<int>(year);
  d.month = static_cast<int>(month);
  return d;
}

Date MakeYearDate(int64_t year) {
  Date d;
  d.year = static_cast<int>(year);
  return d;
}

bool DateDuring(const Date& specific, const Date& period) {
  if (specific.year != period.year) return false;
  if (period.month.has_value()) {
    if (!specific.month.has_value() || *specific.month != *period.month) return false;
  }
  if (period.day.has_value()) {
    if (!specific.day.has_value() || *specific.day != *period.day) return false;
  }
  return true;
}

}  // namespace qmap
