#include "qmap/text/names.h"

#include "qmap/common/strings.h"

namespace qmap {

std::string LnFnToName(std::string_view ln, std::string_view fn) {
  if (fn.empty()) return std::string(ln);
  return std::string(ln) + ", " + std::string(fn);
}

std::pair<std::string, std::string> NameLnFn(std::string_view name) {
  size_t comma = name.find(',');
  if (comma == std::string_view::npos) {
    return {std::string(StripWhitespace(name)), ""};
  }
  return {std::string(StripWhitespace(name.substr(0, comma))),
          std::string(StripWhitespace(name.substr(comma + 1)))};
}

}  // namespace qmap
