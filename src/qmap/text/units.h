#ifndef QMAP_TEXT_UNITS_H_
#define QMAP_TEXT_UNITS_H_

namespace qmap {

/// Unit conversions of the kind the paper cites as data-format heterogeneity
/// ("3 inches to 7.62 centimeters", Section 1).

double InchesToCentimeters(double inches);
double CentimetersToInches(double centimeters);
double DollarsToCents(double dollars);

}  // namespace qmap

#endif  // QMAP_TEXT_UNITS_H_
