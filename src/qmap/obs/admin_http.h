#ifndef QMAP_OBS_ADMIN_HTTP_H_
#define QMAP_OBS_ADMIN_HTTP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>

#include "qmap/common/status.h"
#include "qmap/net/event_loop.h"
#include "qmap/net/tcp_listener.h"

namespace qmap {

struct AdminHttpOptions {
  /// Interface to bind. The default is loopback-only: the admin plane
  /// exposes internals (queries, latencies, config) and is not meant to be
  /// reachable from off the host.
  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (read it back via port()).
  uint16_t port = 0;
  /// Concurrent connection bound. Excess connections are accepted and
  /// immediately closed (counted in stats().rejected_connections).
  int max_connections = 32;
  /// Request-head size limit; longer requests get 431 and a close.
  size_t max_request_bytes = 8192;
  /// Per-connection wall-clock budget from accept to response completion;
  /// connections that idle past it are dropped.
  int io_timeout_ms = 5000;
  /// poll() tick used to re-check the stop flag and connection deadlines.
  int poll_interval_ms = 50;
};

/// What a handler returns. `content_type` defaults to plain text; handlers
/// serving JSON or Prometheus expositions override it.
struct AdminResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// Handler for one exact path. `query` is the raw part after '?' (no URL
/// decoding — admin query strings are simple key=value pairs).
using AdminHandler = std::function<AdminResponse(std::string_view query)>;

/// Counters describing server activity since Start().
struct AdminHttpStats {
  uint64_t accepted = 0;              // connections accepted and served
  uint64_t served = 0;                // responses fully written
  uint64_t rejected_connections = 0;  // closed immediately: at max_connections
  uint64_t bad_requests = 0;          // unparsable request heads (400/431/405)
  uint64_t not_found = 0;             // 404s
  uint64_t timeouts = 0;              // connections dropped at io_timeout_ms
};

/// A minimal, dependency-free HTTP/1.1 server for the admin/introspection
/// plane: /healthz, /varz, /metrics, /tracez and friends. The socket
/// plumbing — non-blocking poll() loop, self-pipe wakeup, connection table,
/// deadlines — lives in the shared qmap/net EventLoop; this class is just
/// the HTTP framing and routing layered on top of it.
///
/// Scope is deliberately narrow — this is an *admin* server, not a web
/// server: GET/HEAD only, "Connection: close" on every response, no TLS, no
/// keep-alive, no chunked encoding, bounded request size. Handlers run on
/// the loop thread, so they must be fast and must not block; every built-in
/// qmap handler only snapshots in-memory state.
///
/// Lifecycle: register handlers with Handle() (not thread-safe; before
/// Start() only), then Start(), then Stop() (idempotent; also run by the
/// destructor). Stop() joins the loop thread, so it is safe to destroy the
/// handler targets afterwards.
class AdminHttpServer : private ConnHandler {
 public:
  explicit AdminHttpServer(AdminHttpOptions options = {});
  ~AdminHttpServer() override;

  AdminHttpServer(const AdminHttpServer&) = delete;
  AdminHttpServer& operator=(const AdminHttpServer&) = delete;

  /// Registers `handler` for exact-match `path` (e.g. "/healthz"). Must be
  /// called before Start().
  void Handle(std::string path, AdminHandler handler);

  /// Binds, listens and spawns the serving thread. Fails (without spawning)
  /// if the socket can't be bound or the server is already running.
  Status Start();

  /// Stops the serving thread and closes all sockets. Idempotent.
  void Stop();

  bool running() const { return loop_.running(); }

  /// The bound TCP port (useful with options.port = 0). 0 until Start().
  uint16_t port() const { return port_; }

  const AdminHttpOptions& options() const { return options_; }

  AdminHttpStats stats() const;

 private:
  void OnAccept(Conn& conn) override;
  void OnData(Conn& conn) override;
  void OnClose(Conn& conn) override;
  void Respond(Conn& conn);

  const AdminHttpOptions options_;
  std::map<std::string, AdminHandler, std::less<>> handlers_;

  TcpListener listener_;
  EventLoop loop_;
  uint16_t port_ = 0;

  std::atomic<uint64_t> bad_requests_{0};
  std::atomic<uint64_t> not_found_{0};
};

}  // namespace qmap

#endif  // QMAP_OBS_ADMIN_HTTP_H_
