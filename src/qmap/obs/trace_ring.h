#ifndef QMAP_OBS_TRACE_RING_H_
#define QMAP_OBS_TRACE_RING_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string_view>
#include <vector>

#include "qmap/obs/trace.h"

namespace qmap {

struct TraceRingOptions {
  /// Master switch. When off the service skips trace construction for
  /// unsampled queries entirely — ShouldSample() is never consulted.
  bool enabled = false;
  /// How many head-sampled traces to retain (oldest evicted first).
  size_t capacity = 64;
  /// How many latency outliers to retain. Outliers live in their own ring so
  /// a burst of ordinary sampled traffic can never evict the interesting
  /// slow ones.
  size_t outlier_capacity = 32;
  /// Head sampling rate: every Nth query (per ShouldSample() call) is
  /// traced and retained. 1 = every query. Must be >= 1.
  uint32_t sample_every = 16;
};

/// Point-in-time counters describing the ring's behaviour since creation.
struct TraceRingStats {
  uint64_t seen = 0;      // ShouldSample() calls (queries considered)
  uint64_t sampled = 0;   // traces retained via head sampling
  uint64_t outliers = 0;  // traces retained via the outlier path
  uint64_t evicted = 0;   // traces dropped to respect the capacity bounds
};

/// Always-on sampled trace retention: a bounded ring of completed
/// ParsedTraces. Two retention paths feed it:
///
///   - head sampling: every `sample_every`-th query is traced regardless of
///     how it turns out, giving an unbiased picture of normal traffic;
///   - outlier retention: queries the service classifies as slow (the
///     slow-query-log criteria) are *always* retained, in a separate ring,
///     so p99 investigations have concrete traces to look at even when the
///     sampler happened to skip them.
///
/// The hot path touches one relaxed atomic (ShouldSample). Insert copies the
/// finished trace under a short mutex — it runs only for the sampled /
/// outlier minority. Snapshots copy out, so readers (the admin server's
/// /tracez) never block the insert path for long.
class TraceRing {
 public:
  explicit TraceRing(TraceRingOptions options = {});

  const TraceRingOptions& options() const { return options_; }

  /// Decides head sampling for the next query; cheap enough to call per
  /// query. Counts the query as seen either way.
  bool ShouldSample();

  /// Retains a completed trace. `outlier` routes it to the outlier ring
  /// (guaranteed retention, own capacity); otherwise it joins the sampled
  /// ring. Oldest entry is evicted when the target ring is full.
  void Insert(ParsedTrace trace, bool outlier);

  /// Newest-first copies of the retained traces.
  std::vector<ParsedTrace> SampledSnapshot() const;
  std::vector<ParsedTrace> OutlierSnapshot() const;

  /// Looks a retained trace up by id (e.g. "qt17"), searching outliers then
  /// sampled, newest first. Empty when the trace was never retained or has
  /// been evicted since.
  std::optional<ParsedTrace> Find(std::string_view trace_id) const;

  TraceRingStats stats() const;

 private:
  void InsertLocked(std::deque<ParsedTrace>& ring, size_t capacity,
                    ParsedTrace&& trace);

  const TraceRingOptions options_;
  std::atomic<uint64_t> seen_{0};
  std::atomic<uint64_t> sampled_{0};
  std::atomic<uint64_t> outliers_{0};
  std::atomic<uint64_t> evicted_{0};
  mutable std::mutex mu_;
  std::deque<ParsedTrace> sampled_ring_;  // guarded by mu_, oldest at front
  std::deque<ParsedTrace> outlier_ring_;  // guarded by mu_, oldest at front
};

}  // namespace qmap

#endif  // QMAP_OBS_TRACE_RING_H_
