#include "qmap/obs/admin_http.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>
#include <vector>

namespace qmap {
namespace {

using SteadyClock = std::chrono::steady_clock;

bool SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 431: return "Request Header Fields Too Large";
    case 503: return "Service Unavailable";
    default: return "Internal Server Error";
  }
}

std::string RenderResponse(const AdminResponse& response, bool head_only) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    ReasonPhrase(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  if (!head_only) out += response.body;
  return out;
}

/// One accepted connection: reading the request head, then writing the
/// rendered response, then close. No keep-alive.
struct Connection {
  int fd = -1;
  bool writing = false;
  std::string in;
  std::string out;
  size_t out_offset = 0;
  SteadyClock::time_point deadline;
};

}  // namespace

AdminHttpServer::AdminHttpServer(AdminHttpOptions options)
    : options_(std::move(options)) {}

AdminHttpServer::~AdminHttpServer() { Stop(); }

void AdminHttpServer::Handle(std::string path, AdminHandler handler) {
  handlers_[std::move(path)] = std::move(handler);
}

Status AdminHttpServer::Start() {
  if (running_.load(std::memory_order_acquire) || thread_.joinable()) {
    return Status::InvalidArgument("admin server: already started");
  }
  stop_.store(false, std::memory_order_release);

  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("admin server: socket: ") +
                            std::strerror(errno));
  }
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) != 1) {
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("admin server: bad bind address '" +
                                   options_.bind_address + "'");
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status status = Status::Unavailable(std::string("admin server: bind ") +
                                        options_.bind_address + ":" +
                                        std::to_string(options_.port) + ": " +
                                        std::strerror(errno));
    close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (listen(listen_fd_, 16) != 0) {
    Status status = Status::Internal(std::string("admin server: listen: ") +
                                     std::strerror(errno));
    close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                  &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  }
  if (!SetNonBlocking(listen_fd_) || pipe(wake_fd_) != 0) {
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("admin server: failed to set up event loop fds");
  }
  SetNonBlocking(wake_fd_[0]);
  SetNonBlocking(wake_fd_[1]);

  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { Serve(); });
  return Status::Ok();
}

void AdminHttpServer::Stop() {
  stop_.store(true, std::memory_order_release);
  if (wake_fd_[1] >= 0) {
    char byte = 'x';
    // Best-effort wake; the poll tick bounds the wait even if the pipe is full.
    [[maybe_unused]] ssize_t n = write(wake_fd_[1], &byte, 1);
  }
  if (thread_.joinable()) thread_.join();
  running_.store(false, std::memory_order_release);
  for (int* fd : {&listen_fd_, &wake_fd_[0], &wake_fd_[1]}) {
    if (*fd >= 0) {
      close(*fd);
      *fd = -1;
    }
  }
}

AdminHttpStats AdminHttpServer::stats() const {
  AdminHttpStats out;
  out.accepted = accepted_.load(std::memory_order_relaxed);
  out.served = served_.load(std::memory_order_relaxed);
  out.rejected_connections = rejected_.load(std::memory_order_relaxed);
  out.bad_requests = bad_requests_.load(std::memory_order_relaxed);
  out.not_found = not_found_.load(std::memory_order_relaxed);
  out.timeouts = timeouts_.load(std::memory_order_relaxed);
  return out;
}

void AdminHttpServer::Serve() {
  std::vector<Connection> conns;
  const auto close_conn = [&](size_t i) {
    close(conns[i].fd);
    conns.erase(conns.begin() + static_cast<ptrdiff_t>(i));
  };

  // Builds the response for a complete request head and flips the
  // connection into the writing state.
  const auto respond = [&](Connection& conn) {
    size_t line_end = conn.in.find("\r\n");
    std::string_view line(conn.in.data(), line_end);
    size_t method_end = line.find(' ');
    size_t target_end =
        method_end == std::string_view::npos ? std::string_view::npos
                                             : line.find(' ', method_end + 1);
    AdminResponse response;
    bool head_only = false;
    if (method_end == std::string_view::npos ||
        target_end == std::string_view::npos) {
      bad_requests_.fetch_add(1, std::memory_order_relaxed);
      response.status = 400;
      response.body = "bad request\n";
    } else {
      std::string_view method = line.substr(0, method_end);
      std::string_view target =
          line.substr(method_end + 1, target_end - method_end - 1);
      std::string_view path = target;
      std::string_view query;
      if (size_t q = target.find('?'); q != std::string_view::npos) {
        path = target.substr(0, q);
        query = target.substr(q + 1);
      }
      head_only = method == "HEAD";
      if (method != "GET" && method != "HEAD") {
        bad_requests_.fetch_add(1, std::memory_order_relaxed);
        response.status = 405;
        response.body = "only GET and HEAD are supported\n";
      } else if (auto it = handlers_.find(path); it == handlers_.end()) {
        not_found_.fetch_add(1, std::memory_order_relaxed);
        response.status = 404;
        response.body = "no such endpoint: " + std::string(path) + "\n";
      } else {
        response = it->second(query);
      }
    }
    conn.out = RenderResponse(response, head_only);
    conn.out_offset = 0;
    conn.in.clear();
    conn.writing = true;
  };

  while (!stop_.load(std::memory_order_acquire)) {
    std::vector<pollfd> fds;
    fds.push_back({wake_fd_[0], POLLIN, 0});
    bool room = conns.size() <
                static_cast<size_t>(options_.max_connections < 0
                                        ? 0
                                        : options_.max_connections);
    // When full, stop polling the listener: the kernel queues (then we
    // accept-and-close below once there is room or on the next tick).
    fds.push_back({listen_fd_, static_cast<short>(room ? POLLIN : 0), 0});
    for (const Connection& conn : conns) {
      fds.push_back(
          {conn.fd, static_cast<short>(conn.writing ? POLLOUT : POLLIN), 0});
    }

    int rc = poll(fds.data(), fds.size(), options_.poll_interval_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;  // unrecoverable poll failure; shut the plane down
    }
    if (stop_.load(std::memory_order_acquire)) break;

    if ((fds[0].revents & POLLIN) != 0) {
      char buf[64];
      while (read(wake_fd_[0], buf, sizeof(buf)) > 0) {
      }
    }

    // Only the connections that were present at poll() time have pollfd
    // entries; anything accepted below waits for the next tick.
    const size_t num_polled = conns.size();

    // Accept as many as there is room for; close the rest immediately so
    // a misbehaving client can't starve the plane.
    if ((fds[1].revents & POLLIN) != 0) {
      while (true) {
        int fd = accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) break;
        if (conns.size() >=
                static_cast<size_t>(options_.max_connections) ||
            !SetNonBlocking(fd)) {
          rejected_.fetch_add(1, std::memory_order_relaxed);
          close(fd);
          continue;
        }
        accepted_.fetch_add(1, std::memory_order_relaxed);
        Connection conn;
        conn.fd = fd;
        conn.deadline = SteadyClock::now() +
                        std::chrono::milliseconds(options_.io_timeout_ms);
        conns.push_back(std::move(conn));
      }
    }

    const auto now = SteadyClock::now();
    for (size_t i = num_polled; i-- > 0;) {
      Connection& conn = conns[i];
      // fds layout: [wake, listener, conns[0] ...].
      const pollfd& pfd = fds[i + 2];
      if ((pfd.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0 &&
          !conn.writing) {
        close_conn(i);
        continue;
      }
      if (now >= conn.deadline) {
        timeouts_.fetch_add(1, std::memory_order_relaxed);
        close_conn(i);
        continue;
      }
      if (!conn.writing && (pfd.revents & POLLIN) != 0) {
        char buf[2048];
        while (true) {
          ssize_t n = read(conn.fd, buf, sizeof(buf));
          if (n > 0) {
            conn.in.append(buf, static_cast<size_t>(n));
            continue;
          }
          if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
          if (n < 0 && errno == EINTR) continue;
          // EOF or hard error before a complete request head.
          conn.fd = -conn.fd;  // mark; closed just below
          break;
        }
        if (conn.fd < 0) {
          conn.fd = -conn.fd;
          close_conn(i);
          continue;
        }
        if (conn.in.size() > options_.max_request_bytes) {
          bad_requests_.fetch_add(1, std::memory_order_relaxed);
          AdminResponse response;
          response.status = 431;
          response.body = "request too large\n";
          conn.out = RenderResponse(response, /*head_only=*/false);
          conn.out_offset = 0;
          conn.in.clear();
          conn.writing = true;
        } else if (conn.in.find("\r\n\r\n") != std::string::npos) {
          respond(conn);
        }
      }
      if (conn.writing) {
        while (conn.out_offset < conn.out.size()) {
          ssize_t n = send(conn.fd, conn.out.data() + conn.out_offset,
                           conn.out.size() - conn.out_offset, MSG_NOSIGNAL);
          if (n > 0) {
            conn.out_offset += static_cast<size_t>(n);
            continue;
          }
          if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
          if (n < 0 && errno == EINTR) continue;
          conn.out_offset = conn.out.size();  // peer gone; give up
          break;
        }
        if (conn.out_offset >= conn.out.size()) {
          served_.fetch_add(1, std::memory_order_relaxed);
          close_conn(i);
        }
      }
    }
  }

  for (const Connection& conn : conns) close(conn.fd);
}

}  // namespace qmap
