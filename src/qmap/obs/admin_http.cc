#include "qmap/obs/admin_http.h"

#include <utility>

namespace qmap {
namespace {

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 431: return "Request Header Fields Too Large";
    case 503: return "Service Unavailable";
    default: return "Internal Server Error";
  }
}

std::string RenderResponse(const AdminResponse& response, bool head_only) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    ReasonPhrase(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  if (!head_only) out += response.body;
  return out;
}

}  // namespace

AdminHttpServer::AdminHttpServer(AdminHttpOptions options)
    : options_(std::move(options)),
      loop_(EventLoopOptions{options_.max_connections,
                             options_.poll_interval_ms}) {}

AdminHttpServer::~AdminHttpServer() { Stop(); }

void AdminHttpServer::Handle(std::string path, AdminHandler handler) {
  handlers_[std::move(path)] = std::move(handler);
}

Status AdminHttpServer::Start() {
  if (loop_.running()) {
    return Status::InvalidArgument("admin server: already started");
  }
  Status listen =
      listener_.Listen(options_.bind_address, options_.port, /*backlog=*/16);
  if (!listen.ok()) return listen;
  port_ = listener_.port();
  Status started = loop_.Start(&listener_, this);
  if (!started.ok()) listener_.Close();
  return started;
}

void AdminHttpServer::Stop() {
  loop_.Stop();
  listener_.Close();
}

AdminHttpStats AdminHttpServer::stats() const {
  EventLoopStats loop = loop_.stats();
  AdminHttpStats out;
  out.accepted = loop.accepted;
  // Every admin response closes after flushing, so the loop's flushed-close
  // count is exactly "responses fully written" (including the give-up path
  // where the peer vanished mid-write — matching the historical counter).
  out.served = loop.flushed_closes;
  out.rejected_connections = loop.rejected;
  out.timeouts = loop.timeouts;
  out.bad_requests = bad_requests_.load(std::memory_order_relaxed);
  out.not_found = not_found_.load(std::memory_order_relaxed);
  return out;
}

void AdminHttpServer::OnAccept(Conn& conn) {
  conn.SetDeadlineMs(options_.io_timeout_ms);
}

void AdminHttpServer::OnClose(Conn& conn) { (void)conn; }

void AdminHttpServer::OnData(Conn& conn) {
  if (conn.in().size() > options_.max_request_bytes) {
    bad_requests_.fetch_add(1, std::memory_order_relaxed);
    AdminResponse response;
    response.status = 431;
    response.body = "request too large\n";
    conn.in().clear();
    conn.Write(RenderResponse(response, /*head_only=*/false));
    conn.CloseAfterFlush();
    return;
  }
  if (conn.in().find("\r\n\r\n") != std::string::npos) Respond(conn);
}

/// Builds the response for a complete request head and flips the connection
/// into the write-then-close state. No keep-alive.
void AdminHttpServer::Respond(Conn& conn) {
  const std::string& in = conn.in();
  size_t line_end = in.find("\r\n");
  std::string_view line(in.data(), line_end);
  size_t method_end = line.find(' ');
  size_t target_end = method_end == std::string_view::npos
                          ? std::string_view::npos
                          : line.find(' ', method_end + 1);
  AdminResponse response;
  bool head_only = false;
  if (method_end == std::string_view::npos ||
      target_end == std::string_view::npos) {
    bad_requests_.fetch_add(1, std::memory_order_relaxed);
    response.status = 400;
    response.body = "bad request\n";
  } else {
    std::string_view method = line.substr(0, method_end);
    std::string_view target =
        line.substr(method_end + 1, target_end - method_end - 1);
    std::string_view path = target;
    std::string_view query;
    if (size_t q = target.find('?'); q != std::string_view::npos) {
      path = target.substr(0, q);
      query = target.substr(q + 1);
    }
    head_only = method == "HEAD";
    if (method != "GET" && method != "HEAD") {
      bad_requests_.fetch_add(1, std::memory_order_relaxed);
      response.status = 405;
      response.body = "only GET and HEAD are supported\n";
    } else if (auto it = handlers_.find(path); it == handlers_.end()) {
      not_found_.fetch_add(1, std::memory_order_relaxed);
      response.status = 404;
      response.body = "no such endpoint: " + std::string(path) + "\n";
    } else {
      response = it->second(query);
    }
  }
  conn.in().clear();
  conn.Write(RenderResponse(response, head_only));
  conn.CloseAfterFlush();
}

}  // namespace qmap
