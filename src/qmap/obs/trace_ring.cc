#include "qmap/obs/trace_ring.h"

#include <utility>

namespace qmap {

TraceRing::TraceRing(TraceRingOptions options) : options_([&] {
  if (options.sample_every == 0) options.sample_every = 1;
  return options;
}()) {}

bool TraceRing::ShouldSample() {
  uint64_t n = seen_.fetch_add(1, std::memory_order_relaxed);
  return n % options_.sample_every == 0;
}

void TraceRing::InsertLocked(std::deque<ParsedTrace>& ring, size_t capacity,
                             ParsedTrace&& trace) {
  if (capacity == 0) {
    evicted_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  while (ring.size() >= capacity) {
    ring.pop_front();
    evicted_.fetch_add(1, std::memory_order_relaxed);
  }
  ring.push_back(std::move(trace));
}

void TraceRing::Insert(ParsedTrace trace, bool outlier) {
  std::lock_guard<std::mutex> lock(mu_);
  if (outlier) {
    outliers_.fetch_add(1, std::memory_order_relaxed);
    InsertLocked(outlier_ring_, options_.outlier_capacity, std::move(trace));
  } else {
    sampled_.fetch_add(1, std::memory_order_relaxed);
    InsertLocked(sampled_ring_, options_.capacity, std::move(trace));
  }
}

std::vector<ParsedTrace> TraceRing::SampledSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<ParsedTrace>(sampled_ring_.rbegin(), sampled_ring_.rend());
}

std::vector<ParsedTrace> TraceRing::OutlierSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<ParsedTrace>(outlier_ring_.rbegin(), outlier_ring_.rend());
}

std::optional<ParsedTrace> TraceRing::Find(std::string_view trace_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = outlier_ring_.rbegin(); it != outlier_ring_.rend(); ++it) {
    if (it->trace_id == trace_id) return *it;
  }
  for (auto it = sampled_ring_.rbegin(); it != sampled_ring_.rend(); ++it) {
    if (it->trace_id == trace_id) return *it;
  }
  return std::nullopt;
}

TraceRingStats TraceRing::stats() const {
  TraceRingStats out;
  out.seen = seen_.load(std::memory_order_relaxed);
  out.sampled = sampled_.load(std::memory_order_relaxed);
  out.outliers = outliers_.load(std::memory_order_relaxed);
  out.evicted = evicted_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace qmap
