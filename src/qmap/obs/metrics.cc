#include "qmap/obs/metrics.h"

#include <bit>
#include <cmath>
#include <cstdio>
#include <mutex>

#include "qmap/common/version.h"
#include "qmap/obs/json.h"

namespace qmap {
namespace {

std::string Sanitize(std::string_view name) {
  std::string out(name);
  for (char& c : out) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_';
    if (!ok) c = '_';
  }
  return out;
}

std::string FormatDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

int Histogram::BucketFor(uint64_t v) { return std::bit_width(v); }

uint64_t Histogram::BucketUpperBound(int b) {
  if (b <= 0) return 0;
  if (b >= 64) return ~uint64_t{0};
  return (uint64_t{1} << b) - 1;
}

void Histogram::Record(uint64_t v) {
  buckets_[static_cast<size_t>(BucketFor(v))].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

void Histogram::RecordWithExemplar(uint64_t v, uint64_t trace_serial) {
  if (trace_serial != 0) {
    exemplars_[static_cast<size_t>(BucketFor(v))].store(
        trace_serial, std::memory_order_relaxed);
  }
  Record(v);
}

Histogram::Snapshot Histogram::TakeSnapshot() const {
  Snapshot snap;
  for (int b = 0; b < kNumBuckets; ++b) {
    snap.buckets[static_cast<size_t>(b)] = bucket_count(b);
    snap.exemplars[static_cast<size_t>(b)] = exemplar(b);
    snap.total += snap.buckets[static_cast<size_t>(b)];
  }
  snap.sum = sum();
  return snap;
}

double Histogram::QuantileOf(const Snapshot& snap, double q) {
  if (snap.total == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the target sample, 1-based; ceil so Quantile(1.0) = max bucket.
  double rank = q * static_cast<double>(snap.total);
  uint64_t target = static_cast<uint64_t>(std::ceil(rank));
  if (target == 0) target = 1;
  uint64_t cumulative = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    uint64_t in_bucket = snap.buckets[static_cast<size_t>(b)];
    if (in_bucket == 0) continue;
    if (cumulative + in_bucket >= target) {
      // Linear interpolation inside [lower, upper] of this bucket.
      double lower = b == 0 ? 0.0 : static_cast<double>(BucketUpperBound(b - 1)) + 1.0;
      double upper = static_cast<double>(BucketUpperBound(b));
      if (b == 0) return 0.0;
      double fraction = static_cast<double>(target - cumulative) /
                        static_cast<double>(in_bucket);
      return lower + fraction * (upper - lower);
    }
    cumulative += in_bucket;
  }
  return static_cast<double>(BucketUpperBound(kNumBuckets - 1));
}

double Histogram::Quantile(double q) const { return QuantileOf(TakeSnapshot(), q); }

void MetricsRegistry::SetHelpLocked(std::string_view name,
                                    std::string_view help) {
  if (help.empty()) return;
  auto [it, inserted] = help_.try_emplace(std::string(name), std::string(help));
  (void)it;
  (void)inserted;  // first non-empty description wins
}

std::string_view MetricsRegistry::HelpLocked(const std::string& name) const {
  auto it = help_.find(name);
  return it == help_.end() ? std::string_view() : std::string_view(it->second);
}

Counter& MetricsRegistry::counter(std::string_view name, std::string_view help) {
  if (help.empty()) {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = counters_.find(name);
    if (it != counters_.end()) return *it->second;
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  SetHelpLocked(name, help);
  auto [it, inserted] = counters_.try_emplace(std::string(name), nullptr);
  if (inserted) it->second = std::make_unique<Counter>();
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name, std::string_view help) {
  if (help.empty()) {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = gauges_.find(name);
    if (it != gauges_.end()) return *it->second;
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  SetHelpLocked(name, help);
  auto [it, inserted] = gauges_.try_emplace(std::string(name), nullptr);
  if (inserted) it->second = std::make_unique<Gauge>();
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::string_view help) {
  if (help.empty()) {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = histograms_.find(name);
    if (it != histograms_.end()) return *it->second;
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  SetHelpLocked(name, help);
  auto [it, inserted] = histograms_.try_emplace(std::string(name), nullptr);
  if (inserted) it->second = std::make_unique<Histogram>();
  return *it->second;
}

size_t MetricsRegistry::num_counters() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return counters_.size();
}

size_t MetricsRegistry::num_gauges() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return gauges_.size();
}

size_t MetricsRegistry::num_histograms() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return histograms_.size();
}

std::string MetricsRegistry::ToJson() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::string out = "{\"build_info\":{\"version\":\"";
  out += JsonEscape(kQmapVersion);
  out += "\"},\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    if (!first) out += ',';
    first = false;
    out += '"' + JsonEscape(name) + "\":" + std::to_string(counter->value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    if (!first) out += ',';
    first = false;
    out += '"' + JsonEscape(name) + "\":" + std::to_string(gauge->value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : histograms_) {
    if (!first) out += ',';
    first = false;
    // One snapshot per histogram: count, quantiles and buckets are all
    // derived from the same bucket read, so a concurrent Record() can never
    // produce a count that disagrees with the bucket list.
    const Histogram::Snapshot snap = hist->TakeSnapshot();
    out += '"' + JsonEscape(name) + "\":{";
    out += "\"count\":" + std::to_string(snap.total);
    out += ",\"sum\":" + std::to_string(snap.sum);
    out += ",\"p50\":" + FormatDouble(Histogram::QuantileOf(snap, 0.5));
    out += ",\"p95\":" + FormatDouble(Histogram::QuantileOf(snap, 0.95));
    out += ",\"p99\":" + FormatDouble(Histogram::QuantileOf(snap, 0.99));
    out += ",\"buckets\":[";
    bool first_bucket = true;
    for (int b = 0; b < Histogram::kNumBuckets; ++b) {
      uint64_t n = snap.buckets[static_cast<size_t>(b)];
      if (n == 0) continue;
      if (!first_bucket) out += ',';
      first_bucket = false;
      out += "{\"le\":" + std::to_string(Histogram::BucketUpperBound(b)) +
             ",\"count\":" + std::to_string(n);
      uint64_t ex = snap.exemplars[static_cast<size_t>(b)];
      if (ex != 0) out += ",\"exemplar\":\"qt" + std::to_string(ex) + "\"";
      out += '}';
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

std::string MetricsRegistry::ToPrometheusText() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::string out;
  // Build identity first, so even an otherwise-empty scrape names the
  // binary it came from.
  out += "# HELP qmap_build_info Build/version identity of this binary.\n";
  out += "# TYPE qmap_build_info gauge\n";
  out += std::string("qmap_build_info{version=\"") + kQmapVersion + "\"} 1\n";
  const auto append_help = [&](const std::string& name,
                               const std::string& prom) {
    std::string_view help = HelpLocked(name);
    if (!help.empty()) {
      out += "# HELP " + prom + " " + std::string(help) + "\n";
    }
  };
  for (const auto& [name, counter] : counters_) {
    std::string prom = Sanitize(name);
    append_help(name, prom);
    out += "# TYPE " + prom + " counter\n";
    out += prom + " " + std::to_string(counter->value()) + "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    std::string prom = Sanitize(name);
    append_help(name, prom);
    out += "# TYPE " + prom + " gauge\n";
    out += prom + " " + std::to_string(gauge->value()) + "\n";
  }
  for (const auto& [name, hist] : histograms_) {
    std::string prom = Sanitize(name);
    append_help(name, prom);
    out += "# TYPE " + prom + " histogram\n";
    // One snapshot per histogram. Re-reading the atomics per line (as this
    // used to do) let a concurrent Record() land between the last _bucket
    // line and +Inf/_count, yielding a non-monotone exposition that
    // Prometheus rejects; deriving every line from the snapshot makes
    // cumulative counts monotone and +Inf == _count by construction.
    const Histogram::Snapshot snap = hist->TakeSnapshot();
    uint64_t cumulative = 0;
    for (int b = 0; b < Histogram::kNumBuckets; ++b) {
      uint64_t n = snap.buckets[static_cast<size_t>(b)];
      cumulative += n;
      // Emit only buckets that advance the cumulative count (plus +Inf),
      // keeping the exposition compact without losing any sample.
      if (n == 0) continue;
      out += prom + "_bucket{le=\"" +
             std::to_string(Histogram::BucketUpperBound(b)) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += prom + "_bucket{le=\"+Inf\"} " + std::to_string(snap.total) + "\n";
    out += prom + "_sum " + std::to_string(snap.sum) + "\n";
    out += prom + "_count " + std::to_string(snap.total) + "\n";
  }
  return out;
}

}  // namespace qmap
