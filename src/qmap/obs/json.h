#ifndef QMAP_OBS_JSON_H_
#define QMAP_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "qmap/common/status.h"

namespace qmap {

/// Escapes `s` for inclusion inside a JSON string literal (quotes,
/// backslashes, and control characters; everything else passes through).
/// The inverse of the escape handling in ParseJson.
std::string JsonEscape(std::string_view s);

/// A parsed JSON value — the minimal model the observability plane needs
/// (objects, arrays, strings, unsigned integers, booleans, null). Shared by
/// the trace round-trip parser, the admin-endpoint tests, and any tool that
/// wants to read the documents qmap emits without a JSON dependency.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  uint64_t number = 0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* Find(std::string_view key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

/// Parses a complete JSON document (trailing characters are an error).
/// Accepts exactly what the qmap emitters produce: strings with the escapes
/// JsonEscape writes, numbers (sign/fraction/exponent consumed, `number`
/// keeps the integer magnitude), true/false/null, arrays, objects.
/// Recursive descent over the in-memory buffer.
Result<JsonValue> ParseJson(const std::string& text);

}  // namespace qmap

#endif  // QMAP_OBS_JSON_H_
