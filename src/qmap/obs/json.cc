#include "qmap/obs/json.h"

#include <cstdio>

namespace qmap {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    Result<JsonValue> value = ParseValue();
    if (!value.ok()) return value;
    SkipSpace();
    if (pos_ != text_.size()) return Fail("trailing characters");
    return value;
  }

 private:
  Status Fail(const std::string& why) const {
    return Status::ParseError("JSON: " + why + " at offset " +
                              std::to_string(pos_));
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' || text_[pos_] == '\t' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue() {
    SkipSpace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') return ParseString();
    if (c == 't' || c == 'f') return ParseBool();
    if (c == 'n') return ParseNull();
    if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber();
    return Fail(std::string("unexpected character '") + c + "'");
  }

  Result<JsonValue> ParseObject() {
    ++pos_;  // '{'
    JsonValue out;
    out.kind = JsonValue::Kind::kObject;
    if (Consume('}')) return out;
    while (true) {
      Result<JsonValue> key = ParseString();
      if (!key.ok()) return key;
      if (!Consume(':')) return Fail("expected ':'");
      Result<JsonValue> value = ParseValue();
      if (!value.ok()) return value;
      out.object.emplace_back(std::move(key->string), *std::move(value));
      if (Consume(',')) continue;
      if (Consume('}')) return out;
      return Fail("expected ',' or '}'");
    }
  }

  Result<JsonValue> ParseArray() {
    ++pos_;  // '['
    JsonValue out;
    out.kind = JsonValue::Kind::kArray;
    if (Consume(']')) return out;
    while (true) {
      Result<JsonValue> value = ParseValue();
      if (!value.ok()) return value;
      out.array.push_back(*std::move(value));
      if (Consume(',')) continue;
      if (Consume(']')) return out;
      return Fail("expected ',' or ']'");
    }
  }

  Result<JsonValue> ParseString() {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != '"') return Fail("expected string");
    ++pos_;
    JsonValue out;
    out.kind = JsonValue::Kind::kString;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c != '\\') {
        out.string += c;
        continue;
      }
      if (pos_ >= text_.size()) return Fail("dangling escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out.string += '"'; break;
        case '\\': out.string += '\\'; break;
        case '/': out.string += '/'; break;
        case 'n': out.string += '\n'; break;
        case 't': out.string += '\t'; break;
        case 'r': out.string += '\r'; break;
        case 'b': out.string += '\b'; break;
        case 'f': out.string += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Fail("short \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Fail("bad \\u escape");
          }
          // The emitters only produce \u00XX control escapes.
          out.string += static_cast<char>(code & 0xff);
          break;
        }
        default:
          return Fail("unknown escape");
      }
    }
    if (pos_ >= text_.size()) return Fail("unterminated string");
    ++pos_;  // closing quote
    return out;
  }

  Result<JsonValue> ParseBool() {
    JsonValue out;
    out.kind = JsonValue::Kind::kBool;
    if (text_.compare(pos_, 4, "true") == 0) {
      out.boolean = true;
      pos_ += 4;
      return out;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      out.boolean = false;
      pos_ += 5;
      return out;
    }
    return Fail("expected boolean");
  }

  Result<JsonValue> ParseNull() {
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return JsonValue{};
    }
    return Fail("expected null");
  }

  Result<JsonValue> ParseNumber() {
    JsonValue out;
    out.kind = JsonValue::Kind::kNumber;
    if (text_[pos_] == '-') ++pos_;  // sign accepted; magnitude kept
    uint64_t value = 0;
    size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      value = value * 10 + static_cast<uint64_t>(text_[pos_] - '0');
      ++pos_;
    }
    if (pos_ == start) return Fail("expected digits");
    // Fraction and exponent are consumed for well-formedness (the metric
    // exports carry p50/p95/p99 doubles) but `number` keeps only the
    // integer part — every count the consumers read back is integral.
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      size_t frac_start = pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
      if (pos_ == frac_start) return Fail("expected fraction digits");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      size_t exp_start = pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
      if (pos_ == exp_start) return Fail("expected exponent digits");
    }
    out.number = value;
    return out;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(const std::string& text) {
  return JsonReader(text).Parse();
}

}  // namespace qmap
