#ifndef QMAP_OBS_TRACE_H_
#define QMAP_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "qmap/common/status.h"
#include "qmap/core/stats.h"

namespace qmap {

class MetricsRegistry;

/// One completed (or still-open) span of a per-query trace.
struct SpanRecord {
  uint64_t id = 0;      // 1-based within the trace; 0 means "no span"
  uint64_t parent = 0;  // parent span id; 0 = root level
  std::string name;     // taxonomy name, e.g. "scm" (see docs/OBSERVABILITY.md)
  int thread = 0;       // per-trace thread index (0 = the trace's first thread)
  int64_t start_ns = 0;  // offset from the trace epoch
  int64_t dur_ns = -1;   // -1 while the span is still open
  /// Free-form annotations. Keys may repeat (e.g. one "match" entry per
  /// applied rule); order is preserved.
  std::vector<std::pair<std::string, std::string>> attrs;
  /// Span-local TranslationStats delta, when the instrumented site has one.
  TranslationStats stats;
  bool has_stats = false;
};

/// A trace parsed back from Trace::ToJson() (or assembled by hand). Plain
/// data, so it can travel through Result<>; serializes identically to the
/// Trace it came from — the round-trip contract tested in tests/obs_test.cc.
struct ParsedTrace {
  std::string trace_id;
  std::string label;
  bool capture_detail = false;
  std::vector<SpanRecord> spans;

  std::string ToJson() const;
};

/// A per-query trace: a process-unique id plus an append-only list of nested
/// spans. Span creation order is preserved (records are appended when a span
/// *starts*), so a single-threaded traversal reads back in pre-order — the
/// property ExplainTdqm's narrative renderer relies on.
///
/// Thread-safe: spans may start/finish on any thread (the service's pool
/// fan-out); each thread gets a stable per-trace index, visible in the
/// Chrome export as separate tracks. All methods take a short mutex; the
/// intended no-overhead path is a null Trace* at the instrumentation sites,
/// which skips the clock reads entirely.
///
/// Exports:
///   ToJson()            — round-trippable via ParseTraceJson().
///   ToChromeTraceJson() — Chrome trace_event format ("X" complete events);
///                         load via chrome://tracing or https://ui.perfetto.dev.
class Trace {
 public:
  using Clock = std::chrono::steady_clock;

  /// `capture_detail` additionally records the expensive string annotations
  /// (query texts, per-rule match lines) that ExplainTdqm renders from;
  /// leave it off for latency traces.
  explicit Trace(std::string label = "", bool capture_detail = false);

  const std::string& label() const { return label_; }
  /// Process-unique trace id, e.g. "qt17".
  std::string trace_id() const;
  /// The numeric part of trace_id(). Histogram exemplars store this serial
  /// (an atomic 64-bit slot per bucket) instead of the id string.
  uint64_t serial() const { return serial_; }
  bool capture_detail() const { return capture_detail_; }

  /// Nanoseconds elapsed since the trace was created.
  int64_t NowNs() const;

  /// Records a span measured by the caller (e.g. pool queue-wait time whose
  /// start predates the worker picking the task up). `start_ns` / `end_ns`
  /// are NowNs() readings. Returns the new span's id.
  uint64_t AddCompleteSpan(std::string_view name, uint64_t parent,
                           int64_t start_ns, int64_t end_ns);

  /// Snapshot of all spans recorded so far.
  std::vector<SpanRecord> spans() const;
  size_t num_spans() const;

  /// Snapshot of the whole trace as plain data — identical to parsing
  /// ToJson() back, without the serialization round trip. This is what the
  /// trace-retention ring stores.
  ParsedTrace ToParsed() const;

  std::string ToJson() const;
  std::string ToChromeTraceJson() const;

 private:
  friend class Span;

  uint64_t StartSpan(std::string_view name, uint64_t parent);
  void EndSpan(uint64_t id);
  void AddAttr(uint64_t id, std::string_view key, std::string value);
  void SetStats(uint64_t id, const TranslationStats& stats);
  int ThreadIndexLocked();

  const std::string label_;
  const bool capture_detail_;
  const uint64_t serial_;
  const Clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<SpanRecord> spans_;              // guarded by mu_
  std::map<std::thread::id, int> thread_idx_;  // guarded by mu_
};

/// RAII span handle. A default-constructed handle, or one built with a null
/// Trace*, is disabled: every operation (including construction and
/// destruction) is a pointer check and nothing else — no clock read, no
/// lock. This is the near-zero-cost no-op path of the instrumentation hooks.
class Span {
 public:
  Span() = default;
  Span(Trace* trace, std::string_view name, uint64_t parent = 0) : trace_(trace) {
    if (trace_ != nullptr) id_ = trace_->StartSpan(name, parent);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  Span(Span&& other) noexcept : trace_(other.trace_), id_(other.id_) {
    other.trace_ = nullptr;
  }
  Span& operator=(Span&& other) noexcept {
    if (this != &other) {
      End();
      trace_ = other.trace_;
      id_ = other.id_;
      other.trace_ = nullptr;
    }
    return *this;
  }
  ~Span() { End(); }

  /// Finishes the span (idempotent; also called by the destructor).
  void End() {
    if (trace_ != nullptr) {
      trace_->EndSpan(id_);
      trace_ = nullptr;
    }
  }

  bool enabled() const { return trace_ != nullptr; }
  /// True when annotations should be captured (tracing on + detail mode).
  bool detail() const { return trace_ != nullptr && trace_->capture_detail(); }
  uint64_t id() const { return id_; }
  Trace* trace() const { return trace_; }

  void AddAttr(std::string_view key, std::string value) {
    if (trace_ != nullptr) trace_->AddAttr(id_, key, std::move(value));
  }
  void SetStats(const TranslationStats& stats) {
    if (trace_ != nullptr) trace_->SetStats(id_, stats);
  }

 private:
  Trace* trace_ = nullptr;
  uint64_t id_ = 0;
};

/// Parses a Trace::ToJson() document back into a ParsedTrace.
Result<ParsedTrace> ParseTraceJson(const std::string& json);

/// Folds every finished span's duration into `registry` as a per-phase
/// latency histogram named `qmap_span_<name>_us` (span names sanitized to
/// metric charset, e.g. "cache.lookup" → qmap_span_cache_lookup_us). This is
/// how the Prometheus export gets per-phase latencies without the core
/// algorithms ever seeing the registry.
void RecordTraceMetrics(const Trace& trace, MetricsRegistry* registry);

}  // namespace qmap

#endif  // QMAP_OBS_TRACE_H_
