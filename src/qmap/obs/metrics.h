#ifndef QMAP_OBS_METRICS_H_
#define QMAP_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>

namespace qmap {

/// A monotonically increasing counter. Lock-free; safe to increment from any
/// number of threads concurrently.
class Counter {
 public:
  void Inc(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A point-in-time value (queue depth, cache entry count, breaker state).
/// Unlike a Counter it may go down; unlike a Histogram it has no history —
/// the exported value is whatever the last Set/Add left behind. Lock-free.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// A log₂-bucketed histogram of non-negative integer samples (latencies in
/// microseconds, sizes, counts). Bucket b ≥ 1 holds samples in
/// [2^{b-1}, 2^b - 1]; bucket 0 holds exactly the sample 0 — i.e. a sample v
/// lands in bucket bit_width(v). Recording is two relaxed atomic adds plus
/// one to the bucket: cheap enough for per-span use under the thread pool.
///
/// Quantiles are estimated by walking the cumulative bucket counts and
/// interpolating linearly inside the selected bucket — exact for the bucket
/// boundaries themselves, within a factor of 2 everywhere (the usual
/// log-bucket contract; see tests/obs_test.cc for the pinned boundaries).
///
/// Each bucket additionally remembers one *exemplar*: the trace serial
/// (Trace::serial(), 0 = none) of the most recent sample recorded into it
/// via RecordWithExemplar. An exemplar turns an anonymous p99 bucket into a
/// pointer at a concrete retained trace — the admin server's
/// /tracez?bucket=N jump (docs/OBSERVABILITY.md).
class Histogram {
 public:
  static constexpr int kNumBuckets = 65;  // bit_width(uint64) ∈ [0, 64]

  /// Bucket index a sample lands in: bit_width(v) (0 for v = 0).
  static int BucketFor(uint64_t v);
  /// Inclusive upper bound of bucket b: 0 for b = 0, else 2^b - 1
  /// (UINT64_MAX for the last bucket).
  static uint64_t BucketUpperBound(int b);

  void Record(uint64_t v);
  /// Record plus an exemplar: the bucket `v` lands in remembers
  /// `trace_serial` as its most recent exemplar (0 leaves it untouched).
  void RecordWithExemplar(uint64_t v, uint64_t trace_serial);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t bucket_count(int b) const {
    return buckets_[static_cast<size_t>(b)].load(std::memory_order_relaxed);
  }
  /// The most recent exemplar trace serial recorded into bucket b (0 = none).
  uint64_t exemplar(int b) const {
    return exemplars_[static_cast<size_t>(b)].load(std::memory_order_relaxed);
  }

  /// A point-in-time copy of the bucket array. `total` is derived from the
  /// copied buckets (not from the separate count_ atomic), so any view
  /// computed from one Snapshot is internally consistent: cumulative bucket
  /// counts are monotone and their grand total equals `total` by
  /// construction, even while other threads keep calling Record(). `sum` is
  /// read from its own atomic and may run slightly ahead of or behind the
  /// buckets; it is never used to cross-check them. `exemplars` are the
  /// per-bucket trace serials (racy in the same benign way as `sum`).
  struct Snapshot {
    std::array<uint64_t, kNumBuckets> buckets{};
    std::array<uint64_t, kNumBuckets> exemplars{};
    uint64_t total = 0;
    uint64_t sum = 0;
  };
  Snapshot TakeSnapshot() const;

  /// The quantile estimate computed over one consistent Snapshot.
  static double QuantileOf(const Snapshot& snap, double q);

  /// Estimated q-quantile (q in [0, 1]) of the recorded samples; 0 when the
  /// histogram is empty. Quantile(0.5) = p50, Quantile(0.99) = p99.
  /// Equivalent to QuantileOf(TakeSnapshot(), q).
  double Quantile(double q) const;

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::array<std::atomic<uint64_t>, kNumBuckets> exemplars_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

/// A named registry of counters, gauges and histograms, shared across the
/// service and the pool. Lookup by name takes a shared lock (exclusive only
/// on first creation); instrumented hot paths should look a metric up once
/// and cache the returned reference — metric addresses are stable for the
/// registry's lifetime.
///
/// An optional `help` description may be passed at first registration; it is
/// emitted as the Prometheus `# HELP` line (later lookups may omit it — the
/// first non-empty description wins).
///
/// Exports:
///   ToJson()           — {"build_info": {...}, "counters": {...},
///                        "gauges": {...}, "histograms": {...}} with
///                        count/sum/p50/p95/p99, the non-empty buckets, and
///                        per-bucket exemplar trace ids where present.
///   ToPrometheusText() — the Prometheus text exposition format; histogram
///                        buckets carry cumulative counts with le="2^b - 1",
///                        and a qmap_build_info{version="..."} 1 gauge
///                        identifies the binary. Names are sanitized
///                        ([^a-zA-Z0-9_] → '_').
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name, std::string_view help = "");
  Gauge& gauge(std::string_view name, std::string_view help = "");
  Histogram& histogram(std::string_view name, std::string_view help = "");

  /// The registered metric counts (mostly for tests).
  size_t num_counters() const;
  size_t num_gauges() const;
  size_t num_histograms() const;

  std::string ToJson() const;
  std::string ToPrometheusText() const;

 private:
  /// Stores `help` for `name` if non-empty and none is recorded yet.
  /// Caller must hold mu_ exclusively.
  void SetHelpLocked(std::string_view name, std::string_view help);
  /// The registered description for `name`, or "" . Caller must hold mu_.
  std::string_view HelpLocked(const std::string& name) const;

  mutable std::shared_mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::map<std::string, std::string, std::less<>> help_;
};

}  // namespace qmap

#endif  // QMAP_OBS_METRICS_H_
