#ifndef QMAP_OBS_METRICS_H_
#define QMAP_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>

namespace qmap {

/// A monotonically increasing counter. Lock-free; safe to increment from any
/// number of threads concurrently.
class Counter {
 public:
  void Inc(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A log₂-bucketed histogram of non-negative integer samples (latencies in
/// microseconds, sizes, counts). Bucket b ≥ 1 holds samples in
/// [2^{b-1}, 2^b - 1]; bucket 0 holds exactly the sample 0 — i.e. a sample v
/// lands in bucket bit_width(v). Recording is two relaxed atomic adds plus
/// one to the bucket: cheap enough for per-span use under the thread pool.
///
/// Quantiles are estimated by walking the cumulative bucket counts and
/// interpolating linearly inside the selected bucket — exact for the bucket
/// boundaries themselves, within a factor of 2 everywhere (the usual
/// log-bucket contract; see tests/obs_test.cc for the pinned boundaries).
class Histogram {
 public:
  static constexpr int kNumBuckets = 65;  // bit_width(uint64) ∈ [0, 64]

  /// Bucket index a sample lands in: bit_width(v) (0 for v = 0).
  static int BucketFor(uint64_t v);
  /// Inclusive upper bound of bucket b: 0 for b = 0, else 2^b - 1
  /// (UINT64_MAX for the last bucket).
  static uint64_t BucketUpperBound(int b);

  void Record(uint64_t v);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t bucket_count(int b) const {
    return buckets_[static_cast<size_t>(b)].load(std::memory_order_relaxed);
  }

  /// A point-in-time copy of the bucket array. `total` is derived from the
  /// copied buckets (not from the separate count_ atomic), so any view
  /// computed from one Snapshot is internally consistent: cumulative bucket
  /// counts are monotone and their grand total equals `total` by
  /// construction, even while other threads keep calling Record(). `sum` is
  /// read from its own atomic and may run slightly ahead of or behind the
  /// buckets; it is never used to cross-check them.
  struct Snapshot {
    std::array<uint64_t, kNumBuckets> buckets{};
    uint64_t total = 0;
    uint64_t sum = 0;
  };
  Snapshot TakeSnapshot() const;

  /// The quantile estimate computed over one consistent Snapshot.
  static double QuantileOf(const Snapshot& snap, double q);

  /// Estimated q-quantile (q in [0, 1]) of the recorded samples; 0 when the
  /// histogram is empty. Quantile(0.5) = p50, Quantile(0.99) = p99.
  /// Equivalent to QuantileOf(TakeSnapshot(), q).
  double Quantile(double q) const;

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

/// A named registry of counters and histograms, shared across the service
/// and the pool. Lookup by name takes a shared lock (exclusive only on first
/// creation); instrumented hot paths should look a metric up once and cache
/// the returned reference — Counter/Histogram addresses are stable for the
/// registry's lifetime.
///
/// Exports:
///   ToJson()           — {"counters": {...}, "histograms": {...}} with
///                        count/sum/p50/p95/p99 and the non-empty buckets.
///   ToPrometheusText() — the Prometheus text exposition format; histogram
///                        buckets carry cumulative counts with le="2^b - 1".
///                        Names are sanitized ([^a-zA-Z0-9_] → '_').
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// The registered metric counts (mostly for tests).
  size_t num_counters() const;
  size_t num_histograms() const;

  std::string ToJson() const;
  std::string ToPrometheusText() const;

 private:
  mutable std::shared_mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace qmap

#endif  // QMAP_OBS_METRICS_H_
