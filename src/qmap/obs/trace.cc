#include "qmap/obs/trace.h"

#include <atomic>
#include <cstdio>

#include "qmap/obs/json.h"
#include "qmap/obs/metrics.h"

namespace qmap {
namespace {

std::atomic<uint64_t> g_next_trace_serial{1};

void AppendSpanJson(const SpanRecord& span, std::string* out) {
  *out += "{\"id\":" + std::to_string(span.id);
  *out += ",\"parent\":" + std::to_string(span.parent);
  *out += ",\"name\":\"" + JsonEscape(span.name) + "\"";
  *out += ",\"thread\":" + std::to_string(span.thread);
  *out += ",\"start_ns\":" + std::to_string(span.start_ns);
  *out += ",\"dur_ns\":" + std::to_string(span.dur_ns < 0 ? int64_t{0} : span.dur_ns);
  if (!span.attrs.empty()) {
    *out += ",\"attrs\":[";
    for (size_t i = 0; i < span.attrs.size(); ++i) {
      if (i > 0) *out += ',';
      *out += "[\"" + JsonEscape(span.attrs[i].first) + "\",\"" +
              JsonEscape(span.attrs[i].second) + "\"]";
    }
    *out += ']';
  }
  if (span.has_stats) {
    *out += ",\"stats\":{";
    bool first = true;
    span.stats.ForEachField([&](const char* name, uint64_t value) {
      if (value == 0) return;
      if (!first) *out += ',';
      first = false;
      *out += "\"" + std::string(name) + "\":" + std::to_string(value);
    });
    *out += '}';
  }
  *out += '}';
}

std::string TraceJson(const std::string& trace_id, const std::string& label,
                      bool detail, const std::vector<SpanRecord>& spans) {
  std::string out = "{\"trace_id\":\"" + JsonEscape(trace_id) + "\"";
  out += ",\"label\":\"" + JsonEscape(label) + "\"";
  out += ",\"detail\":";
  out += detail ? "true" : "false";
  out += ",\"spans\":[";
  for (size_t i = 0; i < spans.size(); ++i) {
    if (i > 0) out += ',';
    AppendSpanJson(spans[i], &out);
  }
  out += "]}";
  return out;
}

Result<SpanRecord> SpanFromJson(const JsonValue& value) {
  if (value.kind != JsonValue::Kind::kObject) {
    return Status::ParseError("trace JSON: span is not an object");
  }
  SpanRecord span;
  const JsonValue* field = value.Find("id");
  if (field == nullptr) return Status::ParseError("trace JSON: span missing id");
  span.id = field->number;
  if ((field = value.Find("parent")) != nullptr) span.parent = field->number;
  if ((field = value.Find("name")) != nullptr) span.name = field->string;
  if ((field = value.Find("thread")) != nullptr) {
    span.thread = static_cast<int>(field->number);
  }
  if ((field = value.Find("start_ns")) != nullptr) {
    span.start_ns = static_cast<int64_t>(field->number);
  }
  if ((field = value.Find("dur_ns")) != nullptr) {
    span.dur_ns = static_cast<int64_t>(field->number);
  }
  if ((field = value.Find("attrs")) != nullptr) {
    for (const JsonValue& pair : field->array) {
      if (pair.array.size() != 2) {
        return Status::ParseError("trace JSON: attr is not a [key, value] pair");
      }
      span.attrs.emplace_back(pair.array[0].string, pair.array[1].string);
    }
  }
  if ((field = value.Find("stats")) != nullptr) {
    span.has_stats = true;
    for (const auto& [name, counter] : field->object) {
      bool known = false;
      span.stats.ForEachFieldMutable([&](const char* field_name, uint64_t& slot) {
        if (name == field_name) {
          slot = counter.number;
          known = true;
        }
      });
      if (!known) {
        return Status::ParseError("trace JSON: unknown stats field '" + name + "'");
      }
    }
  }
  return span;
}

}  // namespace

Trace::Trace(std::string label, bool capture_detail)
    : label_(std::move(label)),
      capture_detail_(capture_detail),
      serial_(g_next_trace_serial.fetch_add(1, std::memory_order_relaxed)),
      epoch_(Clock::now()) {}

std::string Trace::trace_id() const { return "qt" + std::to_string(serial_); }

int64_t Trace::NowNs() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              epoch_)
      .count();
}

int Trace::ThreadIndexLocked() {
  auto [it, inserted] =
      thread_idx_.emplace(std::this_thread::get_id(),
                          static_cast<int>(thread_idx_.size()));
  return it->second;
}

uint64_t Trace::StartSpan(std::string_view name, uint64_t parent) {
  int64_t start = NowNs();
  std::lock_guard<std::mutex> lock(mu_);
  SpanRecord& span = spans_.emplace_back();
  span.id = spans_.size();
  span.parent = parent;
  span.name = name;
  span.thread = ThreadIndexLocked();
  span.start_ns = start;
  return span.id;
}

void Trace::EndSpan(uint64_t id) {
  int64_t end = NowNs();
  std::lock_guard<std::mutex> lock(mu_);
  if (id == 0 || id > spans_.size()) return;
  SpanRecord& span = spans_[id - 1];
  if (span.dur_ns < 0) span.dur_ns = end - span.start_ns;
}

void Trace::AddAttr(uint64_t id, std::string_view key, std::string value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id == 0 || id > spans_.size()) return;
  spans_[id - 1].attrs.emplace_back(std::string(key), std::move(value));
}

void Trace::SetStats(uint64_t id, const TranslationStats& stats) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id == 0 || id > spans_.size()) return;
  spans_[id - 1].stats = stats;
  spans_[id - 1].has_stats = true;
}

uint64_t Trace::AddCompleteSpan(std::string_view name, uint64_t parent,
                                int64_t start_ns, int64_t end_ns) {
  int64_t dur_ns = end_ns - start_ns;
  std::lock_guard<std::mutex> lock(mu_);
  SpanRecord& span = spans_.emplace_back();
  span.id = spans_.size();
  span.parent = parent;
  span.name = name;
  span.thread = ThreadIndexLocked();
  span.start_ns = start_ns;
  span.dur_ns = dur_ns < 0 ? 0 : dur_ns;
  return span.id;
}

std::vector<SpanRecord> Trace::spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

size_t Trace::num_spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

std::string Trace::ToJson() const {
  return TraceJson(trace_id(), label_, capture_detail_, spans());
}

ParsedTrace Trace::ToParsed() const {
  ParsedTrace out;
  out.trace_id = trace_id();
  out.label = label_;
  out.capture_detail = capture_detail_;
  out.spans = spans();
  return out;
}

std::string ParsedTrace::ToJson() const {
  return TraceJson(trace_id, label, capture_detail, spans);
}

std::string Trace::ToChromeTraceJson() const {
  std::string out = "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  for (const SpanRecord& span : spans()) {
    if (!first) out += ',';
    first = false;
    char ts[64];
    std::snprintf(ts, sizeof(ts), "%.3f",
                  static_cast<double>(span.start_ns) / 1000.0);
    char dur[64];
    std::snprintf(dur, sizeof(dur), "%.3f",
                  static_cast<double>(span.dur_ns < 0 ? 0 : span.dur_ns) / 1000.0);
    out += "{\"name\":\"" + JsonEscape(span.name) + "\",\"cat\":\"qmap\"";
    out += ",\"ph\":\"X\",\"pid\":1,\"tid\":" + std::to_string(span.thread);
    out += ",\"ts\":" + std::string(ts) + ",\"dur\":" + std::string(dur);
    out += ",\"args\":{\"span_id\":" + std::to_string(span.id);
    out += ",\"parent\":" + std::to_string(span.parent);
    for (const auto& [key, attr_value] : span.attrs) {
      out += ",\"" + JsonEscape(key) + "\":\"" + JsonEscape(attr_value) + "\"";
    }
    if (span.has_stats) {
      span.stats.ForEachField([&](const char* name, uint64_t value) {
        if (value == 0) return;
        out += ",\"" + std::string(name) + "\":" + std::to_string(value);
      });
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

Result<ParsedTrace> ParseTraceJson(const std::string& json) {
  Result<JsonValue> root = ParseJson(json);
  if (!root.ok()) return root.status();
  if (root->kind != JsonValue::Kind::kObject) {
    return Status::ParseError("trace JSON: root is not an object");
  }
  ParsedTrace out;
  const JsonValue* field = root->Find("trace_id");
  if (field != nullptr) out.trace_id = field->string;
  if ((field = root->Find("label")) != nullptr) out.label = field->string;
  if ((field = root->Find("detail")) != nullptr) out.capture_detail = field->boolean;
  if ((field = root->Find("spans")) == nullptr) {
    return Status::ParseError("trace JSON: missing spans array");
  }
  for (const JsonValue& value : field->array) {
    Result<SpanRecord> span = SpanFromJson(value);
    if (!span.ok()) return span.status();
    out.spans.push_back(*std::move(span));
  }
  return out;
}

void RecordTraceMetrics(const Trace& trace, MetricsRegistry* registry) {
  if (registry == nullptr) return;
  for (const SpanRecord& span : trace.spans()) {
    if (span.dur_ns < 0) continue;
    std::string name = "qmap_span_";
    for (char c : span.name) {
      bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                (c >= '0' && c <= '9') || c == '_';
      name += ok ? c : '_';
    }
    name += "_us";
    registry->histogram(name).Record(static_cast<uint64_t>(span.dur_ns) / 1000);
  }
}

}  // namespace qmap
