#include "qmap/obs/trace.h"

#include <atomic>
#include <cstdio>

#include "qmap/obs/metrics.h"

namespace qmap {
namespace {

std::atomic<uint64_t> g_next_trace_serial{1};

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void AppendSpanJson(const SpanRecord& span, std::string* out) {
  *out += "{\"id\":" + std::to_string(span.id);
  *out += ",\"parent\":" + std::to_string(span.parent);
  *out += ",\"name\":\"" + JsonEscape(span.name) + "\"";
  *out += ",\"thread\":" + std::to_string(span.thread);
  *out += ",\"start_ns\":" + std::to_string(span.start_ns);
  *out += ",\"dur_ns\":" + std::to_string(span.dur_ns < 0 ? int64_t{0} : span.dur_ns);
  if (!span.attrs.empty()) {
    *out += ",\"attrs\":[";
    for (size_t i = 0; i < span.attrs.size(); ++i) {
      if (i > 0) *out += ',';
      *out += "[\"" + JsonEscape(span.attrs[i].first) + "\",\"" +
              JsonEscape(span.attrs[i].second) + "\"]";
    }
    *out += ']';
  }
  if (span.has_stats) {
    *out += ",\"stats\":{";
    bool first = true;
    span.stats.ForEachField([&](const char* name, uint64_t value) {
      if (value == 0) return;
      if (!first) *out += ',';
      first = false;
      *out += "\"" + std::string(name) + "\":" + std::to_string(value);
    });
    *out += '}';
  }
  *out += '}';
}

std::string TraceJson(const std::string& trace_id, const std::string& label,
                      bool detail, const std::vector<SpanRecord>& spans) {
  std::string out = "{\"trace_id\":\"" + JsonEscape(trace_id) + "\"";
  out += ",\"label\":\"" + JsonEscape(label) + "\"";
  out += ",\"detail\":";
  out += detail ? "true" : "false";
  out += ",\"spans\":[";
  for (size_t i = 0; i < spans.size(); ++i) {
    if (i > 0) out += ',';
    AppendSpanJson(spans[i], &out);
  }
  out += "]}";
  return out;
}

// ---------------------------------------------------------------------------
// Minimal JSON reader — just enough for the documents this module emits
// (objects, arrays, strings with the escapes JsonEscape produces, unsigned
// integers, true/false/null). Recursive descent over an in-memory buffer.

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  uint64_t number = 0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* Find(std::string_view key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    Result<JsonValue> value = ParseValue();
    if (!value.ok()) return value;
    SkipSpace();
    if (pos_ != text_.size()) return Fail("trailing characters");
    return value;
  }

 private:
  Status Fail(const std::string& why) const {
    return Status::ParseError("trace JSON: " + why + " at offset " +
                              std::to_string(pos_));
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' || text_[pos_] == '\t' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue() {
    SkipSpace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') return ParseString();
    if (c == 't' || c == 'f') return ParseBool();
    if (c == 'n') return ParseNull();
    if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber();
    return Fail(std::string("unexpected character '") + c + "'");
  }

  Result<JsonValue> ParseObject() {
    ++pos_;  // '{'
    JsonValue out;
    out.kind = JsonValue::Kind::kObject;
    if (Consume('}')) return out;
    while (true) {
      Result<JsonValue> key = ParseString();
      if (!key.ok()) return key;
      if (!Consume(':')) return Fail("expected ':'");
      Result<JsonValue> value = ParseValue();
      if (!value.ok()) return value;
      out.object.emplace_back(std::move(key->string), *std::move(value));
      if (Consume(',')) continue;
      if (Consume('}')) return out;
      return Fail("expected ',' or '}'");
    }
  }

  Result<JsonValue> ParseArray() {
    ++pos_;  // '['
    JsonValue out;
    out.kind = JsonValue::Kind::kArray;
    if (Consume(']')) return out;
    while (true) {
      Result<JsonValue> value = ParseValue();
      if (!value.ok()) return value;
      out.array.push_back(*std::move(value));
      if (Consume(',')) continue;
      if (Consume(']')) return out;
      return Fail("expected ',' or ']'");
    }
  }

  Result<JsonValue> ParseString() {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != '"') return Fail("expected string");
    ++pos_;
    JsonValue out;
    out.kind = JsonValue::Kind::kString;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c != '\\') {
        out.string += c;
        continue;
      }
      if (pos_ >= text_.size()) return Fail("dangling escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out.string += '"'; break;
        case '\\': out.string += '\\'; break;
        case '/': out.string += '/'; break;
        case 'n': out.string += '\n'; break;
        case 't': out.string += '\t'; break;
        case 'r': out.string += '\r'; break;
        case 'b': out.string += '\b'; break;
        case 'f': out.string += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Fail("short \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Fail("bad \\u escape");
          }
          // The emitter only produces \u00XX control escapes.
          out.string += static_cast<char>(code & 0xff);
          break;
        }
        default:
          return Fail("unknown escape");
      }
    }
    if (pos_ >= text_.size()) return Fail("unterminated string");
    ++pos_;  // closing quote
    return out;
  }

  Result<JsonValue> ParseBool() {
    JsonValue out;
    out.kind = JsonValue::Kind::kBool;
    if (text_.compare(pos_, 4, "true") == 0) {
      out.boolean = true;
      pos_ += 4;
      return out;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      out.boolean = false;
      pos_ += 5;
      return out;
    }
    return Fail("expected boolean");
  }

  Result<JsonValue> ParseNull() {
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return JsonValue{};
    }
    return Fail("expected null");
  }

  Result<JsonValue> ParseNumber() {
    JsonValue out;
    out.kind = JsonValue::Kind::kNumber;
    if (text_[pos_] == '-') return Fail("negative numbers not expected here");
    uint64_t value = 0;
    size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      value = value * 10 + static_cast<uint64_t>(text_[pos_] - '0');
      ++pos_;
    }
    if (pos_ == start) return Fail("expected digits");
    out.number = value;
    return out;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

Result<SpanRecord> SpanFromJson(const JsonValue& value) {
  if (value.kind != JsonValue::Kind::kObject) {
    return Status::ParseError("trace JSON: span is not an object");
  }
  SpanRecord span;
  const JsonValue* field = value.Find("id");
  if (field == nullptr) return Status::ParseError("trace JSON: span missing id");
  span.id = field->number;
  if ((field = value.Find("parent")) != nullptr) span.parent = field->number;
  if ((field = value.Find("name")) != nullptr) span.name = field->string;
  if ((field = value.Find("thread")) != nullptr) {
    span.thread = static_cast<int>(field->number);
  }
  if ((field = value.Find("start_ns")) != nullptr) {
    span.start_ns = static_cast<int64_t>(field->number);
  }
  if ((field = value.Find("dur_ns")) != nullptr) {
    span.dur_ns = static_cast<int64_t>(field->number);
  }
  if ((field = value.Find("attrs")) != nullptr) {
    for (const JsonValue& pair : field->array) {
      if (pair.array.size() != 2) {
        return Status::ParseError("trace JSON: attr is not a [key, value] pair");
      }
      span.attrs.emplace_back(pair.array[0].string, pair.array[1].string);
    }
  }
  if ((field = value.Find("stats")) != nullptr) {
    span.has_stats = true;
    for (const auto& [name, counter] : field->object) {
      bool known = false;
      span.stats.ForEachFieldMutable([&](const char* field_name, uint64_t& slot) {
        if (name == field_name) {
          slot = counter.number;
          known = true;
        }
      });
      if (!known) {
        return Status::ParseError("trace JSON: unknown stats field '" + name + "'");
      }
    }
  }
  return span;
}

}  // namespace

Trace::Trace(std::string label, bool capture_detail)
    : label_(std::move(label)),
      capture_detail_(capture_detail),
      serial_(g_next_trace_serial.fetch_add(1, std::memory_order_relaxed)),
      epoch_(Clock::now()) {}

std::string Trace::trace_id() const { return "qt" + std::to_string(serial_); }

int64_t Trace::NowNs() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              epoch_)
      .count();
}

int Trace::ThreadIndexLocked() {
  auto [it, inserted] =
      thread_idx_.emplace(std::this_thread::get_id(),
                          static_cast<int>(thread_idx_.size()));
  return it->second;
}

uint64_t Trace::StartSpan(std::string_view name, uint64_t parent) {
  int64_t start = NowNs();
  std::lock_guard<std::mutex> lock(mu_);
  SpanRecord& span = spans_.emplace_back();
  span.id = spans_.size();
  span.parent = parent;
  span.name = name;
  span.thread = ThreadIndexLocked();
  span.start_ns = start;
  return span.id;
}

void Trace::EndSpan(uint64_t id) {
  int64_t end = NowNs();
  std::lock_guard<std::mutex> lock(mu_);
  if (id == 0 || id > spans_.size()) return;
  SpanRecord& span = spans_[id - 1];
  if (span.dur_ns < 0) span.dur_ns = end - span.start_ns;
}

void Trace::AddAttr(uint64_t id, std::string_view key, std::string value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id == 0 || id > spans_.size()) return;
  spans_[id - 1].attrs.emplace_back(std::string(key), std::move(value));
}

void Trace::SetStats(uint64_t id, const TranslationStats& stats) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id == 0 || id > spans_.size()) return;
  spans_[id - 1].stats = stats;
  spans_[id - 1].has_stats = true;
}

uint64_t Trace::AddCompleteSpan(std::string_view name, uint64_t parent,
                                int64_t start_ns, int64_t end_ns) {
  int64_t dur_ns = end_ns - start_ns;
  std::lock_guard<std::mutex> lock(mu_);
  SpanRecord& span = spans_.emplace_back();
  span.id = spans_.size();
  span.parent = parent;
  span.name = name;
  span.thread = ThreadIndexLocked();
  span.start_ns = start_ns;
  span.dur_ns = dur_ns < 0 ? 0 : dur_ns;
  return span.id;
}

std::vector<SpanRecord> Trace::spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

size_t Trace::num_spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

std::string Trace::ToJson() const {
  return TraceJson(trace_id(), label_, capture_detail_, spans());
}

std::string ParsedTrace::ToJson() const {
  return TraceJson(trace_id, label, capture_detail, spans);
}

std::string Trace::ToChromeTraceJson() const {
  std::string out = "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  for (const SpanRecord& span : spans()) {
    if (!first) out += ',';
    first = false;
    char ts[64];
    std::snprintf(ts, sizeof(ts), "%.3f",
                  static_cast<double>(span.start_ns) / 1000.0);
    char dur[64];
    std::snprintf(dur, sizeof(dur), "%.3f",
                  static_cast<double>(span.dur_ns < 0 ? 0 : span.dur_ns) / 1000.0);
    out += "{\"name\":\"" + JsonEscape(span.name) + "\",\"cat\":\"qmap\"";
    out += ",\"ph\":\"X\",\"pid\":1,\"tid\":" + std::to_string(span.thread);
    out += ",\"ts\":" + std::string(ts) + ",\"dur\":" + std::string(dur);
    out += ",\"args\":{\"span_id\":" + std::to_string(span.id);
    out += ",\"parent\":" + std::to_string(span.parent);
    for (const auto& [key, attr_value] : span.attrs) {
      out += ",\"" + JsonEscape(key) + "\":\"" + JsonEscape(attr_value) + "\"";
    }
    if (span.has_stats) {
      span.stats.ForEachField([&](const char* name, uint64_t value) {
        if (value == 0) return;
        out += ",\"" + std::string(name) + "\":" + std::to_string(value);
      });
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

Result<ParsedTrace> ParseTraceJson(const std::string& json) {
  JsonReader reader(json);
  Result<JsonValue> root = reader.Parse();
  if (!root.ok()) return root.status();
  if (root->kind != JsonValue::Kind::kObject) {
    return Status::ParseError("trace JSON: root is not an object");
  }
  ParsedTrace out;
  const JsonValue* field = root->Find("trace_id");
  if (field != nullptr) out.trace_id = field->string;
  if ((field = root->Find("label")) != nullptr) out.label = field->string;
  if ((field = root->Find("detail")) != nullptr) out.capture_detail = field->boolean;
  if ((field = root->Find("spans")) == nullptr) {
    return Status::ParseError("trace JSON: missing spans array");
  }
  for (const JsonValue& value : field->array) {
    Result<SpanRecord> span = SpanFromJson(value);
    if (!span.ok()) return span.status();
    out.spans.push_back(*std::move(span));
  }
  return out;
}

void RecordTraceMetrics(const Trace& trace, MetricsRegistry* registry) {
  if (registry == nullptr) return;
  for (const SpanRecord& span : trace.spans()) {
    if (span.dur_ns < 0) continue;
    std::string name = "qmap_span_";
    for (char c : span.name) {
      bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                (c >= '0' && c <= '9') || c == '_';
      name += ok ? c : '_';
    }
    name += "_us";
    registry->histogram(name).Record(static_cast<uint64_t>(span.dur_ns) / 1000);
  }
}

}  // namespace qmap
