#include "qmap/service/fault_injection.h"

#include <utility>

#include "qmap/common/fnv.h"

namespace qmap {

FaultInjector::PerKey& FaultInjector::KeyStateLocked(const std::string& key) {
  auto it = keys_.find(key);
  if (it == keys_.end()) {
    PerKey state;
    // Per-key stream: decisions for one key are reproducible no matter how
    // calls against other keys interleave with it.
    state.rng.seed(seed_ ^ Fnv64Hash(key));
    it = keys_.emplace(key, std::move(state)).first;
  }
  return it->second;
}

void FaultInjector::FailNext(const std::string& key, int count, Status status) {
  std::lock_guard<std::mutex> lock(mu_);
  PerKey& state = KeyStateLocked(key);
  for (int i = 0; i < count; ++i) {
    Fault fault;
    fault.kind = FaultKind::kFail;
    fault.status = status;
    state.scripted.push_back(std::move(fault));
  }
}

void FaultInjector::StallNext(const std::string& key, int count,
                              uint64_t stall_us) {
  std::lock_guard<std::mutex> lock(mu_);
  PerKey& state = KeyStateLocked(key);
  for (int i = 0; i < count; ++i) {
    Fault fault;
    fault.kind = FaultKind::kStall;
    fault.stall_us = stall_us;
    state.scripted.push_back(std::move(fault));
  }
}

void FaultInjector::DegradeNext(const std::string& key, int count,
                                uint32_t level) {
  std::lock_guard<std::mutex> lock(mu_);
  PerKey& state = KeyStateLocked(key);
  for (int i = 0; i < count; ++i) {
    Fault fault;
    fault.kind = FaultKind::kDegrade;
    fault.degrade_level = level;
    state.scripted.push_back(std::move(fault));
  }
}

void FaultInjector::SetFailRate(const std::string& key, double probability,
                                Status status) {
  std::lock_guard<std::mutex> lock(mu_);
  Rates& rates = KeyStateLocked(key).rates;
  rates.fail = probability;
  rates.fail_status = std::move(status);
}

void FaultInjector::SetStallRate(const std::string& key, double probability,
                                 uint64_t stall_us) {
  std::lock_guard<std::mutex> lock(mu_);
  Rates& rates = KeyStateLocked(key).rates;
  rates.stall = probability;
  rates.stall_us = stall_us;
}

void FaultInjector::SetDegradeRate(const std::string& key, double probability,
                                   uint32_t level) {
  std::lock_guard<std::mutex> lock(mu_);
  Rates& rates = KeyStateLocked(key).rates;
  rates.degrade = probability;
  rates.degrade_level = level;
}

Fault FaultInjector::Next(const std::string& key) {
  calls_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = keys_.find(key);
  if (it == keys_.end()) return Fault{};
  PerKey& state = it->second;
  if (!state.scripted.empty()) {
    Fault fault = std::move(state.scripted.front());
    state.scripted.pop_front();
    injected_.fetch_add(1, std::memory_order_relaxed);
    return fault;
  }
  const Rates& rates = state.rates;
  if (rates.fail <= 0.0 && rates.stall <= 0.0 && rates.degrade <= 0.0) {
    return Fault{};
  }
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  Fault fault;
  if (rates.fail > 0.0 && coin(state.rng) < rates.fail) {
    fault.kind = FaultKind::kFail;
    fault.status = rates.fail_status;
  } else if (rates.stall > 0.0 && coin(state.rng) < rates.stall) {
    fault.kind = FaultKind::kStall;
    fault.stall_us = rates.stall_us;
  } else if (rates.degrade > 0.0 && coin(state.rng) < rates.degrade) {
    fault.kind = FaultKind::kDegrade;
    fault.degrade_level = rates.degrade_level;
  }
  if (fault.kind != FaultKind::kNone) {
    injected_.fetch_add(1, std::memory_order_relaxed);
  }
  return fault;
}

void FaultInjector::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  keys_.clear();
}

}  // namespace qmap
