#ifndef QMAP_SERVICE_FAULT_INJECTION_H_
#define QMAP_SERVICE_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <random>
#include <string>

#include "qmap/common/status.h"

namespace qmap {

/// What an injected fault does to one guarded source call.
enum class FaultKind {
  kNone,     // no fault: the real call runs untouched
  kFail,     // the call fails with `status` without running
  kStall,    // the call is delayed by `stall_us` (on the resilience clock),
             // then runs — the "late source" scenario; with a deadline in
             // force the stall usually converts into kDeadlineExceeded
  kDegrade,  // the call runs, but its translation is widened (safely
             // subsuming) and its exact coverage is dropped — the "source
             // answering in degraded mode" scenario of docs/ROBUSTNESS.md
};

/// One injected fault, as handed to the guarded call site.
struct Fault {
  FaultKind kind = FaultKind::kNone;
  Status status;             // kFail only
  uint64_t stall_us = 0;     // kStall only
  uint32_t degrade_level = 1;  // kDegrade only: conjuncts dropped (see
                               // DegradeTranslation in resilience.h)
};

/// A deterministic, seeded fault injector keyed by source name (or any other
/// string key the call site chooses, e.g. "<member>.convert" for the
/// federation's data-conversion calls).
///
/// Two layers, consulted in order on every Next(key):
///   1. scripted faults — an explicit FIFO of faults for the key, consumed
///      one per call (FailNext / StallNext / DegradeNext). This is the
///      deterministic test mode: "the next 2 calls against S1 fail".
///   2. probabilistic rates — per-key fail/stall/degrade probabilities
///      drawn from a per-key RNG seeded with seed ^ fnv64(key), so the
///      decision sequence for one key is reproducible regardless of how
///      calls against *other* keys interleave.
///
/// Thread-safe; Next() takes a short mutex. A default-constructed injector
/// with no faults configured always returns kNone.
class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed = 0) : seed_(seed) {}

  /// Scripts the next `count` calls against `key` to fail with `status`
  /// (default: a retryable Unavailable).
  void FailNext(const std::string& key, int count,
                Status status = Status::Unavailable("injected fault"));
  /// Scripts the next `count` calls against `key` to stall for `stall_us`
  /// of resilience-clock time before running.
  void StallNext(const std::string& key, int count, uint64_t stall_us);
  /// Scripts the next `count` calls against `key` to answer degraded.
  void DegradeNext(const std::string& key, int count, uint32_t level = 1);

  /// Probabilistic faults for `key`, applied after scripted faults run out.
  /// Probabilities are evaluated in order fail → stall → degrade; at most
  /// one fires per call.
  void SetFailRate(const std::string& key, double probability,
                   Status status = Status::Unavailable("injected fault"));
  void SetStallRate(const std::string& key, double probability,
                    uint64_t stall_us);
  void SetDegradeRate(const std::string& key, double probability,
                      uint32_t level = 1);

  /// The fault (possibly kNone) for the next call against `key`.
  Fault Next(const std::string& key);

  /// Calls to Next() so far, and how many returned a real fault.
  uint64_t calls() const { return calls_.load(std::memory_order_relaxed); }
  uint64_t faults_injected() const {
    return injected_.load(std::memory_order_relaxed);
  }

  /// Drops all scripted faults and rates (counters and seed are kept, and
  /// per-key RNG streams restart from the seed).
  void Reset();

 private:
  struct Rates {
    double fail = 0.0;
    double stall = 0.0;
    double degrade = 0.0;
    Status fail_status;
    uint64_t stall_us = 0;
    uint32_t degrade_level = 1;
  };
  struct PerKey {
    std::deque<Fault> scripted;
    Rates rates;
    std::mt19937_64 rng;
  };

  PerKey& KeyStateLocked(const std::string& key);

  const uint64_t seed_;
  mutable std::mutex mu_;
  std::map<std::string, PerKey> keys_;  // guarded by mu_
  std::atomic<uint64_t> calls_{0};
  std::atomic<uint64_t> injected_{0};
};

}  // namespace qmap

#endif  // QMAP_SERVICE_FAULT_INJECTION_H_
