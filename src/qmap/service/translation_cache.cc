#include "qmap/service/translation_cache.h"

#include <algorithm>

#include "qmap/common/fnv.h"
#include "qmap/obs/metrics.h"

namespace qmap {

TranslationCache::TranslationCache(TranslationCacheOptions options) {
  size_t shards = std::max<size_t>(1, options.shards);
  size_t capacity = std::max<size_t>(1, options.capacity);
  per_shard_capacity_ = (capacity + shards - 1) / shards;
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) shards_.push_back(std::make_unique<Shard>());
}

TranslationCacheKey TranslationCache::KeyOfString(const std::string& key) {
  TranslationCacheKey out;
  out.source = Fnv64().AddByte('s').Add(key).value();
  out.rule_set = Fnv64().AddByte('r').Add(key).value();
  out.query = Fnv64().AddByte('q').Add(key).value();
  return out;
}

TranslationCache::Shard& TranslationCache::ShardFor(
    const TranslationCacheKey& key) {
  return *shards_[TranslationCacheKeyHash{}(key) % shards_.size()];
}

void TranslationCache::AttachMetrics(MetricsRegistry* registry) {
  attached_registry_ = registry;
  if (registry == nullptr) {
    hits_counter_ = misses_counter_ = insertions_counter_ = updates_counter_ =
        evictions_counter_ = nullptr;
    return;
  }
  hits_counter_ = &registry->counter("qmap_cache_hits_total");
  misses_counter_ = &registry->counter("qmap_cache_misses_total");
  insertions_counter_ = &registry->counter("qmap_cache_insertions_total");
  updates_counter_ = &registry->counter("qmap_cache_updates_total");
  evictions_counter_ = &registry->counter("qmap_cache_evictions_total");
}

void TranslationCache::DetachMetricsIf(MetricsRegistry* registry) {
  if (registry != nullptr && attached_registry_ == registry) {
    AttachMetrics(nullptr);
  }
}

std::optional<Translation> TranslationCache::Get(const TranslationCacheKey& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.stats.misses;
    if (misses_counter_ != nullptr) misses_counter_->Inc();
    return std::nullopt;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  ++shard.stats.hits;
  if (hits_counter_ != nullptr) hits_counter_->Inc();
  return it->second->value;
}

std::optional<Translation> TranslationCache::Get(const std::string& key) {
  return Get(KeyOfString(key));
}

void TranslationCache::Put(const TranslationCacheKey& key, Translation value) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->value = std::move(value);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    ++shard.stats.updates;
    if (updates_counter_ != nullptr) updates_counter_->Inc();
    return;
  }
  shard.lru.push_front(Entry{key, std::move(value)});
  shard.index.emplace(key, shard.lru.begin());
  ++shard.stats.insertions;
  if (insertions_counter_ != nullptr) insertions_counter_->Inc();
  if (shard.lru.size() > per_shard_capacity_) {
    shard.index.erase(shard.lru.back().key);
    shard.lru.pop_back();
    ++shard.stats.evictions;
    if (evictions_counter_ != nullptr) evictions_counter_->Inc();
  }
}

void TranslationCache::Put(const std::string& key, Translation value) {
  Put(KeyOfString(key), std::move(value));
}

TranslationCacheStats TranslationCache::stats() const {
  TranslationCacheStats out;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    out.hits += shard->stats.hits;
    out.misses += shard->stats.misses;
    out.insertions += shard->stats.insertions;
    out.updates += shard->stats.updates;
    out.evictions += shard->stats.evictions;
  }
  return out;
}

size_t TranslationCache::size() const {
  size_t out = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    out += shard->lru.size();
  }
  return out;
}

void TranslationCache::Clear() {
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->lru.clear();
    shard->index.clear();
  }
}

}  // namespace qmap
