#include "qmap/service/thread_pool.h"

#include <algorithm>
#include <chrono>

#include "qmap/obs/metrics.h"

namespace qmap {

ThreadPool::ThreadPool(int num_threads) {
  int n = std::max(1, num_threads);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

size_t ThreadPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void ThreadPool::AttachMetrics(MetricsRegistry* registry) {
  if (registry == nullptr) {
    queue_wait_hist_ = run_hist_ = nullptr;
    return;
  }
  queue_wait_hist_ = &registry->histogram("qmap_pool_queue_wait_us");
  run_hist_ = &registry->histogram("qmap_pool_run_us");
}

void ThreadPool::Submit(std::function<void()> task) {
  if (queue_wait_hist_ != nullptr) {
    auto submitted = std::chrono::steady_clock::now();
    task = [this, submitted, inner = std::move(task)] {
      auto started = std::chrono::steady_clock::now();
      queue_wait_hist_->Record(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(started -
                                                                submitted)
              .count()));
      inner();
      run_hist_->Record(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - started)
              .count()));
    };
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace qmap
