#ifndef QMAP_SERVICE_RESILIENCE_H_
#define QMAP_SERVICE_RESILIENCE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <vector>

#include "qmap/common/status.h"
#include "qmap/core/translator.h"
#include "qmap/service/fault_injection.h"

namespace qmap {

class Counter;
class MetricsRegistry;
class Trace;

// ---------------------------------------------------------------------------
// Clocks

/// The time source for deadlines, backoff waits, and injected stalls. All
/// resilience machinery reads time through this interface so tests can run
/// every timing scenario on a virtual clock — no real sleeps anywhere in the
/// deterministic suite (tests/resilience_test.cc).
class ResilienceClock {
 public:
  virtual ~ResilienceClock() = default;
  /// Monotonic microseconds since an arbitrary epoch.
  virtual uint64_t NowUs() = 0;
  /// Blocks (or virtually advances) for `us` microseconds.
  virtual void SleepUs(uint64_t us) = 0;
};

/// The process-wide real clock: steady_clock + this_thread::sleep_for.
ResilienceClock& DefaultResilienceClock();

/// A virtual clock for tests: NowUs reads an atomic, SleepUs *advances* it —
/// a sleeping "thread" just moves time forward, so stalls and backoff waits
/// are instantaneous in real time while remaining visible to every deadline
/// check. Safe to share across the service's pool workers.
class ManualClock : public ResilienceClock {
 public:
  explicit ManualClock(uint64_t start_us = 0) : now_us_(start_us) {}
  uint64_t NowUs() override { return now_us_.load(std::memory_order_relaxed); }
  void SleepUs(uint64_t us) override { Advance(us); }
  void Advance(uint64_t us) {
    now_us_.fetch_add(us, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> now_us_;
};

// ---------------------------------------------------------------------------
// Deadlines and cancellation

/// An absolute deadline on the resilience clock. The zero value is
/// "unbounded". Budgets *narrow* as they propagate down the call tree
/// (request → per-query → per-source attempt): a child deadline is
/// min(parent deadline, now + child timeout), so no retry or stall can spend
/// more than the caller's remaining budget.
struct DeadlineBudget {
  uint64_t deadline_us = 0;  // absolute clock reading; 0 = unbounded

  bool bounded() const { return deadline_us != 0; }
  bool expired(uint64_t now_us) const {
    return bounded() && now_us >= deadline_us;
  }
  /// Remaining budget (UINT64_MAX when unbounded, 0 when expired).
  uint64_t remaining_us(uint64_t now_us) const;
  /// This budget further limited by `timeout_us` from `now_us`
  /// (timeout 0 = no extra limit).
  DeadlineBudget Narrowed(uint64_t now_us, uint64_t timeout_us) const;
};

/// Shared cancellation state for one request (a Translate call or a whole
/// TranslateBatch). Workers poll it between units of work; nothing preempts
/// a translation already running. The token lives on the *caller's* stack,
/// so the fan-out must never let a worker outlive the caller's wait — see
/// the lifetime contract in TranslationService::TranslateFull.
struct CancelToken {
  std::atomic<bool> cancelled{false};
  DeadlineBudget budget;

  void Cancel() { cancelled.store(true, std::memory_order_relaxed); }
  bool Expired(uint64_t now_us) const {
    return cancelled.load(std::memory_order_relaxed) || budget.expired(now_us);
  }
};

// ---------------------------------------------------------------------------
// Retry policy

struct RetryPolicy {
  /// Total tries per source call (1 = no retry).
  int max_attempts = 3;
  /// First backoff, and the cap for the decorrelated-jitter growth.
  uint64_t initial_backoff_us = 1000;
  uint64_t max_backoff_us = 50000;
};

/// Only transient source conditions are worth retrying. DeadlineExceeded is
/// deliberately not retryable: the budget that produced it is already gone.
bool IsRetryable(StatusCode code);

/// Failure categories a partial-tolerant federation may drop a source over
/// (Unavailable / DeadlineExceeded / Cancelled). Permanent errors — a broken
/// spec, a parse error — still fail the whole call: serving a silently
/// wrong federation is worse than serving an error.
bool IsSourceDropFailure(StatusCode code);

/// Decorrelated-jitter backoff (the "decorrelated jitter" scheme from the
/// AWS architecture blog): next = min(max, uniform(initial, prev * 3)).
/// Decorrelation keeps concurrent retriers from synchronizing into waves.
uint64_t NextDecorrelatedBackoffUs(const RetryPolicy& policy, uint64_t prev_us,
                                   std::mt19937_64& rng);

// ---------------------------------------------------------------------------
// Circuit breaker

struct CircuitBreakerOptions {
  /// Sliding window of most recent call outcomes per source.
  int window = 16;
  /// Outcomes required in the window before the breaker may trip.
  int min_samples = 8;
  /// Failure rate over the window that opens the breaker.
  double open_threshold = 0.5;
  /// Open → half-open after this much clock time.
  uint64_t cooldown_us = 100000;
  /// Probe calls admitted while half-open; this many consecutive probe
  /// successes close the breaker, any probe failure re-opens it.
  int half_open_probes = 2;
};

/// State transitions surfaced to the caller (for qmap_resilience_breaker_*
/// counters and tests).
enum class BreakerEvent { kNone, kOpened, kHalfOpened, kClosed, kReopened };

/// A per-source circuit breaker: closed (calls flow, outcomes recorded into
/// a failure-rate window) → open (calls rejected fast, no source work) →
/// half-open after a cooldown (limited probes) → closed on probe success or
/// re-open on probe failure. Thread-safe; every method takes a short mutex.
class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  explicit CircuitBreaker(CircuitBreakerOptions options);

  /// May the next call proceed? Handles the open → half-open transition
  /// (reported via `event`); returns false for fast rejection.
  bool Allow(uint64_t now_us, BreakerEvent* event = nullptr);
  BreakerEvent RecordSuccess(uint64_t now_us);
  BreakerEvent RecordFailure(uint64_t now_us);

  State state() const;
  uint64_t rejections() const;

  /// Human-readable FSM state name: "closed" / "open" / "half_open". Used
  /// by the admin plane (/statusz, the qmap_breaker_state_* gauges' docs).
  static const char* StateName(State state);

 private:
  void ResetWindowLocked();

  const CircuitBreakerOptions options_;
  mutable std::mutex mu_;
  State state_ = State::kClosed;
  std::vector<bool> window_;  // ring buffer of outcomes (true = failure)
  size_t window_pos_ = 0;
  size_t window_filled_ = 0;
  size_t window_failures_ = 0;
  uint64_t opened_at_us_ = 0;
  int half_open_in_flight_ = 0;
  int half_open_successes_ = 0;
  uint64_t rejections_ = 0;
};

// ---------------------------------------------------------------------------
// Degraded-mode widening

/// The "safely widened" translation a degraded source answers with: trailing
/// conjuncts of the mapped query's root ∧ are dropped (`level` of them; a
/// non-∧ root or level ≥ fanout widens all the way to True), and the exact
/// coverage is cleared. Dropping conjuncts can only *weaken* a conjunction,
/// so S'(Q) ⊇ S(Q) ⊇ Q — Definition 1's subsumption is preserved, which is
/// exactly what keeps degraded mode sound: with the coverage gone, the
/// recomputed residue filter F regains every constraint this source was
/// trusted with, and F ∧ S'(Q) still reconstructs Q's selectivity
/// (docs/ROBUSTNESS.md; property-tested in tests/subsumption_property_test.cc).
Translation DegradeTranslation(const Query& original, const Translation& t,
                               uint32_t level);

// ---------------------------------------------------------------------------
// Partial results

/// One dropped source in a partial federated translation.
struct SourceFailure {
  std::string source;
  Status status;
  uint32_t attempts = 0;  // attempts made before giving up (0 = rejected
                          // before any attempt, e.g. breaker open)
};

/// The degradation report attached to a federated result. `failed` lists
/// sources dropped from the answer with the Status that dropped them;
/// `degraded` lists sources that answered with a widened (still subsuming)
/// translation. Both are in fan-out (source-name) order.
struct PartialResult {
  std::vector<SourceFailure> failed;
  std::vector<std::string> degraded;

  bool complete() const { return failed.empty(); }
  /// e.g. "failed: S1 (Unavailable: injected fault, 3 attempts); degraded: S2"
  std::string ToString() const;
};

// ---------------------------------------------------------------------------
// Policy + manager

struct ResilienceOptions {
  /// Master switch. Off (the default) keeps every guarded call site on its
  /// original zero-overhead path; a configured FaultInjector implies the
  /// guarded path even when this is false.
  bool enabled = false;
  /// Drop failing sources into PartialResult instead of failing the whole
  /// call. Only resilience-category failures qualify (IsSourceDropFailure).
  bool allow_partial = true;
  /// Minimum surviving sources for a partial result to be served; fewer
  /// survivors fail the call with Unavailable.
  size_t min_sources = 1;
  /// Per-source-call budget, covering all retry attempts and backoffs for
  /// that source (0 = none).
  uint64_t source_deadline_us = 0;
  /// Whole-request budget: one Translate call, or one entire TranslateBatch
  /// (0 = none). Propagates down: each source call's budget is the narrower
  /// of this and source_deadline_us.
  uint64_t request_deadline_us = 0;
  RetryPolicy retry;
  CircuitBreakerOptions breaker;
  /// Seed for the backoff jitter RNG (fixed default keeps runs reproducible).
  uint64_t seed = 0x9e3779b97f4a7c15ull;
};

/// Monotonic counters over the manager lifetime (mirrored into
/// qmap_resilience_* metrics when a registry is attached).
struct ResilienceCounters {
  uint64_t retries = 0;
  uint64_t deadline_hits = 0;
  uint64_t breaker_rejections = 0;
  uint64_t breaker_opened = 0;
  uint64_t breaker_half_opened = 0;
  uint64_t breaker_closed = 0;
  uint64_t degraded = 0;
  uint64_t source_failures = 0;
  uint64_t partial_results = 0;
  uint64_t faults_injected = 0;
};

/// Per-federation resilience state: one circuit breaker per source, the
/// retry/backoff policy, deadline propagation, the fault-injection hook, and
/// the qmap_resilience_* counters. One manager is shared by all requests of
/// a TranslationService / Mediator / FederatedCatalog; all methods are
/// thread-safe.
class ResilienceManager {
 public:
  /// `clock`, `injector`, `metrics` may each be null (system clock, no
  /// faults, no metrics); when non-null they must outlive the manager.
  ResilienceManager(ResilienceOptions options, ResilienceClock* clock,
                    FaultInjector* injector, MetricsRegistry* metrics);

  /// What happened to one guarded source call (for PartialResult entries and
  /// TranslationStats).
  struct CallReport {
    uint32_t attempts = 0;
    uint32_t retries = 0;
    bool breaker_rejected = false;
    bool deadline_hit = false;
    bool degraded = false;
  };

  /// Runs `attempt` (the real per-source translation of `original`) under
  /// the source's circuit breaker, the retry policy with decorrelated
  /// backoff, fault injection, and the deadline budget from `cancel` (may be
  /// null) narrowed by source_deadline_us. With a trace attached, each try
  /// is a "retry.attempt" span under `parent_span` and each wait a
  /// "retry.backoff" span.
  Result<Translation> GuardedTranslate(
      const std::string& source, const Query& original,
      const CancelToken* cancel,
      const std::function<Result<Translation>()>& attempt, CallReport* report,
      Trace* trace = nullptr, uint64_t parent_span = 0);

  /// Breaker state for `source` (kClosed if never called).
  CircuitBreaker::State breaker_state(const std::string& source) const;

  /// All breakers instantiated so far, as (source, state) pairs in source
  /// order. Sources never guarded yet have no breaker and do not appear —
  /// callers that want the full federation view default those to kClosed.
  std::vector<std::pair<std::string, CircuitBreaker::State>> breaker_states()
      const;

  /// Counts one partial result served (the per-failed-source counting
  /// happens inside GuardedTranslate's callers via the report).
  void RecordPartialResult(size_t num_failed_sources);

  ResilienceCounters counters() const;
  ResilienceClock* clock() const { return clock_; }
  FaultInjector* injector() const { return injector_; }
  const ResilienceOptions& options() const { return options_; }

 private:
  CircuitBreaker& BreakerFor(const std::string& source);
  void NoteBreakerEvent(BreakerEvent event);

  const ResilienceOptions options_;
  ResilienceClock* const clock_;     // never null (defaulted in ctor)
  FaultInjector* const injector_;    // may be null
  mutable std::mutex breakers_mu_;
  std::map<std::string, std::unique_ptr<CircuitBreaker>> breakers_;
  std::mutex rng_mu_;
  std::mt19937_64 backoff_rng_;  // guarded by rng_mu_

  std::atomic<uint64_t> retries_{0};
  std::atomic<uint64_t> deadline_hits_{0};
  std::atomic<uint64_t> breaker_rejections_{0};
  std::atomic<uint64_t> breaker_opened_{0};
  std::atomic<uint64_t> breaker_half_opened_{0};
  std::atomic<uint64_t> breaker_closed_{0};
  std::atomic<uint64_t> degraded_{0};
  std::atomic<uint64_t> source_failures_{0};
  std::atomic<uint64_t> partial_results_{0};

  // Cached metric handles; null when no registry was attached.
  Counter* retries_counter_ = nullptr;
  Counter* deadline_counter_ = nullptr;
  Counter* rejections_counter_ = nullptr;
  Counter* opened_counter_ = nullptr;
  Counter* half_opened_counter_ = nullptr;
  Counter* closed_counter_ = nullptr;
  Counter* degraded_counter_ = nullptr;
  Counter* failures_counter_ = nullptr;
  Counter* partials_counter_ = nullptr;
  Counter* injected_counter_ = nullptr;
};

}  // namespace qmap

#endif  // QMAP_SERVICE_RESILIENCE_H_
