#include "qmap/service/resilience.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <thread>
#include <utility>

#include "qmap/obs/metrics.h"
#include "qmap/obs/trace.h"

namespace qmap {
namespace {

class SystemClock : public ResilienceClock {
 public:
  uint64_t NowUs() override {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }
  void SleepUs(uint64_t us) override {
    std::this_thread::sleep_for(std::chrono::microseconds(us));
  }
};

}  // namespace

ResilienceClock& DefaultResilienceClock() {
  static SystemClock clock;
  return clock;
}

// ---------------------------------------------------------------------------
// DeadlineBudget

uint64_t DeadlineBudget::remaining_us(uint64_t now_us) const {
  if (!bounded()) return std::numeric_limits<uint64_t>::max();
  return now_us >= deadline_us ? 0 : deadline_us - now_us;
}

DeadlineBudget DeadlineBudget::Narrowed(uint64_t now_us,
                                        uint64_t timeout_us) const {
  if (timeout_us == 0) return *this;
  const uint64_t child = now_us + timeout_us;
  if (!bounded() || child < deadline_us) return DeadlineBudget{child};
  return *this;
}

// ---------------------------------------------------------------------------
// Retry policy

bool IsRetryable(StatusCode code) { return code == StatusCode::kUnavailable; }

bool IsSourceDropFailure(StatusCode code) {
  return code == StatusCode::kUnavailable ||
         code == StatusCode::kDeadlineExceeded ||
         code == StatusCode::kCancelled;
}

uint64_t NextDecorrelatedBackoffUs(const RetryPolicy& policy, uint64_t prev_us,
                                   std::mt19937_64& rng) {
  const uint64_t lo = std::max<uint64_t>(1, policy.initial_backoff_us);
  uint64_t hi =
      prev_us > std::numeric_limits<uint64_t>::max() / 3 ? prev_us : prev_us * 3;
  hi = std::max(lo, hi);
  std::uniform_int_distribution<uint64_t> dist(lo, hi);
  uint64_t next = dist(rng);
  if (policy.max_backoff_us > 0) next = std::min(next, policy.max_backoff_us);
  return next;
}

// ---------------------------------------------------------------------------
// CircuitBreaker

CircuitBreaker::CircuitBreaker(CircuitBreakerOptions options)
    : options_(options),
      window_(static_cast<size_t>(std::max(1, options.window)), false) {}

void CircuitBreaker::ResetWindowLocked() {
  std::fill(window_.begin(), window_.end(), false);
  window_pos_ = 0;
  window_filled_ = 0;
  window_failures_ = 0;
}

bool CircuitBreaker::Allow(uint64_t now_us, BreakerEvent* event) {
  if (event != nullptr) *event = BreakerEvent::kNone;
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (now_us >= opened_at_us_ + options_.cooldown_us) {
        state_ = State::kHalfOpen;
        half_open_in_flight_ = 1;  // this call is the first probe
        half_open_successes_ = 0;
        if (event != nullptr) *event = BreakerEvent::kHalfOpened;
        return true;
      }
      ++rejections_;
      return false;
    case State::kHalfOpen:
      if (half_open_in_flight_ < std::max(1, options_.half_open_probes)) {
        ++half_open_in_flight_;
        return true;
      }
      ++rejections_;
      return false;
  }
  return true;  // unreachable
}

BreakerEvent CircuitBreaker::RecordSuccess(uint64_t) {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case State::kClosed: {
      if (window_filled_ == window_.size()) {
        if (window_[window_pos_]) --window_failures_;
      } else {
        ++window_filled_;
      }
      window_[window_pos_] = false;
      window_pos_ = (window_pos_ + 1) % window_.size();
      return BreakerEvent::kNone;
    }
    case State::kHalfOpen:
      ++half_open_successes_;
      if (half_open_successes_ >= std::max(1, options_.half_open_probes)) {
        state_ = State::kClosed;
        ResetWindowLocked();
        return BreakerEvent::kClosed;
      }
      return BreakerEvent::kNone;
    case State::kOpen:
      // A call admitted before the breaker opened finishing late; ignore.
      return BreakerEvent::kNone;
  }
  return BreakerEvent::kNone;  // unreachable
}

BreakerEvent CircuitBreaker::RecordFailure(uint64_t now_us) {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case State::kClosed: {
      if (window_filled_ == window_.size()) {
        if (window_[window_pos_]) --window_failures_;
      } else {
        ++window_filled_;
      }
      window_[window_pos_] = true;
      ++window_failures_;
      window_pos_ = (window_pos_ + 1) % window_.size();
      if (window_filled_ >=
              static_cast<size_t>(std::max(1, options_.min_samples)) &&
          static_cast<double>(window_failures_) >=
              options_.open_threshold * static_cast<double>(window_filled_)) {
        state_ = State::kOpen;
        opened_at_us_ = now_us;
        return BreakerEvent::kOpened;
      }
      return BreakerEvent::kNone;
    }
    case State::kHalfOpen:
      state_ = State::kOpen;
      opened_at_us_ = now_us;
      return BreakerEvent::kReopened;
    case State::kOpen:
      return BreakerEvent::kNone;
  }
  return BreakerEvent::kNone;  // unreachable
}

CircuitBreaker::State CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

uint64_t CircuitBreaker::rejections() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rejections_;
}

// ---------------------------------------------------------------------------
// Degraded-mode widening

Translation DegradeTranslation(const Query& original, const Translation& t,
                               uint32_t level) {
  Translation out;
  out.stats = t.stats;
  const uint32_t drop = std::max<uint32_t>(1, level);
  if (t.mapped.kind() == NodeKind::kAnd &&
      t.mapped.children().size() > static_cast<size_t>(drop)) {
    std::vector<Query> kept(t.mapped.children().begin(),
                            t.mapped.children().end() - drop);
    out.mapped = Query::And(std::move(kept));
  } else {
    out.mapped = Query::True();
  }
  // The degraded source vouches for nothing: with the coverage cleared, the
  // residue filter regains every constraint, so F ∧ S'(Q) ≡ Q still holds
  // for any subsuming S'(Q).
  out.coverage = ExactCoverage{};
  out.filter = ResidueFilter(original, out.coverage);
  return out;
}

// ---------------------------------------------------------------------------
// PartialResult

std::string PartialResult::ToString() const {
  std::string out;
  if (!failed.empty()) {
    out += "failed:";
    for (const SourceFailure& f : failed) {
      out += " " + f.source + " (" + f.status.ToString() + ", " +
             std::to_string(f.attempts) + " attempts)";
    }
  }
  if (!degraded.empty()) {
    if (!out.empty()) out += "; ";
    out += "degraded:";
    for (const std::string& name : degraded) out += " " + name;
  }
  if (out.empty()) out = "complete";
  return out;
}

// ---------------------------------------------------------------------------
// ResilienceManager

ResilienceManager::ResilienceManager(ResilienceOptions options,
                                     ResilienceClock* clock,
                                     FaultInjector* injector,
                                     MetricsRegistry* metrics)
    : options_(options),
      clock_(clock != nullptr ? clock : &DefaultResilienceClock()),
      injector_(injector),
      backoff_rng_(options.seed) {
  if (metrics != nullptr) {
    retries_counter_ = &metrics->counter("qmap_resilience_retries_total");
    deadline_counter_ = &metrics->counter("qmap_resilience_deadline_hits_total");
    rejections_counter_ =
        &metrics->counter("qmap_resilience_breaker_rejections_total");
    opened_counter_ = &metrics->counter("qmap_resilience_breaker_opened_total");
    half_opened_counter_ =
        &metrics->counter("qmap_resilience_breaker_half_opened_total");
    closed_counter_ = &metrics->counter("qmap_resilience_breaker_closed_total");
    degraded_counter_ = &metrics->counter("qmap_resilience_degraded_total");
    failures_counter_ =
        &metrics->counter("qmap_resilience_source_failures_total");
    partials_counter_ =
        &metrics->counter("qmap_resilience_partial_results_total");
    injected_counter_ =
        &metrics->counter("qmap_resilience_faults_injected_total");
  }
}

CircuitBreaker& ResilienceManager::BreakerFor(const std::string& source) {
  std::lock_guard<std::mutex> lock(breakers_mu_);
  std::unique_ptr<CircuitBreaker>& slot = breakers_[source];
  if (slot == nullptr) {
    slot = std::make_unique<CircuitBreaker>(options_.breaker);
  }
  return *slot;
}

void ResilienceManager::NoteBreakerEvent(BreakerEvent event) {
  switch (event) {
    case BreakerEvent::kNone:
      return;
    case BreakerEvent::kOpened:
    case BreakerEvent::kReopened:
      breaker_opened_.fetch_add(1, std::memory_order_relaxed);
      if (opened_counter_ != nullptr) opened_counter_->Inc();
      return;
    case BreakerEvent::kHalfOpened:
      breaker_half_opened_.fetch_add(1, std::memory_order_relaxed);
      if (half_opened_counter_ != nullptr) half_opened_counter_->Inc();
      return;
    case BreakerEvent::kClosed:
      breaker_closed_.fetch_add(1, std::memory_order_relaxed);
      if (closed_counter_ != nullptr) closed_counter_->Inc();
      return;
  }
}

Result<Translation> ResilienceManager::GuardedTranslate(
    const std::string& source, const Query& original,
    const CancelToken* cancel,
    const std::function<Result<Translation>()>& attempt, CallReport* report,
    Trace* trace, uint64_t parent_span) {
  CallReport local_report;
  if (report == nullptr) report = &local_report;
  *report = CallReport{};

  const auto fail = [&](Status status) -> Result<Translation> {
    source_failures_.fetch_add(1, std::memory_order_relaxed);
    if (failures_counter_ != nullptr) failures_counter_->Inc();
    return status;
  };

  uint64_t now = clock_->NowUs();
  const DeadlineBudget budget =
      (cancel != nullptr ? cancel->budget : DeadlineBudget{})
          .Narrowed(now, options_.source_deadline_us);
  CircuitBreaker& breaker = BreakerFor(source);
  const int max_attempts = std::max(1, options_.retry.max_attempts);
  uint64_t prev_backoff_us = options_.retry.initial_backoff_us;

  for (int try_no = 1;; ++try_no) {
    now = clock_->NowUs();
    if (cancel != nullptr &&
        cancel->cancelled.load(std::memory_order_relaxed)) {
      return fail(Status::Cancelled("request cancelled before translating '" +
                                    source + "'"));
    }
    if (budget.expired(now)) {
      report->deadline_hit = true;
      deadline_hits_.fetch_add(1, std::memory_order_relaxed);
      if (deadline_counter_ != nullptr) deadline_counter_->Inc();
      return fail(Status::DeadlineExceeded(
          "deadline exceeded before attempt " + std::to_string(try_no) +
          " for source '" + source + "'"));
    }
    BreakerEvent allow_event = BreakerEvent::kNone;
    if (!breaker.Allow(now, &allow_event)) {
      report->breaker_rejected = true;
      breaker_rejections_.fetch_add(1, std::memory_order_relaxed);
      if (rejections_counter_ != nullptr) rejections_counter_->Inc();
      return fail(Status::Unavailable("circuit breaker open for source '" +
                                      source + "'"));
    }
    NoteBreakerEvent(allow_event);
    ++report->attempts;

    const auto run_once = [&]() -> Result<Translation> {
      Span attempt_span(trace, "retry.attempt", parent_span);
      if (attempt_span.enabled()) {
        attempt_span.AddAttr("source", source);
        attempt_span.AddAttr("attempt", std::to_string(try_no));
      }
      Fault fault = injector_ != nullptr ? injector_->Next(source) : Fault{};
      if (fault.kind != FaultKind::kNone && injected_counter_ != nullptr) {
        injected_counter_->Inc();
      }
      switch (fault.kind) {
        case FaultKind::kFail:
          if (attempt_span.enabled()) attempt_span.AddAttr("fault", "fail");
          return fault.status.ok()
                     ? Status::Unavailable("injected fault for '" + source + "'")
                     : fault.status;
        case FaultKind::kStall: {
          if (attempt_span.enabled()) attempt_span.AddAttr("fault", "stall");
          clock_->SleepUs(fault.stall_us);
          if (budget.expired(clock_->NowUs())) {
            return Status::DeadlineExceeded("source '" + source +
                                            "' stalled past its deadline");
          }
          return attempt();
        }
        case FaultKind::kDegrade: {
          if (attempt_span.enabled()) attempt_span.AddAttr("fault", "degrade");
          Result<Translation> real = attempt();
          if (!real.ok()) return real;
          report->degraded = true;
          degraded_.fetch_add(1, std::memory_order_relaxed);
          if (degraded_counter_ != nullptr) degraded_counter_->Inc();
          return DegradeTranslation(original, *real, fault.degrade_level);
        }
        case FaultKind::kNone:
          return attempt();
      }
      return attempt();  // unreachable
    };

    Result<Translation> result = run_once();
    now = clock_->NowUs();
    if (result.ok()) {
      NoteBreakerEvent(breaker.RecordSuccess(now));
      return result;
    }
    NoteBreakerEvent(breaker.RecordFailure(now));
    const StatusCode code = result.status().code();
    if (code == StatusCode::kDeadlineExceeded) {
      report->deadline_hit = true;
      deadline_hits_.fetch_add(1, std::memory_order_relaxed);
      if (deadline_counter_ != nullptr) deadline_counter_->Inc();
      return fail(result.status());
    }
    if (!IsRetryable(code) || try_no >= max_attempts) {
      return fail(result.status());
    }
    uint64_t backoff_us;
    {
      std::lock_guard<std::mutex> lock(rng_mu_);
      backoff_us =
          NextDecorrelatedBackoffUs(options_.retry, prev_backoff_us,
                                    backoff_rng_);
    }
    prev_backoff_us = backoff_us;
    // Never sleep past the budget; the expiry check at the top of the next
    // iteration converts an exhausted budget into DeadlineExceeded.
    if (budget.bounded()) {
      backoff_us = std::min(backoff_us, budget.remaining_us(now));
    }
    if (backoff_us > 0) {
      const int64_t backoff_start_ns = trace != nullptr ? trace->NowNs() : 0;
      clock_->SleepUs(backoff_us);
      if (trace != nullptr) {
        trace->AddCompleteSpan("retry.backoff", parent_span, backoff_start_ns,
                               trace->NowNs());
      }
    }
    ++report->retries;
    retries_.fetch_add(1, std::memory_order_relaxed);
    if (retries_counter_ != nullptr) retries_counter_->Inc();
  }
}

const char* CircuitBreaker::StateName(State state) {
  switch (state) {
    case State::kClosed: return "closed";
    case State::kOpen: return "open";
    case State::kHalfOpen: return "half_open";
  }
  return "unknown";
}

CircuitBreaker::State ResilienceManager::breaker_state(
    const std::string& source) const {
  std::lock_guard<std::mutex> lock(breakers_mu_);
  auto it = breakers_.find(source);
  if (it == breakers_.end()) return CircuitBreaker::State::kClosed;
  return it->second->state();
}

std::vector<std::pair<std::string, CircuitBreaker::State>>
ResilienceManager::breaker_states() const {
  std::lock_guard<std::mutex> lock(breakers_mu_);
  std::vector<std::pair<std::string, CircuitBreaker::State>> out;
  out.reserve(breakers_.size());
  for (const auto& [source, breaker] : breakers_) {
    out.emplace_back(source, breaker->state());
  }
  return out;
}

void ResilienceManager::RecordPartialResult(size_t) {
  partial_results_.fetch_add(1, std::memory_order_relaxed);
  if (partials_counter_ != nullptr) partials_counter_->Inc();
}

ResilienceCounters ResilienceManager::counters() const {
  ResilienceCounters out;
  out.retries = retries_.load(std::memory_order_relaxed);
  out.deadline_hits = deadline_hits_.load(std::memory_order_relaxed);
  out.breaker_rejections = breaker_rejections_.load(std::memory_order_relaxed);
  out.breaker_opened = breaker_opened_.load(std::memory_order_relaxed);
  out.breaker_half_opened =
      breaker_half_opened_.load(std::memory_order_relaxed);
  out.breaker_closed = breaker_closed_.load(std::memory_order_relaxed);
  out.degraded = degraded_.load(std::memory_order_relaxed);
  out.source_failures = source_failures_.load(std::memory_order_relaxed);
  out.partial_results = partial_results_.load(std::memory_order_relaxed);
  out.faults_injected =
      injector_ != nullptr ? injector_->faults_injected() : 0;
  return out;
}

}  // namespace qmap
