#ifndef QMAP_SERVICE_THREAD_POOL_H_
#define QMAP_SERVICE_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace qmap {

class Histogram;
class MetricsRegistry;

/// A fixed-size worker pool with a single FIFO task queue. Tasks are opaque
/// thunks; completion signalling (latches, futures) is the caller's concern.
/// The destructor drains the queue: tasks already submitted run to
/// completion before the workers join, so a caller blocked on a latch never
/// deadlocks against pool teardown.
///
/// Cancellation contract: the pool has no preemption and no task removal —
/// every submitted task runs exactly once. Cancellation is therefore
/// *cooperative*: a caller that hands workers pointers into its own stack
/// frame (the fan-out pattern in TranslationService::TranslateFull) must
/// wait for all of its tasks to finish before returning, even when the
/// request's deadline has already expired; tasks observe a CancelToken and
/// return early instead of being abandoned. Dropping the wait would leave
/// detached workers writing into a dead frame — see docs/ROBUSTNESS.md.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to at least 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Tasks submitted but not yet picked up by a worker. A point-in-time
  /// reading (the queue moves concurrently); useful for load shedding and
  /// for asserting in tests that a drained pool holds no stragglers.
  size_t queue_depth() const;

  /// Records every task's queue-wait time (Submit → a worker picking it up)
  /// and run time into `registry` as the qmap_pool_queue_wait_us and
  /// qmap_pool_run_us histograms. Setup-phase only: call before the first
  /// Submit; the registry must outlive the pool. Null detaches — the
  /// default, in which case Submit does no clock reads at all.
  void AttachMetrics(MetricsRegistry* registry);

  /// Enqueues `task` for execution on some worker. Safe to call from any
  /// thread, including from inside a task.
  void Submit(std::function<void()> task);

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;  // guarded by mu_
  bool stopping_ = false;                    // guarded by mu_
  std::vector<std::thread> workers_;

  // Optional metric bridges (see AttachMetrics); null when detached.
  Histogram* queue_wait_hist_ = nullptr;
  Histogram* run_hist_ = nullptr;
};

}  // namespace qmap

#endif  // QMAP_SERVICE_THREAD_POOL_H_
