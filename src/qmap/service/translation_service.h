#ifndef QMAP_SERVICE_TRANSLATION_SERVICE_H_
#define QMAP_SERVICE_TRANSLATION_SERVICE_H_

#include <atomic>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "qmap/mediator/mediator.h"
#include "qmap/service/thread_pool.h"
#include "qmap/service/translation_cache.h"

namespace qmap {

struct ServiceOptions {
  /// Options forwarded to every per-source Translator.
  TranslatorOptions translator;
  /// Worker threads for the per-source fan-out. 1 (or less) runs every
  /// translation inline on the calling thread — the serial reference path.
  int num_threads = 4;
  /// Shared translation cache across all queries and sources; disable to
  /// force a fresh translation on every call (e.g. for benchmarking the
  /// mapping algorithms themselves).
  bool enable_cache = true;
  TranslationCacheOptions cache;
};

/// Aggregate service counters (monotonic over the service lifetime).
struct ServiceStats {
  TranslationCacheStats cache;
  uint64_t translate_calls = 0;
  uint64_t batch_calls = 0;
  uint64_t batch_queries = 0;     // queries received across all batches
  uint64_t batch_duplicates = 0;  // batch queries answered by intra-batch dedup
  uint64_t parallel_tasks = 0;    // per-source tasks dispatched to the pool
  uint64_t inline_tasks = 0;      // per-source tasks run on the calling thread
};

/// A reusable, thread-safe translation service over a fixed federation: the
/// mediation pipeline's S_i(Q) fan-out (Section 2, Eq. 3) run concurrently
/// per source, with completed Translations memoized in a sharded LRU cache.
///
/// Results are deterministic: sources are kept sorted by name, and the
/// coverage merge / residue-filter construction always runs in that order,
/// so a Translate with N worker threads returns exactly what the 1-thread
/// (inline) configuration returns — and what Mediator::Translate returns
/// for the same federation — modulo the observability-only `stats` fields.
///
/// Threading contract: AddSource / AddSourcesFrom / SetViewConstraints are
/// setup-phase only (not thread-safe against concurrent Translate calls).
/// Once set up, Translate and TranslateBatch may be called from any number
/// of threads: per-source MappingSpecs are strictly read-only during
/// translation (see MappingSpec's class comment).
class TranslationService {
 public:
  explicit TranslationService(ServiceOptions options = {});

  /// Registers one source's mapping specification under `name` (unique per
  /// service; also part of the cache key).
  void AddSource(std::string name, MappingSpec spec);

  /// Copies every source spec and the view constraints out of `mediator`,
  /// so the service translates exactly as the mediator does.
  void AddSourcesFrom(const Mediator& mediator);

  /// See Mediator::SetViewConstraints. Invalidates cached entries (the
  /// constraints are conjoined into the query, hence into the cache key).
  void SetViewConstraints(Query constraints);

  size_t num_sources() const { return sources_.size(); }

  /// Translates `query` for every source: Eq. 3's S_1(Q) ... S_n(Q) plus
  /// the merged residue filter F. Per-source work runs on the pool when one
  /// is configured; cached sources skip rule matching entirely. The returned
  /// translation's `stats` aggregates per-source counters plus the service's
  /// cache/parallelism counters for this call.
  Result<MediatorTranslation> Translate(const Query& query) const;

  /// Translates a batch, deduplicating identical queries (by normalized
  /// printed form) within the batch: duplicates are translated once and the
  /// result replicated. Output order matches input order. The first failing
  /// query's status fails the whole batch.
  Result<std::vector<MediatorTranslation>> TranslateBatch(
      std::span<const Query> queries) const;

  ServiceStats stats() const;

 private:
  struct SourceEntry {
    std::string name;
    Translator translator;
    /// Cache-key prefix: source name + spec fingerprint + translator
    /// options tag (see docs/ALGORITHMS.md for the scheme).
    std::string cache_prefix;
  };

  /// One per-source unit of work: cache lookup, else translate and fill.
  Result<Translation> TranslateOne(const SourceEntry& source, const Query& full,
                                   const std::string& query_text) const;

  /// The fan-out + deterministic join for one full query (view constraints
  /// already conjoined, `query_text` its normalized printed form).
  Result<MediatorTranslation> TranslateFull(const Query& full,
                                            const std::string& query_text) const;

  ServiceOptions options_;
  std::vector<SourceEntry> sources_;  // sorted by name
  Query view_constraints_ = Query::True();
  std::unique_ptr<ThreadPool> pool_;  // null when num_threads <= 1
  mutable TranslationCache cache_;
  mutable std::atomic<uint64_t> translate_calls_{0};
  mutable std::atomic<uint64_t> batch_calls_{0};
  mutable std::atomic<uint64_t> batch_queries_{0};
  mutable std::atomic<uint64_t> batch_duplicates_{0};
  mutable std::atomic<uint64_t> parallel_tasks_{0};
  mutable std::atomic<uint64_t> inline_tasks_{0};
};

}  // namespace qmap

#endif  // QMAP_SERVICE_TRANSLATION_SERVICE_H_
