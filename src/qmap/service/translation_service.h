#ifndef QMAP_SERVICE_TRANSLATION_SERVICE_H_
#define QMAP_SERVICE_TRANSLATION_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "qmap/mediator/mediator.h"
#include "qmap/obs/admin_http.h"
#include "qmap/rules/compose.h"
#include "qmap/rules/containment.h"
#include "qmap/obs/trace_ring.h"
#include "qmap/service/resilience.h"
#include "qmap/service/source_transport.h"
#include "qmap/service/thread_pool.h"
#include "qmap/service/translation_cache.h"
#include "qmap/store/translation_store.h"

namespace qmap {

class Counter;
class Histogram;
class MatchMemo;
class MetricsRegistry;
class Trace;

/// When to capture a query into the service's slow-query log (see
/// docs/OBSERVABILITY.md). A query is "slow" when its wall time reaches
/// `latency_threshold_us`, or when any source's translation produced at
/// least `disjunct_threshold` DNF disjuncts — the paper's 2^n blowup
/// (Section 8) shows up as disjunct count before it shows up as latency
/// on small inputs, so both axes are worth watching.
struct SlowQueryLogOptions {
  bool enabled = false;
  /// Wall-time threshold in microseconds; 0 logs every query.
  uint64_t latency_threshold_us = 1000;
  /// Per-source DNF disjunct threshold; 0 ignores disjunct counts.
  uint64_t disjunct_threshold = 0;
  /// Ring-buffer size: only the most recent `capacity` slow queries are
  /// kept (the qmap_slow_queries_total counter keeps the lifetime count).
  size_t capacity = 32;
  /// Also capture every query that came back partial or degraded (see
  /// MediatorTranslation::partial), regardless of latency — a dropped
  /// source is worth a log entry even when the survivors answered fast.
  bool capture_partial = true;
};

/// Observability wiring for the service. All of it defaults to off, in
/// which case the service adds no clock reads or locking to the
/// translation path.
struct ObsOptions {
  /// When set, the service registers and updates counters/histograms here
  /// (qmap_translate_total, qmap_translate_latency_us, qmap_cache_*_total,
  /// qmap_pool_*_us, qmap_slow_queries_total, the rule-matching counters
  /// qmap_match_pattern_attempts_total / qmap_match_index_hits_total /
  /// qmap_match_memo_hits_total / qmap_match_attempts_saved_total, and
  /// per-phase qmap_span_*_us from traced runs). Must outlive the service.
  MetricsRegistry* metrics = nullptr;
  SlowQueryLogOptions slow_query;
  /// Sampled trace retention (see qmap/obs/trace_ring.h): every Nth query
  /// is traced and kept in a bounded ring, latency outliers (the slow-query
  /// criteria) are always kept, and the latency histogram's buckets remember
  /// the retained traces as exemplars. Off by default; when enabled the
  /// admin server's /tracez serves the ring.
  TraceRingOptions trace_ring;
};

/// One captured slow query (see SlowQueryLogOptions).
struct SlowQueryRecord {
  /// The normalized printed form of the full query (view constraints
  /// conjoined), rendered lazily for the log — the translation path itself
  /// keys caches by Query::fingerprint() and never prints.
  std::string query_text;
  uint64_t total_us = 0;
  /// Max dnf_disjuncts over the per-source translations.
  uint64_t max_disjuncts = 0;
  /// TranslationStats::ToString() of the aggregated stats.
  std::string stats;
  /// PartialResult::ToString() when the query came back partial or
  /// degraded; empty for complete answers.
  std::string partial_summary;
  /// Trace::ToJson() of the per-query trace (per-source spans, pool waits,
  /// cache lookups). Present even when the caller did not pass a Trace:
  /// the service records an internal trace whenever the slow-query log is
  /// enabled.
  std::string trace_json;
};

struct ServiceOptions {
  /// Options forwarded to every per-source Translator.
  TranslatorOptions translator;
  /// Worker threads for the per-source fan-out. 1 (or less) runs every
  /// translation inline on the calling thread — the serial reference path.
  int num_threads = 4;
  /// Shared translation cache across all queries and sources; disable to
  /// force a fresh translation on every call (e.g. for benchmarking the
  /// mapping algorithms themselves).
  bool enable_cache = true;
  TranslationCacheOptions cache;
  /// Metrics and slow-query-log wiring; off by default.
  ObsOptions obs;
  /// Graceful-degradation policy (retry/backoff, circuit breaking, deadline
  /// budgets, partial results); off by default. See docs/ROBUSTNESS.md.
  ResilienceOptions resilience;
  /// Persistent translation store under the RAM cache (qmap/store): misses
  /// fall through to disk, completed translations are persisted, and on the
  /// first Translate the store's live entries for the registered sources are
  /// replayed into the RAM cache (store.replay_on_boot) so a restarted
  /// service comes back warm. Disabled when store.path is empty (the
  /// default) or when enable_cache is false. An Open failure (corrupt
  /// directory, permissions) degrades to cache-only operation rather than
  /// failing construction; see store_open_status().
  StoreOptions store;
  /// Optional deterministic fault injector for tests/benchmarks; keys are
  /// source names. Setting it activates the resilience layer even when
  /// resilience.enabled is false (faults must pass through the guards to be
  /// observed). Must outlive the service.
  FaultInjector* fault_injector = nullptr;
  /// Clock for deadlines/backoff/stalls; null uses the system clock. Tests
  /// pass a ManualClock so stall and timeout scenarios never really sleep.
  ResilienceClock* clock = nullptr;
  /// When set, every AddSource/AddChain runs the containment pre-pass
  /// (PruneContainedSources): a source whose mapping is provably contained
  /// in another registered source's mapping is dropped from the fan-out.
  /// Sound for union-replica catalogs (the merged result and residue filter
  /// are recomputed from the survivors); leave off when sources hold
  /// disjoint data you want per-source translations for.
  bool prune_contained_sources = false;
  /// Knobs forwarded to ComposeSpecs by AddChain.
  ComposeOptions compose;
};

/// Aggregate service counters (monotonic over the service lifetime).
struct ServiceStats {
  TranslationCacheStats cache;
  /// Persistent-tier counters; all zero when no store is configured.
  StoreStats store;
  uint64_t translate_calls = 0;
  uint64_t batch_calls = 0;
  uint64_t batch_queries = 0;     // queries received across all batches
  uint64_t batch_duplicates = 0;  // batch queries answered by intra-batch dedup
  uint64_t parallel_tasks = 0;    // per-source tasks dispatched to the pool
  uint64_t inline_tasks = 0;      // per-source tasks run on the calling thread
  uint64_t slow_queries = 0;      // queries captured by the slow-query log
};

/// Per-source operational state for the admin plane's /statusz scoreboard.
struct SourceStatus {
  std::string name;
  /// Where the source's translation runs: "local" or the remote worker's
  /// "host:port" (SourceTransport::endpoint()).
  std::string endpoint;
  CircuitBreaker::State breaker = CircuitBreaker::State::kClosed;
  uint64_t in_flight = 0;  // guarded calls currently running
  uint64_t calls = 0;      // per-source translations attempted (cache misses)
  uint64_t failures = 0;   // attempts that returned a non-ok status
  uint64_t retries = 0;    // resilience-layer retries spent on this source
};

/// One registered multi-hop chain (AddChain): its topology and the offline
/// composition's outcome, for /statusz and StatusSnapshot().
struct ChainStatus {
  std::string name;                    // the registered source name
  std::vector<std::string> hop_targets;  // target vocab of each hop, in order
  int composed_rules = 0;
  int approximate_marks = 0;
  /// True when every fold was proven evaluation-equivalent to sequential
  /// hop-by-hop translation (ComposedSpec::exact for all folds).
  bool exact = true;
};

/// One source dropped by the containment pre-pass, for /statusz.
struct PrunedSourceStatus {
  std::string name;
  std::string subsumed_by;
};

/// One coherent status snapshot of the whole service, for /varz, /readyz
/// and /statusz. `ready` is the load-balancer signal: the configured store
/// opened cleanly (or none is configured) and the boot-replay warm-up has
/// run (or is not configured).
struct ServiceStatus {
  bool ready = false;
  bool store_configured = false;
  bool store_ok = false;   // true when no store is configured
  bool warmed_up = false;  // boot replay completed (false when not configured)
  /// Active rule-matching engine (MatchEngineName of CurrentMatchEngine):
  /// "naive", "indexed", or "compiled".
  std::string match_engine;
  /// BeginDrain() was called (also forces ready=false): the process is
  /// shutting down and wants traffic steered away.
  bool draining = false;
  ServiceStats stats;
  size_t cache_entries = 0;
  size_t pool_threads = 0;      // 0 = inline (serial) mode
  size_t pool_queue_depth = 0;
  std::vector<SourceStatus> sources;
  bool resilience_enabled = false;
  ResilienceCounters resilience;
  bool trace_ring_enabled = false;
  TraceRingStats trace_ring;
  std::vector<ChainStatus> chains;
  std::vector<PrunedSourceStatus> pruned_sources;
};

/// Configuration for the service's admin/introspection HTTP server.
struct AdminOptions {
  AdminHttpOptions http;
  /// Invoked when /drainz is hit, after the service has marked itself
  /// draining (readiness already reads "not ready"). The embedding process
  /// hooks its own shutdown here — a wire front-end stops accepting, an
  /// embedding binary arranges its exit.
  std::function<void()> on_drain;
  /// Additional handlers registered verbatim on the admin server, path →
  /// handler. Lets embedding processes (the federation worker/front-end
  /// binaries) expose their own endpoints on the service's admin port.
  std::vector<std::pair<std::string, AdminHandler>> extra_handlers;
};

/// One row of SourceCatalog(): what a worker advertises so a front-end can
/// mint cache keys whose rule-set-version third matches the worker's.
struct SourceCatalogEntry {
  std::string name;
  uint64_t rule_set_fp = 0;
};

/// A reusable, thread-safe translation service over a fixed federation: the
/// mediation pipeline's S_i(Q) fan-out (Section 2, Eq. 3) run concurrently
/// per source, with completed Translations memoized in a sharded LRU cache.
///
/// Results are deterministic: sources are kept sorted by name, and the
/// coverage merge / residue-filter construction always runs in that order,
/// so a Translate with N worker threads returns exactly what the 1-thread
/// (inline) configuration returns — and what Mediator::Translate returns
/// for the same federation — modulo the observability-only `stats` fields.
///
/// Threading contract: AddSource / AddSourcesFrom / SetViewConstraints are
/// setup-phase only (not thread-safe against concurrent Translate calls).
/// Once set up, Translate and TranslateBatch may be called from any number
/// of threads: per-source MappingSpecs are strictly read-only during
/// translation (see MappingSpec's class comment).
class TranslationService {
 public:
  explicit TranslationService(ServiceOptions options = {});

  /// Detaches the intern-metrics bridge if this service attached it (see
  /// AttachInternMetrics), so the bridge never outlives the registry.
  ~TranslationService();

  /// Registers one source's mapping specification under `name` (unique per
  /// service; also part of the cache key). The no-capabilities overload
  /// registers an empty capability set.
  void AddSource(std::string name, MappingSpec spec);
  void AddSource(std::string name, MappingSpec spec,
                 const SourceCapabilities& capabilities);

  /// Registers a source whose translation runs behind `transport` (e.g. a
  /// RemoteTransport to a shard worker). `rule_set_fp` is the worker's
  /// advertised fingerprint for this source (see SourceCatalog) — using the
  /// worker's value keeps the front-end's cache/store keys aligned with the
  /// worker's, so both tiers invalidate together when the rules change.
  /// The transport must be thread-safe: the fan-out calls it concurrently.
  void AddRemoteSource(std::string name, uint64_t rule_set_fp,
                       std::shared_ptr<SourceTransport> transport);

  /// Copies every source spec, its declared capabilities, and the view
  /// constraints out of `mediator`, so the service translates exactly as
  /// the mediator does.
  void AddSourcesFrom(const Mediator& mediator);

  /// Registers a multi-hop mediation chain as a single source: folds the
  /// hop specs left-to-right through ComposeSpecs (hops[0] maps the
  /// mediator vocabulary to the first intermediate, hops.back() maps the
  /// last intermediate to the source), then AddSource's the composed spec
  /// under `name`. The no-capabilities overload derives capabilities from
  /// the composed spec (RequiredCapabilities), so every composed emission
  /// is realizable. Composition happens offline, once, at registration —
  /// the per-query path sees an ordinary one-hop source. The chain's
  /// topology and composition outcome are recorded (see chains() and
  /// /statusz), and when the trace ring is enabled the offline compose
  /// trace is retained as an outlier so operators can inspect it.
  /// Setup-phase only. Fails if `hops` is empty or a fold fails.
  Status AddChain(std::string name, const std::vector<MappingSpec>& hops);
  Status AddChain(std::string name, const std::vector<MappingSpec>& hops,
                  const SourceCapabilities& capabilities);

  /// Runs the containment pre-pass over the registered local-spec sources:
  /// a source whose mapping is provably contained in another's
  /// (Contains == kContains) is removed from the fan-out and recorded in
  /// pruned_sources(). Conservative — kUnknown never prunes. Sound for
  /// union-replica catalogs because the merged result and residue filter
  /// are recomputed from the survivors (a subsumed source can only
  /// contribute translations the subsuming source also answers). Remote
  /// sources (no local spec) are never pruned. Invoked automatically after
  /// each AddSource/AddChain when options.prune_contained_sources is set;
  /// callable explicitly for one-shot setup-phase pruning. Returns the
  /// number of sources pruned by this call.
  size_t PruneContainedSources();

  /// The chains registered via AddChain, in registration order.
  const std::vector<ChainStatus>& chains() const { return chains_; }

  /// Sources dropped by the containment pre-pass, in prune order.
  const std::vector<PrunedSourceStatus>& pruned_sources() const {
    return pruned_;
  }

  /// What this service advertises to front-ends: every registered source
  /// and its rule-set fingerprint, in sources_ (name) order.
  std::vector<SourceCatalogEntry> SourceCatalog() const;

  /// Worker-side single-source entry: translates `full` for the named
  /// source through the normal cache → store → guarded-translate path.
  /// `full` must already be the complete query — the wire contract is that
  /// the front-end conjoins its view constraints before sending, so this
  /// does NOT conjoin this service's own view constraints (a worker serving
  /// a federation keeps them empty). `deadline_ms` bounds the call (0 = no
  /// deadline beyond the service's own request deadline).
  Result<Translation> TranslateSource(std::string_view name, const Query& full,
                                      uint32_t deadline_ms = 0) const;

  /// Marks the service draining: /readyz flips to 503 and StatusSnapshot()
  /// reports draining, so load balancers steer new traffic away while
  /// in-flight work completes. Idempotent; there is no un-drain.
  void BeginDrain() { draining_.store(true, std::memory_order_relaxed); }
  bool draining() const { return draining_.load(std::memory_order_relaxed); }

  /// See Mediator::SetViewConstraints. Invalidates cached entries (the
  /// constraints are conjoined into the query, hence into the cache key).
  void SetViewConstraints(Query constraints);

  size_t num_sources() const { return sources_.size(); }

  /// Translates `query` for every source: Eq. 3's S_1(Q) ... S_n(Q) plus
  /// the merged residue filter F. Per-source work runs on the pool when one
  /// is configured; cached sources skip rule matching entirely. The returned
  /// translation's `stats` aggregates per-source counters plus the service's
  /// cache/parallelism counters for this call.
  ///
  /// When `trace` is non-null the whole call is recorded into it: a
  /// service.translate root span, one source.translate span per source
  /// (with pool.wait spans when the fan-out runs on the pool), cache
  /// lookups, and the full per-source algorithm spans underneath (tdqm,
  /// psafe, ednf.safety, scm, disjunctivize — see docs/OBSERVABILITY.md).
  /// Caveat: reusing one Trace across calls double-counts its spans in
  /// qmap_span_* metrics; pass a fresh Trace per call when metrics are on.
  Result<MediatorTranslation> Translate(const Query& query,
                                        Trace* trace = nullptr) const;

  /// Translates a batch, deduplicating structurally identical normalized
  /// queries within the batch (fingerprint probe, StructurallyEquals
  /// confirm): duplicates are translated once and the result replicated.
  /// Output order matches input order. The first failing query's status
  /// fails the whole batch.
  Result<std::vector<MediatorTranslation>> TranslateBatch(
      std::span<const Query> queries) const;

  ServiceStats stats() const;

  /// Snapshot of the slow-query ring buffer, oldest first. Empty unless
  /// options.obs.slow_query.enabled.
  std::vector<SlowQueryRecord> slow_queries() const;

  /// The resilience layer, or null when neither options.resilience.enabled
  /// nor options.fault_injector was set. Exposes counters, breaker state
  /// and the clock for tests and operators.
  ResilienceManager* resilience() const { return resilience_.get(); }

  /// The persistent tier, or null when options.store.path was empty /
  /// enable_cache was off / the store failed to open.
  TranslationStore* store() const { return store_.get(); }

  /// Ok unless a configured store failed to open (the service then runs
  /// cache-only; the error is kept here for operators).
  const Status& store_open_status() const { return store_open_status_; }

  /// The trace-retention ring, or null when options.obs.trace_ring.enabled
  /// was off. See /tracez and docs/OBSERVABILITY.md.
  TraceRing* trace_ring() const { return trace_ring_.get(); }

  /// One coherent snapshot of the service's operational state (readiness,
  /// per-source scoreboard, cache/store/pool/resilience/trace-ring
  /// counters). This is what the admin endpoints serve; also useful
  /// directly in tests and embedding processes.
  ServiceStatus StatusSnapshot() const;

  /// Starts the admin/introspection HTTP server (see qmap/obs/admin_http.h)
  /// with handlers for /healthz, /readyz, /varz, /metrics, /statusz,
  /// /tracez and /slowlogz. Runs the store warm-up first so readiness is
  /// meaningful the moment the port is open. Fails if already started or
  /// the port cannot be bound. The server is stopped by StopAdmin() or the
  /// service destructor.
  Status StartAdmin(const AdminOptions& options = {});

  /// Stops the admin server if running. Idempotent.
  void StopAdmin();

  /// The running admin server (for its port and stats), or null.
  AdminHttpServer* admin_server() const { return admin_.get(); }

 private:
  /// Shared body of the two AddChain overloads; `capabilities` null means
  /// "derive from the composed spec".
  Status AddChainImpl(std::string name, const std::vector<MappingSpec>& hops,
                      const SourceCapabilities* capabilities);

  /// Per-source operational counters, updated lock-free on the translation
  /// path and snapshotted by StatusSnapshot(). Heap-allocated per entry so
  /// SourceEntry stays movable (atomics are not).
  struct SourceRuntime {
    std::atomic<uint64_t> in_flight{0};
    std::atomic<uint64_t> calls{0};
    std::atomic<uint64_t> failures{0};
    std::atomic<uint64_t> retries{0};
  };

  struct SourceEntry {
    std::string name;
    /// Where this source's translation runs: InProcessTransport for
    /// AddSource'd specs, RemoteTransport (or any custom impl) for
    /// AddRemoteSource. Never null once registered.
    std::shared_ptr<SourceTransport> transport;
    std::unique_ptr<SourceRuntime> runtime;
    /// Context third of the typed cache key: one FNV-64 over the source
    /// name and the translator options tag (see docs/ALGORITHMS.md for the
    /// scheme). The query third is Query::fingerprint().
    uint64_t cache_key_prefix = 0;
    /// Rule-set-version third: the spec fingerprint mixed with the declared
    /// capability fingerprint. Changing either changes this value, making
    /// every cache/store entry minted under the old mapping unreachable.
    uint64_t rule_set_fp = 0;
  };

  /// Per-request match-memo scope: one thread-safe MatchMemo per source (in
  /// sources_ order), built for that source's spec. Created per Translate
  /// call and per TranslateBatch call (shared across the batch's unique
  /// queries), so memoized matchings never outlive the request that made
  /// them. Empty when options_.translator.use_match_memo is off — the
  /// per-source Translator then falls back to its own per-call memo.
  /// Remote sources (transport->spec() == nullptr) get a null slot: their
  /// rule matching memoizes on the worker, not here.
  std::vector<std::unique_ptr<MatchMemo>> MakeMemoScope() const;

  /// One per-source unit of work: cache lookup (typed fingerprint key),
  /// else translate (under the resilience guards when enabled) and fill.
  /// Degraded translations are never cached — a cached entry must be the
  /// exact mapping, not a widened one. `cancel` and `report` may be null.
  Result<Translation> TranslateOne(const SourceEntry& source, const Query& full,
                                   Trace* trace, uint64_t parent_span,
                                   MatchMemo* memo, const CancelToken* cancel,
                                   ResilienceManager::CallReport* report) const;

  /// The fan-out + deterministic join for one full query (view constraints
  /// already conjoined). `memos` is the request's memo scope (may be empty).
  ///
  /// Cancellation/lifetime contract: workers write into stack-allocated
  /// per-request state, so this function ALWAYS waits for every dispatched
  /// task — even when `cancel` has already expired. Workers poll the token
  /// and bail out fast instead of being abandoned (see docs/ROBUSTNESS.md).
  Result<MediatorTranslation> TranslateFull(
      const Query& full, Trace* trace,
      const std::vector<std::unique_ptr<MatchMemo>>& memos,
      const CancelToken* cancel) const;

  /// TranslateFull plus the observability envelope: wall-clock timing, the
  /// latency histogram, folding trace spans into per-phase metrics, and
  /// slow-query capture (which renders the query text lazily). Creates an
  /// internal Trace when the caller passed none but metrics or the
  /// slow-query log need one.
  Result<MediatorTranslation> TranslateObserved(
      const Query& full, Trace* trace,
      const std::vector<std::unique_ptr<MatchMemo>>& memos,
      const CancelToken* cancel) const;

  /// Builds the request-level cancel token when a request deadline is
  /// configured; returns null (no token) otherwise.
  const CancelToken* MakeRequestToken(CancelToken* storage) const;

  /// Refreshes the point-in-time gauges (pool queue depth, cache entries,
  /// store live records, per-source breaker state) in the attached registry.
  /// Called by the admin handlers just before exporting, so scrapes always
  /// see current values without the translation path paying for gauge
  /// updates. No-op without a registry.
  void UpdateGauges() const;

  /// Folds the process-wide plan-compile telemetry (CompiledPlanGlobalStats)
  /// into qmap_match_compile_ns / qmap_match_plan_nodes as deltas against
  /// the bridged high-water marks. No-op without a registry.
  void BridgeCompileStats() const;

  /// Registers the /healthz .. /drainz handlers on `server`, plus
  /// `options.extra_handlers`.
  void RegisterAdminHandlers(AdminHttpServer* server,
                             const AdminOptions& options);

  /// One-time warm-up replay (options_.store.replay_on_boot): runs on the
  /// first Translate, after setup, so every registered source's
  /// (context, rule-set) pair is known. Only entries matching a currently
  /// registered pair are replayed — entries from removed sources or old
  /// rule-set versions stay on disk for compaction to reclaim.
  void WarmUpFromStoreOnce() const;

  ServiceOptions options_;
  std::vector<SourceEntry> sources_;  // sorted by name
  // Chain registrations (AddChain) and containment-pruned sources, both
  // setup-phase state snapshotted by StatusSnapshot().
  std::vector<ChainStatus> chains_;
  std::vector<PrunedSourceStatus> pruned_;
  Query view_constraints_ = Query::True();
  std::unique_ptr<ThreadPool> pool_;  // null when num_threads <= 1
  // Non-null when options_.resilience.enabled or a fault injector is set.
  std::unique_ptr<ResilienceManager> resilience_;
  mutable TranslationCache cache_;
  // Non-null when options_.store.path is set, the cache is enabled, and the
  // store opened cleanly.
  std::unique_ptr<TranslationStore> store_;
  Status store_open_status_;
  // Non-null when options_.obs.trace_ring.enabled.
  std::unique_ptr<TraceRing> trace_ring_;
  // Non-null between StartAdmin() and StopAdmin()/destruction.
  std::unique_ptr<AdminHttpServer> admin_;
  mutable std::once_flag warmup_once_;
  mutable std::atomic<bool> warmed_up_{false};
  std::atomic<bool> draining_{false};
  mutable std::atomic<uint64_t> translate_calls_{0};
  mutable std::atomic<uint64_t> batch_calls_{0};
  mutable std::atomic<uint64_t> batch_queries_{0};
  mutable std::atomic<uint64_t> batch_duplicates_{0};
  mutable std::atomic<uint64_t> parallel_tasks_{0};
  mutable std::atomic<uint64_t> inline_tasks_{0};
  mutable std::atomic<uint64_t> slow_queries_{0};

  // Slow-query ring buffer (guarded by slow_mu_), newest at the back.
  mutable std::mutex slow_mu_;
  mutable std::deque<SlowQueryRecord> slow_log_;

  // Cached metric handles (see ObsOptions::metrics); null when detached.
  Counter* translate_counter_ = nullptr;
  Counter* slow_counter_ = nullptr;
  Histogram* latency_hist_ = nullptr;
  Counter* match_attempts_counter_ = nullptr;
  Counter* match_index_hits_counter_ = nullptr;
  Counter* match_memo_hits_counter_ = nullptr;
  Counter* match_saved_counter_ = nullptr;
  Counter* match_compiled_hits_counter_ = nullptr;
  Counter* match_compile_ns_counter_ = nullptr;
  Counter* match_plan_nodes_counter_ = nullptr;
  Counter* compose_chains_counter_ = nullptr;
  Counter* compose_rules_counter_ = nullptr;
  Counter* compose_skipped_counter_ = nullptr;
  Counter* containment_checks_counter_ = nullptr;
  Counter* containment_pruned_counter_ = nullptr;
  // High-water marks of the process-wide CompiledPlanGlobalStats() already
  // bridged into the registry counters above (delta bridging — the global
  // stats aggregate over every spec in the process, not just this service).
  mutable std::atomic<uint64_t> bridged_compile_ns_{0};
  mutable std::atomic<uint64_t> bridged_plan_nodes_{0};
};

}  // namespace qmap

#endif  // QMAP_SERVICE_TRANSLATION_SERVICE_H_
