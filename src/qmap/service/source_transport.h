#ifndef QMAP_SERVICE_SOURCE_TRANSPORT_H_
#define QMAP_SERVICE_SOURCE_TRANSPORT_H_

#include <memory>
#include <string>

#include "qmap/core/translator.h"
#include "qmap/service/resilience.h"

namespace qmap {

class MatchMemo;
class Trace;

/// Where a source's per-query translation actually runs. Every source in a
/// TranslationService / FederatedCatalog sits behind this interface, so the
/// caller's fan-out, resilience guards, caching, and partial-result merge
/// are identical whether the source's rule matching happens in this process
/// (InProcessTransport wrapping a Translator) or on a remote shard worker
/// (RemoteTransport speaking the wire protocol). A dead or slow remote
/// surfaces as an Unavailable/DeadlineExceeded status — exactly the failure
/// vocabulary the resilience layer already degrades around, which is what
/// makes "worker died" behave like "breaker tripped".
class SourceTransport {
 public:
  virtual ~SourceTransport() = default;

  /// Translates the full query (view constraints already conjoined) for
  /// this transport's source. `trace`/`parent_span` attach per-call spans;
  /// `memo` is the caller's per-request match memo (null for transports
  /// that cannot use one — remote matching memoizes on the worker);
  /// `cancel` carries the remaining deadline budget for propagation.
  /// Any of trace/memo/cancel may be null.
  virtual Result<Translation> Translate(const Query& full, Trace* trace,
                                        uint64_t parent_span, MatchMemo* memo,
                                        const CancelToken* cancel) = 0;

  /// The mapping spec when translation is local (used to build match
  /// memos); null when the rules live elsewhere.
  virtual const MappingSpec* spec() const { return nullptr; }

  /// Human-readable location for scoreboards and traces, e.g. "local" or
  /// "127.0.0.1:7001".
  virtual std::string endpoint() const { return "local"; }
};

/// The classic single-process path: a Translator invoked inline on the
/// calling (or pool) thread.
class InProcessTransport : public SourceTransport {
 public:
  explicit InProcessTransport(Translator translator)
      : translator_(std::move(translator)) {}

  Result<Translation> Translate(const Query& full, Trace* trace,
                                uint64_t parent_span, MatchMemo* memo,
                                const CancelToken* cancel) override {
    (void)cancel;  // deadline enforcement wraps the call (resilience guard)
    return translator_.Translate(full, trace, parent_span, memo);
  }

  const MappingSpec* spec() const override { return &translator_.spec(); }

  const Translator& translator() const { return translator_; }

 private:
  Translator translator_;
};

}  // namespace qmap

#endif  // QMAP_SERVICE_SOURCE_TRANSPORT_H_
