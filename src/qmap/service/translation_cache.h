#ifndef QMAP_SERVICE_TRANSLATION_CACHE_H_
#define QMAP_SERVICE_TRANSLATION_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "qmap/core/translator.h"

namespace qmap {

class Counter;
class MetricsRegistry;

struct TranslationCacheOptions {
  /// Total entry budget across all shards (per-shard budget is the ceiling
  /// of capacity/shards, at least 1).
  size_t capacity = 1024;
  /// Number of independently locked shards. More shards = less contention
  /// under concurrent translation; eviction is LRU *within* a shard.
  size_t shards = 8;
};

struct TranslationCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t updates = 0;  // Puts that overwrote an existing key
  uint64_t evictions = 0;
};

/// The typed cache key: three 64-bit fingerprints identifying (a) the
/// translation context — source name and option flags, (b) the **rule-set
/// version** — the source's MappingSpec::fingerprint() mixed with its
/// SourceCapabilities::Fingerprint(), and (c) the normalized query
/// (Query::fingerprint()). TranslationService composes these without
/// rendering any query text (see docs/ALGORITHMS.md, "The service layer").
///
/// The rule-set half is what makes cached translations version-safe: when a
/// source's rules or capabilities change, every key minted under the old
/// mapping differs in `rule_set`, so stale entries — in this RAM tier and in
/// the persistent qmap/store tier, which shares this key — become
/// unreachable rather than being served (see DESIGN.md §10). 192 bits
/// total; fingerprints are trusted without verification per the collision
/// policy of DESIGN.md §9.
struct TranslationCacheKey {
  uint64_t source = 0;
  uint64_t rule_set = 0;
  uint64_t query = 0;

  friend bool operator==(const TranslationCacheKey& a,
                         const TranslationCacheKey& b) = default;
};

/// Hash functor shared by the RAM cache shards and the persistent store's
/// in-memory index. The halves are already FNV outputs; mixing is enough.
struct TranslationCacheKeyHash {
  size_t operator()(const TranslationCacheKey& k) const {
    uint64_t h = k.source ^ (k.rule_set * 0xff51afd7ed558ccdull) ^
                 (k.query * 0x9e3779b97f4a7c15ull);
    return static_cast<size_t>(h ^ (h >> 29));
  }
};

/// A thread-safe sharded LRU map from TranslationCacheKey to completed
/// Translations. The legacy string-keyed Get/Put remain as wrappers that
/// fold the string into a typed key (two independent FNV streams), so both
/// key styles share one store, one budget, and one LRU order.
///
/// Get/Put copy the Translation value. Translation holds Query trees behind
/// shared immutable nodes with atomic refcounts, so copies handed to
/// concurrent callers are safe to use and destroy independently.
class TranslationCache {
 public:
  explicit TranslationCache(TranslationCacheOptions options = {});

  TranslationCache(const TranslationCache&) = delete;
  TranslationCache& operator=(const TranslationCache&) = delete;

  /// Mirrors hit/miss/insertion/update/eviction counts into `registry` as
  /// the qmap_cache_*_total counters, in addition to the internal stats().
  /// Setup-phase only: not thread-safe against concurrent Get/Put. Null
  /// detaches (the default, no-cost path: a single pointer check per
  /// operation).
  ///
  /// Lifetime: the registry must outlive either the cache or the
  /// attachment. An owner destroying the registry first must sever the
  /// bridge with DetachMetricsIf(&registry) beforehand — the same
  /// detach-on-dtor discipline the intern tables use (see
  /// qmap/expr/intern.h); TranslationService does this for the registry it
  /// is configured with.
  void AttachMetrics(MetricsRegistry* registry);

  /// Detaches the metric bridge only if `registry` is the currently
  /// attached one, so a stale owner cannot clobber a newer attachment.
  void DetachMetricsIf(MetricsRegistry* registry);

  /// Returns a copy of the entry and refreshes its recency, or nullopt.
  std::optional<Translation> Get(const TranslationCacheKey& key);
  std::optional<Translation> Get(const std::string& key);

  /// Inserts or overwrites `key`, making it the shard's most recent entry;
  /// evicts the shard's least recent entry when over budget.
  void Put(const TranslationCacheKey& key, Translation value);
  void Put(const std::string& key, Translation value);

  /// Counters aggregated over all shards (a consistent-enough snapshot:
  /// each shard is read under its lock, shards are read in sequence).
  TranslationCacheStats stats() const;

  /// Current number of entries across all shards.
  size_t size() const;

  /// Drops every entry (counters are kept).
  void Clear();

 private:
  struct Entry {
    TranslationCacheKey key;
    Translation value;
  };
  struct Shard {
    std::mutex mu;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<TranslationCacheKey, std::list<Entry>::iterator,
                       TranslationCacheKeyHash>
        index;
    TranslationCacheStats stats;
  };

  /// Folds a legacy string key into the typed key space: the three halves
  /// are independent FNV streams (distinguished by a leading tag byte), so a
  /// string key colliding with a composed fingerprint key needs a 192-bit
  /// coincidence.
  static TranslationCacheKey KeyOfString(const std::string& key);

  Shard& ShardFor(const TranslationCacheKey& key);

  std::vector<std::unique_ptr<Shard>> shards_;
  size_t per_shard_capacity_;

  // Optional metric bridges (see AttachMetrics); null when detached.
  MetricsRegistry* attached_registry_ = nullptr;
  Counter* hits_counter_ = nullptr;
  Counter* misses_counter_ = nullptr;
  Counter* insertions_counter_ = nullptr;
  Counter* updates_counter_ = nullptr;
  Counter* evictions_counter_ = nullptr;
};

}  // namespace qmap

#endif  // QMAP_SERVICE_TRANSLATION_CACHE_H_
