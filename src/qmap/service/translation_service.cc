#include "qmap/service/translation_service.h"

#include <algorithm>
#include <chrono>
#include <latch>
#include <unordered_map>
#include <utility>

#include "qmap/common/fnv.h"
#include "qmap/core/filter.h"
#include "qmap/core/match_memo.h"
#include "qmap/expr/intern.h"
#include "qmap/expr/printer.h"
#include "qmap/obs/metrics.h"
#include "qmap/obs/trace.h"

namespace qmap {
namespace {

std::string OptionsTag(const TranslatorOptions& options) {
  std::string tag;
  switch (options.algorithm) {
    case MappingAlgorithm::kTdqm:
      tag = "tdqm";
      break;
    case MappingAlgorithm::kDnf:
      tag = "dnf";
      break;
    case MappingAlgorithm::kNaive:
      tag = "naive";
      break;
  }
  tag += options.reuse_potential_matchings ? "+reuse" : "-reuse";
  tag += options.simplify_output ? "+simp" : "-simp";
  return tag;
}

// Separator between cache-key fields (the fields are hashed, but keeping a
// separator byte in the stream prevents boundary ambiguity between the
// source name and the options tag).
constexpr char kKeySep = '\x1f';

// Failures worth a negative store record: permanent properties of (query,
// rule set) that will recur identically until the rules change. Transient
// resilience-category failures (unavailable, deadline, cancelled, internal)
// must never be persisted — the next attempt may succeed.
bool IsPermanentFailure(StatusCode code) {
  switch (code) {
    case StatusCode::kInvalidArgument:
    case StatusCode::kNotFound:
    case StatusCode::kUnsupported:
    case StatusCode::kParseError:
      return true;
    default:
      return false;
  }
}

}  // namespace

TranslationService::TranslationService(ServiceOptions options)
    : options_(options), cache_(options.cache) {
  if (options_.num_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  }
  if (options_.resilience.enabled || options_.fault_injector != nullptr) {
    resilience_ = std::make_unique<ResilienceManager>(
        options_.resilience, options_.clock, options_.fault_injector,
        options_.obs.metrics);
  }
  if (options_.enable_cache && !options_.store.path.empty()) {
    auto store = TranslationStore::Open(options_.store);
    if (store.ok()) {
      store_ = std::move(store).value();
    } else {
      // Cache-only degradation: a service that cannot reach its disk tier
      // still translates correctly, just without restart warmth.
      store_open_status_ = store.status();
    }
  }
  if (options_.obs.metrics != nullptr) {
    MetricsRegistry* metrics = options_.obs.metrics;
    cache_.AttachMetrics(metrics);
    if (store_ != nullptr) store_->AttachMetrics(metrics);
    AttachInternMetrics(metrics);
    if (pool_ != nullptr) pool_->AttachMetrics(metrics);
    translate_counter_ = &metrics->counter("qmap_translate_total");
    slow_counter_ = &metrics->counter("qmap_slow_queries_total");
    latency_hist_ = &metrics->histogram("qmap_translate_latency_us");
    match_attempts_counter_ =
        &metrics->counter("qmap_match_pattern_attempts_total");
    match_index_hits_counter_ = &metrics->counter("qmap_match_index_hits_total");
    match_memo_hits_counter_ = &metrics->counter("qmap_match_memo_hits_total");
    match_saved_counter_ = &metrics->counter("qmap_match_attempts_saved_total");
  }
}

TranslationService::~TranslationService() {
  if (options_.obs.metrics != nullptr) {
    DetachInternMetricsIf(options_.obs.metrics);
    cache_.DetachMetricsIf(options_.obs.metrics);
    if (store_ != nullptr) store_->DetachMetricsIf(options_.obs.metrics);
  }
}

void TranslationService::AddSource(std::string name, MappingSpec spec) {
  AddSource(std::move(name), std::move(spec), SourceCapabilities());
}

void TranslationService::AddSource(std::string name, MappingSpec spec,
                                   const SourceCapabilities& capabilities) {
  SourceEntry entry;
  // The context third of the typed cache key: source name plus the option
  // flags that change translation output. The query third comes per-call
  // from Query::fingerprint().
  entry.cache_key_prefix = Fnv64()
                               .Add(name)
                               .AddByte(kKeySep)
                               .Add(OptionsTag(options_.translator))
                               .value();
  // The rule-set-version third: what the source *is*, separated from what
  // it is *called*. Cached entries — RAM and disk — minted under a
  // different rule set or capability declaration differ here and become
  // unreachable, which is the staleness guarantee the persistent store
  // relies on (DESIGN.md §10).
  entry.rule_set_fp = Fnv64()
                          .AddU64(spec.fingerprint())
                          .AddByte(kKeySep)
                          .AddU64(capabilities.Fingerprint())
                          .value();
  entry.name = std::move(name);
  entry.translator = Translator(std::move(spec), options_.translator);
  auto pos = std::lower_bound(
      sources_.begin(), sources_.end(), entry,
      [](const SourceEntry& a, const SourceEntry& b) { return a.name < b.name; });
  sources_.insert(pos, std::move(entry));
}

void TranslationService::AddSourcesFrom(const Mediator& mediator) {
  for (const SourceContext& source : mediator.sources()) {
    AddSource(source.name(), source.spec(), source.capabilities());
  }
  SetViewConstraints(mediator.view_constraints());
}

void TranslationService::SetViewConstraints(Query constraints) {
  view_constraints_ = std::move(constraints);
  cache_.Clear();
}

std::vector<std::unique_ptr<MatchMemo>> TranslationService::MakeMemoScope()
    const {
  std::vector<std::unique_ptr<MatchMemo>> memos;
  if (!options_.translator.use_match_memo) return memos;
  memos.reserve(sources_.size());
  for (const SourceEntry& source : sources_) {
    memos.push_back(std::make_unique<MatchMemo>(&source.translator.spec(),
                                                /*thread_safe=*/true));
  }
  return memos;
}

Result<Translation> TranslationService::TranslateOne(
    const SourceEntry& source, const Query& full, Trace* trace,
    uint64_t parent_span, MatchMemo* memo, const CancelToken* cancel,
    ResilienceManager::CallReport* report) const {
  const auto attempt = [&]() {
    return source.translator.Translate(full, trace, parent_span, memo);
  };
  const auto guarded = [&]() -> Result<Translation> {
    if (resilience_ == nullptr) return attempt();
    return resilience_->GuardedTranslate(source.name, full, cancel, attempt,
                                         report, trace, parent_span);
  };
  if (!options_.enable_cache) return guarded();
  const TranslationCacheKey key{source.cache_key_prefix, source.rule_set_fp,
                                full.fingerprint()};
  {
    // A hit never reaches the source, so the resilience guards — and any
    // injected faults — do not apply: the cache is itself a degradation
    // buffer (a source can be down and its cached translations still serve).
    Span lookup(trace, "cache.lookup", parent_span);
    if (std::optional<Translation> hit = cache_.Get(key)) {
      if (lookup.enabled()) lookup.AddAttr("hit", "true");
      // Stats describe the work done *for this call*: a hit does no rule
      // matching, so the computation counters reset and only the hit shows.
      hit->stats = TranslationStats{};
      hit->stats.cache_hits = 1;
      return *std::move(hit);
    }
    if (lookup.enabled()) lookup.AddAttr("hit", "false");
  }
  if (store_ != nullptr) {
    // RAM miss: fall through to the persistent tier. A disk hit is promoted
    // into the RAM cache so the next lookup stops there.
    Span lookup(trace, "store.lookup", parent_span);
    if (std::optional<Result<Translation>> stored = store_->Get(key)) {
      if (lookup.enabled()) lookup.AddAttr("hit", "true");
      if (!stored->ok()) return stored->status();  // stored negative result
      Translation hit = *std::move(*stored);
      hit.stats = TranslationStats{};
      hit.stats.store_hits = 1;
      cache_.Put(key, hit);
      return hit;
    }
    if (lookup.enabled()) lookup.AddAttr("hit", "false");
  }
  Result<Translation> translation = guarded();
  if (!translation.ok()) {
    if (store_ != nullptr && options_.store.cache_negatives &&
        IsPermanentFailure(translation.status().code())) {
      store_->PutNegative(key, translation.status()).ok();
    }
    return translation;
  }
  if (report == nullptr || !report->degraded) {
    // Degraded (widened) translations are never cached or persisted: a
    // later healthy call must get the exact mapping back, not a poisoned
    // wide one — and a store record outlives the process, so persisting a
    // widened mapping would poison every future boot (docs/ROBUSTNESS.md).
    Span insert(trace, "cache.insert", parent_span);
    cache_.Put(key, *translation);
    if (store_ != nullptr) store_->Put(key, *translation).ok();
  }
  translation->stats.cache_misses = 1;
  return translation;
}

Result<MediatorTranslation> TranslationService::TranslateFull(
    const Query& full, Trace* trace,
    const std::vector<std::unique_ptr<MatchMemo>>& memos,
    const CancelToken* cancel) const {
  Span root(trace, "service.translate", 0);
  // Rendering is deferred to this detail-only path; the translation and
  // cache machinery below works purely on fingerprints.
  if (root.detail()) root.AddAttr("query", ToParseableText(full));
  const uint64_t root_id = root.id();
  const size_t n = sources_.size();
  const uint64_t evictions_before =
      options_.enable_cache ? cache_.stats().evictions : 0;
  std::vector<std::optional<Result<Translation>>> outcomes(n);
  std::vector<ResilienceManager::CallReport> reports(n);
  if (pool_ != nullptr && n > 1) {
    parallel_tasks_.fetch_add(n, std::memory_order_relaxed);
    // Covers the whole fan-out window on the calling thread: submits, the
    // workers' overlapping spans, and the latch wake-up latency.
    Span fanout_span(trace, "fanout.wait", root_id);
    std::latch done(static_cast<ptrdiff_t>(n));
    for (size_t i = 0; i < n; ++i) {
      const int64_t submit_ns = trace != nullptr ? trace->NowNs() : 0;
      pool_->Submit([this, &full, &outcomes, &reports, &done, trace, &memos,
                     root_id, submit_ns, cancel, i] {
        const int64_t start_ns = trace != nullptr ? trace->NowNs() : 0;
        Span source_span(trace, "source.translate", root_id);
        if (source_span.enabled()) {
          source_span.AddAttr("source", sources_[i].name);
          trace->AddCompleteSpan("pool.wait", root_id, submit_ns, start_ns);
        }
        Result<Translation> translation = TranslateOne(
            sources_[i], full, trace, source_span.id(),
            memos.empty() ? nullptr : memos[i].get(), cancel, &reports[i]);
        if (translation.ok()) {
          translation->stats.queue_wait_ns +=
              static_cast<uint64_t>(start_ns - submit_ns);
          source_span.SetStats(translation->stats);
        }
        outcomes[i].emplace(std::move(translation));
        // End the span before releasing the latch: count_down() lets the
        // calling thread return and destroy the trace, so nothing in this
        // task may touch it afterwards (the Span destructor would).
        source_span.End();
        done.count_down();
      });
    }
    // ALWAYS wait, even when `cancel` has expired mid-fan-out: the workers
    // write into this frame's `outcomes`/`reports`, so returning before the
    // latch releases would leave detached tasks scribbling on a dead stack.
    // Expiry makes the workers *finish fast* (the guard checks the token
    // before each attempt), never makes the caller leave early.
    done.wait();
  } else {
    inline_tasks_.fetch_add(n, std::memory_order_relaxed);
    for (size_t i = 0; i < n; ++i) {
      Span source_span(trace, "source.translate", root_id);
      if (source_span.enabled()) source_span.AddAttr("source", sources_[i].name);
      Result<Translation> translation = TranslateOne(
          sources_[i], full, trace, source_span.id(),
          memos.empty() ? nullptr : memos[i].get(), cancel, &reports[i]);
      if (translation.ok()) source_span.SetStats(translation->stats);
      outcomes[i].emplace(std::move(translation));
    }
  }

  // Deterministic join: sources_ is sorted by name, and the merge below
  // always runs in that order, independent of task completion order.
  Span join_span(trace, "join", root_id);
  MediatorTranslation out;
  std::vector<const ExactCoverage*> coverages;
  const bool allow_partial =
      resilience_ != nullptr && resilience_->options().allow_partial;
  for (size_t i = 0; i < n; ++i) {
    const ResilienceManager::CallReport& report = reports[i];
    out.stats.retries += report.retries;
    out.stats.deadline_hits += report.deadline_hit ? 1 : 0;
    out.stats.breaker_rejections += report.breaker_rejected ? 1 : 0;
    Result<Translation>& translation = *outcomes[i];
    if (!translation.ok()) {
      // Drop the failed source into the partial result: its coverage never
      // reaches `coverages`, so MergedResidueFilter below regains every
      // constraint only that source would have realized — the recomputation
      // that keeps partial answers sound.
      if (allow_partial && IsSourceDropFailure(translation.status().code())) {
        out.partial.failed.push_back(
            {sources_[i].name, translation.status(), report.attempts});
        out.stats.failed_sources += 1;
        continue;
      }
      return translation.status();
    }
    if (report.degraded) {
      out.partial.degraded.push_back(sources_[i].name);
      out.stats.degraded_sources += 1;
    }
    out.stats.MergeFrom(translation->stats);
    auto [slot, inserted] =
        out.per_source.emplace(sources_[i].name, *std::move(translation));
    if (inserted) coverages.push_back(&slot->second.coverage);
  }
  if (resilience_ != nullptr && !out.partial.failed.empty()) {
    const size_t survivors = n - out.partial.failed.size();
    if (survivors < std::max<size_t>(1, resilience_->options().min_sources)) {
      return Status::Unavailable(
          "only " + std::to_string(survivors) + " of " + std::to_string(n) +
          " sources available: " + out.partial.ToString());
    }
    resilience_->RecordPartialResult(out.partial.failed.size());
    if (root.enabled()) root.AddAttr("partial", out.partial.ToString());
  }
  if (pool_ != nullptr && n > 1) out.stats.parallel_tasks += n;
  if (options_.enable_cache) {
    // Approximate under concurrent Translate calls: evictions are counted
    // against whichever call observes them.
    out.stats.cache_evictions += cache_.stats().evictions - evictions_before;
  }
  join_span.End();
  {
    Span filter_span(trace, "filter", root_id);
    out.filter = MergedResidueFilter(full, coverages);
  }
  if (match_attempts_counter_ != nullptr) {
    match_attempts_counter_->Inc(out.stats.match.pattern_attempts);
    match_index_hits_counter_->Inc(out.stats.match.index_hits);
    match_memo_hits_counter_->Inc(out.stats.memo_hits);
    match_saved_counter_->Inc(out.stats.match.pattern_attempts_saved);
  }
  root.SetStats(out.stats);
  return out;
}

Result<MediatorTranslation> TranslationService::TranslateObserved(
    const Query& full, Trace* trace,
    const std::vector<std::unique_ptr<MatchMemo>>& memos,
    const CancelToken* cancel) const {
  const SlowQueryLogOptions& slow = options_.obs.slow_query;
  const bool want_obs = slow.enabled || latency_hist_ != nullptr;
  if (!want_obs) return TranslateFull(full, trace, memos, cancel);

  // The slow-query log wants a trace of every query so the slow ones come
  // with their per-source spans attached, and the per-phase qmap_span_*
  // histograms are fed from trace spans; record a trace internally when the
  // caller did not supply one and either consumer is active.
  std::unique_ptr<Trace> local_trace;
  if (trace == nullptr && (slow.enabled || options_.obs.metrics != nullptr)) {
    local_trace = std::make_unique<Trace>("service", /*capture_detail=*/false);
    trace = local_trace.get();
  }

  const auto wall_start = std::chrono::steady_clock::now();
  Result<MediatorTranslation> out = TranslateFull(full, trace, memos, cancel);
  const uint64_t total_us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - wall_start)
          .count());
  if (latency_hist_ != nullptr) latency_hist_->Record(total_us);
  if (trace != nullptr && options_.obs.metrics != nullptr) {
    RecordTraceMetrics(*trace, options_.obs.metrics);
  }
  if (!out.ok() || !slow.enabled) return out;

  uint64_t max_disjuncts = 0;
  for (const auto& [name, translation] : out->per_source) {
    max_disjuncts = std::max(max_disjuncts, translation.stats.dnf_disjuncts);
  }
  const bool is_partial = !out->partial.complete();
  const bool is_slow =
      total_us >= slow.latency_threshold_us ||
      (slow.disjunct_threshold > 0 && max_disjuncts >= slow.disjunct_threshold) ||
      (slow.capture_partial && is_partial);
  if (!is_slow) return out;

  slow_queries_.fetch_add(1, std::memory_order_relaxed);
  if (slow_counter_ != nullptr) slow_counter_->Inc();
  SlowQueryRecord record;
  // The only rendering on the slow path — and only for captured queries.
  record.query_text = ToParseableText(full);
  record.total_us = total_us;
  record.max_disjuncts = max_disjuncts;
  record.stats = out->stats.ToString();
  if (is_partial) record.partial_summary = out->partial.ToString();
  if (trace != nullptr) record.trace_json = trace->ToJson();
  {
    std::lock_guard<std::mutex> lock(slow_mu_);
    slow_log_.push_back(std::move(record));
    while (slow_log_.size() > std::max<size_t>(1, slow.capacity)) {
      slow_log_.pop_front();
    }
  }
  return out;
}

void TranslationService::WarmUpFromStoreOnce() const {
  if (store_ == nullptr || !options_.store.replay_on_boot) return;
  std::call_once(warmup_once_, [this] {
    // Only entries belonging to a registered source under its *current*
    // rule-set fingerprint are replayed; everything else on disk is either
    // another service's data or a stale version, and stays dead.
    std::unordered_map<uint64_t, uint64_t> live;
    for (const SourceEntry& source : sources_) {
      live.emplace(source.cache_key_prefix, source.rule_set_fp);
    }
    store_->ReplayInto(cache_, [&live](const TranslationCacheKey& key) {
      auto it = live.find(key.source);
      return it != live.end() && it->second == key.rule_set;
    });
  });
}

const CancelToken* TranslationService::MakeRequestToken(
    CancelToken* storage) const {
  if (resilience_ == nullptr ||
      resilience_->options().request_deadline_us == 0) {
    return nullptr;
  }
  storage->budget = DeadlineBudget{}.Narrowed(
      resilience_->clock()->NowUs(),
      resilience_->options().request_deadline_us);
  return storage;
}

Result<MediatorTranslation> TranslationService::Translate(const Query& query,
                                                          Trace* trace) const {
  translate_calls_.fetch_add(1, std::memory_order_relaxed);
  if (translate_counter_ != nullptr) translate_counter_->Inc();
  WarmUpFromStoreOnce();
  Query full = query & view_constraints_;
  CancelToken token;
  return TranslateObserved(full, trace, MakeMemoScope(),
                           MakeRequestToken(&token));
}

Result<std::vector<MediatorTranslation>> TranslationService::TranslateBatch(
    std::span<const Query> queries) const {
  batch_calls_.fetch_add(1, std::memory_order_relaxed);
  batch_queries_.fetch_add(queries.size(), std::memory_order_relaxed);
  WarmUpFromStoreOnce();

  // Intra-batch dedup: structurally identical normalized queries translate
  // once. Fingerprints bucket the candidates; StructurallyEquals confirms
  // (pointer comparison when both nodes are interned).
  std::vector<Query> unique_full;
  std::unordered_map<uint64_t, std::vector<size_t>> slots_by_fp;
  std::vector<size_t> slot_of(queries.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    Query full = queries[q] & view_constraints_;
    std::vector<size_t>& bucket = slots_by_fp[full.fingerprint()];
    size_t slot = unique_full.size();
    for (size_t candidate : bucket) {
      if (unique_full[candidate].StructurallyEquals(full)) {
        slot = candidate;
        break;
      }
    }
    if (slot == unique_full.size()) {
      bucket.push_back(slot);
      unique_full.push_back(std::move(full));
    } else {
      batch_duplicates_.fetch_add(1, std::memory_order_relaxed);
    }
    slot_of[q] = slot;
  }

  // One memo scope for the whole batch: distinct queries against one source
  // still share sub-conjunctions (hot root tables, common filters), so the
  // per-source memos keep paying across the batch's unique queries.
  std::vector<std::unique_ptr<MatchMemo>> memos = MakeMemoScope();
  // One budget for the whole batch: the request deadline covers every query
  // in it, so a stalled early query leaves less (possibly nothing) for the
  // later ones — budget propagation, not per-query reset.
  CancelToken token;
  const CancelToken* cancel = MakeRequestToken(&token);
  std::vector<MediatorTranslation> unique_results;
  unique_results.reserve(unique_full.size());
  for (size_t u = 0; u < unique_full.size(); ++u) {
    if (cancel != nullptr && cancel->Expired(resilience_->clock()->NowUs())) {
      return Status::DeadlineExceeded(
          "batch budget exhausted after " + std::to_string(u) + " of " +
          std::to_string(unique_full.size()) + " unique queries");
    }
    Result<MediatorTranslation> translation =
        TranslateObserved(unique_full[u], nullptr, memos, cancel);
    if (!translation.ok()) return translation.status();
    unique_results.push_back(*std::move(translation));
  }

  std::vector<MediatorTranslation> out;
  out.reserve(queries.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    out.push_back(unique_results[slot_of[q]]);
  }
  return out;
}

ServiceStats TranslationService::stats() const {
  ServiceStats out;
  out.cache = cache_.stats();
  if (store_ != nullptr) out.store = store_->stats();
  out.translate_calls = translate_calls_.load(std::memory_order_relaxed);
  out.batch_calls = batch_calls_.load(std::memory_order_relaxed);
  out.batch_queries = batch_queries_.load(std::memory_order_relaxed);
  out.batch_duplicates = batch_duplicates_.load(std::memory_order_relaxed);
  out.parallel_tasks = parallel_tasks_.load(std::memory_order_relaxed);
  out.inline_tasks = inline_tasks_.load(std::memory_order_relaxed);
  out.slow_queries = slow_queries_.load(std::memory_order_relaxed);
  return out;
}

std::vector<SlowQueryRecord> TranslationService::slow_queries() const {
  std::lock_guard<std::mutex> lock(slow_mu_);
  return std::vector<SlowQueryRecord>(slow_log_.begin(), slow_log_.end());
}

}  // namespace qmap
