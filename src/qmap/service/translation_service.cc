#include "qmap/service/translation_service.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <latch>
#include <unordered_map>
#include <utility>

#include "qmap/common/fnv.h"
#include "qmap/common/version.h"
#include "qmap/core/filter.h"
#include "qmap/core/match_memo.h"
#include "qmap/expr/intern.h"
#include "qmap/expr/printer.h"
#include "qmap/obs/json.h"
#include "qmap/obs/metrics.h"
#include "qmap/obs/trace.h"
#include "qmap/rules/matcher.h"
#include "qmap/rules/rule_program.h"

namespace qmap {
namespace {

std::string OptionsTag(const TranslatorOptions& options) {
  std::string tag;
  switch (options.algorithm) {
    case MappingAlgorithm::kTdqm:
      tag = "tdqm";
      break;
    case MappingAlgorithm::kDnf:
      tag = "dnf";
      break;
    case MappingAlgorithm::kNaive:
      tag = "naive";
      break;
  }
  tag += options.reuse_potential_matchings ? "+reuse" : "-reuse";
  tag += options.simplify_output ? "+simp" : "-simp";
  return tag;
}

// Separator between cache-key fields (the fields are hashed, but keeping a
// separator byte in the stream prevents boundary ambiguity between the
// source name and the options tag).
constexpr char kKeySep = '\x1f';

// Failures worth a negative store record: permanent properties of (query,
// rule set) that will recur identically until the rules change. Transient
// resilience-category failures (unavailable, deadline, cancelled, internal)
// must never be persisted — the next attempt may succeed.
bool IsPermanentFailure(StatusCode code) {
  switch (code) {
    case StatusCode::kInvalidArgument:
    case StatusCode::kNotFound:
    case StatusCode::kUnsupported:
    case StatusCode::kParseError:
      return true;
    default:
      return false;
  }
}

}  // namespace

TranslationService::TranslationService(ServiceOptions options)
    : options_(options), cache_(options.cache) {
  if (options_.num_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  }
  if (options_.resilience.enabled || options_.fault_injector != nullptr) {
    resilience_ = std::make_unique<ResilienceManager>(
        options_.resilience, options_.clock, options_.fault_injector,
        options_.obs.metrics);
  }
  if (options_.enable_cache && !options_.store.path.empty()) {
    auto store = TranslationStore::Open(options_.store);
    if (store.ok()) {
      store_ = std::move(store).value();
    } else {
      // Cache-only degradation: a service that cannot reach its disk tier
      // still translates correctly, just without restart warmth.
      store_open_status_ = store.status();
    }
  }
  if (options_.obs.trace_ring.enabled) {
    trace_ring_ = std::make_unique<TraceRing>(options_.obs.trace_ring);
  }
  if (options_.obs.metrics != nullptr) {
    MetricsRegistry* metrics = options_.obs.metrics;
    cache_.AttachMetrics(metrics);
    if (store_ != nullptr) store_->AttachMetrics(metrics);
    AttachInternMetrics(metrics);
    if (pool_ != nullptr) pool_->AttachMetrics(metrics);
    translate_counter_ = &metrics->counter(
        "qmap_translate_total", "Translate calls received by the service.");
    slow_counter_ = &metrics->counter(
        "qmap_slow_queries_total",
        "Queries captured by the slow-query log (lifetime, not ring size).");
    latency_hist_ = &metrics->histogram(
        "qmap_translate_latency_us",
        "End-to-end Translate wall time in microseconds.");
    match_attempts_counter_ =
        &metrics->counter("qmap_match_pattern_attempts_total");
    match_index_hits_counter_ = &metrics->counter("qmap_match_index_hits_total");
    match_memo_hits_counter_ = &metrics->counter("qmap_match_memo_hits_total");
    match_saved_counter_ = &metrics->counter("qmap_match_attempts_saved_total");
    match_compiled_hits_counter_ = &metrics->counter(
        "qmap_match_compiled_hits",
        "Conjunctions answered by the compiled discrimination-DAG engine.");
    match_compile_ns_counter_ = &metrics->counter(
        "qmap_match_compile_ns",
        "Wall time spent compiling rule plans, process-wide (CompileRulePlan).");
    match_plan_nodes_counter_ = &metrics->counter(
        "qmap_match_plan_nodes",
        "DAG nodes across all rule plans compiled so far, process-wide.");
    compose_chains_counter_ = &metrics->counter(
        "qmap_compose_chains_total",
        "Multi-hop chains registered via AddChain (offline composition).");
    compose_rules_counter_ = &metrics->counter(
        "qmap_compose_rules_total",
        "Rules in composed chain specs at registration (sum over chains).");
    compose_skipped_counter_ = &metrics->counter(
        "qmap_compose_skipped_covers_total",
        "Rule covers the composer skipped conservatively while folding chains.");
    containment_checks_counter_ = &metrics->counter(
        "qmap_containment_checks_total",
        "Pairwise spec containment checks run by the pruning pre-pass.");
    containment_pruned_counter_ = &metrics->counter(
        "qmap_containment_pruned_total",
        "Sources dropped from the fan-out because another source's mapping "
        "provably contains theirs.");
  }
}

TranslationService::~TranslationService() {
  // Admin handlers capture `this`; stop serving before anything else of the
  // service is torn down.
  StopAdmin();
  if (options_.obs.metrics != nullptr) {
    DetachInternMetricsIf(options_.obs.metrics);
    cache_.DetachMetricsIf(options_.obs.metrics);
    if (store_ != nullptr) store_->DetachMetricsIf(options_.obs.metrics);
  }
}

void TranslationService::AddSource(std::string name, MappingSpec spec) {
  AddSource(std::move(name), std::move(spec), SourceCapabilities());
}

void TranslationService::AddSource(std::string name, MappingSpec spec,
                                   const SourceCapabilities& capabilities) {
  SourceEntry entry;
  // The context third of the typed cache key: source name plus the option
  // flags that change translation output. The query third comes per-call
  // from Query::fingerprint().
  entry.cache_key_prefix = Fnv64()
                               .Add(name)
                               .AddByte(kKeySep)
                               .Add(OptionsTag(options_.translator))
                               .value();
  // The rule-set-version third: what the source *is*, separated from what
  // it is *called*. Cached entries — RAM and disk — minted under a
  // different rule set or capability declaration differ here and become
  // unreachable, which is the staleness guarantee the persistent store
  // relies on (DESIGN.md §10).
  entry.rule_set_fp = Fnv64()
                          .AddU64(spec.fingerprint())
                          .AddByte(kKeySep)
                          .AddU64(capabilities.Fingerprint())
                          .value();
  entry.name = std::move(name);
  entry.transport = std::make_shared<InProcessTransport>(
      Translator(std::move(spec), options_.translator));
  entry.runtime = std::make_unique<SourceRuntime>();
  auto pos = std::lower_bound(
      sources_.begin(), sources_.end(), entry,
      [](const SourceEntry& a, const SourceEntry& b) { return a.name < b.name; });
  sources_.insert(pos, std::move(entry));
  if (options_.prune_contained_sources) PruneContainedSources();
}

void TranslationService::AddRemoteSource(
    std::string name, uint64_t rule_set_fp,
    std::shared_ptr<SourceTransport> transport) {
  SourceEntry entry;
  // Same context-third derivation as AddSource — the cache key is local to
  // this process — but the rule-set-version third is the *worker's*
  // advertised fingerprint: both tiers must go stale together when the
  // worker's rules change.
  entry.cache_key_prefix = Fnv64()
                               .Add(name)
                               .AddByte(kKeySep)
                               .Add(OptionsTag(options_.translator))
                               .value();
  entry.rule_set_fp = rule_set_fp;
  entry.name = std::move(name);
  entry.transport = std::move(transport);
  entry.runtime = std::make_unique<SourceRuntime>();
  auto pos = std::lower_bound(
      sources_.begin(), sources_.end(), entry,
      [](const SourceEntry& a, const SourceEntry& b) { return a.name < b.name; });
  sources_.insert(pos, std::move(entry));
}

std::vector<SourceCatalogEntry> TranslationService::SourceCatalog() const {
  std::vector<SourceCatalogEntry> out;
  out.reserve(sources_.size());
  for (const SourceEntry& source : sources_) {
    out.push_back(SourceCatalogEntry{source.name, source.rule_set_fp});
  }
  return out;
}

void TranslationService::AddSourcesFrom(const Mediator& mediator) {
  for (const SourceContext& source : mediator.sources()) {
    AddSource(source.name(), source.spec(), source.capabilities());
  }
  SetViewConstraints(mediator.view_constraints());
}

Status TranslationService::AddChain(std::string name,
                                    const std::vector<MappingSpec>& hops) {
  return AddChainImpl(std::move(name), hops, nullptr);
}

Status TranslationService::AddChain(std::string name,
                                    const std::vector<MappingSpec>& hops,
                                    const SourceCapabilities& capabilities) {
  return AddChainImpl(std::move(name), hops, &capabilities);
}

Status TranslationService::AddChainImpl(std::string name,
                                        const std::vector<MappingSpec>& hops,
                                        const SourceCapabilities* capabilities) {
  if (hops.empty()) {
    return Status::InvalidArgument("AddChain('" + name +
                                   "'): at least one hop required");
  }
  ChainStatus chain;
  chain.name = name;
  for (const MappingSpec& hop : hops) chain.hop_targets.push_back(hop.target_name());

  // Fold left-to-right: after iteration i, `composed` maps the mediator
  // vocabulary directly onto hops[i]'s target vocabulary. Registration is
  // off the hot path, so the compose trace is always recorded; when the
  // trace ring is on it is retained as an outlier for /tracez.
  Trace trace("chain:" + name, /*capture_detail=*/true);
  MappingSpec composed = hops.front();
  ComposeStats total;
  bool exact = true;
  {
    Span root(&trace, "chain.compose");
    root.AddAttr("chain", name);
    for (size_t i = 1; i < hops.size(); ++i) {
      auto folded =
          ComposeSpecs(composed, hops[i], options_.compose, &trace, root.id());
      if (!folded.ok()) return folded.status();
      composed = std::move(folded.value().spec);
      exact = exact && folded.value().exact;
      total.skipped_covers += folded.value().stats.skipped_covers;
      total.approximate_marks += folded.value().stats.approximate_marks;
    }
    root.AddAttr("hops", std::to_string(hops.size()));
    root.AddAttr("composed_rules", std::to_string(composed.rules().size()));
    root.AddAttr("exact", exact ? "true" : "false");
  }
  if (trace_ring_ != nullptr) {
    trace_ring_->Insert(trace.ToParsed(), /*outlier=*/true);
  }

  chain.composed_rules = static_cast<int>(composed.rules().size());
  chain.approximate_marks = static_cast<int>(total.approximate_marks);
  chain.exact = exact;
  if (compose_chains_counter_ != nullptr) compose_chains_counter_->Inc();
  if (compose_rules_counter_ != nullptr) {
    compose_rules_counter_->Inc(static_cast<uint64_t>(chain.composed_rules));
  }
  if (compose_skipped_counter_ != nullptr) {
    compose_skipped_counter_->Inc(
        static_cast<uint64_t>(total.skipped_covers));
  }

  if (capabilities != nullptr) {
    AddSource(std::move(name), std::move(composed), *capabilities);
  } else {
    // Default capabilities: exactly what the composed emissions can produce,
    // so nothing the chain translates to is unrealizable downstream.
    SourceCapabilities derived = RequiredCapabilities(composed);
    AddSource(std::move(name), std::move(composed), derived);
  }
  chains_.push_back(std::move(chain));
  return Status::Ok();
}

size_t TranslationService::PruneContainedSources() {
  // Only sources with a local spec participate: a remote source's mapping
  // lives on its worker, and pruning it here on a stale idea of that
  // mapping would be unsound.
  std::vector<std::string> names;
  std::vector<const MappingSpec*> specs;
  for (const SourceEntry& source : sources_) {
    const MappingSpec* spec = source.transport->spec();
    if (spec == nullptr) continue;
    names.push_back(source.name);
    specs.push_back(spec);
  }
  ContainmentAnalysis analysis = AnalyzeContainment(names, specs);
  if (containment_checks_counter_ != nullptr) {
    containment_checks_counter_->Inc(analysis.checks);
  }
  size_t removed = 0;
  for (const PrunedSource& pruned : analysis.pruned) {
    auto pos = std::find_if(
        sources_.begin(), sources_.end(),
        [&pruned](const SourceEntry& s) { return s.name == pruned.name; });
    if (pos == sources_.end()) continue;
    sources_.erase(pos);
    pruned_.push_back(PrunedSourceStatus{pruned.name, pruned.subsumed_by});
    ++removed;
  }
  if (containment_pruned_counter_ != nullptr && removed > 0) {
    containment_pruned_counter_->Inc(static_cast<uint64_t>(removed));
  }
  return removed;
}

void TranslationService::SetViewConstraints(Query constraints) {
  view_constraints_ = std::move(constraints);
  cache_.Clear();
}

std::vector<std::unique_ptr<MatchMemo>> TranslationService::MakeMemoScope()
    const {
  std::vector<std::unique_ptr<MatchMemo>> memos;
  if (!options_.translator.use_match_memo) return memos;
  memos.reserve(sources_.size());
  for (const SourceEntry& source : sources_) {
    // Index alignment with sources_ matters; remote sources (no local spec)
    // contribute a null slot rather than being skipped.
    const MappingSpec* spec = source.transport->spec();
    memos.push_back(spec == nullptr
                        ? nullptr
                        : std::make_unique<MatchMemo>(spec,
                                                      /*thread_safe=*/true));
  }
  return memos;
}

Result<Translation> TranslationService::TranslateOne(
    const SourceEntry& source, const Query& full, Trace* trace,
    uint64_t parent_span, MatchMemo* memo, const CancelToken* cancel,
    ResilienceManager::CallReport* report) const {
  const auto attempt = [&]() {
    return source.transport->Translate(full, trace, parent_span, memo, cancel);
  };
  const auto guarded = [&]() -> Result<Translation> {
    // Scoreboard accounting: only real source work counts as a call (cache
    // and store hits return before this point), and in_flight brackets the
    // whole guarded window including retries and backoff.
    SourceRuntime& runtime = *source.runtime;
    runtime.calls.fetch_add(1, std::memory_order_relaxed);
    runtime.in_flight.fetch_add(1, std::memory_order_relaxed);
    Result<Translation> result =
        resilience_ == nullptr
            ? attempt()
            : resilience_->GuardedTranslate(source.name, full, cancel, attempt,
                                            report, trace, parent_span);
    runtime.in_flight.fetch_sub(1, std::memory_order_relaxed);
    if (!result.ok()) {
      runtime.failures.fetch_add(1, std::memory_order_relaxed);
    }
    return result;
  };
  if (!options_.enable_cache) return guarded();
  const TranslationCacheKey key{source.cache_key_prefix, source.rule_set_fp,
                                full.fingerprint()};
  {
    // A hit never reaches the source, so the resilience guards — and any
    // injected faults — do not apply: the cache is itself a degradation
    // buffer (a source can be down and its cached translations still serve).
    Span lookup(trace, "cache.lookup", parent_span);
    if (std::optional<Translation> hit = cache_.Get(key)) {
      if (lookup.enabled()) lookup.AddAttr("hit", "true");
      // Stats describe the work done *for this call*: a hit does no rule
      // matching, so the computation counters reset and only the hit shows.
      hit->stats = TranslationStats{};
      hit->stats.cache_hits = 1;
      return *std::move(hit);
    }
    if (lookup.enabled()) lookup.AddAttr("hit", "false");
  }
  if (store_ != nullptr) {
    // RAM miss: fall through to the persistent tier. A disk hit is promoted
    // into the RAM cache so the next lookup stops there.
    Span lookup(trace, "store.lookup", parent_span);
    if (std::optional<Result<Translation>> stored = store_->Get(key)) {
      if (lookup.enabled()) lookup.AddAttr("hit", "true");
      if (!stored->ok()) return stored->status();  // stored negative result
      Translation hit = *std::move(*stored);
      hit.stats = TranslationStats{};
      hit.stats.store_hits = 1;
      cache_.Put(key, hit);
      return hit;
    }
    if (lookup.enabled()) lookup.AddAttr("hit", "false");
  }
  Result<Translation> translation = guarded();
  if (!translation.ok()) {
    if (store_ != nullptr && options_.store.cache_negatives &&
        IsPermanentFailure(translation.status().code())) {
      store_->PutNegative(key, translation.status()).ok();
    }
    return translation;
  }
  if (report == nullptr || !report->degraded) {
    // Degraded (widened) translations are never cached or persisted: a
    // later healthy call must get the exact mapping back, not a poisoned
    // wide one — and a store record outlives the process, so persisting a
    // widened mapping would poison every future boot (docs/ROBUSTNESS.md).
    Span insert(trace, "cache.insert", parent_span);
    cache_.Put(key, *translation);
    if (store_ != nullptr) store_->Put(key, *translation).ok();
  }
  translation->stats.cache_misses = 1;
  return translation;
}

Result<MediatorTranslation> TranslationService::TranslateFull(
    const Query& full, Trace* trace,
    const std::vector<std::unique_ptr<MatchMemo>>& memos,
    const CancelToken* cancel) const {
  Span root(trace, "service.translate", 0);
  // Rendering is deferred to this detail-only path; the translation and
  // cache machinery below works purely on fingerprints.
  if (root.detail()) root.AddAttr("query", ToParseableText(full));
  const uint64_t root_id = root.id();
  const size_t n = sources_.size();
  const uint64_t evictions_before =
      options_.enable_cache ? cache_.stats().evictions : 0;
  std::vector<std::optional<Result<Translation>>> outcomes(n);
  std::vector<ResilienceManager::CallReport> reports(n);
  if (pool_ != nullptr && n > 1) {
    parallel_tasks_.fetch_add(n, std::memory_order_relaxed);
    // Covers the whole fan-out window on the calling thread: submits, the
    // workers' overlapping spans, and the latch wake-up latency.
    Span fanout_span(trace, "fanout.wait", root_id);
    std::latch done(static_cast<ptrdiff_t>(n));
    for (size_t i = 0; i < n; ++i) {
      const int64_t submit_ns = trace != nullptr ? trace->NowNs() : 0;
      pool_->Submit([this, &full, &outcomes, &reports, &done, trace, &memos,
                     root_id, submit_ns, cancel, i] {
        const int64_t start_ns = trace != nullptr ? trace->NowNs() : 0;
        Span source_span(trace, "source.translate", root_id);
        if (source_span.enabled()) {
          source_span.AddAttr("source", sources_[i].name);
          trace->AddCompleteSpan("pool.wait", root_id, submit_ns, start_ns);
        }
        Result<Translation> translation = TranslateOne(
            sources_[i], full, trace, source_span.id(),
            memos.empty() ? nullptr : memos[i].get(), cancel, &reports[i]);
        if (translation.ok()) {
          translation->stats.queue_wait_ns +=
              static_cast<uint64_t>(start_ns - submit_ns);
          source_span.SetStats(translation->stats);
        }
        outcomes[i].emplace(std::move(translation));
        // End the span before releasing the latch: count_down() lets the
        // calling thread return and destroy the trace, so nothing in this
        // task may touch it afterwards (the Span destructor would).
        source_span.End();
        done.count_down();
      });
    }
    // ALWAYS wait, even when `cancel` has expired mid-fan-out: the workers
    // write into this frame's `outcomes`/`reports`, so returning before the
    // latch releases would leave detached tasks scribbling on a dead stack.
    // Expiry makes the workers *finish fast* (the guard checks the token
    // before each attempt), never makes the caller leave early.
    done.wait();
  } else {
    inline_tasks_.fetch_add(n, std::memory_order_relaxed);
    for (size_t i = 0; i < n; ++i) {
      Span source_span(trace, "source.translate", root_id);
      if (source_span.enabled()) source_span.AddAttr("source", sources_[i].name);
      Result<Translation> translation = TranslateOne(
          sources_[i], full, trace, source_span.id(),
          memos.empty() ? nullptr : memos[i].get(), cancel, &reports[i]);
      if (translation.ok()) source_span.SetStats(translation->stats);
      outcomes[i].emplace(std::move(translation));
    }
  }

  // Deterministic join: sources_ is sorted by name, and the merge below
  // always runs in that order, independent of task completion order.
  Span join_span(trace, "join", root_id);
  MediatorTranslation out;
  std::vector<const ExactCoverage*> coverages;
  const bool allow_partial =
      resilience_ != nullptr && resilience_->options().allow_partial;
  for (size_t i = 0; i < n; ++i) {
    const ResilienceManager::CallReport& report = reports[i];
    if (report.retries > 0) {
      sources_[i].runtime->retries.fetch_add(report.retries,
                                             std::memory_order_relaxed);
    }
    out.stats.retries += report.retries;
    out.stats.deadline_hits += report.deadline_hit ? 1 : 0;
    out.stats.breaker_rejections += report.breaker_rejected ? 1 : 0;
    Result<Translation>& translation = *outcomes[i];
    if (!translation.ok()) {
      // Drop the failed source into the partial result: its coverage never
      // reaches `coverages`, so MergedResidueFilter below regains every
      // constraint only that source would have realized — the recomputation
      // that keeps partial answers sound.
      if (allow_partial && IsSourceDropFailure(translation.status().code())) {
        out.partial.failed.push_back(
            {sources_[i].name, translation.status(), report.attempts});
        out.stats.failed_sources += 1;
        continue;
      }
      return translation.status();
    }
    if (report.degraded) {
      out.partial.degraded.push_back(sources_[i].name);
      out.stats.degraded_sources += 1;
    }
    out.stats.MergeFrom(translation->stats);
    auto [slot, inserted] =
        out.per_source.emplace(sources_[i].name, *std::move(translation));
    if (inserted) coverages.push_back(&slot->second.coverage);
  }
  if (resilience_ != nullptr && !out.partial.failed.empty()) {
    const size_t survivors = n - out.partial.failed.size();
    if (survivors < std::max<size_t>(1, resilience_->options().min_sources)) {
      return Status::Unavailable(
          "only " + std::to_string(survivors) + " of " + std::to_string(n) +
          " sources available: " + out.partial.ToString());
    }
    resilience_->RecordPartialResult(out.partial.failed.size());
    if (root.enabled()) root.AddAttr("partial", out.partial.ToString());
  }
  if (pool_ != nullptr && n > 1) out.stats.parallel_tasks += n;
  if (options_.enable_cache) {
    // Approximate under concurrent Translate calls: evictions are counted
    // against whichever call observes them.
    out.stats.cache_evictions += cache_.stats().evictions - evictions_before;
  }
  join_span.End();
  {
    Span filter_span(trace, "filter", root_id);
    out.filter = MergedResidueFilter(full, coverages);
  }
  if (match_attempts_counter_ != nullptr) {
    match_attempts_counter_->Inc(out.stats.match.pattern_attempts);
    match_index_hits_counter_->Inc(out.stats.match.index_hits);
    match_memo_hits_counter_->Inc(out.stats.memo_hits);
    match_saved_counter_->Inc(out.stats.match.pattern_attempts_saved);
    match_compiled_hits_counter_->Inc(out.stats.match.compiled_hits);
    BridgeCompileStats();
  }
  root.SetStats(out.stats);
  return out;
}

Result<MediatorTranslation> TranslationService::TranslateObserved(
    const Query& full, Trace* trace,
    const std::vector<std::unique_ptr<MatchMemo>>& memos,
    const CancelToken* cancel) const {
  const SlowQueryLogOptions& slow = options_.obs.slow_query;
  // Head-sampling decision up front: the sampler counts every query it sees
  // (sampled or not), and a sampled query gets a trace even when the slow
  // log and metrics are off — the ring is its own consumer.
  const bool sampled = trace_ring_ != nullptr && trace_ring_->ShouldSample();
  const bool want_obs = slow.enabled || latency_hist_ != nullptr || sampled;
  if (!want_obs) return TranslateFull(full, trace, memos, cancel);

  // The slow-query log wants a trace of every query so the slow ones come
  // with their per-source spans attached, the per-phase qmap_span_*
  // histograms are fed from trace spans, and the retention ring stores
  // completed traces; record a trace internally when the caller did not
  // supply one and any of those consumers is active.
  std::unique_ptr<Trace> local_trace;
  if (trace == nullptr &&
      (slow.enabled || sampled || options_.obs.metrics != nullptr)) {
    local_trace = std::make_unique<Trace>("service", /*capture_detail=*/false);
    trace = local_trace.get();
  }

  const auto wall_start = std::chrono::steady_clock::now();
  Result<MediatorTranslation> out = TranslateFull(full, trace, memos, cancel);
  const uint64_t total_us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - wall_start)
          .count());

  // Slow-query classification (ok results only — failures have no
  // per-source stats to inspect).
  uint64_t max_disjuncts = 0;
  bool is_partial = false;
  bool is_slow = false;
  if (out.ok() && slow.enabled) {
    for (const auto& [name, translation] : out->per_source) {
      max_disjuncts = std::max(max_disjuncts, translation.stats.dnf_disjuncts);
    }
    is_partial = !out->partial.complete();
    is_slow = total_us >= slow.latency_threshold_us ||
              (slow.disjunct_threshold > 0 &&
               max_disjuncts >= slow.disjunct_threshold) ||
              (slow.capture_partial && is_partial);
  }

  // Trace retention: head-sampled traces always (even for failed
  // translations — those are the interesting ones); slow outliers go to the
  // guaranteed ring. Retention happens before the latency record below so
  // an exemplar written into a histogram bucket always resolves via
  // /tracez — the ring holds the trace by the time the bucket names it.
  bool retained = false;
  if (trace_ring_ != nullptr && trace != nullptr && (sampled || is_slow)) {
    trace_ring_->Insert(trace->ToParsed(), /*outlier=*/is_slow);
    retained = true;
  }

  if (latency_hist_ != nullptr) {
    if (retained) {
      latency_hist_->RecordWithExemplar(total_us, trace->serial());
    } else {
      latency_hist_->Record(total_us);
    }
  }
  if (trace != nullptr && options_.obs.metrics != nullptr) {
    RecordTraceMetrics(*trace, options_.obs.metrics);
  }
  if (!out.ok() || !is_slow) return out;

  slow_queries_.fetch_add(1, std::memory_order_relaxed);
  if (slow_counter_ != nullptr) slow_counter_->Inc();
  SlowQueryRecord record;
  // The only rendering on the slow path — and only for captured queries.
  record.query_text = ToParseableText(full);
  record.total_us = total_us;
  record.max_disjuncts = max_disjuncts;
  record.stats = out->stats.ToString();
  if (is_partial) record.partial_summary = out->partial.ToString();
  if (trace != nullptr) record.trace_json = trace->ToJson();
  {
    std::lock_guard<std::mutex> lock(slow_mu_);
    slow_log_.push_back(std::move(record));
    while (slow_log_.size() > std::max<size_t>(1, slow.capacity)) {
      slow_log_.pop_front();
    }
  }
  return out;
}

void TranslationService::WarmUpFromStoreOnce() const {
  if (store_ == nullptr || !options_.store.replay_on_boot) return;
  std::call_once(warmup_once_, [this] {
    // Only entries belonging to a registered source under its *current*
    // rule-set fingerprint are replayed; everything else on disk is either
    // another service's data or a stale version, and stays dead.
    std::unordered_map<uint64_t, uint64_t> live;
    for (const SourceEntry& source : sources_) {
      live.emplace(source.cache_key_prefix, source.rule_set_fp);
    }
    store_->ReplayInto(cache_, [&live](const TranslationCacheKey& key) {
      auto it = live.find(key.source);
      return it != live.end() && it->second == key.rule_set;
    });
    warmed_up_.store(true, std::memory_order_release);
  });
}

const CancelToken* TranslationService::MakeRequestToken(
    CancelToken* storage) const {
  if (resilience_ == nullptr ||
      resilience_->options().request_deadline_us == 0) {
    return nullptr;
  }
  storage->budget = DeadlineBudget{}.Narrowed(
      resilience_->clock()->NowUs(),
      resilience_->options().request_deadline_us);
  return storage;
}

Result<MediatorTranslation> TranslationService::Translate(const Query& query,
                                                          Trace* trace) const {
  translate_calls_.fetch_add(1, std::memory_order_relaxed);
  if (translate_counter_ != nullptr) translate_counter_->Inc();
  WarmUpFromStoreOnce();
  Query full = query & view_constraints_;
  CancelToken token;
  return TranslateObserved(full, trace, MakeMemoScope(),
                           MakeRequestToken(&token));
}

Result<Translation> TranslationService::TranslateSource(
    std::string_view name, const Query& full, uint32_t deadline_ms) const {
  WarmUpFromStoreOnce();
  const SourceEntry* entry = nullptr;
  for (const SourceEntry& source : sources_) {
    if (source.name == name) {
      entry = &source;
      break;
    }
  }
  if (entry == nullptr) {
    return Status::NotFound("unknown source: " + std::string(name));
  }
  // The caller's remaining budget narrows the service's own request
  // deadline (if any) — budget propagation across the wire works exactly
  // like propagation down the local call tree.
  CancelToken token;
  const CancelToken* cancel = MakeRequestToken(&token);
  if (deadline_ms > 0) {
    ResilienceClock* clock = options_.clock != nullptr
                                 ? options_.clock
                                 : &DefaultResilienceClock();
    token.budget = token.budget.Narrowed(
        clock->NowUs(), static_cast<uint64_t>(deadline_ms) * 1000);
    cancel = &token;
  }
  ResilienceManager::CallReport report;
  // No memo scope: a single-source call lets the Translator build its own
  // per-call memo, which is exactly as effective for one query.
  return TranslateOne(*entry, full, /*trace=*/nullptr, /*parent_span=*/0,
                      /*memo=*/nullptr, cancel, &report);
}

Result<std::vector<MediatorTranslation>> TranslationService::TranslateBatch(
    std::span<const Query> queries) const {
  batch_calls_.fetch_add(1, std::memory_order_relaxed);
  batch_queries_.fetch_add(queries.size(), std::memory_order_relaxed);
  WarmUpFromStoreOnce();

  // Intra-batch dedup: structurally identical normalized queries translate
  // once. Fingerprints bucket the candidates; StructurallyEquals confirms
  // (pointer comparison when both nodes are interned).
  std::vector<Query> unique_full;
  std::unordered_map<uint64_t, std::vector<size_t>> slots_by_fp;
  std::vector<size_t> slot_of(queries.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    Query full = queries[q] & view_constraints_;
    std::vector<size_t>& bucket = slots_by_fp[full.fingerprint()];
    size_t slot = unique_full.size();
    for (size_t candidate : bucket) {
      if (unique_full[candidate].StructurallyEquals(full)) {
        slot = candidate;
        break;
      }
    }
    if (slot == unique_full.size()) {
      bucket.push_back(slot);
      unique_full.push_back(std::move(full));
    } else {
      batch_duplicates_.fetch_add(1, std::memory_order_relaxed);
    }
    slot_of[q] = slot;
  }

  // One memo scope for the whole batch: distinct queries against one source
  // still share sub-conjunctions (hot root tables, common filters), so the
  // per-source memos keep paying across the batch's unique queries.
  std::vector<std::unique_ptr<MatchMemo>> memos = MakeMemoScope();
  // One budget for the whole batch: the request deadline covers every query
  // in it, so a stalled early query leaves less (possibly nothing) for the
  // later ones — budget propagation, not per-query reset.
  CancelToken token;
  const CancelToken* cancel = MakeRequestToken(&token);
  std::vector<MediatorTranslation> unique_results;
  unique_results.reserve(unique_full.size());
  for (size_t u = 0; u < unique_full.size(); ++u) {
    if (cancel != nullptr && cancel->Expired(resilience_->clock()->NowUs())) {
      return Status::DeadlineExceeded(
          "batch budget exhausted after " + std::to_string(u) + " of " +
          std::to_string(unique_full.size()) + " unique queries");
    }
    Result<MediatorTranslation> translation =
        TranslateObserved(unique_full[u], nullptr, memos, cancel);
    if (!translation.ok()) return translation.status();
    unique_results.push_back(*std::move(translation));
  }

  std::vector<MediatorTranslation> out;
  out.reserve(queries.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    out.push_back(unique_results[slot_of[q]]);
  }
  return out;
}

ServiceStats TranslationService::stats() const {
  ServiceStats out;
  out.cache = cache_.stats();
  if (store_ != nullptr) out.store = store_->stats();
  out.translate_calls = translate_calls_.load(std::memory_order_relaxed);
  out.batch_calls = batch_calls_.load(std::memory_order_relaxed);
  out.batch_queries = batch_queries_.load(std::memory_order_relaxed);
  out.batch_duplicates = batch_duplicates_.load(std::memory_order_relaxed);
  out.parallel_tasks = parallel_tasks_.load(std::memory_order_relaxed);
  out.inline_tasks = inline_tasks_.load(std::memory_order_relaxed);
  out.slow_queries = slow_queries_.load(std::memory_order_relaxed);
  return out;
}

std::vector<SlowQueryRecord> TranslationService::slow_queries() const {
  std::lock_guard<std::mutex> lock(slow_mu_);
  return std::vector<SlowQueryRecord>(slow_log_.begin(), slow_log_.end());
}

// ---------------------------------------------------------------------------
// Admin / introspection plane

namespace {

/// The value of `key` in a raw query string ("a=1&b=2"), or "".
std::string_view QueryParam(std::string_view query, std::string_view key) {
  size_t pos = 0;
  while (pos <= query.size()) {
    size_t amp = query.find('&', pos);
    size_t end = amp == std::string_view::npos ? query.size() : amp;
    std::string_view pair = query.substr(pos, end - pos);
    if (pair.size() > key.size() && pair.substr(0, key.size()) == key &&
        pair[key.size()] == '=') {
      return pair.substr(key.size() + 1);
    }
    if (amp == std::string_view::npos) break;
    pos = amp + 1;
  }
  return {};
}

/// Strict non-negative integer parse; -1 on anything else.
int ParseNonNegativeInt(std::string_view text) {
  if (text.empty() || text.size() > 9) return -1;
  int value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return -1;
    value = value * 10 + (c - '0');
  }
  return value;
}

std::string TracesJsonArray(const std::vector<ParsedTrace>& traces) {
  std::string out = "[";
  for (size_t i = 0; i < traces.size(); ++i) {
    if (i > 0) out += ',';
    out += traces[i].ToJson();
  }
  out += "]";
  return out;
}

std::string StatusJson(const ServiceStatus& s) {
  const auto b = [](bool v) { return v ? "true" : "false"; };
  std::string out = "{\"version\":\"";
  out += kQmapVersion;
  out += "\",\"ready\":";
  out += b(s.ready);
  out += ",\"draining\":";
  out += b(s.draining);
  out += ",\"store\":{\"configured\":";
  out += b(s.store_configured);
  out += ",\"ok\":";
  out += b(s.store_ok);
  out += ",\"warmed_up\":";
  out += b(s.warmed_up);
  out += ",\"live_records\":" + std::to_string(s.stats.store.live_records);
  out += ",\"hits\":" + std::to_string(s.stats.store.hits);
  out += ",\"misses\":" + std::to_string(s.stats.store.misses) + "}";
  out += ",\"cache\":{\"entries\":" + std::to_string(s.cache_entries);
  out += ",\"hits\":" + std::to_string(s.stats.cache.hits);
  out += ",\"misses\":" + std::to_string(s.stats.cache.misses);
  out += ",\"evictions\":" + std::to_string(s.stats.cache.evictions) + "}";
  out += ",\"pool\":{\"threads\":" + std::to_string(s.pool_threads);
  out += ",\"queue_depth\":" + std::to_string(s.pool_queue_depth) + "}";
  out += ",\"service\":{\"translate_calls\":" +
         std::to_string(s.stats.translate_calls);
  out += ",\"batch_calls\":" + std::to_string(s.stats.batch_calls);
  out += ",\"slow_queries\":" + std::to_string(s.stats.slow_queries);
  out += ",\"match_engine\":\"" + JsonEscape(s.match_engine) + "\"}";
  out += ",\"sources\":[";
  for (size_t i = 0; i < s.sources.size(); ++i) {
    const SourceStatus& source = s.sources[i];
    if (i > 0) out += ',';
    out += "{\"name\":\"" + JsonEscape(source.name) + "\"";
    out += ",\"endpoint\":\"" + JsonEscape(source.endpoint) + "\"";
    out += std::string(",\"breaker\":\"") +
           CircuitBreaker::StateName(source.breaker) + "\"";
    out += ",\"in_flight\":" + std::to_string(source.in_flight);
    out += ",\"calls\":" + std::to_string(source.calls);
    out += ",\"failures\":" + std::to_string(source.failures);
    out += ",\"retries\":" + std::to_string(source.retries) + "}";
  }
  out += "]";
  out += ",\"resilience\":{\"enabled\":";
  out += b(s.resilience_enabled);
  out += ",\"retries\":" + std::to_string(s.resilience.retries);
  out += ",\"breaker_rejections\":" +
         std::to_string(s.resilience.breaker_rejections);
  out += ",\"partial_results\":" +
         std::to_string(s.resilience.partial_results) + "}";
  out += ",\"trace_ring\":{\"enabled\":";
  out += b(s.trace_ring_enabled);
  out += ",\"seen\":" + std::to_string(s.trace_ring.seen);
  out += ",\"sampled\":" + std::to_string(s.trace_ring.sampled);
  out += ",\"outliers\":" + std::to_string(s.trace_ring.outliers);
  out += ",\"evicted\":" + std::to_string(s.trace_ring.evicted) + "}";
  out += ",\"chains\":[";
  for (size_t i = 0; i < s.chains.size(); ++i) {
    const ChainStatus& chain = s.chains[i];
    if (i > 0) out += ',';
    out += "{\"name\":\"" + JsonEscape(chain.name) + "\",\"hops\":[";
    for (size_t j = 0; j < chain.hop_targets.size(); ++j) {
      if (j > 0) out += ',';
      out += "\"" + JsonEscape(chain.hop_targets[j]) + "\"";
    }
    out += "],\"composed_rules\":" + std::to_string(chain.composed_rules);
    out += ",\"approximate_marks\":" + std::to_string(chain.approximate_marks);
    out += ",\"exact\":";
    out += b(chain.exact);
    out += "}";
  }
  out += "]";
  out += ",\"pruned_sources\":[";
  for (size_t i = 0; i < s.pruned_sources.size(); ++i) {
    if (i > 0) out += ',';
    out += "{\"name\":\"" + JsonEscape(s.pruned_sources[i].name) + "\"";
    out += ",\"subsumed_by\":\"" +
           JsonEscape(s.pruned_sources[i].subsumed_by) + "\"}";
  }
  out += "]";
  out += "}";
  return out;
}

/// "87.5%" hit-rate rendering for /statusz ("-" when there were no lookups).
std::string HitRate(uint64_t hits, uint64_t misses) {
  uint64_t total = hits + misses;
  if (total == 0) return "-";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f%%",
                100.0 * static_cast<double>(hits) / static_cast<double>(total));
  return buf;
}

}  // namespace

ServiceStatus TranslationService::StatusSnapshot() const {
  ServiceStatus out;
  out.store_configured = options_.enable_cache && !options_.store.path.empty();
  out.store_ok = !out.store_configured || store_open_status_.ok();
  out.warmed_up = warmed_up_.load(std::memory_order_acquire);
  out.draining = draining();
  out.ready = !out.draining &&
              out.store_ok &&
              (store_ == nullptr || !options_.store.replay_on_boot ||
               out.warmed_up);
  out.match_engine = MatchEngineName(CurrentMatchEngine());
  out.stats = stats();
  out.cache_entries = options_.enable_cache ? cache_.size() : 0;
  out.pool_threads = pool_ != nullptr ? static_cast<size_t>(pool_->size()) : 0;
  out.pool_queue_depth = pool_ != nullptr ? pool_->queue_depth() : 0;
  out.sources.reserve(sources_.size());
  for (const SourceEntry& source : sources_) {
    SourceStatus status;
    status.name = source.name;
    status.endpoint = source.transport->endpoint();
    if (resilience_ != nullptr) {
      status.breaker = resilience_->breaker_state(source.name);
    }
    const SourceRuntime& runtime = *source.runtime;
    status.in_flight = runtime.in_flight.load(std::memory_order_relaxed);
    status.calls = runtime.calls.load(std::memory_order_relaxed);
    status.failures = runtime.failures.load(std::memory_order_relaxed);
    status.retries = runtime.retries.load(std::memory_order_relaxed);
    out.sources.push_back(std::move(status));
  }
  out.resilience_enabled = resilience_ != nullptr;
  if (resilience_ != nullptr) out.resilience = resilience_->counters();
  out.trace_ring_enabled = trace_ring_ != nullptr;
  if (trace_ring_ != nullptr) out.trace_ring = trace_ring_->stats();
  out.chains = chains_;
  out.pruned_sources = pruned_;
  return out;
}

void TranslationService::BridgeCompileStats() const {
  if (match_compile_ns_counter_ == nullptr) return;
  const CompiledPlanBuildStats global = CompiledPlanGlobalStats();
  // exchange() makes each delta claimed by exactly one bridging thread, so
  // concurrent calls never double-count a compile.
  const uint64_t prev_ns = bridged_compile_ns_.exchange(global.compile_ns);
  if (global.compile_ns > prev_ns) {
    match_compile_ns_counter_->Inc(global.compile_ns - prev_ns);
  }
  const uint64_t prev_nodes = bridged_plan_nodes_.exchange(global.plan_nodes);
  if (global.plan_nodes > prev_nodes) {
    match_plan_nodes_counter_->Inc(global.plan_nodes - prev_nodes);
  }
}

void TranslationService::UpdateGauges() const {
  BridgeCompileStats();
  MetricsRegistry* metrics = options_.obs.metrics;
  if (metrics == nullptr) return;
  metrics
      ->gauge("qmap_pool_queue_depth",
              "Tasks waiting in the worker pool's queue.")
      .Set(pool_ != nullptr ? static_cast<int64_t>(pool_->queue_depth()) : 0);
  metrics
      ->gauge("qmap_cache_entries",
              "Entries resident in the RAM translation cache.")
      .Set(options_.enable_cache ? static_cast<int64_t>(cache_.size()) : 0);
  metrics
      ->gauge("qmap_store_live_records",
              "Live records indexed by the persistent translation store.")
      .Set(store_ != nullptr ? static_cast<int64_t>(store_->num_entries()) : 0);
  for (const SourceEntry& source : sources_) {
    CircuitBreaker::State state =
        resilience_ != nullptr ? resilience_->breaker_state(source.name)
                               : CircuitBreaker::State::kClosed;
    int64_t value = 0;
    switch (state) {
      case CircuitBreaker::State::kClosed: value = 0; break;
      case CircuitBreaker::State::kHalfOpen: value = 1; break;
      case CircuitBreaker::State::kOpen: value = 2; break;
    }
    metrics
        ->gauge("qmap_breaker_state_" + source.name,
                "Circuit breaker FSM state: 0=closed, 1=half_open, 2=open.")
        .Set(value);
  }
}

Status TranslationService::StartAdmin(const AdminOptions& options) {
  if (admin_ != nullptr) {
    return Status::InvalidArgument("admin server already started");
  }
  // Run the boot warm-up now so /readyz is meaningful the moment the port
  // opens, instead of flipping on the first Translate.
  WarmUpFromStoreOnce();
  auto server = std::make_unique<AdminHttpServer>(options.http);
  RegisterAdminHandlers(server.get(), options);
  Status status = server->Start();
  if (!status.ok()) return status;
  admin_ = std::move(server);
  return Status::Ok();
}

void TranslationService::StopAdmin() {
  if (admin_ != nullptr) {
    admin_->Stop();
    admin_.reset();
  }
}

void TranslationService::RegisterAdminHandlers(AdminHttpServer* server,
                                               const AdminOptions& options) {
  server->Handle("/healthz", [](std::string_view) {
    AdminResponse response;
    response.body = "ok\n";
    return response;
  });

  server->Handle("/readyz", [this](std::string_view) {
    ServiceStatus status = StatusSnapshot();
    AdminResponse response;
    if (status.ready) {
      response.body = "ready\n";
    } else {
      response.status = 503;
      response.body = "not ready: ";
      if (status.draining) {
        response.body += "draining";
      } else if (!status.store_ok) {
        response.body +=
            "store failed to open (" + store_open_status_.ToString() + ")";
      } else {
        response.body += "store warm-up has not run";
      }
      response.body += "\n";
    }
    return response;
  });

  // Graceful-drain trigger: flips readiness first (so a load balancer
  // scraping /readyz between this response and the process exiting sees
  // "draining"), then hands control to the embedding process's hook.
  server->Handle("/drainz",
                 [this, on_drain = options.on_drain](std::string_view) {
                   BeginDrain();
                   if (on_drain) on_drain();
                   AdminResponse response;
                   response.body = "draining\n";
                   return response;
                 });

  for (const auto& [path, handler] : options.extra_handlers) {
    server->Handle(path, handler);
  }

  server->Handle("/varz", [this](std::string_view) {
    UpdateGauges();
    AdminResponse response;
    response.content_type = "application/json; charset=utf-8";
    response.body = "{\"status\":" + StatusJson(StatusSnapshot()) +
                    ",\"metrics\":";
    response.body += options_.obs.metrics != nullptr
                         ? options_.obs.metrics->ToJson()
                         : "null";
    response.body += "}";
    return response;
  });

  server->Handle("/metrics", [this](std::string_view) {
    AdminResponse response;
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    if (options_.obs.metrics == nullptr) {
      response.body = "# no MetricsRegistry attached to this service\n";
      return response;
    }
    UpdateGauges();
    response.body = options_.obs.metrics->ToPrometheusText();
    return response;
  });

  server->Handle("/statusz", [this](std::string_view) {
    ServiceStatus s = StatusSnapshot();
    AdminResponse response;
    std::string& out = response.body;
    out += std::string("qmap translation service ") + kQmapVersion + "\n";
    out += std::string("ready: ") + (s.ready ? "yes" : "no") + "\n";
    out += std::string("store: configured=") + (s.store_configured ? "yes" : "no") +
           " ok=" + (s.store_ok ? "yes" : "no") +
           " warmed_up=" + (s.warmed_up ? "yes" : "no") +
           " live_records=" + std::to_string(s.stats.store.live_records) +
           " hit_rate=" + HitRate(s.stats.store.hits, s.stats.store.misses) +
           "\n";
    out += "cache: entries=" + std::to_string(s.cache_entries) +
           " hits=" + std::to_string(s.stats.cache.hits) +
           " misses=" + std::to_string(s.stats.cache.misses) +
           " hit_rate=" + HitRate(s.stats.cache.hits, s.stats.cache.misses) +
           "\n";
    out += "pool: threads=" + std::to_string(s.pool_threads) +
           " queue_depth=" + std::to_string(s.pool_queue_depth) + "\n";
    out += "service: translate_calls=" + std::to_string(s.stats.translate_calls) +
           " batch_calls=" + std::to_string(s.stats.batch_calls) +
           " slow_queries=" + std::to_string(s.stats.slow_queries) +
           " match_engine=" + s.match_engine + "\n";
    out += std::string("resilience: enabled=") +
           (s.resilience_enabled ? "yes" : "no") +
           " retries=" + std::to_string(s.resilience.retries) +
           " breaker_rejections=" +
           std::to_string(s.resilience.breaker_rejections) +
           " partial_results=" + std::to_string(s.resilience.partial_results) +
           "\n";
    out += std::string("trace_ring: enabled=") +
           (s.trace_ring_enabled ? "yes" : "no") +
           " seen=" + std::to_string(s.trace_ring.seen) +
           " sampled=" + std::to_string(s.trace_ring.sampled) +
           " outliers=" + std::to_string(s.trace_ring.outliers) +
           " evicted=" + std::to_string(s.trace_ring.evicted) + "\n";
    out += "\nsource scoreboard:\n";
    char line[320];
    std::snprintf(line, sizeof(line), "  %-24s %-18s %-10s %9s %9s %9s %9s\n",
                  "source", "endpoint", "breaker", "in_flight", "calls",
                  "failures", "retries");
    out += line;
    for (const SourceStatus& source : s.sources) {
      std::snprintf(line, sizeof(line),
                    "  %-24s %-18s %-10s %9llu %9llu %9llu %9llu\n",
                    source.name.c_str(), source.endpoint.c_str(),
                    CircuitBreaker::StateName(source.breaker),
                    static_cast<unsigned long long>(source.in_flight),
                    static_cast<unsigned long long>(source.calls),
                    static_cast<unsigned long long>(source.failures),
                    static_cast<unsigned long long>(source.retries));
      out += line;
    }
    if (!s.chains.empty()) {
      out += "\nmediation chains:\n";
      for (const ChainStatus& chain : s.chains) {
        out += "  " + chain.name + ": ";
        for (size_t i = 0; i < chain.hop_targets.size(); ++i) {
          if (i > 0) out += " -> ";
          out += chain.hop_targets[i];
        }
        out += " (rules=" + std::to_string(chain.composed_rules) +
               " approximate_marks=" +
               std::to_string(chain.approximate_marks) +
               " exact=" + (chain.exact ? "yes" : "no") + ")\n";
      }
    }
    if (!s.pruned_sources.empty()) {
      out += "\ncontainment-pruned sources:\n";
      for (const PrunedSourceStatus& pruned : s.pruned_sources) {
        out += "  " + pruned.name + " subsumed by " + pruned.subsumed_by + "\n";
      }
    }
    return response;
  });

  server->Handle("/tracez", [this](std::string_view query) {
    AdminResponse response;
    response.content_type = "application/json; charset=utf-8";
    if (trace_ring_ == nullptr) {
      response.status = 404;
      response.body =
          "{\"error\":\"trace ring not enabled "
          "(ServiceOptions::obs.trace_ring)\"}";
      return response;
    }
    std::string target(QueryParam(query, "id"));
    std::string_view bucket = QueryParam(query, "bucket");
    if (target.empty() && !bucket.empty()) {
      // Exemplar jump: latency-histogram bucket index → retained trace.
      int b = ParseNonNegativeInt(bucket);
      if (b < 0 || b >= Histogram::kNumBuckets) {
        response.status = 400;
        response.body = "{\"error\":\"bad bucket index\"}";
        return response;
      }
      uint64_t serial =
          latency_hist_ != nullptr ? latency_hist_->exemplar(b) : 0;
      if (serial == 0) {
        response.status = 404;
        response.body =
            "{\"error\":\"no exemplar recorded for bucket " +
            std::to_string(b) + "\"}";
        return response;
      }
      target = "qt" + std::to_string(serial);
    }
    if (!target.empty()) {
      std::optional<ParsedTrace> trace = trace_ring_->Find(target);
      if (!trace.has_value()) {
        response.status = 404;
        response.body =
            "{\"error\":\"trace " + JsonEscape(target) + " not retained\"}";
        return response;
      }
      response.body = trace->ToJson();
      return response;
    }
    TraceRingStats stats = trace_ring_->stats();
    response.body = "{\"stats\":{\"seen\":" + std::to_string(stats.seen);
    response.body += ",\"sampled\":" + std::to_string(stats.sampled);
    response.body += ",\"outliers\":" + std::to_string(stats.outliers);
    response.body += ",\"evicted\":" + std::to_string(stats.evicted) + "}";
    response.body +=
        ",\"outliers\":" + TracesJsonArray(trace_ring_->OutlierSnapshot());
    response.body +=
        ",\"sampled\":" + TracesJsonArray(trace_ring_->SampledSnapshot());
    response.body += "}";
    return response;
  });

  server->Handle("/slowlogz", [this](std::string_view) {
    AdminResponse response;
    response.content_type = "application/json; charset=utf-8";
    std::vector<SlowQueryRecord> records = slow_queries();
    std::string& out = response.body;
    out = "[";
    for (size_t i = 0; i < records.size(); ++i) {
      const SlowQueryRecord& record = records[i];
      if (i > 0) out += ',';
      out += "{\"query\":\"" + JsonEscape(record.query_text) + "\"";
      out += ",\"total_us\":" + std::to_string(record.total_us);
      out += ",\"max_disjuncts\":" + std::to_string(record.max_disjuncts);
      out += ",\"stats\":\"" + JsonEscape(record.stats) + "\"";
      if (!record.partial_summary.empty()) {
        out += ",\"partial\":\"" + JsonEscape(record.partial_summary) + "\"";
      }
      // trace_json is itself a JSON document; embed it verbatim.
      out += ",\"trace\":";
      out += record.trace_json.empty() ? "null" : record.trace_json;
      out += "}";
    }
    out += "]";
    return response;
  });
}

}  // namespace qmap
