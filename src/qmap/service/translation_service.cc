#include "qmap/service/translation_service.h"

#include <algorithm>
#include <latch>
#include <map>
#include <utility>

#include "qmap/core/filter.h"
#include "qmap/expr/printer.h"

namespace qmap {
namespace {

// FNV-1a 64-bit, used to fingerprint a spec's full rendering. The
// fingerprint only disambiguates *within* one service (the source name is
// also in the key), so a 64-bit digest is plenty.
uint64_t Fingerprint(const std::string& text) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : text) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

std::string OptionsTag(const TranslatorOptions& options) {
  std::string tag;
  switch (options.algorithm) {
    case MappingAlgorithm::kTdqm:
      tag = "tdqm";
      break;
    case MappingAlgorithm::kDnf:
      tag = "dnf";
      break;
    case MappingAlgorithm::kNaive:
      tag = "naive";
      break;
  }
  tag += options.reuse_potential_matchings ? "+reuse" : "-reuse";
  tag += options.simplify_output ? "+simp" : "-simp";
  return tag;
}

// Separator between cache-key fields; cannot occur in names, option tags,
// or printed queries (ToParseableText emits printable ASCII only).
constexpr char kKeySep = '\x1f';

}  // namespace

TranslationService::TranslationService(ServiceOptions options)
    : options_(options), cache_(options.cache) {
  if (options_.num_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  }
}

void TranslationService::AddSource(std::string name, MappingSpec spec) {
  SourceEntry entry;
  entry.cache_prefix = name + kKeySep +
                       std::to_string(Fingerprint(spec.target_name() + "\n" +
                                                  spec.ToString())) +
                       kKeySep + OptionsTag(options_.translator) + kKeySep;
  entry.name = std::move(name);
  entry.translator = Translator(std::move(spec), options_.translator);
  auto pos = std::lower_bound(
      sources_.begin(), sources_.end(), entry,
      [](const SourceEntry& a, const SourceEntry& b) { return a.name < b.name; });
  sources_.insert(pos, std::move(entry));
}

void TranslationService::AddSourcesFrom(const Mediator& mediator) {
  for (const SourceContext& source : mediator.sources()) {
    AddSource(source.name(), source.spec());
  }
  SetViewConstraints(mediator.view_constraints());
}

void TranslationService::SetViewConstraints(Query constraints) {
  view_constraints_ = std::move(constraints);
  cache_.Clear();
}

Result<Translation> TranslationService::TranslateOne(
    const SourceEntry& source, const Query& full,
    const std::string& query_text) const {
  if (!options_.enable_cache) {
    return source.translator.Translate(full);
  }
  std::string key = source.cache_prefix + query_text;
  if (std::optional<Translation> hit = cache_.Get(key)) {
    // Stats describe the work done *for this call*: a hit does no rule
    // matching, so the computation counters reset and only the hit shows.
    hit->stats = TranslationStats{};
    hit->stats.cache_hits = 1;
    return *std::move(hit);
  }
  Result<Translation> translation = source.translator.Translate(full);
  if (!translation.ok()) return translation;
  cache_.Put(key, *translation);
  translation->stats.cache_misses = 1;
  return translation;
}

Result<MediatorTranslation> TranslationService::TranslateFull(
    const Query& full, const std::string& query_text) const {
  const size_t n = sources_.size();
  const uint64_t evictions_before =
      options_.enable_cache ? cache_.stats().evictions : 0;
  std::vector<std::optional<Result<Translation>>> outcomes(n);
  if (pool_ != nullptr && n > 1) {
    parallel_tasks_.fetch_add(n, std::memory_order_relaxed);
    std::latch done(static_cast<ptrdiff_t>(n));
    for (size_t i = 0; i < n; ++i) {
      pool_->Submit([this, &full, &query_text, &outcomes, &done, i] {
        outcomes[i].emplace(TranslateOne(sources_[i], full, query_text));
        done.count_down();
      });
    }
    done.wait();
  } else {
    inline_tasks_.fetch_add(n, std::memory_order_relaxed);
    for (size_t i = 0; i < n; ++i) {
      outcomes[i].emplace(TranslateOne(sources_[i], full, query_text));
    }
  }

  // Deterministic join: sources_ is sorted by name, and the merge below
  // always runs in that order, independent of task completion order.
  MediatorTranslation out;
  ExactCoverage merged;
  for (size_t i = 0; i < n; ++i) {
    Result<Translation>& translation = *outcomes[i];
    if (!translation.ok()) return translation.status();
    merged.MergeAnySource(translation->coverage);
    out.stats.MergeFrom(translation->stats);
    out.per_source.emplace(sources_[i].name, *std::move(translation));
  }
  if (pool_ != nullptr && n > 1) out.stats.parallel_tasks += n;
  if (options_.enable_cache) {
    // Approximate under concurrent Translate calls: evictions are counted
    // against whichever call observes them.
    out.stats.cache_evictions += cache_.stats().evictions - evictions_before;
  }
  out.filter = ResidueFilter(full, merged);
  return out;
}

Result<MediatorTranslation> TranslationService::Translate(const Query& query) const {
  translate_calls_.fetch_add(1, std::memory_order_relaxed);
  Query full = query & view_constraints_;
  return TranslateFull(full, ToParseableText(full));
}

Result<std::vector<MediatorTranslation>> TranslationService::TranslateBatch(
    std::span<const Query> queries) const {
  batch_calls_.fetch_add(1, std::memory_order_relaxed);
  batch_queries_.fetch_add(queries.size(), std::memory_order_relaxed);

  // Intra-batch dedup: identical normalized printed forms translate once.
  std::vector<Query> unique_full;
  std::vector<std::string> unique_text;
  std::map<std::string, size_t> slot_by_text;
  std::vector<size_t> slot_of(queries.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    Query full = queries[q] & view_constraints_;
    std::string text = ToParseableText(full);
    auto [it, inserted] = slot_by_text.emplace(std::move(text), unique_full.size());
    if (inserted) {
      unique_full.push_back(std::move(full));
      unique_text.push_back(it->first);
    } else {
      batch_duplicates_.fetch_add(1, std::memory_order_relaxed);
    }
    slot_of[q] = it->second;
  }

  std::vector<MediatorTranslation> unique_results;
  unique_results.reserve(unique_full.size());
  for (size_t u = 0; u < unique_full.size(); ++u) {
    Result<MediatorTranslation> translation =
        TranslateFull(unique_full[u], unique_text[u]);
    if (!translation.ok()) return translation.status();
    unique_results.push_back(*std::move(translation));
  }

  std::vector<MediatorTranslation> out;
  out.reserve(queries.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    out.push_back(unique_results[slot_of[q]]);
  }
  return out;
}

ServiceStats TranslationService::stats() const {
  ServiceStats out;
  out.cache = cache_.stats();
  out.translate_calls = translate_calls_.load(std::memory_order_relaxed);
  out.batch_calls = batch_calls_.load(std::memory_order_relaxed);
  out.batch_queries = batch_queries_.load(std::memory_order_relaxed);
  out.batch_duplicates = batch_duplicates_.load(std::memory_order_relaxed);
  out.parallel_tasks = parallel_tasks_.load(std::memory_order_relaxed);
  out.inline_tasks = inline_tasks_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace qmap
