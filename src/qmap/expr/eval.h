#ifndef QMAP_EXPR_EVAL_H_
#define QMAP_EXPR_EVAL_H_

#include <map>
#include <optional>
#include <string>

#include "qmap/expr/query.h"
#include "qmap/value/value.h"

namespace qmap {

/// A tuple binding attribute paths (canonical Attr::ToString form) to values.
/// Used by the relational engine and by the empirical subsumption oracles.
class Tuple {
 public:
  Tuple() = default;

  void Set(const Attr& attr, Value value) { values_[attr.ToString()] = std::move(value); }
  void Set(const std::string& attr_path, Value value) { values_[attr_path] = std::move(value); }

  /// Looks the attribute up; falls back to the bare name if the qualified
  /// path is absent (convenient for single-view contexts).
  std::optional<Value> Get(const Attr& attr) const;

  const std::map<std::string, Value>& values() const { return values_; }

  std::string ToString() const;

 private:
  std::map<std::string, Value> values_;
};

/// Extension point for context-specific constraint semantics.  The geo
/// context of Example 8, for instance, interprets `[X-range = (10:30)]` as a
/// predicate over point tuples.  Return nullopt to defer to the default
/// semantics.
class ConstraintSemantics {
 public:
  virtual ~ConstraintSemantics() = default;
  virtual std::optional<bool> Eval(const Constraint& constraint,
                                   const Tuple& tuple) const = 0;
};

/// Default semantics for a single constraint:
///  * comparison ops use Value ordering;
///  * `contains` parses the RHS string as a TextPattern and matches the LHS
///    string's word tokens (proximity window 3 for `near`);
///  * `starts` is a case-insensitive prefix test;
///  * `during` uses partial-date containment;
///  * a missing LHS attribute (or a join partner) makes the constraint false;
///  * incomparable kinds make the constraint false.
bool EvalConstraint(const Constraint& constraint, const Tuple& tuple);

/// Evaluates a full query tree over `tuple`. If `semantics` is non-null it is
/// consulted first for each leaf.
bool EvalQuery(const Query& query, const Tuple& tuple,
               const ConstraintSemantics* semantics = nullptr);

}  // namespace qmap

#endif  // QMAP_EXPR_EVAL_H_
