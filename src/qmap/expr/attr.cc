#include "qmap/expr/attr.h"

#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "qmap/common/fnv.h"
#include "qmap/common/strings.h"

namespace qmap {

Attr Attr::Simple(std::string name) {
  Attr a;
  a.name = std::move(name);
  return a;
}

Attr Attr::Of(std::string view, std::string name) {
  Attr a;
  a.view = std::move(view);
  a.name = std::move(name);
  return a;
}

Attr Attr::OfInstance(std::string view, int instance, std::string name) {
  Attr a;
  a.view = std::move(view);
  a.instance = instance;
  a.name = std::move(name);
  return a;
}

Result<Attr> Attr::Parse(std::string_view text) {
  std::string_view s = StripWhitespace(text);
  if (s.empty()) return Status::ParseError("empty attribute reference");
  Attr a;
  size_t dot = s.find('.');
  if (dot == std::string_view::npos) {
    a.name = std::string(s);
    return a;
  }
  std::string_view head = s.substr(0, dot);
  size_t bracket = head.find('[');
  if (bracket != std::string_view::npos) {
    size_t close = head.find(']', bracket);
    if (close == std::string_view::npos) {
      return Status::ParseError("unbalanced '[' in attribute: '" + std::string(s) + "'");
    }
    a.view = std::string(head.substr(0, bracket));
    a.instance = std::atoi(std::string(head.substr(bracket + 1, close - bracket - 1)).c_str());
  } else {
    a.view = std::string(head);
  }
  a.name = std::string(s.substr(dot + 1));
  if (a.view.empty() || a.name.empty()) {
    return Status::ParseError("malformed attribute reference: '" + std::string(s) + "'");
  }
  return a;
}

std::string Attr::ToString() const {
  if (view.empty()) return name;
  if (instance == 0) return view + "." + name;
  return view + "[" + std::to_string(instance) + "]." + name;
}

uint64_t Attr::CanonicalHash() const {
  Fnv64 h;
  if (!view.empty()) {
    h.Add(view);
    if (instance != 0) {
      char buf[16];
      int n = std::snprintf(buf, sizeof(buf), "[%d]", instance);
      h.Add(std::string_view(buf, static_cast<size_t>(n)));
    }
    h.AddByte('.');
  }
  return h.Add(name).value();
}

AttrNameTable& AttrNameTable::Global() {
  static AttrNameTable* table = new AttrNameTable();
  return *table;
}

int32_t AttrNameTable::Intern(std::string_view name) {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = index_.find(name);
    if (it != index_.end()) return it->second;
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto [it, inserted] =
      index_.emplace(std::string(name), static_cast<int32_t>(names_.size()));
  if (inserted) names_.push_back(&it->first);
  return it->second;
}

int32_t AttrNameTable::Find(std::string_view name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = index_.find(name);
  return it == index_.end() ? -1 : it->second;
}

const std::string& AttrNameTable::NameOf(int32_t id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return *names_[static_cast<size_t>(id)];
}

size_t AttrNameTable::size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return names_.size();
}

}  // namespace qmap
