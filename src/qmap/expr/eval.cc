#include "qmap/expr/eval.h"

#include "qmap/common/strings.h"
#include "qmap/text/dates.h"
#include "qmap/text/text_pattern.h"

namespace qmap {

std::optional<Value> Tuple::Get(const Attr& attr) const {
  auto it = values_.find(attr.ToString());
  if (it != values_.end()) return it->second;
  if (!attr.view.empty()) {
    // Fall back to an unindexed spelling, then to the bare attribute name.
    if (attr.instance != 0) {
      Attr unindexed = attr;
      unindexed.instance = 0;
      it = values_.find(unindexed.ToString());
      if (it != values_.end()) return it->second;
    }
    it = values_.find(attr.name);
    if (it != values_.end()) return it->second;
  }
  return std::nullopt;
}

std::string Tuple::ToString() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : values_) {
    if (!first) out += ", ";
    first = false;
    out += key + ": " + value.ToString();
  }
  return out + "}";
}

bool EvalConstraint(const Constraint& constraint, const Tuple& tuple) {
  std::optional<Value> lhs = tuple.Get(constraint.lhs);
  if (!lhs.has_value()) return false;
  Value rhs;
  if (constraint.is_join()) {
    std::optional<Value> partner = tuple.Get(constraint.rhs_attr());
    if (!partner.has_value()) return false;
    rhs = *partner;
  } else {
    rhs = constraint.rhs_value();
  }
  switch (constraint.op) {
    case Op::kEq:
      return lhs->Equals(rhs);
    case Op::kLt:
    case Op::kLe:
    case Op::kGt:
    case Op::kGe: {
      std::optional<int> cmp = lhs->Compare(rhs);
      if (!cmp.has_value()) return false;
      switch (constraint.op) {
        case Op::kLt:
          return *cmp < 0;
        case Op::kLe:
          return *cmp <= 0;
        case Op::kGt:
          return *cmp > 0;
        default:
          return *cmp >= 0;
      }
    }
    case Op::kContains: {
      if (lhs->kind() != ValueKind::kString || rhs.kind() != ValueKind::kString) {
        return false;
      }
      Result<TextPattern> pattern = TextPattern::Parse(rhs.AsString());
      if (!pattern.ok()) return false;
      return pattern->Matches(lhs->AsString());
    }
    case Op::kStartsWith: {
      if (lhs->kind() != ValueKind::kString || rhs.kind() != ValueKind::kString) {
        return false;
      }
      return StartsWithIgnoreCase(lhs->AsString(), rhs.AsString());
    }
    case Op::kDuring: {
      if (lhs->kind() != ValueKind::kDate || rhs.kind() != ValueKind::kDate) {
        return false;
      }
      return DateDuring(lhs->AsDate(), rhs.AsDate());
    }
  }
  return false;
}

bool EvalQuery(const Query& query, const Tuple& tuple,
               const ConstraintSemantics* semantics) {
  switch (query.kind()) {
    case NodeKind::kTrue:
      return true;
    case NodeKind::kLeaf: {
      if (semantics != nullptr) {
        std::optional<bool> custom = semantics->Eval(query.constraint(), tuple);
        if (custom.has_value()) return *custom;
      }
      return EvalConstraint(query.constraint(), tuple);
    }
    case NodeKind::kAnd: {
      for (const Query& child : query.children()) {
        if (!EvalQuery(child, tuple, semantics)) return false;
      }
      return true;
    }
    case NodeKind::kOr: {
      for (const Query& child : query.children()) {
        if (EvalQuery(child, tuple, semantics)) return true;
      }
      return false;
    }
  }
  return false;
}

}  // namespace qmap
