#ifndef QMAP_EXPR_DNF_H_
#define QMAP_EXPR_DNF_H_

#include <cstdint>
#include <vector>

#include "qmap/expr/query.h"

namespace qmap {

/// Function Disjunctivize of Figure 8: rewrites the conjunction of `block`
/// into a disjunctive form by distributing the root ∧ over the children's ∨
/// *one level* — ∧{(D11 ∨ D12), (D21 ∨ D22)} becomes
/// ∨{D11∧D21, D11∧D22, D12∧D21, D12∧D22}.  A single-conjunct block is
/// returned unchanged.  The result is logically equivalent to ∧(block).
Query Disjunctivize(const std::vector<Query>& block);

/// Full DNF conversion (step 1 of Algorithm DNF, Figure 6): the result is a
/// disjunction of simple conjunctions, logically equivalent to `q`.
Query FullDnf(const Query& q);

/// The disjuncts of FullDnf(q), each as a simple conjunction of constraints,
/// without materializing the tree. A True query yields one empty disjunct.
std::vector<std::vector<Constraint>> DnfDisjuncts(const Query& q);

/// Number of disjuncts FullDnf(q) would have, computed without expansion
/// (used by benchmarks to report the blow-up the paper's §8 analyzes).
uint64_t CountDnfDisjuncts(const Query& q);

}  // namespace qmap

#endif  // QMAP_EXPR_DNF_H_
