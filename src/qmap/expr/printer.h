#ifndef QMAP_EXPR_PRINTER_H_
#define QMAP_EXPR_PRINTER_H_

#include <string>

#include "qmap/expr/query.h"

namespace qmap {

/// Renders `query` in the concrete syntax accepted by ParseQuery — `and`/
/// `or` keywords and function-style value literals (`date(1997, 5)`,
/// `range(10, 30)`, `point(10, 20)`) instead of the pretty ∧/∨ and `May/97`
/// forms of Query::ToString().  Guaranteed round-trip:
/// ParseQuery(ToParseableText(q)) == q for every normalized query.
std::string ToParseableText(const Query& query);

/// Same for a single constraint.
std::string ToParseableText(const Constraint& constraint);

/// Parseable rendering of a value (`"s"`, `3`, `date(1997, 5)`, ...).
std::string ToParseableText(const Value& value);

}  // namespace qmap

#endif  // QMAP_EXPR_PRINTER_H_
