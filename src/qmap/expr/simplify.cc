#include "qmap/expr/simplify.h"

#include <cstdint>
#include <set>
#include <vector>

#include "qmap/expr/dnf.h"

namespace qmap {
namespace {

// Disjuncts are summarized as sets of constraint fingerprints rather than
// printed strings — set containment over uint64s, no rendering. Fingerprint
// collisions (~2^-64) could only make implication *more* permissive.
using ConstraintKeySet = std::set<uint64_t>;

std::vector<ConstraintKeySet> DnfKeySets(const Query& q) {
  std::vector<ConstraintKeySet> out;
  for (const std::vector<Constraint>& disjunct : DnfDisjuncts(q)) {
    ConstraintKeySet keys;
    for (const Constraint& c : disjunct) keys.insert(c.Fingerprint());
    out.push_back(std::move(keys));
  }
  return out;
}

bool Contains(const ConstraintKeySet& super, const ConstraintKeySet& sub) {
  for (uint64_t key : sub) {
    if (super.find(key) == super.end()) return false;
  }
  return true;
}

bool Implies(const std::vector<ConstraintKeySet>& stronger,
             const std::vector<ConstraintKeySet>& weaker) {
  for (const ConstraintKeySet& s : stronger) {
    bool some_weaker_disjunct_covered = false;
    for (const ConstraintKeySet& w : weaker) {
      if (Contains(s, w)) {
        some_weaker_disjunct_covered = true;
        break;
      }
    }
    if (!some_weaker_disjunct_covered) return false;
  }
  return true;
}

}  // namespace

bool SyntacticallyImplies(const Query& stronger, const Query& weaker) {
  return Implies(DnfKeySets(stronger), DnfKeySets(weaker));
}

Query SimplifyQuery(const Query& query) {
  switch (query.kind()) {
    case NodeKind::kTrue:
    case NodeKind::kLeaf:
      return query;
    case NodeKind::kAnd:
    case NodeKind::kOr:
      break;
  }

  std::vector<Query> children;
  children.reserve(query.children().size());
  bool changed = false;
  for (const Query& child : query.children()) {
    children.push_back(SimplifyQuery(child));
    changed = changed || children.back().identity() != child.identity();
  }
  std::vector<std::vector<ConstraintKeySet>> dnfs;
  dnfs.reserve(children.size());
  for (const Query& child : children) dnfs.push_back(DnfKeySets(child));

  std::vector<bool> dropped(children.size(), false);
  for (size_t i = 0; i < children.size(); ++i) {
    if (dropped[i]) continue;
    for (size_t j = 0; j < children.size(); ++j) {
      if (i == j || dropped[j]) continue;
      if (query.kind() == NodeKind::kOr) {
        // child_i ⇒ child_j: absorb child_i into child_j.  On mutual
        // implication, keep the earlier sibling.
        if (Implies(dnfs[i], dnfs[j]) && (!Implies(dnfs[j], dnfs[i]) || j < i)) {
          dropped[i] = true;
          break;
        }
      } else {
        // child_j ⇒ child_i: child_i is redundant in the conjunction.
        if (Implies(dnfs[j], dnfs[i]) && (!Implies(dnfs[i], dnfs[j]) || j < i)) {
          dropped[i] = true;
          break;
        }
      }
    }
  }
  std::vector<Query> kept;
  for (size_t i = 0; i < children.size(); ++i) {
    if (!dropped[i]) kept.push_back(children[i]);
  }
  // Identity fast path: nothing absorbed and every child simplified to
  // itself — the input node is already the result.
  if (!changed && kept.size() == children.size()) return query;
  return query.kind() == NodeKind::kAnd ? Query::And(std::move(kept))
                                        : Query::Or(std::move(kept));
}

}  // namespace qmap
