#include "qmap/expr/parser.h"

#include <cmath>

namespace qmap {
namespace {

Result<Query> ParseOr(TokenCursor& cursor);

Result<Query> ParsePrimary(TokenCursor& cursor) {
  if (cursor.TryConsumePunct("(")) {
    Result<Query> inner = ParseOr(cursor);
    if (!inner.ok()) return inner.status();
    Status s = cursor.ExpectPunct(")");
    if (!s.ok()) return s;
    return inner;
  }
  if (cursor.TryConsumeIdent("true")) return Query::True();
  if (cursor.Peek().kind == TokenKind::kPunct && cursor.Peek().text == "[") {
    Result<Constraint> c = ParseConstraintAt(cursor);
    if (!c.ok()) return c.status();
    return Query::Leaf(*std::move(c));
  }
  return Status::ParseError("expected '(', '[' or 'true' but found '" +
                            cursor.Peek().text + "' at offset " +
                            std::to_string(cursor.Peek().offset));
}

Result<Query> ParseAnd(TokenCursor& cursor) {
  Result<Query> first = ParsePrimary(cursor);
  if (!first.ok()) return first;
  std::vector<Query> parts = {*std::move(first)};
  while (cursor.TryConsumeIdent("and") || cursor.TryConsumePunct("&")) {
    Result<Query> next = ParsePrimary(cursor);
    if (!next.ok()) return next;
    parts.push_back(*std::move(next));
  }
  if (parts.size() == 1) return parts[0];
  return Query::And(std::move(parts));
}

Result<Query> ParseOr(TokenCursor& cursor) {
  Result<Query> first = ParseAnd(cursor);
  if (!first.ok()) return first;
  std::vector<Query> parts = {*std::move(first)};
  while (cursor.TryConsumeIdent("or") || cursor.TryConsumePunct("|")) {
    Result<Query> next = ParseAnd(cursor);
    if (!next.ok()) return next;
    parts.push_back(*std::move(next));
  }
  if (parts.size() == 1) return parts[0];
  return Query::Or(std::move(parts));
}

}  // namespace

Result<Attr> ParseAttrAt(TokenCursor& cursor) {
  Result<std::string> head = cursor.ExpectIdent();
  if (!head.ok()) return head.status();
  Attr attr;
  std::vector<std::string> parts = {*head};
  int instance = 0;
  if (cursor.TryConsumePunct("[")) {
    const Token& t = cursor.Peek();
    if (t.kind != TokenKind::kNumber || !t.is_integer) {
      return Status::ParseError("expected integer view index at offset " +
                                std::to_string(t.offset));
    }
    instance = static_cast<int>(cursor.Next().number);
    Status s = cursor.ExpectPunct("]");
    if (!s.ok()) return s;
  }
  while (cursor.TryConsumePunct(".")) {
    Result<std::string> part = cursor.ExpectIdent();
    if (!part.ok()) return part.status();
    parts.push_back(*part);
  }
  if (parts.size() == 1) {
    if (instance != 0) {
      return Status::ParseError("view index requires a qualified attribute");
    }
    attr.name = parts[0];
    return attr;
  }
  attr.view = parts[0];
  attr.instance = instance;
  std::string name = parts[1];
  for (size_t i = 2; i < parts.size(); ++i) name += "." + parts[i];
  attr.name = std::move(name);
  return attr;
}

Result<Op> ParseOpAt(TokenCursor& cursor) {
  const Token& t = cursor.Peek();
  if (t.kind == TokenKind::kPunct || t.kind == TokenKind::kIdent) {
    Result<Op> op = ParseOp(t.text);
    if (op.ok()) {
      cursor.Next();
      return op;
    }
  }
  return Status::ParseError("expected operator but found '" + t.text +
                            "' at offset " + std::to_string(t.offset));
}

Result<Value> ParseValueAt(TokenCursor& cursor) {
  const Token& t = cursor.Peek();
  if (t.kind == TokenKind::kString) {
    return Value::Str(cursor.Next().text);
  }
  if (t.kind == TokenKind::kNumber) {
    Token num = cursor.Next();
    if (num.is_integer) return Value::Int(static_cast<int64_t>(num.number));
    return Value::Real(num.number);
  }
  if (t.kind == TokenKind::kIdent &&
      (t.text == "date" || t.text == "range" || t.text == "point") &&
      cursor.Peek(1).kind == TokenKind::kPunct && cursor.Peek(1).text == "(") {
    std::string fn = cursor.Next().text;
    cursor.Next();  // '('
    std::vector<double> args;
    while (true) {
      const Token& arg = cursor.Peek();
      if (arg.kind != TokenKind::kNumber) {
        return Status::ParseError("expected number in " + fn + "() literal");
      }
      args.push_back(cursor.Next().number);
      if (!cursor.TryConsumePunct(",")) break;
    }
    Status s = cursor.ExpectPunct(")");
    if (!s.ok()) return s;
    if (fn == "date") {
      if (args.empty() || args.size() > 3) {
        return Status::ParseError("date() takes 1-3 integer arguments");
      }
      Date d;
      d.year = static_cast<int>(args[0]);
      if (args.size() > 1) d.month = static_cast<int>(args[1]);
      if (args.size() > 2) d.day = static_cast<int>(args[2]);
      return Value::OfDate(d);
    }
    if (args.size() != 2) {
      return Status::ParseError(fn + "() takes exactly 2 arguments");
    }
    if (fn == "range") return Value::OfRange(Range{args[0], args[1]});
    return Value::OfPoint(Point{args[0], args[1]});
  }
  return Status::ParseError("expected value literal but found '" + t.text +
                            "' at offset " + std::to_string(t.offset));
}

Result<Constraint> ParseConstraintAt(TokenCursor& cursor) {
  Status s = cursor.ExpectPunct("[");
  if (!s.ok()) return s;
  Result<Attr> lhs = ParseAttrAt(cursor);
  if (!lhs.ok()) return lhs.status();
  Result<Op> op = ParseOpAt(cursor);
  if (!op.ok()) return op.status();
  Constraint c;
  c.lhs = *std::move(lhs);
  c.op = *op;
  const Token& t = cursor.Peek();
  bool rhs_is_attr =
      t.kind == TokenKind::kIdent &&
      !((t.text == "date" || t.text == "range" || t.text == "point") &&
        cursor.Peek(1).kind == TokenKind::kPunct && cursor.Peek(1).text == "(");
  if (rhs_is_attr) {
    Result<Attr> rhs = ParseAttrAt(cursor);
    if (!rhs.ok()) return rhs.status();
    c.rhs = *std::move(rhs);
  } else {
    Result<Value> rhs = ParseValueAt(cursor);
    if (!rhs.ok()) return rhs.status();
    c.rhs = *std::move(rhs);
  }
  s = cursor.ExpectPunct("]");
  if (!s.ok()) return s;
  return c;
}

Result<Query> ParseQuery(std::string_view text) {
  Result<std::vector<Token>> tokens = Lexer::Tokenize(text);
  if (!tokens.ok()) return tokens.status();
  TokenCursor cursor(*std::move(tokens));
  Result<Query> q = ParseOr(cursor);
  if (!q.ok()) return q;
  if (!cursor.AtEnd()) {
    return Status::ParseError("trailing input after query: '" +
                              cursor.Peek().text + "'");
  }
  return q;
}

Result<Constraint> ParseConstraint(std::string_view text) {
  Result<std::vector<Token>> tokens = Lexer::Tokenize(text);
  if (!tokens.ok()) return tokens.status();
  TokenCursor cursor(*std::move(tokens));
  Result<Constraint> c = ParseConstraintAt(cursor);
  if (!c.ok()) return c;
  if (!cursor.AtEnd()) {
    return Status::ParseError("trailing input after constraint");
  }
  return c;
}

}  // namespace qmap
