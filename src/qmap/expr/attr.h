#ifndef QMAP_EXPR_ATTR_H_
#define QMAP_EXPR_ATTR_H_

#include <cstdint>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "qmap/common/status.h"

namespace qmap {

/// A (possibly view-qualified) attribute reference.
///
/// Forms, mirroring the paper's notation:
///   * `ln`                — bare attribute (single-view contexts, Example 2)
///   * `fac.ln`            — view-qualified (Example 3)
///   * `fac[1].ln`         — view instance distinguished by index (Sec. 4.2)
///   * `fac.aubib.bib`     — source relation expanded from a view; the extra
///                           qualification lives in `name` ("aubib.bib").
///
/// `instance == 0` means "no explicit index". Per Section 4.2, an unindexed
/// reference abbreviates "any instance" for *patterns*; for concrete
/// constraints it simply denotes the only instance.
struct Attr {
  std::string view;   // empty when unqualified
  int instance = 0;   // 0 = unindexed
  std::string name;   // may contain dots for expanded relation paths

  /// Builds a bare attribute.
  static Attr Simple(std::string name);
  /// Builds `view.name`.
  static Attr Of(std::string view, std::string name);
  /// Builds `view[instance].name`.
  static Attr OfInstance(std::string view, int instance, std::string name);

  /// Parses the textual forms above.
  static Result<Attr> Parse(std::string_view text);

  /// Canonical rendering: `fac[1].ln`, `fac.ln`, or `ln`.
  std::string ToString() const;

  /// FNV-1a 64 over the exact bytes of ToString(), computed without
  /// materializing the string. Feeds constraint/query fingerprints.
  uint64_t CanonicalHash() const;

  friend bool operator==(const Attr& a, const Attr& b) = default;
  friend auto operator<=>(const Attr& a, const Attr& b) = default;
};

/// Process-wide interned symbol table for attribute-name strings.
///
/// Rule matching compares attribute names constantly — every pattern trial
/// starts with a name check, and the rule index buckets constraints by
/// (attribute, op). Interning turns both into O(1) integer comparisons:
/// equal ids ⇔ equal strings, and ids are dense and stable for the process
/// lifetime, so they can key flat hash tables directly.
///
/// Thread-safe: Intern takes an exclusive lock only on first sight of a
/// name; repeat lookups and Find take a shared lock.
class AttrNameTable {
 public:
  /// The single process-wide table (attribute vocabularies are tiny; a
  /// global table keeps ids comparable across specs and conjunctions).
  static AttrNameTable& Global();

  /// Id of `name`, interning it on first sight.
  int32_t Intern(std::string_view name);

  /// Id of `name` if already interned, -1 otherwise (never interns).
  int32_t Find(std::string_view name) const;

  /// The interned string for a valid `id`.
  const std::string& NameOf(int32_t id) const;

  size_t size() const;

 private:
  struct StringHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  mutable std::shared_mutex mu_;
  // Node-based map: key strings are stable, so names_ can point into them.
  std::unordered_map<std::string, int32_t, StringHash, std::equal_to<>> index_;
  std::vector<const std::string*> names_;  // by id; points into index_ keys
};

}  // namespace qmap

#endif  // QMAP_EXPR_ATTR_H_
