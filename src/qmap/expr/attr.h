#ifndef QMAP_EXPR_ATTR_H_
#define QMAP_EXPR_ATTR_H_

#include <string>
#include <string_view>

#include "qmap/common/status.h"

namespace qmap {

/// A (possibly view-qualified) attribute reference.
///
/// Forms, mirroring the paper's notation:
///   * `ln`                — bare attribute (single-view contexts, Example 2)
///   * `fac.ln`            — view-qualified (Example 3)
///   * `fac[1].ln`         — view instance distinguished by index (Sec. 4.2)
///   * `fac.aubib.bib`     — source relation expanded from a view; the extra
///                           qualification lives in `name` ("aubib.bib").
///
/// `instance == 0` means "no explicit index". Per Section 4.2, an unindexed
/// reference abbreviates "any instance" for *patterns*; for concrete
/// constraints it simply denotes the only instance.
struct Attr {
  std::string view;   // empty when unqualified
  int instance = 0;   // 0 = unindexed
  std::string name;   // may contain dots for expanded relation paths

  /// Builds a bare attribute.
  static Attr Simple(std::string name);
  /// Builds `view.name`.
  static Attr Of(std::string view, std::string name);
  /// Builds `view[instance].name`.
  static Attr OfInstance(std::string view, int instance, std::string name);

  /// Parses the textual forms above.
  static Result<Attr> Parse(std::string_view text);

  /// Canonical rendering: `fac[1].ln`, `fac.ln`, or `ln`.
  std::string ToString() const;

  friend bool operator==(const Attr& a, const Attr& b) = default;
  friend auto operator<=>(const Attr& a, const Attr& b) = default;
};

}  // namespace qmap

#endif  // QMAP_EXPR_ATTR_H_
