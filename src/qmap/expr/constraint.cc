#include "qmap/expr/constraint.h"

#include "qmap/common/fnv.h"

namespace qmap {

std::string_view OpName(Op op) {
  switch (op) {
    case Op::kEq:
      return "=";
    case Op::kLt:
      return "<";
    case Op::kLe:
      return "<=";
    case Op::kGt:
      return ">";
    case Op::kGe:
      return ">=";
    case Op::kContains:
      return "contains";
    case Op::kStartsWith:
      return "starts";
    case Op::kDuring:
      return "during";
  }
  return "?";
}

Result<Op> ParseOp(std::string_view text) {
  if (text == "=") return Op::kEq;
  if (text == "<") return Op::kLt;
  if (text == "<=") return Op::kLe;
  if (text == ">") return Op::kGt;
  if (text == ">=") return Op::kGe;
  if (text == "contains") return Op::kContains;
  if (text == "starts" || text == "starts-with") return Op::kStartsWith;
  if (text == "during") return Op::kDuring;
  return Status::ParseError("unknown operator: '" + std::string(text) + "'");
}

Op SwappedOp(Op op) {
  switch (op) {
    case Op::kLt:
      return Op::kGt;
    case Op::kLe:
      return Op::kGe;
    case Op::kGt:
      return Op::kLt;
    case Op::kGe:
      return Op::kLe;
    default:
      return op;
  }
}

bool IsNormalizationSwapped(Op op) { return op == Op::kLt || op == Op::kLe; }

std::string OperandToString(const Operand& operand) {
  if (std::holds_alternative<Value>(operand)) {
    return std::get<Value>(operand).ToString();
  }
  return std::get<Attr>(operand).ToString();
}

std::string Constraint::ToString() const {
  return "[" + lhs.ToString() + " " + std::string(OpName(op)) + " " +
         OperandToString(rhs) + "]";
}

uint64_t Constraint::Fingerprint() const {
  // Combines the components' canonical hashes (each an FNV over that
  // component's exact printed bytes). No Value-vs-Attr discriminator is
  // mixed in: operator== is printed-form equality, and a Value and an Attr
  // operand that render identically (e.g. the date `97` vs an attribute
  // named `97`) must fingerprint identically too.
  Fnv64 h;
  h.AddU64(lhs.CanonicalHash());
  h.Add(OpName(op));
  if (std::holds_alternative<Value>(rhs)) {
    h.AddU64(std::get<Value>(rhs).CanonicalHash());
  } else {
    h.AddU64(std::get<Attr>(rhs).CanonicalHash());
  }
  return h.value();
}

bool SamePrintedForm(const Constraint& a, const Constraint& b) {
  if (a.op == b.op && a.lhs == b.lhs) {
    // Exact component equality is sufficient (never necessary: distinct
    // reps can still print alike, so a miss falls through to ToString).
    if (a.is_join() && b.is_join() && a.rhs_attr() == b.rhs_attr()) return true;
    if (!a.is_join() && !b.is_join() &&
        a.rhs_value().IdenticalTo(b.rhs_value())) {
      return true;
    }
  }
  return a.ToString() == b.ToString();
}

Constraint Constraint::Normalized() const {
  if (!is_join()) return *this;
  const Attr& other = rhs_attr();
  if (IsNormalizationSwapped(op)) {
    Constraint swapped;
    swapped.lhs = other;
    swapped.op = SwappedOp(op);
    swapped.rhs = lhs;
    return swapped;
  }
  if (op == Op::kEq && other < lhs) {
    Constraint swapped;
    swapped.lhs = other;
    swapped.op = Op::kEq;
    swapped.rhs = lhs;
    return swapped;
  }
  return *this;
}

Constraint MakeSel(Attr attr, Op op, Value value) {
  Constraint c;
  c.lhs = std::move(attr);
  c.op = op;
  c.rhs = std::move(value);
  return c;
}

Constraint MakeJoin(Attr lhs, Op op, Attr rhs) {
  Constraint c;
  c.lhs = std::move(lhs);
  c.op = op;
  c.rhs = std::move(rhs);
  return c;
}

}  // namespace qmap
