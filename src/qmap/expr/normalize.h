#ifndef QMAP_EXPR_NORMALIZE_H_
#define QMAP_EXPR_NORMALIZE_H_

#include "qmap/expr/query.h"

namespace qmap {

/// Applies the constraint-level normalization of Section 4.2 to every leaf
/// of `query`:
///   * `<`/`<=` join constraints are rewritten with swapped operands to
///     `>`/`>=` ([income < expense] becomes [expense > income]);
///   * symmetric-operator join constraints order their attributes
///     lexicographically ([b.y = a.x] becomes [a.x = b.y]).
///
/// With this normalization, mapping rules need only cover the normalized
/// representations instead of enumerating equivalent patterns.  Tree-level
/// normalization (∧/∨ alternation, idempotency, True rules) is already
/// enforced by the Query constructors; this adds the leaf rewriting.
Query NormalizeQuery(const Query& query);

}  // namespace qmap

#endif  // QMAP_EXPR_NORMALIZE_H_
