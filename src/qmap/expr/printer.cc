#include "qmap/expr/printer.h"

#include <cmath>
#include <cstdio>

namespace qmap {
namespace {

std::string NumberText(double v) {
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string EscapeString(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

}  // namespace

std::string ToParseableText(const Value& value) {
  switch (value.kind()) {
    case ValueKind::kNull:
      return "null";  // cannot appear in parseable constraints
    case ValueKind::kInt:
      return std::to_string(value.AsInt());
    case ValueKind::kDouble:
      return NumberText(value.AsDouble());
    case ValueKind::kString:
      return EscapeString(value.AsString());
    case ValueKind::kDate: {
      const Date& d = value.AsDate();
      std::string out = "date(" + std::to_string(d.year);
      if (d.month.has_value()) out += ", " + std::to_string(*d.month);
      if (d.day.has_value()) out += ", " + std::to_string(*d.day);
      return out + ")";
    }
    case ValueKind::kRange: {
      const Range& r = value.AsRange();
      return "range(" + NumberText(r.lo) + ", " + NumberText(r.hi) + ")";
    }
    case ValueKind::kPoint: {
      const Point& p = value.AsPoint();
      return "point(" + NumberText(p.x) + ", " + NumberText(p.y) + ")";
    }
  }
  return "null";
}

std::string ToParseableText(const Constraint& constraint) {
  std::string rhs = constraint.is_join()
                        ? constraint.rhs_attr().ToString()
                        : ToParseableText(constraint.rhs_value());
  return "[" + constraint.lhs.ToString() + " " + std::string(OpName(constraint.op)) +
         " " + rhs + "]";
}

std::string ToParseableText(const Query& query) {
  switch (query.kind()) {
    case NodeKind::kTrue:
      return "true";
    case NodeKind::kLeaf:
      return ToParseableText(query.constraint());
    case NodeKind::kAnd:
    case NodeKind::kOr: {
      const char* sep = query.kind() == NodeKind::kAnd ? " and " : " or ";
      std::string out;
      for (size_t i = 0; i < query.children().size(); ++i) {
        if (i > 0) out += sep;
        const Query& child = query.children()[i];
        bool parens =
            child.kind() == NodeKind::kAnd || child.kind() == NodeKind::kOr;
        if (parens) out += "(";
        out += ToParseableText(child);
        if (parens) out += ")";
      }
      return out;
    }
  }
  return "true";
}

}  // namespace qmap
