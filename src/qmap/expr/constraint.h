#ifndef QMAP_EXPR_CONSTRAINT_H_
#define QMAP_EXPR_CONSTRAINT_H_

#include <string>
#include <string_view>
#include <variant>

#include "qmap/common/status.h"
#include "qmap/expr/attr.h"
#include "qmap/value/value.h"

namespace qmap {

/// Constraint operators supported by the query vocabulary (Section 1-2).
enum class Op {
  kEq,          // =
  kLt,          // <
  kLe,          // <=
  kGt,          // >
  kGe,          // >=
  kContains,    // IR keyword / text-pattern containment
  kStartsWith,  // string prefix ("title starts", Figure 2)
  kDuring,      // partial-date containment ("pdate during May/97")
};

/// Number of Op enumerators — sized for flat per-op tables (rule index).
inline constexpr int kNumOps = 8;

/// Canonical spelling of an operator, e.g. "=", "contains".
std::string_view OpName(Op op);

/// Parses the spelling produced by OpName; also accepts "starts-with".
Result<Op> ParseOp(std::string_view text);

/// For asymmetric comparison ops, the operator obtained by swapping operands
/// ([a < b] == [b > a]); identity for symmetric/one-way ops.
Op SwappedOp(Op op);

/// True for <, <=, which normalization rewrites to >, >= (Section 4.2).
bool IsNormalizationSwapped(Op op);

/// Right-hand side of a constraint: either a constant (selection constraint)
/// or another attribute (join constraint).
using Operand = std::variant<Value, Attr>;

/// Renders an operand: value syntax or attribute path.
std::string OperandToString(const Operand& operand);

/// A single constraint `[attr op operand]` — the atomic vocabulary unit that
/// mapping rules translate (Section 2).
struct Constraint {
  Attr lhs;
  Op op = Op::kEq;
  Operand rhs = Value::Null();

  bool is_join() const { return std::holds_alternative<Attr>(rhs); }
  const Value& rhs_value() const { return std::get<Value>(rhs); }
  const Attr& rhs_attr() const { return std::get<Attr>(rhs); }

  /// Canonical rendering `[ln = "Clancy"]`; used as identity for matching
  /// bookkeeping (two constraints are the same iff they print the same).
  std::string ToString() const;

  /// Applies the operand-order normalization of Section 4.2: `<`/`<=` join
  /// constraints become `>`/`>=` with sides swapped, and symmetric-operator
  /// join constraints order their attributes lexicographically.
  Constraint Normalized() const;

  friend bool operator==(const Constraint& a, const Constraint& b) {
    return a.ToString() == b.ToString();
  }
};

/// Convenience factories.
Constraint MakeSel(Attr attr, Op op, Value value);
Constraint MakeJoin(Attr lhs, Op op, Attr rhs);

}  // namespace qmap

#endif  // QMAP_EXPR_CONSTRAINT_H_
