#ifndef QMAP_EXPR_CONSTRAINT_H_
#define QMAP_EXPR_CONSTRAINT_H_

#include <string>
#include <string_view>
#include <variant>

#include "qmap/common/status.h"
#include "qmap/expr/attr.h"
#include "qmap/value/value.h"

namespace qmap {

/// Constraint operators supported by the query vocabulary (Section 1-2).
enum class Op {
  kEq,          // =
  kLt,          // <
  kLe,          // <=
  kGt,          // >
  kGe,          // >=
  kContains,    // IR keyword / text-pattern containment
  kStartsWith,  // string prefix ("title starts", Figure 2)
  kDuring,      // partial-date containment ("pdate during May/97")
};

/// Number of Op enumerators — sized for flat per-op tables (rule index).
inline constexpr int kNumOps = 8;

/// Canonical spelling of an operator, e.g. "=", "contains".
std::string_view OpName(Op op);

/// Parses the spelling produced by OpName; also accepts "starts-with".
Result<Op> ParseOp(std::string_view text);

/// For asymmetric comparison ops, the operator obtained by swapping operands
/// ([a < b] == [b > a]); identity for symmetric/one-way ops.
Op SwappedOp(Op op);

/// True for <, <=, which normalization rewrites to >, >= (Section 4.2).
bool IsNormalizationSwapped(Op op);

/// Right-hand side of a constraint: either a constant (selection constraint)
/// or another attribute (join constraint).
using Operand = std::variant<Value, Attr>;

/// Renders an operand: value syntax or attribute path.
std::string OperandToString(const Operand& operand);

/// A single constraint `[attr op operand]` — the atomic vocabulary unit that
/// mapping rules translate (Section 2).
struct Constraint {
  Attr lhs;
  Op op = Op::kEq;
  Operand rhs = Value::Null();

  bool is_join() const { return std::holds_alternative<Attr>(rhs); }
  const Value& rhs_value() const { return std::get<Value>(rhs); }
  const Attr& rhs_attr() const { return std::get<Attr>(rhs); }

  /// Canonical rendering `[ln = "Clancy"]`; used as identity for matching
  /// bookkeeping (two constraints are the same iff they print the same).
  std::string ToString() const;

  /// 64-bit FNV-1a fingerprint of the printed form, computed from the
  /// component canonical hashes without materializing ToString(). Respects
  /// operator== exactly: constraints that print the same fingerprint the
  /// same (including cross-kind aliases such as `= 3` via Int(3) vs
  /// Real(3.0)); distinct printed forms collide with probability ~2^-64.
  uint64_t Fingerprint() const;

  /// Applies the operand-order normalization of Section 4.2: `<`/`<=` join
  /// constraints become `>`/`>=` with sides swapped, and symmetric-operator
  /// join constraints order their attributes lexicographically.
  Constraint Normalized() const;

  friend bool operator==(const Constraint& a, const Constraint& b) {
    return a.ToString() == b.ToString();
  }
};

/// Convenience factories.
Constraint MakeSel(Attr attr, Op op, Value value);
Constraint MakeJoin(Attr lhs, Op op, Attr rhs);

/// Equivalent to `a == b` (printed-form equality) but with allocation-free
/// fast paths: exact component equality is checked first and only on a miss
/// does it fall back to comparing ToString() bytes. Used by the intern table
/// to verify fingerprint bucket hits.
bool SamePrintedForm(const Constraint& a, const Constraint& b);

}  // namespace qmap

#endif  // QMAP_EXPR_CONSTRAINT_H_
