#ifndef QMAP_EXPR_PARSER_H_
#define QMAP_EXPR_PARSER_H_

#include <string_view>

#include "qmap/common/lexer.h"
#include "qmap/common/status.h"
#include "qmap/expr/query.h"

namespace qmap {

/// Parses a constraint query from text.  Grammar (whitespace-insensitive):
///
///   query      := or
///   or         := and ( ("or" | "|") and )*
///   and        := primary ( ("and" | "&") primary )*
///   primary    := "(" query ")" | constraint | "true"
///   constraint := "[" attr op operand "]"
///   attr       := IDENT ("[" INT "]")? ("." IDENT)*
///   op         := "=" | "<" | "<=" | ">" | ">=" | "contains" | "starts"
///              |  "during"
///   operand    := STRING | NUMBER | attr
///              |  "date" "(" INT "," INT ["," INT] ")"     — Date literal
///              |  "range" "(" NUM "," NUM ")"              — Range literal
///              |  "point" "(" NUM "," NUM ")"              — Point literal
///
/// Examples:
///   ([ln = "Clancy"] or [ln = "Klancy"]) and [fn = "Tom"]
///   [fac.bib contains "data(near)mining"] and [fac.dept = "cs"]
///   [fac[1].ln = fac[2].ln]
Result<Query> ParseQuery(std::string_view text);

/// Parses a single bracketed constraint, e.g. `[pyear = 1997]`.
Result<Constraint> ParseConstraint(std::string_view text);

/// Internal: parses one constraint starting at the cursor's `[` token.
/// Shared with the rule-DSL parser.
Result<Constraint> ParseConstraintAt(TokenCursor& cursor);

/// Internal: parses an attribute reference starting at an IDENT token.
Result<Attr> ParseAttrAt(TokenCursor& cursor);

/// Internal: parses an operator token sequence (puncts or ident keywords).
Result<Op> ParseOpAt(TokenCursor& cursor);

/// Internal: parses a value literal (STRING/NUMBER/date/range/point).
/// Fails if the next token is not a value literal.
Result<Value> ParseValueAt(TokenCursor& cursor);

}  // namespace qmap

#endif  // QMAP_EXPR_PARSER_H_
