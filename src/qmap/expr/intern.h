#ifndef QMAP_EXPR_INTERN_H_
#define QMAP_EXPR_INTERN_H_

#include <cstdint>

namespace qmap {

class MetricsRegistry;

/// Controls and introspection for the hash-consed query IR (DESIGN.md §9).
///
/// When interning is enabled (the default), Query::True/Leaf/And/Or and the
/// constraint interner canonicalize every node at construction against a
/// process-wide table: one shared node per distinct subtree, so pointer
/// equality coincides with structural equality and every node carries a
/// precomputed 64-bit fingerprint. The tables live for the process lifetime
/// (like AttrNameTable) and are never evicted; entries are verified exactly
/// on fingerprint-bucket hits, so interning itself is collision-proof.
///
/// Set the QMAP_DISABLE_INTERN environment variable (any value, checked once
/// at first use) or call SetQueryInternEnabled(false) to construct plain
/// un-interned nodes instead — used by the A/B benchmarks and the
/// equivalence tests. Fingerprints are computed either way; only sharing and
/// the pointer-equality guarantee are affected. The toggle is not
/// thread-safe against concurrent query construction.

/// Cumulative statistics of the process-wide intern tables.
struct InternStats {
  uint64_t query_hits = 0;        // constructions resolved to an existing node
  uint64_t query_misses = 0;      // constructions that inserted a new node
  uint64_t query_nodes = 0;       // distinct nodes currently in the table
  uint64_t constraint_hits = 0;   // leaf constraints resolved to existing
  uint64_t constraint_misses = 0; // leaf constraints newly interned
  uint64_t constraint_nodes = 0;  // distinct constraints currently in table
};

InternStats QueryInternStats();

/// Programmatic override of the QMAP_DISABLE_INTERN toggle (tests and A/B
/// benchmark runs). Not thread-safe against concurrent query construction.
void SetQueryInternEnabled(bool enabled);
bool QueryInternEnabled();

/// Bridges intern-table activity into `registry` as monotonic counters:
///   qmap_intern_query_hits_total / qmap_intern_query_nodes_total
///   qmap_intern_constraint_hits_total / qmap_intern_constraint_nodes_total
/// Current totals are backfilled at attach time, so attaching after warm-up
/// still reports lifetime values. Pass nullptr to detach. The registry must
/// outlive all query construction (or a subsequent AttachInternMetrics).
void AttachInternMetrics(MetricsRegistry* registry);

/// Detaches intern metrics only if `registry` is the currently attached one.
/// Owners of short-lived registries (TranslationService) call this on
/// destruction so the global bridge never dangles into a freed registry,
/// without clobbering a newer attachment.
void DetachInternMetricsIf(MetricsRegistry* registry);

}  // namespace qmap

#endif  // QMAP_EXPR_INTERN_H_
