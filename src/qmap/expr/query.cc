#include "qmap/expr/query.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <functional>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>

#include "qmap/common/fnv.h"
#include "qmap/expr/intern.h"
#include "qmap/obs/metrics.h"

namespace qmap {
namespace {

// Kind tags mixed into node fingerprints so a leaf, a conjunction and a
// disjunction over the same material never share a fingerprint.
constexpr unsigned char kTagTrue = 'T';
constexpr unsigned char kTagLeaf = 'L';
constexpr unsigned char kTagAnd = 'A';
constexpr unsigned char kTagOr = 'O';

uint64_t TrueFingerprint() {
  static const uint64_t fp = Fnv64().AddByte(kTagTrue).value();
  return fp;
}

uint64_t LeafFingerprint(uint64_t constraint_fp) {
  return Fnv64().AddByte(kTagLeaf).AddU64(constraint_fp).value();
}

uint64_t BranchFingerprint(NodeKind kind, const std::vector<Query>& children) {
  Fnv64 h;
  h.AddByte(kind == NodeKind::kAnd ? kTagAnd : kTagOr);
  for (const Query& child : children) h.AddU64(child.fingerprint());
  return h.value();
}

bool& InternFlag() {
  static bool enabled = std::getenv("QMAP_DISABLE_INTERN") == nullptr;
  return enabled;
}

}  // namespace
}  // namespace qmap

namespace qmap {
namespace {

// Process-wide hash-cons tables (DESIGN.md §9). Both tables bucket by 64-bit
// fingerprint and verify bucket candidates exactly, so interning never
// conflates distinct structures even under a fingerprint collision. Entries
// are retained for the process lifetime (leaky static, like AttrNameTable);
// there is no eviction, which is what makes the canonical-pointer guarantee
// sound without generation counters.
class InternTables {
 public:
  static InternTables& Global() {
    static InternTables* tables = new InternTables();
    return *tables;
  }

  std::shared_ptr<const Constraint> InternConstraint(Constraint c,
                                                     uint64_t fp) {
    {
      std::shared_lock<std::shared_mutex> lock(cmu_);
      if (const auto* found = FindConstraint(fp, c)) {
        BumpConstraintHit();
        return *found;
      }
    }
    std::unique_lock<std::shared_mutex> lock(cmu_);
    if (const auto* found = FindConstraint(fp, c)) {
      BumpConstraintHit();
      return *found;
    }
    auto owned = std::make_shared<const Constraint>(std::move(c));
    constraints_[fp].push_back(owned);
    constraint_misses_.fetch_add(1, std::memory_order_relaxed);
    constraint_nodes_.fetch_add(1, std::memory_order_relaxed);
    if (Counter* counter =
            constraint_nodes_counter_.load(std::memory_order_acquire)) {
      counter->Inc();
    }
    return owned;
  }

  // `candidate` must already have canonical (interned) children and, for
  // leaves, an interned constraint pointer, so verification is pure pointer
  // comparison.
  std::shared_ptr<const Query::Node> InternNode(
      std::shared_ptr<Query::Node> candidate) {
    const uint64_t fp = candidate->fingerprint;
    {
      std::shared_lock<std::shared_mutex> lock(mu_);
      if (const auto* found = FindNode(fp, *candidate)) {
        BumpQueryHit();
        return *found;
      }
    }
    std::unique_lock<std::shared_mutex> lock(mu_);
    if (const auto* found = FindNode(fp, *candidate)) {
      BumpQueryHit();
      return *found;
    }
    candidate->interned = true;
    std::shared_ptr<const Query::Node> owned = std::move(candidate);
    nodes_[fp].push_back(owned);
    query_misses_.fetch_add(1, std::memory_order_relaxed);
    query_nodes_.fetch_add(1, std::memory_order_relaxed);
    if (Counter* counter =
            query_nodes_counter_.load(std::memory_order_acquire)) {
      counter->Inc();
    }
    return owned;
  }

  InternStats Stats() const {
    InternStats s;
    s.query_hits = query_hits_.load(std::memory_order_relaxed);
    s.query_misses = query_misses_.load(std::memory_order_relaxed);
    s.query_nodes = query_nodes_.load(std::memory_order_relaxed);
    s.constraint_hits = constraint_hits_.load(std::memory_order_relaxed);
    s.constraint_misses = constraint_misses_.load(std::memory_order_relaxed);
    s.constraint_nodes = constraint_nodes_.load(std::memory_order_relaxed);
    return s;
  }

  void Attach(MetricsRegistry* registry) {
    std::lock_guard<std::mutex> lock(attach_mu_);
    if (registry == nullptr) {
      query_hits_counter_.store(nullptr, std::memory_order_release);
      query_nodes_counter_.store(nullptr, std::memory_order_release);
      constraint_hits_counter_.store(nullptr, std::memory_order_release);
      constraint_nodes_counter_.store(nullptr, std::memory_order_release);
      attached_registry_ = nullptr;
      return;
    }
    attached_registry_ = registry;
    // Backfill so lifetime totals survive attaching after warm-up; only the
    // shortfall is added in case the same registry is re-attached.
    auto bind = [](Counter& counter, uint64_t total,
                   std::atomic<Counter*>& slot) {
      uint64_t have = counter.value();
      if (total > have) counter.Inc(total - have);
      slot.store(&counter, std::memory_order_release);
    };
    InternStats s = Stats();
    bind(registry->counter("qmap_intern_query_hits_total"), s.query_hits,
         query_hits_counter_);
    bind(registry->counter("qmap_intern_query_nodes_total"), s.query_nodes,
         query_nodes_counter_);
    bind(registry->counter("qmap_intern_constraint_hits_total"),
         s.constraint_hits, constraint_hits_counter_);
    bind(registry->counter("qmap_intern_constraint_nodes_total"),
         s.constraint_nodes, constraint_nodes_counter_);
  }

  void DetachIf(MetricsRegistry* registry) {
    std::lock_guard<std::mutex> lock(attach_mu_);
    if (attached_registry_ != registry) return;
    query_hits_counter_.store(nullptr, std::memory_order_release);
    query_nodes_counter_.store(nullptr, std::memory_order_release);
    constraint_hits_counter_.store(nullptr, std::memory_order_release);
    constraint_nodes_counter_.store(nullptr, std::memory_order_release);
    attached_registry_ = nullptr;
  }

 private:
  const std::shared_ptr<const Constraint>* FindConstraint(
      uint64_t fp, const Constraint& c) const {
    auto it = constraints_.find(fp);
    if (it == constraints_.end()) return nullptr;
    for (const auto& candidate : it->second) {
      if (SamePrintedForm(*candidate, c)) return &candidate;
    }
    return nullptr;
  }

  const std::shared_ptr<const Query::Node>* FindNode(
      uint64_t fp, const Query::Node& node) const {
    auto it = nodes_.find(fp);
    if (it == nodes_.end()) return nullptr;
    for (const auto& candidate : it->second) {
      if (candidate->kind != node.kind) continue;
      if (node.kind == NodeKind::kLeaf) {
        if (candidate->constraint == node.constraint) return &candidate;
        continue;
      }
      if (candidate->children.size() != node.children.size()) continue;
      bool same = true;
      for (size_t i = 0; i < node.children.size(); ++i) {
        if (candidate->children[i].identity() != node.children[i].identity()) {
          same = false;
          break;
        }
      }
      if (same) return &candidate;
    }
    return nullptr;
  }

  void BumpQueryHit() {
    query_hits_.fetch_add(1, std::memory_order_relaxed);
    if (Counter* counter = query_hits_counter_.load(std::memory_order_acquire)) {
      counter->Inc();
    }
  }

  void BumpConstraintHit() {
    constraint_hits_.fetch_add(1, std::memory_order_relaxed);
    if (Counter* counter =
            constraint_hits_counter_.load(std::memory_order_acquire)) {
      counter->Inc();
    }
  }

  mutable std::shared_mutex mu_;   // guards nodes_
  mutable std::shared_mutex cmu_;  // guards constraints_
  std::unordered_map<uint64_t, std::vector<std::shared_ptr<const Query::Node>>>
      nodes_;
  std::unordered_map<uint64_t, std::vector<std::shared_ptr<const Constraint>>>
      constraints_;

  std::atomic<uint64_t> query_hits_{0};
  std::atomic<uint64_t> query_misses_{0};
  std::atomic<uint64_t> query_nodes_{0};
  std::atomic<uint64_t> constraint_hits_{0};
  std::atomic<uint64_t> constraint_misses_{0};
  std::atomic<uint64_t> constraint_nodes_{0};

  std::mutex attach_mu_;
  MetricsRegistry* attached_registry_ = nullptr;
  std::atomic<Counter*> query_hits_counter_{nullptr};
  std::atomic<Counter*> query_nodes_counter_{nullptr};
  std::atomic<Counter*> constraint_hits_counter_{nullptr};
  std::atomic<Counter*> constraint_nodes_counter_{nullptr};
};

// Appends `child` to `out`, flattening nested nodes of the same kind.
void Flatten(NodeKind kind, const Query& child, std::vector<Query>* out) {
  if (child.kind() == kind) {
    for (const Query& grandchild : child.children()) Flatten(kind, grandchild, out);
  } else {
    out->push_back(child);
  }
}

// Removes structural duplicates, preserving first occurrences (idempotency:
// x ∧ x = x, x ∨ x = x). Fingerprints prune; StructurallyEquals confirms.
void DedupChildren(std::vector<Query>* children) {
  std::vector<Query> unique;
  unique.reserve(children->size());
  for (const Query& child : *children) {
    bool seen = false;
    for (const Query& kept : unique) {
      if (kept.fingerprint() == child.fingerprint() &&
          kept.StructurallyEquals(child)) {
        seen = true;
        break;
      }
    }
    if (!seen) unique.push_back(child);
  }
  *children = std::move(unique);
}

}  // namespace

InternStats QueryInternStats() { return InternTables::Global().Stats(); }

void SetQueryInternEnabled(bool enabled) { InternFlag() = enabled; }

bool QueryInternEnabled() { return InternFlag(); }

void AttachInternMetrics(MetricsRegistry* registry) {
  InternTables::Global().Attach(registry);
}

void DetachInternMetricsIf(MetricsRegistry* registry) {
  InternTables::Global().DetachIf(registry);
}

Query Query::True() {
  static const std::shared_ptr<const Node>& node =
      *new std::shared_ptr<const Node>([] {
        auto n = std::make_shared<Node>();
        n->fingerprint = TrueFingerprint();
        // The singleton IS the canonical True node, interned or not.
        n->interned = true;
        return n;
      }());
  return Query(node);
}

Query Query::Leaf(Constraint constraint) {
  const uint64_t constraint_fp = constraint.Fingerprint();
  auto node = std::make_shared<Node>();
  node->kind = NodeKind::kLeaf;
  node->fingerprint = LeafFingerprint(constraint_fp);
  if (!InternFlag()) {
    node->constraint = std::make_shared<const Constraint>(std::move(constraint));
    return Query(std::move(node));
  }
  node->constraint = InternTables::Global().InternConstraint(
      std::move(constraint), constraint_fp);
  return Query(InternTables::Global().InternNode(std::move(node)));
}

Query Query::InternBranch(NodeKind kind, std::vector<Query> children) {
  for (Query& child : children) child = Canonical(child);
  auto node = std::make_shared<Node>();
  node->kind = kind;
  node->fingerprint = BranchFingerprint(kind, children);
  node->children = std::move(children);
  return Query(InternTables::Global().InternNode(std::move(node)));
}

// Canonicalizes a query built while interning was off (or before a toggle
// flip) so branch nodes only ever hold canonical children. Already-interned
// subtrees are returned as-is — the common case is a pointer check.
Query Query::Canonical(const Query& q) {
  if (q.node_->interned) return q;
  if (q.is_leaf()) return Leaf(q.constraint());
  return InternBranch(q.kind(), q.children());
}

Query Query::And(std::vector<Query> children) {
  std::vector<Query> flat;
  for (const Query& child : children) {
    if (child.is_true()) continue;  // True conjunct is the ∧ identity
    Flatten(NodeKind::kAnd, child, &flat);
  }
  DedupChildren(&flat);
  if (flat.empty()) return True();
  if (flat.size() == 1) return flat[0];
  if (InternFlag()) return InternBranch(NodeKind::kAnd, std::move(flat));
  auto node = std::make_shared<Node>();
  node->kind = NodeKind::kAnd;
  node->fingerprint = BranchFingerprint(NodeKind::kAnd, flat);
  node->children = std::move(flat);
  return Query(std::move(node));
}

Query Query::Or(std::vector<Query> children) {
  std::vector<Query> flat;
  for (const Query& child : children) {
    if (child.is_true()) return True();  // True disjunct absorbs the ∨
    Flatten(NodeKind::kOr, child, &flat);
  }
  DedupChildren(&flat);
  if (flat.empty()) return True();  // disallowed input; see header contract
  if (flat.size() == 1) return flat[0];
  if (InternFlag()) return InternBranch(NodeKind::kOr, std::move(flat));
  auto node = std::make_shared<Node>();
  node->kind = NodeKind::kOr;
  node->fingerprint = BranchFingerprint(NodeKind::kOr, flat);
  node->children = std::move(flat);
  return Query(std::move(node));
}

bool Query::IsSimpleConjunction() const {
  switch (kind()) {
    case NodeKind::kTrue:
    case NodeKind::kLeaf:
      return true;
    case NodeKind::kAnd:
      return std::all_of(children().begin(), children().end(),
                         [](const Query& c) { return c.is_leaf(); });
    case NodeKind::kOr:
      return false;
  }
  return false;
}

std::vector<Constraint> Query::AsSimpleConjunction() const {
  std::vector<Constraint> out;
  if (is_leaf()) {
    out.push_back(constraint());
  } else if (kind() == NodeKind::kAnd) {
    for (const Query& child : children()) out.push_back(child.constraint());
  }
  return out;
}

std::vector<Constraint> Query::AllConstraints() const {
  std::vector<Constraint> out;
  std::vector<uint64_t> seen_fps;
  std::function<void(const Query&)> visit = [&](const Query& q) {
    if (q.is_leaf()) {
      const Constraint& c = q.constraint();
      uint64_t fp = c.Fingerprint();
      for (size_t i = 0; i < seen_fps.size(); ++i) {
        if (seen_fps[i] == fp && SamePrintedForm(out[i], c)) return;
      }
      seen_fps.push_back(fp);
      out.push_back(c);
      return;
    }
    for (const Query& child : q.children()) visit(child);
  };
  visit(*this);
  return out;
}

int Query::NodeCount() const {
  if (kind() == NodeKind::kTrue || kind() == NodeKind::kLeaf) return 1;
  int count = 1;
  for (const Query& child : children()) count += child.NodeCount();
  return count;
}

int Query::Depth() const {
  if (kind() == NodeKind::kTrue || kind() == NodeKind::kLeaf) return 1;
  int depth = 0;
  for (const Query& child : children()) depth = std::max(depth, child.Depth());
  return depth + 1;
}

bool Query::StructurallyEquals(const Query& other) const {
  if (node_ == other.node_) return true;
  if (node_->fingerprint != other.node_->fingerprint) return false;
  // Two distinct interned nodes are guaranteed structurally distinct — the
  // table holds exactly one node per structure.
  if (node_->interned && other.node_->interned) return false;
  if (kind() != other.kind()) return false;
  switch (kind()) {
    case NodeKind::kTrue:
      return true;
    case NodeKind::kLeaf:
      return SamePrintedForm(constraint(), other.constraint());
    case NodeKind::kAnd:
    case NodeKind::kOr: {
      if (children().size() != other.children().size()) return false;
      for (size_t i = 0; i < children().size(); ++i) {
        if (!children()[i].StructurallyEquals(other.children()[i])) return false;
      }
      return true;
    }
  }
  return false;
}

std::string Query::ToString() const {
  switch (kind()) {
    case NodeKind::kTrue:
      return "true";
    case NodeKind::kLeaf:
      return constraint().ToString();
    case NodeKind::kAnd:
    case NodeKind::kOr: {
      const char* sep = kind() == NodeKind::kAnd ? " ∧ " : " ∨ ";
      std::string out;
      for (size_t i = 0; i < children().size(); ++i) {
        if (i > 0) out += sep;
        const Query& child = children()[i];
        bool needs_parens = child.kind() == NodeKind::kAnd || child.kind() == NodeKind::kOr;
        if (needs_parens) out += "(";
        out += child.ToString();
        if (needs_parens) out += ")";
      }
      return out;
    }
  }
  return "?";
}

Query operator&(const Query& a, const Query& b) { return Query::And({a, b}); }

Query operator|(const Query& a, const Query& b) { return Query::Or({a, b}); }

}  // namespace qmap
