#include "qmap/expr/query.h"

#include <algorithm>
#include <functional>

namespace qmap {
namespace {

// Appends `child` to `out`, flattening nested nodes of the same kind.
void Flatten(NodeKind kind, const Query& child, std::vector<Query>* out) {
  if (child.kind() == kind) {
    for (const Query& grandchild : child.children()) Flatten(kind, grandchild, out);
  } else {
    out->push_back(child);
  }
}

// Removes structural duplicates, preserving first occurrences (idempotency:
// x ∧ x = x, x ∨ x = x).
void DedupChildren(std::vector<Query>* children) {
  std::vector<Query> unique;
  std::vector<std::string> keys;
  for (const Query& child : *children) {
    std::string key = child.ToString();
    if (std::find(keys.begin(), keys.end(), key) == keys.end()) {
      keys.push_back(std::move(key));
      unique.push_back(child);
    }
  }
  *children = std::move(unique);
}

}  // namespace

Query Query::True() {
  static const std::shared_ptr<const Node>& node = *new std::shared_ptr<const Node>(
      std::make_shared<Node>());
  return Query(node);
}

Query Query::Leaf(Constraint constraint) {
  auto node = std::make_shared<Node>();
  node->kind = NodeKind::kLeaf;
  node->constraint = std::move(constraint);
  return Query(std::move(node));
}

Query Query::And(std::vector<Query> children) {
  std::vector<Query> flat;
  for (const Query& child : children) {
    if (child.is_true()) continue;  // True conjunct is the ∧ identity
    Flatten(NodeKind::kAnd, child, &flat);
  }
  DedupChildren(&flat);
  if (flat.empty()) return True();
  if (flat.size() == 1) return flat[0];
  auto node = std::make_shared<Node>();
  node->kind = NodeKind::kAnd;
  node->children = std::move(flat);
  return Query(std::move(node));
}

Query Query::Or(std::vector<Query> children) {
  std::vector<Query> flat;
  for (const Query& child : children) {
    if (child.is_true()) return True();  // True disjunct absorbs the ∨
    Flatten(NodeKind::kOr, child, &flat);
  }
  DedupChildren(&flat);
  if (flat.empty()) return True();  // disallowed input; see header contract
  if (flat.size() == 1) return flat[0];
  auto node = std::make_shared<Node>();
  node->kind = NodeKind::kOr;
  node->children = std::move(flat);
  return Query(std::move(node));
}

bool Query::IsSimpleConjunction() const {
  switch (kind()) {
    case NodeKind::kTrue:
    case NodeKind::kLeaf:
      return true;
    case NodeKind::kAnd:
      return std::all_of(children().begin(), children().end(),
                         [](const Query& c) { return c.is_leaf(); });
    case NodeKind::kOr:
      return false;
  }
  return false;
}

std::vector<Constraint> Query::AsSimpleConjunction() const {
  std::vector<Constraint> out;
  if (is_leaf()) {
    out.push_back(constraint());
  } else if (kind() == NodeKind::kAnd) {
    for (const Query& child : children()) out.push_back(child.constraint());
  }
  return out;
}

std::vector<Constraint> Query::AllConstraints() const {
  std::vector<Constraint> out;
  std::vector<std::string> seen;
  std::function<void(const Query&)> visit = [&](const Query& q) {
    if (q.is_leaf()) {
      std::string key = q.constraint().ToString();
      if (std::find(seen.begin(), seen.end(), key) == seen.end()) {
        seen.push_back(std::move(key));
        out.push_back(q.constraint());
      }
      return;
    }
    for (const Query& child : q.children()) visit(child);
  };
  visit(*this);
  return out;
}

int Query::NodeCount() const {
  if (kind() == NodeKind::kTrue || kind() == NodeKind::kLeaf) return 1;
  int count = 1;
  for (const Query& child : children()) count += child.NodeCount();
  return count;
}

int Query::Depth() const {
  if (kind() == NodeKind::kTrue || kind() == NodeKind::kLeaf) return 1;
  int depth = 0;
  for (const Query& child : children()) depth = std::max(depth, child.Depth());
  return depth + 1;
}

bool Query::StructurallyEquals(const Query& other) const {
  if (node_ == other.node_) return true;
  if (kind() != other.kind()) return false;
  switch (kind()) {
    case NodeKind::kTrue:
      return true;
    case NodeKind::kLeaf:
      return constraint() == other.constraint();
    case NodeKind::kAnd:
    case NodeKind::kOr: {
      if (children().size() != other.children().size()) return false;
      for (size_t i = 0; i < children().size(); ++i) {
        if (!children()[i].StructurallyEquals(other.children()[i])) return false;
      }
      return true;
    }
  }
  return false;
}

std::string Query::ToString() const {
  switch (kind()) {
    case NodeKind::kTrue:
      return "true";
    case NodeKind::kLeaf:
      return constraint().ToString();
    case NodeKind::kAnd:
    case NodeKind::kOr: {
      const char* sep = kind() == NodeKind::kAnd ? " ∧ " : " ∨ ";
      std::string out;
      for (size_t i = 0; i < children().size(); ++i) {
        if (i > 0) out += sep;
        const Query& child = children()[i];
        bool needs_parens = child.kind() == NodeKind::kAnd || child.kind() == NodeKind::kOr;
        if (needs_parens) out += "(";
        out += child.ToString();
        if (needs_parens) out += ")";
      }
      return out;
    }
  }
  return "?";
}

Query operator&(const Query& a, const Query& b) { return Query::And({a, b}); }

Query operator|(const Query& a, const Query& b) { return Query::Or({a, b}); }

}  // namespace qmap
