#ifndef QMAP_EXPR_SIMPLIFY_H_
#define QMAP_EXPR_SIMPLIFY_H_

#include "qmap/expr/query.h"

namespace qmap {

/// Boolean simplification beyond the constructors' normalization: applies
/// the absorption laws
///
///     x ∨ (x ∧ y) = x          x ∧ (x ∨ y) = x
///
/// generalized to syntactic *implication* between siblings — a disjunct
/// whose constraint set is a superset of another disjunct's is dropped, and
/// dually for conjuncts.  (Section 8 notes that term minimization [22] can
/// shrink mappings further; this is the cheap, always-sound part of it:
/// purely structural, no semantic reasoning about operators.)
///
/// The result is logically equivalent to the input and never larger.
Query SimplifyQuery(const Query& query);

/// True if `stronger` syntactically implies `weaker`: every disjunct of
/// DNF(stronger) contains all the constraints of some disjunct of
/// DNF(weaker).  Sufficient, not necessary (no operator reasoning). Used by
/// SimplifyQuery on simple shapes; exposed for tests and tools.
bool SyntacticallyImplies(const Query& stronger, const Query& weaker);

}  // namespace qmap

#endif  // QMAP_EXPR_SIMPLIFY_H_
