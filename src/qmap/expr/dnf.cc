#include "qmap/expr/dnf.h"

namespace qmap {
namespace {

// Returns the disjunct list of `q` viewed as a disjunction: the children of
// an ∨ node, or the query itself otherwise.
std::vector<Query> DisjunctsOf(const Query& q) {
  if (q.kind() == NodeKind::kOr) return q.children();
  return {q};
}

void CrossDisjuncts(const std::vector<std::vector<std::vector<Constraint>>>& parts,
                    std::vector<std::vector<Constraint>>* out) {
  std::vector<size_t> idx(parts.size(), 0);
  while (true) {
    std::vector<Constraint> combined;
    // Fingerprints guard the duplicate scan so the common (all-distinct)
    // case never renders a constraint; printed-form comparison confirms
    // only on a fingerprint match.
    std::vector<uint64_t> combined_fps;
    for (size_t i = 0; i < parts.size(); ++i) {
      const std::vector<Constraint>& part = parts[i][idx[i]];
      for (const Constraint& c : part) {
        uint64_t fp = c.Fingerprint();
        bool duplicate = false;
        for (size_t k = 0; k < combined.size(); ++k) {
          if (combined_fps[k] == fp && SamePrintedForm(combined[k], c)) {
            duplicate = true;
            break;
          }
        }
        if (!duplicate) {
          combined.push_back(c);
          combined_fps.push_back(fp);
        }
      }
    }
    out->push_back(std::move(combined));
    size_t i = 0;
    while (i < idx.size()) {
      if (++idx[i] < parts[i].size()) break;
      idx[i] = 0;
      ++i;
    }
    if (i == idx.size()) return;
  }
}

}  // namespace

Query Disjunctivize(const std::vector<Query>& block) {
  if (block.empty()) return Query::True();
  if (block.size() == 1) return block[0];
  std::vector<std::vector<Query>> parts;
  parts.reserve(block.size());
  for (const Query& conjunct : block) parts.push_back(DisjunctsOf(conjunct));
  std::vector<Query> result_disjuncts;
  std::vector<size_t> idx(parts.size(), 0);
  while (true) {
    std::vector<Query> tuple;
    tuple.reserve(parts.size());
    for (size_t i = 0; i < parts.size(); ++i) tuple.push_back(parts[i][idx[i]]);
    result_disjuncts.push_back(Query::And(std::move(tuple)));
    size_t i = 0;
    while (i < idx.size()) {
      if (++idx[i] < parts[i].size()) break;
      idx[i] = 0;
      ++i;
    }
    if (i == idx.size()) break;
  }
  return Query::Or(std::move(result_disjuncts));
}

std::vector<std::vector<Constraint>> DnfDisjuncts(const Query& q) {
  switch (q.kind()) {
    case NodeKind::kTrue:
      return {{}};
    case NodeKind::kLeaf:
      return {{q.constraint()}};
    case NodeKind::kOr: {
      std::vector<std::vector<Constraint>> out;
      for (const Query& child : q.children()) {
        std::vector<std::vector<Constraint>> sub = DnfDisjuncts(child);
        out.insert(out.end(), sub.begin(), sub.end());
      }
      return out;
    }
    case NodeKind::kAnd: {
      std::vector<std::vector<std::vector<Constraint>>> parts;
      parts.reserve(q.children().size());
      for (const Query& child : q.children()) parts.push_back(DnfDisjuncts(child));
      std::vector<std::vector<Constraint>> out;
      CrossDisjuncts(parts, &out);
      return out;
    }
  }
  return {{}};
}

Query FullDnf(const Query& q) {
  std::vector<std::vector<Constraint>> disjuncts = DnfDisjuncts(q);
  std::vector<Query> parts;
  parts.reserve(disjuncts.size());
  for (const std::vector<Constraint>& d : disjuncts) {
    std::vector<Query> leaves;
    leaves.reserve(d.size());
    for (const Constraint& c : d) leaves.push_back(Query::Leaf(c));
    parts.push_back(Query::And(std::move(leaves)));
  }
  return Query::Or(std::move(parts));
}

uint64_t CountDnfDisjuncts(const Query& q) {
  switch (q.kind()) {
    case NodeKind::kTrue:
    case NodeKind::kLeaf:
      return 1;
    case NodeKind::kOr: {
      uint64_t total = 0;
      for (const Query& child : q.children()) total += CountDnfDisjuncts(child);
      return total;
    }
    case NodeKind::kAnd: {
      uint64_t product = 1;
      for (const Query& child : q.children()) product *= CountDnfDisjuncts(child);
      return product;
    }
  }
  return 1;
}

}  // namespace qmap
