#include "qmap/expr/normalize.h"

namespace qmap {

Query NormalizeQuery(const Query& query) {
  switch (query.kind()) {
    case NodeKind::kTrue:
      return query;
    case NodeKind::kLeaf: {
      // Only join constraints are affected by operand-order normalization;
      // shape normalization already happened in the Query constructors.
      if (!query.constraint().is_join()) return query;
      Constraint normalized = query.constraint().Normalized();
      if (normalized.Fingerprint() == query.constraint().Fingerprint()) {
        return query;
      }
      return Query::Leaf(std::move(normalized));
    }
    case NodeKind::kAnd:
    case NodeKind::kOr: {
      std::vector<Query> children;
      children.reserve(query.children().size());
      bool changed = false;
      for (const Query& child : query.children()) {
        children.push_back(NormalizeQuery(child));
        changed = changed ||
                  children.back().identity() != child.identity();
      }
      if (!changed) return query;
      return query.kind() == NodeKind::kAnd ? Query::And(std::move(children))
                                            : Query::Or(std::move(children));
    }
  }
  return query;
}

}  // namespace qmap
