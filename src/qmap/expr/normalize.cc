#include "qmap/expr/normalize.h"

namespace qmap {

Query NormalizeQuery(const Query& query) {
  switch (query.kind()) {
    case NodeKind::kTrue:
      return query;
    case NodeKind::kLeaf:
      return Query::Leaf(query.constraint().Normalized());
    case NodeKind::kAnd:
    case NodeKind::kOr: {
      std::vector<Query> children;
      children.reserve(query.children().size());
      for (const Query& child : query.children()) {
        children.push_back(NormalizeQuery(child));
      }
      return query.kind() == NodeKind::kAnd ? Query::And(std::move(children))
                                            : Query::Or(std::move(children));
    }
  }
  return query;
}

}  // namespace qmap
