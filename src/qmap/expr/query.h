#ifndef QMAP_EXPR_QUERY_H_
#define QMAP_EXPR_QUERY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "qmap/expr/constraint.h"

namespace qmap {

enum class NodeKind { kTrue, kLeaf, kAnd, kOr };

/// An immutable constraint-query tree (Section 6): interior n-ary ∧/∨ nodes,
/// leaf constraints, and the trivial query True.
///
/// Query is a value type wrapping a shared immutable node, so subtree reuse
/// during rewriting (Disjunctivize, TDQM) is O(1) per reference — rewrites
/// create new interior nodes but never deep-copy untouched subtrees.
///
/// The normalizing constructors maintain the paper's canonical shape:
/// ∧ and ∨ strictly alternate along every path (same-operator children are
/// collapsed, e.g. ∧{a, ∧{b,c}} = ∧{a,b,c}), `True` conjuncts are dropped,
/// a `True` disjunct absorbs its disjunction, duplicate children are merged
/// (idempotency), and single-child nodes collapse to the child.
///
/// Nodes are hash-consed (see qmap/expr/intern.h): unless interning is
/// disabled, the constructors canonicalize against a process-wide table so
/// structurally equal subtrees share one node, and every node carries a
/// precomputed 64-bit fingerprint() of its structure. Identity-keyed layers
/// (MatchMemo, the EDNF constraint table, residue-filter dedup, the
/// translation cache) key on fingerprints instead of printed strings.
class Query {
 public:
  /// The trivial query (no constraint; selects everything).
  static Query True();
  /// A single-constraint query.
  static Query Leaf(Constraint constraint);
  /// Normalized conjunction of `children` (empty conjunction is True).
  static Query And(std::vector<Query> children);
  /// Normalized disjunction of `children`; `children` must be non-empty
  /// (the library has no False — see DESIGN.md §7, negation is out of scope).
  static Query Or(std::vector<Query> children);

  Query() : Query(True()) {}

  NodeKind kind() const { return node_->kind; }
  bool is_true() const { return kind() == NodeKind::kTrue; }
  bool is_leaf() const { return kind() == NodeKind::kLeaf; }

  /// Leaf accessor; requires is_leaf().
  const Constraint& constraint() const { return *node_->constraint; }
  /// Children of an ∧/∨ node (empty vector for leaves/True).
  const std::vector<Query>& children() const { return node_->children; }

  /// 64-bit structural fingerprint, precomputed at construction. Structurally
  /// equal queries always fingerprint equal; distinct structures collide with
  /// probability ~2^-64. Memo/cache layers key on this directly.
  uint64_t fingerprint() const { return node_->fingerprint; }

  /// The address of the underlying shared node. When both queries were built
  /// with interning enabled, equal identity() ⇔ StructurallyEquals.
  const void* identity() const { return node_.get(); }

  /// True if the query is a *simple conjunction*: True, a leaf, or an ∧ node
  /// whose children are all leaves (the input shape of Algorithm SCM).
  bool IsSimpleConjunction() const;

  /// The constraints of a simple conjunction, in order. Requires
  /// IsSimpleConjunction(); True yields the empty vector.
  std::vector<Constraint> AsSimpleConjunction() const;

  /// All leaf constraints in the tree, left-to-right, duplicates removed —
  /// C(Q) in the paper's notation.
  std::vector<Constraint> AllConstraints() const;

  /// Number of nodes in the parse tree — the compactness measure of §8.
  int NodeCount() const;

  /// Maximum depth (True/leaf = 1).
  int Depth() const;

  /// Structural equality. Order-sensitive: ∧/∨ children are compared
  /// pairwise in position, so `a ∧ b` and `b ∧ a` are NOT structurally
  /// equal even though they are logically equivalent. With interning on
  /// this is a pointer comparison; otherwise fingerprints short-circuit
  /// inequality and a deep walk confirms equality.
  bool StructurallyEquals(const Query& other) const;

  /// Paper-style rendering, e.g. `([ln = "Clancy"] ∨ [ln = "Klancy"]) ∧
  /// [fn = "Tom"]`.
  std::string ToString() const;

  friend bool operator==(const Query& a, const Query& b) {
    return a.StructurallyEquals(b);
  }

  /// Implementation detail, public only so the intern table (query.cc) can
  /// build and store nodes; not part of the supported API surface.
  struct Node {
    NodeKind kind = NodeKind::kTrue;
    // Valid when kind == kLeaf; shared with the constraint intern table so
    // every leaf over the same printed constraint aliases one object.
    std::shared_ptr<const Constraint> constraint;
    std::vector<Query> children;  // valid when kind is kAnd/kOr
    uint64_t fingerprint = 0;
    // True when this node came out of the intern table — then it is THE
    // canonical node for its structure and pointer inequality between two
    // interned nodes implies structural inequality.
    bool interned = false;
  };

 private:
  explicit Query(std::shared_ptr<const Node> node) : node_(std::move(node)) {}

  /// Interns an ∧/∨ node over already-normalized children (canonicalizing
  /// each child first). Requires interning to be enabled.
  static Query InternBranch(NodeKind kind, std::vector<Query> children);

  /// Returns the canonical (interned) equivalent of `q`, re-interning
  /// subtrees built while interning was off; pointer-check fast path when
  /// `q` is already canonical.
  static Query Canonical(const Query& q);

  std::shared_ptr<const Node> node_;
};

/// Conjunction of two queries (convenience over Query::And).
Query operator&(const Query& a, const Query& b);
/// Disjunction of two queries (convenience over Query::Or).
Query operator|(const Query& a, const Query& b);

}  // namespace qmap

#endif  // QMAP_EXPR_QUERY_H_
