#ifndef QMAP_EXPR_QUERY_H_
#define QMAP_EXPR_QUERY_H_

#include <memory>
#include <string>
#include <vector>

#include "qmap/expr/constraint.h"

namespace qmap {

enum class NodeKind { kTrue, kLeaf, kAnd, kOr };

/// An immutable constraint-query tree (Section 6): interior n-ary ∧/∨ nodes,
/// leaf constraints, and the trivial query True.
///
/// Query is a value type wrapping a shared immutable node, so subtree reuse
/// during rewriting (Disjunctivize, TDQM) is O(1) per reference — rewrites
/// create new interior nodes but never deep-copy untouched subtrees.
///
/// The normalizing constructors maintain the paper's canonical shape:
/// ∧ and ∨ strictly alternate along every path (same-operator children are
/// collapsed, e.g. ∧{a, ∧{b,c}} = ∧{a,b,c}), `True` conjuncts are dropped,
/// a `True` disjunct absorbs its disjunction, duplicate children are merged
/// (idempotency), and single-child nodes collapse to the child.
class Query {
 public:
  /// The trivial query (no constraint; selects everything).
  static Query True();
  /// A single-constraint query.
  static Query Leaf(Constraint constraint);
  /// Normalized conjunction of `children` (empty conjunction is True).
  static Query And(std::vector<Query> children);
  /// Normalized disjunction of `children`; `children` must be non-empty
  /// (the library has no False — see DESIGN.md §7, negation is out of scope).
  static Query Or(std::vector<Query> children);

  Query() : Query(True()) {}

  NodeKind kind() const { return node_->kind; }
  bool is_true() const { return kind() == NodeKind::kTrue; }
  bool is_leaf() const { return kind() == NodeKind::kLeaf; }

  /// Leaf accessor; requires is_leaf().
  const Constraint& constraint() const { return node_->constraint; }
  /// Children of an ∧/∨ node (empty vector for leaves/True).
  const std::vector<Query>& children() const { return node_->children; }

  /// True if the query is a *simple conjunction*: True, a leaf, or an ∧ node
  /// whose children are all leaves (the input shape of Algorithm SCM).
  bool IsSimpleConjunction() const;

  /// The constraints of a simple conjunction, in order. Requires
  /// IsSimpleConjunction(); True yields the empty vector.
  std::vector<Constraint> AsSimpleConjunction() const;

  /// All leaf constraints in the tree, left-to-right, duplicates removed —
  /// C(Q) in the paper's notation.
  std::vector<Constraint> AllConstraints() const;

  /// Number of nodes in the parse tree — the compactness measure of §8.
  int NodeCount() const;

  /// Maximum depth (True/leaf = 1).
  int Depth() const;

  /// Structural equality (after normalization; ignores child order for the
  /// purpose of equality? No — order-sensitive; use ToString for canonical
  /// comparisons in tests).
  bool StructurallyEquals(const Query& other) const;

  /// Paper-style rendering, e.g. `([ln = "Clancy"] ∨ [ln = "Klancy"]) ∧
  /// [fn = "Tom"]`.
  std::string ToString() const;

  friend bool operator==(const Query& a, const Query& b) {
    return a.StructurallyEquals(b);
  }

 private:
  struct Node {
    NodeKind kind = NodeKind::kTrue;
    Constraint constraint;        // valid when kind == kLeaf
    std::vector<Query> children;  // valid when kind is kAnd/kOr
  };

  explicit Query(std::shared_ptr<const Node> node) : node_(std::move(node)) {}

  std::shared_ptr<const Node> node_;
};

/// Conjunction of two queries (convenience over Query::And).
Query operator&(const Query& a, const Query& b);
/// Disjunction of two queries (convenience over Query::Or).
Query operator|(const Query& a, const Query& b);

}  // namespace qmap

#endif  // QMAP_EXPR_QUERY_H_
