#include "qmap/value/value.h"

#include <cmath>
#include <cstdio>

#include "qmap/common/fnv.h"

namespace qmap {
namespace {

constexpr const char* kMonthNames[] = {"Jan", "Feb", "Mar", "Apr", "May", "Jun",
                                       "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"};

std::string FormatDouble(double v) {
  // Print integers without a trailing ".0" so 10.0 renders as "10".
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

}  // namespace

std::string DateToString(const Date& d) {
  // The paper prints two-digit years ("May/97"); keep 4-digit years readable.
  std::string year = d.year >= 1900 && d.year < 2000
                         ? std::to_string(d.year - 1900)
                         : std::to_string(d.year);
  if (!d.month.has_value()) return year;
  std::string month = (*d.month >= 1 && *d.month <= 12)
                          ? kMonthNames[*d.month - 1]
                          : std::to_string(*d.month);
  if (!d.day.has_value()) return month + "/" + year;
  return std::to_string(*d.day) + "/" + month + "/" + year;
}

ValueKind Value::kind() const {
  switch (rep_.index()) {
    case 0:
      return ValueKind::kNull;
    case 1:
      return ValueKind::kInt;
    case 2:
      return ValueKind::kDouble;
    case 3:
      return ValueKind::kString;
    case 4:
      return ValueKind::kDate;
    case 5:
      return ValueKind::kRange;
    default:
      return ValueKind::kPoint;
  }
}

double Value::AsDouble() const {
  if (kind() == ValueKind::kInt) return static_cast<double>(std::get<int64_t>(rep_));
  return std::get<double>(rep_);
}

bool Value::Equals(const Value& other) const {
  if (is_numeric() && other.is_numeric()) return AsDouble() == other.AsDouble();
  if (kind() != other.kind()) return false;
  return rep_ == other.rep_;
}

std::optional<int> Value::Compare(const Value& other) const {
  if (is_numeric() && other.is_numeric()) {
    double a = AsDouble();
    double b = other.AsDouble();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  if (kind() == ValueKind::kString && other.kind() == ValueKind::kString) {
    int c = AsString().compare(other.AsString());
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  if (kind() == ValueKind::kDate && other.kind() == ValueKind::kDate) {
    // Total order only on fully specified dates.
    const Date& a = AsDate();
    const Date& b = other.AsDate();
    if (a.month.has_value() != b.month.has_value() ||
        a.day.has_value() != b.day.has_value()) {
      return std::nullopt;
    }
    auto key = [](const Date& d) {
      return d.year * 10000 + d.month.value_or(0) * 100 + d.day.value_or(0);
    };
    int ka = key(a);
    int kb = key(b);
    return ka < kb ? -1 : (ka > kb ? 1 : 0);
  }
  return std::nullopt;
}

uint64_t Value::CanonicalHash() const {
  // Must hash the exact bytes ToString() would produce — fingerprint equality
  // has to coincide with printed-form equality. Fast paths below reproduce the
  // ToString rendering for the hot kinds without allocating.
  Fnv64 h;
  switch (kind()) {
    case ValueKind::kNull:
      return h.Add("null").value();
    case ValueKind::kInt: {
      char buf[32];
      int n = std::snprintf(buf, sizeof(buf), "%lld",
                            static_cast<long long>(AsInt()));
      return h.Add(std::string_view(buf, static_cast<size_t>(n))).value();
    }
    case ValueKind::kDouble: {
      double v = AsDouble();
      char buf[64];
      int n;
      if (v == std::floor(v) && std::abs(v) < 1e15) {
        n = std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
      } else {
        n = std::snprintf(buf, sizeof(buf), "%g", v);
      }
      return h.Add(std::string_view(buf, static_cast<size_t>(n))).value();
    }
    case ValueKind::kString:
      return h.AddByte('"').Add(AsString()).AddByte('"').value();
    default:
      // Dates, ranges and points are rare operands; the allocation is fine.
      return h.Add(ToString()).value();
  }
}

std::string Value::ToString() const {
  switch (kind()) {
    case ValueKind::kNull:
      return "null";
    case ValueKind::kInt:
      return std::to_string(AsInt());
    case ValueKind::kDouble:
      return FormatDouble(AsDouble());
    case ValueKind::kString:
      return "\"" + AsString() + "\"";
    case ValueKind::kDate:
      return DateToString(AsDate());
    case ValueKind::kRange: {
      const Range& r = AsRange();
      return "(" + FormatDouble(r.lo) + ":" + FormatDouble(r.hi) + ")";
    }
    case ValueKind::kPoint: {
      const Point& p = AsPoint();
      return "(" + FormatDouble(p.x) + "," + FormatDouble(p.y) + ")";
    }
  }
  return "?";
}

}  // namespace qmap
