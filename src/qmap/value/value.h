#ifndef QMAP_VALUE_VALUE_H_
#define QMAP_VALUE_VALUE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <variant>

namespace qmap {

/// A (possibly partial) calendar date. `month`/`day` may be absent: the paper
/// uses partial dates such as "97" (year only) and "May/97" (month + year) as
/// operands of the `during` operator (rules R6/R7 of K_Amazon, Figure 3).
struct Date {
  int year = 0;
  std::optional<int> month;  // 1..12
  std::optional<int> day;    // 1..31

  friend bool operator==(const Date& a, const Date& b) = default;
};

/// A closed numeric interval, printed as "(lo:hi)" (Example 8's X-range).
struct Range {
  double lo = 0;
  double hi = 0;

  friend bool operator==(const Range& a, const Range& b) = default;
};

/// A 2-D point, printed as "(x,y)" (Example 8's corner coordinates).
struct Point {
  double x = 0;
  double y = 0;

  friend bool operator==(const Point& a, const Point& b) = default;
};

enum class ValueKind { kNull, kInt, kDouble, kString, kDate, kRange, kPoint };

/// A constant appearing on the right-hand side of a selection constraint.
///
/// Value is a small immutable sum type with value semantics. Ordering is
/// defined for numeric kinds (int/double compare numerically across kinds)
/// and lexicographically for strings; other kinds support equality only.
class Value {
 public:
  Value() : rep_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Int(int64_t v) { return Value(Rep(v)); }
  static Value Real(double v) { return Value(Rep(v)); }
  static Value Str(std::string v) { return Value(Rep(std::move(v))); }
  static Value OfDate(Date d) { return Value(Rep(d)); }
  static Value OfRange(Range r) { return Value(Rep(r)); }
  static Value OfPoint(Point p) { return Value(Rep(p)); }

  ValueKind kind() const;
  bool is_null() const { return kind() == ValueKind::kNull; }
  bool is_numeric() const {
    return kind() == ValueKind::kInt || kind() == ValueKind::kDouble;
  }

  /// Accessors; the caller must have checked kind().
  int64_t AsInt() const { return std::get<int64_t>(rep_); }
  double AsDouble() const;  // valid for kInt and kDouble
  const std::string& AsString() const { return std::get<std::string>(rep_); }
  const Date& AsDate() const { return std::get<Date>(rep_); }
  const Range& AsRange() const { return std::get<Range>(rep_); }
  const Point& AsPoint() const { return std::get<Point>(rep_); }

  /// Structural equality; kInt(3) == kDouble(3.0) holds (numeric equality).
  bool Equals(const Value& other) const;

  /// Numeric/string ordering. Returns nullopt when the pair is unordered
  /// (mixed non-numeric kinds, dates vs strings, ranges, points, nulls).
  std::optional<int> Compare(const Value& other) const;

  /// Canonical rendering used for printing queries and as a hashing key,
  /// e.g. `"Clancy"`, `1997`, `May/97`, `(10:30)`, `(10,20)`.
  std::string ToString() const;

  /// FNV-1a 64 over the exact bytes of ToString(). This is the value-level
  /// building block of constraint/query fingerprints: two values hash equal
  /// exactly when they print equal (the same relation Constraint::operator==
  /// uses), so e.g. Int(3), Real(3.0) and Date{1903} all share a hash because
  /// they all render as "3". Fast paths avoid the string allocation for the
  /// common int/string/integral-double kinds.
  uint64_t CanonicalHash() const;

  /// Exact representation equality: same kind and same stored bits (no
  /// cross-kind numeric coercion, unlike Equals). Int(3) is not IdenticalTo
  /// Real(3.0). Used by intern-table verification as a cheap sufficient
  /// check before falling back to printed-form comparison.
  bool IdenticalTo(const Value& other) const { return rep_ == other.rep_; }

  friend bool operator==(const Value& a, const Value& b) { return a.Equals(b); }

 private:
  using Rep = std::variant<std::monostate, int64_t, double, std::string, Date,
                           Range, Point>;
  explicit Value(Rep rep) : rep_(std::move(rep)) {}

  Rep rep_;
};

/// Renders a Date in the paper's style: "97", "May/97", or "12/May/97".
std::string DateToString(const Date& d);

}  // namespace qmap

#endif  // QMAP_VALUE_VALUE_H_
