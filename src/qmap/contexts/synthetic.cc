#include "qmap/contexts/synthetic.h"

#include <algorithm>
#include <functional>
#include <set>

#include "qmap/rules/spec_parser.h"

namespace qmap {
namespace {

std::string AttrA(int i) { return "a" + std::to_string(i); }

}  // namespace

std::shared_ptr<const FunctionRegistry> SyntheticRegistry() {
  auto registry = std::make_shared<FunctionRegistry>(FunctionRegistry::WithBuiltins());
  registry->RegisterTransform(
      "Concat", [](const std::vector<Term>& args) -> Result<Term> {
        if (args.size() != 2 || !TermIsValue(args[0]) || !TermIsValue(args[1])) {
          return Status::InvalidArgument("Concat expects two values");
        }
        return Term(Value::Str(TermValue(args[0]).ToString() + "|" +
                               TermValue(args[1]).ToString()));
      });
  return registry;
}

Result<MappingSpec> MakeSyntheticSpec(const SyntheticOptions& options) {
  std::set<int> in_pair;
  for (const auto& [i, j] : options.dependent_pairs) {
    in_pair.insert(i);
    in_pair.insert(j);
  }
  std::string dsl;
  for (int i = 0; i < options.num_attrs; ++i) {
    if (in_pair.count(i) != 0) continue;
    // Independent attribute: exact one-to-one rule.
    dsl += "rule S" + std::to_string(i) + ": [a" + std::to_string(i) +
           " = V] where Value(V) => emit [b" + std::to_string(i) + " = V];\n";
  }
  for (const auto& [i, j] : options.dependent_pairs) {
    dsl += "rule P" + std::to_string(i) + "_" + std::to_string(j) + ": [a" +
           std::to_string(i) + " = V]; [a" + std::to_string(j) +
           " = W] where Value(V), Value(W) => let C = Concat(V, W); emit [c" +
           std::to_string(i) + "_" + std::to_string(j) + " = C];\n";
    if (options.partial_single_for_pair_first) {
      dsl += "rule D" + std::to_string(i) + ": [a" + std::to_string(i) +
             " = V] where Value(V) => emit [d" + std::to_string(i) + " = V];\n";
    }
  }
  return ParseMappingSpec(dsl, "synthetic", SyntheticRegistry());
}

Query RandomQuery(std::mt19937& rng, const RandomQueryOptions& options) {
  std::uniform_int_distribution<int> attr_dist(0, options.num_attrs - 1);
  std::uniform_int_distribution<int> value_dist(0, options.num_values - 1);
  std::uniform_int_distribution<int> fanout_dist(2, std::max(2, options.max_children));
  std::uniform_int_distribution<int> coin(0, 1);

  // depth > 0 builds an interior node whose children are one level shallower;
  // leaves are random equality constraints.
  std::function<Query(int, bool)> build = [&](int depth, bool conjunctive) -> Query {
    if (depth <= 0 || coin(rng) == 0) {
      return Query::Leaf(MakeSel(Attr::Simple(AttrA(attr_dist(rng))), Op::kEq,
                                 Value::Int(value_dist(rng))));
    }
    int fanout = fanout_dist(rng);
    std::vector<Query> children;
    children.reserve(static_cast<size_t>(fanout));
    for (int i = 0; i < fanout; ++i) children.push_back(build(depth - 1, !conjunctive));
    return conjunctive ? Query::And(std::move(children))
                       : Query::Or(std::move(children));
  };
  return build(options.max_depth, true);
}

Tuple RandomSourceTuple(std::mt19937& rng, int num_attrs, int num_values) {
  std::uniform_int_distribution<int> value_dist(0, num_values - 1);
  Tuple t;
  for (int i = 0; i < num_attrs; ++i) t.Set(AttrA(i), Value::Int(value_dist(rng)));
  return t;
}

Tuple ConvertSyntheticTuple(const Tuple& source, const SyntheticOptions& options) {
  std::set<int> in_pair;
  for (const auto& [i, j] : options.dependent_pairs) {
    in_pair.insert(i);
    in_pair.insert(j);
  }
  Tuple out = source;
  for (int i = 0; i < options.num_attrs; ++i) {
    std::optional<Value> v = source.Get(Attr::Simple(AttrA(i)));
    if (!v.has_value()) continue;
    if (in_pair.count(i) == 0) out.Set("b" + std::to_string(i), *v);
  }
  for (const auto& [i, j] : options.dependent_pairs) {
    std::optional<Value> vi = source.Get(Attr::Simple(AttrA(i)));
    std::optional<Value> vj = source.Get(Attr::Simple(AttrA(j)));
    if (vi.has_value() && vj.has_value()) {
      out.Set("c" + std::to_string(i) + "_" + std::to_string(j),
              Value::Str(vi->ToString() + "|" + vj->ToString()));
    }
    if (options.partial_single_for_pair_first && vi.has_value()) {
      out.Set("d" + std::to_string(i), *vi);
    }
  }
  return out;
}

SyntheticOptions SyntheticMemberOptions(const SyntheticFederationOptions& options,
                                        int member) {
  SyntheticOptions out;
  out.num_attrs = options.num_attrs;
  const int p = member % std::max(1, options.num_attrs - 1);
  out.dependent_pairs = {{p, p + 1}};
  out.partial_single_for_pair_first = (member % 2 == 0);
  return out;
}

Result<FederatedCatalog> MakeSyntheticFederation(
    const SyntheticFederationOptions& options) {
  FederatedCatalog catalog;
  std::mt19937 rng(static_cast<uint32_t>(options.seed));
  for (int m = 0; m < options.num_members; ++m) {
    const SyntheticOptions member_options = SyntheticMemberOptions(options, m);
    Result<MappingSpec> spec = MakeSyntheticSpec(member_options);
    if (!spec.ok()) return spec.status();
    FederatedCatalog::Member member;
    member.name = "S" + std::to_string(m);
    member.translator = Translator(*std::move(spec), options.translator);
    member.convert = [member_options](const Tuple& tuple) {
      return ConvertSyntheticTuple(tuple, member_options);
    };
    for (int t = 0; t < options.tuples_per_member; ++t) {
      member.data.push_back(
          RandomSourceTuple(rng, options.num_attrs, options.num_values));
    }
    catalog.AddMember(std::move(member));
  }
  return catalog;
}

Query GridQuery(int conjuncts, int disjuncts, int num_attrs, int num_values) {
  std::vector<Query> conjunct_list;
  conjunct_list.reserve(static_cast<size_t>(conjuncts));
  for (int i = 0; i < conjuncts; ++i) {
    std::vector<Query> disjunct_list;
    disjunct_list.reserve(static_cast<size_t>(disjuncts));
    for (int k = 0; k < disjuncts; ++k) {
      int attr = (i * disjuncts + k) % num_attrs;
      int value = (i + k) % num_values;
      disjunct_list.push_back(Query::Leaf(
          MakeSel(Attr::Simple(AttrA(attr)), Op::kEq, Value::Int(value))));
    }
    conjunct_list.push_back(Query::Or(std::move(disjunct_list)));
  }
  return Query::And(std::move(conjunct_list));
}

}  // namespace qmap
