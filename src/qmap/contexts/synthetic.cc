#include "qmap/contexts/synthetic.h"

#include <algorithm>
#include <functional>
#include <set>

#include "qmap/rules/spec_parser.h"

namespace qmap {
namespace {

std::string AttrA(int i) { return "a" + std::to_string(i); }

}  // namespace

std::shared_ptr<const FunctionRegistry> SyntheticRegistry() {
  auto registry = std::make_shared<FunctionRegistry>(FunctionRegistry::WithBuiltins());
  registry->RegisterTransform(
      "Concat", [](const std::vector<Term>& args) -> Result<Term> {
        if (args.size() != 2 || !TermIsValue(args[0]) || !TermIsValue(args[1])) {
          return Status::InvalidArgument("Concat expects two values");
        }
        return Term(Value::Str(TermValue(args[0]).ToString() + "|" +
                               TermValue(args[1]).ToString()));
      });
  return registry;
}

Result<MappingSpec> MakeSyntheticSpec(const SyntheticOptions& options) {
  std::set<int> in_pair;
  for (const auto& [i, j] : options.dependent_pairs) {
    in_pair.insert(i);
    in_pair.insert(j);
  }
  std::string dsl;
  for (int i = 0; i < options.num_attrs; ++i) {
    if (in_pair.count(i) != 0) continue;
    // Independent attribute: exact one-to-one rule.
    dsl += "rule S" + std::to_string(i) + ": [a" + std::to_string(i) +
           " = V] where Value(V) => emit [b" + std::to_string(i) + " = V];\n";
  }
  for (const auto& [i, j] : options.dependent_pairs) {
    dsl += "rule P" + std::to_string(i) + "_" + std::to_string(j) + ": [a" +
           std::to_string(i) + " = V]; [a" + std::to_string(j) +
           " = W] where Value(V), Value(W) => let C = Concat(V, W); emit [c" +
           std::to_string(i) + "_" + std::to_string(j) + " = C];\n";
    if (options.partial_single_for_pair_first) {
      dsl += "rule D" + std::to_string(i) + ": [a" + std::to_string(i) +
             " = V] where Value(V) => emit [d" + std::to_string(i) + " = V];\n";
    }
  }
  return ParseMappingSpec(dsl, "synthetic", SyntheticRegistry());
}

Query RandomQuery(std::mt19937& rng, const RandomQueryOptions& options) {
  std::uniform_int_distribution<int> attr_dist(0, options.num_attrs - 1);
  std::uniform_int_distribution<int> value_dist(0, options.num_values - 1);
  std::uniform_int_distribution<int> fanout_dist(2, std::max(2, options.max_children));
  std::uniform_int_distribution<int> coin(0, 1);

  // depth > 0 builds an interior node whose children are one level shallower;
  // leaves are random equality constraints.
  std::function<Query(int, bool)> build = [&](int depth, bool conjunctive) -> Query {
    if (depth <= 0 || coin(rng) == 0) {
      return Query::Leaf(MakeSel(Attr::Simple(AttrA(attr_dist(rng))), Op::kEq,
                                 Value::Int(value_dist(rng))));
    }
    int fanout = fanout_dist(rng);
    std::vector<Query> children;
    children.reserve(static_cast<size_t>(fanout));
    for (int i = 0; i < fanout; ++i) children.push_back(build(depth - 1, !conjunctive));
    return conjunctive ? Query::And(std::move(children))
                       : Query::Or(std::move(children));
  };
  return build(options.max_depth, true);
}

Tuple RandomSourceTuple(std::mt19937& rng, int num_attrs, int num_values) {
  std::uniform_int_distribution<int> value_dist(0, num_values - 1);
  Tuple t;
  for (int i = 0; i < num_attrs; ++i) t.Set(AttrA(i), Value::Int(value_dist(rng)));
  return t;
}

Tuple ConvertSyntheticTuple(const Tuple& source, const SyntheticOptions& options) {
  std::set<int> in_pair;
  for (const auto& [i, j] : options.dependent_pairs) {
    in_pair.insert(i);
    in_pair.insert(j);
  }
  Tuple out = source;
  for (int i = 0; i < options.num_attrs; ++i) {
    std::optional<Value> v = source.Get(Attr::Simple(AttrA(i)));
    if (!v.has_value()) continue;
    if (in_pair.count(i) == 0) out.Set("b" + std::to_string(i), *v);
  }
  for (const auto& [i, j] : options.dependent_pairs) {
    std::optional<Value> vi = source.Get(Attr::Simple(AttrA(i)));
    std::optional<Value> vj = source.Get(Attr::Simple(AttrA(j)));
    if (vi.has_value() && vj.has_value()) {
      out.Set("c" + std::to_string(i) + "_" + std::to_string(j),
              Value::Str(vi->ToString() + "|" + vj->ToString()));
    }
    if (options.partial_single_for_pair_first && vi.has_value()) {
      out.Set("d" + std::to_string(i), *vi);
    }
  }
  return out;
}

namespace {

// The hop-1 pair membership set.
std::set<int> PairMembers(const std::vector<std::pair<int, int>>& pairs) {
  std::set<int> members;
  for (const auto& [i, j] : pairs) {
    members.insert(i);
    members.insert(j);
  }
  return members;
}

}  // namespace

Result<MappingSpec> MakeSyntheticHop2Spec(const SyntheticHop2Options& options) {
  const std::set<int> hop1_pair = PairMembers(options.hop1.dependent_pairs);
  const std::set<int> b_pair = PairMembers(options.dependent_b_pairs);
  std::string dsl;
  if (options.map_b) {
    for (int i = 0; i < options.hop1.num_attrs; ++i) {
      if (hop1_pair.count(i) != 0) continue;  // no bI at hop 1
      if (b_pair.count(i) != 0) continue;     // pair members get no single
      if (i == options.skip_b_attr) continue; // deliberate coverage gap
      const std::string n = std::to_string(i);
      dsl += "rule T" + n + ": [b" + n + " = V] where Value(V) => emit [xb" +
             n + " = V];\n";
    }
  }
  for (const auto& [i, j] : options.dependent_b_pairs) {
    const std::string ni = std::to_string(i);
    const std::string nj = std::to_string(j);
    dsl += "rule TP" + ni + "_" + nj + ": [b" + ni + " = V]; [b" + nj +
           " = W] where Value(V), Value(W) => let C = Concat(V, W); emit [y" +
           ni + "_" + nj + " = C];\n";
    if (options.partial_single_for_pair_first) {
      dsl += "rule TQ" + ni + ": [b" + ni + " = V] where Value(V) => emit [yd" +
             ni + " = V];\n";
    }
  }
  if (options.map_c) {
    for (const auto& [i, j] : options.hop1.dependent_pairs) {
      const std::string n = std::to_string(i) + "_" + std::to_string(j);
      // Conditionless: cI_J's upstream value is let-derived at hop 1, so a
      // `where Value(V)` here would block exact composition.
      dsl += "rule TC" + n + ": [c" + n + " = V] => emit [xc" + n + " = V];\n";
    }
  }
  if (options.map_d && options.hop1.partial_single_for_pair_first) {
    for (const auto& [i, j] : options.hop1.dependent_pairs) {
      (void)j;
      const std::string n = std::to_string(i);
      dsl += "rule TX" + n + ": [d" + n + " = V] where Value(V) => emit [xd" +
             n + " = V];\n";
    }
  }
  return ParseMappingSpec(dsl, "synthetic2", SyntheticRegistry());
}

std::vector<std::string> SyntheticHop2TargetAttrs(
    const SyntheticHop2Options& options) {
  const std::set<int> hop1_pair = PairMembers(options.hop1.dependent_pairs);
  const std::set<int> b_pair = PairMembers(options.dependent_b_pairs);
  std::vector<std::string> attrs;
  if (options.map_b) {
    for (int i = 0; i < options.hop1.num_attrs; ++i) {
      if (hop1_pair.count(i) != 0 || b_pair.count(i) != 0 ||
          i == options.skip_b_attr) {
        continue;
      }
      attrs.push_back("xb" + std::to_string(i));
    }
  }
  for (const auto& [i, j] : options.dependent_b_pairs) {
    attrs.push_back("y" + std::to_string(i) + "_" + std::to_string(j));
    if (options.partial_single_for_pair_first) {
      attrs.push_back("yd" + std::to_string(i));
    }
  }
  if (options.map_c) {
    for (const auto& [i, j] : options.hop1.dependent_pairs) {
      attrs.push_back("xc" + std::to_string(i) + "_" + std::to_string(j));
    }
  }
  if (options.map_d && options.hop1.partial_single_for_pair_first) {
    for (const auto& [i, j] : options.hop1.dependent_pairs) {
      (void)j;
      attrs.push_back("xd" + std::to_string(i));
    }
  }
  return attrs;
}

Tuple ConvertSyntheticHop2Tuple(const Tuple& converted1,
                                const SyntheticHop2Options& options) {
  const std::set<int> hop1_pair = PairMembers(options.hop1.dependent_pairs);
  Tuple out = converted1;
  // Renames are defined wherever the upstream attribute exists — including
  // attributes the rule set deliberately leaves unmapped (the data-level
  // correspondence holds regardless of rule coverage).
  for (int i = 0; i < options.hop1.num_attrs; ++i) {
    if (hop1_pair.count(i) != 0) continue;
    const std::string n = std::to_string(i);
    std::optional<Value> v = converted1.Get(Attr::Simple("b" + n));
    if (v.has_value()) out.Set("xb" + n, *v);
  }
  for (const auto& [i, j] : options.dependent_b_pairs) {
    const std::string ni = std::to_string(i);
    const std::string nj = std::to_string(j);
    std::optional<Value> vi = converted1.Get(Attr::Simple("b" + ni));
    std::optional<Value> vj = converted1.Get(Attr::Simple("b" + nj));
    if (vi.has_value() && vj.has_value()) {
      out.Set("y" + ni + "_" + nj,
              Value::Str(vi->ToString() + "|" + vj->ToString()));
    }
    if (vi.has_value()) out.Set("yd" + ni, *vi);
  }
  for (const auto& [i, j] : options.hop1.dependent_pairs) {
    const std::string n = std::to_string(i) + "_" + std::to_string(j);
    std::optional<Value> c = converted1.Get(Attr::Simple("c" + n));
    if (c.has_value()) out.Set("xc" + n, *c);
    std::optional<Value> d = converted1.Get(Attr::Simple("d" + std::to_string(i)));
    if (d.has_value()) out.Set("xd" + std::to_string(i), *d);
  }
  return out;
}

Result<MappingSpec> MakeSyntheticHop3Spec(const SyntheticHop2Options& options) {
  std::string dsl;
  int k = 0;
  for (const std::string& attr : SyntheticHop2TargetAttrs(options)) {
    dsl += "rule Z" + std::to_string(k++) + ": [" + attr + " = V] => emit [z" +
           attr + " = V];\n";
  }
  return ParseMappingSpec(dsl, "synthetic3", SyntheticRegistry());
}

Tuple ConvertSyntheticHop3Tuple(const Tuple& converted2,
                                const SyntheticHop2Options& options) {
  Tuple out = converted2;
  for (const std::string& attr : SyntheticHop2TargetAttrs(options)) {
    std::optional<Value> v = converted2.Get(Attr::Simple(attr));
    if (v.has_value()) out.Set("z" + attr, *v);
  }
  return out;
}

SyntheticOptions SyntheticMemberOptions(const SyntheticFederationOptions& options,
                                        int member) {
  SyntheticOptions out;
  out.num_attrs = options.num_attrs;
  const int p = member % std::max(1, options.num_attrs - 1);
  out.dependent_pairs = {{p, p + 1}};
  out.partial_single_for_pair_first = (member % 2 == 0);
  return out;
}

Result<FederatedCatalog> MakeSyntheticFederation(
    const SyntheticFederationOptions& options) {
  FederatedCatalog catalog;
  std::mt19937 rng(static_cast<uint32_t>(options.seed));
  for (int m = 0; m < options.num_members; ++m) {
    const SyntheticOptions member_options = SyntheticMemberOptions(options, m);
    Result<MappingSpec> spec = MakeSyntheticSpec(member_options);
    if (!spec.ok()) return spec.status();
    FederatedCatalog::Member member;
    member.name = "S" + std::to_string(m);
    member.translator = Translator(*std::move(spec), options.translator);
    member.convert = [member_options](const Tuple& tuple) {
      return ConvertSyntheticTuple(tuple, member_options);
    };
    for (int t = 0; t < options.tuples_per_member; ++t) {
      member.data.push_back(
          RandomSourceTuple(rng, options.num_attrs, options.num_values));
    }
    catalog.AddMember(std::move(member));
  }
  return catalog;
}

Query GridQuery(int conjuncts, int disjuncts, int num_attrs, int num_values) {
  std::vector<Query> conjunct_list;
  conjunct_list.reserve(static_cast<size_t>(conjuncts));
  for (int i = 0; i < conjuncts; ++i) {
    std::vector<Query> disjunct_list;
    disjunct_list.reserve(static_cast<size_t>(disjuncts));
    for (int k = 0; k < disjuncts; ++k) {
      int attr = (i * disjuncts + k) % num_attrs;
      int value = (i + k) % num_values;
      disjunct_list.push_back(Query::Leaf(
          MakeSel(Attr::Simple(AttrA(attr)), Op::kEq, Value::Int(value))));
    }
    conjunct_list.push_back(Query::Or(std::move(disjunct_list)));
  }
  return Query::And(std::move(conjunct_list));
}

}  // namespace qmap
