#ifndef QMAP_CONTEXTS_CLBOOKS_H_
#define QMAP_CONTEXTS_CLBOOKS_H_

#include <memory>

#include "qmap/expr/eval.h"
#include "qmap/mediator/capabilities.h"
#include "qmap/rules/spec.h"

namespace qmap {

/// The Clbooks (Computer Literacy) target context of Example 1: the source
/// supports an `author` attribute but only with the `contains` operator,
/// which searches individual words in names.  Name constraints therefore
/// translate as relaxations — [fn = "Tom"] ∧ [ln = "Clancy"] becomes
/// [author contains Tom] ∧ [author contains Clancy], which strictly
/// subsumes the original ("Tom, Clancy" and "Clancy, Joe Tom" are false
/// positives) — so the mediator must re-apply the original query as a
/// filter.
std::shared_ptr<const FunctionRegistry> ClbooksRegistry();
MappingSpec ClbooksSpec();
SourceCapabilities ClbooksCapabilities();

/// Converts a mediator `book` tuple into the Clbooks representation
/// (attributes: author, title, isbn).
Tuple ClbooksTupleFromBook(const Tuple& book);

}  // namespace qmap

#endif  // QMAP_CONTEXTS_CLBOOKS_H_
