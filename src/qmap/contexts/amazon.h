#ifndef QMAP_CONTEXTS_AMAZON_H_
#define QMAP_CONTEXTS_AMAZON_H_

#include <memory>

#include "qmap/expr/eval.h"
#include "qmap/mediator/capabilities.h"
#include "qmap/rules/spec.h"

namespace qmap {

/// The Amazon target context of the paper's running example (Figures 2-3,
/// Examples 1-2, 4-6).
///
/// Mediator (original) vocabulary — the integrated book view:
///   book(ln, fn, ti, pyear, pmonth, kwd, publisher, id-no, category)
/// Amazon (target) vocabulary:
///   author =, ti-word contains, title starts, pdate during, subject =,
///   subject-word contains, isbn =, publisher =
///
/// Amazon-specific semantics of `[author = N]`: the power-search author
/// field matches by last name, and by first name too when one is given —
/// "a name can be 'Clancy, Tom', or simply 'Clancy' if the first name is
/// not known" (Example 2).  AmazonSemantics implements this (plus the
/// derived ti-word/subject-word attributes) for the execution substrate.

/// The function registry for K_Amazon: built-ins plus SimpleMapping,
/// AttrNameMapping (id-no -> isbn, publisher -> publisher) and
/// CategoryToSubject (e.g. "D.3" -> "programming").
std::shared_ptr<const FunctionRegistry> AmazonRegistry();

/// K_Amazon — the nine rules of Figure 3, written in the rule DSL.
MappingSpec AmazonSpec();

/// The declared capabilities of the Amazon power-search interface.
SourceCapabilities AmazonCapabilities();

/// Constraint semantics for executing Amazon queries over Amazon tuples
/// (attributes: author, title, pdate, subject, isbn, publisher).
class AmazonSemantics : public ConstraintSemantics {
 public:
  std::optional<bool> Eval(const Constraint& constraint,
                           const Tuple& tuple) const override;
};

/// Converts a mediator `book` tuple into the Amazon representation — the
/// data-conversion direction of the vocabulary gap, used by the empirical
/// subsumption tests: if tuple t satisfies Q, AmazonTuple(t) must satisfy
/// S(Q).
Tuple AmazonTupleFromBook(const Tuple& book);

}  // namespace qmap

#endif  // QMAP_CONTEXTS_AMAZON_H_
