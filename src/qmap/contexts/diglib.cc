#include "qmap/contexts/diglib.h"

#include "qmap/rules/spec_parser.h"

namespace qmap {
namespace {

constexpr char kRules[] = R"(
  rule TITLE: [ti = T] where Value(T)
    => emit [title = T];

  rule AUTHOR inexact: [au contains N]
    => let N2 = RewriteForEngine(N); emit [creator contains N2];

  rule ABSTRACT inexact: [abstract contains P]
    => let P2 = RewriteForEngine(P); emit [fulltext contains P2];
)";

MappingSpec MakeEngineSpec(const std::string& name, const TextCapabilities& caps) {
  auto registry = std::make_shared<FunctionRegistry>(FunctionRegistry::WithBuiltins());
  registry->RegisterTransform("RewriteForEngine", MakeTextRewriteTransform(caps));
  Result<MappingSpec> spec = ParseMappingSpec(kRules, name, registry);
  if (!spec.ok()) {
    return MappingSpec(name + "<parse-error: " + spec.status().ToString() + ">",
                       registry);
  }
  return *std::move(spec);
}

}  // namespace

TextCapabilities Prox10Capabilities() {
  TextCapabilities caps;
  caps.max_near_window = 10;
  return caps;
}

TextCapabilities BooleanCapabilities() {
  TextCapabilities caps;
  caps.supports_near = false;
  return caps;
}

TextCapabilities AnywordCapabilities() {
  TextCapabilities caps;
  caps.supports_near = false;
  caps.supports_and = false;
  return caps;
}

MappingSpec Prox10Spec() { return MakeEngineSpec("prox10", Prox10Capabilities()); }

MappingSpec BooleanSpec() { return MakeEngineSpec("boolean", BooleanCapabilities()); }

MappingSpec AnywordSpec() { return MakeEngineSpec("anyword", AnywordCapabilities()); }

}  // namespace qmap
