#include "qmap/contexts/faculty.h"

#include "qmap/rules/spec_parser.h"
#include "qmap/text/names.h"

namespace qmap {
namespace {

constexpr char kK1Rules[] = R"(
  # K1: mapping rules for source T1 (Figure 5).

  rule R1 inexact: [fac.bib contains P1]
    => let P2 = RewriteTextPat(P1); emit [fac.aubib.bib contains P2];

  rule R2: [pub.ti = T] where Value(T)
    => emit [pub.paper.ti = T];

  # A last or first name alone can only be searched as a word of the
  # author-name string: a relaxation.
  rule R3 inexact: [A1 = N] where LnOrFn(A1), Value(N)
    => let A2 = T1AuthorAttr(A1); emit [A2 contains N];

  # Last and first name together compose the exact author-name string; the
  # pair is indecomposable (separating them loses the name format).
  rule R4: [AL = L]; [AF = F] where LnFnAttrs(AL, AF), Value(L), Value(F)
    => let A = T1AuthorAttr(AL); let N = LnFnToName(L, F); emit [A = N];

  # The join-constraint pair over ln and fn maps to a join on the author
  # strings (Section 4.2).
  rule R5: [V1.ln = V2.ln]; [V1.fn = V2.fn]
    => let A1 = AuthorAttrOfView(V1); let A2 = AuthorAttrOfView(V2);
       emit [A1 = A2];
)";

constexpr char kK2Rules[] = R"(
  # K2: mapping rules for source T2 (Figure 5).

  rule R6: [fac.A1 = N] where LnOrFnName(A1), Value(N)
    => let A2 = ProfAttr(fac.A1); emit [A2 = N];

  rule R7: [fac.dept = D] where Value(D)
    => let C = DeptCode(D); emit [fac.prof.dept = C];

  rule R8: [fac[I].A = fac[J].A] where LnOrFnName(A)
    => let A1 = ProfAttrIdx(I, A); let A2 = ProfAttrIdx(J, A); emit [A1 = A2];
)";

// Maps a fac/pub ln-or-fn attribute to the source attribute holding the
// full author name for that view instance.
Result<Attr> AuthorAttrForView(const std::string& view, int instance) {
  if (view == "fac") return Attr::OfInstance("fac", instance, "aubib.name");
  if (view == "pub") return Attr::OfInstance("pub", instance, "paper.au");
  return Status::InvalidArgument("no author attribute for view " + view);
}

Result<int64_t> DeptCodeOf(const std::string& dept) {
  if (dept == "cs") return int64_t{230};
  if (dept == "ee") return int64_t{220};
  if (dept == "math") return int64_t{110};
  if (dept == "physics") return int64_t{120};
  return Status::InvalidArgument("unknown department: " + dept);
}

const char* DeptNameOf(int64_t code) {
  switch (code) {
    case 230:
      return "cs";
    case 220:
      return "ee";
    case 110:
      return "math";
    case 120:
      return "physics";
    default:
      return "unknown";
  }
}

}  // namespace

std::shared_ptr<const FunctionRegistry> FacultyRegistry() {
  auto registry = std::make_shared<FunctionRegistry>(FunctionRegistry::WithBuiltins());

  registry->RegisterCondition("LnOrFn", [](const std::vector<Term>& args) {
    if (args.size() != 1 || !TermIsAttr(args[0])) return false;
    const Attr& attr = TermAttr(args[0]);
    return (attr.name == "ln" || attr.name == "fn") &&
           (attr.view == "fac" || attr.view == "pub");
  });
  registry->RegisterCondition("LnOrFnName", [](const std::vector<Term>& args) {
    if (args.size() != 1 || !TermIsValue(args[0]) ||
        TermValue(args[0]).kind() != ValueKind::kString) {
      return false;
    }
    const std::string& name = TermValue(args[0]).AsString();
    return name == "ln" || name == "fn";
  });
  registry->RegisterCondition("LnFnAttrs", [](const std::vector<Term>& args) {
    if (args.size() != 2 || !TermIsAttr(args[0]) || !TermIsAttr(args[1])) return false;
    const Attr& al = TermAttr(args[0]);
    const Attr& af = TermAttr(args[1]);
    return al.name == "ln" && af.name == "fn" && al.view == af.view &&
           al.instance == af.instance && (al.view == "fac" || al.view == "pub");
  });
  registry->RegisterTransform(
      "T1AuthorAttr", [](const std::vector<Term>& args) -> Result<Term> {
        if (args.size() != 1 || !TermIsAttr(args[0])) {
          return Status::InvalidArgument("T1AuthorAttr expects one attribute");
        }
        const Attr& attr = TermAttr(args[0]);
        Result<Attr> mapped = AuthorAttrForView(attr.view, attr.instance);
        if (!mapped.ok()) return mapped.status();
        return Term(*std::move(mapped));
      });
  registry->RegisterTransform(
      "AuthorAttrOfView", [](const std::vector<Term>& args) -> Result<Term> {
        if (args.size() != 1 || !TermIsValue(args[0]) ||
            TermValue(args[0]).kind() != ValueKind::kString) {
          return Status::InvalidArgument("AuthorAttrOfView expects a view reference");
        }
        // The view variable binds "view" or "view[i]".
        std::string ref = TermValue(args[0]).AsString();
        std::string view = ref;
        int instance = 0;
        size_t bracket = ref.find('[');
        if (bracket != std::string::npos) {
          view = ref.substr(0, bracket);
          instance = std::atoi(ref.substr(bracket + 1).c_str());
        }
        Result<Attr> mapped = AuthorAttrForView(view, instance);
        if (!mapped.ok()) return mapped.status();
        return Term(*std::move(mapped));
      });
  registry->RegisterTransform(
      "ProfAttr", [](const std::vector<Term>& args) -> Result<Term> {
        if (args.size() != 1 || !TermIsAttr(args[0])) {
          return Status::InvalidArgument("ProfAttr expects one attribute");
        }
        const Attr& attr = TermAttr(args[0]);
        return Term(Attr::OfInstance(attr.view, attr.instance, "prof." + attr.name));
      });
  registry->RegisterTransform(
      "ProfAttrIdx", [](const std::vector<Term>& args) -> Result<Term> {
        if (args.size() != 2 || !TermIsValue(args[0]) ||
            TermValue(args[0]).kind() != ValueKind::kInt || !TermIsValue(args[1]) ||
            TermValue(args[1]).kind() != ValueKind::kString) {
          return Status::InvalidArgument("ProfAttrIdx expects (index, name)");
        }
        int instance = static_cast<int>(TermValue(args[0]).AsInt());
        return Term(Attr::OfInstance(
            "fac", instance, "prof." + TermValue(args[1]).AsString()));
      });
  registry->RegisterTransform(
      "DeptCode", [](const std::vector<Term>& args) -> Result<Term> {
        if (args.size() != 1 || !TermIsValue(args[0]) ||
            TermValue(args[0]).kind() != ValueKind::kString) {
          return Status::InvalidArgument("DeptCode expects one string");
        }
        Result<int64_t> code = DeptCodeOf(TermValue(args[0]).AsString());
        if (!code.ok()) return code.status();
        return Term(Value::Int(*code));
      });
  return registry;
}

MappingSpec FacultyK1() {
  Result<MappingSpec> spec = ParseMappingSpec(kK1Rules, "T1", FacultyRegistry());
  if (!spec.ok()) {
    return MappingSpec("T1<parse-error: " + spec.status().ToString() + ">",
                       FacultyRegistry());
  }
  return *std::move(spec);
}

MappingSpec FacultyK2() {
  Result<MappingSpec> spec = ParseMappingSpec(kK2Rules, "T2", FacultyRegistry());
  if (!spec.ok()) {
    return MappingSpec("T2<parse-error: " + spec.status().ToString() + ">",
                       FacultyRegistry());
  }
  return *std::move(spec);
}

Mediator MakeFacultyMediator() {
  Mediator mediator;

  // --- Source T1: paper(ti, au) and aubib(name, bib). ---
  SourceContext t1("T1", FacultyK1());
  Relation paper("paper", {"ti", "au"});
  (void)paper.AddRow({Value::Str("mining frequent patterns"),
                      Value::Str("Ullman, Jeff")});
  (void)paper.AddRow({Value::Str("data mining over web logs"),
                      Value::Str("Garcia, Hector")});
  (void)paper.AddRow({Value::Str("query translation for mediators"),
                      Value::Str("Chang, Kevin")});
  (void)paper.AddRow({Value::Str("transaction recovery methods"),
                      Value::Str("Gray, Jim")});
  t1.AddRelation(paper);

  Relation aubib("aubib", {"name", "bib"});
  (void)aubib.AddRow({Value::Str("Ullman, Jeff"),
                      Value::Str("works on data mining and database theory")});
  (void)aubib.AddRow({Value::Str("Garcia, Hector"),
                      Value::Str("data integration and mining of web sources")});
  (void)aubib.AddRow({Value::Str("Chang, Kevin"),
                      Value::Str("query mediation across heterogeneous data sources; "
                                 "text mining")});
  (void)aubib.AddRow({Value::Str("Gray, Jim"),
                      Value::Str("transaction processing and recovery")});
  t1.AddRelation(aubib);
  (void)t1.Bind("fac.aubib", "aubib");
  (void)t1.Bind("pub.paper", "paper");
  t1.capabilities().Allow("aubib.bib", Op::kContains);
  t1.capabilities().Allow("aubib.name", Op::kEq);
  t1.capabilities().Allow("aubib.name", Op::kContains);
  t1.capabilities().Allow("paper.ti", Op::kEq);
  t1.capabilities().Allow("paper.au", Op::kEq);
  t1.capabilities().Allow("paper.au", Op::kContains);
  mediator.AddSource(std::move(t1));

  // --- Source T2: prof(ln, fn, dept). ---
  SourceContext t2("T2", FacultyK2());
  Relation prof("prof", {"ln", "fn", "dept"});
  (void)prof.AddRow({Value::Str("Ullman"), Value::Str("Jeff"), Value::Int(230)});
  (void)prof.AddRow({Value::Str("Garcia"), Value::Str("Hector"), Value::Int(230)});
  (void)prof.AddRow({Value::Str("Chang"), Value::Str("Kevin"), Value::Int(220)});
  (void)prof.AddRow({Value::Str("Gray"), Value::Str("Jim"), Value::Int(230)});
  t2.AddRelation(prof);
  (void)t2.Bind("fac.prof", "prof");
  t2.capabilities().Allow("prof.ln", Op::kEq);
  t2.capabilities().Allow("prof.fn", Op::kEq);
  t2.capabilities().Allow("prof.dept", Op::kEq);
  mediator.AddSource(std::move(t2));

  // --- Conversions (the conceptual relations X of Eq. 1). ---
  mediator.AddConversion(NameSplitConversion("fac.aubib.name", "fac.ln", "fac.fn"));
  mediator.AddConversion(RenameConversion("fac.aubib.bib", "fac.bib"));
  mediator.AddConversion(NameSplitConversion("pub.paper.au", "pub.ln", "pub.fn"));
  mediator.AddConversion(RenameConversion("pub.paper.ti", "pub.ti"));
  {
    ConversionFn dept;
    dept.name = "DeptName(fac.prof.dept)";
    dept.inputs = {"fac.prof.dept"};
    dept.outputs = {"fac.dept"};
    dept.fn = [](const std::vector<Value>& args) -> Result<std::vector<Value>> {
      if (!args[0].is_numeric()) {
        return Status::InvalidArgument("dept code must be numeric");
      }
      return std::vector<Value>{
          Value::Str(DeptNameOf(static_cast<int64_t>(args[0].AsDouble())))};
    };
    mediator.AddConversion(std::move(dept));
  }

  // --- View constraints: the fac view's cross-source join. ---
  Query join = Query::And({
      Query::Leaf(MakeJoin(Attr::Of("fac", "ln"), Op::kEq,
                           Attr::Of("fac", "prof.ln"))),
      Query::Leaf(MakeJoin(Attr::Of("fac", "fn"), Op::kEq,
                           Attr::Of("fac", "prof.fn"))),
  });
  mediator.SetViewConstraints(join);
  return mediator;
}

}  // namespace qmap
