#include "qmap/contexts/shop.h"

#include <cmath>

#include "qmap/rules/spec_parser.h"
#include "qmap/text/units.h"

namespace qmap {
namespace {

constexpr char kShopRules[] = R"(
  # Price: dollars -> integer cents, one rule per comparison operator.  The
  # transform is strictly increasing, so each operator maps to itself.
  rule PEQ: [price = P]  where Value(P) => let C = ToCents(P); emit [price_cents = C];
  rule PLT: [price < P]  where Value(P) => let C = ToCents(P); emit [price_cents < C];
  rule PLE: [price <= P] where Value(P) => let C = ToCents(P); emit [price_cents <= C];
  rule PGT: [price > P]  where Value(P) => let C = ToCents(P); emit [price_cents > C];
  rule PGE: [price >= P] where Value(P) => let C = ToCents(P); emit [price_cents >= C];

  # Length: inches -> centimeters.
  rule LEQ: [length = L]  where Value(L) => let C = ToCm(L); emit [length_cm = C];
  rule LLT: [length < L]  where Value(L) => let C = ToCm(L); emit [length_cm < C];
  rule LLE: [length <= L] where Value(L) => let C = ToCm(L); emit [length_cm <= C];
  rule LGT: [length > L]  where Value(L) => let C = ToCm(L); emit [length_cm > C];
  rule LGE: [length >= L] where Value(L) => let C = ToCm(L); emit [length_cm >= C];

  # Product names: exact match unsupported, word search only (a relaxation).
  rule NAME inexact: [name contains P]
    => let P2 = RewriteTextPat(P); emit [name-word contains P2];
  rule NAMEEQ inexact: [name = N] where Value(N)
    => emit [name-word contains N];
)";

Result<double> NumericArg(const char* fn, const std::vector<Term>& args) {
  if (args.size() != 1 || !TermIsValue(args[0]) || !TermValue(args[0]).is_numeric()) {
    return Status::InvalidArgument(std::string(fn) + " expects one numeric value");
  }
  return TermValue(args[0]).AsDouble();
}

}  // namespace

std::shared_ptr<const FunctionRegistry> ShopRegistry() {
  auto registry = std::make_shared<FunctionRegistry>(FunctionRegistry::WithBuiltins());
  registry->RegisterTransform(
      "ToCents", [](const std::vector<Term>& args) -> Result<Term> {
        Result<double> dollars = NumericArg("ToCents", args);
        if (!dollars.ok()) return dollars.status();
        return Term(Value::Int(static_cast<int64_t>(std::llround(DollarsToCents(*dollars)))));
      });
  registry->RegisterTransform(
      "ToCm", [](const std::vector<Term>& args) -> Result<Term> {
        Result<double> inches = NumericArg("ToCm", args);
        if (!inches.ok()) return inches.status();
        return Term(Value::Real(InchesToCentimeters(*inches)));
      });
  return registry;
}

MappingSpec ShopSpec() {
  Result<MappingSpec> spec = ParseMappingSpec(kShopRules, "MetricShop", ShopRegistry());
  if (!spec.ok()) {
    return MappingSpec("MetricShop<parse-error: " + spec.status().ToString() + ">",
                       ShopRegistry());
  }
  return *std::move(spec);
}

Tuple MetricTupleFromProduct(const Tuple& product) {
  Tuple out;
  std::optional<Value> name = product.Get(Attr::Simple("name"));
  if (name.has_value()) out.Set("name-word", *name);
  std::optional<Value> price = product.Get(Attr::Simple("price"));
  if (price.has_value() && price->is_numeric()) {
    out.Set("price_cents",
            Value::Int(static_cast<int64_t>(std::llround(DollarsToCents(price->AsDouble())))));
  }
  std::optional<Value> length = product.Get(Attr::Simple("length"));
  if (length.has_value() && length->is_numeric()) {
    out.Set("length_cm", Value::Real(InchesToCentimeters(length->AsDouble())));
  }
  return out;
}

}  // namespace qmap
