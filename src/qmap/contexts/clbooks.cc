#include "qmap/contexts/clbooks.h"

#include "qmap/rules/spec_parser.h"
#include "qmap/text/names.h"

namespace qmap {
namespace {

constexpr char kClbooksRules[] = R"(
  # Clbooks supports only word search on author names (Example 1), word
  # search on titles, and exact ISBN lookup.

  rule C1 inexact: [ln = L] where Value(L)
    => emit [author contains L];

  rule C2 inexact: [fn = F] where Value(F)
    => emit [author contains F];

  rule C3 inexact: [ti contains P1]
    => let P2 = RewriteTextPat(P1); emit [title-word contains P2];

  rule C4: [id-no = I] where Value(I)
    => emit [isbn = I];
)";

}  // namespace

std::shared_ptr<const FunctionRegistry> ClbooksRegistry() {
  return std::make_shared<FunctionRegistry>(FunctionRegistry::WithBuiltins());
}

MappingSpec ClbooksSpec() {
  Result<MappingSpec> spec =
      ParseMappingSpec(kClbooksRules, "Clbooks", ClbooksRegistry());
  if (!spec.ok()) {
    return MappingSpec("Clbooks<parse-error: " + spec.status().ToString() + ">",
                       ClbooksRegistry());
  }
  return *std::move(spec);
}

SourceCapabilities ClbooksCapabilities() {
  SourceCapabilities caps;
  caps.Allow("author", Op::kContains);
  caps.Allow("title-word", Op::kContains);
  caps.Allow("isbn", Op::kEq);
  return caps;
}

Tuple ClbooksTupleFromBook(const Tuple& book) {
  Tuple out;
  std::optional<Value> ln = book.Get(Attr::Simple("ln"));
  std::optional<Value> fn = book.Get(Attr::Simple("fn"));
  if (ln.has_value() && ln->kind() == ValueKind::kString) {
    std::string fn_str = fn.has_value() && fn->kind() == ValueKind::kString
                             ? fn->AsString()
                             : "";
    out.Set("author", Value::Str(LnFnToName(ln->AsString(), fn_str)));
  }
  std::optional<Value> ti = book.Get(Attr::Simple("ti"));
  if (ti.has_value()) out.Set("title-word", *ti);
  std::optional<Value> id_no = book.Get(Attr::Simple("id-no"));
  if (id_no.has_value()) out.Set("isbn", *id_no);
  return out;
}

}  // namespace qmap
