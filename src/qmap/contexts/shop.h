#ifndef QMAP_CONTEXTS_SHOP_H_
#define QMAP_CONTEXTS_SHOP_H_

#include <memory>

#include "qmap/expr/eval.h"
#include "qmap/rules/spec.h"

namespace qmap {

/// A product-catalog context exercising *comparison-operator* rules and
/// unit/format value transforms (the "3 inches to 7.62 centimeters" kind of
/// heterogeneity from Section 1).
///
/// Mediator vocabulary:  product(name, price /*dollars*/, length /*inches*/)
///   operators: =, <, <=, >, >= on price/length; contains on name.
/// Target "MetricShop" vocabulary:
///   price_cents (integer cents), length_cm (centimeters), name-word.
///
/// Because the transforms are strictly monotonic, each comparison operator
/// maps to itself with a converted bound — an *exact* translation; the rules
/// enumerate the operators explicitly, as the paper's rule style does.
std::shared_ptr<const FunctionRegistry> ShopRegistry();
MappingSpec ShopSpec();

/// Converts a mediator product tuple to the MetricShop representation.
Tuple MetricTupleFromProduct(const Tuple& product);

}  // namespace qmap

#endif  // QMAP_CONTEXTS_SHOP_H_
