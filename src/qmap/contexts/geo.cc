#include "qmap/contexts/geo.h"

#include "qmap/rules/spec_parser.h"

namespace qmap {
namespace {

constexpr char kGeoRules[] = R"(
  # K_G (Example 8): bound pairs map to G's range / corner vocabulary.
  # All four rules are exact: each pair is equivalent to its emission.

  rule GX: [x_min = A]; [x_max = B] where Value(A), Value(B)
    => let R = MakeRange(A, B); emit [xrange = R];

  rule GY: [y_min = C]; [y_max = D] where Value(C), Value(D)
    => let R = MakeRange(C, D); emit [yrange = R];

  rule GLL: [x_min = A]; [y_min = C] where Value(A), Value(C)
    => let P = MakePoint(A, C); emit [cll = P];

  rule GUR: [x_max = B]; [y_max = D] where Value(B), Value(D)
    => let P = MakePoint(B, D); emit [cur = P];
)";

}  // namespace

std::shared_ptr<const FunctionRegistry> GeoRegistry() {
  return std::make_shared<FunctionRegistry>(FunctionRegistry::WithBuiltins());
}

MappingSpec GeoSpec() {
  Result<MappingSpec> spec = ParseMappingSpec(kGeoRules, "G", GeoRegistry());
  if (!spec.ok()) {
    return MappingSpec("G<parse-error: " + spec.status().ToString() + ">",
                       GeoRegistry());
  }
  return *std::move(spec);
}

std::optional<bool> GeoSemantics::Eval(const Constraint& constraint,
                                       const Tuple& tuple) const {
  if (constraint.is_join() || constraint.op != Op::kEq) return std::nullopt;
  std::optional<Value> xv = tuple.Get(Attr::Simple("x"));
  std::optional<Value> yv = tuple.Get(Attr::Simple("y"));
  if (!xv.has_value() || !yv.has_value()) return std::nullopt;
  double x = xv->AsDouble();
  double y = yv->AsDouble();
  const std::string& name = constraint.lhs.name;
  const Value& rhs = constraint.rhs_value();

  if (name == "x_min" || name == "x_max" || name == "y_min" || name == "y_max") {
    if (!rhs.is_numeric()) return false;
    if (name == "x_min") return x >= rhs.AsDouble();
    if (name == "x_max") return x <= rhs.AsDouble();
    if (name == "y_min") return y >= rhs.AsDouble();
    return y <= rhs.AsDouble();
  }
  if (name == "xrange" || name == "yrange") {
    if (rhs.kind() != ValueKind::kRange) return false;
    const Range& r = rhs.AsRange();
    double v = name == "xrange" ? x : y;
    return v >= r.lo && v <= r.hi;
  }
  if (name == "cll" || name == "cur") {
    if (rhs.kind() != ValueKind::kPoint) return false;
    const Point& p = rhs.AsPoint();
    if (name == "cll") return x >= p.x && y >= p.y;
    return x <= p.x && y <= p.y;
  }
  return std::nullopt;
}

std::vector<Tuple> GeoGridUniverse(int x0, int x1, int y0, int y1) {
  std::vector<Tuple> out;
  out.reserve(static_cast<size_t>((x1 - x0 + 1) * (y1 - y0 + 1)));
  for (int x = x0; x <= x1; ++x) {
    for (int y = y0; y <= y1; ++y) {
      Tuple t;
      t.Set("x", Value::Int(x));
      t.Set("y", Value::Int(y));
      out.push_back(std::move(t));
    }
  }
  return out;
}

}  // namespace qmap
