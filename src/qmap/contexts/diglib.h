#ifndef QMAP_CONTEXTS_DIGLIB_H_
#define QMAP_CONTEXTS_DIGLIB_H_

#include <memory>

#include "qmap/rules/spec.h"
#include "qmap/text/rewrite.h"

namespace qmap {

/// A digital-library federation in the spirit of the Stanford Digital
/// Libraries prototype the paper grew out of: one mediator `article(ti,
/// abstract, au)` view over search engines with *different text-operator
/// capabilities*, driving the general predicate-rewriting machinery
/// (reference [20], `qmap/text/rewrite.h`) through the rule framework.
///
///   prox10  — proximity search, windows up to 10; full Boolean.
///   boolean — keyword AND/OR only (no proximity).
///   anyword — OR only (matches documents containing any of the words).
///
/// Each engine has a one-rule spec relaxing [abstract contains P] into its
/// own vocabulary; the rules are marked `inexact` (the relaxation is
/// data-dependent), so the mediator's filter restores exactness.

/// The capabilities of each engine.
TextCapabilities Prox10Capabilities();
TextCapabilities BooleanCapabilities();
TextCapabilities AnywordCapabilities();

/// Mapping specs (target names "prox10", "boolean", "anyword").
MappingSpec Prox10Spec();
MappingSpec BooleanSpec();
MappingSpec AnywordSpec();

}  // namespace qmap

#endif  // QMAP_CONTEXTS_DIGLIB_H_
