#ifndef QMAP_CONTEXTS_FACULTY_H_
#define QMAP_CONTEXTS_FACULTY_H_

#include <memory>

#include "qmap/mediator/mediator.h"
#include "qmap/rules/spec.h"

namespace qmap {

/// The two-source faculty/publication integration system of Example 3 and
/// Figure 5.
///
/// Source T1: paper(ti, au), aubib(name, bib) — authors in "Ln, Fn" format,
///            IR search on bibliographies (keyword conjunctions only; no
///            proximity operator).
/// Source T2: prof(ln, fn, dept) — departments as numeric codes (cs = 230).
///
/// Mediator views: fac(ln, fn, bib, dept) integrating aubib (T1) with prof
/// (T2), and pub(ti, ln, fn) from paper (T1) via the NameLnFn conversion.
/// The fac view's cross-source join (aubib author name ↔ prof ln/fn) cannot
/// be pushed to either source: it is declared as a view constraint and
/// evaluates through the mediator's filter.

std::shared_ptr<const FunctionRegistry> FacultyRegistry();

/// K1 — the T1 rules of Figure 5 (R1-R5), in the rule DSL.
MappingSpec FacultyK1();
/// K2 — the T2 rules of Figure 5 (R6-R8).
MappingSpec FacultyK2();

/// A fully wired mediator: both sources with sample data, the conversion
/// pipeline (name splits, renames, dept decoding), and the fac-view
/// cross-source join constraints.  Ready for Translate()/Execute().
Mediator MakeFacultyMediator();

}  // namespace qmap

#endif  // QMAP_CONTEXTS_FACULTY_H_
