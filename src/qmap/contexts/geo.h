#ifndef QMAP_CONTEXTS_GEO_H_
#define QMAP_CONTEXTS_GEO_H_

#include <memory>

#include "qmap/expr/eval.h"
#include "qmap/rules/spec.h"

namespace qmap {

/// The map-query contexts of Example 8 (Figure 9).
///
/// Mediator F expresses rectangle selections with four bound attributes:
///   [x_min = a] ∧ [x_max = b] ∧ [y_min = c] ∧ [y_max = d]
/// Target G expresses the same regions with *inter-dependent* attribute
/// pairs: [xrange = (a:b)] ∧ [yrange = (c:d)], or equivalently
/// [cll = (a,c)] ∧ [cur = (b,d)] (lower-left / upper-right corners).
///
/// Because G's vocabulary is redundant, translations of F queries produce
/// *redundant cross-matchings*: the safety test (Definition 5) flags
/// (x_min x_max)(y_min y_max) as unsafe, yet Theorem 3 proves it separable —
/// the corner constraints are subsumed by the range constraints.  This is
/// the paper's example of safety being sufficient but not necessary.

std::shared_ptr<const FunctionRegistry> GeoRegistry();

/// K_G: the four rules mapping bound pairs to ranges and corners.
MappingSpec GeoSpec();

/// Semantics of both vocabularies over point tuples (attributes x, y):
///   x_min/x_max/y_min/y_max — half-plane bounds;
///   xrange/yrange           — interval membership;
///   cll/cur                 — corner half-planes (an open region; Figure 9).
class GeoSemantics : public ConstraintSemantics {
 public:
  std::optional<bool> Eval(const Constraint& constraint,
                           const Tuple& tuple) const override;
};

/// An exhaustive grid of point tuples over [x0,x1]×[y0,y1] with unit step —
/// the tuple universe for the empirical Theorem 3/4 separability checks.
std::vector<Tuple> GeoGridUniverse(int x0, int x1, int y0, int y1);

}  // namespace qmap

#endif  // QMAP_CONTEXTS_GEO_H_
