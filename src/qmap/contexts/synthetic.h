#ifndef QMAP_CONTEXTS_SYNTHETIC_H_
#define QMAP_CONTEXTS_SYNTHETIC_H_

#include <cstdint>
#include <memory>
#include <random>
#include <utility>
#include <vector>

#include "qmap/expr/eval.h"
#include "qmap/mediator/federation.h"
#include "qmap/rules/spec.h"

namespace qmap {

/// Synthetic mapping contexts for benchmarks and property tests, modeled on
/// the structure of K_Amazon: independent attributes translate one-to-one;
/// dependent pairs must be mapped together (like pyear+pmonth -> pdate),
/// with an optional partial single-attribute rule for the pair's first
/// member (like R7's year-only date).
///
/// Original vocabulary:  a0, a1, ..., a{n-1}        (all selection, `=`)
/// Target vocabulary:    bI = aI                    (independent attrs)
///                       cI_J = Concat(aI, aJ)      (dependent pairs)
///                       dI = aI                    (partial singles)
struct SyntheticOptions {
  int num_attrs = 8;
  /// Pairs (i, j), i < j, of inter-dependent attributes. Members of a pair
  /// get no independent b-rule.
  std::vector<std::pair<int, int>> dependent_pairs;
  /// Emit a partial rule [aI = V] => [dI = V] for each pair's first member
  /// (creates the sub-matching-suppression pattern of R6/R7).
  bool partial_single_for_pair_first = true;
};

std::shared_ptr<const FunctionRegistry> SyntheticRegistry();

/// Builds the DSL rules for `options` and parses them into a spec.
Result<MappingSpec> MakeSyntheticSpec(const SyntheticOptions& options);

/// Parameters for random query generation.
struct RandomQueryOptions {
  int num_attrs = 8;
  int num_values = 4;   // values drawn from 0..num_values-1
  int max_depth = 3;    // alternation depth of the ∧/∨ tree
  int max_children = 3; // fanout of interior nodes
};

/// A random normalized ∧/∨ query over constraints [aK = v].
Query RandomQuery(std::mt19937& rng, const RandomQueryOptions& options);

/// A random source tuple assigning each aI a value in 0..num_values-1.
Tuple RandomSourceTuple(std::mt19937& rng, int num_attrs, int num_values);

/// The data-conversion direction: extends a source tuple with the target
/// attributes (bI, dI, cI_J) consistent with the mapping rules.
Tuple ConvertSyntheticTuple(const Tuple& source, const SyntheticOptions& options);

/// A second mapping hop over the first hop's target vocabulary, for
/// composition tests: the hop-1 targets (bI, cI_J, dI) map onward to
///   xbI  = bI        (independent renames, `where Value`)
///   xcI_J = cI_J     (pair-concat renames; conditionless — the upstream
///                     value is `let`-derived, and a condition over it
///                     could not be composed exactly)
///   xdI  = dI        (partial-single renames)
///   yI_J = Concat(bI, bJ)   (second-level dependent pairs over independent
///                            b attrs; members get no xb rule)
///   ydI  = bI        (partial single for a y-pair's first member)
/// All flags default to full coverage; `skip_b_attr` punches a coverage gap
/// at one independent b attribute (safe for equivalence testing only when
/// that attribute is in no pair at either hop).
struct SyntheticHop2Options {
  SyntheticOptions hop1;  // the hop whose targets this hop consumes
  bool map_b = true;
  bool map_c = true;
  bool map_d = true;
  std::vector<std::pair<int, int>> dependent_b_pairs;
  bool partial_single_for_pair_first = false;
  int skip_b_attr = -1;
};

/// Builds the hop-2 DSL rules for `options` and parses them into a spec.
Result<MappingSpec> MakeSyntheticHop2Spec(const SyntheticHop2Options& options);

/// The hop-2 target attributes `options` can emit (xb/xc/xd/y/yd names).
std::vector<std::string> SyntheticHop2TargetAttrs(const SyntheticHop2Options& options);

/// Extends a hop-1-converted tuple with the hop-2 target attributes.
Tuple ConvertSyntheticHop2Tuple(const Tuple& converted1,
                                const SyntheticHop2Options& options);

/// A third hop that renames every hop-2 target attribute with a "z" prefix.
/// All rules are conditionless: after one composition the upstream values of
/// concat-valued attributes are `let`-derived, and conditionless renames
/// keep the 3-hop chain inside the exactly-composable fragment.
Result<MappingSpec> MakeSyntheticHop3Spec(const SyntheticHop2Options& options);

/// Extends a hop-2-converted tuple with the z-prefixed hop-3 attributes.
Tuple ConvertSyntheticHop3Tuple(const Tuple& converted2,
                                const SyntheticHop2Options& options);

/// Options for a synthetic *union* federation: `num_members` members, each
/// with its own synthetic vocabulary (a different dependent pair per member,
/// so members genuinely differ in what they can realize exactly), seeded
/// random member data, and the data-conversion direction wired up. The
/// substrate for fault-injection and randomized-subsumption testing: every
/// member's behavior is a pure function of `seed`.
struct SyntheticFederationOptions {
  int num_members = 4;
  int num_attrs = 6;
  int num_values = 4;
  int tuples_per_member = 32;
  uint64_t seed = 42;
  TranslatorOptions translator;
};

/// The per-member mapping vocabulary: member m depends on the attribute pair
/// (p, p+1) with p = m mod (num_attrs - 1), and only even members get the
/// partial single-attribute rule — so exact coverage varies across members.
SyntheticOptions SyntheticMemberOptions(const SyntheticFederationOptions& options,
                                        int member);

/// Builds the federation with members "S0" .. "S{n-1}". Fails only if a
/// generated spec fails to parse (a bug in the generator, not in `options`).
Result<FederatedCatalog> MakeSyntheticFederation(
    const SyntheticFederationOptions& options);

/// Deterministic benchmark query: a conjunction of `conjuncts` disjunctions,
/// each with `disjuncts` leaf constraints — the worst-case shape for DNF
/// conversion (2^{nk} disjuncts; Section 8). Attribute k of conjunct i is
/// a{(i * disjuncts + k) % num_attrs}.
Query GridQuery(int conjuncts, int disjuncts, int num_attrs, int num_values = 4);

}  // namespace qmap

#endif  // QMAP_CONTEXTS_SYNTHETIC_H_
