#include "qmap/contexts/amazon.h"

#include "qmap/common/strings.h"
#include "qmap/rules/spec_parser.h"
#include "qmap/text/dates.h"
#include "qmap/text/names.h"
#include "qmap/text/text_pattern.h"

namespace qmap {
namespace {

constexpr char kAmazonRules[] = R"(
  # K_Amazon (Figure 3). R1 maps "simple" attributes that need only a name
  # change; R2/R3 compose the author format; R4/R5 handle titles; R6/R7
  # compose publication dates (pyear+pmonth are inter-dependent: Amazon
  # requires the year in any pdate constraint); R8/R9 relax unsupported
  # vocabulary (keywords, classification categories).

  rule R1: [A1 = N] where SimpleMapping(A1), Value(N)
    => let A2 = AttrNameMapping(A1); emit [A2 = N];

  rule R2: [ln = L]; [fn = F] where Value(L), Value(F)
    => let A = LnFnToName(L, F); emit [author = A];

  rule R3: [ln = L] where Value(L)
    => emit [author = L];

  rule R4 inexact: [ti contains P1]
    => let P2 = RewriteTextPat(P1); emit [ti-word contains P2];

  rule R5 inexact: [ti = T] where Value(T)
    => emit [title starts T];

  rule R6: [pyear = Y]; [pmonth = M] where Value(Y), Value(M)
    => let D = MakeDate(Y, M); emit [pdate during D];

  rule R7: [pyear = Y] where Value(Y)
    => let D = MakeYearDate(Y); emit [pdate during D];

  rule R8 inexact: [kwd contains P]
    => emit [ti-word contains P] | [subject-word contains P];

  rule R9 inexact: [category = C] where Value(C)
    => let S = CategoryToSubject(C); emit [subject = S];
)";

std::string MapCategory(const std::string& category) {
  // ACM CCS-style category codes to Amazon subjects.
  if (StartsWithIgnoreCase(category, "D.")) return "programming";
  if (StartsWithIgnoreCase(category, "H.2")) return "databases";
  if (StartsWithIgnoreCase(category, "H.")) return "information-systems";
  if (StartsWithIgnoreCase(category, "F.")) return "theory";
  return "general";
}

}  // namespace

std::shared_ptr<const FunctionRegistry> AmazonRegistry() {
  auto registry = std::make_shared<FunctionRegistry>(FunctionRegistry::WithBuiltins());

  registry->RegisterCondition("SimpleMapping", [](const std::vector<Term>& args) {
    if (args.size() != 1 || !TermIsAttr(args[0])) return false;
    const std::string& name = TermAttr(args[0]).name;
    return name == "publisher" || name == "id-no";
  });
  registry->RegisterTransform(
      "AttrNameMapping", [](const std::vector<Term>& args) -> Result<Term> {
        if (args.size() != 1 || !TermIsAttr(args[0])) {
          return Status::InvalidArgument("AttrNameMapping expects one attribute");
        }
        const std::string& name = TermAttr(args[0]).name;
        if (name == "publisher") return Term(Attr::Simple("publisher"));
        if (name == "id-no") return Term(Attr::Simple("isbn"));
        return Status::InvalidArgument("AttrNameMapping: no mapping for " + name);
      });
  registry->RegisterTransform(
      "CategoryToSubject", [](const std::vector<Term>& args) -> Result<Term> {
        if (args.size() != 1 || !TermIsValue(args[0]) ||
            TermValue(args[0]).kind() != ValueKind::kString) {
          return Status::InvalidArgument("CategoryToSubject expects one string");
        }
        return Term(Value::Str(MapCategory(TermValue(args[0]).AsString())));
      });
  return registry;
}

MappingSpec AmazonSpec() {
  Result<MappingSpec> spec = ParseMappingSpec(kAmazonRules, "Amazon", AmazonRegistry());
  // The embedded rules are a compile-time constant; failure is a programming
  // error surfaced loudly in any test that builds the spec.
  if (!spec.ok()) {
    return MappingSpec("Amazon<parse-error: " + spec.status().ToString() + ">",
                       AmazonRegistry());
  }
  return *std::move(spec);
}

SourceCapabilities AmazonCapabilities() {
  SourceCapabilities caps;
  caps.Allow("author", Op::kEq);
  caps.Allow("ti-word", Op::kContains);
  caps.Allow("title", Op::kStartsWith);
  caps.Allow("pdate", Op::kDuring);
  caps.Allow("subject", Op::kEq);
  caps.Allow("subject-word", Op::kContains);
  caps.Allow("isbn", Op::kEq);
  caps.Allow("publisher", Op::kEq);
  return caps;
}

std::optional<bool> AmazonSemantics::Eval(const Constraint& constraint,
                                          const Tuple& tuple) const {
  const std::string& name = constraint.lhs.name;
  if (constraint.is_join()) return std::nullopt;
  const Value& rhs = constraint.rhs_value();

  if (name == "author" && constraint.op == Op::kEq) {
    std::optional<Value> author = tuple.Get(Attr::Simple("author"));
    if (!author.has_value() || author->kind() != ValueKind::kString ||
        rhs.kind() != ValueKind::kString) {
      return false;
    }
    // Last-name match, plus first-name match when the query gives one.
    auto [data_ln, data_fn] = NameLnFn(author->AsString());
    auto [query_ln, query_fn] = NameLnFn(rhs.AsString());
    if (ToLower(data_ln) != ToLower(query_ln)) return false;
    if (!query_fn.empty() && ToLower(data_fn) != ToLower(query_fn)) return false;
    return true;
  }
  if (name == "ti-word" && constraint.op == Op::kContains) {
    std::optional<Value> title = tuple.Get(Attr::Simple("title"));
    if (!title.has_value() || title->kind() != ValueKind::kString ||
        rhs.kind() != ValueKind::kString) {
      return false;
    }
    Result<TextPattern> pattern = TextPattern::Parse(rhs.AsString());
    if (!pattern.ok()) return false;
    return pattern->Matches(title->AsString());
  }
  if (name == "subject-word" && constraint.op == Op::kContains) {
    std::optional<Value> subject = tuple.Get(Attr::Simple("subject"));
    if (!subject.has_value() || subject->kind() != ValueKind::kString ||
        rhs.kind() != ValueKind::kString) {
      return false;
    }
    Result<TextPattern> pattern = TextPattern::Parse(rhs.AsString());
    if (!pattern.ok()) return false;
    return pattern->Matches(subject->AsString());
  }
  return std::nullopt;  // default semantics for title/pdate/subject/isbn/...
}

Tuple AmazonTupleFromBook(const Tuple& book) {
  Tuple out;
  auto get = [&book](const char* attr) { return book.Get(Attr::Simple(attr)); };

  std::optional<Value> ln = get("ln");
  std::optional<Value> fn = get("fn");
  if (ln.has_value() && ln->kind() == ValueKind::kString) {
    std::string fn_str = fn.has_value() && fn->kind() == ValueKind::kString
                             ? fn->AsString()
                             : "";
    out.Set("author", Value::Str(LnFnToName(ln->AsString(), fn_str)));
  }
  std::optional<Value> ti = get("ti");
  if (ti.has_value()) out.Set("title", *ti);
  std::optional<Value> pyear = get("pyear");
  std::optional<Value> pmonth = get("pmonth");
  if (pyear.has_value() && pyear->is_numeric()) {
    Date d;
    d.year = static_cast<int>(pyear->AsDouble());
    if (pmonth.has_value() && pmonth->is_numeric()) {
      d.month = static_cast<int>(pmonth->AsDouble());
    }
    out.Set("pdate", Value::OfDate(d));
  }
  std::optional<Value> category = get("category");
  if (category.has_value() && category->kind() == ValueKind::kString) {
    out.Set("subject", Value::Str(MapCategory(category->AsString())));
  }
  std::optional<Value> id_no = get("id-no");
  if (id_no.has_value()) out.Set("isbn", *id_no);
  std::optional<Value> publisher = get("publisher");
  if (publisher.has_value()) out.Set("publisher", *publisher);
  return out;
}

}  // namespace qmap
