#include "qmap/wire/qmap_server.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "qmap/expr/parser.h"
#include "qmap/obs/metrics.h"
#include "qmap/wire/messages.h"

namespace qmap {

QmapServer::QmapServer(QmapServerOptions options)
    : options_(std::move(options)),
      loop_(EventLoopOptions{options_.max_connections,
                             options_.poll_interval_ms}),
      pool_(std::max(1, options_.num_threads)) {}

QmapServer::~QmapServer() { Stop(); }

void QmapServer::SetService(std::shared_ptr<TranslationService> service) {
  std::lock_guard<std::mutex> lock(service_mu_);
  if (service_ != nullptr && loop_.running()) {
    reloads_.fetch_add(1, std::memory_order_relaxed);
  }
  service_ = std::move(service);
}

std::shared_ptr<TranslationService> QmapServer::service() const {
  std::lock_guard<std::mutex> lock(service_mu_);
  return service_;
}

Status QmapServer::Start() {
  if (loop_.running()) {
    return Status::InvalidArgument("qmap server: already started");
  }
  if (service() == nullptr) {
    return Status::InvalidArgument("qmap server: no service loaded");
  }
  Status status =
      listener_.Listen(options_.bind_address, options_.port);
  if (!status.ok()) return status;
  port_ = listener_.port();
  status = loop_.Start(&listener_, this);
  if (!status.ok()) {
    listener_.Close();
    return status;
  }
  return Status::Ok();
}

void QmapServer::Stop() {
  loop_.Stop();
  listener_.Close();
}

void QmapServer::Drain() {
  if (!loop_.running()) return;
  loop_.SetAccepting(false);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(options_.drain_timeout_ms);
  while (in_flight_.load(std::memory_order_acquire) > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  // Two extra ticks so completions already Post()ed reach their sockets
  // before the loop stops.
  std::this_thread::sleep_for(
      std::chrono::milliseconds(2 * options_.poll_interval_ms));
  Stop();
}

QmapServerStats QmapServer::stats() const {
  QmapServerStats out;
  out.requests = requests_.load(std::memory_order_relaxed);
  out.responses_ok = responses_ok_.load(std::memory_order_relaxed);
  out.responses_error = responses_error_.load(std::memory_order_relaxed);
  out.rejected_overload = rejected_overload_.load(std::memory_order_relaxed);
  out.rejected_quota = rejected_quota_.load(std::memory_order_relaxed);
  out.malformed_frames = malformed_frames_.load(std::memory_order_relaxed);
  out.catalog_requests = catalog_requests_.load(std::memory_order_relaxed);
  out.reloads = reloads_.load(std::memory_order_relaxed);
  out.net = loop_.stats();
  if (options_.metrics != nullptr) {
    MetricsRegistry* metrics = options_.metrics;
    metrics
        ->gauge("qmap_net_accepted_total",
                "Connections accepted by the wire server.")
        .Set(static_cast<int64_t>(out.net.accepted));
    metrics
        ->gauge("qmap_net_rejected_total",
                "Connections closed at the wire server's connection bound.")
        .Set(static_cast<int64_t>(out.net.rejected));
    metrics
        ->gauge("qmap_net_timeouts_total",
                "Wire connections dropped at their idle deadline.")
        .Set(static_cast<int64_t>(out.net.timeouts));
    metrics
        ->gauge("qmap_net_bytes_read_total",
                "Bytes read by the wire server.")
        .Set(static_cast<int64_t>(out.net.bytes_read));
    metrics
        ->gauge("qmap_net_bytes_written_total",
                "Bytes written by the wire server.")
        .Set(static_cast<int64_t>(out.net.bytes_written));
    metrics
        ->gauge("qmap_rpc_requests_total",
                "Translate requests decoded by the wire server.")
        .Set(static_cast<int64_t>(out.requests));
    metrics
        ->gauge("qmap_rpc_rejected_overload_total",
                "Requests rejected by admission control (max in-flight).")
        .Set(static_cast<int64_t>(out.rejected_overload));
    metrics
        ->gauge("qmap_rpc_rejected_quota_total",
                "Requests rejected by per-connection token-bucket quotas.")
        .Set(static_cast<int64_t>(out.rejected_quota));
    metrics
        ->gauge("qmap_rpc_malformed_frames_total",
                "Connections dropped on wire protocol violations.")
        .Set(static_cast<int64_t>(out.malformed_frames));
  }
  return out;
}

void QmapServer::OnAccept(Conn& conn) {
  auto state = std::make_shared<ConnState>();
  state->tokens = options_.quota_burst;
  state->last_refill = std::chrono::steady_clock::now();
  conn.set_user_data(std::move(state));
  conn.SetDeadlineMs(options_.idle_timeout_ms);
}

void QmapServer::OnClose(Conn& conn) { (void)conn; }

bool QmapServer::TakeQuotaToken(ConnState& state) {
  const auto now = std::chrono::steady_clock::now();
  const double elapsed =
      std::chrono::duration<double>(now - state.last_refill).count();
  state.last_refill = now;
  state.tokens = std::min(options_.quota_burst,
                          state.tokens +
                              elapsed * options_.quota_tokens_per_sec);
  if (state.tokens < 1.0) return false;
  state.tokens -= 1.0;
  return true;
}

void QmapServer::Reply(Conn& conn, FrameType type, std::string_view payload) {
  conn.Write(EncodeFrame(type, payload));
  conn.SetDeadlineMs(options_.idle_timeout_ms);
}

void QmapServer::OnData(Conn& conn) {
  auto* state = static_cast<ConnState*>(conn.user_data().get());
  while (!conn.reads_paused()) {
    FrameType type;
    std::string_view payload;
    size_t frame_len = 0;
    switch (DecodeFrame(conn.in(), &type, &payload, &frame_len)) {
      case FrameDecodeResult::kMalformed:
        // Protocol violation (bad magic/version/length/checksum): the
        // stream cannot be resynchronized, so drop the connection. Never
        // anything worse — this is the server half of the fuzz guarantee.
        malformed_frames_.fetch_add(1, std::memory_order_relaxed);
        conn.Abort();
        return;
      case FrameDecodeResult::kNeedMore:
        conn.SetDeadlineMs(options_.idle_timeout_ms);
        return;
      case FrameDecodeResult::kFrame:
        break;
    }
    switch (type) {
      case FrameType::kTranslateRequest:
        HandleTranslate(conn, payload);
        break;
      case FrameType::kCatalogRequest:
        HandleCatalog(conn);
        break;
      default:
        // A response frame sent *to* a server is as unrecoverable as a bad
        // checksum.
        malformed_frames_.fetch_add(1, std::memory_order_relaxed);
        conn.Abort();
        return;
    }
    conn.in().erase(0, frame_len);
    if (state->pending >= options_.max_pending_per_conn) {
      // Backpressure: further buffered frames stay unparsed and further
      // bytes stay in the kernel until responses drain (the completion
      // path resumes reads and re-enters OnData).
      conn.PauseReads();
      return;
    }
  }
}

void QmapServer::HandleCatalog(Conn& conn) {
  catalog_requests_.fetch_add(1, std::memory_order_relaxed);
  CatalogResponse response;
  std::shared_ptr<TranslationService> service = this->service();
  if (service != nullptr) {
    for (const SourceCatalogEntry& entry : service->SourceCatalog()) {
      response.sources.push_back(CatalogEntry{entry.name, entry.rule_set_fp});
    }
  }
  Reply(conn, FrameType::kCatalogResponse, EncodeCatalogResponse(response));
}

void QmapServer::HandleTranslate(Conn& conn, std::string_view payload) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  auto* state = static_cast<ConnState*>(conn.user_data().get());
  Result<TranslateRequest> request = DecodeTranslateRequest(payload);
  if (!request.ok()) {
    // The frame checksum passed but the payload is not a TranslateRequest:
    // a confused or hostile peer, not a transient condition.
    malformed_frames_.fetch_add(1, std::memory_order_relaxed);
    conn.Abort();
    return;
  }
  TranslateResponse response;
  response.request_id = request->request_id;
  if (options_.quota_tokens_per_sec > 0 && !TakeQuotaToken(*state)) {
    rejected_quota_.fetch_add(1, std::memory_order_relaxed);
    responses_error_.fetch_add(1, std::memory_order_relaxed);
    response.failure = Status::Unavailable("qmap server: quota exceeded");
    Reply(conn, FrameType::kTranslateResponse,
          EncodeTranslateResponse(response));
    return;
  }
  if (in_flight_.fetch_add(1, std::memory_order_acq_rel) >=
      options_.max_in_flight) {
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    rejected_overload_.fetch_add(1, std::memory_order_relaxed);
    responses_error_.fetch_add(1, std::memory_order_relaxed);
    response.failure = Status::Unavailable(
        "qmap server: overloaded (" + std::to_string(options_.max_in_flight) +
        " requests in flight)");
    Reply(conn, FrameType::kTranslateResponse,
          EncodeTranslateResponse(response));
    return;
  }
  state->pending += 1;
  const uint64_t conn_id = conn.id();
  pool_.Submit([this, conn_id, request = *std::move(request)] {
    std::shared_ptr<TranslationService> service = this->service();
    TranslateResponse response;
    response.request_id = request.request_id;
    if (service == nullptr) {
      response.failure = Status::Unavailable("qmap server: no service loaded");
    } else {
      Result<Query> query = ParseQuery(request.query_text);
      if (!query.ok()) {
        response.failure = query.status();
      } else {
        Result<Translation> translation = service->TranslateSource(
            request.source, *query, request.deadline_ms);
        if (translation.ok()) {
          response.ok = true;
          response.value = *std::move(translation);
        } else {
          response.failure = translation.status();
        }
      }
    }
    if (response.ok) {
      responses_ok_.fetch_add(1, std::memory_order_relaxed);
    } else {
      responses_error_.fetch_add(1, std::memory_order_relaxed);
    }
    std::string frame = EncodeFrame(FrameType::kTranslateResponse,
                                    EncodeTranslateResponse(response));
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    loop_.Post([this, conn_id, frame = std::move(frame)] {
      Conn* conn = loop_.FindConn(conn_id);
      if (conn == nullptr) return;  // peer left; state died with the conn
      auto* state = static_cast<ConnState*>(conn->user_data().get());
      state->pending -= 1;
      conn->Write(frame);
      conn->SetDeadlineMs(options_.idle_timeout_ms);
      if (conn->reads_paused() &&
          state->pending < options_.max_pending_per_conn) {
        conn->ResumeReads();
        // Frames that piled up in conn.in() while paused parse now.
        OnData(*conn);
      }
    });
  });
}

}  // namespace qmap
