#ifndef QMAP_WIRE_MESSAGES_H_
#define QMAP_WIRE_MESSAGES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "qmap/common/status.h"
#include "qmap/core/translator.h"

namespace qmap {

/// One per-source translate call, front-end → worker. The front-end sends
/// the *full* query — view constraints already conjoined, exactly what the
/// single-process service hands each source's translator — rendered through
/// ToParseableText, so the worker parses back the identical normalized query
/// and the translation is byte-identical to the in-process path.
struct TranslateRequest {
  uint64_t request_id = 0;   // echoes back in the response; connection-scoped
  std::string source;        // registered source name on the worker
  std::string query_text;    // ToParseableText of the full query
  uint32_t deadline_ms = 0;  // remaining budget; 0 = no deadline
};

/// Worker → front-end. Exactly one of value/failure is meaningful, per `ok`.
/// Failures travel as a Status so the front-end's resilience layer treats a
/// remote breaker/deadline/unavailable exactly like a local one.
struct TranslateResponse {
  uint64_t request_id = 0;
  bool ok = false;
  Translation value;  // when ok
  Status failure;     // when !ok
};

/// Worker catalog: which sources it serves and under which rule-set
/// fingerprint — everything the front-end needs to mint the same 192-bit
/// cache keys the worker uses, keeping the tiers' invalidation aligned.
struct CatalogEntry {
  std::string name;
  uint64_t rule_set_fp = 0;
};

struct CatalogResponse {
  std::vector<CatalogEntry> sources;
};

// Payload codecs (framing is qmap/wire/frame.h). Decoders are total: any
// malformed payload yields an error status, never UB — pinned by the wire
// fuzz tests. A CatalogRequest has an empty payload and no struct.
std::string EncodeTranslateRequest(const TranslateRequest& request);
Result<TranslateRequest> DecodeTranslateRequest(std::string_view payload);

std::string EncodeTranslateResponse(const TranslateResponse& response);
Result<TranslateResponse> DecodeTranslateResponse(std::string_view payload);

std::string EncodeCatalogResponse(const CatalogResponse& response);
Result<CatalogResponse> DecodeCatalogResponse(std::string_view payload);

}  // namespace qmap

#endif  // QMAP_WIRE_MESSAGES_H_
