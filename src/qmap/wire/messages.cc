#include "qmap/wire/messages.h"

#include <utility>

#include "qmap/wire/codec.h"

namespace qmap {

std::string EncodeTranslateRequest(const TranslateRequest& request) {
  std::string out;
  PutU64(&out, request.request_id);
  PutStr(&out, request.source);
  PutStr(&out, request.query_text);
  PutU32(&out, request.deadline_ms);
  return out;
}

Result<TranslateRequest> DecodeTranslateRequest(std::string_view payload) {
  PayloadReader r(payload);
  TranslateRequest request;
  std::string_view source;
  std::string_view query_text;
  if (!r.ReadU64(&request.request_id) || !r.ReadStr(&source) ||
      !r.ReadStr(&query_text) || !r.ReadU32(&request.deadline_ms) ||
      !r.AtEnd()) {
    return Status::ParseError("wire: malformed TranslateRequest");
  }
  request.source = std::string(source);
  request.query_text = std::string(query_text);
  return request;
}

std::string EncodeTranslateResponse(const TranslateResponse& response) {
  std::string out;
  PutU64(&out, response.request_id);
  PutU8(&out, response.ok ? 1 : 0);
  if (response.ok) {
    EncodeTranslationBody(&out, response.value);
  } else {
    EncodeStatusBody(&out, response.failure);
  }
  return out;
}

Result<TranslateResponse> DecodeTranslateResponse(std::string_view payload) {
  PayloadReader r(payload);
  TranslateResponse response;
  uint8_t ok = 0;
  if (!r.ReadU64(&response.request_id) || !r.ReadU8(&ok) || ok > 1) {
    return Status::ParseError("wire: malformed TranslateResponse");
  }
  response.ok = ok == 1;
  if (response.ok) {
    Result<Translation> value = DecodeTranslationBody(r);
    if (!value.ok() || !r.AtEnd()) {
      return Status::ParseError("wire: malformed TranslateResponse body");
    }
    response.value = std::move(value).value();
  } else {
    if (!DecodeStatusBody(r, &response.failure) || !r.AtEnd()) {
      return Status::ParseError("wire: malformed TranslateResponse status");
    }
  }
  return response;
}

std::string EncodeCatalogResponse(const CatalogResponse& response) {
  std::string out;
  PutU32(&out, static_cast<uint32_t>(response.sources.size()));
  for (const CatalogEntry& entry : response.sources) {
    PutStr(&out, entry.name);
    PutU64(&out, entry.rule_set_fp);
  }
  return out;
}

Result<CatalogResponse> DecodeCatalogResponse(std::string_view payload) {
  PayloadReader r(payload);
  uint32_t n = 0;
  if (!r.ReadU32(&n)) {
    return Status::ParseError("wire: malformed CatalogResponse");
  }
  CatalogResponse response;
  response.sources.reserve(std::min<uint32_t>(n, 1024));
  for (uint32_t i = 0; i < n; ++i) {
    std::string_view name;
    uint64_t fp = 0;
    if (!r.ReadStr(&name) || !r.ReadU64(&fp)) {
      return Status::ParseError("wire: malformed CatalogResponse entry");
    }
    response.sources.push_back(CatalogEntry{std::string(name), fp});
  }
  if (!r.AtEnd()) {
    return Status::ParseError("wire: trailing bytes in CatalogResponse");
  }
  return response;
}

}  // namespace qmap
