#ifndef QMAP_WIRE_FRAME_H_
#define QMAP_WIRE_FRAME_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace qmap {

/// Message kinds carried by the qmap wire protocol (see docs/FEDERATION.md).
enum class FrameType : uint8_t {
  kTranslateRequest = 1,
  kTranslateResponse = 2,
  kCatalogRequest = 3,
  kCatalogResponse = 4,
};

/// The qmap RPC frame — the same length-prefixed, FNV-checksummed discipline
/// as the store's record log (qmap/store/record_log.h), with a magic and
/// version so a stray client speaking the wrong protocol (or an old binary)
/// is rejected at the first frame instead of being misparsed:
///
///   "QWIR" magic (4) | u8 version (1) | u8 type | u16 reserved (0)
///   | u32 LE payload length | u64 LE FNV-1a of payload | payload
///
/// A frame is assembled fully before writing, so — like log records — a
/// receiver can only ever observe a clean prefix of frames plus at most one
/// partial tail; DecodeFrame distinguishes "wait for more bytes" from
/// "protocol violation, close the connection".
struct Frame {
  static constexpr char kMagic[4] = {'Q', 'W', 'I', 'R'};
  static constexpr uint8_t kVersion = 1;
  static constexpr size_t kHeaderBytes = 20;
  /// Upper bound on one payload; a bigger length prefix is treated as a
  /// protocol violation (a translate message is a few hundred bytes).
  static constexpr uint32_t kMaxPayloadBytes = 16u << 20;
};

/// Assembles one complete frame around `payload`.
std::string EncodeFrame(FrameType type, std::string_view payload);

enum class FrameDecodeResult {
  kNeedMore,   // `buf` holds only a prefix of a frame; read more
  kFrame,      // one complete, checksum-valid frame decoded
  kMalformed,  // bad magic/version/type/length/checksum; close the peer
};

/// Examines the front of `buf`. On kFrame, *type and *payload describe the
/// first frame (payload aliases buf) and *frame_len is its total size —
/// consume that many bytes before the next call.
FrameDecodeResult DecodeFrame(std::string_view buf, FrameType* type,
                              std::string_view* payload, size_t* frame_len);

}  // namespace qmap

#endif  // QMAP_WIRE_FRAME_H_
