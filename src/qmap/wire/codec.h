#ifndef QMAP_WIRE_CODEC_H_
#define QMAP_WIRE_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "qmap/common/status.h"
#include "qmap/core/translator.h"

namespace qmap {

// ---------------------------------------------------------------------------
// The one binary value encoding shared by the persistent translation store
// and the wire protocol. A Translation serialized here is rebuilt
// byte-identical to the original on the other side — queries round-trip
// through ToParseableText/ParseQuery, coverage through its fingerprint
// entries — which is what makes replay-from-disk and translate-over-the-wire
// indistinguishable from translating locally.
//
//   str        := u32 length | bytes                             -- all LE
//   translation:= str(mapped) str(filter) u32 n  n * (u64 fp, u8 exact)
//   status     := u32 code  str(message)
// ---------------------------------------------------------------------------

void PutU8(std::string* out, uint8_t v);
void PutU16(std::string* out, uint16_t v);
void PutU32(std::string* out, uint32_t v);
void PutU64(std::string* out, uint64_t v);
void PutStr(std::string* out, std::string_view s);

/// Bounds-checked little-endian reader over an encoded payload. Every Read
/// returns false (without advancing past the end) on truncation; decoders
/// built on it therefore reject any malformed input instead of crashing.
class PayloadReader {
 public:
  explicit PayloadReader(std::string_view data) : data_(data) {}

  bool ReadU8(uint8_t* out);
  bool ReadU16(uint16_t* out);
  bool ReadU32(uint32_t* out);
  bool ReadU64(uint64_t* out);
  bool ReadStr(std::string_view* out);
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

/// Appends the translation body (mapped/filter/coverage; stats are
/// per-invocation and never serialized).
void EncodeTranslationBody(std::string* out, const Translation& value);

/// Decodes a translation body in place. Does not require the reader to be
/// at end afterwards (wire messages embed the body mid-payload; the store
/// checks AtEnd itself).
Result<Translation> DecodeTranslationBody(PayloadReader& reader);

/// Appends a status body (code + message).
void EncodeStatusBody(std::string* out, const Status& status);

/// Decodes a status body into *out; rejects out-of-range status codes.
/// (Out-param rather than Result<Status>: Result of its own error type is
/// ill-formed.)
bool DecodeStatusBody(PayloadReader& reader, Status* out);

}  // namespace qmap

#endif  // QMAP_WIRE_CODEC_H_
