#include "qmap/wire/frame.h"

#include <cstring>

#include "qmap/common/fnv.h"
#include "qmap/wire/codec.h"

namespace qmap {

namespace {
bool KnownType(uint8_t type) {
  return type >= static_cast<uint8_t>(FrameType::kTranslateRequest) &&
         type <= static_cast<uint8_t>(FrameType::kCatalogResponse);
}
}  // namespace

std::string EncodeFrame(FrameType type, std::string_view payload) {
  std::string out;
  out.reserve(Frame::kHeaderBytes + payload.size());
  out.append(Frame::kMagic, sizeof(Frame::kMagic));
  PutU8(&out, Frame::kVersion);
  PutU8(&out, static_cast<uint8_t>(type));
  PutU16(&out, 0);  // reserved
  PutU32(&out, static_cast<uint32_t>(payload.size()));
  PutU64(&out, Fnv64Hash(payload));
  out.append(payload);
  return out;
}

FrameDecodeResult DecodeFrame(std::string_view buf, FrameType* type,
                              std::string_view* payload, size_t* frame_len) {
  if (buf.size() < Frame::kHeaderBytes) {
    // Reject a wrong-protocol peer on the very first bytes rather than
    // waiting for a full header that will never come.
    if (std::memcmp(buf.data(), Frame::kMagic,
                    std::min(buf.size(), sizeof(Frame::kMagic))) != 0) {
      return FrameDecodeResult::kMalformed;
    }
    return FrameDecodeResult::kNeedMore;
  }
  if (std::memcmp(buf.data(), Frame::kMagic, sizeof(Frame::kMagic)) != 0) {
    return FrameDecodeResult::kMalformed;
  }
  PayloadReader header(buf.substr(sizeof(Frame::kMagic)));
  uint8_t version = 0;
  uint8_t raw_type = 0;
  uint16_t reserved = 0;
  uint32_t length = 0;
  uint64_t checksum = 0;
  header.ReadU8(&version);
  header.ReadU8(&raw_type);
  header.ReadU16(&reserved);
  header.ReadU32(&length);
  header.ReadU64(&checksum);
  if (version != Frame::kVersion || !KnownType(raw_type) ||
      length > Frame::kMaxPayloadBytes) {
    return FrameDecodeResult::kMalformed;
  }
  const size_t total = Frame::kHeaderBytes + length;
  if (buf.size() < total) return FrameDecodeResult::kNeedMore;
  std::string_view body = buf.substr(Frame::kHeaderBytes, length);
  if (Fnv64Hash(body) != checksum) return FrameDecodeResult::kMalformed;
  *type = static_cast<FrameType>(raw_type);
  *payload = body;
  *frame_len = total;
  return FrameDecodeResult::kFrame;
}

}  // namespace qmap
