#include "qmap/wire/codec.h"

#include <utility>

#include "qmap/expr/parser.h"
#include "qmap/expr/printer.h"

namespace qmap {

void PutU8(std::string* out, uint8_t v) { out->push_back(static_cast<char>(v)); }

void PutU16(std::string* out, uint16_t v) {
  for (int i = 0; i < 2; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutStr(std::string* out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

bool PayloadReader::ReadU8(uint8_t* out) {
  if (pos_ + 1 > data_.size()) return false;
  *out = static_cast<uint8_t>(data_[pos_++]);
  return true;
}

bool PayloadReader::ReadU16(uint16_t* out) {
  if (pos_ + 2 > data_.size()) return false;
  uint16_t v = 0;
  for (int i = 0; i < 2; ++i) {
    v = static_cast<uint16_t>(
        v | static_cast<uint16_t>(static_cast<uint8_t>(data_[pos_ + i]))
                << (8 * i));
  }
  pos_ += 2;
  *out = v;
  return true;
}

bool PayloadReader::ReadU32(uint32_t* out) {
  if (pos_ + 4 > data_.size()) return false;
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 4;
  *out = v;
  return true;
}

bool PayloadReader::ReadU64(uint64_t* out) {
  if (pos_ + 8 > data_.size()) return false;
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 8;
  *out = v;
  return true;
}

bool PayloadReader::ReadStr(std::string_view* out) {
  uint32_t len = 0;
  if (!ReadU32(&len) || pos_ + len > data_.size()) return false;
  *out = data_.substr(pos_, len);
  pos_ += len;
  return true;
}

void EncodeTranslationBody(std::string* out, const Translation& value) {
  PutStr(out, ToParseableText(value.mapped));
  PutStr(out, ToParseableText(value.filter));
  const auto entries = value.coverage.Entries();
  PutU32(out, static_cast<uint32_t>(entries.size()));
  for (const auto& [fp, exact] : entries) {
    PutU64(out, fp);
    PutU8(out, exact ? 1 : 0);
  }
}

Result<Translation> DecodeTranslationBody(PayloadReader& reader) {
  std::string_view mapped_text;
  std::string_view filter_text;
  uint32_t n = 0;
  if (!reader.ReadStr(&mapped_text) || !reader.ReadStr(&filter_text) ||
      !reader.ReadU32(&n)) {
    return Status::Internal("translation body: truncated");
  }
  Translation value;
  Result<Query> mapped = ParseQuery(mapped_text);
  if (!mapped.ok()) return mapped.status();
  Result<Query> filter = ParseQuery(filter_text);
  if (!filter.ok()) return filter.status();
  value.mapped = std::move(mapped).value();
  value.filter = std::move(filter).value();
  for (uint32_t i = 0; i < n; ++i) {
    uint64_t fp = 0;
    uint8_t exact = 0;
    if (!reader.ReadU64(&fp) || !reader.ReadU8(&exact)) {
      return Status::Internal("translation body: malformed coverage entry");
    }
    value.coverage.RestoreEntry(fp, exact != 0);
  }
  return Result<Translation>(std::move(value));
}

void EncodeStatusBody(std::string* out, const Status& status) {
  PutU32(out, static_cast<uint32_t>(status.code()));
  PutStr(out, status.message());
}

bool DecodeStatusBody(PayloadReader& reader, Status* out) {
  uint32_t code = 0;
  std::string_view message;
  if (!reader.ReadU32(&code) || !reader.ReadStr(&message) ||
      code > static_cast<uint32_t>(StatusCode::kCancelled)) {
    return false;
  }
  *out = Status(static_cast<StatusCode>(code), std::string(message));
  return true;
}

}  // namespace qmap
