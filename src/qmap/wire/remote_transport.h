#ifndef QMAP_WIRE_REMOTE_TRANSPORT_H_
#define QMAP_WIRE_REMOTE_TRANSPORT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "qmap/service/source_transport.h"
#include "qmap/wire/wire_client.h"

namespace qmap {

class Counter;
class Histogram;
class MetricsRegistry;

struct RemoteTransportOptions {
  /// Per-call deadline when the caller's CancelToken carries no budget.
  uint32_t default_deadline_ms = 5000;
  /// Clock the caller's deadline budgets are minted under (the service's
  /// resilience clock); null uses the process steady clock. Must outlive
  /// the transport.
  ResilienceClock* clock = nullptr;
  /// When set, registers/updates qmap_rpc_calls_total,
  /// qmap_rpc_failures_total and qmap_rpc_latency_us. Must outlive the
  /// transport.
  MetricsRegistry* metrics = nullptr;
};

/// A SourceTransport whose translation runs on a shard worker reached over
/// the qmap wire protocol. The query travels as ToParseableText and the
/// worker's translation comes back through the shared body codec, so the
/// result is byte-identical to translating in-process against the same rule
/// set. Worker failures — connection refused, worker died mid-call,
/// deadline expiry — surface as Unavailable / DeadlineExceeded, the same
/// vocabulary a tripped breaker uses, so the front-end's resilience layer
/// degrades around a dead worker exactly like around a sick local source.
///
/// Thread-safe: the fan-out calls Translate concurrently (the WireClient
/// pools one connection per concurrent call).
class RemoteTransport : public SourceTransport {
 public:
  /// `source` is the name the worker registered; `endpoint` is
  /// "host:port". The client is shared so all remote sources in a process
  /// reuse one connection pool.
  RemoteTransport(std::string source, std::string endpoint,
                  std::shared_ptr<WireClient> client,
                  RemoteTransportOptions options = {});

  Result<Translation> Translate(const Query& full, Trace* trace,
                                uint64_t parent_span, MatchMemo* memo,
                                const CancelToken* cancel) override;

  std::string endpoint() const override { return endpoint_; }
  const std::string& source() const { return source_; }

 private:
  const std::string source_;
  const std::string endpoint_;
  const std::shared_ptr<WireClient> client_;
  const RemoteTransportOptions options_;
  std::atomic<uint64_t> next_request_id_{1};
  Counter* calls_counter_ = nullptr;
  Counter* failures_counter_ = nullptr;
  Histogram* latency_hist_ = nullptr;
};

}  // namespace qmap

#endif  // QMAP_WIRE_REMOTE_TRANSPORT_H_
