#include "qmap/wire/remote_transport.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "qmap/expr/printer.h"
#include "qmap/obs/metrics.h"
#include "qmap/obs/trace.h"
#include "qmap/wire/messages.h"

namespace qmap {

RemoteTransport::RemoteTransport(std::string source, std::string endpoint,
                                 std::shared_ptr<WireClient> client,
                                 RemoteTransportOptions options)
    : source_(std::move(source)),
      endpoint_(std::move(endpoint)),
      client_(std::move(client)),
      options_(options) {
  if (options_.metrics != nullptr) {
    calls_counter_ = &options_.metrics->counter(
        "qmap_rpc_calls_total", "Remote translate calls issued.");
    failures_counter_ = &options_.metrics->counter(
        "qmap_rpc_failures_total",
        "Remote translate calls that returned a non-ok status.");
    latency_hist_ = &options_.metrics->histogram(
        "qmap_rpc_latency_us", "Remote translate round-trip in microseconds.");
  }
}

Result<Translation> RemoteTransport::Translate(const Query& full, Trace* trace,
                                               uint64_t parent_span,
                                               MatchMemo* memo,
                                               const CancelToken* cancel) {
  (void)memo;  // rule matching memoizes on the worker, not here
  Span rpc_span(trace, "rpc.translate", parent_span);
  if (rpc_span.enabled()) {
    rpc_span.AddAttr("source", source_);
    rpc_span.AddAttr("endpoint", endpoint_);
  }
  if (calls_counter_ != nullptr) calls_counter_->Inc();

  TranslateRequest request;
  request.request_id =
      next_request_id_.fetch_add(1, std::memory_order_relaxed);
  request.source = source_;
  request.query_text = ToParseableText(full);
  request.deadline_ms = options_.default_deadline_ms;
  if (cancel != nullptr && cancel->budget.bounded()) {
    ResilienceClock& clock = options_.clock != nullptr
                                 ? *options_.clock
                                 : DefaultResilienceClock();
    const uint64_t remaining_us = cancel->budget.remaining_us(clock.NowUs());
    if (remaining_us == 0) {
      if (failures_counter_ != nullptr) failures_counter_->Inc();
      return Status::DeadlineExceeded("rpc " + source_ +
                                      ": budget exhausted before send");
    }
    // Round up so a sub-millisecond remainder still reaches the wire as a
    // positive deadline instead of "unbounded" (0).
    request.deadline_ms = static_cast<uint32_t>(
        std::min<uint64_t>((remaining_us + 999) / 1000, UINT32_MAX));
  }

  const auto wall_start = std::chrono::steady_clock::now();
  Result<std::pair<FrameType, std::string>> reply =
      client_->Call(endpoint_, FrameType::kTranslateRequest,
                    EncodeTranslateRequest(request), request.deadline_ms);
  if (latency_hist_ != nullptr) {
    latency_hist_->Record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - wall_start)
            .count()));
  }
  if (!reply.ok()) {
    if (failures_counter_ != nullptr) failures_counter_->Inc();
    if (rpc_span.enabled()) rpc_span.AddAttr("error", reply.status().message());
    return reply.status();
  }
  if (reply->first != FrameType::kTranslateResponse) {
    if (failures_counter_ != nullptr) failures_counter_->Inc();
    return Status::Internal("rpc " + source_ +
                            ": unexpected response frame type");
  }
  Result<TranslateResponse> response = DecodeTranslateResponse(reply->second);
  if (!response.ok()) {
    if (failures_counter_ != nullptr) failures_counter_->Inc();
    return Status::Internal("rpc " + source_ + ": " +
                            response.status().message());
  }
  if (response->request_id != request.request_id) {
    // Connections carry one call at a time, so a mismatched id means the
    // pooled connection desynchronized — treat it like a protocol error.
    if (failures_counter_ != nullptr) failures_counter_->Inc();
    return Status::Internal("rpc " + source_ + ": response id mismatch");
  }
  if (!response->ok) {
    if (failures_counter_ != nullptr) failures_counter_->Inc();
    if (rpc_span.enabled()) {
      rpc_span.AddAttr("error", response->failure.message());
    }
    return response->failure;
  }
  return std::move(response->value);
}

}  // namespace qmap
