#ifndef QMAP_WIRE_QMAP_SERVER_H_
#define QMAP_WIRE_QMAP_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "qmap/common/status.h"
#include "qmap/net/event_loop.h"
#include "qmap/net/tcp_listener.h"
#include "qmap/service/thread_pool.h"
#include "qmap/service/translation_service.h"
#include "qmap/wire/frame.h"

namespace qmap {

class Counter;
class MetricsRegistry;

struct QmapServerOptions {
  std::string bind_address = "127.0.0.1";
  int port = 0;  // 0 picks an ephemeral port (see port())
  /// Concurrent connection bound; excess peers are accepted and closed
  /// (the kernel backlog bounds the rest).
  int max_connections = 64;
  int poll_interval_ms = 20;
  /// A connection idle this long (no request in flight, no bytes arriving)
  /// is dropped.
  int idle_timeout_ms = 30000;
  /// Admission control: translate requests running or queued on the worker
  /// pool. A request arriving at the bound is answered immediately with
  /// Unavailable rather than queued without limit.
  int max_in_flight = 64;
  /// Per-connection token bucket: sustained requests/second (0 = no quota)
  /// with `quota_burst` of headroom. Requests past the bucket are answered
  /// with Unavailable, not dropped.
  double quota_tokens_per_sec = 0;
  double quota_burst = 32;
  /// Backpressure: with this many responses not yet handed to the kernel
  /// for one connection, its reads pause — the peer's TCP window, not our
  /// memory, absorbs an unbounded pipeline.
  size_t max_pending_per_conn = 4;
  /// Worker threads executing translations (the service may run its own
  /// fan-out pool below this one).
  int num_threads = 4;
  /// Drain(): how long to wait for in-flight requests before stopping.
  int drain_timeout_ms = 5000;
  /// When set, exports qmap_net_* counters for this server. Must outlive
  /// the server.
  MetricsRegistry* metrics = nullptr;
};

struct QmapServerStats {
  uint64_t requests = 0;           // translate requests decoded
  uint64_t responses_ok = 0;
  uint64_t responses_error = 0;    // responses carrying a Status
  uint64_t rejected_overload = 0;  // admission-control rejections
  uint64_t rejected_quota = 0;     // token-bucket rejections
  uint64_t malformed_frames = 0;   // connections dropped on protocol errors
  uint64_t catalog_requests = 0;
  uint64_t reloads = 0;            // SetService swaps after Start
  EventLoopStats net;
};

/// The wire-protocol front door of a federation worker (and of a front-end
/// exposing its merged catalog): length-prefixed translate/catalog frames
/// over the shared EventLoop, translations executed on a worker pool, and
/// the three overload levers every long-lived server needs — admission
/// control, per-client quotas, and read backpressure.
///
/// The TranslationService behind it is hot-swappable: SetService atomically
/// replaces the shared pointer (SIGHUP/admin-triggered reload), in-flight
/// requests finish on the service they started with, new requests see the
/// new one. Drain() is the graceful half of SIGTERM: stop accepting, let
/// in-flight requests finish under a deadline, then stop the loop.
class QmapServer : private ConnHandler {
 public:
  explicit QmapServer(QmapServerOptions options = {});
  ~QmapServer() override;

  /// Swaps the service serving new requests. Thread-safe, callable before
  /// Start (required: Start with no service fails) and while running.
  void SetService(std::shared_ptr<TranslationService> service);
  std::shared_ptr<TranslationService> service() const;

  Status Start();
  /// Hard stop: drops connections, joins the loop. Idempotent.
  void Stop();
  /// Graceful drain: stops accepting, waits for in-flight requests (bounded
  /// by options.drain_timeout_ms plus one tick for final flushes), then
  /// stops. Safe to call from a signal-triggered thread or admin handler.
  void Drain();

  bool running() const { return loop_.running(); }
  int port() const { return port_; }
  QmapServerStats stats() const;

 private:
  /// Per-connection quota/backpressure state, owned via Conn::user_data.
  struct ConnState {
    double tokens = 0;
    std::chrono::steady_clock::time_point last_refill;
    size_t pending = 0;  // requests in flight or responses not yet written
  };

  void OnAccept(Conn& conn) override;
  void OnData(Conn& conn) override;
  void OnClose(Conn& conn) override;

  void HandleTranslate(Conn& conn, std::string_view payload);
  void HandleCatalog(Conn& conn);
  /// Writes one response frame and re-arms the idle deadline. Loop thread.
  void Reply(Conn& conn, FrameType type, std::string_view payload);
  /// True when the bucket has a token (consuming it); refills lazily.
  bool TakeQuotaToken(ConnState& state);

  const QmapServerOptions options_;
  TcpListener listener_;
  EventLoop loop_;
  ThreadPool pool_;
  int port_ = 0;

  mutable std::mutex service_mu_;
  std::shared_ptr<TranslationService> service_;  // guarded by service_mu_

  std::atomic<int> in_flight_{0};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> responses_ok_{0};
  std::atomic<uint64_t> responses_error_{0};
  std::atomic<uint64_t> rejected_overload_{0};
  std::atomic<uint64_t> rejected_quota_{0};
  std::atomic<uint64_t> malformed_frames_{0};
  std::atomic<uint64_t> catalog_requests_{0};
  std::atomic<uint64_t> reloads_{0};
};

}  // namespace qmap

#endif  // QMAP_WIRE_QMAP_SERVER_H_
