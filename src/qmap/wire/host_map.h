#ifndef QMAP_WIRE_HOST_MAP_H_
#define QMAP_WIRE_HOST_MAP_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "qmap/common/status.h"

namespace qmap {

/// The static source → worker assignment a federation front-end runs with:
/// every source name maps to exactly one worker endpoint ("host:port").
/// Deliberately static — the paper's federation is a fixed set of sources,
/// and a deterministic map keeps "which worker answers for source X"
/// reproducible across front-end restarts (no rebalancing, no surprises in
/// the partial-result composition when a worker dies).
class HostMap {
 public:
  /// Assigns `source` to `endpoint`; the last assignment wins.
  void Assign(std::string source, std::string endpoint);

  /// The endpoint serving `source`, or null when unassigned (the front-end
  /// then treats the source as local).
  const std::string* EndpointFor(std::string_view source) const;

  /// Deterministic round-robin sharding of `sources` (in the given order)
  /// across `workers`: source i goes to worker i % N.
  static HostMap StaticShard(const std::vector<std::string>& sources,
                             const std::vector<std::string>& workers);

  /// Parses "source=host:port" lines ('#' comments and blank lines
  /// ignored). Rejects duplicate sources and malformed lines.
  static Result<HostMap> Parse(std::string_view text);

  /// All assignments, sorted by source name.
  std::vector<std::pair<std::string, std::string>> entries() const;

  size_t size() const { return assignments_.size(); }
  bool empty() const { return assignments_.empty(); }

 private:
  std::map<std::string, std::string, std::less<>> assignments_;
};

}  // namespace qmap

#endif  // QMAP_WIRE_HOST_MAP_H_
