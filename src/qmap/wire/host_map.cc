#include "qmap/wire/host_map.h"

#include <utility>

namespace qmap {
namespace {

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t' ||
                        s.front() == '\r')) {
    s.remove_prefix(1);
  }
  while (!s.empty() &&
         (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

void HostMap::Assign(std::string source, std::string endpoint) {
  assignments_[std::move(source)] = std::move(endpoint);
}

const std::string* HostMap::EndpointFor(std::string_view source) const {
  auto it = assignments_.find(source);
  return it == assignments_.end() ? nullptr : &it->second;
}

HostMap HostMap::StaticShard(const std::vector<std::string>& sources,
                             const std::vector<std::string>& workers) {
  HostMap map;
  if (workers.empty()) return map;
  for (size_t i = 0; i < sources.size(); ++i) {
    map.Assign(sources[i], workers[i % workers.size()]);
  }
  return map;
}

Result<HostMap> HostMap::Parse(std::string_view text) {
  HostMap map;
  size_t line_no = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t eol = text.find('\n', pos);
    std::string_view line =
        text.substr(pos, eol == std::string_view::npos ? text.size() - pos
                                                       : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    line_no += 1;
    line = Trim(line);
    if (line.empty() || line.front() == '#') continue;
    size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      return Status::ParseError("host map line " + std::to_string(line_no) +
                                ": expected source=host:port");
    }
    std::string_view source = Trim(line.substr(0, eq));
    std::string_view endpoint = Trim(line.substr(eq + 1));
    if (source.empty() || endpoint.empty()) {
      return Status::ParseError("host map line " + std::to_string(line_no) +
                                ": empty source or endpoint");
    }
    if (map.EndpointFor(source) != nullptr) {
      return Status::ParseError("host map line " + std::to_string(line_no) +
                                ": duplicate source '" + std::string(source) +
                                "'");
    }
    map.Assign(std::string(source), std::string(endpoint));
  }
  return map;
}

std::vector<std::pair<std::string, std::string>> HostMap::entries() const {
  return std::vector<std::pair<std::string, std::string>>(
      assignments_.begin(), assignments_.end());
}

}  // namespace qmap
