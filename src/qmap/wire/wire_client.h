#ifndef QMAP_WIRE_WIRE_CLIENT_H_
#define QMAP_WIRE_WIRE_CLIENT_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "qmap/common/status.h"
#include "qmap/wire/frame.h"

namespace qmap {

struct WireClientOptions {
  /// Bound on establishing one TCP connection.
  int connect_timeout_ms = 2000;
  /// Default bound on one whole Call (send + response) when the caller
  /// passes no per-call deadline.
  int io_timeout_ms = 5000;
  /// Idle connections kept per endpoint for reuse. 0 disables pooling
  /// (every call dials fresh).
  size_t max_idle_per_endpoint = 4;
};

struct WireClientStats {
  uint64_t calls = 0;
  uint64_t connects = 0;        // fresh TCP connections dialed
  uint64_t reuses = 0;          // calls served over a pooled connection
  uint64_t retries = 0;         // stale-pooled-connection retries
  uint64_t failures = 0;        // calls that returned a non-ok status
};

/// A blocking, thread-safe client for the qmap wire protocol: one request
/// frame out, one response frame back, over a pooled TCP connection per
/// endpoint ("host:port"). Failure vocabulary is the resilience layer's:
/// connect/send/receive errors surface as Unavailable, deadline expiry as
/// DeadlineExceeded, protocol violations as Internal — so a RemoteTransport
/// built on this degrades exactly like any other guarded source.
///
/// Pooled connections can go stale (the worker restarted, an idle timeout
/// fired). A call that fails on a *pooled* connection before reading any
/// response byte is retried once on a freshly dialed connection; a fresh
/// connection failing, or any failure after response bytes arrived, is
/// reported as-is (the request may have executed — retrying is the caller's
/// policy, and translation is idempotent anyway).
class WireClient {
 public:
  explicit WireClient(WireClientOptions options = {});
  ~WireClient();
  WireClient(const WireClient&) = delete;
  WireClient& operator=(const WireClient&) = delete;

  /// Sends one `type` frame carrying `payload` to `endpoint` and reads one
  /// response frame. `deadline_ms` bounds the whole call (0 = use
  /// options.io_timeout_ms).
  Result<std::pair<FrameType, std::string>> Call(const std::string& endpoint,
                                                 FrameType type,
                                                 std::string_view payload,
                                                 uint32_t deadline_ms = 0);

  /// Closes every pooled idle connection (e.g. after a known worker
  /// restart). In-flight calls are unaffected.
  void CloseIdle();

  WireClientStats stats() const;

 private:
  /// One call attempt over `fd`. Sets *got_bytes when any response byte was
  /// read (the attempt is then non-retryable).
  Result<std::pair<FrameType, std::string>> CallOn(int fd, FrameType type,
                                                   std::string_view payload,
                                                   uint32_t deadline_ms,
                                                   bool* got_bytes);
  /// Dials `endpoint` ("host:port", numeric host) within connect_timeout_ms.
  Result<int> Connect(const std::string& endpoint);
  /// Pops a pooled idle fd for `endpoint`, or -1.
  int PopIdle(const std::string& endpoint);
  void PushIdle(const std::string& endpoint, int fd);

  const WireClientOptions options_;
  std::mutex mu_;
  std::map<std::string, std::vector<int>> idle_;  // guarded by mu_
  mutable std::mutex stats_mu_;
  WireClientStats stats_;  // guarded by stats_mu_
};

}  // namespace qmap

#endif  // QMAP_WIRE_WIRE_CLIENT_H_
