#include "qmap/wire/wire_client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "qmap/net/net_util.h"

namespace qmap {
namespace {

using Clock = std::chrono::steady_clock;

int RemainingMs(Clock::time_point deadline) {
  auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - Clock::now());
  return static_cast<int>(std::max<int64_t>(0, left.count()));
}

/// Splits "host:port" (numeric IPv4 host). Returns false on any other shape.
bool ParseEndpoint(const std::string& endpoint, std::string* host,
                   uint16_t* port) {
  size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= endpoint.size()) {
    return false;
  }
  *host = endpoint.substr(0, colon);
  uint32_t value = 0;
  for (size_t i = colon + 1; i < endpoint.size(); ++i) {
    char c = endpoint[i];
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint32_t>(c - '0');
    if (value > 65535) return false;
  }
  *port = static_cast<uint16_t>(value);
  return *port != 0;
}

}  // namespace

WireClient::WireClient(WireClientOptions options) : options_(options) {
  IgnoreSigpipe();
}

WireClient::~WireClient() { CloseIdle(); }

void WireClient::CloseIdle() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [endpoint, fds] : idle_) {
    for (int fd : fds) ::close(fd);
    fds.clear();
  }
}

WireClientStats WireClient::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

int WireClient::PopIdle(const std::string& endpoint) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = idle_.find(endpoint);
  if (it == idle_.end() || it->second.empty()) return -1;
  int fd = it->second.back();
  it->second.pop_back();
  return fd;
}

void WireClient::PushIdle(const std::string& endpoint, int fd) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<int>& fds = idle_[endpoint];
    if (fds.size() < options_.max_idle_per_endpoint) {
      fds.push_back(fd);
      return;
    }
  }
  ::close(fd);
}

Result<int> WireClient::Connect(const std::string& endpoint) {
  std::string host;
  uint16_t port = 0;
  if (!ParseEndpoint(endpoint, &host, &port)) {
    return Status::InvalidArgument("wire client: bad endpoint '" + endpoint +
                                   "' (want host:port)");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("wire client: bad host '" + host + "'");
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("wire client: socket: ") +
                            std::strerror(errno));
  }
  // Non-blocking connect bounded by connect_timeout_ms, then back to
  // blocking I/O (per-call deadlines are enforced with poll() in CallOn).
  SetNonBlockingFd(fd);
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    ::close(fd);
    return Status::Unavailable("wire client: connect " + endpoint + ": " +
                               std::strerror(errno));
  }
  if (rc != 0) {
    pollfd pfd{fd, POLLOUT, 0};
    int ready = ::poll(&pfd, 1, options_.connect_timeout_ms);
    int err = 0;
    socklen_t len = sizeof(err);
    if (ready <= 0 ||
        ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      ::close(fd);
      return ready == 0 ? Status::DeadlineExceeded(
                              "wire client: connect " + endpoint + " timed out")
                        : Status::Unavailable("wire client: connect " +
                                              endpoint + ": " +
                                              std::strerror(err != 0 ? err
                                                                     : errno));
    }
  }
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK);
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.connects += 1;
  }
  return fd;
}

Result<std::pair<FrameType, std::string>> WireClient::CallOn(
    int fd, FrameType type, std::string_view payload, uint32_t deadline_ms,
    bool* got_bytes) {
  *got_bytes = false;
  const auto deadline = Clock::now() + std::chrono::milliseconds(deadline_ms);
  const std::string frame = EncodeFrame(type, payload);

  size_t sent = 0;
  while (sent < frame.size()) {
    pollfd pfd{fd, POLLOUT, 0};
    int ready = ::poll(&pfd, 1, RemainingMs(deadline));
    if (ready == 0) {
      return Status::DeadlineExceeded("wire client: send timed out");
    }
    if (ready < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(std::string("wire client: poll: ") +
                                 std::strerror(errno));
    }
    ssize_t n = ::send(fd, frame.data() + sent, frame.size() - sent,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(std::string("wire client: send: ") +
                                 std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }

  std::string buf;
  char chunk[4096];
  for (;;) {
    FrameType response_type;
    std::string_view response_payload;
    size_t frame_len = 0;
    switch (DecodeFrame(buf, &response_type, &response_payload, &frame_len)) {
      case FrameDecodeResult::kFrame:
        return std::make_pair(response_type, std::string(response_payload));
      case FrameDecodeResult::kMalformed:
        return Status::Internal("wire client: malformed response frame");
      case FrameDecodeResult::kNeedMore:
        break;
    }
    pollfd pfd{fd, POLLIN, 0};
    int ready = ::poll(&pfd, 1, RemainingMs(deadline));
    if (ready == 0) {
      return Status::DeadlineExceeded("wire client: response timed out");
    }
    if (ready < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(std::string("wire client: poll: ") +
                                 std::strerror(errno));
    }
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n == 0) {
      return Status::Unavailable("wire client: connection closed by peer");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(std::string("wire client: recv: ") +
                                 std::strerror(errno));
    }
    buf.append(chunk, static_cast<size_t>(n));
    *got_bytes = true;
  }
}

Result<std::pair<FrameType, std::string>> WireClient::Call(
    const std::string& endpoint, FrameType type, std::string_view payload,
    uint32_t deadline_ms) {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.calls += 1;
  }
  if (deadline_ms == 0) {
    deadline_ms = static_cast<uint32_t>(std::max(1, options_.io_timeout_ms));
  }
  const auto fail = [this](Result<std::pair<FrameType, std::string>> result) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.failures += 1;
    return result;
  };

  bool pooled = true;
  int fd = PopIdle(endpoint);
  if (fd < 0) {
    pooled = false;
    Result<int> fresh = Connect(endpoint);
    if (!fresh.ok()) return fail(fresh.status());
    fd = *fresh;
  } else {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.reuses += 1;
  }

  bool got_bytes = false;
  Result<std::pair<FrameType, std::string>> result =
      CallOn(fd, type, payload, deadline_ms, &got_bytes);
  if (result.ok()) {
    PushIdle(endpoint, fd);
    return result;
  }
  ::close(fd);
  // A pooled connection that died before yielding any response byte is the
  // classic stale-idle case (worker restarted, server idle-timeout); one
  // fresh dial retries it safely — the request cannot have been observed.
  if (!pooled || got_bytes ||
      result.status().code() == StatusCode::kDeadlineExceeded) {
    return fail(std::move(result));
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.retries += 1;
  }
  Result<int> fresh = Connect(endpoint);
  if (!fresh.ok()) return fail(fresh.status());
  fd = *fresh;
  result = CallOn(fd, type, payload, deadline_ms, &got_bytes);
  if (result.ok()) {
    PushIdle(endpoint, fd);
    return result;
  }
  ::close(fd);
  return fail(std::move(result));
}

}  // namespace qmap
