// A federation front-end: discovers each worker's sources by fetching its
// catalog over the wire protocol, registers them behind RemoteTransports,
// and scatter/gathers a seeded random workload across the shards. With
// resilience enabled, a worker dying mid-run degrades to partial results —
// the same composition a tripped breaker produces — instead of failing.
//
//   ./federation_frontend --workers=127.0.0.1:7101,127.0.0.1:7102
//       --queries=40 --interval-ms=100
//
// Prints one line per query ("q7: complete sources=4" / "q12: partial
// failed=S1,S3") plus a final summary; exits 0 when every query was
// answered (complete or partial). The CI federation-smoke job kills one
// worker mid-run and asserts both kinds of line appear.

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <chrono>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "qmap/contexts/synthetic.h"
#include "qmap/obs/metrics.h"
#include "qmap/service/translation_service.h"
#include "qmap/wire/messages.h"
#include "qmap/wire/remote_transport.h"
#include "qmap/wire/wire_client.h"

namespace {

int ParseIntFlag(const char* arg, const char* name, int fallback) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return fallback;
  return std::atoi(arg + len + 1);
}

std::string ParseStringFlag(const char* arg, const char* name,
                            std::string fallback) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return fallback;
  return std::string(arg + len + 1);
}

std::vector<std::string> SplitCommas(const std::string& text) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= text.size()) {
    size_t comma = text.find(',', start);
    if (comma == std::string::npos) comma = text.size();
    if (comma > start) out.push_back(text.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string workers_flag;
  int queries = 20;
  int interval_ms = 50;
  int admin_port = -1;  // -1 = no admin plane
  for (int i = 1; i < argc; ++i) {
    workers_flag = ParseStringFlag(argv[i], "--workers", workers_flag);
    queries = ParseIntFlag(argv[i], "--queries", queries);
    interval_ms = ParseIntFlag(argv[i], "--interval-ms", interval_ms);
    admin_port = ParseIntFlag(argv[i], "--admin-port", admin_port);
  }
  const std::vector<std::string> workers = SplitCommas(workers_flag);
  if (workers.empty()) {
    std::fprintf(stderr,
                 "usage: federation_frontend --workers=host:port[,host:port...]"
                 " [--queries=N] [--interval-ms=MS] [--admin-port=P]\n");
    return 2;
  }

  qmap::MetricsRegistry registry;
  qmap::ServiceOptions options;
  options.num_threads = 4;
  options.obs.metrics = &registry;
  options.resilience.enabled = true;  // dead worker => partial, not failure
  options.resilience.retry.max_attempts = 2;
  qmap::TranslationService frontend(options);

  // Scatter plan: each worker's advertised catalog, behind one shared
  // connection pool. The worker's rule-set fingerprints keep the
  // front-end's cache keys aligned with the shard's.
  auto client = std::make_shared<qmap::WireClient>();
  qmap::RemoteTransportOptions transport_options;
  transport_options.metrics = &registry;
  for (const std::string& endpoint : workers) {
    auto reply =
        client->Call(endpoint, qmap::FrameType::kCatalogRequest, "");
    if (!reply.ok()) {
      std::fprintf(stderr, "catalog fetch from %s: %s\n", endpoint.c_str(),
                   reply.status().ToString().c_str());
      return 1;
    }
    auto catalog = qmap::DecodeCatalogResponse(reply->second);
    if (!catalog.ok()) {
      std::fprintf(stderr, "catalog decode from %s: %s\n", endpoint.c_str(),
                   catalog.status().ToString().c_str());
      return 1;
    }
    for (const qmap::CatalogEntry& entry : catalog->sources) {
      frontend.AddRemoteSource(
          entry.name, entry.rule_set_fp,
          std::make_shared<qmap::RemoteTransport>(entry.name, endpoint, client,
                                                  transport_options));
      std::printf("source %s -> %s (rule set %016llx)\n", entry.name.c_str(),
                  endpoint.c_str(),
                  static_cast<unsigned long long>(entry.rule_set_fp));
    }
  }
  if (frontend.num_sources() == 0) {
    std::fprintf(stderr, "no sources advertised by any worker\n");
    return 1;
  }
  if (admin_port >= 0) {
    qmap::AdminOptions admin;
    admin.http.port = static_cast<uint16_t>(admin_port);
    qmap::Status started = frontend.StartAdmin(admin);
    if (!started.ok()) {
      std::fprintf(stderr, "StartAdmin: %s\n", started.ToString().c_str());
      return 1;
    }
    std::printf("admin http://127.0.0.1:%u\n",
                frontend.admin_server()->port());
  }
  std::printf("frontend serving %zu sources from %zu workers\n",
              frontend.num_sources(), workers.size());
  std::fflush(stdout);

  std::mt19937 rng(20260808);
  qmap::RandomQueryOptions query_options;
  query_options.num_attrs = 8;
  query_options.max_depth = 3;

  int complete = 0, partial = 0, failed = 0;
  for (int i = 0; i < queries; ++i) {
    const qmap::Query query = qmap::RandomQuery(rng, query_options);
    qmap::Result<qmap::MediatorTranslation> result = frontend.Translate(query);
    if (!result.ok()) {
      ++failed;
      std::printf("q%d: failed (%s)\n", i, result.status().ToString().c_str());
    } else if (result->partial.complete()) {
      ++complete;
      std::printf("q%d: complete sources=%zu\n", i,
                  result->per_source.size());
    } else {
      ++partial;
      std::string names;
      for (const auto& failure : result->partial.failed) {
        if (!names.empty()) names += ",";
        names += failure.source;
      }
      std::printf("q%d: partial failed=%s\n", i, names.c_str());
    }
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
  std::printf("done: %d complete, %d partial, %d failed\n", complete, partial,
              failed);
  return failed == 0 ? 0 : 1;
}
