// A federation shard worker: serves its share of the synthetic catalog over
// the qmap wire protocol, with the admin plane on a second port. The CI
// federation-smoke job drives two of these behind a federation_frontend.
//
//   ./federation_worker --port=7101 --shard=0 --num-shards=2
//
// Signals mirror production habits: SIGHUP hot-reloads the service behind
// the running server (in-flight requests finish on the old one), SIGTERM
// drains — stop accepting, finish in-flight work, then exit cleanly. The
// same drain runs when the admin /drainz endpoint is hit.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "qmap/contexts/synthetic.h"
#include "qmap/obs/metrics.h"
#include "qmap/service/translation_service.h"
#include "qmap/wire/qmap_server.h"

namespace {

std::atomic<int> g_signal{0};
void OnSignal(int sig) { g_signal.store(sig); }

int ParseIntFlag(const char* arg, const char* name, int fallback) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return fallback;
  return std::atoi(arg + len + 1);
}

/// The fixed four-source synthetic catalog every federation example shares;
/// worker `shard` serves sources i with i % num_shards == shard.
std::vector<std::pair<std::string, qmap::MappingSpec>> ShardCatalog(
    int shard, int num_shards) {
  std::vector<std::pair<std::string, qmap::MappingSpec>> out;
  qmap::SyntheticOptions base;
  base.num_attrs = 8;
  const std::vector<std::vector<std::pair<int, int>>> pair_sets = {
      {}, {{0, 1}}, {{2, 3}, {4, 5}}, {{0, 2}, {1, 3}, {4, 6}}};
  for (size_t i = 0; i < pair_sets.size(); ++i) {
    if (num_shards > 0 && static_cast<int>(i % num_shards) != shard) continue;
    qmap::SyntheticOptions options = base;
    options.dependent_pairs = pair_sets[i];
    qmap::Result<qmap::MappingSpec> spec = qmap::MakeSyntheticSpec(options);
    if (!spec.ok()) {
      std::fprintf(stderr, "spec S%zu: %s\n", i, spec.status().ToString().c_str());
      std::exit(1);
    }
    out.emplace_back("S" + std::to_string(i), *spec);
  }
  return out;
}

std::shared_ptr<qmap::TranslationService> BuildService(
    int shard, int num_shards, qmap::MetricsRegistry* registry) {
  qmap::ServiceOptions options;
  options.num_threads = 2;
  options.obs.metrics = registry;
  auto service = std::make_shared<qmap::TranslationService>(options);
  for (auto& [name, spec] : ShardCatalog(shard, num_shards)) {
    service->AddSource(name, std::move(spec));
  }
  return service;
}

}  // namespace

int main(int argc, char** argv) {
  int port = 0;
  int admin_port = 0;
  int shard = 0;
  int num_shards = 1;
  int duration_s = 600;
  for (int i = 1; i < argc; ++i) {
    port = ParseIntFlag(argv[i], "--port", port);
    admin_port = ParseIntFlag(argv[i], "--admin-port", admin_port);
    shard = ParseIntFlag(argv[i], "--shard", shard);
    num_shards = ParseIntFlag(argv[i], "--num-shards", num_shards);
    duration_s = ParseIntFlag(argv[i], "--duration-s", duration_s);
  }

  qmap::MetricsRegistry registry;
  auto service = BuildService(shard, num_shards, &registry);

  qmap::QmapServerOptions server_options;
  server_options.port = port;
  server_options.metrics = &registry;
  qmap::QmapServer server(server_options);
  server.SetService(service);
  qmap::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "Start: %s\n", started.ToString().c_str());
    return 1;
  }

  // Admin plane: /drainz triggers the same drain as SIGTERM, and /rpcz
  // exposes the wire server's counters next to the service's /varz.
  qmap::AdminOptions admin;
  admin.http.port = static_cast<uint16_t>(admin_port);
  admin.on_drain = [&server] { server.Drain(); };
  admin.extra_handlers.emplace_back("/rpcz", [&server](std::string_view) {
    qmap::QmapServerStats stats = server.stats();
    qmap::AdminResponse response;
    response.content_type = "application/json";
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "{\"requests\": %llu, \"responses_ok\": %llu, "
                  "\"responses_error\": %llu, \"rejected_overload\": %llu, "
                  "\"rejected_quota\": %llu, \"malformed_frames\": %llu, "
                  "\"reloads\": %llu, \"net_accepted\": %llu}\n",
                  static_cast<unsigned long long>(stats.requests),
                  static_cast<unsigned long long>(stats.responses_ok),
                  static_cast<unsigned long long>(stats.responses_error),
                  static_cast<unsigned long long>(stats.rejected_overload),
                  static_cast<unsigned long long>(stats.rejected_quota),
                  static_cast<unsigned long long>(stats.malformed_frames),
                  static_cast<unsigned long long>(stats.reloads),
                  static_cast<unsigned long long>(stats.net.accepted));
    response.body = buf;
    return response;
  });
  qmap::Status admin_started = service->StartAdmin(admin);
  if (!admin_started.ok()) {
    std::fprintf(stderr, "StartAdmin: %s\n", admin_started.ToString().c_str());
    return 1;
  }

  std::signal(SIGTERM, OnSignal);
  std::signal(SIGINT, OnSignal);
  std::signal(SIGHUP, OnSignal);

  std::printf("worker shard %d/%d listening on 127.0.0.1:%d (admin http://127.0.0.1:%u)\n",
              shard, num_shards, server.port(),
              service->admin_server()->port());
  std::fflush(stdout);

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(duration_s);
  while (std::chrono::steady_clock::now() < deadline && server.running()) {
    int sig = g_signal.exchange(0);
    if (sig == SIGTERM || sig == SIGINT) {
      std::printf("draining on signal %d\n", sig);
      std::fflush(stdout);
      server.Drain();
      break;
    }
    if (sig == SIGHUP) {
      // Hot reload: rebuild the service and swap it under the running
      // server; in-flight requests finish on the old instance. (The admin
      // plane stays bound to the boot-time service instance.)
      server.SetService(BuildService(shard, num_shards, &registry));
      std::printf("reloaded\n");
      std::fflush(stdout);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  server.Drain();
  service->StopAdmin();
  std::printf("worker shard %d drained cleanly\n", shard);
  return 0;
}
