// Bookstore federation: one integrated book view over two web bookstores
// with different search capabilities (the scenario motivating the paper's
// introduction). The integrated view is a *union* of the sources, so each
// source is queried independently with its own translation and filter, and
// the results are unioned (Section 2).
//
// Demonstrates, end to end over in-memory data:
//   * per-source vocabulary translation (TDQM),
//   * relaxations admitting false positives (Figure 1),
//   * the residue filter restoring the original selectivity (Eq. 3),
//   * TDQM vs the DNF baseline on the same query (cost counters).

#include <cstdio>

#include "qmap/contexts/amazon.h"
#include "qmap/contexts/clbooks.h"
#include "qmap/core/translator.h"
#include "qmap/expr/parser.h"
#include "qmap/relalg/ops.h"

namespace {

using qmap::Query;
using qmap::Tuple;
using qmap::TupleSet;
using qmap::Value;

// The mediator-side catalog: book(ln, fn, ti, pyear, pmonth, kwd, ...).
// Each bookstore holds a *converted copy* in its own vocabulary, standing in
// for the live sources.
std::vector<Tuple> Catalog() {
  struct Row {
    const char *ln, *fn, *ti;
    int pyear, pmonth;
    const char* kwd;
  };
  const Row rows[] = {
      {"Clancy", "Tom", "The Hunt for Red October", 1997, 5, "october"},
      {"Clancy", "Joe", "Java for Submarines", 1997, 5, "java"},
      {"Tom", "Clancy", "Confusing Names", 1997, 6, "names"},       // "Tom, Clancy"
      {"Clancy", "Joe Tom", "Middle Name Games", 1998, 1, "games"},  // false positive bait
      {"Smith", "J", "JDK Guide for Java", 1997, 5, "jdk"},
      {"Smith", "A", "Java and the JDK, far apart edition", 1998, 2, "java"},
      {"Gosling", "James", "The Java Language", 1997, 5, "language"},
  };
  std::vector<Tuple> out;
  for (const Row& r : rows) {
    Tuple t;
    t.Set("ln", Value::Str(r.ln));
    t.Set("fn", Value::Str(r.fn));
    t.Set("ti", Value::Str(r.ti));
    t.Set("pyear", Value::Int(r.pyear));
    t.Set("pmonth", Value::Int(r.pmonth));
    t.Set("kwd", Value::Str(r.kwd));
    out.push_back(std::move(t));
  }
  return out;
}

// Queries one source: push S(Q), then filter with F over the mediator rows.
TupleSet QuerySource(const qmap::Translator& translator, const char* name,
                     const Query& query, const std::vector<Tuple>& catalog,
                     const qmap::ConstraintSemantics* semantics,
                     Tuple (*convert)(const Tuple&)) {
  qmap::Result<qmap::Translation> t = translator.Translate(query);
  if (!t.ok()) {
    std::printf("  %s: translation failed: %s\n", name, t.status().ToString().c_str());
    return {};
  }
  std::printf("  %s pushes   %s\n", name, t->mapped.ToString().c_str());
  TupleSet source_hits;
  for (const Tuple& book : catalog) {
    if (qmap::EvalQuery(t->mapped, convert(book), semantics)) {
      source_hits.push_back(book);
    }
  }
  std::printf("  %s returned %zu book(s); filter F = %s\n", name,
              source_hits.size(), t->filter.ToString().c_str());
  TupleSet filtered = Select(source_hits, t->filter);
  std::printf("  %s after F  %zu book(s)\n", name, filtered.size());
  return filtered;
}

void RunQuery(const std::string& text) {
  std::printf("\n=== Q = %s ===\n", text.c_str());
  qmap::Result<Query> query = qmap::ParseQuery(text);
  if (!query.ok()) {
    std::printf("parse error: %s\n", query.status().ToString().c_str());
    return;
  }
  std::vector<Tuple> catalog = Catalog();

  qmap::Translator amazon(qmap::AmazonSpec());
  qmap::Translator clbooks(qmap::ClbooksSpec());
  qmap::AmazonSemantics amazon_semantics;

  TupleSet from_amazon = QuerySource(amazon, "Amazon ", *query, catalog,
                                     &amazon_semantics, &qmap::AmazonTupleFromBook);
  TupleSet from_clbooks = QuerySource(clbooks, "Clbooks", *query, catalog, nullptr,
                                      &qmap::ClbooksTupleFromBook);

  TupleSet combined = Union(from_amazon, from_clbooks);
  std::printf("  federation result: %zu distinct book(s)\n", combined.size());
  for (const Tuple& t : combined) {
    std::printf("    %s, %s — \"%s\"\n",
                t.Get(qmap::Attr::Simple("ln"))->AsString().c_str(),
                t.Get(qmap::Attr::Simple("fn"))->AsString().c_str(),
                t.Get(qmap::Attr::Simple("ti"))->AsString().c_str());
  }

  // Ground truth: evaluate Q directly over the mediator catalog.
  TupleSet direct = Select(catalog, *query);
  std::printf("  direct evaluation:  %zu book(s) — %s\n", direct.size(),
              SameTupleSet(combined, direct) ? "MATCH (Eq. 3 holds)"
                                             : "MISMATCH (bug!)");

  // Cost comparison: TDQM vs the DNF baseline on the Amazon translation.
  qmap::Translator amazon_dnf(qmap::AmazonSpec(),
                              {.algorithm = qmap::MappingAlgorithm::kDnf});
  qmap::Result<qmap::Translation> via_tdqm = amazon.Translate(*query);
  qmap::Result<qmap::Translation> via_dnf = amazon_dnf.Translate(*query);
  if (via_tdqm.ok() && via_dnf.ok()) {
    std::printf(
        "  Amazon mapping size: TDQM %d nodes (%llu rewrites) vs DNF %d nodes "
        "(%llu disjuncts)\n",
        via_tdqm->mapped.NodeCount(),
        static_cast<unsigned long long>(via_tdqm->stats.disjunctivize_calls),
        via_dnf->mapped.NodeCount(),
        static_cast<unsigned long long>(via_dnf->stats.dnf_disjuncts));
  }
}

}  // namespace

int main() {
  std::printf("Bookstore federation: book(ln, fn, ti, pyear, pmonth, kwd)\n");
  RunQuery("[fn = \"Tom\"] and [ln = \"Clancy\"]");
  RunQuery("([ln = \"Clancy\"] or [ln = \"Smith\"]) and [fn = \"Tom\"]");
  RunQuery(
      "[ti contains \"java(near)jdk\"] and [pyear = 1997] and ([pmonth = 5] or "
      "[pmonth = 6])");
  return 0;
}
